GO ?= go

.PHONY: build test test-race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checks the packages with real lock/atomic contention: the
# metrics registry, the scheduler and the TCP serving loop.
test-race:
	$(GO) test -race ./internal/obs ./internal/sched ./internal/server

bench:
	$(GO) test -bench=. -benchmem ./...

verify: build test test-race
