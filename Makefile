GO ?= go

.PHONY: build test test-race bench bench-diff ci verify e2e

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checks the packages with real lock/atomic contention: the
# tensor worker pool and scratch arena, the model plane that hammers
# them from concurrent training loops, the metrics registry and ring
# tracer, the wire protocol (version interop), the scheduler (including
# admission-control state flips), the batch-formation engine, the fleet
# manager (concurrent scrape ingestion), the federated time-series
# store, the alert engine, the activation wire codec (pool-parallel
# pack/unpack), the TCP serving loop and the simulator that drives
# them.
test-race:
	$(GO) test -race ./internal/tensor ./internal/model ./internal/obs ./internal/split ./internal/quant ./internal/sched ./internal/batch ./internal/fleet ./internal/tsdb ./internal/alert ./internal/server ./internal/splitsim

bench:
	$(GO) test -bench=. -benchmem ./...

# Multi-process end-to-end: builds menos-server, menos-client and
# menos-fleetd, launches a two-server fleet plus the control plane on
# loopback (alerting and trace federation enabled), and asserts one
# live client migration with zero lost iterations, a bit-identical
# final loss vs an unmigrated control run, a merged fleet trace with
# the migrated iteration stitched across both server processes, and
# zero alerts fired over the healthy run. Process logs, flight
# recordings and the alertz/fleet-trace documents land in
# e2e-artifacts/ (CI uploads them on failure).
e2e:
	MENOS_E2E_ARTIFACTS=$(CURDIR)/e2e-artifacts $(GO) test -tags e2e -timeout 240s -v ./e2e/

# bench-diff runs the paper-workload benchmark and compares it against
# the committed baseline; exits non-zero when the server compute-time
# p50 regresses past the threshold. RUNNER_CLASS keys the baseline per
# machine class (bench/baseline-<class>.json) so CI can diff against
# numbers recorded on its own runner type. Refresh a baseline with:
# go run ./cmd/menos-benchdiff -write-baseline [-runner-class <class>]
bench-diff:
	$(GO) run ./cmd/menos-benchdiff $(if $(RUNNER_CLASS),-runner-class $(RUNNER_CLASS))

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# ci mirrors .github/workflows/ci.yml: the verify job's commands in the
# same order, then the race job. Keep the two in sync.
ci: build vet fmt-check test test-race

.PHONY: fmt-check vet

verify: build test test-race
