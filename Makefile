GO ?= go

.PHONY: build test test-race bench bench-diff ci verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checks the packages with real lock/atomic contention: the
# metrics registry, the scheduler (including admission-control state
# flips), the TCP serving loop and the simulator that drives them.
test-race:
	$(GO) test -race ./internal/obs ./internal/sched ./internal/server ./internal/splitsim

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-diff runs the paper-workload benchmark and compares it against
# the committed baseline (bench/baseline.json); exits non-zero when the
# server compute-time p50 regresses past the threshold. Refresh the
# baseline with: go run ./cmd/menos-benchdiff -write-baseline
bench-diff:
	$(GO) run ./cmd/menos-benchdiff

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# ci mirrors .github/workflows/ci.yml: the verify job's commands in the
# same order, then the race job. Keep the two in sync.
ci: build vet fmt-check test test-race

.PHONY: fmt-check vet

verify: build test test-race
