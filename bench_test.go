// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus
// micro-benchmarks of the load-bearing primitives. Each paper-artifact
// benchmark reports the headline quantity it reproduces as a custom
// metric, so `bench_output.txt` doubles as a results record.
package menos_test

import (
	"bytes"
	"testing"

	"menos"
	"menos/internal/costmodel"
	"menos/internal/data"
	"menos/internal/experiments"
	"menos/internal/model"
	"menos/internal/sched"
	"menos/internal/split"
	"menos/internal/splitsim"
	"menos/internal/tensor"
)

func benchOpts() experiments.Options {
	return experiments.Options{Iterations: 10, Steps: 25, Seed: 1}
}

// BenchmarkMeasurementStudy regenerates the §2.3 memory decomposition.
func BenchmarkMeasurementStudy(b *testing.B) {
	var total int64
	for i := 0; i < b.N; i++ {
		_, fp := menos.PaperLlamaWorkload(), menos.PaperLlamaWorkload().ClientFootprint()
		total = fp.Total()
	}
	b.ReportMetric(float64(total)/(1<<30), "total-GiB")
}

// BenchmarkFig5 regenerates persistent-memory scaling and reports the
// Llama saving at 4 clients (paper: 72.2%).
func BenchmarkFig5(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		red := experiments.Fig5Reduction()
		saving = red["Llama 2-7B"]
		_ = experiments.Fig5()
	}
	b.ReportMetric(saving*100, "llama-saving-%")
}

// BenchmarkFig6 regenerates per-round times and reports the vanilla
// Llama collapse at 4 clients (paper: 154.4 s vs 6.0 s).
func BenchmarkFig6(b *testing.B) {
	var vanilla, menosSecs float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSweep(benchOpts())
		figs, err := experiments.Fig6(s)
		if err != nil {
			b.Fatal(err)
		}
		llama := figs[1]
		vanilla = llama.Series[0].Y[len(llama.Series[0].Y)-1]
		menosSecs = llama.Series[1].Y[len(llama.Series[1].Y)-1]
	}
	b.ReportMetric(vanilla, "vanilla-llama4-s")
	b.ReportMetric(menosSecs, "menos-llama4-s")
}

// BenchmarkTable1 regenerates communication times (paper: ~6.4 s OPT,
// ~3.2 s Llama, flat in client count).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSweep(benchOpts())
		if _, err := experiments.Table1(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates computation times (paper: Menos grows
// with clients, vanilla flat).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSweep(benchOpts())
		if _, err := experiments.Table2(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates scheduling times (paper: vanilla up to
// 121.1 s, Menos ≤ 0.38 s).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSweep(benchOpts())
		if _, err := experiments.Table3(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the on-demand vs memory-preserving
// comparison and reports the preserving policy's scheduling time at
// the largest client count.
func BenchmarkFig7(b *testing.B) {
	var preserve float64
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s := figs[1].Series[1]
		preserve = s.Y[len(s.Y)-1]
	}
	b.ReportMetric(preserve, "preserve-llama4-sched-s")
}

// BenchmarkFig8 runs the real OPT convergence experiment (split
// clients over TCP vs local baseline) and reports the split-vs-local
// perplexity gap (paper: identical).
func BenchmarkFig8(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gap = res.FinalGap()
	}
	b.ReportMetric(gap, "split-local-ppl-gap")
}

// BenchmarkFig9 runs the real Llama convergence experiment.
func BenchmarkFig9(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gap = res.FinalGap()
	}
	b.ReportMetric(gap, "split-local-ppl-gap")
}

// BenchmarkFig10 regenerates multi-GPU scaling and reports the 10
// CPU-client time on 1 vs 4 GPUs (paper: 11.2 s vs 6.6 s).
func BenchmarkFig10(b *testing.B) {
	var one, four float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		one = fig.Series[0].Y[len(fig.Series[0].Y)-1]
		four = fig.Series[1].Y[len(fig.Series[1].Y)-1]
	}
	b.ReportMetric(one, "10clients-1gpu-s")
	b.ReportMetric(four, "10clients-4gpu-s")
}

// BenchmarkAblationMemoryPolicy sweeps the four Fig. 3 policies.
func BenchmarkAblationMemoryPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMemoryPolicy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSchedulerPolicy sweeps the scheduler disciplines.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSchedulerPolicy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- micro-benchmarks of load-bearing primitives ----

// BenchmarkMatMul measures the tensor engine's matmul kernel at a
// transformer-typical shape.
func BenchmarkMatMul(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.NewNormal(rng, 1, 128, 256)
	w := tensor.NewNormal(rng, 1, 256, 256)
	y := tensor.New(128, 256)
	b.SetBytes(128 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tensor.MatMul(y, x, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBodyForward measures a tiny model's server-side no-grad
// forward (the Fig. 3(d) first pass).
func BenchmarkBodyForward(b *testing.B) {
	benchBody(b, false)
}

// BenchmarkBodyForwardBackward measures re-forward plus backward (the
// Fig. 3(d) second pass).
func BenchmarkBodyForwardBackward(b *testing.B) {
	benchBody(b, true)
}

func benchBody(b *testing.B, backward bool) {
	cfg := model.OPTTiny()
	m, err := model.New(tensor.NewRNG(1), cfg)
	if err != nil {
		b.Fatal(err)
	}
	_, body, _, err := m.Split(1)
	if err != nil {
		b.Fatal(err)
	}
	batch, seq := 4, 32
	x := tensor.NewNormal(tensor.NewRNG(2), 0.5, batch*seq, cfg.Dim)
	dy := tensor.NewNormal(tensor.NewRNG(3), 0.1, batch*seq, cfg.Dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !backward {
			if _, _, err := body.Forward(x, batch, seq, false); err != nil {
				b.Fatal(err)
			}
			continue
		}
		_, cache, err := body.Forward(x, batch, seq, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := body.Backward(cache, dy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerDecision measures one submit+complete cycle; the
// paper reports <0.1 ms per decision.
func BenchmarkSchedulerDecision(b *testing.B) {
	s := sched.New(1<<40, sched.PolicyFCFSBackfill)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Submit("c", sched.KindBackward, 1<<30, func() {}); err != nil {
			b.Fatal(err)
		}
		s.Complete("c")
	}
}

// BenchmarkCodecForwardReq measures encoding+decoding an
// activation-sized protocol frame.
func BenchmarkCodecForwardReq(b *testing.B) {
	rng := tensor.NewRNG(1)
	msg := &split.ForwardReq{
		Iter: 1, Batch: 4, Seq: 32,
		Activations: tensor.NewNormal(rng, 1, 128, 64),
	}
	var buf bytes.Buffer
	if err := split.WriteMessage(&buf, msg); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := split.WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := split.ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedIteration measures discrete-event throughput: how
// fast one simulated Menos fine-tuning round of 4 Llama clients runs
// in wall time.
func BenchmarkSimulatedIteration(b *testing.B) {
	w := menos.PaperLlamaWorkload()
	for i := 0; i < b.N; i++ {
		_, err := splitsim.Run(splitsim.Config{
			Mode:       splitsim.ModeMenos,
			Clients:    splitsim.HomogeneousClients(4, w, costmodel.ClientGPUPerf()),
			Iterations: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitStepTCP measures one full real split fine-tuning
// iteration over loopback TCP (client input/output sections + server
// body + protocol).
func BenchmarkSplitStepTCP(b *testing.B) {
	dep, err := menos.NewDeployment(menos.DeploymentConfig{
		Model:      menos.OPTTiny(),
		WeightSeed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	addr, err := dep.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	c, err := menos.Dial(addr, menos.ClientConfig{
		ClientID:   "bench",
		Model:      menos.OPTTiny(),
		WeightSeed: 42,
		Adapter:    menos.DefaultLoRA(),
		Batch:      4, Seq: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	tok, err := data.NewCharTokenizer(data.Shakespeare(), 96)
	if err != nil {
		b.Fatal(err)
	}
	tokens, err := tok.Encode(data.Shakespeare())
	if err != nil {
		b.Fatal(err)
	}
	loader, err := data.NewLoader(tokens, 4, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, targets := loader.Next()
		if _, err := c.Step(ids, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates the Fig. 3 memory-pattern quantification
// and reports the on-demand duty cycle (lower = memory free for other
// clients most of the time).
func BenchmarkFig3(b *testing.B) {
	var duty float64
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		duty = rows[len(rows)-1].DutyCycle
	}
	b.ReportMetric(duty, "on-demand-duty-cycle")
}

// BenchmarkGenerate measures windowed full-reforward decoding.
func BenchmarkGenerate(b *testing.B) {
	m, err := model.New(tensor.NewRNG(1), model.OPTTiny())
	if err != nil {
		b.Fatal(err)
	}
	prompt := []int{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(tensor.NewRNG(2), prompt, 24, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateFast measures KV-cache decoding of the same job.
func BenchmarkGenerateFast(b *testing.B) {
	m, err := model.New(tensor.NewRNG(1), model.OPTTiny())
	if err != nil {
		b.Fatal(err)
	}
	prompt := []int{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.GenerateFast(tensor.NewRNG(2), prompt, 24, 0); err != nil {
			b.Fatal(err)
		}
	}
}
