// Command menos-bench regenerates every table and figure from the
// paper's evaluation section and prints them as aligned text tables.
//
// Usage:
//
//	menos-bench [-iterations N] [-steps N] [-seed N] [-only name]
//	            [-trace-out spans.json]
//
// -only selects one artifact: measurement, fig3, fig5, fig6, fig7,
// fig8, fig9, fig10, table1, table2, table3, ablations, extensions,
// overload, fleet, multilora, wire. By default all run except overload
// and fleet, which deliberately saturate the scheduler
// (docs/ADMISSION.md, docs/FLEET.md), multilora, which sweeps batched
// multi-LoRA serving (docs/BATCHING.md), and wire, which sweeps
// compressed + overlapped activation transport (docs/WIRE.md); all
// four must be requested explicitly.
//
// -trace-out runs one traced Menos simulation and writes its spans as
// Chrome trace-event JSON (load in chrome://tracing or Perfetto); span
// timestamps are virtual time. It also prints the parity check between
// span category totals and the run's Breakdown. Combined with
// -only multilora the traced run uses the batched serving path, so the
// dump shows batch formation; combined with -only wire it uses
// int8-compressed overlapped transport, so the dump shows client
// compute riding under the wire legs (CI archives it when the smoke
// fails).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"menos/internal/costmodel"
	"menos/internal/experiments"
	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/sched"
	"menos/internal/simnet"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "menos-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("menos-bench", flag.ContinueOnError)
	iterations := fs.Int("iterations", 12, "simulated fine-tuning iterations per configuration")
	steps := fs.Int("steps", 60, "real fine-tuning steps for convergence runs")
	seed := fs.Uint64("seed", 1, "experiment seed")
	only := fs.String("only", "", "run a single artifact (measurement, fig3..fig10, table1..table3, ablations, extensions, overload, fleet, multilora, wire)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace of one Menos simulation to this file")
	flightDir := fs.String("flight-dir", "", "with -only overload: record flight snapshots (trace window + metrics) of a saturating run into this directory")
	pprofFlag := fs.Bool("pprof", false, "with -flight-dir: capture heap and goroutine pprof profiles alongside each flight snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Iterations: *iterations, Steps: *steps, Seed: *seed}

	selected := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	ran := false
	start := time.Now()

	if selected("measurement") {
		ran = true
		fmt.Println(experiments.MeasurementStudy().Render())
	}
	if selected("fig3") {
		ran = true
		fig3, _, err := experiments.Fig3(opts)
		if err != nil {
			return err
		}
		fmt.Println(fig3.Render())
	}
	if selected("fig5") {
		ran = true
		for _, fig := range experiments.Fig5() {
			fmt.Println(fig.Render())
		}
		// Sorted so the output is byte-stable run to run (benchdiff
		// and the regression harness diff this text).
		reductions := experiments.Fig5Reduction()
		names := make([]string, 0, len(reductions))
		for name := range reductions {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("Fig. 5 headline: %s saving at 4 clients = %.1f%% (paper: OPT 64.1%%, Llama 72.2%%)\n",
				name, reductions[name]*100)
		}
		fmt.Println()
	}

	var sweep *experiments.Sweep
	needSweep := selected("fig6") || selected("table1") || selected("table2") || selected("table3")
	if needSweep {
		sweep = experiments.NewSweep(opts)
	}
	if selected("fig6") {
		ran = true
		figs, err := experiments.Fig6(sweep)
		if err != nil {
			return err
		}
		for _, fig := range figs {
			fmt.Println(fig.Render())
		}
	}
	for _, tbl := range []struct {
		name string
		fn   func(*experiments.Sweep) (renderable, error)
	}{
		{"table1", func(s *experiments.Sweep) (renderable, error) { return experiments.Table1(s) }},
		{"table2", func(s *experiments.Sweep) (renderable, error) { return experiments.Table2(s) }},
		{"table3", func(s *experiments.Sweep) (renderable, error) { return experiments.Table3(s) }},
	} {
		if !selected(tbl.name) {
			continue
		}
		ran = true
		t, err := tbl.fn(sweep)
		if err != nil {
			return err
		}
		fmt.Println(t.Render())
	}

	if selected("fig7") {
		ran = true
		figs, err := experiments.Fig7(opts)
		if err != nil {
			return err
		}
		for _, fig := range figs {
			fmt.Println(fig.Render())
		}
	}
	if selected("fig8") {
		ran = true
		res, err := experiments.Fig8(opts)
		if err != nil {
			return err
		}
		fmt.Println(res.Fig.Render())
		fmt.Printf("Fig. 8 headline: |split − local| final perplexity gap = %.6f (paper: identical)\n", res.FinalGap())
		fmt.Printf("Fig. 8 timing: split %.0f ms/step vs local %.0f ms/step (split pays protocol round-trips)\n\n",
			res.ClientStepSeconds[0]*1000, res.LocalStepSeconds*1000)
	}
	if selected("fig9") {
		ran = true
		res, err := experiments.Fig9(opts)
		if err != nil {
			return err
		}
		fmt.Println(res.Fig.Render())
		fmt.Printf("Fig. 9 headline: |split − local| final perplexity gap = %.6f (paper: identical)\n", res.FinalGap())
		fmt.Printf("Fig. 9 timing: split %.0f ms/step vs local %.0f ms/step (split pays protocol round-trips)\n\n",
			res.ClientStepSeconds[0]*1000, res.LocalStepSeconds*1000)
	}
	if selected("fig10") {
		ran = true
		fig, err := experiments.Fig10(opts)
		if err != nil {
			return err
		}
		fmt.Println(fig.Render())
	}
	if selected("ablations") {
		ran = true
		mem, err := experiments.AblationMemoryPolicy(opts)
		if err != nil {
			return err
		}
		fmt.Println(mem.Render())
		schedTbl, err := experiments.AblationSchedulerPolicy(opts)
		if err != nil {
			return err
		}
		fmt.Println(schedTbl.Render())
		fmt.Println(experiments.AblationBaseSharing().Render())
	}

	if selected("extensions") {
		ran = true
		fmt.Println(experiments.ExtensionQuantization().Render())
		ms, err := experiments.ExtensionMultiServer(opts)
		if err != nil {
			return err
		}
		fmt.Println(ms.Render())
		het, err := experiments.ExtensionHeterogeneousClients(opts)
		if err != nil {
			return err
		}
		fmt.Println(het.Render())
	}

	// The overload sweep is opt-in (-only overload): it deliberately
	// saturates the scheduler and enables admission control, so it is
	// not part of the paper-default artifact set.
	if *only == "overload" {
		ran = true
		ov, err := experiments.OverloadSweep(opts)
		if err != nil {
			return err
		}
		fmt.Println(ov.Render())
		if *flightDir != "" {
			res, path, err := experiments.OverloadFlight(opts, *flightDir, *pprofFlag)
			if err != nil {
				return err
			}
			fmt.Printf("Flight recorder: %d sheds, final state %s -> %s\n\n",
				res.Rejected, res.Admission.State, path)
		}
	}

	// The multi-LoRA batching sweep is opt-in (-only multilora): it runs
	// clients×caps cells of batched serving (docs/BATCHING.md) to locate
	// the batch-size-vs-latency knee, which the default artifact set
	// does not need.
	if *only == "multilora" {
		ran = true
		ml, err := experiments.MultiLoRASweep(opts)
		if err != nil {
			return err
		}
		fmt.Println(ml.Render())
	}

	// The wire sweep is opt-in (-only wire): it walks the compression ×
	// overlap × bandwidth surface of the split transport (docs/WIRE.md),
	// which the paper-default artifact set does not need.
	if *only == "wire" {
		ran = true
		ws, err := experiments.WireSweep(opts)
		if err != nil {
			return err
		}
		fmt.Println(ws.Render())
	}

	// The fleet sweep is opt-in (-only fleet) for the same reason: it
	// runs multi-server fleets past saturation to compare placement
	// policies and the autoscaler (docs/FLEET.md).
	if *only == "fleet" {
		ran = true
		fl, err := experiments.FleetSweep(opts)
		if err != nil {
			return err
		}
		fmt.Println(fl.Render())
	}

	if *traceOut != "" {
		ran = true
		var pol *sched.BatchPolicy
		if strings.EqualFold(*only, "multilora") {
			pol = &sched.BatchPolicy{MaxSize: 8, MaxHold: experiments.MultiLoRAHold}
		}
		if err := dumpTrace(*traceOut, opts, pol, strings.EqualFold(*only, "wire")); err != nil {
			return err
		}
	}

	if !ran {
		return fmt.Errorf("unknown artifact %q", *only)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// dumpTrace runs one traced Menos simulation (the paper's OPT setup at
// 6 clients), writes the spans as Chrome trace JSON, and prints the
// span-vs-breakdown parity so the dump is self-validating. A non-nil
// batch policy switches the run to batched serving on the multi-LoRA
// sweep's server shape (docs/BATCHING.md); wire switches it to
// int8-compressed overlapped transport (docs/WIRE.md).
func dumpTrace(path string, opts experiments.Options, pol *sched.BatchPolicy, wire bool) error {
	tracer := obs.NewTracer(nil) // sim records spans with explicit virtual times
	cfg := splitsim.Config{
		Mode:       splitsim.ModeMenos,
		Clients:    splitsim.HomogeneousClients(6, memmodel.PaperOPTWorkload(), costmodel.ClientGPUPerf()),
		Iterations: opts.Iterations,
		Tracer:     tracer,
	}
	if pol != nil {
		cfg.Batch = pol
		cfg.GPUs = 4
		cfg.LinkPreset = simnet.LANPreset
	}
	if wire {
		cfg.WireCodec = quant.CodecInt8
		cfg.Overlap = true
	}
	res, err := splitsim.Run(cfg)
	if err != nil {
		return fmt.Errorf("traced run: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	comm, comp, sched := res.Aggregate.Totals()
	totals := tracer.CatTotals()
	fmt.Printf("Trace: %d spans over %v of virtual time -> %s (open in chrome://tracing)\n",
		tracer.Len(), res.SimulatedTime.Round(time.Millisecond), path)
	for _, c := range []struct {
		cat  string
		want time.Duration
	}{{"comm", comm}, {"compute", comp}, {"sched", sched}} {
		fmt.Printf("  %-8s spans %ss, breakdown %ss\n",
			c.cat, trace.Seconds(totals[c.cat]), trace.Seconds(c.want))
	}
	fmt.Println()
	return nil
}

// renderable is the common surface of tables and figures.
type renderable interface{ Render() string }
