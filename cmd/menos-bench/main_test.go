package main

import (
	"strings"
	"testing"
)

func TestRunSingleArtifacts(t *testing.T) {
	// Exercise the cheap artifacts end to end through flag parsing.
	for _, only := range []string{"measurement", "fig3", "fig5", "fig7", "fig10", "ablations", "extensions"} {
		t.Run(only, func(t *testing.T) {
			if err := run([]string{"-only", only, "-iterations", "4", "-steps", "5"}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	err := run([]string{"-only", "fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown artifact") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSweepArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep artifacts in short mode")
	}
	for _, only := range []string{"fig6", "table1", "table2", "table3"} {
		if err := run([]string{"-only", only, "-iterations", "4"}); err != nil {
			t.Fatalf("%s: %v", only, err)
		}
	}
}
