// Command menos-benchdiff is the regression gate from ROADMAP's
// "regression gating" item: it runs the paper workload against a real
// loopback-TCP deployment, snapshots the benchmark metrics as
// BENCH_<sha>.json, diffs them against the committed baseline, and
// exits non-zero when the server-side compute p50
// (menos_server_compute_seconds) regresses beyond the threshold.
//
// Usage:
//
//	menos-benchdiff [-baseline bench/baseline.json] [-out BENCH_<sha>.json]
//	                [-sha id] [-threshold 0.5] [-steps N] [-clients N]
//	                [-runner-class name] [-parallelism N] [-write-baseline]
//
// Only the wall-clock compute p50 gates the exit status, with a wide
// default threshold (50%) because absolute timings vary by machine.
// The virtual-time metrics from the discrete-event simulator are
// byte-deterministic and reported for information: any drift there
// means scheduler behaviour changed, not that the machine was slow.
//
// -runner-class keys the baseline by machine class: with the default
// -baseline, class "ci-linux-amd64" diffs against
// bench/baseline-ci-linux-amd64.json. A baseline recorded on the same
// class of machine that replays it is trustworthy enough to make the
// CI diff blocking instead of advisory — CI passes its runner class
// and fails the job only when a baseline for that exact class is
// committed and regresses.
//
// -parallelism pins the tensor worker-pool width for the whole run, so
// a multi-core machine class can carry its own baseline (e.g.
// -parallelism 4 -runner-class ci-linux-amd64-par4); absolute timings
// only compare within a class, and pool width is part of the class.
//
// -write-baseline refreshes the committed baseline in place instead of
// diffing (run it on the machine class the baseline should represent,
// with the matching -runner-class).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/core"
	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/sched"
	"menos/internal/simnet"
	"menos/internal/splitsim"
	"menos/internal/tensor"
)

// gateMetric is the one measurement that decides the exit status.
const gateMetric = "server_compute_seconds_p50"

// Report is the benchmark snapshot written as BENCH_<sha>.json. The
// Metrics map mixes the wall-clock gate metric with informational
// virtual-time measurements; Gate names the key that decides pass/fail
// so a future reader of the JSON does not have to guess.
type Report struct {
	SHA     string             `json:"sha"`
	Gate    string             `json:"gate"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "menos-benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("menos-benchdiff", flag.ContinueOnError)
	baseline := fs.String("baseline", defaultBaseline, "committed baseline to diff against")
	out := fs.String("out", "", "where to write the snapshot (default BENCH_<sha>.json)")
	sha := fs.String("sha", defaultSHA(), "commit id recorded in the snapshot")
	threshold := fs.Float64("threshold", 0.5, "fail when the gate metric regresses by more than this fraction")
	steps := fs.Int("steps", 6, "fine-tuning steps per client on the loopback deployment")
	clients := fs.Int("clients", 2, "concurrent clients on the loopback deployment")
	runnerClass := fs.String("runner-class", "", "machine class keying the baseline (bench/baseline-<class>.json when -baseline is left at its default)")
	parallelism := fs.Int("parallelism", 0, "tensor worker-pool width for the run (0 keeps the process default; bake the width into -runner-class, e.g. ci-linux-amd64-par4)")
	writeBaseline := fs.Bool("write-baseline", false, "refresh the baseline in place instead of diffing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallelism > 0 {
		tensor.SetParallelism(*parallelism)
	}
	basePath, err := baselinePath(*baseline, *runnerClass)
	if err != nil {
		return err
	}
	*baseline = basePath

	rep, err := runBench(*sha, *clients, *steps)
	if err != nil {
		return err
	}

	if *writeBaseline {
		if err := writeReport(*baseline, rep); err != nil {
			return err
		}
		fmt.Printf("baseline refreshed: %s (%s = %.6fs)\n", *baseline, gateMetric, rep.Metrics[gateMetric])
		return nil
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *sha)
	}
	if err := writeReport(path, rep); err != nil {
		return err
	}
	fmt.Printf("snapshot: %s\n", path)

	base, err := readReport(*baseline)
	if err != nil {
		return fmt.Errorf("read baseline (run with -write-baseline to create it): %w", err)
	}
	d := diff(base, rep, *threshold)
	for _, line := range d.Notes {
		fmt.Println("  " + line)
	}
	if len(d.Regressions) > 0 {
		for _, line := range d.Regressions {
			fmt.Println("  REGRESSION: " + line)
		}
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", len(d.Regressions), *threshold*100)
	}
	fmt.Println("no regressions")
	return nil
}

// defaultBaseline is the class-less baseline path; -runner-class only
// rewrites it when the operator left -baseline alone.
const defaultBaseline = "bench/baseline.json"

// baselinePath resolves the baseline file for a runner class. An
// explicit -baseline always wins; otherwise the class keys its own
// file so machines of different speeds never diff against each other's
// numbers.
func baselinePath(baseline, class string) (string, error) {
	if class == "" || baseline != defaultBaseline {
		return baseline, nil
	}
	for _, r := range class {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.' {
			continue
		}
		return "", fmt.Errorf("runner class %q: only letters, digits, '-', '_' and '.' allowed", class)
	}
	return fmt.Sprintf("bench/baseline-%s.json", class), nil
}

// defaultSHA prefers the commit id CI exports, falling back to "local".
func defaultSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	return "local"
}

// runBench produces one benchmark snapshot: a wall-clock loopback-TCP
// run (the gate) plus a deterministic virtual-time simulation of the
// paper's OPT workload (informational).
func runBench(sha string, clients, steps int) (Report, error) {
	rep := Report{SHA: sha, Gate: gateMetric, Metrics: map[string]float64{}}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.NewWallClock())
	tracer.EnableRing(obs.DefaultRingBytes)
	tracer.Instrument(reg)
	if err := loopbackRun(reg, tracer, clients, steps); err != nil {
		return Report{}, fmt.Errorf("loopback benchmark: %w", err)
	}
	h := reg.Histogram(obs.MetricServerComputeSeconds, obs.DurationBuckets())
	rep.Metrics[gateMetric] = h.Quantile(0.50)
	rep.Metrics["server_compute_seconds_p99"] = h.Quantile(0.99)
	rep.Metrics["server_compute_samples"] = float64(h.Count())
	// Informational (never gated): spans evicted or dropped by the
	// server's ring tracer during the run. A sudden jump means the
	// telemetry plane itself got noisier, which is worth seeing in the
	// diff notes before it becomes a debugging blind spot.
	rep.Metrics["obs_spans_dropped_total"] = float64(tracer.Dropped())
	// Informational (never gated): the heaviest tenants by server-side
	// compute-seconds, read from the per-client {client=...} series of
	// the same compute family the gate uses. With homogeneous bench
	// clients these should be near-equal; a skew means the scheduler or
	// the serving loop stopped treating identical tenants identically.
	for i, top := range topClientCompute(reg, 3) {
		rep.Metrics[fmt.Sprintf("client_compute_top%d_seconds", i+1)] = top
	}

	// Informational (never gated until a baseline carrying it is
	// committed): wall-clock seconds per full fine-tuning step on the
	// in-process model, the number the compute-plane kernels move. Also
	// recorded: the worker-pool width it was measured at, since the two
	// only compare within a runner class anyway.
	stepSec, err := trainStepSeconds()
	if err != nil {
		return Report{}, fmt.Errorf("train-step benchmark: %w", err)
	}
	rep.Metrics["train_step_seconds"] = stepSec
	rep.Metrics["tensor_pool_workers"] = float64(tensor.Parallelism())
	// Informational (never gated): one batched body step over 4 stacked
	// LoRA tenants (docs/BATCHING.md) — the kernel path batched serving
	// runs instead of 4 serial steps. Compare against 4×
	// train_step_seconds within a runner class to see what per-row
	// dispatch saves on this machine.
	batchedSec, err := batchedStepSeconds(4)
	if err != nil {
		return Report{}, fmt.Errorf("batched-step benchmark: %w", err)
	}
	rep.Metrics["train_step_batched4_seconds"] = batchedSec

	// Informational (never gated): the compressed + overlapped transport
	// plane (docs/WIRE.md) — on-wire payload bytes per iteration under
	// int8 compression and the round-trip seconds the pipelined schedule
	// hid behind local compute. Byte counts are deterministic for the
	// fixed workload; hidden time is wall-clock and machine-dependent,
	// which is one reason these stay ungated.
	wireBytes, hiddenSec, err := wireStepMetrics(steps)
	if err != nil {
		return Report{}, fmt.Errorf("wire benchmark: %w", err)
	}
	rep.Metrics["wire_bytes_per_iter"] = wireBytes
	rep.Metrics["overlap_hidden_seconds"] = hiddenSec

	simReg := obs.NewRegistry()
	sim, err := splitsim.Run(splitsim.Config{
		Mode:       splitsim.ModeMenos,
		Clients:    splitsim.HomogeneousClients(4, memmodel.PaperOPTWorkload(), costmodel.ClientGPUPerf()),
		Iterations: 8,
		Metrics:    simReg,
	})
	if err != nil {
		return Report{}, fmt.Errorf("virtual-time benchmark: %w", err)
	}
	wait := simReg.Histogram(obs.MetricSchedWaitSeconds, obs.DurationBuckets())
	rep.Metrics["sim_sched_wait_seconds_p50"] = wait.Quantile(0.50)
	rep.Metrics["sim_time_seconds"] = sim.SimulatedTime.Seconds()
	rep.Metrics["sim_avg_iteration_seconds"] = sim.AvgIterationTime().Seconds()

	// Informational (never gated): batched-mode virtual-time run — 8
	// lockstep tenants under a MaxSize-8 policy. batch_occupancy is the
	// last dispatched batch's fill of the cap (1.0 = full); a drop means
	// batch formation stopped coalescing, which shows up here before it
	// shows up as lost throughput in the multilora sweep.
	batchSimReg := obs.NewRegistry()
	batchSim, err := splitsim.Run(splitsim.Config{
		Mode:       splitsim.ModeMenos,
		Clients:    splitsim.HomogeneousClients(8, memmodel.PaperOPTWorkload(), costmodel.ClientGPUPerf()),
		Iterations: 8,
		GPUs:       4,
		LinkPreset: simnet.LANPreset,
		Batch:      &sched.BatchPolicy{MaxSize: 8, MaxHold: 100 * time.Millisecond},
		Metrics:    batchSimReg,
	})
	if err != nil {
		return Report{}, fmt.Errorf("batched virtual-time benchmark: %w", err)
	}
	rep.Metrics["batch_occupancy"] = float64(batchSimReg.Gauge(obs.MetricBatchOccupancy).Value()) / 1000
	rep.Metrics["sim_batched_time_seconds"] = batchSim.SimulatedTime.Seconds()
	return rep, nil
}

// topClientCompute returns the n largest per-client compute-second
// sums from the labeled menos_server_compute_seconds family, descending.
func topClientCompute(reg *obs.Registry, n int) []float64 {
	hv := reg.HistogramVec(obs.MetricServerComputeSeconds, "client", obs.DurationBuckets())
	var sums []float64
	for _, l := range hv.Labels() {
		if h, ok := hv.Get(l); ok {
			sums = append(sums, h.Snapshot().Sum)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sums)))
	if len(sums) > n {
		sums = sums[:n]
	}
	return sums
}

// trainStepSeconds times one full fine-tuning step (forward, backward,
// Adam update) on a fixed-seed opt-tiny model, averaged over a few
// timed steps after one warm-up step so the scratch arena is primed and
// the timing reflects the steady state a training loop lives in.
func trainStepSeconds() (float64, error) {
	m, err := model.New(tensor.NewRNG(7), model.OPTTiny())
	if err != nil {
		return 0, err
	}
	opt := nn.NewAdam(1e-3)
	params := m.Params()
	batch, seq := 2, 16
	rng := tensor.NewRNG(8)
	ids := make([]int, batch*seq)
	targets := make([]int, batch*seq)
	for i := range ids {
		ids[i] = rng.Intn(m.Cfg.Vocab)
		targets[i] = rng.Intn(m.Cfg.Vocab)
	}
	const timedSteps = 3
	var elapsed time.Duration
	for step := 0; step < timedSteps+1; step++ {
		start := time.Now()
		if _, err := m.LossAndGrad(ids, targets, batch, seq); err != nil {
			return 0, err
		}
		if err := opt.Step(params); err != nil {
			return 0, err
		}
		nn.ZeroGrads(params)
		if step > 0 { // step 0 is the warm-up
			elapsed += time.Since(start)
		}
	}
	return elapsed.Seconds() / timedSteps, nil
}

// batchedStepSeconds times one batched body step — forward with grad,
// backward, per-member Adam updates — over members stacked LoRA
// tenants sharing one frozen opt-tiny base through per-row dispatch,
// averaged like trainStepSeconds (one warm-up, then timed steps).
func batchedStepSeconds(members int) (float64, error) {
	m, err := model.New(tensor.NewRNG(7), model.OPTTiny())
	if err != nil {
		return 0, err
	}
	m.SetFrozenBase(true)
	cfg := adapter.DefaultLoRA()
	memberLayers := make([][]*adapter.LoRALinear, members)
	params := make([][]nn.Param, members)
	opts := make([]nn.Optimizer, members)
	rows := make([]int, members)
	inputs := make([]*tensor.Tensor, members)
	dys := make([]*tensor.Tensor, members)
	const batch, seq = 1, 16
	for k := 0; k < members; k++ {
		blocks := model.ShallowCloneBlocks(m.Blocks)
		ad, err := adapter.InjectLoRA(tensor.NewRNG(uint64(40+k)), blocks, cfg)
		if err != nil {
			return 0, err
		}
		memberLayers[k] = ad.Layers()
		params[k] = ad.Params()
		opts[k] = nn.NewAdam(1e-3)
		rows[k] = batch * seq
		inputs[k] = tensor.NewNormal(tensor.NewRNG(uint64(50+k)), 1, rows[k], m.Cfg.Dim)
		dys[k] = tensor.NewNormal(tensor.NewRNG(uint64(60+k)), 1, rows[k], m.Cfg.Dim)
	}
	blocks := model.ShallowCloneBlocks(m.Blocks)
	if _, err := adapter.InjectMultiLoRA(blocks, cfg.Targets, memberLayers, rows); err != nil {
		return 0, err
	}
	body := model.Body(blocks)
	x, err := tensor.StackRows(inputs)
	if err != nil {
		return 0, err
	}
	dy, err := tensor.StackRows(dys)
	if err != nil {
		return 0, err
	}
	const timedSteps = 3
	var elapsed time.Duration
	for step := 0; step < timedSteps+1; step++ {
		start := time.Now()
		_, cache, err := body.Forward(x, batch*members, seq, true)
		if err != nil {
			return 0, err
		}
		if _, err := body.Backward(cache, dy); err != nil {
			return 0, err
		}
		for k := 0; k < members; k++ {
			if err := opts[k].Step(params[k]); err != nil {
				return 0, err
			}
			nn.ZeroGrads(params[k])
		}
		if step > 0 { // step 0 is the warm-up
			elapsed += time.Since(start)
		}
	}
	return elapsed.Seconds() / timedSteps, nil
}

// wireStepMetrics drives a short int8-compressed pipelined run over
// loopback and reads the transport plane's own counters: compressed
// payload bytes per iteration and the total overlap-hidden time.
func wireStepMetrics(steps int) (bytesPerIter, hiddenSeconds float64, err error) {
	reg := obs.NewRegistry()
	dep, err := core.NewDeployment(core.DeploymentConfig{
		Model:      model.OPTTiny(),
		WeightSeed: 7,
		WireCodec:  quant.CodecInt8,
	})
	if err != nil {
		return 0, 0, err
	}
	if _, err := dep.Listen("127.0.0.1:0"); err != nil {
		return 0, 0, err
	}
	defer dep.Close()
	c, err := dep.DialClient(client.Config{
		ClientID:    "bench-wire",
		Model:       model.OPTTiny(),
		WeightSeed:  7,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 1,
		Batch:       1,
		Seq:         16,
		Metrics:     reg,
		WireCodec:   quant.CodecInt8,
	})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	const microPerStep = 3
	rng := tensor.NewRNG(200)
	micro := make([]client.MicroBatch, microPerStep)
	for s := 0; s < steps; s++ {
		for m := range micro {
			ids := make([]int, 16)
			targets := make([]int, 16)
			for i := range ids {
				ids[i] = rng.Intn(model.OPTTiny().Vocab)
				targets[i] = rng.Intn(model.OPTTiny().Vocab)
			}
			micro[m] = client.MicroBatch{IDs: ids, Targets: targets}
		}
		if _, err := c.StepPipelined(micro); err != nil {
			return 0, 0, fmt.Errorf("pipelined step %d: %w", s, err)
		}
	}
	iters := float64(steps * microPerStep)
	compressed := float64(reg.Counter(obs.MetricWireCompressedBytes).Value())
	hidden := reg.Histogram(obs.MetricOverlapHiddenSeconds, obs.DurationBuckets()).Sum()
	return compressed / iters, hidden, nil
}

// loopbackRun drives the paper workload end to end on this machine: an
// opt-tiny deployment on a loopback listener, instrumented against
// reg and tracer, with clients stepping real LoRA fine-tuning through
// the wire protocol.
func loopbackRun(reg *obs.Registry, tracer *obs.Tracer, clients, steps int) error {
	dep, err := core.NewDeployment(core.DeploymentConfig{
		Model:      model.OPTTiny(),
		WeightSeed: 7,
		Metrics:    reg,
		Tracer:     tracer,
	})
	if err != nil {
		return err
	}
	if _, err := dep.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer dep.Close()

	for ci := 0; ci < clients; ci++ {
		c, err := dep.DialClient(client.Config{
			ClientID:    fmt.Sprintf("bench-%d", ci),
			Model:       model.OPTTiny(),
			WeightSeed:  7,
			Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
			AdapterSeed: uint64(ci + 1),
			Batch:       1,
			Seq:         16,
		})
		if err != nil {
			return err
		}
		rng := tensor.NewRNG(uint64(100 + ci))
		ids := make([]int, 16)
		targets := make([]int, 16)
		for s := 0; s < steps; s++ {
			for i := range ids {
				ids[i] = rng.Intn(model.OPTTiny().Vocab)
				targets[i] = rng.Intn(model.OPTTiny().Vocab)
			}
			if _, err := c.Step(ids, targets); err != nil {
				c.Close()
				return fmt.Errorf("client %d step %d: %w", ci, s, err)
			}
		}
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Diff is the outcome of comparing a snapshot against the baseline.
type Diff struct {
	// Regressions fail the run: the gate metric got slower than
	// baseline × (1 + threshold).
	Regressions []string
	// Notes are informational lines for every compared metric.
	Notes []string
}

// diff compares cur against base. Only the gate metric can produce a
// regression; everything else is reported. Metrics missing from either
// side are noted, never fatal, so adding a metric does not break the
// gate against an older baseline.
func diff(base, cur Report, threshold float64) Diff {
	var d Diff
	for _, name := range sortedKeys(cur.Metrics) {
		curV := cur.Metrics[name]
		baseV, ok := base.Metrics[name]
		if !ok {
			d.Notes = append(d.Notes, fmt.Sprintf("%s: %.6f (not in baseline)", name, curV))
			continue
		}
		delta := relDelta(baseV, curV)
		d.Notes = append(d.Notes, fmt.Sprintf("%s: %.6f vs baseline %.6f (%+.1f%%)", name, curV, baseV, delta*100))
		if name == cur.Gate && delta > threshold {
			d.Regressions = append(d.Regressions,
				fmt.Sprintf("%s: %.6fs vs baseline %.6fs (+%.1f%%, threshold %.0f%%)",
					name, curV, baseV, delta*100, threshold*100))
		}
	}
	return d
}

// relDelta is (cur-base)/base; a zero or negative baseline (empty
// histogram) gates nothing and reports a flat delta.
func relDelta(base, cur float64) float64 {
	if base <= 0 {
		return 0
	}
	return (cur - base) / base
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeReport(path string, rep Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readReport(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
