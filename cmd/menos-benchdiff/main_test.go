package main

import (
	"path/filepath"
	"testing"
)

func report(gate float64, extra map[string]float64) Report {
	m := map[string]float64{gateMetric: gate}
	for k, v := range extra {
		m[k] = v
	}
	return Report{SHA: "test", Gate: gateMetric, Metrics: m}
}

func TestDiffGatesOnlyTheGateMetric(t *testing.T) {
	base := report(0.010, map[string]float64{"sim_time_seconds": 60})

	tests := []struct {
		name      string
		cur       Report
		threshold float64
		wantFail  bool
	}{
		{"unchanged", report(0.010, nil), 0.5, false},
		{"faster", report(0.004, nil), 0.5, false},
		{"within threshold", report(0.014, nil), 0.5, false},
		{"beyond threshold", report(0.016, nil), 0.5, true},
		{"tight threshold", report(0.012, nil), 0.1, true},
		{"non-gate metric regresses", report(0.010, map[string]float64{"sim_time_seconds": 600}), 0.5, false},
		{"new metric absent from baseline", report(0.010, map[string]float64{"fresh": 1}), 0.5, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := diff(base, tc.cur, tc.threshold)
			if got := len(d.Regressions) > 0; got != tc.wantFail {
				t.Fatalf("regressions = %v, want fail=%v", d.Regressions, tc.wantFail)
			}
			if len(d.Notes) == 0 {
				t.Fatal("no notes emitted")
			}
		})
	}
}

// TestBaselinePath pins the runner-class keying: the class rewrites
// only the default baseline path, an explicit -baseline always wins,
// and path-hostile class names are rejected.
func TestBaselinePath(t *testing.T) {
	tests := []struct {
		baseline, class string
		want            string
		wantErr         bool
	}{
		{defaultBaseline, "", defaultBaseline, false},
		{defaultBaseline, "ci-linux-amd64", "bench/baseline-ci-linux-amd64.json", false},
		{defaultBaseline, "mac_m2.local", "bench/baseline-mac_m2.local.json", false},
		{"custom/path.json", "ci-linux-amd64", "custom/path.json", false},
		{defaultBaseline, "../escape", "", true},
		{defaultBaseline, "has space", "", true},
	}
	for _, tc := range tests {
		got, err := baselinePath(tc.baseline, tc.class)
		if tc.wantErr {
			if err == nil {
				t.Errorf("baselinePath(%q, %q): accepted, want error", tc.baseline, tc.class)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("baselinePath(%q, %q) = %q, %v; want %q", tc.baseline, tc.class, got, err, tc.want)
		}
	}
}

func TestRelDelta(t *testing.T) {
	if d := relDelta(10, 15); d != 0.5 {
		t.Fatalf("relDelta(10,15) = %v", d)
	}
	if d := relDelta(10, 5); d != -0.5 {
		t.Fatalf("relDelta(10,5) = %v", d)
	}
	// An empty-histogram baseline (p50 = 0) must not divide by zero or
	// spuriously gate.
	if d := relDelta(0, 5); d != 0 {
		t.Fatalf("relDelta(0,5) = %v", d)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := report(0.0123, map[string]float64{"sim_time_seconds": 61.5})
	if err := writeReport(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.SHA != in.SHA || out.Gate != in.Gate {
		t.Fatalf("round trip lost identity: %+v", out)
	}
	for k, v := range in.Metrics {
		if out.Metrics[k] != v {
			t.Fatalf("metric %s: %v != %v", k, out.Metrics[k], v)
		}
	}
	if _, err := readReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
}

// TestLoopbackBenchSmoke runs the real benchmark at minimum size: one
// client, one step. It exercises the full wire path and checks the
// gate metric is populated.
func TestLoopbackBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback deployment in -short mode")
	}
	rep, err := runBench("test", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["server_compute_samples"] <= 0 {
		t.Fatal("no compute samples recorded")
	}
	if rep.Metrics[gateMetric] <= 0 {
		t.Fatalf("gate metric %v, want > 0", rep.Metrics[gateMetric])
	}
	if rep.Metrics["sim_time_seconds"] <= 0 {
		t.Fatal("virtual-time benchmark missing")
	}
	if rep.Metrics["client_compute_top1_seconds"] <= 0 {
		t.Fatal("per-client compute ranking missing")
	}
	if rep.Gate == "client_compute_top1_seconds" {
		t.Fatal("per-client ranking must stay ungated")
	}
}
