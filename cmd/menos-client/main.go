// Command menos-client fine-tunes a model against a Menos server over
// TCP, using the embedded Shakespeare corpus (char-level) or the
// synthetic wikitext corpus (word-level) as private local data.
//
// Usage:
//
//	menos-client [-addr localhost:7600] [-id alice] [-model opt-tiny]
//	             [-seed 42] [-adapter lora] [-dataset shakespeare]
//	             [-steps 100] [-batch 4] [-seq 32] [-lr 0.008]
//	             [-max-retries 8] [-wire-compress off|fp16|int8]
//	             [-metrics-addr :9091]
//
// -wire-compress quantizes the activation/gradient uploads this client
// sends to a server that negotiated the compression capability (fp16
// halves, int8 quarters the payload bytes; docs/WIRE.md). Against a
// legacy server the client transparently falls back to plain fp32.
//
// When the server sheds load (admission control, docs/ADMISSION.md)
// the client backs off for the server's retry-after hint and resubmits
// the same step, up to -max-retries times per step.
//
// With -metrics-addr set, the client serves its own telemetry — the
// menos_client_* iteration counters and comm/comp histograms, plus a
// Chrome trace of recent step spans — on /metrics, /metrics.json and
// /trace, the same endpoint surface as the server
// (docs/OBSERVABILITY.md).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/data"
	"menos/internal/model"
	"menos/internal/obs"
	"menos/internal/quant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "menos-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("menos-client", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:7600", "server address")
	id := fs.String("id", "client-1", "client id (unique per server)")
	modelName := fs.String("model", "opt-tiny", "base model served by the server")
	seed := fs.Uint64("seed", 42, "model owner's weight seed (must match server)")
	adapterKind := fs.String("adapter", "lora", "adapter: lora, prefix, bottleneck")
	dataset := fs.String("dataset", "shakespeare", "dataset: shakespeare, wikitext")
	steps := fs.Int("steps", 100, "fine-tuning steps")
	batch := fs.Int("batch", 4, "batch size")
	seq := fs.Int("seq", 32, "sequence length")
	lr := fs.Float64("lr", 8e-3, "learning rate")
	dataSeed := fs.Uint64("data-seed", 7, "batch sampling seed")
	maxRetries := fs.Int("max-retries", 8, "retries per step when the server sheds load (0 fails fast)")
	wireCompress := fs.String("wire-compress", "off", "compress uploaded activation payloads when the server negotiates it: off, fp16 or int8 (docs/WIRE.md)")
	migrate := fs.Bool("migrate", false, "offer live migration: follow server-issued redirects mid-run (docs/FLEET.md)")
	fleetd := fs.String("fleetd", "", "ask this menos-fleetd control plane (http://host:port) where to connect instead of -addr")
	finalLossOut := fs.String("final-loss-out", "", "write the final step's loss to this file as float64 bits in hex (determinism pin for e2e)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics, /metrics.json and /trace on this address (e.g. :9091)")
	pprofFlag := fs.Bool("pprof", false, "mount /debug/pprof/ on the metrics mux (with -metrics-addr)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		return err
	}
	wireCodec, err := quant.ParseCodec(*wireCompress)
	if err != nil {
		return fmt.Errorf("-wire-compress: %w", err)
	}
	var spec adapter.Spec
	switch *adapterKind {
	case "lora":
		spec = adapter.LoRASpec(adapter.DefaultLoRA())
	case "prefix":
		spec = adapter.PrefixSpec(adapter.DefaultPrefix())
	case "bottleneck":
		spec = adapter.BottleneckSpec(adapter.DefaultBottleneck())
	default:
		return fmt.Errorf("unknown adapter %q", *adapterKind)
	}

	tokens, err := loadTokens(*dataset, cfg.Vocab, *dataSeed)
	if err != nil {
		return err
	}
	loader, err := data.NewLoader(tokens, *batch, *seq, *dataSeed)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(obs.NewWallClock())
		// Ring capture: long runs keep the freshest spans under a byte
		// budget instead of going quiet once the buffer fills.
		tracer.EnableRing(obs.DefaultRingBytes)
		tracer.SetProcess(2, "menos-client:"+*id)
		tracer.Instrument(reg)
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ml.Close()
		stopSampler := obs.StartRuntimeSampler(reg, obs.RuntimeSamplerConfig{})
		defer stopSampler()
		var opts []obs.HandlerOption
		if *pprofFlag {
			opts = append(opts, obs.WithPprof())
		}
		go func() { _ = http.Serve(ml, obs.Handler(reg, tracer, opts...)) }()
		fmt.Printf("menos-client %s: telemetry on http://%s/metrics\n", *id, ml.Addr())
	}

	dialAddr := *addr
	if *fleetd != "" {
		placed, err := placeViaFleetd(*fleetd, *id, cfg.Name)
		if err != nil {
			return fmt.Errorf("fleetd placement: %w", err)
		}
		dialAddr = placed
		fmt.Printf("menos-client %s: fleetd placed us on %s\n", *id, dialAddr)
	}
	c, err := client.Dial(dialAddr, client.Config{
		ClientID:    *id,
		Model:       cfg,
		WeightSeed:  *seed,
		Adapter:     spec,
		AdapterSeed: *dataSeed * 31,
		LR:          *lr,
		Batch:       *batch,
		Seq:         *seq,
		Metrics:     reg,
		Tracer:      tracer,
		WireCodec:   wireCodec,
		Migrate:     *migrate,
		OnMigrate: func(target string) {
			fmt.Printf("menos-client %s: live-migrated to %s\n", *id, target)
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fwd, bwd := c.Demands()
	fmt.Printf("menos-client %s: admitted (server profiled fwd=%d bwd=%d bytes)\n", *id, fwd, bwd)

	var finalLoss float64
	for step := 0; step < *steps; step++ {
		ids, targets := loader.Next()
		res, err := stepWithRetry(c, ids, targets, *maxRetries)
		if err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		finalLoss = res.Loss
		if step%10 == 0 || step == *steps-1 {
			fmt.Printf("step %3d  loss %.4f  ppl %8.2f  comm %v  comp %v\n",
				step, res.Loss, res.Perplexity,
				res.CommTime.Round(1e6), res.CompTime.Round(1e6))
		}
	}
	if n := c.Migrations(); n > 0 {
		fmt.Printf("menos-client %s: finished after %d live migration(s)\n", *id, n)
	}
	if *finalLossOut != "" {
		// Bit-exact pin: hex of the float64 bits, not a rounded decimal,
		// so two runs compare equal iff their losses are identical.
		pin := fmt.Sprintf("%016x\n", math.Float64bits(finalLoss))
		if err := os.WriteFile(*finalLossOut, []byte(pin), 0o644); err != nil {
			return fmt.Errorf("final-loss-out: %w", err)
		}
	}
	return nil
}

// placedEndpoint is the subset of fleet.Endpoint the client needs
// from a fleetd POST /place response.
type placedEndpoint struct {
	Addr string `json:"addr"`
}

// placeViaFleetd asks the control plane for a server (the redirect
// handshake: fleetd picks by policy over live fleet load).
func placeViaFleetd(base, clientID, model string) (string, error) {
	body := fmt.Sprintf(`{"ID":%q,"BaseModel":%q}`, clientID, model)
	httpc := &http.Client{Timeout: 10 * time.Second}
	resp, err := httpc.Post(strings.TrimRight(base, "/")+"/place", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var ep placedEndpoint
	if err := json.NewDecoder(resp.Body).Decode(&ep); err != nil {
		return "", err
	}
	if ep.Addr == "" {
		return "", fmt.Errorf("fleetd returned an endpoint with no address")
	}
	return ep.Addr, nil
}

// stepWithRetry runs one step, backing off and resubmitting when the
// server sheds it with a retryable overload rejection. A full step is
// safe to resubmit: the server mutates nothing before the shed.
func stepWithRetry(c *client.Client, ids, targets []int, maxRetries int) (client.StepResult, error) {
	for attempt := 0; ; attempt++ {
		res, err := c.Step(ids, targets)
		if err == nil || !errors.Is(err, client.ErrOverloaded) || attempt >= maxRetries {
			return res, err
		}
		backoff, _ := client.RetryAfter(err)
		if backoff <= 0 {
			backoff = 100 * time.Millisecond
		}
		fmt.Printf("server overloaded, retrying in %v (attempt %d/%d)\n",
			backoff, attempt+1, maxRetries)
		time.Sleep(backoff)
	}
}

func loadTokens(dataset string, vocab int, seed uint64) ([]int, error) {
	switch dataset {
	case "shakespeare":
		tok, err := data.NewCharTokenizer(data.Shakespeare(), vocab)
		if err != nil {
			return nil, err
		}
		return tok.Encode(data.Shakespeare())
	case "wikitext":
		corpus := data.SyntheticWikitext(seed, 3000)
		tok, err := data.NewWordTokenizer(corpus, vocab)
		if err != nil {
			return nil, err
		}
		return tok.Encode(corpus)
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
