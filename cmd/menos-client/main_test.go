package main

import (
	"testing"

	"menos/internal/core"
	"menos/internal/model"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-model", "does-not-exist"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run([]string{"-model", "opt-tiny", "-adapter", "nope"}); err == nil {
		t.Fatal("unknown adapter accepted")
	}
	if err := run([]string{"-model", "opt-tiny", "-dataset", "nope"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run([]string{"-model", "opt-tiny", "-addr", "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable server accepted")
	}
	if err := run([]string{"-model", "opt-tiny", "-metrics-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("unusable metrics address accepted")
	}
}

func TestLoadTokens(t *testing.T) {
	for _, ds := range []string{"shakespeare", "wikitext"} {
		tokens, err := loadTokens(ds, 96, 1)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if len(tokens) < 100 {
			t.Fatalf("%s: only %d tokens", ds, len(tokens))
		}
	}
}

// TestClientAgainstLiveServer drives the full CLI pair: an in-process
// deployment plus the client command's run().
func TestClientAgainstLiveServer(t *testing.T) {
	dep, err := core.NewDeployment(core.DeploymentConfig{
		Model:      model.OPTTiny(),
		WeightSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	addr, err := dep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-addr", addr,
		"-id", "cli-test",
		"-model", "opt-tiny",
		"-seed", "42",
		"-dataset", "shakespeare",
		"-steps", "3",
		"-batch", "2",
		"-seq", "16",
		"-metrics-addr", "127.0.0.1:0", // exercise the telemetry endpoint wiring
	})
	if err != nil {
		t.Fatal(err)
	}
}
