// Command menos-fleetd is the Menos control plane: it polls a fixed
// fleet of menos-server processes (their /healthz and /loadz
// endpoints), places arriving clients onto servers through a
// pluggable policy, and drives live client migrations through the
// servers' admin planes — draining servers evacuate, crowded servers
// shed one client at a time to the emptiest peer, and a client moved
// mid-run resumes on the target without losing an iteration
// (docs/FLEET.md).
//
// Usage:
//
//	menos-fleetd -server id=1,addr=HOST:PORT,metrics=URL,admin=URL
//	             [-server ...] [-placer policy] [-poll 2s]
//	             [-rebalance] [-listen :9600] [-quiet]
//
// Each -server names one managed endpoint: the fleet identity the
// server was started with (-server-id), the split-protocol address
// clients dial, and the base URLs of its metrics (/healthz, /loadz)
// and admin (/admin/*) planes. /healthz must echo the configured
// identity back; a mismatch (a different process answering on a
// reused port) marks the endpoint unhealthy instead of trusting a
// stranger's "ok".
//
// Each poll tick additionally scrapes every healthy server's
// /metrics.json into a bounded in-memory time-series store (labeled
// {server=,client=}; raw samples downsample past -retention windows —
// see internal/tsdb) and evaluates the built-in alert catalog over it:
// SLO burn rate against each server's advertised admission target,
// shed storms, GPU OOMs, dead or identity-mismatched servers, fleet
// imbalance and batch-occupancy collapse, each with Pending→Firing
// dwell hysteresis (internal/alert). With -flight-dir set, every
// transition into Firing triggers a flight-recorder snapshot. With
// -federate-traces, each tick also pages every server's /trace ring
// through a resume cursor into per-server mirror tracers, so /trace on
// the daemon serves ONE merged Chrome trace of the whole fleet — a
// migrated client's spans stitch across server processes by iteration
// trace ID.
//
// The daemon's own HTTP surface (-listen) serves:
//
//	/fleetz        the whole fleet as last polled (JSON; menos-top
//	               renders it with -fleetd)
//	/queryz        federated time-series: no params lists series
//	               names; ?name=X[&server=N][&client=C][&window=5m]
//	               returns the matching series' points (JSON)
//	/alertz        the alert engine snapshot: every rule, its live
//	               instances, and recent transitions (JSON)
//	/trace         the merged fleet Chrome trace (with
//	               -federate-traces)
//	POST /place    body ClientInfo JSON -> the chosen Endpoint JSON
//	               (redirect handshake for arriving clients)
//	POST /drain    ?id=N: mark a server draining; its clients migrate
//	               away on subsequent rebalance ticks
//	POST /migrate  {"client_id","src","dst"}: order one migration now
//	/metrics,      the menos_fleetd_* families (Prometheus text and
//	/metrics.json  JSON), plus /healthz liveness and the menos_go_*
//	               runtime gauges; -pprof mounts /debug/pprof/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"menos/internal/alert"
	"menos/internal/fleet"
	"menos/internal/obs"
	"menos/internal/tsdb"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "menos-fleetd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("menos-fleetd", flag.ContinueOnError)
	var endpoints []fleet.Endpoint
	fs.Func("server", "managed server: id=N,addr=HOST:PORT,metrics=URL,admin=URL (repeatable)", func(s string) error {
		ep, err := parseEndpoint(s)
		if err != nil {
			return err
		}
		endpoints = append(endpoints, ep)
		return nil
	})
	placerName := fs.String("placer", "policy", "placement policy: policy, round-robin, least-loaded, memory-best-fit")
	poll := fs.Duration("poll", 2*time.Second, "fleet polling interval")
	rebalance := fs.Bool("rebalance", true, "order migrations on each poll (drain evacuation and load smoothing)")
	listen := fs.String("listen", ":9600", "control-plane HTTP listen address")
	alerts := fs.Bool("alerts", true, "evaluate the built-in alert catalog over the federated metrics each poll tick")
	sloP99 := fs.Duration("slo-p99", 0, "burn-rate target for servers that do not advertise one (0 skips them)")
	retention := fs.Duration("retention", 0, "federated time-series retention (0 = 1h; older downsampled buckets are evicted)")
	fedTraces := fs.Bool("federate-traces", false, "scrape every server's /trace ring each poll and serve the merged fleet trace on /trace")
	traceBudget := fs.Int64("trace-buffer-mb", 4, "per-server mirror ring budget for trace federation in MiB")
	flightDir := fs.String("flight-dir", "", "write a flight-recorder snapshot (fleetd metrics JSONL) on every alert transition into firing")
	pprofFlag := fs.Bool("pprof", false, "mount /debug/pprof/ on the control-plane mux and capture profiles in flight snapshots")
	quiet := fs.Bool("quiet", false, "disable orchestration logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(endpoints) == 0 {
		return fmt.Errorf("no servers: pass at least one -server id=...,addr=...,metrics=...,admin=...")
	}
	placer, err := fleet.PlacerByName(*placerName)
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if !*quiet {
		logger := log.New(os.Stderr, "menos-fleetd ", log.LstdFlags|log.Lmsgprefix)
		logf = logger.Printf
	}

	reg := obs.NewRegistry()
	// One clock for everything time-shaped in this process: sample
	// stamps, alert dwells and down-time accounting all read the same
	// monotonic epoch, so /queryz timestamps and /alertz since-fields
	// line up exactly.
	clock := obs.NewWallClock()
	store := tsdb.New(tsdb.Config{Retention: *retention})
	var flight *obs.FlightRecorder
	if *flightDir != "" {
		flight, err = obs.NewFlightRecorder(obs.FlightConfig{
			Dir:             *flightDir,
			Clock:           clock,
			CaptureProfiles: *pprofFlag,
		}, reg, nil)
		if err != nil {
			return fmt.Errorf("flight recorder: %w", err)
		}
		defer flight.Close()
	}
	var engine *alert.Engine
	if *alerts {
		recording, rules := alert.Catalog(alert.CatalogConfig{
			Poll:         *poll,
			SLOTargetP99: *sloP99,
		})
		engine = alert.NewEngine(alert.Config{
			Store:     store,
			Rules:     rules,
			Recording: recording,
			OnFiring: func(tr alert.Transition) {
				logf("ALERT firing: %s on %s (value %.3g)", tr.Rule, tr.Series, tr.Value)
				if flight != nil {
					flight.Trigger(obs.FlightReasonAlert + ":" + tr.Rule)
				}
			},
		})
		engine.Instrument(reg)
	}
	ctrl, err := fleet.NewController(fleet.ControllerConfig{
		Endpoints: endpoints,
		Placer:    placer,
		Metrics:   reg,
		Store:     store,
		Clock:     clock,
		// Wall-clock token seed: a restarted fleetd must not mint
		// resume tokens colliding with snapshots its previous life
		// staged at the servers.
		TokenSeed:        uint64(time.Now().UnixNano()),
		FederateTraces:   *fedTraces,
		TraceBudgetBytes: *traceBudget << 20,
		Logf:             logf,
	})
	if err != nil {
		return err
	}
	stopSampler := obs.StartRuntimeSampler(reg, obs.RuntimeSamplerConfig{})
	defer stopSampler()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	mux := http.NewServeMux()
	hopts := []obs.HandlerOption{}
	if *pprofFlag {
		hopts = append(hopts, obs.WithPprof())
	}
	mux.Handle("/", obs.Handler(reg, nil, hopts...))
	mux.HandleFunc("GET /queryz", func(w http.ResponseWriter, req *http.Request) {
		doc, err := queryzDoc(store, clock.Now(), req.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		data, _ := json.MarshalIndent(doc, "", "  ")
		_, _ = w.Write(append(data, '\n'))
	})
	mux.HandleFunc("GET /alertz", func(w http.ResponseWriter, _ *http.Request) {
		if engine == nil {
			http.Error(w, "alerting disabled (-alerts=false)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		data, _ := json.MarshalIndent(engine.Snapshot(clock.Now()), "", "  ")
		_, _ = w.Write(append(data, '\n'))
	})
	// Shadows the obs.Handler /trace (which would be empty — fleetd has
	// no tracer of its own): the federated fleet trace instead.
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, _ *http.Request) {
		if !*fedTraces {
			http.Error(w, "trace federation disabled (-federate-traces)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := ctrl.WriteMergedTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /fleetz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(ctrl.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(data, '\n'))
	})
	mux.HandleFunc("POST /place", func(w http.ResponseWriter, req *http.Request) {
		var ci fleet.ClientInfo
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&ci); err != nil {
			http.Error(w, "bad client info: "+err.Error(), http.StatusBadRequest)
			return
		}
		ep, err := ctrl.PlaceClient(ci)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ep)
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, req *http.Request) {
		id, err := strconv.Atoi(req.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		if err := ctrl.Drain(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		logf("server %d marked draining", id)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("POST /migrate", func(w http.ResponseWriter, req *http.Request) {
		var ord struct {
			ClientID string `json:"client_id"`
			Src      int    `json:"src"`
			Dst      int    `json:"dst"`
		}
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&ord); err != nil {
			http.Error(w, "bad order: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := ctrl.MigrateClient(ord.ClientID, ord.Src, ord.Dst); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	go func() {
		if serr := http.Serve(ln, mux); serr != nil {
			logf("control endpoint: %v", serr)
		}
	}()
	fmt.Printf("menos-fleetd: managing %d servers, control on http://%s/fleetz\n", len(endpoints), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*poll)
	defer tick.Stop()
	for {
		healthy := ctrl.PollOnce()
		if healthy == 0 {
			logf("no healthy servers")
		}
		if engine != nil {
			engine.EvalTick(clock.Now())
		}
		if *rebalance {
			if moved, err := ctrl.RebalanceOnce(); err != nil {
				logf("rebalance: %v", err)
			} else if moved > 0 {
				// Re-poll soon: the fleet is in motion.
				logf("rebalance: %d migration(s) ordered", moved)
			}
		}
		select {
		case <-sig:
			return nil
		case <-tick.C:
		}
	}
}

// queryzPoint is one sample in a /queryz response; t is seconds on the
// daemon's clock epoch (process start), matching /alertz at_seconds.
type queryzPoint struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

type queryzSeries struct {
	Name   string        `json:"name"`
	Server int           `json:"server"`
	Client string        `json:"client,omitempty"`
	Points []queryzPoint `json:"points"`
}

type queryzDocT struct {
	AtSeconds float64        `json:"at_seconds"`
	Names     []string       `json:"names,omitempty"`
	Series    []queryzSeries `json:"series,omitempty"`
}

// queryzDoc renders one /queryz request: without ?name= it lists the
// store's series names; with one it returns every matching series'
// points over the trailing ?window= (default 5m), optionally narrowed
// by ?server= and ?client=.
func queryzDoc(store *tsdb.Store, now time.Duration, q map[string][]string) (queryzDocT, error) {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	doc := queryzDocT{AtSeconds: now.Seconds()}
	name := get("name")
	if name == "" {
		doc.Names = store.Names()
		return doc, nil
	}
	window := 5 * time.Minute
	if w := get("window"); w != "" {
		d, err := time.ParseDuration(w)
		if err != nil || d <= 0 {
			return doc, fmt.Errorf("bad window %q", w)
		}
		window = d
	}
	serverFilter, haveServer := 0, false
	if s := get("server"); s != "" {
		id, err := strconv.Atoi(s)
		if err != nil {
			return doc, fmt.Errorf("bad server %q", s)
		}
		serverFilter, haveServer = id, true
	}
	clientFilter, haveClient := get("client"), q["client"] != nil
	from := now - window
	if from < 0 {
		from = 0
	}
	for _, sr := range store.Query(name, from, now) {
		if haveServer && sr.ID.Server != serverFilter {
			continue
		}
		if haveClient && sr.ID.Client != clientFilter {
			continue
		}
		out := queryzSeries{
			Name:   sr.ID.Name,
			Server: sr.ID.Server,
			Client: sr.ID.Client,
			Points: make([]queryzPoint, 0, len(sr.Points)),
		}
		for _, p := range sr.Points {
			out.Points = append(out.Points, queryzPoint{T: p.At.Seconds(), V: p.Value})
		}
		doc.Series = append(doc.Series, out)
	}
	return doc, nil
}

// parseEndpoint parses one -server flag value.
func parseEndpoint(s string) (fleet.Endpoint, error) {
	var ep fleet.Endpoint
	seen := map[string]bool{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return ep, fmt.Errorf("bad -server field %q (want key=value)", kv)
		}
		seen[k] = true
		switch k {
		case "id":
			id, err := strconv.Atoi(v)
			if err != nil {
				return ep, fmt.Errorf("bad -server id %q", v)
			}
			ep.ID = id
		case "addr":
			ep.Addr = v
		case "metrics":
			ep.MetricsURL = strings.TrimRight(v, "/")
		case "admin":
			ep.AdminURL = strings.TrimRight(v, "/")
		default:
			return ep, fmt.Errorf("unknown -server field %q", k)
		}
	}
	for _, want := range []string{"id", "addr", "metrics", "admin"} {
		if !seen[want] {
			return ep, fmt.Errorf("-server %q missing %s=", s, want)
		}
	}
	return ep, nil
}
