// Command menos-fleetd is the Menos control plane: it polls a fixed
// fleet of menos-server processes (their /healthz and /loadz
// endpoints), places arriving clients onto servers through a
// pluggable policy, and drives live client migrations through the
// servers' admin planes — draining servers evacuate, crowded servers
// shed one client at a time to the emptiest peer, and a client moved
// mid-run resumes on the target without losing an iteration
// (docs/FLEET.md).
//
// Usage:
//
//	menos-fleetd -server id=1,addr=HOST:PORT,metrics=URL,admin=URL
//	             [-server ...] [-placer policy] [-poll 2s]
//	             [-rebalance] [-listen :9600] [-quiet]
//
// Each -server names one managed endpoint: the fleet identity the
// server was started with (-server-id), the split-protocol address
// clients dial, and the base URLs of its metrics (/healthz, /loadz)
// and admin (/admin/*) planes. /healthz must echo the configured
// identity back; a mismatch (a different process answering on a
// reused port) marks the endpoint unhealthy instead of trusting a
// stranger's "ok".
//
// The daemon's own HTTP surface (-listen) serves:
//
//	/fleetz        the whole fleet as last polled (JSON; menos-top
//	               renders it with -fleetd)
//	POST /place    body ClientInfo JSON -> the chosen Endpoint JSON
//	               (redirect handshake for arriving clients)
//	POST /drain    ?id=N: mark a server draining; its clients migrate
//	               away on subsequent rebalance ticks
//	POST /migrate  {"client_id","src","dst"}: order one migration now
//	/metrics,      the menos_fleetd_* families (Prometheus text and
//	/metrics.json  JSON), plus /healthz liveness
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"menos/internal/fleet"
	"menos/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "menos-fleetd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("menos-fleetd", flag.ContinueOnError)
	var endpoints []fleet.Endpoint
	fs.Func("server", "managed server: id=N,addr=HOST:PORT,metrics=URL,admin=URL (repeatable)", func(s string) error {
		ep, err := parseEndpoint(s)
		if err != nil {
			return err
		}
		endpoints = append(endpoints, ep)
		return nil
	})
	placerName := fs.String("placer", "policy", "placement policy: policy, round-robin, least-loaded, memory-best-fit")
	poll := fs.Duration("poll", 2*time.Second, "fleet polling interval")
	rebalance := fs.Bool("rebalance", true, "order migrations on each poll (drain evacuation and load smoothing)")
	listen := fs.String("listen", ":9600", "control-plane HTTP listen address")
	quiet := fs.Bool("quiet", false, "disable orchestration logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(endpoints) == 0 {
		return fmt.Errorf("no servers: pass at least one -server id=...,addr=...,metrics=...,admin=...")
	}
	placer, err := fleet.PlacerByName(*placerName)
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if !*quiet {
		logger := log.New(os.Stderr, "menos-fleetd ", log.LstdFlags|log.Lmsgprefix)
		logf = logger.Printf
	}

	reg := obs.NewRegistry()
	ctrl, err := fleet.NewController(fleet.ControllerConfig{
		Endpoints: endpoints,
		Placer:    placer,
		Metrics:   reg,
		// Wall-clock token seed: a restarted fleetd must not mint
		// resume tokens colliding with snapshots its previous life
		// staged at the servers.
		TokenSeed: uint64(time.Now().UnixNano()),
		Logf:      logf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(reg, nil))
	mux.HandleFunc("GET /fleetz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(ctrl.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(data, '\n'))
	})
	mux.HandleFunc("POST /place", func(w http.ResponseWriter, req *http.Request) {
		var ci fleet.ClientInfo
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&ci); err != nil {
			http.Error(w, "bad client info: "+err.Error(), http.StatusBadRequest)
			return
		}
		ep, err := ctrl.PlaceClient(ci)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ep)
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, req *http.Request) {
		id, err := strconv.Atoi(req.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		if err := ctrl.Drain(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		logf("server %d marked draining", id)
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("POST /migrate", func(w http.ResponseWriter, req *http.Request) {
		var ord struct {
			ClientID string `json:"client_id"`
			Src      int    `json:"src"`
			Dst      int    `json:"dst"`
		}
		if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&ord); err != nil {
			http.Error(w, "bad order: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := ctrl.MigrateClient(ord.ClientID, ord.Src, ord.Dst); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	go func() {
		if serr := http.Serve(ln, mux); serr != nil {
			logf("control endpoint: %v", serr)
		}
	}()
	fmt.Printf("menos-fleetd: managing %d servers, control on http://%s/fleetz\n", len(endpoints), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*poll)
	defer tick.Stop()
	for {
		healthy := ctrl.PollOnce()
		if healthy == 0 {
			logf("no healthy servers")
		}
		if *rebalance {
			if moved, err := ctrl.RebalanceOnce(); err != nil {
				logf("rebalance: %v", err)
			} else if moved > 0 {
				// Re-poll soon: the fleet is in motion.
				logf("rebalance: %d migration(s) ordered", moved)
			}
		}
		select {
		case <-sig:
			return nil
		case <-tick.C:
		}
	}
}

// parseEndpoint parses one -server flag value.
func parseEndpoint(s string) (fleet.Endpoint, error) {
	var ep fleet.Endpoint
	seen := map[string]bool{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return ep, fmt.Errorf("bad -server field %q (want key=value)", kv)
		}
		seen[k] = true
		switch k {
		case "id":
			id, err := strconv.Atoi(v)
			if err != nil {
				return ep, fmt.Errorf("bad -server id %q", v)
			}
			ep.ID = id
		case "addr":
			ep.Addr = v
		case "metrics":
			ep.MetricsURL = strings.TrimRight(v, "/")
		case "admin":
			ep.AdminURL = strings.TrimRight(v, "/")
		default:
			return ep, fmt.Errorf("unknown -server field %q", k)
		}
	}
	for _, want := range []string{"id", "addr", "metrics", "admin"} {
		if !seen[want] {
			return ep, fmt.Errorf("-server %q missing %s=", s, want)
		}
	}
	return ep, nil
}
