package main

import (
	"net/url"
	"testing"
	"time"

	"menos/internal/obs"
	"menos/internal/tsdb"
)

func queryStore() *tsdb.Store {
	st := tsdb.New(tsdb.Config{})
	for i := 1; i <= 3; i++ {
		at := time.Duration(i) * time.Second
		st.Append(tsdb.SeriesID{Name: obs.MetricServerActiveClients, Server: 1}, at, float64(i))
		st.Append(tsdb.SeriesID{Name: obs.MetricServerActiveClients, Server: 2}, at, float64(10*i))
		st.Append(tsdb.SeriesID{Name: obs.MetricServerShedsTotal, Server: 1, Client: "c1"}, at, float64(i))
	}
	return st
}

func TestQueryzListsNames(t *testing.T) {
	doc, err := queryzDoc(queryStore(), 10*time.Second, url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.AtSeconds != 10 {
		t.Fatalf("at_seconds = %v, want 10", doc.AtSeconds)
	}
	if len(doc.Names) != 2 || doc.Names[0] != obs.MetricServerActiveClients {
		t.Fatalf("names = %v", doc.Names)
	}
	if doc.Series != nil {
		t.Fatalf("series present without ?name=: %v", doc.Series)
	}
}

func TestQueryzFiltersSeries(t *testing.T) {
	st := queryStore()
	doc, err := queryzDoc(st, 10*time.Second, url.Values{"name": {obs.MetricServerActiveClients}})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 2 {
		t.Fatalf("series = %d, want 2 (both servers)", len(doc.Series))
	}
	doc, err = queryzDoc(st, 10*time.Second, url.Values{
		"name": {obs.MetricServerActiveClients}, "server": {"2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Server != 2 {
		t.Fatalf("server-filtered series = %+v", doc.Series)
	}
	if n := len(doc.Series[0].Points); n != 3 {
		t.Fatalf("points = %d, want 3", n)
	}
	if p := doc.Series[0].Points[2]; p.T != 3 || p.V != 30 {
		t.Fatalf("last point = %+v, want {3 30}", p)
	}
	doc, err = queryzDoc(st, 10*time.Second, url.Values{
		"name": {obs.MetricServerShedsTotal}, "client": {"c1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Client != "c1" {
		t.Fatalf("client-filtered series = %+v", doc.Series)
	}
}

func TestQueryzWindowBounds(t *testing.T) {
	st := queryStore()
	// Only the sample at t=3s falls inside a 1.5s window ending at 4s.
	doc, err := queryzDoc(st, 4*time.Second, url.Values{
		"name": {obs.MetricServerActiveClients}, "server": {"1"}, "window": {"1500ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || len(doc.Series[0].Points) != 1 {
		t.Fatalf("windowed series = %+v", doc.Series)
	}
	if _, err := queryzDoc(st, 0, url.Values{"name": {"x"}, "window": {"bogus"}}); err == nil {
		t.Fatal("bad window accepted")
	}
	if _, err := queryzDoc(st, 0, url.Values{"name": {"x"}, "server": {"bogus"}}); err == nil {
		t.Fatal("bad server accepted")
	}
}
