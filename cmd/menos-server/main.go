// Command menos-server runs a real Menos split fine-tuning server: it
// preloads one shared base model and serves any number of concurrent
// clients with on-demand GPU memory allocation and FCFS+backfill
// scheduling.
//
// Usage:
//
//	menos-server [-addr :7600] [-model opt-tiny] [-seed 42]
//	             [-gpu-gb 32] [-preserve] [-quiet]
//	             [-batch-size N] [-batch-hold 2ms]
//	             [-wire-compress off|fp16|int8]
//	             [-metrics-addr :9090] [-trace-buffer-mb 8]
//	             [-flight-dir DIR] [-pprof] [-server-id 0]
//
// -batch-size enables cross-client batch formation: up to N compatible
// LoRA iteration requests coalesce into one batched kernel invocation
// over the shared base, each client keeping its own adapter via
// per-row dispatch (docs/BATCHING.md). Results are bit-identical to
// serial execution; -batch-hold bounds how long a partial batch waits
// for co-tenants.
//
// -wire-compress quantizes the activation tensors this server sends to
// clients that negotiated the compression capability (fp16 halves,
// int8 quarters the payload bytes; docs/WIRE.md). Legacy clients and
// "off" keep the wire byte-identical to a pre-compression server.
//
// With -metrics-addr set, a telemetry endpoint serves Prometheus text
// on /metrics (per-tenant {client="..."} series included), JSON on
// /metrics.json, health as JSON on /healthz, the per-tenant load
// document on /loadz (the fleet.LoadSnapshot consumed by menos-top),
// the fleet admin plane (migration orders, snapshot staging — see
// docs/FLEET.md and menos-fleetd) under /admin/,
// and a Chrome trace of recent request spans on /trace (pageable with
// ?since=/?window=; spans are kept in a ring bounded by
// -trace-buffer-mb). A runtime sampler publishes the menos_go_* gauges
// (heap, goroutines, GC). With -flight-dir set, a flight recorder
// snapshots the trace window and metrics to size-bounded JSONL on
// sheds, OOMs and admission state changes (see docs/OBSERVABILITY.md).
// -pprof additionally mounts net/http/pprof under /debug/pprof/ on the
// metrics mux and makes flight snapshots capture heap and goroutine
// profiles next to the JSONL.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"menos/internal/checkpoint"
	"menos/internal/core"
	"menos/internal/gpu"
	"menos/internal/model"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/sched"
	"menos/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "menos-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("menos-server", flag.ContinueOnError)
	addr := fs.String("addr", ":7600", "listen address")
	modelName := fs.String("model", "opt-tiny", "hosted base model (opt-tiny, llama-tiny)")
	seed := fs.Uint64("seed", 42, "model owner's weight seed")
	gpuGB := fs.Int64("gpu-gb", 32, "simulated GPU memory budget in GiB")
	preserve := fs.Bool("preserve", false, "disable on-demand allocation (Fig. 3(b) ablation)")
	quantFlag := fs.String("quant", "", "quantize the shared base: int8 or int4 (default fp32)")
	weights := fs.String("weights", "", "load base weights from a checkpoint file instead of the seed")
	exportWeights := fs.String("export-weights", "", "write the base weights to a file and exit (model distribution)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics, /metrics.json, /trace and /healthz on this address (e.g. :9090)")
	traceBudget := fs.Int64("trace-buffer-mb", 8, "ring-buffer budget for continuous span capture in MiB (with -metrics-addr)")
	flightDir := fs.String("flight-dir", "", "write flight-recorder snapshots (trace window + metrics JSONL) to this directory on shed/OOM/admission events")
	pprofFlag := fs.Bool("pprof", false, "mount /debug/pprof/ on the metrics mux and capture heap/goroutine profiles in flight snapshots")
	serverID := fs.Int("server-id", 0, "fleet identity echoed by /loadz")
	tenantCap := fs.Int("tenant-cap", 0, "max per-client metric series before aggregating into {client=\"other\"} (0 = default)")
	sloP99 := fs.Duration("slo-p99", 0, "grant-wait p99 target enabling adaptive admission control (0 disables; see docs/ADMISSION.md)")
	sloWindow := fs.Duration("slo-window", 0, "admission-control sliding window (default 8x the p99 target)")
	wireCompress := fs.String("wire-compress", "off", "compress outbound activation payloads for negotiating clients: off, fp16 or int8 (docs/WIRE.md)")
	batchSize := fs.Int("batch-size", 0, "coalesce up to this many compatible LoRA requests per kernel invocation (0 disables; incompatible with -preserve; see docs/BATCHING.md)")
	batchHold := fs.Duration("batch-hold", 0, "how long batch formation waits for co-tenants to join (default sched.DefaultMaxHold)")
	quiet := fs.Bool("quiet", false, "disable serving logs")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := model.ConfigByName(*modelName)
	if err != nil {
		return err
	}
	if *exportWeights != "" {
		m, err := model.New(tensor.NewRNG(*seed), cfg)
		if err != nil {
			return err
		}
		if err := checkpoint.SaveModelFile(*exportWeights, m); err != nil {
			return err
		}
		fmt.Printf("menos-server: exported %s base weights (seed %d) to %s\n",
			cfg.Name, *seed, *exportWeights)
		return nil
	}
	var prec quant.Precision
	switch *quantFlag {
	case "":
	case "int8":
		prec = quant.Int8
	case "int4":
		prec = quant.Int4
	default:
		return fmt.Errorf("unknown quantization %q (want int8 or int4)", *quantFlag)
	}
	wireCodec, err := quant.ParseCodec(*wireCompress)
	if err != nil {
		return fmt.Errorf("-wire-compress: %w", err)
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "menos-server ", log.LstdFlags|log.Lmsgprefix)
	}
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metricsAddr != "" || *flightDir != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(obs.NewWallClock())
		// Ring capture: old spans are evicted under the byte budget
		// instead of new ones being dropped, so /trace and the flight
		// recorder always hold the most recent window.
		tracer.EnableRing(*traceBudget << 20)
		// Distinct per-server process identity: fleetd's merged trace
		// renders each server as its own process row, and the pid must
		// differ per server for the rows not to collapse.
		pname := "menos-server"
		pid := 1
		if *serverID != 0 {
			pname = fmt.Sprintf("menos-server-%d", *serverID)
			pid = *serverID
		}
		tracer.SetProcess(pid, pname)
		tracer.Instrument(reg)
	}
	var flight *obs.FlightRecorder
	if *flightDir != "" {
		flight, err = obs.NewFlightRecorder(obs.FlightConfig{
			Dir: *flightDir,
			// Profile capture is wall-clock work; it rides the same
			// opt-in as the pprof endpoints.
			CaptureProfiles: *pprofFlag,
		}, reg, tracer)
		if err != nil {
			return fmt.Errorf("flight recorder: %w", err)
		}
		defer flight.Close()
	}
	dep, err := core.NewDeployment(core.DeploymentConfig{
		Model:          cfg,
		WeightSeed:     *seed,
		GPU:            gpu.Spec{Name: "configured", MemoryBytes: *gpuGB << 30},
		PreserveMemory: *preserve,
		WeightsFile:    *weights,
		BaseQuant:      prec,
		SLO:            sched.SLO{TargetP99: *sloP99, Window: *sloWindow},
		Batch:          sched.BatchPolicy{MaxSize: *batchSize, MaxHold: *batchHold},
		WireCodec:      wireCodec,
		Logger:         logger,
		Metrics:        reg,
		Tracer:         tracer,
		Flight:         flight,
		ServerID:       *serverID,
		TenantCap:      *tenantCap,
	})
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		stopSampler := obs.StartRuntimeSampler(reg, obs.RuntimeSamplerConfig{})
		defer stopSampler()
		admission := func() string { return dep.Server.Scheduler().AdmissionState().String() }
		opts := []obs.HandlerOption{
			obs.WithAdmission(admission),
			obs.WithLoadz(func() any { return dep.Server.LoadSnapshot() }),
			// Fleet identity: /healthz echoes -server-id and the bound
			// serving address (read per request — the listener binds
			// after this endpoint starts), so a polling control plane
			// detects a different process answering on a reused port.
			obs.WithIdentity(func() (int, string) { return *serverID, dep.Addr() }),
		}
		if *pprofFlag {
			opts = append(opts, obs.WithPprof())
		}
		// The admin plane (migration orders, snapshot staging) rides
		// the metrics listener under /admin/ — both are loopback-scoped
		// operator surfaces today.
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(reg, tracer, opts...))
		mux.Handle("/admin/", dep.Server.AdminHandler())
		go func() {
			if serr := http.Serve(ml, mux); serr != nil && logger != nil {
				logger.Printf("metrics endpoint: %v", serr)
			}
		}()
		fmt.Printf("menos-server: telemetry on http://%s/metrics\n", ml.Addr())
	}
	bound, err := dep.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("menos-server: serving %s (seed %d) on %s\n", cfg.Name, *seed, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		_ = dep.Close()
	}()
	return dep.Wait()
}
