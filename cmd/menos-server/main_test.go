package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-model", "does-not-exist"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run([]string{"-model", "opt-tiny", "-quant", "int3"}); err == nil {
		t.Fatal("unknown quantization accepted")
	}
	if err := run([]string{"-model", "opt-tiny", "-addr", "256.0.0.1:bad"}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestExportWeights(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.mcpk")
	if err := run([]string{"-model", "opt-tiny", "-seed", "9", "-export-weights", path}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty weights export")
	}
	if err := run([]string{"-model", "opt-tiny", "-export-weights", "/nonexistent-dir/x"}); err == nil {
		t.Fatal("bad export path accepted")
	}
}
