// Command menos-top is a terminal dashboard for a Menos fleet: it
// polls each server's /loadz endpoint (served by the metrics mux, see
// menos-server -metrics-addr) and renders a refreshing table of
// per-server load — admission state, queue depth, memory — with the
// per-tenant accounting rows underneath: compute seconds, grant waits,
// GPU byte-seconds, wire traffic, iterations, sheds and retries.
//
// Usage:
//
//	menos-top -servers host1:9090,host2:9090 [-interval 2s] [-once]
//	          [-top 10]
//	menos-top -fleetd http://host:9600 [-interval 2s] [-once] [-json]
//
// With -fleetd, menos-top renders the control plane's aggregated
// /fleetz view instead of polling servers itself: one request paints
// every managed server, including endpoints fleetd marked unhealthy
// or answering with the wrong fleet identity (DOWN rows carry the
// poll error and how long the server has been dark). When the daemon
// runs its alert engine, an alerts pane renders below the fleet table
// — every pending/firing instance plus the recent transition history —
// and each server row gains /queryz-backed sparklines of its recent
// active-client count and SLO burn rate.
//
// -once prints a single snapshot and exits (scriptable); otherwise the
// screen refreshes in place every -interval until interrupted. -top
// bounds the per-tenant rows shown per server (heaviest compute
// first). -once -json instead emits one machine-readable JSON document
// (the raw /fleetz and /alertz payloads with -fleetd, or the polled
// /loadz documents with -servers) for scripts that want the data, not
// the table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"menos/internal/alert"
	"menos/internal/fleet"
	"menos/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "menos-top:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("menos-top", flag.ContinueOnError)
	servers := fs.String("servers", "", "comma-separated metrics addresses to poll (host:port or full http://host:port)")
	fleetd := fs.String("fleetd", "", "render a menos-fleetd control plane's aggregated /fleetz view (http://host:port) instead of polling servers directly")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	jsonOut := fs.Bool("json", false, "with -once: emit one machine-readable JSON document instead of the table")
	top := fs.Int("top", 10, "max per-tenant rows per server (0 = all)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-poll HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := splitTargets(*servers)
	if len(targets) == 0 && *fleetd == "" {
		return fmt.Errorf("no servers: pass -servers host:port[,host:port...] or -fleetd URL")
	}
	if *jsonOut && !*once {
		return fmt.Errorf("-json requires -once (one document, not a refreshing stream)")
	}
	client := &http.Client{Timeout: *timeout}
	snapshot := func() string { return render(poll(client, targets), *top) }
	base := ""
	if *fleetd != "" {
		base = strings.TrimSuffix(strings.TrimSuffix(*fleetd, "/"), "/fleetz")
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		snapshot = func() string { return renderFleetd(client, base, *top) }
	}

	if *once {
		if *jsonOut {
			return writeJSON(out, client, base, targets)
		}
		fmt.Fprint(out, snapshot())
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		// ANSI clear + home keeps the table refreshing in place, the
		// classic top(1) experience without a terminal library.
		fmt.Fprint(out, "\x1b[2J\x1b[H")
		fmt.Fprint(out, snapshot())
		select {
		case <-sig:
			return nil
		case <-tick.C:
		}
	}
}

// splitTargets parses -servers, normalizing each entry to a /loadz URL.
func splitTargets(s string) []string {
	var targets []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		targets = append(targets, strings.TrimSuffix(part, "/")+"/loadz")
	}
	return targets
}

// probe is one polled server: the decoded document or the error that
// took its place (a down server stays visible in the table).
type probe struct {
	target string
	snap   fleet.LoadSnapshot
	err    error
}

func poll(client *http.Client, targets []string) []probe {
	probes := make([]probe, len(targets))
	for i, target := range targets {
		probes[i] = probe{target: target}
		resp, err := client.Get(target)
		if err != nil {
			probes[i].err = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			probes[i].err = fmt.Errorf("%s", resp.Status)
			resp.Body.Close()
			continue
		}
		probes[i].err = json.NewDecoder(resp.Body).Decode(&probes[i].snap)
		resp.Body.Close()
	}
	return probes
}

// getJSON fetches one URL and decodes the JSON body.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// writeJSON emits the -once -json document: the raw control-plane
// payloads (alertz absent when the daemon runs without -alerts), or
// the per-server /loadz polls in -servers mode.
func writeJSON(out io.Writer, client *http.Client, base string, targets []string) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if base == "" {
		type row struct {
			Target string              `json:"target"`
			Error  string              `json:"error,omitempty"`
			Loadz  *fleet.LoadSnapshot `json:"loadz,omitempty"`
		}
		rows := make([]row, 0, len(targets))
		for _, p := range poll(client, targets) {
			r := row{Target: p.target}
			if p.err != nil {
				r.Error = p.err.Error()
			} else {
				snap := p.snap
				r.Loadz = &snap
			}
			rows = append(rows, r)
		}
		return enc.Encode(map[string]any{"servers": rows})
	}
	var fleetz json.RawMessage
	if err := getJSON(client, base+"/fleetz", &fleetz); err != nil {
		return fmt.Errorf("fleetd %s: %w", base, err)
	}
	doc := map[string]any{"fleetz": fleetz}
	var alertz json.RawMessage
	if err := getJSON(client, base+"/alertz", &alertz); err == nil {
		doc["alertz"] = alertz
	}
	return enc.Encode(doc)
}

// sparkGlyphs are the classic 8-level block sparkline alphabet.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a block sparkline, scaled to the series' own
// [min, max] (a flat series renders as a flat low line).
func spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		b.WriteRune(sparkGlyphs[i])
	}
	return b.String()
}

// queryzDoc mirrors the fleetd /queryz response shape.
type queryzDoc struct {
	Series []struct {
		Server int `json:"server"`
		Points []struct {
			V float64 `json:"v"`
		} `json:"points"`
	} `json:"series"`
}

// fleetSparks fetches one federated series from /queryz and renders a
// per-server sparkline. Any error (older daemon, store empty) yields
// an empty map and the dashboard simply omits the sparklines.
func fleetSparks(client *http.Client, base, name string) map[int]string {
	var doc queryzDoc
	if err := getJSON(client, base+"/queryz?name="+url.QueryEscape(name)+"&window=2m", &doc); err != nil {
		return nil
	}
	out := make(map[int]string, len(doc.Series))
	for _, sr := range doc.Series {
		vals := make([]float64, 0, len(sr.Points))
		// Bound the line to the trailing 20 points so a long window
		// stays one table cell wide.
		for i := max(0, len(sr.Points)-20); i < len(sr.Points); i++ {
			vals = append(vals, sr.Points[i].V)
		}
		if len(vals) > 0 {
			out[sr.Server] = spark(vals)
		}
	}
	return out
}

// renderAlerts renders the /alertz pane: every live (non-inactive)
// instance grouped under its rule, then the most recent transitions.
// A daemon without an alert engine (404) renders nothing.
func renderAlerts(client *http.Client, base string) string {
	var doc alert.Doc
	if err := getJSON(client, base+"/alertz", &doc); err != nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "alerts  firing=%d transitions=%d\n", doc.Firing, doc.Transitions)
	quiet := true
	for _, rule := range doc.Rules {
		for _, inst := range rule.Instances {
			if inst.State == "inactive" {
				continue
			}
			quiet = false
			fmt.Fprintf(&b, "  %-8s %-28s %-40s %8.3g  for %.0fs\n",
				strings.ToUpper(inst.State), rule.Name, inst.Series, inst.Value, inst.SinceSeconds)
		}
	}
	if quiet {
		b.WriteString("  all quiet\n")
	}
	const lastN = 5
	if n := len(doc.History); n > 0 {
		b.WriteString("  recent:\n")
		for _, tr := range doc.History[max(0, n-lastN):] {
			fmt.Fprintf(&b, "    t=%7.1fs %-28s %-40s %s -> %s\n",
				tr.AtSeconds, tr.Rule, tr.Series, tr.From, tr.To)
		}
	}
	return b.String()
}

// renderFleetd renders a fleetd's aggregated /fleetz document: the
// controller already polled every server, so one request paints the
// whole fleet, including rows the controller flagged unhealthy or
// answering with the wrong identity — plus the alerts pane and
// federated sparklines when the daemon serves /alertz and /queryz.
func renderFleetd(client *http.Client, base string, top int) string {
	var snap fleet.FleetSnapshot
	err := getJSON(client, base+"/fleetz", &snap)
	if err != nil {
		return fmt.Sprintf("fleetd %s DOWN: %v\n", base, err)
	}
	activeSparks := fleetSparks(client, base, obs.MetricServerActiveClients)
	burnSparks := fleetSparks(client, base, alert.SeriesSLOBurnRate)
	probes := make([]probe, 0, len(snap.Servers))
	var sparkLines []string
	for _, srv := range snap.Servers {
		p := probe{target: srv.Endpoint.MetricsURL}
		switch {
		case !srv.Polled:
			p.err = fmt.Errorf("not yet polled")
		case !srv.Healthy && srv.DownForSeconds > 0:
			p.err = fmt.Errorf("for %.0fs: %s", srv.DownForSeconds, srv.Error)
		case !srv.Healthy:
			p.err = fmt.Errorf("%s", srv.Error)
		default:
			p.snap = fleet.LoadSnapshot{
				AtSeconds: srv.AtSeconds,
				Server:    srv.Load,
				Clients:   srv.Clients,
			}
		}
		probes = append(probes, p)
		var parts []string
		if s := activeSparks[srv.Endpoint.ID]; s != "" {
			parts = append(parts, "active "+s)
		}
		if s := burnSparks[srv.Endpoint.ID]; s != "" {
			parts = append(parts, "burn "+s)
		}
		if len(parts) > 0 {
			sparkLines = append(sparkLines,
				fmt.Sprintf("  server %d  %s", srv.Endpoint.ID, strings.Join(parts, "   ")))
		}
	}
	out := fmt.Sprintf("fleetd %s  policy %s\n\n", base, snap.Policy) + render(probes, top)
	if len(sparkLines) > 0 {
		out += strings.Join(sparkLines, "\n") + "\n\n"
	}
	return out + renderAlerts(client, base)
}

// admissionString mirrors sched.AdmissionState.String without linking
// the scheduler into the CLI.
func admissionString(a fleet.AdmissionState) string {
	switch a {
	case fleet.AdmissionOpen:
		return "open"
	case fleet.AdmissionThrottled:
		return "throttled"
	case fleet.AdmissionShedding:
		return "shedding"
	}
	return fmt.Sprintf("state(%d)", a)
}

func gb(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<30)) }

// render formats the fleet view: one header line per server, then its
// heaviest tenants.
func render(probes []probe, top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "menos-top  %s\n\n", time.Now().Format("15:04:05"))
	for _, p := range probes {
		if p.err != nil {
			fmt.Fprintf(&b, "server %-28s DOWN: %v\n\n", p.target, p.err)
			continue
		}
		s := p.snap.Server
		state := admissionString(s.Admission)
		if s.Draining {
			state += ",draining"
		}
		fmt.Fprintf(&b, "server %d  (%s)  clients=%d queue=%d  mem %s/%s GiB committed %s GiB  %s  models=%s  up %.0fs\n",
			s.ID, p.target, s.Clients, s.QueueDepth,
			gb(s.UsedBytes), gb(s.CapacityBytes), gb(s.CommittedBytes),
			state, strings.Join(s.Models, ","), p.snap.AtSeconds)

		rows := append([]obs.ClientUsage(nil), p.snap.Clients...)
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].ComputeSeconds != rows[j].ComputeSeconds {
				return rows[i].ComputeSeconds > rows[j].ComputeSeconds
			}
			return rows[i].ID < rows[j].ID
		})
		shown := len(rows)
		if top > 0 && shown > top {
			shown = top
		}
		if shown > 0 {
			fmt.Fprintf(&b, "  %-20s %10s %10s %12s %12s %10s %10s %6s %5s %5s\n",
				"CLIENT", "COMP(s)", "WAIT(s)", "PERSIST(GBs)", "TRANS(GBs)", "TX(MiB)", "RX(MiB)", "ITERS", "SHED", "RETRY")
		}
		for _, u := range rows[:shown] {
			fmt.Fprintf(&b, "  %-20s %10.3f %10.3f %12.1f %12.1f %10.1f %10.1f %6d %5d %5d\n",
				u.ID, u.ComputeSeconds, u.GrantWaitSeconds,
				u.PersistentByteSeconds/(1<<30), u.TransientByteSeconds/(1<<30),
				float64(u.WireTxBytes)/(1<<20), float64(u.WireRxBytes)/(1<<20),
				u.Iterations, u.Sheds, u.Retries)
		}
		if hidden := len(rows) - shown; hidden > 0 {
			fmt.Fprintf(&b, "  ... %d more tenant(s)\n", hidden)
		}
		b.WriteString("\n")
	}
	return b.String()
}
