// Command menos-top is a terminal dashboard for a Menos fleet: it
// polls each server's /loadz endpoint (served by the metrics mux, see
// menos-server -metrics-addr) and renders a refreshing table of
// per-server load — admission state, queue depth, memory — with the
// per-tenant accounting rows underneath: compute seconds, grant waits,
// GPU byte-seconds, wire traffic, iterations, sheds and retries.
//
// Usage:
//
//	menos-top -servers host1:9090,host2:9090 [-interval 2s] [-once]
//	          [-top 10]
//	menos-top -fleetd http://host:9600 [-interval 2s] [-once]
//
// With -fleetd, menos-top renders the control plane's aggregated
// /fleetz view instead of polling servers itself: one request paints
// every managed server, including endpoints fleetd marked unhealthy
// or answering with the wrong fleet identity.
//
// -once prints a single snapshot and exits (scriptable); otherwise the
// screen refreshes in place every -interval until interrupted. -top
// bounds the per-tenant rows shown per server (heaviest compute
// first).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"menos/internal/fleet"
	"menos/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "menos-top:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("menos-top", flag.ContinueOnError)
	servers := fs.String("servers", "", "comma-separated metrics addresses to poll (host:port or full http://host:port)")
	fleetd := fs.String("fleetd", "", "render a menos-fleetd control plane's aggregated /fleetz view (http://host:port) instead of polling servers directly")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	top := fs.Int("top", 10, "max per-tenant rows per server (0 = all)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-poll HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := splitTargets(*servers)
	if len(targets) == 0 && *fleetd == "" {
		return fmt.Errorf("no servers: pass -servers host:port[,host:port...] or -fleetd URL")
	}
	client := &http.Client{Timeout: *timeout}
	snapshot := func() string { return render(poll(client, targets), *top) }
	if *fleetd != "" {
		url := strings.TrimSuffix(strings.TrimSuffix(*fleetd, "/"), "/fleetz") + "/fleetz"
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		snapshot = func() string { return renderFleetd(client, url, *top) }
	}

	if *once {
		fmt.Fprint(out, snapshot())
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		// ANSI clear + home keeps the table refreshing in place, the
		// classic top(1) experience without a terminal library.
		fmt.Fprint(out, "\x1b[2J\x1b[H")
		fmt.Fprint(out, snapshot())
		select {
		case <-sig:
			return nil
		case <-tick.C:
		}
	}
}

// splitTargets parses -servers, normalizing each entry to a /loadz URL.
func splitTargets(s string) []string {
	var targets []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		targets = append(targets, strings.TrimSuffix(part, "/")+"/loadz")
	}
	return targets
}

// probe is one polled server: the decoded document or the error that
// took its place (a down server stays visible in the table).
type probe struct {
	target string
	snap   fleet.LoadSnapshot
	err    error
}

func poll(client *http.Client, targets []string) []probe {
	probes := make([]probe, len(targets))
	for i, target := range targets {
		probes[i] = probe{target: target}
		resp, err := client.Get(target)
		if err != nil {
			probes[i].err = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			probes[i].err = fmt.Errorf("%s", resp.Status)
			resp.Body.Close()
			continue
		}
		probes[i].err = json.NewDecoder(resp.Body).Decode(&probes[i].snap)
		resp.Body.Close()
	}
	return probes
}

// renderFleetd renders a fleetd's aggregated /fleetz document: the
// controller already polled every server, so one request paints the
// whole fleet, including rows the controller flagged unhealthy or
// answering with the wrong identity.
func renderFleetd(client *http.Client, url string, top int) string {
	var snap fleet.FleetSnapshot
	resp, err := client.Get(url)
	if err == nil {
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("%s", resp.Status)
		} else {
			err = json.NewDecoder(resp.Body).Decode(&snap)
		}
		resp.Body.Close()
	}
	if err != nil {
		return fmt.Sprintf("fleetd %s DOWN: %v\n", url, err)
	}
	probes := make([]probe, 0, len(snap.Servers))
	for _, srv := range snap.Servers {
		p := probe{target: srv.Endpoint.MetricsURL}
		switch {
		case !srv.Polled:
			p.err = fmt.Errorf("not yet polled")
		case !srv.Healthy:
			p.err = fmt.Errorf("%s", srv.Error)
		default:
			p.snap = fleet.LoadSnapshot{
				AtSeconds: srv.AtSeconds,
				Server:    srv.Load,
				Clients:   srv.Clients,
			}
		}
		probes = append(probes, p)
	}
	return fmt.Sprintf("fleetd %s  policy %s\n\n", url, snap.Policy) + render(probes, top)
}

// admissionString mirrors sched.AdmissionState.String without linking
// the scheduler into the CLI.
func admissionString(a fleet.AdmissionState) string {
	switch a {
	case fleet.AdmissionOpen:
		return "open"
	case fleet.AdmissionThrottled:
		return "throttled"
	case fleet.AdmissionShedding:
		return "shedding"
	}
	return fmt.Sprintf("state(%d)", a)
}

func gb(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<30)) }

// render formats the fleet view: one header line per server, then its
// heaviest tenants.
func render(probes []probe, top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "menos-top  %s\n\n", time.Now().Format("15:04:05"))
	for _, p := range probes {
		if p.err != nil {
			fmt.Fprintf(&b, "server %-28s DOWN: %v\n\n", p.target, p.err)
			continue
		}
		s := p.snap.Server
		state := admissionString(s.Admission)
		if s.Draining {
			state += ",draining"
		}
		fmt.Fprintf(&b, "server %d  (%s)  clients=%d queue=%d  mem %s/%s GiB committed %s GiB  %s  models=%s  up %.0fs\n",
			s.ID, p.target, s.Clients, s.QueueDepth,
			gb(s.UsedBytes), gb(s.CapacityBytes), gb(s.CommittedBytes),
			state, strings.Join(s.Models, ","), p.snap.AtSeconds)

		rows := append([]obs.ClientUsage(nil), p.snap.Clients...)
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].ComputeSeconds != rows[j].ComputeSeconds {
				return rows[i].ComputeSeconds > rows[j].ComputeSeconds
			}
			return rows[i].ID < rows[j].ID
		})
		shown := len(rows)
		if top > 0 && shown > top {
			shown = top
		}
		if shown > 0 {
			fmt.Fprintf(&b, "  %-20s %10s %10s %12s %12s %10s %10s %6s %5s %5s\n",
				"CLIENT", "COMP(s)", "WAIT(s)", "PERSIST(GBs)", "TRANS(GBs)", "TX(MiB)", "RX(MiB)", "ITERS", "SHED", "RETRY")
		}
		for _, u := range rows[:shown] {
			fmt.Fprintf(&b, "  %-20s %10.3f %10.3f %12.1f %12.1f %10.1f %10.1f %6d %5d %5d\n",
				u.ID, u.ComputeSeconds, u.GrantWaitSeconds,
				u.PersistentByteSeconds/(1<<30), u.TransientByteSeconds/(1<<30),
				float64(u.WireTxBytes)/(1<<20), float64(u.WireRxBytes)/(1<<20),
				u.Iterations, u.Sheds, u.Retries)
		}
		if hidden := len(rows) - shown; hidden > 0 {
			fmt.Fprintf(&b, "  ... %d more tenant(s)\n", hidden)
		}
		b.WriteString("\n")
	}
	return b.String()
}
