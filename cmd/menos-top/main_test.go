package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"menos/internal/fleet"
	"menos/internal/obs"
)

func testSnapshot() fleet.LoadSnapshot {
	return fleet.LoadSnapshot{
		AtSeconds: 42,
		Server: fleet.ServerLoad{
			ID:             1,
			Clients:        2,
			QueueDepth:     3,
			UsedBytes:      8 << 30,
			Admission:      fleet.AdmissionThrottled,
			CommittedBytes: 2 << 30,
			CapacityBytes:  32 << 30,
			Models:         []string{"opt-6.7b"},
		},
		Clients: []obs.ClientUsage{
			{ID: "cold", ComputeSeconds: 0.5, Iterations: 1},
			{ID: "hot", ComputeSeconds: 9.5, GrantWaitSeconds: 1.25,
				PersistentByteSeconds: 3 << 30, WireTxBytes: 5 << 20,
				WireRxBytes: 6 << 20, Iterations: 12, Sheds: 1, Retries: 2},
			{ID: "warm", ComputeSeconds: 4.0, Iterations: 7},
		},
	}
}

func loadzServer(t *testing.T, snap fleet.LoadSnapshot) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/loadz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
	})
	web := httptest.NewServer(mux)
	t.Cleanup(web.Close)
	return web
}

// TestOnceSnapshot drives the CLI end to end against two fake servers:
// one healthy, one down. The healthy server's tenants render sorted by
// compute (heaviest first, capped by -top) and the dead one is marked
// DOWN instead of aborting the dashboard.
func TestOnceSnapshot(t *testing.T) {
	web := loadzServer(t, testSnapshot())
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	var out strings.Builder
	err := run([]string{
		"-once", "-top", "2",
		"-servers", strings.TrimPrefix(web.URL, "http://") + "," + dead.URL,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"server 1", "clients=2", "queue=3", "throttled", "opt-6.7b",
		"8.0/32.0 GiB", "hot", "warm", "... 1 more tenant(s)", "DOWN",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// -top 2 hides the lightest tenant.
	if strings.Contains(got, "cold") {
		t.Errorf("tenant beyond -top still rendered:\n%s", got)
	}
	// Heaviest compute renders first.
	if strings.Index(got, "hot") > strings.Index(got, "warm") {
		t.Errorf("tenants not sorted by compute:\n%s", got)
	}
}

func TestSplitTargets(t *testing.T) {
	got := splitTargets(" host1:9090, http://host2:9191/ ,")
	want := []string{"http://host1:9090/loadz", "http://host2:9191/loadz"}
	if len(got) != len(want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("target[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if targets := splitTargets(""); targets != nil {
		t.Errorf("empty spec produced %v", targets)
	}
}

func TestRunRejectsNoServers(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-once"}, &out); err == nil {
		t.Fatal("no -servers accepted")
	}
}

func TestAdmissionString(t *testing.T) {
	for state, want := range map[fleet.AdmissionState]string{
		fleet.AdmissionOpen:      "open",
		fleet.AdmissionThrottled: "throttled",
		fleet.AdmissionShedding:  "shedding",
		fleet.AdmissionState(9):  "state(9)",
	} {
		if got := admissionString(state); got != want {
			t.Errorf("admissionString(%d) = %q, want %q", state, got, want)
		}
	}
}
