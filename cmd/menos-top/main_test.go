package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"menos/internal/alert"
	"menos/internal/fleet"
	"menos/internal/obs"
)

func testSnapshot() fleet.LoadSnapshot {
	return fleet.LoadSnapshot{
		AtSeconds: 42,
		Server: fleet.ServerLoad{
			ID:             1,
			Clients:        2,
			QueueDepth:     3,
			UsedBytes:      8 << 30,
			Admission:      fleet.AdmissionThrottled,
			CommittedBytes: 2 << 30,
			CapacityBytes:  32 << 30,
			Models:         []string{"opt-6.7b"},
		},
		Clients: []obs.ClientUsage{
			{ID: "cold", ComputeSeconds: 0.5, Iterations: 1},
			{ID: "hot", ComputeSeconds: 9.5, GrantWaitSeconds: 1.25,
				PersistentByteSeconds: 3 << 30, WireTxBytes: 5 << 20,
				WireRxBytes: 6 << 20, Iterations: 12, Sheds: 1, Retries: 2},
			{ID: "warm", ComputeSeconds: 4.0, Iterations: 7},
		},
	}
}

func loadzServer(t *testing.T, snap fleet.LoadSnapshot) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/loadz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snap)
	})
	web := httptest.NewServer(mux)
	t.Cleanup(web.Close)
	return web
}

// TestOnceSnapshot drives the CLI end to end against two fake servers:
// one healthy, one down. The healthy server's tenants render sorted by
// compute (heaviest first, capped by -top) and the dead one is marked
// DOWN instead of aborting the dashboard.
func TestOnceSnapshot(t *testing.T) {
	web := loadzServer(t, testSnapshot())
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	var out strings.Builder
	err := run([]string{
		"-once", "-top", "2",
		"-servers", strings.TrimPrefix(web.URL, "http://") + "," + dead.URL,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"server 1", "clients=2", "queue=3", "throttled", "opt-6.7b",
		"8.0/32.0 GiB", "hot", "warm", "... 1 more tenant(s)", "DOWN",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// -top 2 hides the lightest tenant.
	if strings.Contains(got, "cold") {
		t.Errorf("tenant beyond -top still rendered:\n%s", got)
	}
	// Heaviest compute renders first.
	if strings.Index(got, "hot") > strings.Index(got, "warm") {
		t.Errorf("tenants not sorted by compute:\n%s", got)
	}
}

// fleetdServer is a fake control plane serving /fleetz, /alertz and
// /queryz the way menos-fleetd does: one healthy server, one down with
// accumulated down-time, a firing alert, and enough points to spark.
func fleetdServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/fleetz", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(fleet.FleetSnapshot{
			Policy: "least-loaded",
			Servers: []fleet.FleetServer{
				{
					Endpoint: fleet.Endpoint{ID: 1, MetricsURL: "http://a:9090"},
					Polled:   true, Healthy: true,
					AtSeconds: 42, Load: testSnapshot().Server, Clients: testSnapshot().Clients,
				},
				{
					Endpoint: fleet.Endpoint{ID: 2, MetricsURL: "http://b:9090"},
					Polled:   true, Healthy: false,
					Error: "connection refused", DownForSeconds: 17,
				},
			},
		})
	})
	mux.HandleFunc("/alertz", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(alert.Doc{
			Firing:      1,
			Transitions: 3,
			Rules: []alert.RuleStatus{{
				Name: "slo_burn_rate",
				Instances: []alert.InstanceStatus{
					{Series: "fleet:slo_burn_rate{server=1}", State: "firing", SinceSeconds: 12, Value: 1.7},
					{Series: "fleet:slo_burn_rate{server=2}", State: "inactive"},
				},
			}},
			History: []alert.TransitionStatus{
				{AtSeconds: 30, Rule: "slo_burn_rate", Series: "fleet:slo_burn_rate{server=1}", From: "pending", To: "firing"},
			},
		})
	})
	mux.HandleFunc("/queryz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("name") == "" {
			http.Error(w, "want name", http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"series": []map[string]any{{
				"server": 1,
				"points": []map[string]float64{{"t": 1, "v": 1}, {"t": 2, "v": 4}, {"t": 3, "v": 2}},
			}},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestFleetdSnapshot drives -fleetd -once end to end against a fake
// control plane: the healthy row renders, the DOWN row carries its
// error and down-time, sparklines appear for the server with points,
// and the alerts pane shows the firing instance plus history.
func TestFleetdSnapshot(t *testing.T) {
	srv := fleetdServer(t)
	var out strings.Builder
	if err := run([]string{"-once", "-fleetd", srv.URL}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"policy least-loaded",
		"server 1",
		"DOWN: for 17s: connection refused",
		"active ", "burn ", "▁", "█",
		"alerts  firing=1 transitions=3",
		"FIRING   slo_burn_rate",
		"pending -> firing",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "INACTIVE") {
		t.Errorf("inactive instance rendered in alerts pane:\n%s", got)
	}
}

// TestOnceJSON pins the machine-readable mode: -once -json emits the
// raw fleetz and alertz payloads as one document.
func TestOnceJSON(t *testing.T) {
	srv := fleetdServer(t)
	var out strings.Builder
	if err := run([]string{"-once", "-json", "-fleetd", srv.URL}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Fleetz *fleet.FleetSnapshot `json:"fleetz"`
		Alertz *alert.Doc           `json:"alertz"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out.String())
	}
	if doc.Fleetz == nil || len(doc.Fleetz.Servers) != 2 {
		t.Fatalf("fleetz = %+v", doc.Fleetz)
	}
	if doc.Alertz == nil || doc.Alertz.Firing != 1 {
		t.Fatalf("alertz = %+v", doc.Alertz)
	}
}

// TestOnceJSONServers pins -json in direct -servers mode: one row per
// target, down targets carrying the error instead of a load document.
func TestOnceJSONServers(t *testing.T) {
	web := loadzServer(t, testSnapshot())
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	var out strings.Builder
	err := run([]string{
		"-once", "-json",
		"-servers", strings.TrimPrefix(web.URL, "http://") + "," + dead.URL,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Servers []struct {
			Target string              `json:"target"`
			Error  string              `json:"error"`
			Loadz  *fleet.LoadSnapshot `json:"loadz"`
		} `json:"servers"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out.String())
	}
	if len(doc.Servers) != 2 {
		t.Fatalf("rows = %d, want 2", len(doc.Servers))
	}
	if doc.Servers[0].Loadz == nil || doc.Servers[0].Loadz.Server.ID != 1 {
		t.Fatalf("healthy row = %+v", doc.Servers[0])
	}
	if doc.Servers[1].Error == "" || doc.Servers[1].Loadz != nil {
		t.Fatalf("dead row = %+v", doc.Servers[1])
	}
}

func TestJSONRequiresOnce(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-json", "-servers", "x:1"}, &out); err == nil {
		t.Fatal("-json without -once accepted")
	}
}

func TestSpark(t *testing.T) {
	if got := spark([]float64{0, 7, 3.5}); got != "▁█▄" {
		t.Errorf("spark = %q, want ▁█▄", got)
	}
	if got := spark([]float64{2, 2, 2}); got != "▁▁▁" {
		t.Errorf("flat spark = %q, want ▁▁▁", got)
	}
	if got := spark(nil); got != "" {
		t.Errorf("empty spark = %q", got)
	}
}

func TestSplitTargets(t *testing.T) {
	got := splitTargets(" host1:9090, http://host2:9191/ ,")
	want := []string{"http://host1:9090/loadz", "http://host2:9191/loadz"}
	if len(got) != len(want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("target[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if targets := splitTargets(""); targets != nil {
		t.Errorf("empty spec produced %v", targets)
	}
}

func TestRunRejectsNoServers(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-once"}, &out); err == nil {
		t.Fatal("no -servers accepted")
	}
}

func TestAdmissionString(t *testing.T) {
	for state, want := range map[fleet.AdmissionState]string{
		fleet.AdmissionOpen:      "open",
		fleet.AdmissionThrottled: "throttled",
		fleet.AdmissionShedding:  "shedding",
		fleet.AdmissionState(9):  "state(9)",
	} {
		if got := admissionString(state); got != want {
			t.Errorf("admissionString(%d) = %q, want %q", state, got, want)
		}
	}
}
