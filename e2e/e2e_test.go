//go:build e2e

// Package e2e drives the real binaries — menos-server, menos-client,
// menos-fleetd — as separate processes on loopback and asserts the
// control plane's headline guarantee end to end: a client live-
// migrated between two servers mid-run finishes with the same final
// loss, bit for bit, as a client that never moved, and no iteration
// is lost in the move.
//
// Run via `make e2e` (which is what CI's e2e job runs). The test
// builds the binaries itself with the ambient Go toolchain; process
// logs and server flight recordings are written to
// $MENOS_E2E_ARTIFACTS (or the test temp dir) so CI can upload them
// when the test fails.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// steps is the fine-tuning run length. Long enough that the drain
// lands while the client is still training, short enough to keep the
// job inside the CI timeout.
const steps = 40

func TestLiveMigrationAcrossProcesses(t *testing.T) {
	artifacts := os.Getenv("MENOS_E2E_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Logf("artifacts in %s", artifacts)
	bin := buildBinaries(t)

	httpc := &http.Client{Timeout: 5 * time.Second}

	// Two managed servers plus the control plane.
	srvA := startServer(t, bin, artifacts, "server1", 1)
	srvB := startServer(t, bin, artifacts, "server2", 2)
	waitHealthy(t, httpc, srvA.metricsURL, 1)
	waitHealthy(t, httpc, srvB.metricsURL, 2)

	fleetdPort := freePort(t)
	fleetdURL := fmt.Sprintf("http://127.0.0.1:%d", fleetdPort)
	startProc(t, artifacts, "fleetd", bin("menos-fleetd"),
		"-server", fmt.Sprintf("id=1,addr=%s,metrics=%s,admin=%s", srvA.addr, srvA.metricsURL, srvA.metricsURL),
		"-server", fmt.Sprintf("id=2,addr=%s,metrics=%s,admin=%s", srvB.addr, srvB.metricsURL, srvB.metricsURL),
		"-listen", fmt.Sprintf("127.0.0.1:%d", fleetdPort),
		"-poll", "150ms",
		// The telemetry plane under test: alert catalog (on by
		// default) over the federated scrape, trace federation, and a
		// flight recorder that snapshots on any firing transition —
		// the artifact shows up in CI if the quiet-fleet assertion
		// below ever fails.
		"-federate-traces",
		"-flight-dir", filepath.Join(artifacts, "flight-fleetd"),
	)
	waitFor(t, "fleetd sees 2 healthy servers", 30*time.Second, func() error {
		snap, err := fleetz(httpc, fleetdURL)
		if err != nil {
			return err
		}
		healthy := 0
		for _, s := range snap.Servers {
			if s.Healthy {
				healthy++
			}
		}
		if healthy != 2 {
			return fmt.Errorf("healthy = %d", healthy)
		}
		return nil
	})

	// Run 1 (migrated): fleetd places the arriving client, then we
	// drain its server mid-run and the control plane moves it.
	migLoss := filepath.Join(artifacts, "loss-migrated.txt")
	migClient := startProc(t, artifacts, "client-migrated", bin("menos-client"),
		"-fleetd", fleetdURL, "-id", "mig", "-migrate",
		"-steps", fmt.Sprint(steps), "-batch", "2", "-seq", "16",
		"-final-loss-out", migLoss,
		// A client-side tracer makes the client offer trace context, so
		// every iteration's deterministic trace ID rides the wire into
		// both servers' span rings — the stitch the merged fleet trace
		// below is asserted on.
		"-metrics-addr", fmt.Sprintf("127.0.0.1:%d", freePort(t)),
	)

	var hostID int
	waitFor(t, "client resident on a server", 30*time.Second, func() error {
		snap, err := fleetz(httpc, fleetdURL)
		if err != nil {
			return err
		}
		for _, s := range snap.Servers {
			if s.Load.Clients > 0 {
				hostID = s.Endpoint.ID
				return nil
			}
		}
		return fmt.Errorf("no server reports a resident client")
	})
	t.Logf("client placed on server %d; draining it", hostID)
	resp, err := httpc.Post(fmt.Sprintf("%s/drain?id=%d", fleetdURL, hostID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: %s", resp.Status)
	}

	if err := waitProc(migClient, 120*time.Second); err != nil {
		t.Fatalf("migrated client: %v\n%s", err, tailLog(artifacts, "client-migrated"))
	}
	clientLog := tailLog(artifacts, "client-migrated")
	if !strings.Contains(clientLog, "live-migrated to") {
		t.Fatalf("client log shows no migration:\n%s", clientLog)
	}

	// The control plane must have driven at least one migration...
	metrics := getBody(t, httpc, fleetdURL+"/metrics")
	if !promCounterAtLeast(metrics, "menos_fleetd_migrations_total", 1) {
		t.Fatalf("menos_fleetd_migrations_total < 1 in fleetd metrics:\n%s", metrics)
	}
	// ...and no iteration may be lost: the two servers' per-tenant
	// ledgers for this client must sum to exactly the step count.
	total := ledgerIterations(t, httpc, srvA.metricsURL, "mig") +
		ledgerIterations(t, httpc, srvB.metricsURL, "mig")
	if total != steps {
		t.Fatalf("iterations across servers = %d, want %d (lost or duplicated work)", total, steps)
	}

	// Trace federation: fleetd's merged fleet trace must stitch the
	// migration — the displaced iteration's trace ID appears under BOTH
	// server processes (migrate:out on the source, the replayed
	// iteration's compute on the destination). The cursor loop lags the
	// client by up to one poll tick, so wait for it.
	var fleetTrace string
	t.Cleanup(func() {
		_ = os.WriteFile(filepath.Join(artifacts, "fleet-trace.json"), []byte(fleetTrace), 0o644)
	})
	waitFor(t, "merged fleet trace stitches the migration", 15*time.Second, func() error {
		resp, err := httpc.Get(fleetdURL + "/trace")
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		_, err = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		fleetTrace = buf.String()
		return stitched(fleetTrace)
	})

	// A healthy migration run must not trip the alert catalog: nothing
	// firing now, and no transition into firing in the whole history.
	alertzBody := getBody(t, httpc, fleetdURL+"/alertz")
	if err := os.WriteFile(filepath.Join(artifacts, "alertz.json"), []byte(alertzBody), 0o644); err != nil {
		t.Fatal(err)
	}
	var alertz struct {
		Firing  int `json:"firing"`
		History []struct {
			Rule string `json:"rule"`
			To   string `json:"to"`
		} `json:"history"`
	}
	if err := json.Unmarshal([]byte(alertzBody), &alertz); err != nil {
		t.Fatalf("alertz: %v\n%s", err, alertzBody)
	}
	if alertz.Firing != 0 {
		t.Fatalf("healthy fleet has %d alert(s) firing:\n%s", alertz.Firing, alertzBody)
	}
	for _, tr := range alertz.History {
		if tr.To == "firing" {
			t.Fatalf("alert %s fired during a healthy run:\n%s", tr.Rule, alertzBody)
		}
	}

	// Run 2 (control): same seeds, same schedule, one untouched
	// server, no migration.
	srvC := startServer(t, bin, artifacts, "server3", 3)
	waitHealthy(t, httpc, srvC.metricsURL, 3)
	ctrlLoss := filepath.Join(artifacts, "loss-control.txt")
	ctrlClient := startProc(t, artifacts, "client-control", bin("menos-client"),
		"-addr", srvC.addr, "-id", "mig",
		"-steps", fmt.Sprint(steps), "-batch", "2", "-seq", "16",
		"-final-loss-out", ctrlLoss,
	)
	if err := waitProc(ctrlClient, 120*time.Second); err != nil {
		t.Fatalf("control client: %v\n%s", err, tailLog(artifacts, "client-control"))
	}

	// The determinism pin: final loss bits, not rounded decimals.
	migBits := readPin(t, migLoss)
	ctrlBits := readPin(t, ctrlLoss)
	if migBits != ctrlBits {
		t.Fatalf("final loss diverged: migrated run %s vs control %s", migBits, ctrlBits)
	}
	t.Logf("migrated and control runs agree: final loss bits %s", migBits)
}

// serverProc is one running menos-server.
type serverProc struct {
	addr       string // split-protocol dial address
	metricsURL string // metrics + admin base URL
}

func startServer(t *testing.T, bin func(string) string, artifacts, name string, id int) serverProc {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	metrics := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	startProc(t, artifacts, name, bin("menos-server"),
		"-addr", addr, "-metrics-addr", metrics,
		"-server-id", fmt.Sprint(id),
		"-flight-dir", filepath.Join(artifacts, "flight-"+name),
		// Advertise an admission target so fleetd's SLO burn-rate rule
		// evaluates this server — a loopback fleet sits far under 2s,
		// which the quiet-alerts assertion depends on.
		"-slo-p99", "2s",
	)
	return serverProc{addr: addr, metricsURL: "http://" + metrics}
}

// stitched reports whether the merged Chrome trace carries at least one
// trace ID under two or more distinct process IDs — the signature of a
// migrated iteration's spans spanning both servers.
func stitched(trace string) error {
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			Args struct {
				TraceID string `json:"trace_id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace), &doc); err != nil {
		return fmt.Errorf("merged trace: %v", err)
	}
	pidsByID := make(map[string]map[int]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Args.TraceID == "" {
			continue
		}
		if pidsByID[ev.Args.TraceID] == nil {
			pidsByID[ev.Args.TraceID] = make(map[int]bool)
		}
		pidsByID[ev.Args.TraceID][ev.PID] = true
	}
	for _, pids := range pidsByID {
		if len(pids) >= 2 {
			return nil
		}
	}
	return fmt.Errorf("no trace ID spans two processes yet (%d trace IDs seen)", len(pidsByID))
}

// buildBinaries compiles the three daemons once into a temp dir and
// returns a path lookup.
func buildBinaries(t *testing.T) func(string) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"../cmd/menos-server", "../cmd/menos-client", "../cmd/menos-fleetd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return func(name string) string { return filepath.Join(dir, name) }
}

// startProc launches one process with stdout+stderr teed to an
// artifact log, and kills it at test cleanup.
func startProc(t *testing.T, artifacts, name, path string, args ...string) *exec.Cmd {
	t.Helper()
	logf, err := os.Create(filepath.Join(artifacts, name+".log"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(path, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
		logf.Close()
	})
	return cmd
}

// waitProc waits for a process to exit cleanly within the deadline.
func waitProc(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		return fmt.Errorf("timed out after %v", timeout)
	}
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = cond(); last == nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s: %v", what, last)
}

// waitHealthy waits for a server's /healthz to answer ok with the
// expected fleet identity.
func waitHealthy(t *testing.T, httpc *http.Client, base string, wantID int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("server %d healthy at %s", wantID, base), 30*time.Second, func() error {
		var doc struct {
			Status   string `json:"status"`
			ServerID *int   `json:"server_id"`
		}
		if err := getJSON(httpc, base+"/healthz", &doc); err != nil {
			return err
		}
		if doc.Status != "ok" {
			return fmt.Errorf("status %q", doc.Status)
		}
		if doc.ServerID == nil || *doc.ServerID != wantID {
			return fmt.Errorf("server_id = %v, want %d", doc.ServerID, wantID)
		}
		return nil
	})
}

// fleetzDoc is the subset of fleetd's /fleetz the test reads.
type fleetzDoc struct {
	Servers []struct {
		Endpoint struct {
			ID int `json:"id"`
		} `json:"endpoint"`
		Healthy bool `json:"healthy"`
		Load    struct {
			Clients int `json:"clients"`
		} `json:"load"`
	} `json:"servers"`
}

func fleetz(httpc *http.Client, base string) (fleetzDoc, error) {
	var doc fleetzDoc
	err := getJSON(httpc, base+"/fleetz", &doc)
	return doc, err
}

func getJSON(httpc *http.Client, url string, into any) error {
	resp, err := httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func getBody(t *testing.T, httpc *http.Client, url string) string {
	t.Helper()
	resp, err := httpc.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// ledgerIterations reads one client's iteration count from a server's
// /loadz per-tenant ledger (0 when the client never visited).
func ledgerIterations(t *testing.T, httpc *http.Client, base, clientID string) int64 {
	t.Helper()
	var doc struct {
		Clients []struct {
			ID         string `json:"id"`
			Iterations int64  `json:"iterations"`
		} `json:"clients"`
	}
	if err := getJSON(httpc, base+"/loadz", &doc); err != nil {
		t.Fatal(err)
	}
	for _, c := range doc.Clients {
		if c.ID == clientID {
			return c.Iterations
		}
	}
	return 0
}

// promCounterAtLeast reports whether the Prometheus text exposition
// contains counter name with a value >= want.
func promCounterAtLeast(text, name string, want float64) bool {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil && v >= want {
				return true
			}
		}
	}
	return false
}

// readPin reads a -final-loss-out file: 16 hex digits of float64 bits.
func readPin(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pin := strings.TrimSpace(string(data))
	if len(pin) != 16 {
		t.Fatalf("pin %q in %s is not 16 hex digits", pin, path)
	}
	return pin
}

// tailLog returns the last few KiB of a process's artifact log for
// failure messages.
func tailLog(artifacts, name string) string {
	data, err := os.ReadFile(filepath.Join(artifacts, name+".log"))
	if err != nil {
		return fmt.Sprintf("(no log: %v)", err)
	}
	if len(data) > 8<<10 {
		data = data[len(data)-(8<<10):]
	}
	return string(data)
}
