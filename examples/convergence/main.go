// Convergence: reproduce the shape of the paper's Fig. 8/9 — several
// clients split fine-tuning against a Menos server converge to the
// same perplexity as local single-device fine-tuning, because split
// fine-tuning is mathematically identical to local fine-tuning.
//
// Run with:
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"menos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := menos.ExperimentOptions{Steps: 40, Seed: 5}

	fmt.Println("running Fig. 9 style convergence: tiny Llama, char-level Shakespeare,")
	fmt.Println("3 split clients over real TCP + 1 local baseline...")
	fmt.Println()
	res, err := menos.Fig9(opts)
	if err != nil {
		return err
	}
	fmt.Println(res.Fig.Render())
	fmt.Printf("final perplexities:\n")
	for i, ppl := range res.Clients {
		fmt.Printf("  client-%d: %8.2f\n", i+1, ppl[len(ppl)-1])
	}
	fmt.Printf("  local:    %8.2f\n", res.Local[len(res.Local)-1])
	fmt.Printf("\n|split - local| gap for client-1 (identical data & seeds): %.6f\n", res.FinalGap())
	fmt.Println("the gap is float-rounding only: split fine-tuning computes the same math.")
	return nil
}
