// Lifecycle: the full deployment story, end to end.
//
//  1. The model owner trains/initializes a base model and exports its
//     weights (the distributable artifact).
//  2. The owner starts a Menos server from those weights with an int8
//     quantized base (QLoRA-style) — the model body never leaves the
//     server.
//  3. A data owner builds the client sections from the same weights
//     file, fine-tunes on private text, and checkpoints the adapter.
//  4. A second session resumes from the checkpoint and generates text
//     through the split deployment.
//
// Run with:
//
//	go run ./examples/lifecycle
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"menos"
	"menos/internal/checkpoint"
	"menos/internal/data"
	"menos/internal/model"
	"menos/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "menos-lifecycle")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	weightsPath := filepath.Join(dir, "base-weights.mcpk")
	adapterPath := filepath.Join(dir, "alice-adapter.mcpk")

	// --- 1. Model owner: build and export the base model. ---
	base, err := model.New(tensor.NewRNG(2024), menos.OPTTiny())
	if err != nil {
		return err
	}
	if err := checkpoint.SaveModelFile(weightsPath, base); err != nil {
		return err
	}
	info, err := os.Stat(weightsPath)
	if err != nil {
		return err
	}
	fmt.Printf("1. exported base weights: %s (%.1f KiB)\n", filepath.Base(weightsPath),
		float64(info.Size())/1024)

	// --- 2. Serve it, quantized. ---
	dep, err := menos.NewDeployment(menos.DeploymentConfig{
		Model:       menos.OPTTiny(),
		WeightsFile: weightsPath,
		BaseQuant:   menos.QuantInt8,
	})
	if err != nil {
		return err
	}
	defer dep.Close()
	addr, err := dep.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("2. serving int8-quantized base on %s\n", addr)

	// --- 3. Data owner: fine-tune on private text; checkpoint φ_i. ---
	tok, err := data.NewCharTokenizer(data.Shakespeare(), menos.OPTTiny().Vocab)
	if err != nil {
		return err
	}
	tokens, err := tok.Encode(data.Shakespeare())
	if err != nil {
		return err
	}
	const batch, seq = 4, 32
	clientCfg := menos.ClientConfig{
		ClientID:    "alice",
		Model:       menos.OPTTiny(),
		WeightsFile: weightsPath,
		Adapter:     menos.DefaultLoRA(),
		AdapterSeed: 11,
		LR:          8e-3,
		Batch:       batch,
		Seq:         seq,
	}
	alice, err := menos.Dial(addr, clientCfg)
	if err != nil {
		return err
	}
	loader, err := data.NewLoader(tokens, batch, seq, 5)
	if err != nil {
		return err
	}
	var first, last menos.StepResult
	for step := 0; step < 30; step++ {
		ids, targets := loader.Next()
		res, err := alice.Step(ids, targets)
		if err != nil {
			return err
		}
		if step == 0 {
			first = res
		}
		last = res
	}
	f, err := os.Create(adapterPath)
	if err != nil {
		return err
	}
	if err := alice.SaveAdapter(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := alice.Close(); err != nil {
		return err
	}
	fmt.Printf("3. fine-tuned 30 steps (loss %.3f -> %.3f), adapter checkpointed\n",
		first.Loss, last.Loss)

	// --- 4. Resume in a fresh session and generate. ---
	resumeCfg := clientCfg
	resumeCfg.ClientID = "alice-resumed"
	resumed, err := menos.Dial(addr, resumeCfg)
	if err != nil {
		return err
	}
	defer resumed.Close()
	rf, err := os.Open(adapterPath)
	if err != nil {
		return err
	}
	if err := resumed.LoadAdapter(rf); err != nil {
		_ = rf.Close()
		return err
	}
	_ = rf.Close()

	prompt, err := tok.Encode("All:\n")
	if err != nil {
		return err
	}
	out, kvBytes, err := resumed.GenerateIncremental(tensor.NewRNG(8), prompt, 60, 0.8)
	if err != nil {
		return err
	}
	fmt.Printf("   (server reserved %.1f KiB of KV cache through the Menos scheduler)\n",
		float64(kvBytes)/1024)
	for i, id := range out {
		if id >= tok.VocabSize() {
			out[i] = 0
		}
	}
	text, err := tok.Decode(out)
	if err != nil {
		return err
	}
	fmt.Printf("4. resumed session sample:\n%s\n", text)

	if err := dep.Store.VerifyIntegrity(); err != nil {
		return err
	}
	fmt.Println("\nshared (quantized) base never modified: integrity verified")
	return nil
}
