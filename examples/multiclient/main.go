// Multiclient: four concurrent clients fine-tune the same shared base
// model with *different* adapter methods and cut layers — the
// heterogeneity §3.1 is designed for — while the server pays for one
// base copy. The example prints the memory accounting that makes the
// paper's Fig. 5 argument, then proves base-parameter integrity.
//
// Run with:
//
//	go run ./examples/multiclient
package main

import (
	"fmt"
	"log"
	"sync"

	"menos"
	"menos/internal/data"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const weightSeed = 99
	modelCfg := menos.LlamaTiny()

	dep, err := menos.NewDeployment(menos.DeploymentConfig{
		Model:      modelCfg,
		WeightSeed: weightSeed,
	})
	if err != nil {
		return err
	}
	addr, err := dep.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer dep.Close()

	tok, err := data.NewCharTokenizer(data.Shakespeare(), modelCfg.Vocab)
	if err != nil {
		return err
	}
	tokens, err := tok.Encode(data.Shakespeare())
	if err != nil {
		return err
	}
	// Each client fine-tunes on its own private shard.
	shards, err := data.Partition(tokens, 4)
	if err != nil {
		return err
	}

	type clientPlan struct {
		id      string
		adapter menos.AdapterSpec
		cut     int
	}
	plans := []clientPlan{
		{"alice-lora", menos.DefaultLoRA(), 1},
		{"bob-prefix", menos.DefaultPrefix(), 1},
		{"carol-bottleneck", menos.AdapterSpec{Kind: menos.AdapterBottleneck, Hidden: 16}, 1},
		// dave is privacy-sensitive and cuts deeper, keeping two blocks
		// local (the privacy-efficiency trade-off of §3.1).
		{"dave-deep-cut", menos.DefaultLoRA(), 2},
	}

	const batch, seq = 2, 24
	var wg sync.WaitGroup
	errs := make(chan error, len(plans))
	for i, plan := range plans {
		wg.Add(1)
		go func(i int, plan clientPlan) {
			defer wg.Done()
			c, err := menos.Dial(addr, menos.ClientConfig{
				ClientID:    plan.id,
				Model:       modelCfg,
				WeightSeed:  weightSeed,
				Cut:         plan.cut,
				Adapter:     plan.adapter,
				AdapterSeed: uint64(1000 + i),
				LR:          8e-3,
				Batch:       batch,
				Seq:         seq,
			})
			if err != nil {
				errs <- fmt.Errorf("%s: %w", plan.id, err)
				return
			}
			defer c.Close()
			loader, err := data.NewLoader(shards[i], batch, seq, uint64(50+i))
			if err != nil {
				errs <- err
				return
			}
			var first, last float64
			for step := 0; step < 25; step++ {
				ids, targets := loader.Next()
				res, err := c.Step(ids, targets)
				if err != nil {
					errs <- fmt.Errorf("%s step %d: %w", plan.id, step, err)
					return
				}
				if step == 0 {
					first = res.Loss
				}
				last = res.Loss
			}
			fmt.Printf("%-17s cut=%d  loss %.3f -> %.3f\n", plan.id, plan.cut, first, last)
		}(i, plan)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// The Fig. 5 argument, live: what the server actually holds versus
	// what per-client duplication would have cost.
	sharedBytes := dep.Store.BaseParamBytes()
	duplicated := sharedBytes * int64(len(plans))
	fmt.Printf("\nbase model on server:   %8.1f MiB (one shared copy)\n", mib(sharedBytes))
	fmt.Printf("duplicated alternative: %8.1f MiB (%d replicas)\n", mib(duplicated), len(plans))
	fmt.Printf("saving from sharing:    %.1f%%\n", 100*(1-float64(sharedBytes)/float64(duplicated)))

	if err := dep.Store.VerifyIntegrity(); err != nil {
		return err
	}
	fmt.Println("shared base integrity: verified bit-exact after all clients trained")
	return nil
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
