// Quickstart: start a Menos server in-process, connect one split
// fine-tuning client, and fine-tune a tiny OPT-style model on the
// embedded Shakespeare corpus with LoRA.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"menos"
	"menos/internal/data"
	"menos/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const weightSeed = 42

	// The model owner's side: load the base model once and serve it.
	dep, err := menos.NewDeployment(menos.DeploymentConfig{
		Model:      menos.OPTTiny(),
		WeightSeed: weightSeed,
	})
	if err != nil {
		return err
	}
	addr, err := dep.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer dep.Close()
	fmt.Println("server listening on", addr)

	// The data owner's side: private text, tokenized locally.
	tok, err := data.NewCharTokenizer(data.Shakespeare(), menos.OPTTiny().Vocab)
	if err != nil {
		return err
	}
	tokens, err := tok.Encode(data.Shakespeare())
	if err != nil {
		return err
	}
	const batch, seq = 4, 32
	loader, err := data.NewLoader(tokens, batch, seq, 7)
	if err != nil {
		return err
	}

	c, err := menos.Dial(addr, menos.ClientConfig{
		ClientID:    "alice",
		Model:       menos.OPTTiny(),
		WeightSeed:  weightSeed,
		Adapter:     menos.DefaultLoRA(),
		AdapterSeed: 1,
		LR:          8e-3,
		Batch:       batch,
		Seq:         seq,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fwd, bwd := c.Demands()
	fmt.Printf("admitted: server profiled forward=%d bytes, backward=%d bytes\n\n", fwd, bwd)

	for step := 0; step < 40; step++ {
		ids, targets := loader.Next()
		res, err := c.Step(ids, targets)
		if err != nil {
			return err
		}
		if step%5 == 0 || step == 39 {
			fmt.Printf("step %2d  loss %.4f  perplexity %7.2f\n", step, res.Loss, res.Perplexity)
		}
	}
	fmt.Println("\nfine-tuning complete; base model parameters were never modified:")
	if err := dep.Store.VerifyIntegrity(); err != nil {
		return err
	}
	fmt.Println("  store integrity check passed")

	// Generate a sample through the split deployment: the input and
	// output sections run here, the body runs on the server.
	prompt, err := tok.Encode("First Citizen:\n")
	if err != nil {
		return err
	}
	out, err := c.Generate(tensor.NewRNG(3), prompt, 80, 0.8)
	if err != nil {
		return err
	}
	// The model's vocab (96) pads beyond the corpus alphabet; map any
	// sampled padding id to a space before decoding.
	for i, id := range out {
		if id >= tok.VocabSize() {
			out[i] = 0
		}
	}
	text, err := tok.Decode(out)
	if err != nil {
		return err
	}
	fmt.Printf("\nsample (split inference, one server round-trip per token):\n%s\n", text)
	return nil
}
