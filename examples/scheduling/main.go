// Scheduling: explore the performance plane. Simulates full-size
// Llama 2-7B split fine-tuning on a modeled V100 over a modeled WAN,
// comparing the vanilla task-swapping baseline against Menos, and then
// sweeping the four memory policies of Fig. 3 to show why on-demand
// allocation wins.
//
// Run with:
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"menos"
	"menos/internal/costmodel"
	"menos/internal/sched"
	"menos/internal/splitsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w := menos.PaperLlamaWorkload()
	const clients = 4
	const iterations = 10

	fmt.Printf("workload: %s, LoRA r=8, batch %d, %d clients, one V100\n\n",
		w.Model.Name, w.Batch, clients)

	// Vanilla vs Menos.
	for _, mode := range []menos.SimMode{menos.SimVanilla, menos.SimMenos} {
		r, err := menos.Simulate(menos.SimConfig{
			Mode:       mode,
			Clients:    splitsim.HomogeneousClients(clients, w, costmodel.ClientGPUPerf()),
			Iterations: iterations,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s per-round %6.1fs   comm %5.1fs  comp %5.1fs  sched %6.1fs   persistent %5.1f GiB\n",
			mode,
			r.AvgIterationTime().Seconds(),
			r.Aggregate.AvgComm().Seconds(),
			r.Aggregate.AvgComp().Seconds(),
			r.Aggregate.AvgSched().Seconds(),
			float64(r.PersistentBytes)/(1<<30))
	}

	// Policy sweep (Fig. 3): why release-and-recompute beats holding.
	fmt.Println("\nmemory-policy sweep (Menos, same workload):")
	for _, policy := range []menos.MemPolicy{
		menos.PolicyPersistAll,
		menos.PolicyPreserve,
		menos.PolicyReleaseOnWait,
		menos.PolicyOnDemand,
	} {
		r, err := menos.Simulate(menos.SimConfig{
			Mode:       menos.SimMenos,
			Policy:     policy,
			Clients:    splitsim.HomogeneousClients(clients, w, costmodel.ClientGPUPerf()),
			Iterations: iterations,
		})
		if err != nil {
			fmt.Printf("  %-16s infeasible: %v\n", policy, err)
			continue
		}
		fmt.Printf("  %-16s per-round %6.1fs  sched %6.2fs  (backfills: %d)\n",
			policy,
			r.AvgIterationTime().Seconds(),
			r.Aggregate.AvgSched().Seconds(),
			r.SchedStats.Backfilled)
	}

	// Scheduler-discipline sweep (Algorithm 2 ablation) under heavier
	// load, where backward requests collide and backfilling matters.
	fmt.Println("\nscheduler-discipline sweep (8 clients):")
	for _, discipline := range []sched.Policy{
		sched.PolicyFCFSBackfill,
		sched.PolicyFCFS,
		sched.PolicySmallestFirst,
	} {
		r, err := menos.Simulate(menos.SimConfig{
			Mode:       menos.SimMenos,
			SchedPol:   discipline,
			Clients:    splitsim.HomogeneousClients(8, w, costmodel.ClientGPUPerf()),
			Iterations: iterations,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s per-round %6.1fs  sched %6.2fs  backfills %d\n",
			discipline, r.AvgIterationTime().Seconds(),
			r.Aggregate.AvgSched().Seconds(), r.SchedStats.Backfilled)
	}
	return nil
}
