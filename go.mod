module menos

go 1.22
