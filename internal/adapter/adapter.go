package adapter

import (
	"fmt"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// Adapter is the common handle over an injected fine-tuning adapter:
// it owns the trainable parameters φ and can detach itself, restoring
// the model instance to its pristine structure.
type Adapter interface {
	Params() []nn.Param
	ParamCount() int64
	ParamBytes() int64
	Remove()
}

var (
	_ Adapter = (*LoRAAdapter)(nil)
	_ Adapter = (*PrefixAdapter)(nil)
	_ Adapter = (*BottleneckAdapter)(nil)
)

// Kind enumerates the supported adapter families.
type Kind int

// Adapter kinds.
const (
	KindLoRA Kind = iota + 1
	KindPrefix
	KindBottleneck
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindLoRA:
		return "lora"
	case KindPrefix:
		return "prefix"
	case KindBottleneck:
		return "bottleneck"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec is a serializable adapter description: the fine-tuning
// configuration a client reports to the server during profiling (§3.3).
// Exactly the fields for the chosen Kind are meaningful.
type Spec struct {
	Kind Kind

	// LoRA.
	Rank    int
	Alpha   float64
	Targets []Target

	// Prefix-tuning.
	PrefixLen int

	// Bottleneck.
	Hidden int
}

// LoRASpec builds a Spec from a LoRAConfig.
func LoRASpec(cfg LoRAConfig) Spec {
	return Spec{Kind: KindLoRA, Rank: cfg.Rank, Alpha: cfg.Alpha, Targets: cfg.Targets}
}

// PrefixSpec builds a Spec from a PrefixConfig.
func PrefixSpec(cfg PrefixConfig) Spec {
	return Spec{Kind: KindPrefix, PrefixLen: cfg.PrefixLen}
}

// BottleneckSpec builds a Spec from a BottleneckConfig.
func BottleneckSpec(cfg BottleneckConfig) Spec {
	return Spec{Kind: KindBottleneck, Hidden: cfg.Hidden}
}

// Validate checks the spec for the declared kind.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindLoRA:
		return LoRAConfig{Rank: s.Rank, Alpha: s.Alpha, Targets: s.Targets}.Validate()
	case KindPrefix:
		return PrefixConfig{PrefixLen: s.PrefixLen}.Validate()
	case KindBottleneck:
		return BottleneckConfig{Hidden: s.Hidden}.Validate()
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrAdapter, int(s.Kind))
	}
}

// Inject attaches the specified adapter to the given blocks of a model
// with hidden size dim and returns its handle.
func (s Spec) Inject(rng *tensor.RNG, blocks []*model.Block, dim int) (Adapter, error) {
	switch s.Kind {
	case KindLoRA:
		return InjectLoRA(rng, blocks, LoRAConfig{Rank: s.Rank, Alpha: s.Alpha, Targets: s.Targets})
	case KindPrefix:
		return InjectPrefix(rng, blocks, dim, PrefixConfig{PrefixLen: s.PrefixLen})
	case KindBottleneck:
		return InjectBottleneck(rng, blocks, dim, BottleneckConfig{Hidden: s.Hidden})
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrAdapter, int(s.Kind))
	}
}

// ParamsPerBlock returns the adapter scalar count contributed to one
// transformer block of hidden size dim, used by the analytic memory
// model to compute 𝔸 without instantiating anything.
func (s Spec) ParamsPerBlock(dim int) int64 {
	d := int64(dim)
	switch s.Kind {
	case KindLoRA:
		// Each target projection is d×d: A (d×r) + B (r×d).
		return int64(len(s.Targets)) * 2 * d * int64(s.Rank)
	case KindPrefix:
		// K and V prefixes, each (P, d).
		return 2 * int64(s.PrefixLen) * d
	case KindBottleneck:
		// Down (d×h + h) + Up (h×d + d).
		h := int64(s.Hidden)
		return d*h + h + h*d + d
	default:
		return 0
	}
}
