package adapter

import (
	"math"
	"testing"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

func tinyModel(t *testing.T, family model.Family) *model.Transformer {
	t.Helper()
	cfg := model.Config{
		Name: "test", Family: family,
		Vocab: 13, Dim: 8, Layers: 3, Heads: 2, FFN: 16, MaxSeq: 16,
	}
	m, err := model.New(tensor.NewRNG(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randBatch(vocab, n int, seed uint64) ([]int, []int) {
	r := tensor.NewRNG(seed)
	ids := make([]int, n)
	targets := make([]int, n)
	for i := range ids {
		ids[i] = r.Intn(vocab)
		targets[i] = r.Intn(vocab)
	}
	return ids, targets
}

func TestLoRAConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  LoRAConfig
		ok   bool
	}{
		{"default", DefaultLoRA(), true},
		{"zero rank", LoRAConfig{Rank: 0, Alpha: 16, Targets: []Target{TargetQ}}, false},
		{"zero alpha", LoRAConfig{Rank: 8, Alpha: 0, Targets: []Target{TargetQ}}, false},
		{"no targets", LoRAConfig{Rank: 8, Alpha: 16}, false},
		{"bad target", LoRAConfig{Rank: 8, Alpha: 16, Targets: []Target{Target(9)}}, false},
		{"all targets", LoRAConfig{Rank: 4, Alpha: 8, Targets: []Target{TargetQ, TargetK, TargetV, TargetO}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

// TestFreshLoRAIsIdentity checks B=0 initialization: a freshly injected
// adapter must not change the model's output at all.
func TestFreshLoRAIsIdentity(t *testing.T) {
	m := tinyModel(t, model.FamilyLlama)
	ids, targets := randBatch(m.Cfg.Vocab, 8, 2)
	before, err := m.Loss(ids, targets, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := InjectLoRA(tensor.NewRNG(3), m.Blocks, DefaultLoRA())
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.Loss(ids, targets, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-6 {
		t.Fatalf("fresh LoRA changed loss: %v -> %v", before, after)
	}
	ad.Remove()
}

// TestLoRAFineTuningReducesLoss freezes the base and trains only the
// adapters: the adapter-based fine-tuning of §2.1.
func TestLoRAFineTuningReducesLoss(t *testing.T) {
	for _, family := range []model.Family{model.FamilyOPT, model.FamilyLlama} {
		t.Run(family.String(), func(t *testing.T) {
			m := tinyModel(t, family)
			m.SetFrozenBase(true)
			ad, err := InjectLoRA(tensor.NewRNG(4), m.Blocks, DefaultLoRA())
			if err != nil {
				t.Fatal(err)
			}
			params := ad.Params()
			if len(params) == 0 {
				t.Fatal("no adapter params")
			}
			ids, targets := randBatch(m.Cfg.Vocab, 12, 5)
			snapshotBase := m.Blocks[1].Attn.K.Params() // frozen: should stay empty
			if len(snapshotBase) != 0 {
				t.Fatal("frozen base exposes params")
			}

			opt := nn.NewAdam(5e-3)
			first, err := m.LossAndGrad(ids, targets, 2, 6)
			if err != nil {
				t.Fatal(err)
			}
			var lossFinal float64
			for i := 0; i < 40; i++ {
				res, err := m.LossAndGrad(ids, targets, 2, 6)
				if err != nil {
					t.Fatal(err)
				}
				lossFinal = res.Loss
				if err := opt.Step(params); err != nil {
					t.Fatal(err)
				}
				nn.ZeroGrads(params)
			}
			if lossFinal >= first.Loss {
				t.Fatalf("LoRA fine-tuning did not reduce loss: %v -> %v", first.Loss, lossFinal)
			}
		})
	}
}

// TestLoRAGradCheck verifies the LoRA backward pass numerically.
func TestLoRAGradCheck(t *testing.T) {
	rng := tensor.NewRNG(6)
	base := nn.NewLinear(rng, 4, 3, true)
	base.Frozen = true
	l := NewLoRALinear(rng, base, 4, 3, 2, 8)
	// Give B a non-zero value so gradients flow through A too.
	l.B.Value.FillNormal(rng, 0.3)
	x := tensor.NewNormal(rng, 1, 5, 4)

	forward := func() float64 {
		y, _, err := l.Apply(x, false)
		if err != nil {
			t.Fatal(err)
		}
		return y.Sum()
	}
	y, cache, err := l.Apply(x, true)
	if err != nil {
		t.Fatal(err)
	}
	dy := tensor.New(y.Shape()...)
	dy.Fill(1)
	dx, err := l.Grad(cache, dy)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, value, grad *tensor.Tensor) {
		t.Helper()
		const h = 1e-3
		for i := range value.Data() {
			orig := value.Data()[i]
			value.Data()[i] = orig + h
			up := forward()
			value.Data()[i] = orig - h
			down := forward()
			value.Data()[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(grad.Data()[i])
			if math.Abs(numeric-analytic) > 2e-2*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, analytic, numeric)
			}
		}
	}
	check("A", l.A.Value, l.A.Grad)
	check("B", l.B.Value, l.B.Grad)
	check("x", x, dx)
}

func TestLoRARemoveRestoresStructure(t *testing.T) {
	m := tinyModel(t, model.FamilyOPT)
	origQ := m.Blocks[0].Attn.Q
	ad, err := InjectLoRA(tensor.NewRNG(7), m.Blocks, DefaultLoRA())
	if err != nil {
		t.Fatal(err)
	}
	if m.Blocks[0].Attn.Q == origQ {
		t.Fatal("injection did not replace projection")
	}
	ad.Remove()
	if m.Blocks[0].Attn.Q != origQ {
		t.Fatal("Remove did not restore projection")
	}
}

func TestDoubleInjectionRejected(t *testing.T) {
	m := tinyModel(t, model.FamilyOPT)
	if _, err := InjectLoRA(tensor.NewRNG(8), m.Blocks, DefaultLoRA()); err != nil {
		t.Fatal(err)
	}
	if _, err := InjectLoRA(tensor.NewRNG(9), m.Blocks, DefaultLoRA()); err == nil {
		t.Fatal("double LoRA injection accepted")
	}
}

func TestLoRAParamCount(t *testing.T) {
	m := tinyModel(t, model.FamilyLlama)
	cfg := DefaultLoRA()
	ad, err := InjectLoRA(tensor.NewRNG(10), m.Blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 blocks × 2 targets × (dim*r + r*dim) = 3*2*2*8*8.
	want := int64(3 * 2 * 2 * 8 * cfg.Rank)
	if got := ad.ParamCount(); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
	if ad.ParamBytes() != want*4 {
		t.Fatalf("ParamBytes = %d", ad.ParamBytes())
	}
	// Analytic spec agrees.
	spec := LoRASpec(cfg)
	if got := spec.ParamsPerBlock(8) * 3; got != want {
		t.Fatalf("spec ParamsPerBlock*3 = %d, want %d", got, want)
	}
}

// TestPrefixFineTuning trains a prefix adapter and checks loss falls.
func TestPrefixFineTuning(t *testing.T) {
	m := tinyModel(t, model.FamilyLlama)
	m.SetFrozenBase(true)
	ad, err := InjectPrefix(tensor.NewRNG(11), m.Blocks, m.Cfg.Dim, PrefixConfig{PrefixLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	params := ad.Params()
	ids, targets := randBatch(m.Cfg.Vocab, 12, 12)
	opt := nn.NewAdam(1e-2)
	first, err := m.LossAndGrad(ids, targets, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 50; i++ {
		res, err := m.LossAndGrad(ids, targets, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		last = res.Loss
		if err := opt.Step(params); err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
	}
	if last >= first.Loss {
		t.Fatalf("prefix tuning did not reduce loss: %v -> %v", first.Loss, last)
	}
	ad.Remove()
	if m.Blocks[0].Attn.Prefix != nil {
		t.Fatal("Remove left prefix attached")
	}
}

// TestPrefixGradCheck numerically verifies gradients flowing into the
// prefix K/V parameters through the full attention backward.
func TestPrefixGradCheck(t *testing.T) {
	m := tinyModel(t, model.FamilyOPT)
	m.SetFrozenBase(true)
	ad, err := InjectPrefix(tensor.NewRNG(13), m.Blocks, m.Cfg.Dim, PrefixConfig{PrefixLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := randBatch(m.Cfg.Vocab, 6, 14)
	forward := func() float64 {
		loss, err := m.Loss(ids, targets, 1, 6)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	if _, err := m.LossAndGrad(ids, targets, 1, 6); err != nil {
		t.Fatal(err)
	}
	// Check a handful of entries in block 1's prefix K and V.
	for _, p := range []nn.Param{m.Blocks[1].Attn.Prefix.K, m.Blocks[1].Attn.Prefix.V} {
		const h = 1e-2
		for i := 0; i < p.Value.Len(); i += 5 {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + h
			up := forward()
			p.Value.Data()[i] = orig - h
			down := forward()
			p.Value.Data()[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data()[i])
			diff := math.Abs(numeric - analytic)
			if diff > 0.1*math.Max(0.05, math.Abs(numeric)) {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
	_ = ad
}

func TestDoublePrefixRejected(t *testing.T) {
	m := tinyModel(t, model.FamilyOPT)
	if _, err := InjectPrefix(tensor.NewRNG(15), m.Blocks, m.Cfg.Dim, DefaultPrefix()); err != nil {
		t.Fatal(err)
	}
	if _, err := InjectPrefix(tensor.NewRNG(16), m.Blocks, m.Cfg.Dim, DefaultPrefix()); err == nil {
		t.Fatal("double prefix injection accepted")
	}
}

// TestFreshBottleneckIsIdentity checks the zero-init up-projection.
func TestFreshBottleneckIsIdentity(t *testing.T) {
	m := tinyModel(t, model.FamilyOPT)
	ids, targets := randBatch(m.Cfg.Vocab, 8, 17)
	before, err := m.Loss(ids, targets, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := InjectBottleneck(tensor.NewRNG(18), m.Blocks, m.Cfg.Dim, DefaultBottleneck())
	if err != nil {
		t.Fatal(err)
	}
	after, err := m.Loss(ids, targets, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-6 {
		t.Fatalf("fresh bottleneck changed loss: %v -> %v", before, after)
	}
	ad.Remove()
}

func TestBottleneckFineTuning(t *testing.T) {
	m := tinyModel(t, model.FamilyLlama)
	m.SetFrozenBase(true)
	ad, err := InjectBottleneck(tensor.NewRNG(19), m.Blocks, m.Cfg.Dim, DefaultBottleneck())
	if err != nil {
		t.Fatal(err)
	}
	params := ad.Params()
	ids, targets := randBatch(m.Cfg.Vocab, 12, 20)
	opt := nn.NewAdam(5e-3)
	first, err := m.LossAndGrad(ids, targets, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 50; i++ {
		res, err := m.LossAndGrad(ids, targets, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		last = res.Loss
		if err := opt.Step(params); err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
	}
	if last >= first.Loss {
		t.Fatalf("bottleneck tuning did not reduce loss: %v -> %v", first.Loss, last)
	}
}

func TestSpecValidateAndInject(t *testing.T) {
	m := tinyModel(t, model.FamilyLlama)
	specs := []Spec{
		LoRASpec(DefaultLoRA()),
		PrefixSpec(DefaultPrefix()),
		BottleneckSpec(DefaultBottleneck()),
	}
	for _, s := range specs {
		t.Run(s.Kind.String(), func(t *testing.T) {
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			mm := tinyModel(t, model.FamilyLlama)
			ad, err := s.Inject(tensor.NewRNG(21), mm.Blocks, mm.Cfg.Dim)
			if err != nil {
				t.Fatal(err)
			}
			if ad.ParamCount() <= 0 {
				t.Fatal("no adapter params")
			}
			// Analytic per-block count × blocks == instantiated count.
			if want := s.ParamsPerBlock(mm.Cfg.Dim) * int64(len(mm.Blocks)); want != ad.ParamCount() {
				t.Fatalf("analytic %d != instantiated %d", want, ad.ParamCount())
			}
			ad.Remove()
		})
	}
	_ = m

	bad := Spec{Kind: Kind(42)}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown kind validated")
	}
	if _, err := bad.Inject(tensor.NewRNG(22), m.Blocks, m.Cfg.Dim); err == nil {
		t.Fatal("unknown kind injected")
	}
	if bad.ParamsPerBlock(8) != 0 {
		t.Fatal("unknown kind has params")
	}
}

func TestKindAndTargetStrings(t *testing.T) {
	if KindLoRA.String() != "lora" || KindPrefix.String() != "prefix" || KindBottleneck.String() != "bottleneck" {
		t.Fatal("kind strings")
	}
	if TargetQ.String() != "q" || TargetO.String() != "o" {
		t.Fatal("target strings")
	}
	if Kind(0).String() == "" || Target(0).String() == "" {
		t.Fatal("unknown strings empty")
	}
}

// TestHeterogeneousAdapters exercises the paper's claim that different
// clients can use different fine-tuning methods on the same base
// parameters: three model instances sharing nothing here (instance
// sharing is tested in the share package), each with a different
// adapter kind, all reducing loss.
func TestHeterogeneousAdapters(t *testing.T) {
	specs := []Spec{
		LoRASpec(DefaultLoRA()),
		PrefixSpec(PrefixConfig{PrefixLen: 4}),
		BottleneckSpec(DefaultBottleneck()),
	}
	for _, s := range specs {
		m := tinyModel(t, model.FamilyOPT)
		m.SetFrozenBase(true)
		ad, err := s.Inject(tensor.NewRNG(23), m.Blocks, m.Cfg.Dim)
		if err != nil {
			t.Fatalf("%v: %v", s.Kind, err)
		}
		ids, targets := randBatch(m.Cfg.Vocab, 12, 24)
		opt := nn.NewAdam(5e-3)
		first, err := m.LossAndGrad(ids, targets, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		var last float64
		for i := 0; i < 30; i++ {
			res, err := m.LossAndGrad(ids, targets, 2, 6)
			if err != nil {
				t.Fatal(err)
			}
			last = res.Loss
			if err := opt.Step(ad.Params()); err != nil {
				t.Fatal(err)
			}
			nn.ZeroGrads(ad.Params())
		}
		if last >= first.Loss {
			t.Fatalf("%v adapter did not reduce loss: %v -> %v", s.Kind, first.Loss, last)
		}
	}
}
