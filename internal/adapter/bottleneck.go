package adapter

import (
	"fmt"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// BottleneckConfig configures Houlsby-style serial adapters: a small
// residual MLP (down-projection, GELU, up-projection) inserted after a
// block's output projection.
type BottleneckConfig struct {
	Hidden int // bottleneck width
}

// DefaultBottleneck returns a 16-wide bottleneck configuration.
func DefaultBottleneck() BottleneckConfig { return BottleneckConfig{Hidden: 16} }

// Validate checks the configuration.
func (c BottleneckConfig) Validate() error {
	if c.Hidden <= 0 {
		return fmt.Errorf("%w: bottleneck hidden %d", ErrAdapter, c.Hidden)
	}
	return nil
}

// bottleneckOp wraps a base Op with y = base(x) + Up(GELU(Down(base(x)))).
type bottleneckOp struct {
	base nn.Op
	down *nn.Linear
	up   *nn.Linear
}

var _ nn.Op = (*bottleneckOp)(nil)

type bottleneckCache struct {
	baseC any
	downC any
	upC   any
	act   *nn.ActCache
}

// Bytes implements nn.SizedCache.
func (c *bottleneckCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return nn.CacheBytes(c.baseC) + nn.CacheBytes(c.downC) + nn.CacheBytes(c.upC) + c.act.Bytes()
}

func newBottleneckOp(rng *tensor.RNG, base nn.Op, dim, hidden int) *bottleneckOp {
	up := nn.NewLinear(rng.Split(), hidden, dim, true)
	// Zero-init the up-projection so a fresh adapter is a no-op.
	up.W.Value.Zero()
	return &bottleneckOp{
		base: base,
		down: nn.NewLinear(rng.Split(), dim, hidden, true),
		up:   up,
	}
}

// Apply implements nn.Op.
func (o *bottleneckOp) Apply(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, any, error) {
	y, baseC, err := o.base.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("bottleneck base: %w", err)
	}
	h, downC, err := o.down.Apply(y, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("bottleneck down: %w", err)
	}
	var act *nn.ActCache
	if withGrad {
		act = &nn.ActCache{}
	}
	g := nn.GELU(h, act)
	delta, upC, err := o.up.Apply(g, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("bottleneck up: %w", err)
	}
	out := tensor.New(y.Shape()...)
	if err := tensor.Add(out, y, delta); err != nil {
		return nil, nil, fmt.Errorf("bottleneck residual: %w", err)
	}
	if !withGrad {
		return out, nil, nil
	}
	return out, &bottleneckCache{baseC: baseC, downC: downC, upC: upC, act: act}, nil
}

// Grad implements nn.Op.
func (o *bottleneckOp) Grad(cache any, dy *tensor.Tensor) (*tensor.Tensor, error) {
	c, ok := cache.(*bottleneckCache)
	if !ok {
		return nil, fmt.Errorf("bottleneck: unexpected cache type %T", cache)
	}
	// out = y + Up(GELU(Down(y)))
	dg, err := o.up.Grad(c.upC, dy)
	if err != nil {
		return nil, fmt.Errorf("bottleneck up backward: %w", err)
	}
	dh, err := nn.GELUBackward(c.act, dg)
	if err != nil {
		return nil, fmt.Errorf("bottleneck gelu backward: %w", err)
	}
	dyAdapter, err := o.down.Grad(c.downC, dh)
	if err != nil {
		return nil, fmt.Errorf("bottleneck down backward: %w", err)
	}
	dyTotal := tensor.New(dy.Shape()...)
	if err := tensor.Add(dyTotal, dy, dyAdapter); err != nil {
		return nil, fmt.Errorf("bottleneck dy sum: %w", err)
	}
	return o.base.Grad(c.baseC, dyTotal)
}

// Params returns the adapter's parameters plus any trainable base
// parameters.
func (o *bottleneckOp) Params() []nn.Param {
	ps := append(nn.Prefixed("down", o.down.Params()), nn.Prefixed("up", o.up.Params())...)
	return append(ps, o.base.Params()...)
}

// SetFrozen forwards to the base; the adapter stays trainable.
func (o *bottleneckOp) SetFrozen(frozen bool) { o.base.SetFrozen(frozen) }

// BottleneckAdapter is the set of bottleneck modules attached to a
// model section (one after each block's attention output projection).
type BottleneckAdapter struct {
	Config BottleneckConfig

	ops      []*bottleneckOp
	restores []func()
}

// InjectBottleneck wraps each block's attention output projection with
// a serial bottleneck adapter.
func InjectBottleneck(rng *tensor.RNG, blocks []*model.Block, dim int, cfg BottleneckConfig) (*BottleneckAdapter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ad := &BottleneckAdapter{Config: cfg}
	for _, b := range blocks {
		slot := &b.Attn.O
		base := *slot
		wrapped := newBottleneckOp(rng.Split(), base, dim, cfg.Hidden)
		*slot = wrapped
		ad.ops = append(ad.ops, wrapped)
		slotCopy := slot
		ad.restores = append(ad.restores, func() { *slotCopy = base })
	}
	return ad, nil
}

// Params returns the adapter parameters.
func (a *BottleneckAdapter) Params() []nn.Param {
	var ps []nn.Param
	for i, o := range a.ops {
		ps = append(ps, nn.Prefixed(fmt.Sprintf("bneck%d.down", i), o.down.Params())...)
		ps = append(ps, nn.Prefixed(fmt.Sprintf("bneck%d.up", i), o.up.Params())...)
	}
	return ps
}

// ParamCount returns the total number of adapter scalars.
func (a *BottleneckAdapter) ParamCount() int64 {
	var n int64
	for _, o := range a.ops {
		for _, p := range append(o.down.Params(), o.up.Params()...) {
			n += int64(p.Value.Len())
		}
	}
	return n
}

// ParamBytes returns the adapter footprint in bytes.
func (a *BottleneckAdapter) ParamBytes() int64 { return a.ParamCount() * 4 }

// Remove restores the original projections.
func (a *BottleneckAdapter) Remove() {
	for _, restore := range a.restores {
		restore()
	}
	a.restores = nil
	a.ops = nil
}
