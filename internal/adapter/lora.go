// Package adapter implements parameter-efficient fine-tuning adapters:
// LoRA (the paper's evaluated method), prefix-tuning, and Houlsby-style
// bottleneck adapters. Adapters attach to a model instance without
// modifying base parameters, which is precisely what makes base-model
// sharing across clients safe (§3.1): the base tensors stay read-only
// while each client owns its private adapter parameters φ.
package adapter

import (
	"errors"
	"fmt"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// ErrAdapter is returned (wrapped) for invalid adapter configurations
// or injection targets.
var ErrAdapter = errors.New("adapter: invalid configuration")

// Target identifies a projection inside a transformer block that an
// adapter can wrap.
type Target int

// Adapter injection targets.
const (
	TargetQ Target = iota + 1
	TargetK
	TargetV
	TargetO
)

// String returns the target's short name.
func (t Target) String() string {
	switch t {
	case TargetQ:
		return "q"
	case TargetK:
		return "k"
	case TargetV:
		return "v"
	case TargetO:
		return "o"
	default:
		return fmt.Sprintf("target(%d)", int(t))
	}
}

// LoRAConfig configures low-rank adaptation. The paper's evaluation
// uses rank 8, alpha 16, targets {q, v} (borrowed from the PEFT
// library's defaults).
type LoRAConfig struct {
	Rank    int
	Alpha   float64
	Targets []Target
}

// DefaultLoRA returns the paper's evaluation configuration: r=8, α=16,
// applied to the query and value projections.
func DefaultLoRA() LoRAConfig {
	return LoRAConfig{Rank: 8, Alpha: 16, Targets: []Target{TargetQ, TargetV}}
}

// Validate checks the configuration.
func (c LoRAConfig) Validate() error {
	if c.Rank <= 0 {
		return fmt.Errorf("%w: rank %d", ErrAdapter, c.Rank)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("%w: alpha %v", ErrAdapter, c.Alpha)
	}
	if len(c.Targets) == 0 {
		return fmt.Errorf("%w: no targets", ErrAdapter)
	}
	for _, t := range c.Targets {
		if t < TargetQ || t > TargetO {
			return fmt.Errorf("%w: unknown target %d", ErrAdapter, int(t))
		}
	}
	return nil
}

// LoRALinear wraps a base projection with a low-rank residual:
//
//	y = Base(x) + (α/r) · (x A) B
//
// where A is (in, r) with small random init and B is (r, out)
// initialized to zero, so a fresh adapter is the identity perturbation.
type LoRALinear struct {
	Base  nn.Op
	A     nn.Param
	B     nn.Param
	Scale float32

	in, out int
}

var _ nn.Op = (*LoRALinear)(nil)

// loraCache retains the LoRA forward intermediates.
type loraCache struct {
	baseC any
	x     *tensor.Tensor
	xa    *tensor.Tensor // x @ A, (rows, r)
}

// Bytes implements nn.SizedCache.
func (c *loraCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	b := nn.CacheBytes(c.baseC)
	if c.x != nil {
		b += c.x.Bytes()
	}
	if c.xa != nil {
		b += c.xa.Bytes()
	}
	return b
}

// NewLoRALinear wraps base (a projection from in to out features) with
// a rank-r adapter.
func NewLoRALinear(rng *tensor.RNG, base nn.Op, in, out, rank int, alpha float64) *LoRALinear {
	return &LoRALinear{
		Base:  base,
		A:     nn.NewParam("lora_a", tensor.NewNormal(rng, 0.02, in, rank)),
		B:     nn.NewParam("lora_b", tensor.New(rank, out)),
		Scale: float32(alpha / float64(rank)),
		in:    in,
		out:   out,
	}
}

// Apply implements nn.Op.
func (l *LoRALinear) Apply(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, any, error) {
	y, baseC, err := l.Base.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("lora base: %w", err)
	}
	rows := x.Dim(0)
	xa := tensor.New(rows, l.A.Value.Dim(1))
	if err := tensor.MatMul(xa, x, l.A.Value); err != nil {
		return nil, nil, fmt.Errorf("lora xA: %w", err)
	}
	delta := tensor.New(rows, l.out)
	if err := tensor.MatMul(delta, xa, l.B.Value); err != nil {
		return nil, nil, fmt.Errorf("lora xAB: %w", err)
	}
	if err := tensor.AXPY(l.Scale, delta, y); err != nil {
		return nil, nil, fmt.Errorf("lora residual: %w", err)
	}
	if !withGrad {
		return y, nil, nil
	}
	return y, &loraCache{baseC: baseC, x: x, xa: xa}, nil
}

// Grad implements nn.Op.
func (l *LoRALinear) Grad(cache any, dy *tensor.Tensor) (*tensor.Tensor, error) {
	c, ok := cache.(*loraCache)
	if !ok {
		return nil, fmt.Errorf("lora: unexpected cache type %T", cache)
	}
	dx, err := l.Base.Grad(c.baseC, dy)
	if err != nil {
		return nil, fmt.Errorf("lora base backward: %w", err)
	}
	rows := c.x.Dim(0)
	rank := l.A.Value.Dim(1)

	// delta = scale * (x A) B
	// dB += scale * (xA)ᵀ dy
	scaled := dy.Clone()
	scaled.Scale(l.Scale)
	if err := tensor.MatMulTAccum(l.B.Grad, c.xa, scaled); err != nil {
		return nil, fmt.Errorf("lora dB: %w", err)
	}
	// dXA = scale * dy Bᵀ
	dxa := tensor.New(rows, rank)
	if err := tensor.MatMulT(dxa, scaled, l.B.Value); err != nil {
		return nil, fmt.Errorf("lora dXA: %w", err)
	}
	// dA += xᵀ dXA
	if err := tensor.MatMulTAccum(l.A.Grad, c.x, dxa); err != nil {
		return nil, fmt.Errorf("lora dA: %w", err)
	}
	// dx += dXA Aᵀ
	dxLora := tensor.New(rows, l.in)
	if err := tensor.MatMulT(dxLora, dxa, l.A.Value); err != nil {
		return nil, fmt.Errorf("lora dx: %w", err)
	}
	if err := tensor.Add(dx, dx, dxLora); err != nil {
		return nil, fmt.Errorf("lora dx sum: %w", err)
	}
	return dx, nil
}

// Params returns the adapter parameters A and B (the base's trainable
// params, if any, are included so optimizers see everything reachable).
func (l *LoRALinear) Params() []nn.Param {
	ps := []nn.Param{l.A, l.B}
	return append(ps, l.Base.Params()...)
}

// SetFrozen forwards to the base projection; LoRA parameters themselves
// are always trainable.
func (l *LoRALinear) SetFrozen(frozen bool) { l.Base.SetFrozen(frozen) }

// ParamCount returns the number of adapter scalars (A and B).
func (l *LoRALinear) ParamCount() int64 {
	return int64(l.A.Value.Len() + l.B.Value.Len())
}

// LoRAAdapter is the set of LoRA layers injected into a model section.
type LoRAAdapter struct {
	Config LoRAConfig

	layers   []*LoRALinear
	restores []func()
}

// InjectLoRA wraps the configured projections of every block with LoRA
// layers. It returns the adapter handle, which owns the new trainable
// parameters and can detach itself via Remove. The blocks' base
// parameters are untouched — only the structural references change,
// exactly the "separate parameters from structure" principle of §3.1.
func InjectLoRA(rng *tensor.RNG, blocks []*model.Block, cfg LoRAConfig) (*LoRAAdapter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ad := &LoRAAdapter{Config: cfg}
	for _, b := range blocks {
		attn := b.Attn
		for _, target := range cfg.Targets {
			slot, err := projSlot(attn, target)
			if err != nil {
				return nil, err
			}
			base := *slot
			if _, already := base.(*LoRALinear); already {
				return nil, fmt.Errorf("%w: target %v already has a LoRA adapter", ErrAdapter, target)
			}
			lin, ok := base.(interface {
				In() int
				Out() int
			})
			if !ok {
				return nil, fmt.Errorf("%w: target %v is not a linear-like projection (%T)",
					ErrAdapter, target, base)
			}
			wrapped := NewLoRALinear(rng.Split(), base, lin.In(), lin.Out(), cfg.Rank, cfg.Alpha)
			*slot = wrapped
			ad.layers = append(ad.layers, wrapped)
			slotCopy := slot
			ad.restores = append(ad.restores, func() { *slotCopy = base })
		}
	}
	return ad, nil
}

func projSlot(attn *model.Attention, target Target) (*nn.Op, error) {
	switch target {
	case TargetQ:
		return &attn.Q, nil
	case TargetK:
		return &attn.K, nil
	case TargetV:
		return &attn.V, nil
	case TargetO:
		return &attn.O, nil
	default:
		return nil, fmt.Errorf("%w: unknown target %d", ErrAdapter, int(target))
	}
}

// Params returns all adapter parameters φ.
func (a *LoRAAdapter) Params() []nn.Param {
	var ps []nn.Param
	for i, l := range a.layers {
		ps = append(ps,
			nn.Param{Name: fmt.Sprintf("lora%d.a", i), Value: l.A.Value, Grad: l.A.Grad},
			nn.Param{Name: fmt.Sprintf("lora%d.b", i), Value: l.B.Value, Grad: l.B.Grad},
		)
	}
	return ps
}

// ParamCount returns the total number of adapter scalars.
func (a *LoRAAdapter) ParamCount() int64 {
	var n int64
	for _, l := range a.layers {
		n += l.ParamCount()
	}
	return n
}

// ParamBytes returns the adapter parameter footprint in bytes (the 𝔸
// term of §2.3).
func (a *LoRAAdapter) ParamBytes() int64 { return a.ParamCount() * 4 }

// Remove detaches every LoRA layer, restoring the original projections.
// The underlying base parameters were never modified.
func (a *LoRAAdapter) Remove() {
	for _, restore := range a.restores {
		restore()
	}
	a.restores = nil
	a.layers = nil
}

// Layers returns the injected LoRA layers (read-only use).
func (a *LoRAAdapter) Layers() []*LoRALinear { return a.layers }
