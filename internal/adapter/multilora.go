// Multi-adapter row dispatch: one batched kernel invocation over the
// shared frozen base applies each client's private LoRA residual to
// that client's own row segment of the stacked activation tensor
// (docs/BATCHING.md). The bit-identity argument rests on two repo
// invariants: every matmul kernel reduces in ascending order per
// output element regardless of how rows are grouped
// (internal/tensor/matmul.go), and the frozen base accumulates no
// weight gradients, so K clients stacked row-wise see exactly the
// arithmetic K serial passes would.
package adapter

import (
	"fmt"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// Segment is one client's row share of a batched projection: Rows
// consecutive rows of the stacked input dispatched through that
// client's own LoRALinear parameters (values and gradients alike).
type Segment struct {
	Rows  int
	Layer *LoRALinear
}

// MultiLoRALinear computes, for a stacked input whose row segments
// belong to different clients,
//
//	y[seg_k] = Base(x)[seg_k] + scale_k · (x[seg_k] A_k) B_k
//
// with one base invocation over the full stack and a per-segment
// low-rank residual. Gradients flow into each segment's own A/B grad
// buffers; the base runs frozen, so nothing is shared mutable state.
// Segment ranks and scales may differ — only the base projection and
// the row partition are common.
type MultiLoRALinear struct {
	Base     nn.Op
	Segments []Segment

	in, out int
}

var _ nn.Op = (*MultiLoRALinear)(nil)

// multiCache retains the batched forward intermediates: the stacked
// input and each segment's xA product.
type multiCache struct {
	baseC any
	x     *tensor.Tensor
	xas   []*tensor.Tensor
}

// Bytes implements nn.SizedCache.
func (c *multiCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	b := nn.CacheBytes(c.baseC)
	if c.x != nil {
		b += c.x.Bytes()
	}
	for _, xa := range c.xas {
		b += xa.Bytes()
	}
	return b
}

// NewMultiLoRALinear builds a batched projection over base (in → out
// features) dispatching rows to segments. Every segment layer must
// adapt the same feature shape.
func NewMultiLoRALinear(base nn.Op, in, out int, segments []Segment) (*MultiLoRALinear, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("%w: multi-lora needs at least one segment", ErrAdapter)
	}
	for i, s := range segments {
		if s.Rows <= 0 {
			return nil, fmt.Errorf("%w: segment %d has %d rows", ErrAdapter, i, s.Rows)
		}
		if s.Layer == nil {
			return nil, fmt.Errorf("%w: segment %d has no layer", ErrAdapter, i)
		}
		if s.Layer.in != in || s.Layer.out != out {
			return nil, fmt.Errorf("%w: segment %d adapts (%d→%d), base is (%d→%d)",
				ErrAdapter, i, s.Layer.in, s.Layer.out, in, out)
		}
	}
	return &MultiLoRALinear{Base: base, Segments: segments, in: in, out: out}, nil
}

// totalRows sums the segment partition.
func (l *MultiLoRALinear) totalRows() int {
	n := 0
	for _, s := range l.Segments {
		n += s.Rows
	}
	return n
}

// Apply implements nn.Op: one frozen-base pass over the full stack,
// then each segment's residual in ascending row order.
func (l *MultiLoRALinear) Apply(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, any, error) {
	if want := l.totalRows(); x.Dim(0) != want {
		return nil, nil, fmt.Errorf("%w: stacked input has %d rows, segments partition %d",
			ErrAdapter, x.Dim(0), want)
	}
	y, baseC, err := l.Base.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("multi-lora base: %w", err)
	}
	var xas []*tensor.Tensor
	if withGrad {
		xas = make([]*tensor.Tensor, len(l.Segments))
	}
	lo := 0
	for i, s := range l.Segments {
		hi := lo + s.Rows
		xs, err := x.Slice2D(lo, hi)
		if err != nil {
			return nil, nil, fmt.Errorf("multi-lora segment %d input: %w", i, err)
		}
		ys, err := y.Slice2D(lo, hi)
		if err != nil {
			return nil, nil, fmt.Errorf("multi-lora segment %d output: %w", i, err)
		}
		// Identical arithmetic to LoRALinear.Apply over this client's
		// rows alone: xa = x_seg A, y_seg += scale · xa B.
		xa := tensor.New(s.Rows, s.Layer.A.Value.Dim(1))
		if err := tensor.MatMul(xa, xs, s.Layer.A.Value); err != nil {
			return nil, nil, fmt.Errorf("multi-lora segment %d xA: %w", i, err)
		}
		delta := tensor.New(s.Rows, l.out)
		if err := tensor.MatMul(delta, xa, s.Layer.B.Value); err != nil {
			return nil, nil, fmt.Errorf("multi-lora segment %d xAB: %w", i, err)
		}
		if err := tensor.AXPY(s.Layer.Scale, delta, ys); err != nil {
			return nil, nil, fmt.Errorf("multi-lora segment %d residual: %w", i, err)
		}
		if withGrad {
			xas[i] = xa
		}
		lo = hi
	}
	if !withGrad {
		return y, nil, nil
	}
	return y, &multiCache{baseC: baseC, x: x, xas: xas}, nil
}

// Grad implements nn.Op: the frozen base backward runs once over the
// full stacked dy (accumulating no base weight gradients), then each
// segment mirrors LoRALinear.Grad over its own rows, accumulating into
// that client's private A/B gradient buffers.
func (l *MultiLoRALinear) Grad(cache any, dy *tensor.Tensor) (*tensor.Tensor, error) {
	c, ok := cache.(*multiCache)
	if !ok {
		return nil, fmt.Errorf("multi-lora: unexpected cache type %T", cache)
	}
	dx, err := l.Base.Grad(c.baseC, dy)
	if err != nil {
		return nil, fmt.Errorf("multi-lora base backward: %w", err)
	}
	lo := 0
	for i, s := range l.Segments {
		hi := lo + s.Rows
		dys, err := dy.Slice2D(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("multi-lora segment %d dy: %w", i, err)
		}
		xs, err := c.x.Slice2D(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("multi-lora segment %d x: %w", i, err)
		}
		dxs, err := dx.Slice2D(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("multi-lora segment %d dx: %w", i, err)
		}
		rank := s.Layer.A.Value.Dim(1)
		scaled := dys.Clone()
		scaled.Scale(s.Layer.Scale)
		if err := tensor.MatMulTAccum(s.Layer.B.Grad, c.xas[i], scaled); err != nil {
			return nil, fmt.Errorf("multi-lora segment %d dB: %w", i, err)
		}
		dxa := tensor.New(s.Rows, rank)
		if err := tensor.MatMulT(dxa, scaled, s.Layer.B.Value); err != nil {
			return nil, fmt.Errorf("multi-lora segment %d dXA: %w", i, err)
		}
		if err := tensor.MatMulTAccum(s.Layer.A.Grad, xs, dxa); err != nil {
			return nil, fmt.Errorf("multi-lora segment %d dA: %w", i, err)
		}
		dxLora := tensor.New(s.Rows, l.in)
		if err := tensor.MatMulT(dxLora, dxa, s.Layer.A.Value); err != nil {
			return nil, fmt.Errorf("multi-lora segment %d dx: %w", i, err)
		}
		if err := tensor.Add(dxs, dxs, dxLora); err != nil {
			return nil, fmt.Errorf("multi-lora segment %d dx sum: %w", i, err)
		}
		lo = hi
	}
	return dx, nil
}

// Params returns every segment's adapter parameters plus any trainable
// base parameters (none when the base is frozen, which is the only
// supported batched configuration).
func (l *MultiLoRALinear) Params() []nn.Param {
	var ps []nn.Param
	for _, s := range l.Segments {
		ps = append(ps, s.Layer.A, s.Layer.B)
	}
	return append(ps, l.Base.Params()...)
}

// SetFrozen forwards to the base projection.
func (l *MultiLoRALinear) SetFrozen(frozen bool) { l.Base.SetFrozen(frozen) }

// MultiLoRAAdapter is the set of MultiLoRALinear layers injected into
// a (shallow-cloned) body for one batched invocation.
type MultiLoRAAdapter struct {
	layers   []*MultiLoRALinear
	restores []func()
}

// InjectMultiLoRA wraps the targeted projections of every block with
// multi-adapter layers that dispatch rows[k] consecutive rows of the
// stacked input through members[k]'s LoRA parameters. members[k] must
// be the ordered LoRAAdapter.Layers() of a client whose adapter was
// injected with the same targets over the same block range — the slot
// order (block-major, then target order) is how member layer i maps to
// block i/len(targets), target i%len(targets). The blocks should be
// pristine shallow clones of the shared base: injecting over an
// already-adapted slot is an error, because it would nest residuals.
func InjectMultiLoRA(blocks []*model.Block, targets []Target, members [][]*LoRALinear, rows []int) (*MultiLoRAAdapter, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("%w: no targets", ErrAdapter)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: no batch members", ErrAdapter)
	}
	if len(members) != len(rows) {
		return nil, fmt.Errorf("%w: %d members but %d row counts", ErrAdapter, len(members), len(rows))
	}
	want := len(blocks) * len(targets)
	for k, ls := range members {
		if len(ls) != want {
			return nil, fmt.Errorf("%w: member %d has %d LoRA layers, need %d (%d blocks × %d targets)",
				ErrAdapter, k, len(ls), want, len(blocks), len(targets))
		}
		if rows[k] <= 0 {
			return nil, fmt.Errorf("%w: member %d contributes %d rows", ErrAdapter, k, rows[k])
		}
	}
	ad := &MultiLoRAAdapter{}
	for bi, b := range blocks {
		attn := b.Attn
		for ti, target := range targets {
			slot, err := projSlot(attn, target)
			if err != nil {
				return nil, err
			}
			base := *slot
			switch base.(type) {
			case *LoRALinear, *MultiLoRALinear:
				return nil, fmt.Errorf("%w: block %d target %v already carries an adapter (inject over a pristine clone)",
					ErrAdapter, bi, target)
			}
			lin, ok := base.(interface {
				In() int
				Out() int
			})
			if !ok {
				return nil, fmt.Errorf("%w: block %d target %v is not a linear-like projection (%T)",
					ErrAdapter, bi, target, base)
			}
			segs := make([]Segment, len(members))
			for k := range members {
				segs[k] = Segment{Rows: rows[k], Layer: members[k][bi*len(targets)+ti]}
			}
			ml, err := NewMultiLoRALinear(base, lin.In(), lin.Out(), segs)
			if err != nil {
				return nil, fmt.Errorf("block %d target %v: %w", bi, target, err)
			}
			*slot = ml
			ad.layers = append(ad.layers, ml)
			slotCopy := slot
			ad.restores = append(ad.restores, func() { *slotCopy = base })
		}
	}
	return ad, nil
}

// Layers returns the injected multi-adapter layers (read-only use).
func (a *MultiLoRAAdapter) Layers() []*MultiLoRALinear { return a.layers }

// Remove detaches every multi-adapter layer, restoring the original
// projections. Member parameters are untouched.
func (a *MultiLoRAAdapter) Remove() {
	for _, restore := range a.restores {
		restore()
	}
	a.restores = nil
	a.layers = nil
}
