package adapter

import (
	"fmt"
	"testing"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// multiFixture is K clients' serial bodies plus the shared master.
type multiFixture struct {
	master  *model.Transformer
	cfg     LoRAConfig
	adapter []*LoRAAdapter
	body    []*model.BodySection
	batch   []int
	seq     int
	dim     int
}

func newMultiFixture(t *testing.T, batches []int) *multiFixture {
	t.Helper()
	f := &multiFixture{
		master: tinyModel(t, model.FamilyOPT),
		cfg:    LoRAConfig{Rank: 2, Alpha: 4, Targets: []Target{TargetQ, TargetV}},
		batch:  batches,
		seq:    4,
	}
	f.dim = f.master.Cfg.Dim
	f.master.SetFrozenBase(true)
	for k := range batches {
		blocks := model.ShallowCloneBlocks(f.master.Blocks)
		ad, err := InjectLoRA(tensor.NewRNG(uint64(100+k)), blocks, f.cfg)
		if err != nil {
			t.Fatal(err)
		}
		f.adapter = append(f.adapter, ad)
		f.body = append(f.body, model.Body(blocks))
	}
	return f
}

// layersOf collects the fixture's member layer lists for injection.
func (f *multiFixture) layersOf() [][]*LoRALinear {
	out := make([][]*LoRALinear, len(f.adapter))
	for k, ad := range f.adapter {
		out[k] = ad.Layers()
	}
	return out
}

// inputs builds each client's input and upstream gradient.
func (f *multiFixture) inputs() (xs, dys []*tensor.Tensor) {
	for k, b := range f.batch {
		rows := b * f.seq
		xs = append(xs, tensor.NewNormal(tensor.NewRNG(uint64(200+k)), 1, rows, f.dim))
		dys = append(dys, tensor.NewNormal(tensor.NewRNG(uint64(300+k)), 1, rows, f.dim))
	}
	return xs, dys
}

// stackRows concatenates tensors row-wise.
func stackRows(t *testing.T, parts []*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := tensor.StackRows(parts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func bitEqual(a, b *tensor.Tensor) bool {
	da, db := a.Data(), b.Data()
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// TestMultiLoRABitIdenticalToSerial is the determinism pin at the
// model-section level: one batched forward/backward over K clients'
// stacked microbatches must produce bit-identical outputs, input
// gradients, adapter gradients, and (after one optimizer step)
// adapter weights compared to K serial passes — at serial and at
// full pool parallelism. Client losses are a pure function of the
// body output and the client-held head, so output bit-equality is
// loss bit-equality.
func TestMultiLoRABitIdenticalToSerial(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", workers), func(t *testing.T) {
			prev := tensor.Parallelism()
			tensor.SetParallelism(workers)
			defer tensor.SetParallelism(prev)

			f := newMultiFixture(t, []int{1, 2, 1})
			xs, dys := f.inputs()

			// Serial reference: each client alone through its own body.
			var serialY, serialDX []*tensor.Tensor
			var serialGrads, serialWeights [][]*tensor.Tensor
			for k, body := range f.body {
				y, cache, err := body.Forward(xs[k], f.batch[k], f.seq, true)
				if err != nil {
					t.Fatal(err)
				}
				dx, err := body.Backward(cache, dys[k])
				if err != nil {
					t.Fatal(err)
				}
				serialY = append(serialY, y.Clone())
				serialDX = append(serialDX, dx.Clone())
				params := f.adapter[k].Params()
				var grads []*tensor.Tensor
				for _, p := range params {
					grads = append(grads, p.Grad.Clone())
				}
				serialGrads = append(serialGrads, grads)
				opt := nn.NewAdam(1e-2)
				if err := opt.Step(params); err != nil {
					t.Fatal(err)
				}
				var weights []*tensor.Tensor
				for _, p := range params {
					weights = append(weights, p.Value.Clone())
				}
				serialWeights = append(serialWeights, weights)
			}

			// Rewind: fresh fixture with identical seeds, then one
			// batched pass over the stacked rows.
			f = newMultiFixture(t, []int{1, 2, 1})
			xs, dys = f.inputs()
			rows := make([]int, len(f.batch))
			totalBatch := 0
			for k, b := range f.batch {
				rows[k] = b * f.seq
				totalBatch += b
			}
			blocks := model.ShallowCloneBlocks(f.master.Blocks)
			mad, err := InjectMultiLoRA(blocks, f.cfg.Targets, f.layersOf(), rows)
			if err != nil {
				t.Fatal(err)
			}
			mbody := model.Body(blocks)
			y, cache, err := mbody.Forward(stackRows(t, xs), totalBatch, f.seq, true)
			if err != nil {
				t.Fatal(err)
			}
			dx, err := mbody.Backward(cache, stackRows(t, dys))
			if err != nil {
				t.Fatal(err)
			}

			lo := 0
			for k := range f.body {
				hi := lo + rows[k]
				ySeg, err := y.Slice2D(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				if !bitEqual(ySeg, serialY[k]) {
					t.Errorf("client %d: batched output differs from serial", k)
				}
				dxSeg, err := dx.Slice2D(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				if !bitEqual(dxSeg, serialDX[k]) {
					t.Errorf("client %d: batched input gradient differs from serial", k)
				}
				params := f.adapter[k].Params()
				for i, p := range params {
					if !bitEqual(p.Grad, serialGrads[k][i]) {
						t.Errorf("client %d param %d: batched adapter gradient differs from serial", k, i)
					}
				}
				opt := nn.NewAdam(1e-2)
				if err := opt.Step(params); err != nil {
					t.Fatal(err)
				}
				for i, p := range params {
					if !bitEqual(p.Value, serialWeights[k][i]) {
						t.Errorf("client %d param %d: adapter weights diverge after optimizer step", k, i)
					}
				}
				lo = hi
			}
			mad.Remove()
		})
	}
}

// TestMultiLoRASingleSegmentMatchesLoRALinear: with one segment the
// batched op degenerates to the serial LoRALinear, bit for bit.
func TestMultiLoRASingleSegmentMatchesLoRALinear(t *testing.T) {
	rng := tensor.NewRNG(11)
	base := nn.NewLinear(rng, 6, 5, true)
	base.Frozen = true
	serial := NewLoRALinear(tensor.NewRNG(12), base, 6, 5, 3, 6)
	x := tensor.NewNormal(tensor.NewRNG(13), 1, 7, 6)
	dy := tensor.NewNormal(tensor.NewRNG(14), 1, 7, 5)

	ySerial, cSerial, err := serial.Apply(x, true)
	if err != nil {
		t.Fatal(err)
	}
	dxSerial, err := serial.Grad(cSerial, dy)
	if err != nil {
		t.Fatal(err)
	}
	gradA, gradB := serial.A.Grad.Clone(), serial.B.Grad.Clone()
	serial.A.Grad.Zero()
	serial.B.Grad.Zero()

	ml, err := NewMultiLoRALinear(base, 6, 5, []Segment{{Rows: 7, Layer: serial}})
	if err != nil {
		t.Fatal(err)
	}
	yBatch, cBatch, err := ml.Apply(x, true)
	if err != nil {
		t.Fatal(err)
	}
	dxBatch, err := ml.Grad(cBatch, dy)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(yBatch, ySerial) {
		t.Error("single-segment output differs")
	}
	if !bitEqual(dxBatch, dxSerial) {
		t.Error("single-segment input gradient differs")
	}
	if !bitEqual(serial.A.Grad, gradA) || !bitEqual(serial.B.Grad, gradB) {
		t.Error("single-segment adapter gradients differ")
	}
}

// TestInjectMultiLoRAValidation covers the structural error paths.
func TestInjectMultiLoRAValidation(t *testing.T) {
	m := tinyModel(t, model.FamilyOPT)
	cfg := LoRAConfig{Rank: 2, Alpha: 4, Targets: []Target{TargetQ, TargetV}}
	blocks := model.ShallowCloneBlocks(m.Blocks)
	ad, err := InjectLoRA(tensor.NewRNG(1), blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	member := [][]*LoRALinear{ad.Layers()}

	if _, err := InjectMultiLoRA(model.ShallowCloneBlocks(m.Blocks), nil, member, []int{4}); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := InjectMultiLoRA(model.ShallowCloneBlocks(m.Blocks), cfg.Targets, nil, nil); err == nil {
		t.Error("no members accepted")
	}
	if _, err := InjectMultiLoRA(model.ShallowCloneBlocks(m.Blocks), cfg.Targets, member, []int{4, 8}); err == nil {
		t.Error("mismatched rows accepted")
	}
	if _, err := InjectMultiLoRA(model.ShallowCloneBlocks(m.Blocks), cfg.Targets, member, []int{0}); err == nil {
		t.Error("zero rows accepted")
	}
	short := [][]*LoRALinear{ad.Layers()[:1]}
	if _, err := InjectMultiLoRA(model.ShallowCloneBlocks(m.Blocks), cfg.Targets, short, []int{4}); err == nil {
		t.Error("short member layer list accepted")
	}
	// Injecting over already-adapted slots must fail.
	if _, err := InjectMultiLoRA(blocks, cfg.Targets, member, []int{4}); err == nil {
		t.Error("injection over adapted slots accepted")
	}

	// A valid injection is removable: the clone's slots revert to the
	// shared base projections.
	clean := model.ShallowCloneBlocks(m.Blocks)
	mad, err := InjectMultiLoRA(clean, cfg.Targets, member, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(mad.Layers()) != len(m.Blocks)*len(cfg.Targets) {
		t.Fatalf("injected %d layers, want %d", len(mad.Layers()), len(m.Blocks)*len(cfg.Targets))
	}
	mad.Remove()
	for i, b := range clean {
		if b.Attn.Q != m.Blocks[i].Attn.Q || b.Attn.V != m.Blocks[i].Attn.V {
			t.Fatalf("block %d slots not restored", i)
		}
	}
}
