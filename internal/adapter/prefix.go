package adapter

import (
	"fmt"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// PrefixConfig configures prefix-tuning (Li & Liang 2021): every block
// gains PrefixLen trainable key/value slots that all query positions
// can attend to.
type PrefixConfig struct {
	PrefixLen int
}

// DefaultPrefix returns a 8-slot prefix configuration.
func DefaultPrefix() PrefixConfig { return PrefixConfig{PrefixLen: 8} }

// Validate checks the configuration.
func (c PrefixConfig) Validate() error {
	if c.PrefixLen <= 0 {
		return fmt.Errorf("%w: prefix length %d", ErrAdapter, c.PrefixLen)
	}
	return nil
}

// PrefixAdapter is the set of per-block prefixes attached to a model
// section.
type PrefixAdapter struct {
	Config PrefixConfig

	prefixes []*model.PrefixKV
	blocks   []*model.Block
}

// InjectPrefix attaches a trainable KV prefix to every block's
// attention. Blocks must not already carry a prefix.
func InjectPrefix(rng *tensor.RNG, blocks []*model.Block, dim int, cfg PrefixConfig) (*PrefixAdapter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, b := range blocks {
		if b.Attn.Prefix != nil {
			return nil, fmt.Errorf("%w: block already has a prefix", ErrAdapter)
		}
	}
	ad := &PrefixAdapter{Config: cfg}
	for _, b := range blocks {
		p := model.NewPrefixKV(rng.Split(), cfg.PrefixLen, dim)
		b.Attn.Prefix = p
		ad.prefixes = append(ad.prefixes, p)
		ad.blocks = append(ad.blocks, b)
	}
	return ad, nil
}

// Params returns all prefix parameters.
func (a *PrefixAdapter) Params() []nn.Param {
	var ps []nn.Param
	for i, p := range a.prefixes {
		ps = append(ps, nn.Prefixed(fmt.Sprintf("prefix%d", i), p.Params())...)
	}
	return ps
}

// ParamCount returns the total number of adapter scalars.
func (a *PrefixAdapter) ParamCount() int64 {
	var n int64
	for _, p := range a.prefixes {
		n += int64(p.K.Value.Len() + p.V.Value.Len())
	}
	return n
}

// ParamBytes returns the adapter footprint in bytes.
func (a *PrefixAdapter) ParamBytes() int64 { return a.ParamCount() * 4 }

// Remove detaches the prefixes from their blocks.
func (a *PrefixAdapter) Remove() {
	for _, b := range a.blocks {
		b.Attn.Prefix = nil
	}
	a.blocks = nil
	a.prefixes = nil
}
