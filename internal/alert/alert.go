// Package alert is the rule engine of the fleet telemetry plane: each
// menos-fleetd poll tick it evaluates recording rules and alert rules
// over the federated time-series store (internal/tsdb) and walks every
// alert instance through an Inactive→Pending→Firing ladder with dwell
// hysteresis — the same escalate-fast / de-escalate-slowly discipline
// as the sched admission ladder and the fleet.Autoscaler.
//
// Like those, the engine is deterministic and clock-free: it owns no
// goroutine and no time source. EvalTick takes an explicit timestamp
// from the caller's obs.Clock, so the same rule sequence on a virtual
// clock produces bit-identical state machines in tests.
//
// State machine, per (rule, series) instance:
//
//   - a rule's Eval returns the instances whose condition currently
//     holds; an instance absent from the result is calm;
//   - condition true: Inactive→Pending immediately; Pending→Firing
//     once it has held for the rule's For dwell (For=0 fires on the
//     same tick);
//   - condition false: after the Resolve dwell of uninterrupted calm
//     the instance steps down ONE rung (Firing→Pending, then after a
//     fresh dwell Pending→Inactive) — a flapping condition must stay
//     calm to fully clear, it cannot resolve through one lucky tick.
package alert

import (
	"sort"
	"sync"
	"time"

	"menos/internal/obs"
	"menos/internal/tsdb"
)

// State is one rung of the alert ladder.
type State int

const (
	Inactive State = iota
	Pending
	Firing
)

// String renders the state for /alertz and logs.
func (s State) String() string {
	switch s {
	case Inactive:
		return "inactive"
	case Pending:
		return "pending"
	case Firing:
		return "firing"
	}
	return "unknown"
}

// Sample is one instance a rule reports: the labeled series the
// condition holds for (or, for recording rules, the series to write)
// and an informational value (burn rate, shed count, ...).
type Sample struct {
	Series tsdb.SeriesID
	Value  float64
}

// Rule is one alert rule. Eval inspects the store at the given time
// and returns the instances whose condition holds right now; the
// engine supplies all memory (dwell tracking, hysteresis).
type Rule struct {
	Name     string
	Help     string
	Severity string // "critical", "warning", ...
	// For is how long the condition must hold before Pending escalates
	// to Firing (0 = fire on the first tick).
	For time.Duration
	// Resolve is how long the condition must stay calm before the
	// instance de-escalates one rung (<= 0 defaults to For).
	Resolve time.Duration
	Eval    func(st *tsdb.Store, now time.Duration) []Sample
}

// RecordingRule derives new series from existing ones — evaluated
// before the alert rules each tick, its samples are appended to the
// store under the rule's name (convention: a "fleet:" prefix), so
// alert rules and /queryz can consume precomputed signals like the
// SLO burn rate.
type RecordingRule struct {
	Name string
	Eval func(st *tsdb.Store, now time.Duration) []Sample
}

// Transition is one recorded state change of one instance.
type Transition struct {
	At     time.Duration
	Rule   string
	Series tsdb.SeriesID
	From   State
	To     State
	Value  float64
}

// Config assembles an Engine.
type Config struct {
	Store     *tsdb.Store
	Rules     []Rule
	Recording []RecordingRule
	// MaxTransitions bounds the firing-history ring (default 256).
	MaxTransitions int
	// OnFiring observes every transition INTO Firing — menos-fleetd
	// hangs the flight-recorder snapshot off it. Called synchronously
	// inside EvalTick, without the engine lock held.
	OnFiring func(Transition)
}

// instance is the engine-side memory for one (rule, series) pair.
type instance struct {
	series tsdb.SeriesID
	state  State
	since  time.Duration // entered current state
	// calm dwell tracking: haveCalm marks an uninterrupted calm streak
	// begun at calmSince; any active tick resets it.
	haveCalm  bool
	calmSince time.Duration
	value     float64
}

// Engine evaluates the rule set each tick. Safe for concurrent use
// (EvalTick from the poll loop, Snapshot from HTTP handlers).
type Engine struct {
	cfg Config

	mu sync.Mutex
	// insts[ruleIndex] maps series key → instance state.
	insts       []map[string]*instance
	transitions []Transition // ring, oldest first
	totalTrans  int64

	mFiring *obs.Gauge
	mTrans  *obs.Counter
}

// NewEngine builds an engine over cfg.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxTransitions <= 0 {
		cfg.MaxTransitions = 256
	}
	for i := range cfg.Rules {
		if cfg.Rules[i].Resolve <= 0 {
			cfg.Rules[i].Resolve = cfg.Rules[i].For
		}
	}
	e := &Engine{cfg: cfg, insts: make([]map[string]*instance, len(cfg.Rules))}
	for i := range e.insts {
		e.insts[i] = make(map[string]*instance)
	}
	return e
}

// Instrument publishes the engine's gauges/counters in reg. Safe on a
// nil registry.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.mu.Lock()
	e.mFiring = reg.Gauge(obs.MetricFleetdAlertsFiring, "alert instances currently firing")
	e.mTrans = reg.Counter(obs.MetricFleetdAlertsTransitions, "alert instance state transitions")
	e.mu.Unlock()
}

// EvalTick runs one evaluation pass at the given time: recording rules
// first (their output lands in the store before alerts read it), then
// every alert rule. OnFiring hooks run after the pass, outside the
// engine lock.
func (e *Engine) EvalTick(now time.Duration) {
	for _, rr := range e.cfg.Recording {
		for _, s := range rr.Eval(e.cfg.Store, now) {
			id := s.Series
			id.Name = rr.Name
			e.cfg.Store.Append(id, now, s.Value)
		}
	}

	var fired []Transition
	e.mu.Lock()
	for ri := range e.cfg.Rules {
		rule := &e.cfg.Rules[ri]
		active := make(map[string]Sample)
		for _, s := range rule.Eval(e.cfg.Store, now) {
			active[s.Series.String()] = s
		}
		// Deterministic pass order: union of active and remembered
		// instance keys, sorted.
		keys := make([]string, 0, len(active)+len(e.insts[ri]))
		for k := range active {
			keys = append(keys, k)
		}
		for k := range e.insts[ri] {
			if _, ok := active[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			inst := e.insts[ri][k]
			s, isActive := active[k]
			if isActive {
				if inst == nil {
					inst = &instance{series: s.Series, state: Inactive, since: now}
					e.insts[ri][k] = inst
				}
				inst.haveCalm = false
				inst.value = s.Value
				if inst.state == Inactive {
					fired = e.transitionLocked(fired, rule, inst, Pending, now)
				}
				if inst.state == Pending && now-inst.since >= rule.For {
					fired = e.transitionLocked(fired, rule, inst, Firing, now)
				}
				continue
			}
			// Calm. Unknown instances have nothing to resolve.
			if inst == nil {
				continue
			}
			if !inst.haveCalm {
				inst.haveCalm = true
				inst.calmSince = now
			}
			if now-inst.calmSince >= rule.Resolve {
				switch inst.state {
				case Firing:
					fired = e.transitionLocked(fired, rule, inst, Pending, now)
					// One rung per dwell: the next rung needs a fresh
					// uninterrupted calm streak.
					inst.haveCalm = false
				case Pending:
					fired = e.transitionLocked(fired, rule, inst, Inactive, now)
					delete(e.insts[ri], k)
				}
			}
		}
	}
	e.mFiring.Set(int64(e.firingLocked()))
	e.mu.Unlock()

	if e.cfg.OnFiring != nil {
		for _, tr := range fired {
			if tr.To == Firing {
				e.cfg.OnFiring(tr)
			}
		}
	}
}

// transitionLocked moves inst to state, records the transition, and
// returns the updated fired accumulator. Caller holds e.mu.
func (e *Engine) transitionLocked(fired []Transition, rule *Rule, inst *instance, to State, now time.Duration) []Transition {
	tr := Transition{At: now, Rule: rule.Name, Series: inst.series, From: inst.state, To: to, Value: inst.value}
	inst.state = to
	inst.since = now
	e.totalTrans++
	e.mTrans.Add(1) // nil-safe
	e.transitions = append(e.transitions, tr)
	if n := len(e.transitions) - e.cfg.MaxTransitions; n > 0 {
		e.transitions = append(e.transitions[:0], e.transitions[n:]...)
	}
	return append(fired, tr)
}

// firingLocked counts instances currently firing. Caller holds e.mu.
func (e *Engine) firingLocked() int {
	n := 0
	for _, m := range e.insts {
		for _, inst := range m {
			if inst.state == Firing {
				n++
			}
		}
	}
	return n
}

// Firing returns the number of instances currently firing.
func (e *Engine) Firing() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firingLocked()
}

// InstanceStatus is one instance's state in a Snapshot.
type InstanceStatus struct {
	Series       string  `json:"series"`
	State        string  `json:"state"`
	SinceSeconds float64 `json:"since_seconds"`
	Value        float64 `json:"value"`
}

// RuleStatus is one rule's state in a Snapshot.
type RuleStatus struct {
	Name           string           `json:"name"`
	Help           string           `json:"help,omitempty"`
	Severity       string           `json:"severity"`
	ForSeconds     float64          `json:"for_seconds"`
	ResolveSeconds float64          `json:"resolve_seconds"`
	Instances      []InstanceStatus `json:"instances,omitempty"`
}

// TransitionStatus is one recorded transition in a Snapshot.
type TransitionStatus struct {
	AtSeconds float64 `json:"at_seconds"`
	Rule      string  `json:"rule"`
	Series    string  `json:"series"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	Value     float64 `json:"value"`
}

// Doc is the /alertz document.
type Doc struct {
	AtSeconds   float64            `json:"at_seconds"`
	Firing      int                `json:"firing"`
	Transitions int64              `json:"transitions_total"`
	Rules       []RuleStatus       `json:"rules"`
	History     []TransitionStatus `json:"history,omitempty"`
}

// Snapshot renders the engine's state for /alertz: every rule with its
// live instances (sorted), plus the bounded transition history, oldest
// first.
func (e *Engine) Snapshot(now time.Duration) Doc {
	e.mu.Lock()
	defer e.mu.Unlock()
	doc := Doc{
		AtSeconds:   now.Seconds(),
		Firing:      e.firingLocked(),
		Transitions: e.totalTrans,
		Rules:       make([]RuleStatus, 0, len(e.cfg.Rules)),
	}
	for ri := range e.cfg.Rules {
		rule := &e.cfg.Rules[ri]
		rs := RuleStatus{
			Name:           rule.Name,
			Help:           rule.Help,
			Severity:       rule.Severity,
			ForSeconds:     rule.For.Seconds(),
			ResolveSeconds: rule.Resolve.Seconds(),
		}
		keys := make([]string, 0, len(e.insts[ri]))
		for k := range e.insts[ri] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			inst := e.insts[ri][k]
			rs.Instances = append(rs.Instances, InstanceStatus{
				Series:       k,
				State:        inst.state.String(),
				SinceSeconds: (now - inst.since).Seconds(),
				Value:        inst.value,
			})
		}
		doc.Rules = append(doc.Rules, rs)
	}
	for _, tr := range e.transitions {
		doc.History = append(doc.History, TransitionStatus{
			AtSeconds: tr.At.Seconds(),
			Rule:      tr.Rule,
			Series:    tr.Series.String(),
			From:      tr.From.String(),
			To:        tr.To.String(),
			Value:     tr.Value,
		})
	}
	return doc
}
