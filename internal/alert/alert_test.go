package alert

import (
	"os"
	"testing"
	"time"

	"menos/internal/obs"
	"menos/internal/tsdb"
)

// thresholdRule is the test workhorse: active for every server whose
// latest "sig" sample is >= 1.
func thresholdRule(forDwell, resolve time.Duration) Rule {
	return Rule{
		Name:    "sig_high",
		Help:    "test signal at or above 1",
		For:     forDwell,
		Resolve: resolve,
		Eval: func(st *tsdb.Store, now time.Duration) []Sample {
			var out []Sample
			for _, srv := range st.Servers("sig") {
				id := tsdb.SeriesID{Name: "sig", Server: srv}
				if last, ok := st.Last(id); ok && last.Value >= 1 {
					out = append(out, Sample{Series: id, Value: last.Value})
				}
			}
			return out
		},
	}
}

// state fetches the single sig_high instance's state from a snapshot
// ("" when no instance is live).
func state(e *Engine, now time.Duration) string {
	doc := e.Snapshot(now)
	for _, r := range doc.Rules {
		if r.Name != "sig_high" {
			continue
		}
		if len(r.Instances) == 0 {
			return ""
		}
		return r.Instances[0].State
	}
	return ""
}

// TestHysteresisLadder is the virtual-clock table test: one instance
// driven through every rung by a scripted signal. Ticks are 1s apart;
// For=2s (escalate after the condition holds 2s), Resolve=3s
// (de-escalate one rung per 3s of uninterrupted calm).
func TestHysteresisLadder(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	e := NewEngine(Config{
		Store: st,
		Rules: []Rule{thresholdRule(2*time.Second, 3*time.Second)},
	})
	id := tsdb.SeriesID{Name: "sig", Server: 1}
	steps := []struct {
		sec   int
		value float64
		want  string // state AFTER the tick
	}{
		{0, 0, ""},        // calm: no instance
		{1, 5, "pending"}, // condition true: Pending immediately
		{2, 5, "pending"}, // held 1s < For
		{3, 5, "firing"},  // held 2s >= For
		{4, 5, "firing"},
		{5, 0, "firing"},  // calm 0s
		{6, 0, "firing"},  // calm 1s
		{7, 0, "firing"},  // calm 2s < Resolve
		{8, 0, "pending"}, // calm 3s: one rung down
		{9, 0, "pending"}, // fresh dwell begins (calm 1s)
		{10, 5, "firing"}, // relapse: Pending re-escalates (pendingSince was tick 8, held >= For)
		{11, 0, "firing"},
		{12, 0, "firing"},
		{13, 0, "firing"},
		{14, 0, "pending"}, // calm 3s again: Firing→Pending
		{15, 0, "pending"}, // fresh dwell begins here
		{16, 0, "pending"},
		{17, 0, "pending"},
		{18, 0, ""}, // calm 3s more: Pending→Inactive, instance gone
	}
	for _, stp := range steps {
		now := time.Duration(stp.sec) * time.Second
		st.Append(id, now, stp.value)
		e.EvalTick(now)
		if got := state(e, now); got != stp.want {
			t.Fatalf("t=%ds: state %q, want %q", stp.sec, got, stp.want)
		}
	}
}

// TestPendingNeverFiresOnBlip pins the For dwell: a condition that
// clears before the dwell elapses never reaches Firing.
func TestPendingNeverFiresOnBlip(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	e := NewEngine(Config{
		Store: st,
		Rules: []Rule{thresholdRule(3*time.Second, time.Second)},
		OnFiring: func(tr Transition) {
			t.Fatalf("blip fired: %+v", tr)
		},
	})
	id := tsdb.SeriesID{Name: "sig", Server: 1}
	script := []float64{5, 5, 0, 0, 5, 5, 0, 0} // never >= For consecutive
	for i, v := range script {
		now := time.Duration(i) * time.Second
		st.Append(id, now, v)
		e.EvalTick(now)
	}
	if got := e.Firing(); got != 0 {
		t.Fatalf("firing = %d, want 0", got)
	}
}

// TestForZeroFiresSameTick pins that For=0 rules (gpu_oom) go
// Inactive→Pending→Firing within one EvalTick.
func TestForZeroFiresSameTick(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	var fired []Transition
	e := NewEngine(Config{
		Store:    st,
		Rules:    []Rule{thresholdRule(0, time.Second)},
		OnFiring: func(tr Transition) { fired = append(fired, tr) },
	})
	id := tsdb.SeriesID{Name: "sig", Server: 1}
	st.Append(id, 0, 7)
	e.EvalTick(0)
	if got := state(e, 0); got != "firing" {
		t.Fatalf("state = %q, want firing", got)
	}
	if len(fired) != 1 || fired[0].Value != 7 || fired[0].Rule != "sig_high" {
		t.Fatalf("OnFiring calls = %+v", fired)
	}
}

// TestPerInstanceIndependence pins that instances of one rule escalate
// and resolve independently per labeled series.
func TestPerInstanceIndependence(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	e := NewEngine(Config{
		Store: st,
		Rules: []Rule{thresholdRule(time.Second, time.Second)},
	})
	a := tsdb.SeriesID{Name: "sig", Server: 1}
	b := tsdb.SeriesID{Name: "sig", Server: 2}
	for sec := 0; sec < 4; sec++ {
		now := time.Duration(sec) * time.Second
		st.Append(a, now, 5)
		st.Append(b, now, 0)
		if sec >= 2 {
			st.Append(b, now, 5)
		}
		e.EvalTick(now)
	}
	doc := e.Snapshot(4 * time.Second)
	var states []string
	for _, r := range doc.Rules {
		for _, in := range r.Instances {
			states = append(states, in.Series+"="+in.State)
		}
	}
	want := []string{`sig{server=1}=firing`, `sig{server=2}=firing`}
	if len(states) != 2 || states[0] != want[0] || states[1] != want[1] {
		t.Fatalf("instances = %v, want %v", states, want)
	}
	// Server 2 activated 2s later; its firing history confirms later
	// escalation rather than shared state.
	var aFire, bFire float64 = -1, -1
	for _, h := range doc.History {
		if h.To != "firing" {
			continue
		}
		switch h.Series {
		case "sig{server=1}":
			aFire = h.AtSeconds
		case "sig{server=2}":
			bFire = h.AtSeconds
		}
	}
	if aFire < 0 || bFire < 0 || bFire <= aFire {
		t.Fatalf("fire times a=%v b=%v, want b after a", aFire, bFire)
	}
}

// TestTransitionRingBounded pins MaxTransitions.
func TestTransitionRingBounded(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	e := NewEngine(Config{
		Store:          st,
		Rules:          []Rule{thresholdRule(0, 0)},
		MaxTransitions: 4,
	})
	id := tsdb.SeriesID{Name: "sig", Server: 1}
	for i := 0; i < 20; i++ {
		now := time.Duration(i) * time.Second
		st.Append(id, now, float64((i%2)*2)) // flap every tick
		e.EvalTick(now)
	}
	doc := e.Snapshot(20 * time.Second)
	if len(doc.History) > 4 {
		t.Fatalf("history %d entries, cap 4", len(doc.History))
	}
	if doc.Transitions <= 4 {
		t.Fatalf("transitions_total = %d, want > cap", doc.Transitions)
	}
	// Ring keeps the newest transitions.
	if doc.History[len(doc.History)-1].AtSeconds != 19 {
		t.Fatalf("newest transition at %v, want 19", doc.History[len(doc.History)-1].AtSeconds)
	}
}

// TestEngineMetrics pins the firing gauge and transitions counter.
func TestEngineMetrics(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	reg := obs.NewRegistry()
	e := NewEngine(Config{Store: st, Rules: []Rule{thresholdRule(0, time.Second)}})
	e.Instrument(reg)
	id := tsdb.SeriesID{Name: "sig", Server: 1}
	st.Append(id, 0, 5)
	e.EvalTick(0)
	if got := reg.Gauge(obs.MetricFleetdAlertsFiring).Value(); got != 1 {
		t.Fatalf("firing gauge = %d, want 1", got)
	}
	// Inactive→Pending→Firing = 2 transitions.
	if got := reg.Counter(obs.MetricFleetdAlertsTransitions).Value(); got != 2 {
		t.Fatalf("transitions counter = %d, want 2", got)
	}
}

// TestOverloadCalibration is the deterministic "induced overload" run:
// a server scraped with grant-wait p99 far above its advertised SLO
// target drives the built-in slo_burn_rate rule through
// Pending→Firing, and the OnFiring hook records a flight snapshot —
// the same wiring menos-fleetd uses, on a virtual clock.
func TestOverloadCalibration(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	poll := 2 * time.Second
	recording, rules := Catalog(CatalogConfig{Poll: poll})

	var clock time.Duration
	tracer := obs.NewTracer(obs.ClockFunc(func() time.Duration { return clock }))
	flight, err := obs.NewFlightRecorder(obs.FlightConfig{
		Dir:   t.TempDir(),
		Clock: obs.ClockFunc(func() time.Duration { return clock }),
	}, nil, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer flight.Close()

	var fired []Transition
	e := NewEngine(Config{
		Store:     st,
		Recording: recording,
		Rules:     rules,
		OnFiring: func(tr Transition) {
			fired = append(fired, tr)
			if err := flight.Trigger(obs.FlightReasonAlert + ":" + tr.Rule); err != nil {
				t.Errorf("flight trigger: %v", err)
			}
		},
	})

	// Healthy warm-up: p99 well under the 2s target.
	p99 := tsdb.SeriesID{Name: obs.MetricServerWaitSeconds + P99Suffix, Server: 1}
	target := tsdb.SeriesID{Name: obs.MetricSchedAdmissionSLOTarget, Server: 1}
	tick := func(p99Sec float64) {
		st.Append(p99, clock, p99Sec)
		st.Append(target, clock, 2e6) // 2s advertised in micros
		e.EvalTick(clock)
		clock += poll
	}
	for i := 0; i < 5; i++ {
		tick(0.05)
	}
	if len(fired) != 0 || e.Firing() != 0 {
		t.Fatalf("healthy run fired %d alerts", len(fired))
	}

	// Overload: p99 3x the target. Burn rate climbs past 1 as the
	// 10-tick average fills with bad samples; then the For dwell
	// (3 polls) must elapse before Firing.
	for i := 0; i < 12 && len(fired) == 0; i++ {
		tick(6.0)
	}
	if len(fired) == 0 {
		t.Fatal("overload never fired slo_burn_rate")
	}
	tr := fired[0]
	if tr.Rule != "slo_burn_rate" || tr.Value < 1.0 {
		t.Fatalf("first firing = %+v, want slo_burn_rate with burn >= 1", tr)
	}
	if tr.Series.Server != 1 || tr.Series.Name != SeriesSLOBurnRate {
		t.Fatalf("firing series = %v", tr.Series)
	}
	// The flight snapshot landed on disk.
	info, err := os.Stat(flight.Path())
	if err != nil || info.Size() == 0 {
		t.Fatalf("flight snapshot missing: %v", err)
	}
	// Recovery: p99 back under target long enough resolves the alert
	// fully (two one-rung dwells).
	for i := 0; i < 25; i++ {
		tick(0.05)
	}
	if got := e.Firing(); got != 0 {
		t.Fatalf("still firing after recovery: %d", got)
	}
}

// TestCatalogHealthyFleetQuiet feeds the full catalog a healthy
// two-server fleet for many ticks and asserts total silence — the
// calibration contract behind the e2e zero-alert gate.
func TestCatalogHealthyFleetQuiet(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	poll := 2 * time.Second
	recording, rules := Catalog(CatalogConfig{Poll: poll})
	e := NewEngine(Config{
		Store:     st,
		Recording: recording,
		Rules:     rules,
		OnFiring:  func(tr Transition) { t.Errorf("healthy fleet fired %+v", tr) },
	})
	var clock time.Duration
	for i := 0; i < 50; i++ {
		for srv := 1; srv <= 2; srv++ {
			app := func(name string, v float64) {
				st.Append(tsdb.SeriesID{Name: name, Server: srv}, clock, v)
			}
			app(obs.MetricFleetdUp, 1)
			app(obs.MetricFleetdIdentityGauge, 0)
			app(obs.MetricServerWaitSeconds+P99Suffix, 0.02)
			app(obs.MetricSchedAdmissionSLOTarget, 2e6)
			app(obs.MetricSchedAdmissionShed, 0)
			app(obs.MetricGPUOOM, 0)
			app(obs.MetricServerActiveClients, float64(srv)) // 1 and 2: mildly uneven
			app(obs.MetricBatchFormed, float64(i))
			app(obs.MetricBatchOccupancy, 800)
		}
		e.EvalTick(clock)
		clock += poll
	}
	doc := e.Snapshot(clock)
	if doc.Firing != 0 || doc.Transitions != 0 {
		t.Fatalf("healthy fleet: firing=%d transitions=%d, want 0/0", doc.Firing, doc.Transitions)
	}
}

// TestCatalogServerDown drives the server_down rule through its dwell
// when menos_fleetd_up goes to 0, and resolves it when the server
// returns.
func TestCatalogServerDown(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	poll := time.Second
	recording, rules := Catalog(CatalogConfig{Poll: poll})
	var fired []Transition
	e := NewEngine(Config{
		Store:     st,
		Recording: recording,
		Rules:     rules,
		OnFiring:  func(tr Transition) { fired = append(fired, tr) },
	})
	id := tsdb.SeriesID{Name: obs.MetricFleetdUp, Server: 3}
	var clock time.Duration
	tick := func(up float64) {
		st.Append(id, clock, up)
		e.EvalTick(clock)
		clock += poll
	}
	tick(1)
	for i := 0; i < 6; i++ {
		tick(0)
	}
	if len(fired) != 1 || fired[0].Rule != "server_down" {
		t.Fatalf("fired = %+v, want one server_down", fired)
	}
	for i := 0; i < 10; i++ {
		tick(1)
	}
	if e.Firing() != 0 {
		t.Fatalf("server_down still firing after recovery")
	}
}

// TestCatalogGPUOOMImmediate pins the For=0 path of the gpu_oom rule.
func TestCatalogGPUOOMImmediate(t *testing.T) {
	st := tsdb.New(tsdb.Config{})
	recording, rules := Catalog(CatalogConfig{Poll: time.Second})
	var fired []Transition
	e := NewEngine(Config{
		Store:     st,
		Recording: recording,
		Rules:     rules,
		OnFiring:  func(tr Transition) { fired = append(fired, tr) },
	})
	id := tsdb.SeriesID{Name: obs.MetricGPUOOM, Server: 1}
	st.Append(id, 0, 0)
	e.EvalTick(0)
	st.Append(id, time.Second, 2) // two OOMs between polls
	e.EvalTick(time.Second)
	if len(fired) != 1 || fired[0].Rule != "gpu_oom" || fired[0].Value != 2 {
		t.Fatalf("fired = %+v, want immediate gpu_oom with value 2", fired)
	}
}
