package alert

import (
	"time"

	"menos/internal/obs"
	"menos/internal/tsdb"
)

// Series name suffixes the fleet controller appends when flattening a
// scraped histogram into the store (see fleet.Controller scrape
// ingestion) — the catalog reads the quantile series back by the same
// convention.
const (
	P99Suffix = "_p99"
)

// Recording-rule output series (the "fleet:" prefix marks derived
// signals so /queryz listings distinguish them from scraped families).
const (
	SeriesSLOBurnRate    = "fleet:slo_burn_rate"
	SeriesImbalanceRatio = "fleet:client_imbalance_ratio"
)

// CatalogConfig calibrates the built-in rule set.
type CatalogConfig struct {
	// Poll is the control plane's poll interval — every dwell and
	// lookback window is expressed in poll ticks so the rules behave
	// identically at any cadence (default 2s).
	Poll time.Duration
	// SLOTargetP99 is the burn-rate denominator for servers that do
	// not advertise menos_sched_admission_slo_target_micros. Zero
	// skips such servers rather than guessing a target.
	SLOTargetP99 time.Duration
	// ImbalanceRatio is the max/mean active-client ratio above which
	// the imbalance alert goes active (default 3.0), once the fleet
	// has at least ImbalanceMinClients clients (default 4 — a fleet of
	// one or two clients is always "imbalanced" and never actionable).
	ImbalanceRatio      float64
	ImbalanceMinClients float64
	// OccupancyFloor is the batch-occupancy collapse threshold in
	// integer thousandths of the configured batch size, matching the
	// menos_batch_occupancy_ratio gauge (default 250 = 25%).
	OccupancyFloor float64
}

func (c CatalogConfig) withDefaults() CatalogConfig {
	if c.Poll <= 0 {
		c.Poll = 2 * time.Second
	}
	if c.ImbalanceRatio <= 0 {
		c.ImbalanceRatio = 3.0
	}
	if c.ImbalanceMinClients <= 0 {
		c.ImbalanceMinClients = 4
	}
	if c.OccupancyFloor <= 0 {
		c.OccupancyFloor = 250
	}
	return c
}

// Catalog returns the built-in recording and alert rules of the fleet
// telemetry plane (docs/OBSERVABILITY.md documents each).
func Catalog(cfg CatalogConfig) ([]RecordingRule, []Rule) {
	cfg = cfg.withDefaults()
	poll := cfg.Poll

	recording := []RecordingRule{
		{
			// Per-server SLO burn rate: the recent grant-wait p99
			// divided by the server's own advertised target (falling
			// back to cfg.SLOTargetP99). 1.0 = burning exactly at
			// target; > 1 = overload.
			Name: SeriesSLOBurnRate,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				var out []Sample
				p99Name := obs.MetricServerWaitSeconds + P99Suffix
				for _, srv := range st.Servers(p99Name) {
					target := cfg.SLOTargetP99.Seconds()
					if last, ok := st.Last(tsdb.SeriesID{Name: obs.MetricSchedAdmissionSLOTarget, Server: srv}); ok && last.Value > 0 {
						target = last.Value / 1e6
					}
					if target <= 0 {
						continue
					}
					p99, ok := st.AvgOver(tsdb.SeriesID{Name: p99Name, Server: srv}, now-10*poll, now)
					if !ok {
						continue
					}
					out = append(out, Sample{
						Series: tsdb.SeriesID{Name: SeriesSLOBurnRate, Server: srv},
						Value:  p99 / target,
					})
				}
				return out
			},
		},
		{
			// Fleet-wide active-client imbalance: max over servers of
			// active clients divided by the mean (1.0 = perfectly
			// balanced). One fleet-level series (server label 0).
			Name: SeriesImbalanceRatio,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				var max, total float64
				n := 0
				for _, srv := range st.Servers(obs.MetricServerActiveClients) {
					last, ok := st.Last(tsdb.SeriesID{Name: obs.MetricServerActiveClients, Server: srv})
					if !ok {
						continue
					}
					if last.Value > max {
						max = last.Value
					}
					total += last.Value
					n++
				}
				if n == 0 || total == 0 {
					return nil
				}
				mean := total / float64(n)
				return []Sample{{
					Series: tsdb.SeriesID{Name: SeriesImbalanceRatio},
					Value:  max / mean,
				}}
			},
		},
	}

	rules := []Rule{
		{
			Name:     "server_down",
			Help:     "server failed its last poll (no /healthz+/loadz answer)",
			Severity: "critical",
			For:      3 * poll,
			Resolve:  2 * poll,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				var out []Sample
				for _, srv := range st.Servers(obs.MetricFleetdUp) {
					id := tsdb.SeriesID{Name: obs.MetricFleetdUp, Server: srv}
					if last, ok := st.Last(id); ok && last.Value == 0 {
						out = append(out, Sample{Series: id, Value: 0})
					}
				}
				return out
			},
		},
		{
			Name:     "server_identity_mismatch",
			Help:     "endpoint answers with a different server identity than configured (port reuse / misrouted config)",
			Severity: "critical",
			For:      2 * poll,
			Resolve:  2 * poll,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				var out []Sample
				for _, srv := range st.Servers(obs.MetricFleetdIdentityGauge) {
					id := tsdb.SeriesID{Name: obs.MetricFleetdIdentityGauge, Server: srv}
					if last, ok := st.Last(id); ok && last.Value != 0 {
						out = append(out, Sample{Series: id, Value: last.Value})
					}
				}
				return out
			},
		},
		{
			Name:     "slo_burn_rate",
			Help:     "grant-wait p99 at or above the server's admission SLO target (burn rate >= 1)",
			Severity: "critical",
			For:      3 * poll,
			Resolve:  5 * poll,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				var out []Sample
				for _, srv := range st.Servers(SeriesSLOBurnRate) {
					id := tsdb.SeriesID{Name: SeriesSLOBurnRate, Server: srv}
					if last, ok := st.Last(id); ok && last.Value >= 1.0 {
						out = append(out, Sample{Series: id, Value: last.Value})
					}
				}
				return out
			},
		},
		{
			Name:     "shed_storm",
			Help:     "admission control is shedding submissions",
			Severity: "warning",
			For:      2 * poll,
			Resolve:  5 * poll,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				var out []Sample
				for _, srv := range st.Servers(obs.MetricSchedAdmissionShed) {
					id := tsdb.SeriesID{Name: obs.MetricSchedAdmissionShed, Server: srv}
					if inc, ok := st.Increase(id, now-5*poll, now); ok && inc > 0 {
						out = append(out, Sample{Series: id, Value: inc})
					}
				}
				return out
			},
		},
		{
			Name:     "gpu_oom",
			Help:     "GPU allocation failed (out of memory) on a recent iteration",
			Severity: "critical",
			For:      0, // one OOM is already an incident
			Resolve:  5 * poll,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				var out []Sample
				for _, srv := range st.Servers(obs.MetricGPUOOM) {
					id := tsdb.SeriesID{Name: obs.MetricGPUOOM, Server: srv}
					if inc, ok := st.Increase(id, now-5*poll, now); ok && inc > 0 {
						out = append(out, Sample{Series: id, Value: inc})
					}
				}
				return out
			},
		},
		{
			Name:     "fleet_imbalance",
			Help:     "active clients concentrated on few servers (max/mean ratio over threshold)",
			Severity: "warning",
			For:      5 * poll,
			Resolve:  5 * poll,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				id := tsdb.SeriesID{Name: SeriesImbalanceRatio}
				last, ok := st.Last(id)
				if !ok || last.Value < cfg.ImbalanceRatio {
					return nil
				}
				var total float64
				for _, srv := range st.Servers(obs.MetricServerActiveClients) {
					if l, ok := st.Last(tsdb.SeriesID{Name: obs.MetricServerActiveClients, Server: srv}); ok {
						total += l.Value
					}
				}
				if total < cfg.ImbalanceMinClients {
					return nil
				}
				return []Sample{{Series: id, Value: last.Value}}
			},
		},
		{
			Name:     "batch_occupancy_collapse",
			Help:     "cross-client batches are forming nearly empty (occupancy under the floor while batching is active)",
			Severity: "warning",
			For:      5 * poll,
			Resolve:  5 * poll,
			Eval: func(st *tsdb.Store, now time.Duration) []Sample {
				var out []Sample
				for _, srv := range st.Servers(obs.MetricBatchFormed) {
					formed, ok := st.Increase(tsdb.SeriesID{Name: obs.MetricBatchFormed, Server: srv}, now-10*poll, now)
					if !ok || formed == 0 {
						continue // batching idle or disabled: nothing to judge
					}
					id := tsdb.SeriesID{Name: obs.MetricBatchOccupancy, Server: srv}
					if avg, ok := st.AvgOver(id, now-10*poll, now); ok && avg < cfg.OccupancyFloor {
						out = append(out, Sample{Series: id, Value: avg})
					}
				}
				return out
			},
		},
	}
	return recording, rules
}
