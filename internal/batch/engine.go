// Package batch is the batch-formation engine of docs/BATCHING.md: it
// coalesces compatible iteration requests — same cut point, sequence
// length, phase, and adapter shape — from concurrently served clients
// into one batched kernel invocation over the shared frozen base, with
// per-row adapter dispatch (adapter.MultiLoRALinear).
//
// The engine only decides WHO runs together; the caller's executor
// decides what running means (the TCP server stacks activations and
// drives one model pass; tests count items). Dispatch fires when a
// group reaches the policy's max size, when admitting one more member
// would blow the byte budget, or when the hold timer expires on a
// partial group — the batch-size-vs-latency knob the multilora sweep
// measures. The simulator does not use this engine (goroutine timing
// would break determinism); it forms batches in virtual time with the
// same policy and the same metrics publisher.
package batch

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"menos/internal/sched"
)

// ErrClosed is returned by Join after Close.
var ErrClosed = errors.New("batch: engine closed")

// Key is the compatibility class: only items with equal keys may share
// a batched kernel invocation. Cut and Seq shape the stacked tensor;
// Sig fingerprints the adapter structure (targets, block span) that
// per-row dispatch requires to be common.
type Key struct {
	Cut  int
	Seq  int
	Kind sched.RequestKind
	Sig  string
}

// Item is one client's share of a batch. The caller fills the
// identity, sizing, and Payload fields; the executor fills Result and
// Err for every item it receives.
type Item struct {
	Client  string
	Rows    int   // stacked activation rows this client contributes
	Bytes   int64 // scheduler bytes this client's share needs
	Payload any

	Result any
	Err    error

	done chan struct{}
}

// Exec runs one formed batch. Items arrive in join order (ascending
// row position in the stack); the executor must set Result or Err on
// every item before returning.
type Exec func(key Key, items []*Item)

// Config configures an Engine.
type Config struct {
	// Policy is the formation policy; a disabled policy makes New fail
	// (callers should bypass the engine entirely).
	Policy sched.BatchPolicy
	// Exec runs each formed batch.
	Exec Exec
	// MaxBytes, when non-nil, returns the byte budget one batch may
	// request (typically Scheduler.Schedulable): a join that would push
	// the group past it dispatches the group early and starts a fresh
	// one.
	MaxBytes func() int64
	// Metrics, when non-nil, records dispatched batches.
	Metrics *Metrics
}

// group is one forming batch.
type group struct {
	key    Key
	items  []*Item
	bytes  int64
	opened time.Time
	timer  *time.Timer
	sealed bool
}

// Engine forms batches from concurrent Join calls.
type Engine struct {
	cfg Config

	mu     sync.Mutex
	groups map[Key]*group
	closed bool
	seq    int64
}

// New builds an engine. The policy must be enabled and valid.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Policy.Enabled() {
		return nil, errors.New("batch: policy disabled (MaxSize 0)")
	}
	if cfg.Exec == nil {
		return nil, errors.New("batch: no executor")
	}
	cfg.Policy = cfg.Policy.WithDefaults()
	return &Engine{cfg: cfg, groups: make(map[Key]*group)}, nil
}

// Join adds it to the forming group for key and blocks until the
// group's batch has executed; it returns it.Err (the per-item verdict,
// not the call's own failure — a nil return with it.Err set means the
// batch ran and this member's share failed). The calling goroutine is
// the client's serving goroutine: blocking here is what holds the
// client's reply until its batch completes.
func (e *Engine) Join(key Key, it *Item) error {
	if it.Rows <= 0 {
		return fmt.Errorf("batch: item for %q has %d rows", it.Client, it.Rows)
	}
	it.done = make(chan struct{})

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	g := e.groups[key]
	// Byte budget: admitting this member would overflow one grant, so
	// the current group dispatches early and a fresh one forms.
	if g != nil && e.cfg.MaxBytes != nil && g.bytes+it.Bytes > e.cfg.MaxBytes() {
		e.sealLocked(g)
		go e.dispatch(g)
		g = nil
	}
	if g == nil {
		g = &group{key: key, opened: time.Now()}
		e.groups[key] = g
		hold := e.cfg.Policy.MaxHold
		gg := g
		g.timer = time.AfterFunc(hold, func() { e.flushExpired(gg) })
	}
	g.items = append(g.items, it)
	g.bytes += it.Bytes
	var full *group
	if len(g.items) >= e.cfg.Policy.MaxSize {
		e.sealLocked(g)
		full = g
	}
	e.mu.Unlock()

	if full != nil {
		go e.dispatch(full)
	}
	<-it.done
	return it.Err
}

// sealLocked removes g from the forming set so no further member can
// join it. Caller holds e.mu.
func (e *Engine) sealLocked(g *group) {
	if g.sealed {
		return
	}
	g.sealed = true
	if e.groups[g.key] == g {
		delete(e.groups, g.key)
	}
	if g.timer != nil {
		g.timer.Stop()
	}
}

// flushExpired dispatches g when its hold timer fires before the group
// filled.
func (e *Engine) flushExpired(g *group) {
	e.mu.Lock()
	if g.sealed {
		e.mu.Unlock()
		return
	}
	e.sealLocked(g)
	e.mu.Unlock()
	e.dispatch(g)
}

// dispatch runs one sealed group through the executor and releases its
// members. Never called with e.mu held.
func (e *Engine) dispatch(g *group) {
	hold := time.Since(g.opened)
	e.cfg.Exec(g.key, g.items)
	members := make([]MemberRows, len(g.items))
	for i, it := range g.items {
		members[i] = MemberRows{Client: it.Client, Rows: int64(it.Rows)}
	}
	e.cfg.Metrics.Record(members, hold.Seconds())
	for _, it := range g.items {
		close(it.done)
	}
}

// Close flushes every forming group and fails future joins.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	var pending []*group
	for _, g := range e.groups {
		e.sealLocked(g)
		pending = append(pending, g)
	}
	e.mu.Unlock()
	for _, g := range pending {
		e.dispatch(g)
	}
}
