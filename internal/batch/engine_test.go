package batch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"menos/internal/obs"
	"menos/internal/sched"
)

// recorder is a test executor that records every dispatched batch.
type recorder struct {
	mu      sync.Mutex
	batches [][]*Item
	delay   time.Duration
}

func (r *recorder) exec(_ Key, items []*Item) {
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	for _, it := range items {
		it.Result = it.Client
	}
	r.mu.Lock()
	r.batches = append(r.batches, items)
	r.mu.Unlock()
}

func (r *recorder) snapshot() [][]*Item {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]*Item(nil), r.batches...)
}

func newEngine(t *testing.T, rec *recorder, pol sched.BatchPolicy, maxBytes func() int64) *Engine {
	t.Helper()
	e, err := New(Config{Policy: pol, Exec: rec.exec, MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func join(t *testing.T, e *Engine, key Key, client string, rows int, bytes int64) *Item {
	t.Helper()
	it := &Item{Client: client, Rows: rows, Bytes: bytes}
	if err := e.Join(key, it); err != nil {
		t.Errorf("join %s: %v", client, err)
	}
	return it
}

// TestFullGroupDispatches: MaxSize concurrent joiners of one key come
// back in one batch, each with its result set.
func TestFullGroupDispatches(t *testing.T) {
	rec := &recorder{}
	e := newEngine(t, rec, sched.BatchPolicy{MaxSize: 3, MaxHold: time.Minute}, nil)
	key := Key{Cut: 2, Seq: 16, Kind: sched.KindForward}

	var wg sync.WaitGroup
	for _, c := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			it := join(t, e, key, c, 16, 10)
			if it.Result != c {
				t.Errorf("item %s: result = %v", c, it.Result)
			}
		}()
	}
	wg.Wait()
	batches := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("batches = %d (first size %d), want 1 of 3", len(batches), len(batches[0]))
	}
}

// TestHoldTimerFlushesPartial: a group below MaxSize dispatches once
// MaxHold elapses instead of waiting forever.
func TestHoldTimerFlushesPartial(t *testing.T) {
	rec := &recorder{}
	e := newEngine(t, rec, sched.BatchPolicy{MaxSize: 8, MaxHold: 5 * time.Millisecond}, nil)
	key := Key{Cut: 1, Seq: 8, Kind: sched.KindBackward}

	start := time.Now()
	join(t, e, key, "solo", 8, 10)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("partial batch dispatched after %v, before the hold expired", elapsed)
	}
	batches := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("batches = %v", batches)
	}
}

// TestKeysDoNotMix: items with different compatibility keys never
// share a batch.
func TestKeysDoNotMix(t *testing.T) {
	rec := &recorder{}
	e := newEngine(t, rec, sched.BatchPolicy{MaxSize: 2, MaxHold: 5 * time.Millisecond}, nil)

	var wg sync.WaitGroup
	for i, key := range []Key{{Cut: 1, Seq: 8, Kind: sched.KindForward}, {Cut: 2, Seq: 8, Kind: sched.KindForward}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			join(t, e, key, []string{"a", "b"}[i], 8, 10)
		}()
	}
	wg.Wait()
	for _, b := range rec.snapshot() {
		if len(b) != 1 {
			t.Fatalf("cross-key batch of size %d", len(b))
		}
	}
}

// TestByteBudgetSplitsGroups: a join that would exceed the byte budget
// dispatches the forming group early and starts a fresh one.
func TestByteBudgetSplitsGroups(t *testing.T) {
	rec := &recorder{}
	e := newEngine(t, rec, sched.BatchPolicy{MaxSize: 8, MaxHold: 5 * time.Millisecond},
		func() int64 { return 100 })
	key := Key{Cut: 1, Seq: 8, Kind: sched.KindBackward}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); join(t, e, key, "a", 8, 60) }()
	time.Sleep(2 * time.Millisecond) // a forms first
	go func() { defer wg.Done(); join(t, e, key, "b", 8, 60) }()
	wg.Wait()

	batches := rec.snapshot()
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (byte budget split)", len(batches))
	}
	for _, b := range batches {
		if len(b) != 1 {
			t.Fatalf("split batch has %d members", len(b))
		}
	}
}

// TestJoinAfterCloseFails and pending groups flush on Close.
func TestCloseFlushesAndRejects(t *testing.T) {
	rec := &recorder{}
	e, err := New(Config{Policy: sched.BatchPolicy{MaxSize: 8, MaxHold: time.Minute}, Exec: rec.exec})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Cut: 1, Seq: 8, Kind: sched.KindForward}
	done := make(chan *Item)
	go func() {
		it := &Item{Client: "pending", Rows: 8, Bytes: 1}
		e.Join(key, it)
		done <- it
	}()
	time.Sleep(2 * time.Millisecond)
	e.Close()
	it := <-done
	if it.Result != "pending" {
		t.Error("pending item not executed on close")
	}
	if err := e.Join(key, &Item{Client: "late", Rows: 1, Bytes: 1}); err != ErrClosed {
		t.Errorf("join after close: err = %v, want ErrClosed", err)
	}
}

// TestConcurrentFormationRace is the -race hammer: many goroutines
// joining across several keys while hold timers, size triggers, and
// byte budgets all fire. Every item must execute exactly once and no
// batch may exceed the policy size.
func TestConcurrentFormationRace(t *testing.T) {
	rec := &recorder{}
	var budget atomic.Int64
	budget.Store(200)
	e := newEngine(t, rec, sched.BatchPolicy{MaxSize: 4, MaxHold: time.Millisecond},
		budget.Load)
	keys := []Key{
		{Cut: 1, Seq: 8, Kind: sched.KindForward},
		{Cut: 1, Seq: 8, Kind: sched.KindBackward},
		{Cut: 3, Seq: 16, Kind: sched.KindForward, Sig: "qv"},
	}

	const goroutines, perG = 8, 40
	var executed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				it := &Item{Client: "c", Rows: 1 + i%3, Bytes: int64(20 + i%50)}
				if err := e.Join(keys[(g+i)%len(keys)], it); err != nil {
					t.Errorf("join: %v", err)
					return
				}
				if it.Result == nil {
					t.Error("item returned without result")
					return
				}
				executed.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := executed.Load(); got != goroutines*perG {
		t.Fatalf("executed %d items, want %d", got, goroutines*perG)
	}
	total := 0
	for _, b := range rec.snapshot() {
		if len(b) > 4 {
			t.Fatalf("batch of %d members exceeds MaxSize 4", len(b))
		}
		total += len(b)
	}
	if total != goroutines*perG {
		t.Fatalf("batched %d items, want %d", total, goroutines*perG)
	}
}

// TestMetricsConservation: the unlabeled rows counter equals the sum
// of the ledger's per-client menos_batch_rows_total series, and the
// occupancy/size/hold families reflect the dispatched batches.
func TestMetricsConservation(t *testing.T) {
	reg := obs.NewRegistry()
	led := obs.NewLedger(obs.LedgerConfig{})
	led.Instrument(reg)
	m := NewMetrics(reg, led, 4)

	m.Record([]MemberRows{{Client: "a", Rows: 32}, {Client: "b", Rows: 16}}, 0.001)
	m.Record([]MemberRows{{Client: "a", Rows: 32}}, 0.002)

	if v := reg.Counter(obs.MetricBatchFormed).Value(); v != 2 {
		t.Errorf("formed = %d, want 2", v)
	}
	agg := reg.Counter(obs.MetricBatchRows).Value()
	if agg != 80 {
		t.Errorf("rows total = %d, want 80", agg)
	}
	cv := reg.CounterVec(obs.MetricBatchRows, "client")
	var labeled int64
	for _, l := range cv.Labels() {
		c, ok := cv.Get(l)
		if !ok {
			t.Fatalf("label %q listed but not gettable", l)
		}
		labeled += c.Value()
	}
	if labeled != agg {
		t.Errorf("Σ labeled rows %d != unlabeled %d", labeled, agg)
	}
	if u, ok := led.Usage("a"); !ok || u.BatchRows != 64 {
		t.Errorf("ledger rows for a = %+v", u)
	}
	if snap := reg.Histogram(obs.MetricBatchSize, SizeBuckets()).Snapshot(); snap.Count != 2 || snap.Sum != 3 {
		t.Errorf("size histogram count %d sum %v, want 2 and 3", snap.Count, snap.Sum)
	}
	if v := reg.Gauge(obs.MetricBatchOccupancy).Value(); v != 250 {
		t.Errorf("occupancy = %d thousandths, want 250 (1 of 4 slots)", v)
	}
	// Nil metrics and nil ledger are safe no-ops.
	var nilM *Metrics
	nilM.Record([]MemberRows{{Client: "x", Rows: 1}}, 0)
	NewMetrics(nil, nil, 0).Record([]MemberRows{{Client: "x", Rows: 1}}, 0)
}
