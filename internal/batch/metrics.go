package batch

import (
	"menos/internal/obs"
)

// SizeBuckets are the batch-size histogram bounds: powers of two up to
// the largest tenancy the sweeps exercise.
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64}
}

// Metrics publishes the menos_batch_* family (docs/OBSERVABILITY.md)
// and bills each member's row share through the ledger. The labeled
// menos_batch_rows_total{client} series the ledger maintains are fed
// the exact per-member values the unlabeled rows counter sums, so
// Σ{client=*} reproduces the aggregate. Both the wall-clock engine
// (internal/batch.Engine) and the simulator's virtual-time batcher
// publish through this one type; all methods are nil-safe.
type Metrics struct {
	maxSize   int
	formed    *obs.Counter
	size      *obs.Histogram
	occupancy *obs.Gauge
	hold      *obs.Histogram
	rows      *obs.Counter
	ledger    *obs.Ledger
}

// NewMetrics wires the batch families into reg. maxSize scales the
// occupancy gauge; ledger (optional) receives per-member row billing.
// Either argument may be nil.
func NewMetrics(reg *obs.Registry, ledger *obs.Ledger, maxSize int) *Metrics {
	if maxSize <= 0 {
		maxSize = 1
	}
	m := &Metrics{maxSize: maxSize, ledger: ledger}
	if reg != nil {
		m.formed = reg.Counter(obs.MetricBatchFormed, "batched kernel invocations dispatched")
		m.size = reg.Histogram(obs.MetricBatchSize, SizeBuckets(), "members per dispatched batch")
		m.occupancy = reg.Gauge(obs.MetricBatchOccupancy, "last batch's fill of the configured max size, thousandths (1000 = full)")
		m.hold = reg.Histogram(obs.MetricBatchHold, obs.DurationBuckets(), "batch formation hold time, first join to dispatch")
		m.rows = reg.Counter(obs.MetricBatchRows, "microbatch rows carried by dispatched batches")
	}
	return m
}

// MemberRows is one client's row contribution to a dispatched batch.
type MemberRows struct {
	Client string
	Rows   int64
}

// Record accounts one dispatched batch: its member count, per-member
// rows, and the hold time between the first join and dispatch. Safe on
// nil.
func (m *Metrics) Record(members []MemberRows, holdSeconds float64) {
	if m == nil || len(members) == 0 {
		return
	}
	var rows int64
	for _, mm := range members {
		rows += mm.Rows
		m.ledger.AddBatchRows(mm.Client, mm.Rows)
	}
	if m.formed != nil {
		m.formed.Inc()
		m.size.Observe(float64(len(members)))
		m.occupancy.Set(int64(len(members)) * 1000 / int64(m.maxSize))
		m.hold.Observe(holdSeconds)
		m.rows.Add(rows)
	}
}
