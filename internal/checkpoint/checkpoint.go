// Package checkpoint serializes trainable parameters (adapter weights)
// to a compact binary format, so a client can stop a fine-tuning
// session and resume it — or export its adapter for deployment —
// without ever touching the shared base model.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// Format constants.
const (
	magic   uint32 = 0x4d43504b // "MCPK"
	version uint32 = 1

	// maxParams bounds a checkpoint's parameter count (corruption
	// guard).
	maxParams = 1 << 20
	// maxElems bounds one tensor's element count (corruption guard).
	maxElems = 1 << 28
)

// Errors reported by the package.
var (
	ErrFormat   = errors.New("checkpoint: malformed file")
	ErrMismatch = errors.New("checkpoint: parameters do not match")
)

// Save writes all params (names, shapes, values) to w.
func Save(w io.Writer, params []nn.Param) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, magic); err != nil {
		return fmt.Errorf("checkpoint: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return fmt.Errorf("checkpoint: write version: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("checkpoint: write count: %w", err)
	}
	for _, p := range params {
		if p.Value == nil {
			return fmt.Errorf("checkpoint: parameter %q has nil value", p.Name)
		}
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return fmt.Errorf("checkpoint: write rank: %w", err)
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return fmt.Errorf("checkpoint: write dim: %w", err)
			}
		}
		for _, v := range p.Value.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return fmt.Errorf("checkpoint: write data: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("checkpoint: flush: %w", err)
	}
	return nil
}

// Load restores values into params. Every stored parameter must match
// a target parameter by name with an identical shape; counts must
// agree exactly.
func Load(r io.Reader, params []nn.Param) error {
	br := bufio.NewReader(r)
	var m, ver, count uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if m != magic {
		return fmt.Errorf("%w: bad magic %x", ErrFormat, m)
	}
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return fmt.Errorf("checkpoint: read version: %w", err)
	}
	if ver != version {
		return fmt.Errorf("%w: version %d, want %d", ErrFormat, ver, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("checkpoint: read count: %w", err)
	}
	if count > maxParams {
		return fmt.Errorf("%w: %d parameters", ErrFormat, count)
	}
	if int(count) != len(params) {
		return fmt.Errorf("%w: checkpoint has %d parameters, model has %d",
			ErrMismatch, count, len(params))
	}
	byName := make(map[string]nn.Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	for i := uint32(0); i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return fmt.Errorf("checkpoint: read rank: %w", err)
		}
		if rank > 8 {
			return fmt.Errorf("%w: rank %d", ErrFormat, rank)
		}
		shape := make([]int, rank)
		elems := 1
		for j := range shape {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return fmt.Errorf("checkpoint: read dim: %w", err)
			}
			shape[j] = int(d)
			elems *= int(d)
		}
		if elems < 0 || elems > maxElems {
			return fmt.Errorf("%w: tensor %q has %d elements", ErrFormat, name, elems)
		}
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("%w: unknown parameter %q", ErrMismatch, name)
		}
		if !sameShape(p.Value, shape) {
			return fmt.Errorf("%w: %q stored %v, model has %v",
				ErrMismatch, name, shape, p.Value.Shape())
		}
		data := make([]float32, elems)
		for j := range data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("checkpoint: read data for %q: %w", name, err)
			}
			data[j] = math.Float32frombits(bits)
		}
		loaded, err := tensor.FromSlice(data, shape...)
		if err != nil {
			return fmt.Errorf("checkpoint: %q: %w", name, err)
		}
		if err := p.Value.CopyFrom(loaded); err != nil {
			return fmt.Errorf("checkpoint: %q: %w", name, err)
		}
		delete(byName, name)
	}
	return nil
}

// SaveFile writes params to path (0644, truncating).
func SaveFile(path string, params []nn.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", path, err)
	}
	if err := Save(f, params); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", path, err)
	}
	return nil
}

// LoadFile restores params from path.
func LoadFile(path string, params []nn.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f, params)
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return fmt.Errorf("checkpoint: write string length: %w", err)
	}
	if _, err := io.WriteString(w, s); err != nil {
		return fmt.Errorf("checkpoint: write string: %w", err)
	}
	return nil
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("checkpoint: read string length: %w", err)
	}
	if n > 4096 {
		return "", fmt.Errorf("%w: string length %d", ErrFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("checkpoint: read string: %w", err)
	}
	return string(buf), nil
}

func sameShape(t *tensor.Tensor, shape []int) bool {
	got := t.Shape()
	if len(got) != len(shape) {
		return false
	}
	for i := range got {
		if got[i] != shape[i] {
			return false
		}
	}
	return true
}
