package checkpoint

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"menos/internal/adapter"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

func testParams(t *testing.T, seed uint64) []nn.Param {
	t.Helper()
	rng := tensor.NewRNG(seed)
	return []nn.Param{
		nn.NewParam("a.w", tensor.NewNormal(rng, 1, 3, 4)),
		nn.NewParam("a.b", tensor.NewNormal(rng, 1, 4)),
		nn.NewParam("b.gamma", tensor.NewNormal(rng, 1, 7)),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := testParams(t, 1)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := testParams(t, 2) // different values, same structure
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		for j := range src[i].Value.Data() {
			if src[i].Value.Data()[j] != dst[i].Value.Data()[j] {
				t.Fatalf("param %d element %d differs", i, j)
			}
		}
	}
}

func TestLoadCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testParams(t, 1)); err != nil {
		t.Fatal(err)
	}
	short := testParams(t, 2)[:2]
	if err := Load(&buf, short); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadNameMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testParams(t, 1)); err != nil {
		t.Fatal(err)
	}
	renamed := testParams(t, 2)
	renamed[1].Name = "other"
	if err := Load(&buf, renamed); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testParams(t, 1)); err != nil {
		t.Fatal(err)
	}
	reshaped := testParams(t, 2)
	reshaped[0] = nn.NewParam("a.w", tensor.New(4, 3))
	if err := Load(&buf, reshaped); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadCorruptMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testParams(t, 1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xFF
	if err := Load(bytes.NewReader(raw), testParams(t, 2)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, testParams(t, 1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if err := Load(bytes.NewReader(raw[:len(raw)-5]), testParams(t, 2)); err == nil {
		t.Fatal("truncated checkpoint loaded")
	}
}

func TestSaveNilValue(t *testing.T) {
	if err := Save(&bytes.Buffer{}, []nn.Param{{Name: "bad"}}); err == nil {
		t.Fatal("nil value saved")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adapter.mcpk")
	src := testParams(t, 3)
	if err := SaveFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := testParams(t, 4)
	if err := LoadFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0].Value.At(0, 0) != src[0].Value.At(0, 0) {
		t.Fatal("file round trip lost data")
	}
	if err := LoadFile(filepath.Join(t.TempDir(), "missing"), dst); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestAdapterResume is the end-to-end use case: fine-tune, checkpoint
// the adapter, build a fresh model + adapter, restore, and verify the
// restored model computes identically.
func TestAdapterResume(t *testing.T) {
	cfg := model.Config{
		Name: "test", Family: model.FamilyOPT,
		Vocab: 13, Dim: 8, Layers: 3, Heads: 2, FFN: 16, MaxSeq: 16,
	}
	build := func() (*model.Transformer, adapter.Adapter) {
		m, err := model.New(tensor.NewRNG(10), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFrozenBase(true)
		ad, err := adapter.InjectLoRA(tensor.NewRNG(11), m.Blocks, adapter.DefaultLoRA())
		if err != nil {
			t.Fatal(err)
		}
		return m, ad
	}

	m1, ad1 := build()
	ids := []int{1, 2, 3, 4, 5, 6}
	targets := []int{2, 3, 4, 5, 6, 7}
	opt := nn.NewAdam(1e-2)
	for i := 0; i < 10; i++ {
		if _, err := m1.LossAndGrad(ids, targets, 1, 6); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(ad1.Params()); err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(ad1.Params())
	}
	trainedLoss, err := m1.Loss(ids, targets, 1, 6)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Save(&buf, ad1.Params()); err != nil {
		t.Fatal(err)
	}

	m2, ad2 := build()
	freshLoss, err := m2.Loss(ids, targets, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if freshLoss == trainedLoss {
		t.Fatal("fresh model coincidentally equals trained model")
	}
	if err := Load(&buf, ad2.Params()); err != nil {
		t.Fatal(err)
	}
	restoredLoss, err := m2.Loss(ids, targets, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if restoredLoss != trainedLoss {
		t.Fatalf("restored loss %v != trained loss %v", restoredLoss, trainedLoss)
	}
}

// failingWriter errors after n bytes, exercising write-error paths.
type failingWriter struct{ left int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errors.New("disk full")
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errors.New("disk full")
	}
	return n, nil
}

func TestSaveWriteErrors(t *testing.T) {
	params := testParams(t, 30)
	// Fail at several byte offsets to hit header, name, shape, and
	// data write paths.
	for _, budget := range []int{0, 6, 14, 24, 60} {
		if err := Save(&failingWriter{left: budget}, params); err == nil {
			t.Fatalf("save with %d-byte budget succeeded", budget)
		}
	}
}

func TestLoadGarbageHeaders(t *testing.T) {
	// Too-short stream.
	if err := Load(bytes.NewReader([]byte{1, 2}), testParams(t, 31)); err == nil {
		t.Fatal("2-byte checkpoint loaded")
	}
	// Absurd parameter count.
	var buf bytes.Buffer
	if err := Save(&buf, testParams(t, 32)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8], raw[9], raw[10], raw[11] = 0xFF, 0xFF, 0xFF, 0x7F
	if err := Load(bytes.NewReader(raw), testParams(t, 33)); !errors.Is(err, ErrFormat) {
		t.Fatalf("absurd count err = %v", err)
	}
}

func TestSaveFileBadPath(t *testing.T) {
	if err := SaveFile("/nonexistent-dir/x/y", testParams(t, 34)); err == nil {
		t.Fatal("bad save path accepted")
	}
	m, err := model.New(tensor.NewRNG(35), model.OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveModelFile("/nonexistent-dir/x/y", m); err == nil {
		t.Fatal("bad model save path accepted")
	}
}
