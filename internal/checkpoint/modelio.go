package checkpoint

import (
	"fmt"
	"io"
	"os"

	"menos/internal/model"
)

// SaveModel serializes a pristine model's full base weights — the
// artifact a model owner distributes so clients can build their input
// and output sections from real pre-trained parameters instead of a
// shared seed.
func SaveModel(w io.Writer, m *model.Transformer) error {
	params, err := m.BaseParams()
	if err != nil {
		return fmt.Errorf("checkpoint: enumerate model: %w", err)
	}
	return Save(w, params)
}

// LoadModel restores base weights into a structurally identical
// pristine model.
func LoadModel(r io.Reader, m *model.Transformer) error {
	params, err := m.BaseParams()
	if err != nil {
		return fmt.Errorf("checkpoint: enumerate model: %w", err)
	}
	return Load(r, params)
}

// SaveModelFile writes the model's base weights to path.
func SaveModelFile(path string, m *model.Transformer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", path, err)
	}
	if err := SaveModel(f, m); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", path, err)
	}
	return nil
}

// LoadModelFile restores base weights from path.
func LoadModelFile(path string, m *model.Transformer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	defer f.Close()
	return LoadModel(f, m)
}
