package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// Session snapshot format: the full server-side training state of one
// client — adapter parameter values, accumulated gradients, and the
// optimizer's per-parameter slots plus step count. Unlike the plain
// parameter checkpoint (Save/Load), restoring a session snapshot
// resumes training bit-exactly: mid-accumulation gradients and Adam's
// bias-correction counter travel with the weights, which is what live
// migration between servers requires.
const (
	sessionMagic   uint32 = 0x4d53534e // "MSSN"
	sessionVersion uint32 = 1

	// maxSlots bounds per-parameter optimizer slots (corruption guard;
	// Adam has 2, SGD-momentum 1).
	maxSlots = 4
)

// SaveSession writes params (values and gradients) and opt's state to
// w. opt may be nil for a stateless snapshot (values and grads only).
func SaveSession(w io.Writer, params []nn.Param, opt nn.Optimizer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{sessionMagic, sessionVersion, uint32(len(params))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("checkpoint: session header: %w", err)
		}
	}
	snap, _ := opt.(nn.SnapshottableOptimizer)
	var step int64
	if snap != nil {
		step = snap.StepCount()
	}
	if err := binary.Write(bw, binary.LittleEndian, step); err != nil {
		return fmt.Errorf("checkpoint: session step: %w", err)
	}
	for _, p := range params {
		if p.Value == nil {
			return fmt.Errorf("checkpoint: parameter %q has nil value", p.Name)
		}
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		if err := writeTensor(bw, p.Value); err != nil {
			return fmt.Errorf("checkpoint: %q value: %w", p.Name, err)
		}
		hasGrad := p.Grad != nil
		if err := binary.Write(bw, binary.LittleEndian, boolByte(hasGrad)); err != nil {
			return fmt.Errorf("checkpoint: %q grad flag: %w", p.Name, err)
		}
		if hasGrad {
			if err := writeTensor(bw, p.Grad); err != nil {
				return fmt.Errorf("checkpoint: %q grad: %w", p.Name, err)
			}
		}
		var slots []*tensor.Tensor
		if snap != nil {
			slots = snap.StateSlots(p)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint8(len(slots))); err != nil {
			return fmt.Errorf("checkpoint: %q slot count: %w", p.Name, err)
		}
		for i, s := range slots {
			if err := writeTensor(bw, s); err != nil {
				return fmt.Errorf("checkpoint: %q slot %d: %w", p.Name, i, err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("checkpoint: flush: %w", err)
	}
	return nil
}

// LoadSession restores a session snapshot into params and opt. Every
// stored parameter must match a target by name with an identical
// shape, and the optimizer must offer at least as many state slots as
// the snapshot carries for it (a snapshot taken under Adam cannot be
// restored into SGD).
func LoadSession(r io.Reader, params []nn.Param, opt nn.Optimizer) error {
	br := bufio.NewReader(r)
	var m, ver, count uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return fmt.Errorf("checkpoint: session magic: %w", err)
	}
	if m != sessionMagic {
		return fmt.Errorf("%w: bad session magic %x", ErrFormat, m)
	}
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return fmt.Errorf("checkpoint: session version: %w", err)
	}
	if ver != sessionVersion {
		return fmt.Errorf("%w: session version %d, want %d", ErrFormat, ver, sessionVersion)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("checkpoint: session count: %w", err)
	}
	if count > maxParams {
		return fmt.Errorf("%w: %d parameters", ErrFormat, count)
	}
	if int(count) != len(params) {
		return fmt.Errorf("%w: snapshot has %d parameters, session has %d",
			ErrMismatch, count, len(params))
	}
	var step int64
	if err := binary.Read(br, binary.LittleEndian, &step); err != nil {
		return fmt.Errorf("checkpoint: session step: %w", err)
	}
	snap, _ := opt.(nn.SnapshottableOptimizer)
	if snap != nil {
		snap.SetStepCount(step)
	}
	byName := make(map[string]nn.Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	for i := uint32(0); i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("%w: unknown parameter %q", ErrMismatch, name)
		}
		delete(byName, name)
		if err := readTensorInto(br, p.Value, name, "value"); err != nil {
			return err
		}
		var hasGrad uint8
		if err := binary.Read(br, binary.LittleEndian, &hasGrad); err != nil {
			return fmt.Errorf("checkpoint: %q grad flag: %w", name, err)
		}
		if hasGrad != 0 {
			if p.Grad == nil {
				return fmt.Errorf("%w: %q has a stored gradient but no target", ErrMismatch, name)
			}
			if err := readTensorInto(br, p.Grad, name, "grad"); err != nil {
				return err
			}
		}
		var nslots uint8
		if err := binary.Read(br, binary.LittleEndian, &nslots); err != nil {
			return fmt.Errorf("checkpoint: %q slot count: %w", name, err)
		}
		if nslots > maxSlots {
			return fmt.Errorf("%w: %q has %d optimizer slots", ErrFormat, name, nslots)
		}
		var slots []*tensor.Tensor
		if nslots > 0 {
			if snap == nil {
				return fmt.Errorf("%w: snapshot carries optimizer state but the optimizer cannot restore it", ErrMismatch)
			}
			slots = snap.StateSlots(p)
			if len(slots) < int(nslots) {
				return fmt.Errorf("%w: %q stored %d optimizer slots, optimizer has %d",
					ErrMismatch, name, nslots, len(slots))
			}
		}
		for j := 0; j < int(nslots); j++ {
			if err := readTensorInto(br, slots[j], name, fmt.Sprintf("slot %d", j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// EncodeSession is SaveSession into a fresh byte slice — the form the
// migration plane ships over HTTP.
func EncodeSession(params []nn.Param, opt nn.Optimizer) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveSession(&buf, params, opt); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSession is LoadSession from a byte slice.
func DecodeSession(data []byte, params []nn.Param, opt nn.Optimizer) error {
	return LoadSession(bytes.NewReader(data), params, opt)
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// writeTensor serializes shape and raw float32 bits.
func writeTensor(w io.Writer, t *tensor.Tensor) error {
	shape := t.Shape()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	for _, v := range t.Data() {
		if err := binary.Write(w, binary.LittleEndian, math.Float32bits(v)); err != nil {
			return err
		}
	}
	return nil
}

// readTensorInto decodes a tensor and copies it into dst, which must
// have the identical shape.
func readTensorInto(r io.Reader, dst *tensor.Tensor, name, what string) error {
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return fmt.Errorf("checkpoint: %q %s rank: %w", name, what, err)
	}
	if rank > 8 {
		return fmt.Errorf("%w: %q %s rank %d", ErrFormat, name, what, rank)
	}
	shape := make([]int, rank)
	elems := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return fmt.Errorf("checkpoint: %q %s dim: %w", name, what, err)
		}
		shape[i] = int(d)
		elems *= int(d)
	}
	if elems < 0 || elems > maxElems {
		return fmt.Errorf("%w: %q %s has %d elements", ErrFormat, name, what, elems)
	}
	if dst == nil {
		return fmt.Errorf("%w: %q %s has no target tensor", ErrMismatch, name, what)
	}
	if !sameShape(dst, shape) {
		return fmt.Errorf("%w: %q %s stored %v, session has %v",
			ErrMismatch, name, what, shape, dst.Shape())
	}
	data := make([]float32, elems)
	for i := range data {
		var bits uint32
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return fmt.Errorf("checkpoint: %q %s data: %w", name, what, err)
		}
		data[i] = math.Float32frombits(bits)
	}
	loaded, err := tensor.FromSlice(data, shape...)
	if err != nil {
		return fmt.Errorf("checkpoint: %q %s: %w", name, what, err)
	}
	if err := dst.CopyFrom(loaded); err != nil {
		return fmt.Errorf("checkpoint: %q %s: %w", name, what, err)
	}
	return nil
}
