package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// stepOnce runs one optimizer step with deterministic synthetic grads.
func stepOnce(t *testing.T, params []nn.Param, opt nn.Optimizer, seed uint64) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	for _, p := range params {
		g := tensor.NewNormal(rng, 1, p.Grad.Shape()...)
		if err := p.Grad.CopyFrom(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := opt.Step(params); err != nil {
		t.Fatal(err)
	}
}

func sameTensor(a, b *tensor.Tensor) bool {
	ad, bd := a.Data(), b.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if ad[i] != bd[i] {
			return false
		}
	}
	return true
}

// TestSessionRoundTripAdam: snapshot mid-training, restore into a
// fresh replica, and verify the two resume bit-identically — the
// property live migration depends on.
func TestSessionRoundTripAdam(t *testing.T) {
	src := testParams(t, 1)
	srcOpt := nn.NewAdam(0.01)
	for i := 0; i < 3; i++ {
		stepOnce(t, src, srcOpt, uint64(10+i))
	}
	// Leave accumulated (unapplied) gradients in place so the snapshot
	// must carry them.
	rng := tensor.NewRNG(99)
	for _, p := range src {
		if err := p.Grad.CopyFrom(tensor.NewNormal(rng, 1, p.Grad.Shape()...)); err != nil {
			t.Fatal(err)
		}
	}

	data, err := EncodeSession(src, srcOpt)
	if err != nil {
		t.Fatal(err)
	}
	dst := testParams(t, 2)
	dstOpt := nn.NewAdam(0.01)
	if err := DecodeSession(data, dst, dstOpt); err != nil {
		t.Fatal(err)
	}
	if got, want := dstOpt.StepCount(), srcOpt.StepCount(); got != want {
		t.Fatalf("restored step count %d, want %d", got, want)
	}
	for i := range src {
		if !sameTensor(src[i].Value, dst[i].Value) {
			t.Fatalf("param %q value differs after restore", src[i].Name)
		}
		if !sameTensor(src[i].Grad, dst[i].Grad) {
			t.Fatalf("param %q grad differs after restore", src[i].Name)
		}
	}
	// Both replicas apply the pending gradients, then take two more
	// identical steps; they must stay bit-identical throughout.
	for i := 0; i < 3; i++ {
		if err := srcOpt.Step(src); err != nil {
			t.Fatal(err)
		}
		if err := dstOpt.Step(dst); err != nil {
			t.Fatal(err)
		}
		for j := range src {
			if !sameTensor(src[j].Value, dst[j].Value) {
				t.Fatalf("step %d: param %q diverged after restore", i, src[j].Name)
			}
		}
		stepOnceBoth(t, src, dst, uint64(40+i))
	}
}

// stepOnceBoth loads the same synthetic gradients into both replicas.
func stepOnceBoth(t *testing.T, a, b []nn.Param, seed uint64) {
	t.Helper()
	for _, params := range [][]nn.Param{a, b} {
		rng := tensor.NewRNG(seed)
		for _, p := range params {
			if err := p.Grad.CopyFrom(tensor.NewNormal(rng, 1, p.Grad.Shape()...)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSessionRoundTripSGDMomentum(t *testing.T) {
	src := testParams(t, 1)
	srcOpt := nn.NewSGD(0.05, 0.9)
	for i := 0; i < 2; i++ {
		stepOnce(t, src, srcOpt, uint64(20+i))
	}
	data, err := EncodeSession(src, srcOpt)
	if err != nil {
		t.Fatal(err)
	}
	dst := testParams(t, 2)
	dstOpt := nn.NewSGD(0.05, 0.9)
	if err := DecodeSession(data, dst, dstOpt); err != nil {
		t.Fatal(err)
	}
	stepOnceBoth(t, src, dst, 77)
	if err := srcOpt.Step(src); err != nil {
		t.Fatal(err)
	}
	if err := dstOpt.Step(dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !sameTensor(src[i].Value, dst[i].Value) {
			t.Fatalf("param %q diverged after restore", src[i].Name)
		}
	}
}

func TestSessionStatelessOptimizer(t *testing.T) {
	src := testParams(t, 1)
	data, err := EncodeSession(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := testParams(t, 2)
	if err := DecodeSession(data, dst, nn.NewSGD(0.1, 0)); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !sameTensor(src[i].Value, dst[i].Value) {
			t.Fatalf("param %q value differs", src[i].Name)
		}
	}
}

// TestSessionAdamIntoSGD: a snapshot carrying Adam's two moment slots
// must refuse to restore into momentum-free SGD.
func TestSessionAdamIntoSGD(t *testing.T) {
	src := testParams(t, 1)
	srcOpt := nn.NewAdam(0.01)
	stepOnce(t, src, srcOpt, 5)
	data, err := EncodeSession(src, srcOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeSession(data, testParams(t, 2), nn.NewSGD(0.1, 0)); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

func TestSessionShapeMismatch(t *testing.T) {
	data, err := EncodeSession(testParams(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	bad := []nn.Param{
		nn.NewParam("a.w", tensor.NewNormal(rng, 1, 3, 4)),
		nn.NewParam("a.b", tensor.NewNormal(rng, 1, 5)), // wrong shape
		nn.NewParam("b.gamma", tensor.NewNormal(rng, 1, 7)),
	}
	if err := DecodeSession(data, bad, nil); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

func TestSessionBadMagic(t *testing.T) {
	data, err := EncodeSession(testParams(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := DecodeSession(data, testParams(t, 1), nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestSessionTruncated(t *testing.T) {
	data, err := EncodeSession(testParams(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeSession(data[:len(data)-7], testParams(t, 1), nil); err == nil {
		t.Fatal("truncated snapshot decoded without error")
	}
	var buf bytes.Buffer
	buf.Write(data[:6])
	if err := LoadSession(&buf, testParams(t, 1), nil); err == nil {
		t.Fatal("header-only snapshot decoded without error")
	}
}
