// Package client implements the client side of split fine-tuning
// (§2.2): it holds the input and output sections of the model, runs
// the four-step loop against a Menos server over any net.Conn, and
// optimizes the client-side adapter parameters (φ_i) locally.
//
// The client builds its model sections from the same weight seed the
// model owner used for the server's shared store — the functional
// equivalent of the owner distributing f_i and f_o to the client while
// keeping f_s private.
package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"menos/internal/adapter"
	"menos/internal/checkpoint"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/split"
	"menos/internal/tensor"
	"menos/internal/trace"
)

// Errors reported by the client.
var (
	ErrRejected = errors.New("client: server rejected handshake")
	ErrRemote   = errors.New("client: server reported an error")
	// ErrOverloaded marks a transient, retryable rejection: the server's
	// admission controller is shedding load (docs/ADMISSION.md). The
	// concrete error is a *RetryableError carrying the backoff hint.
	ErrOverloaded = errors.New("client: server overloaded")
)

// RetryableError is a transient server-side rejection. The session (or
// dial attempt) may be retried after RetryAfter. It unwraps to
// ErrOverloaded so callers can branch with errors.Is.
type RetryableError struct {
	// RetryAfter is the server's backoff hint (0 when the server did
	// not provide one).
	RetryAfter time.Duration
	// Reason is the server's human-readable explanation.
	Reason string
}

func (e *RetryableError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("client: server overloaded (retry after %v): %s", e.RetryAfter, e.Reason)
	}
	return "client: server overloaded: " + e.Reason
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *RetryableError) Unwrap() error { return ErrOverloaded }

// RetryAfter extracts the backoff hint from a retryable error chain.
// It reports false for non-retryable errors.
func RetryAfter(err error) (time.Duration, bool) {
	var re *RetryableError
	if errors.As(err, &re) {
		return re.RetryAfter, true
	}
	return 0, false
}

// Config describes one client's fine-tuning session.
type Config struct {
	ClientID string
	// Model must name/shape the same base model the server hosts.
	Model model.Config
	// WeightSeed is the model owner's initialization seed; it must
	// match the server store's seed for the sections to line up.
	WeightSeed uint64
	// WeightsFile optionally loads the model owner's distributed base
	// weights (checkpoint.SaveModelFile), overriding the seed-derived
	// initialization. It must hold the same weights the server serves.
	WeightsFile string
	// Cut is the split layer (client keeps blocks [0, Cut)).
	Cut int
	// Adapter configures fine-tuning; applied to the client-side
	// blocks locally and reported to the server for φ_s.
	Adapter adapter.Spec
	// AdapterSeed seeds both the local and the server-side adapter
	// initialization.
	AdapterSeed uint64
	// LR is the optimizer learning rate (client and server side).
	LR float64
	// Optimizer is "adam" (default) or "sgd".
	Optimizer string
	Batch     int
	Seq       int
	// Metrics, when set, records per-iteration counters and comm/comp
	// histograms under the menos_client_* names. Nil disables them.
	Metrics *obs.Registry
	// Tracer, when set, records client-side spans (local compute and
	// server round-trips) on the tracer's own clock, groups each
	// iteration's spans under a deterministic trace ID
	// (obs.IterTraceID), and offers trace-context propagation
	// (split.FeatureTraceContext) at handshake so the server's spans
	// share those IDs. Nil disables all of it.
	Tracer *obs.Tracer
	// NoTraceContext suppresses the trace-context offer even when
	// Tracer is set: the handshake then stays a plain version-1 frame.
	// Dial's compatibility fallback sets this when a legacy server
	// hangs up on the extended hello.
	NoTraceContext bool
	// Migrate offers split.FeatureMigration at handshake: the server
	// may answer a forward with a redirect to another server, and the
	// client follows it transparently mid-run — redial, resume the
	// session from the control plane's snapshot, replay the displaced
	// forward. The iteration in flight is not lost and the caller only
	// observes a longer round-trip.
	Migrate bool
	// OnMigrate, when set, is called after each completed migration
	// with the new server's address (telemetry/test hook).
	OnMigrate func(target string)
	// WireCodec compresses activation/gradient payloads on the wire
	// (docs/WIRE.md). CodecFP32 (the zero value) disables compression
	// and keeps every frame byte-identical to a pre-compression client.
	// Any other codec offers split.FeatureActivationCompression at
	// handshake; payloads are quantized only if the server acks it, so
	// a legacy server transparently gets plain fp32 frames. Each peer
	// compresses what it sends with its own configured codec — the
	// feature bit negotiates the capability, the Packed header carries
	// the codec per payload.
	WireCodec quant.Codec
}

func (c *Config) applyDefaults() {
	if c.Cut == 0 {
		c.Cut = model.DefaultCut
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Optimizer == "" {
		c.Optimizer = "adam"
	}
}

// StepResult reports one fine-tuning iteration.
type StepResult struct {
	Loss       float64
	Perplexity float64
	CommTime   time.Duration
	CompTime   time.Duration
}

// Client is a connected split fine-tuning client.
type Client struct {
	cfg  Config
	conn net.Conn

	local     *model.Transformer
	input     *model.InputSection
	output    *model.OutputSection
	adapter   adapter.Adapter
	params    []nn.Param
	optimizer nn.Optimizer

	iter      int
	breakdown trace.Breakdown
	demands   split.HelloAck
	// traceOK reports that the server acked FeatureTraceContext:
	// requests may carry trace IDs and responses echo them.
	traceOK bool
	// migrateOK reports that the server acked FeatureMigration.
	migrateOK bool
	// compressOK reports that the server acked
	// FeatureActivationCompression: outgoing payloads may be quantized
	// with cfg.WireCodec and incoming payloads may arrive packed.
	compressOK bool
	// resumeToken rides the next handshake's Hello (nonzero only
	// during a migration redial).
	resumeToken uint64
	// migrations counts completed mid-run server moves.
	migrations int

	m clientMetrics
}

// clientMetrics are the client plane's telemetry handles; the zero
// value (nil handles) is valid and free. The labeled handles share
// metric names with the unlabeled aggregates ({client="..."} series
// under the same family), resolved once at construction so the hot
// path stays a plain atomic observe.
type clientMetrics struct {
	iterations *obs.Counter
	comm       *obs.Histogram
	comp       *obs.Histogram

	iterationsBy *obs.Counter
	commBy       *obs.Histogram
	compBy       *obs.Histogram

	// Wire transport plane (docs/WIRE.md): bytes of compressed payloads
	// sent vs the fp32 bytes they replaced, codec time, and per-
	// microbatch round-trip time hidden behind compute by pipelining.
	wireCompressed *obs.Counter
	wireRaw        *obs.Counter
	codecSeconds   *obs.Histogram
	overlapHidden  *obs.Histogram
}

// New builds the client's model sections and performs the handshake
// over conn. The caller owns conn's lifetime until Close.
func New(conn net.Conn, cfg Config) (*Client, error) {
	cfg.applyDefaults()
	if cfg.ClientID == "" {
		return nil, errors.New("client: missing client id")
	}
	if cfg.Batch <= 0 || cfg.Seq <= 0 {
		return nil, fmt.Errorf("client: bad geometry batch=%d seq=%d", cfg.Batch, cfg.Seq)
	}
	m, err := model.New(tensor.NewRNG(cfg.WeightSeed), cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("client: build model sections: %w", err)
	}
	if cfg.WeightsFile != "" {
		if err := checkpoint.LoadModelFile(cfg.WeightsFile, m); err != nil {
			return nil, fmt.Errorf("client: load weights: %w", err)
		}
	}
	m.SetFrozenBase(true)
	input, _, output, err := m.Split(cfg.Cut)
	if err != nil {
		return nil, fmt.Errorf("client: split: %w", err)
	}
	// Client-side adapter over the input blocks (φ_i). The adapter
	// seed is offset so the client and server streams differ but are
	// both reproducible from cfg.AdapterSeed.
	ad, err := cfg.Adapter.Inject(tensor.NewRNG(cfg.AdapterSeed^AdapterSalt),
		m.Blocks[:cfg.Cut], cfg.Model.Dim)
	if err != nil {
		return nil, fmt.Errorf("client: attach adapter: %w", err)
	}

	c := &Client{
		cfg:     cfg,
		conn:    conn,
		local:   m,
		input:   input,
		output:  output,
		adapter: ad,
		params:  ad.Params(),
	}
	switch cfg.Optimizer {
	case "adam":
		c.optimizer = nn.NewAdam(cfg.LR)
	case "sgd":
		c.optimizer = nn.NewSGD(cfg.LR, 0)
	default:
		return nil, fmt.Errorf("client: unknown optimizer %q", cfg.Optimizer)
	}
	if cfg.Metrics != nil {
		c.m = clientMetrics{
			iterations: cfg.Metrics.Counter(obs.MetricClientIterations, "client fine-tuning iterations"),
			comm:       cfg.Metrics.Histogram(obs.MetricClientCommSeconds, obs.DurationBuckets(), "server round-trip time per iteration"),
			comp:       cfg.Metrics.Histogram(obs.MetricClientCompSeconds, obs.DurationBuckets(), "local compute time per iteration"),

			iterationsBy: cfg.Metrics.CounterVec(obs.MetricClientIterations, "client").With(cfg.ClientID),
			commBy:       cfg.Metrics.HistogramVec(obs.MetricClientCommSeconds, "client", obs.DurationBuckets()).With(cfg.ClientID),
			compBy:       cfg.Metrics.HistogramVec(obs.MetricClientCompSeconds, "client", obs.DurationBuckets()).With(cfg.ClientID),

			wireCompressed: cfg.Metrics.Counter(obs.MetricWireCompressedBytes, "on-wire bytes of compressed activation/gradient payloads sent"),
			wireRaw:        cfg.Metrics.Counter(obs.MetricWireRawBytes, "fp32 bytes the compressed payloads replaced"),
			codecSeconds:   cfg.Metrics.Histogram(obs.MetricWireCodecSeconds, obs.DurationBuckets(), "time quantizing/dequantizing wire payloads"),
			overlapHidden:  cfg.Metrics.Histogram(obs.MetricOverlapHiddenSeconds, obs.DurationBuckets(), "round-trip time hidden behind compute by pipelined stepping"),
		}
	}

	if err := c.handshake(); err != nil {
		return nil, err
	}
	return c, nil
}

// AdapterSalt decorrelates the client-side adapter RNG stream
// from the server-side one.
const AdapterSalt = 0x5f3759df

// Dial connects to a Menos server over TCP and handshakes. When the
// configuration offers trace context and the handshake dies on a
// transport error — the signature of a version-1 server rejecting the
// extended hello and hanging up — Dial redials once with the offer
// withdrawn, so a new client still interoperates with an old server.
func Dial(addr string, cfg Config) (*Client, error) {
	c, err := dialOnce(addr, cfg)
	offeredExt := (cfg.Tracer != nil && !cfg.NoTraceContext) || cfg.Migrate ||
		cfg.WireCodec != quant.CodecFP32
	if err == nil || !offeredExt {
		return c, err
	}
	// Real rejections (config, capacity, overload) come back as
	// protocol messages, not transport failures; don't mask them.
	if errors.Is(err, ErrRejected) || errors.Is(err, ErrOverloaded) || errors.Is(err, ErrRemote) {
		return nil, err
	}
	cfg.NoTraceContext = true
	cfg.Migrate = false
	cfg.WireCodec = quant.CodecFP32
	return dialOnce(addr, cfg)
}

func dialOnce(addr string, cfg Config) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c, err := New(conn, cfg)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) handshake() error {
	hello := &split.Hello{
		ClientID:    c.cfg.ClientID,
		ModelName:   c.cfg.Model.Name,
		Cut:         c.cfg.Cut,
		Adapter:     c.cfg.Adapter,
		Optimizer:   split.OptimizerConfig{Kind: c.cfg.Optimizer, LR: c.cfg.LR},
		Batch:       c.cfg.Batch,
		Seq:         c.cfg.Seq,
		AdapterSeed: c.cfg.AdapterSeed,
	}
	if c.cfg.Tracer != nil && !c.cfg.NoTraceContext {
		hello.Features = split.FeatureTraceContext
	}
	if c.cfg.Migrate {
		hello.Features |= split.FeatureMigration
	}
	if c.cfg.WireCodec != quant.CodecFP32 {
		hello.Features |= split.FeatureActivationCompression
	}
	hello.ResumeToken = c.resumeToken
	if err := split.WriteMessage(c.conn, hello); err != nil {
		return fmt.Errorf("client: send hello: %w", err)
	}
	msg, err := split.ReadMessage(c.conn)
	if err != nil {
		return fmt.Errorf("client: read hello ack: %w", err)
	}
	ack, ok := msg.(*split.HelloAck)
	if !ok {
		return fmt.Errorf("client: expected hello ack, got %v", msg.MsgType())
	}
	if !ack.OK {
		if ack.Retryable {
			return &RetryableError{
				RetryAfter: time.Duration(ack.RetryAfterMs) * time.Millisecond,
				Reason:     ack.Reason,
			}
		}
		return fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}
	c.demands = *ack
	c.traceOK = ack.Features&split.FeatureTraceContext != 0
	c.migrateOK = ack.Features&split.FeatureMigration != 0
	c.compressOK = ack.Features&split.FeatureActivationCompression != 0
	return nil
}

// CompressionNegotiated reports whether the server accepted compressed
// activation payloads at handshake.
func (c *Client) CompressionNegotiated() bool { return c.compressOK }

// packWire quantizes an outgoing payload with the configured codec.
// When compression is off (or not negotiated) it returns the tensor
// unchanged, so the frame stays byte-identical to a legacy client's.
func (c *Client) packWire(x *tensor.Tensor) (*tensor.Tensor, *quant.Packed, error) {
	if !c.compressOK || c.cfg.WireCodec == quant.CodecFP32 {
		return x, nil, nil
	}
	t0 := time.Now()
	p, err := quant.Pack(x, c.cfg.WireCodec)
	if err != nil {
		return nil, nil, fmt.Errorf("client: pack payload: %w", err)
	}
	c.m.codecSeconds.Observe(time.Since(t0).Seconds())
	c.m.wireCompressed.Add(int64(p.WireBytes()))
	c.m.wireRaw.Add(int64(4 * len(x.Data())))
	return nil, p, nil
}

// unpackWire resolves an incoming payload that may be plain or packed.
// A packed payload from a server that never negotiated compression is a
// protocol violation, not something to decode on faith.
func (c *Client) unpackWire(plain *tensor.Tensor, packed *quant.Packed) (*tensor.Tensor, error) {
	if packed != nil && !c.compressOK {
		return nil, errors.New("client: compressed payload without negotiation")
	}
	if packed == nil {
		return plain, nil
	}
	t0 := time.Now()
	x, err := split.Payload(plain, packed)
	if err != nil {
		return nil, fmt.Errorf("client: unpack payload: %w", err)
	}
	c.m.codecSeconds.Observe(time.Since(t0).Seconds())
	return x, nil
}

// TraceNegotiated reports whether the server accepted trace-context
// propagation at handshake.
func (c *Client) TraceNegotiated() bool { return c.traceOK }

// Demands returns the server-profiled memory requirements for this
// client.
func (c *Client) Demands() (forward, backward int64) {
	return c.demands.ForwardBytes, c.demands.BackwardBytes
}

// Step runs one full split fine-tuning iteration over the batch
// (ids, targets), each of length Batch×Seq: forward, backward, and an
// optimizer step on both adapter halves.
func (c *Client) Step(ids, targets []int) (StepResult, error) {
	return c.step(ids, targets, true)
}

// MicroStep runs one forward/backward and accumulates gradients on
// both sides of the split; the optimizer steps (client- and
// server-side) happen only when apply is true. This implements
// gradient accumulation: k-1 calls with apply=false followed by one
// with apply=true emulate a k× larger batch within the memory budget
// of one micro-batch.
func (c *Client) MicroStep(ids, targets []int, apply bool) (StepResult, error) {
	return c.step(ids, targets, apply)
}

func (c *Client) step(ids, targets []int, apply bool) (StepResult, error) {
	if len(ids) != c.cfg.Batch*c.cfg.Seq || len(targets) != len(ids) {
		return StepResult{}, fmt.Errorf("client: batch is %d ids / %d targets, want %d",
			len(ids), len(targets), c.cfg.Batch*c.cfg.Seq)
	}
	var comm, comp time.Duration
	iter := c.iter
	c.iter++

	// Every iteration gets a deterministic trace ID; when the server
	// negotiated trace context it rides the wire, so both processes'
	// span buffers share it and a merged Chrome trace lines up.
	var tid uint64
	if c.cfg.Tracer != nil {
		tid = obs.IterTraceID(c.cfg.ClientID, iter)
	}
	iterSpan := c.cfg.Tracer.BeginT(c.cfg.ClientID, "iteration", "iter", tid)

	// Step 1 (client): input section forward.
	sp := c.cfg.Tracer.BeginT(c.cfg.ClientID, "input-forward", "compute", tid)
	t0 := time.Now()
	xc, inCache, err := c.input.Forward(ids, c.cfg.Batch, c.cfg.Seq, true)
	if err != nil {
		return StepResult{}, fmt.Errorf("client: input forward: %w", err)
	}
	comp += time.Since(t0)
	sp.End()

	// Steps 1-2 (server): send x_c, receive x_s.
	plain, packed, err := c.packWire(xc)
	if err != nil {
		return StepResult{}, err
	}
	sp = c.cfg.Tracer.BeginT(c.cfg.ClientID, "forward-rtt", "comm", tid)
	t0 = time.Now()
	xs, err := c.forwardRoundTrip(&split.ForwardReq{
		Iter: iter, Batch: c.cfg.Batch, Seq: c.cfg.Seq, Activations: plain,
		Packed: packed, TraceID: c.wireTrace(tid),
	})
	if err != nil {
		return StepResult{}, err
	}
	comm += time.Since(t0)
	sp.End()

	// Client: output section forward, loss, output backward.
	sp = c.cfg.Tracer.BeginT(c.cfg.ClientID, "output-loss", "compute", tid)
	t0 = time.Now()
	logits, outCache, err := c.output.Forward(xs, true)
	if err != nil {
		return StepResult{}, fmt.Errorf("client: output forward: %w", err)
	}
	loss, dlogits, err := nn.CrossEntropy(logits, targets)
	if err != nil {
		return StepResult{}, fmt.Errorf("client: loss: %w", err)
	}
	gc, err := c.output.Backward(outCache, dlogits)
	if err != nil {
		return StepResult{}, fmt.Errorf("client: output backward: %w", err)
	}
	comp += time.Since(t0)
	sp.End()

	// Steps 3-4 (server): send g_c, receive g_s.
	plain, packed, err = c.packWire(gc)
	if err != nil {
		return StepResult{}, err
	}
	sp = c.cfg.Tracer.BeginT(c.cfg.ClientID, "backward-rtt", "comm", tid)
	t0 = time.Now()
	if err := split.WriteMessage(c.conn, &split.BackwardReq{
		Iter: iter, Apply: apply, Gradients: plain, Packed: packed, TraceID: c.wireTrace(tid),
	}); err != nil {
		return StepResult{}, fmt.Errorf("client: send backward: %w", err)
	}
	gs, err := c.expectBackwardResp(iter)
	if err != nil {
		return StepResult{}, err
	}
	comm += time.Since(t0)
	sp.End()

	// Client: input section backward and adapter optimization.
	sp = c.cfg.Tracer.BeginT(c.cfg.ClientID, "input-backward", "compute", tid)
	t0 = time.Now()
	if err := c.input.Backward(inCache, gs); err != nil {
		return StepResult{}, fmt.Errorf("client: input backward: %w", err)
	}
	if apply {
		if err := c.optimizer.Step(c.params); err != nil {
			return StepResult{}, fmt.Errorf("client: optimizer: %w", err)
		}
		nn.ZeroGrads(c.params)
	}
	comp += time.Since(t0)
	sp.End()

	iterSpan.End()
	c.breakdown.Add(comm, comp, 0)
	c.m.iterations.Inc()
	c.m.comm.ObserveExemplar(comm.Seconds(), tid)
	c.m.comp.ObserveExemplar(comp.Seconds(), tid)
	c.m.iterationsBy.Inc()
	c.m.commBy.Observe(comm.Seconds())
	c.m.compBy.Observe(comp.Seconds())
	return StepResult{
		Loss:       loss,
		Perplexity: nn.Perplexity(loss),
		CommTime:   comm,
		CompTime:   comp,
	}, nil
}

// wireTrace gates a trace ID for the wire: zero (and therefore absent
// from the frame) unless the server negotiated trace context.
func (c *Client) wireTrace(tid uint64) uint64 {
	if !c.traceOK {
		return 0
	}
	return tid
}

// MicroBatch is one gradient-accumulation slice for StepPipelined;
// IDs and Targets each hold Batch×Seq tokens.
type MicroBatch struct {
	IDs     []int
	Targets []int
}

// pendingMicro is the in-flight tail of the pipeline: a microbatch
// whose BackwardReq has been written but whose response has not been
// read yet.
type pendingMicro struct {
	iter    int
	tid     uint64
	inCache *model.InputCache
	span    *obs.SpanHandle
	res     StepResult
	// sent is when the BackwardReq finished writing; everything the
	// client computes between then and the blocking response read is
	// round-trip time hidden by the pipeline.
	sent time.Time
}

// StepPipelined runs the microbatches as one gradient-accumulation
// group (equivalent to len-1 MicroStep(apply=false) calls followed by
// one with apply=true) with double-buffered comm/compute overlap: the
// backward upload of microbatch i streams — and the server grinds
// through it — while the client computes and uploads microbatch i+1's
// forward. Only then is i's backward response collected. The server
// processes a connection's requests strictly in order, so the compute
// graph is untouched: at fp32 the results are bit-identical to the
// sequential loop, just faster on a slow link.
//
// Reordering note: microbatch i+1's input forward runs before
// microbatch i's input backward. Forward touches no gradient state and
// the adapter parameters only change at the final apply, so the
// numbers cannot differ — backward order itself stays i, i+1, ....
//
// When the server negotiated live migration the client falls back to
// the sequential loop: a mid-pipeline redirect would displace requests
// this schedule cannot replay.
func (c *Client) StepPipelined(batches []MicroBatch) ([]StepResult, error) {
	if len(batches) == 0 {
		return nil, errors.New("client: pipelined step needs at least one microbatch")
	}
	if c.migrateOK {
		results := make([]StepResult, 0, len(batches))
		for i, mb := range batches {
			res, err := c.step(mb.IDs, mb.Targets, i == len(batches)-1)
			if err != nil {
				return results, err
			}
			results = append(results, res)
		}
		return results, nil
	}

	results := make([]StepResult, 0, len(batches))
	var pending *pendingMicro

	// finish drains a deferred microbatch: read its backward response,
	// run the input-section backward, and account the iteration.
	finish := func(p *pendingMicro) error {
		c.m.overlapHidden.Observe(time.Since(p.sent).Seconds())
		sp := c.cfg.Tracer.BeginT(c.cfg.ClientID, "backward-rtt", "comm", p.tid)
		t0 := time.Now()
		gs, err := c.expectBackwardResp(p.iter)
		if err != nil {
			return err
		}
		p.res.CommTime += time.Since(t0)
		sp.End()

		sp = c.cfg.Tracer.BeginT(c.cfg.ClientID, "input-backward", "compute", p.tid)
		t0 = time.Now()
		if err := c.input.Backward(p.inCache, gs); err != nil {
			return fmt.Errorf("client: input backward: %w", err)
		}
		p.res.CompTime += time.Since(t0)
		sp.End()
		p.span.End()

		c.breakdown.Add(p.res.CommTime, p.res.CompTime, 0)
		c.m.iterations.Inc()
		c.m.comm.ObserveExemplar(p.res.CommTime.Seconds(), p.tid)
		c.m.comp.ObserveExemplar(p.res.CompTime.Seconds(), p.tid)
		c.m.iterationsBy.Inc()
		c.m.commBy.Observe(p.res.CommTime.Seconds())
		c.m.compBy.Observe(p.res.CompTime.Seconds())
		results = append(results, p.res)
		return nil
	}

	for i, mb := range batches {
		if len(mb.IDs) != c.cfg.Batch*c.cfg.Seq || len(mb.Targets) != len(mb.IDs) {
			return results, fmt.Errorf("client: microbatch %d is %d ids / %d targets, want %d",
				i, len(mb.IDs), len(mb.Targets), c.cfg.Batch*c.cfg.Seq)
		}
		iter := c.iter
		c.iter++
		var tid uint64
		if c.cfg.Tracer != nil {
			tid = obs.IterTraceID(c.cfg.ClientID, iter)
		}
		iterSpan := c.cfg.Tracer.BeginT(c.cfg.ClientID, "iteration", "iter", tid)
		var res StepResult

		// Input forward for this microbatch; the previous microbatch's
		// backward is in flight on the server while this runs.
		sp := c.cfg.Tracer.BeginT(c.cfg.ClientID, "input-forward", "compute", tid)
		t0 := time.Now()
		xc, inCache, err := c.input.Forward(mb.IDs, c.cfg.Batch, c.cfg.Seq, true)
		if err != nil {
			return results, fmt.Errorf("client: input forward: %w", err)
		}
		res.CompTime += time.Since(t0)
		sp.End()

		plain, packed, err := c.packWire(xc)
		if err != nil {
			return results, err
		}
		t0 = time.Now()
		if err := split.WriteMessage(c.conn, &split.ForwardReq{
			Iter: iter, Batch: c.cfg.Batch, Seq: c.cfg.Seq,
			Activations: plain, Packed: packed, TraceID: c.wireTrace(tid),
		}); err != nil {
			return results, fmt.Errorf("client: send forward: %w", err)
		}
		res.CommTime += time.Since(t0)
		fwdSent := time.Now()

		// Drain the previous microbatch while our forward request is
		// on the wire (and queued behind its backward on the server).
		if pending != nil {
			if err := finish(pending); err != nil {
				return results, err
			}
			pending = nil
		}

		c.m.overlapHidden.Observe(time.Since(fwdSent).Seconds())
		sp = c.cfg.Tracer.BeginT(c.cfg.ClientID, "forward-rtt", "comm", tid)
		t0 = time.Now()
		xs, redirect, err := c.expectForwardResp(iter)
		if err != nil {
			return results, err
		}
		if redirect != nil {
			return results, errors.New("client: migration redirect during pipelined step")
		}
		res.CommTime += time.Since(t0)
		sp.End()

		// Output forward, loss, output backward.
		sp = c.cfg.Tracer.BeginT(c.cfg.ClientID, "output-loss", "compute", tid)
		t0 = time.Now()
		logits, outCache, err := c.output.Forward(xs, true)
		if err != nil {
			return results, fmt.Errorf("client: output forward: %w", err)
		}
		loss, dlogits, err := nn.CrossEntropy(logits, mb.Targets)
		if err != nil {
			return results, fmt.Errorf("client: loss: %w", err)
		}
		gc, err := c.output.Backward(outCache, dlogits)
		if err != nil {
			return results, fmt.Errorf("client: output backward: %w", err)
		}
		res.CompTime += time.Since(t0)
		sp.End()
		res.Loss = loss
		res.Perplexity = nn.Perplexity(loss)

		// Ship the backward; its response is collected only after the
		// next microbatch's forward has been computed and sent.
		plain, packed, err = c.packWire(gc)
		if err != nil {
			return results, err
		}
		t0 = time.Now()
		if err := split.WriteMessage(c.conn, &split.BackwardReq{
			Iter: iter, Apply: i == len(batches)-1,
			Gradients: plain, Packed: packed, TraceID: c.wireTrace(tid),
		}); err != nil {
			return results, fmt.Errorf("client: send backward: %w", err)
		}
		res.CommTime += time.Since(t0)
		pending = &pendingMicro{
			iter: iter, tid: tid, inCache: inCache, span: iterSpan,
			res: res, sent: time.Now(),
		}
	}
	if err := finish(pending); err != nil {
		return results, err
	}

	// Optimizer step for the whole accumulation group, attributed to
	// the final microbatch like MicroStep(apply=true) would.
	t0 := time.Now()
	if err := c.optimizer.Step(c.params); err != nil {
		return results, fmt.Errorf("client: optimizer: %w", err)
	}
	nn.ZeroGrads(c.params)
	results[len(results)-1].CompTime += time.Since(t0)
	return results, nil
}

// Evaluate computes the loss over a batch without updating anything.
// It costs one forward round-trip.
func (c *Client) Evaluate(ids, targets []int) (float64, error) {
	if len(ids) != c.cfg.Batch*c.cfg.Seq || len(targets) != len(ids) {
		return 0, fmt.Errorf("client: batch is %d ids, want %d", len(ids), c.cfg.Batch*c.cfg.Seq)
	}
	xc, _, err := c.input.Forward(ids, c.cfg.Batch, c.cfg.Seq, false)
	if err != nil {
		return 0, fmt.Errorf("client: input forward: %w", err)
	}
	iter := c.iter
	c.iter++
	xs, err := c.forwardRoundTrip(&split.ForwardReq{
		Iter: iter, Batch: c.cfg.Batch, Seq: c.cfg.Seq, Activations: xc,
	})
	if err != nil {
		return 0, err
	}
	logits, _, err := c.output.Forward(xs, false)
	if err != nil {
		return 0, fmt.Errorf("client: output forward: %w", err)
	}
	loss, _, err := nn.CrossEntropy(logits, targets)
	return loss, err
}

// forwardRoundTrip sends a ForwardReq and waits for its response,
// following at most one migration redirect: the redirect displaces
// the forward, so after redialing the target (which restores the
// session from the staged snapshot) the same request is replayed
// there and the iteration completes as if nothing moved.
func (c *Client) forwardRoundTrip(req *split.ForwardReq) (*tensor.Tensor, error) {
	for attempt := 0; ; attempt++ {
		if err := split.WriteMessage(c.conn, req); err != nil {
			return nil, fmt.Errorf("client: send forward: %w", err)
		}
		xs, redirect, err := c.expectForwardResp(req.Iter)
		if err != nil {
			return nil, err
		}
		if redirect == nil {
			return xs, nil
		}
		if attempt > 0 {
			return nil, fmt.Errorf("client: second migration redirect in one iteration (to %s)", redirect.Target)
		}
		if err := c.followMigration(redirect); err != nil {
			return nil, err
		}
	}
}

// followMigration redials the redirect's target and resumes the
// session there with the redirect token. On failure the original
// connection is already unusable (the source server has torn the
// session down), so the error is terminal for this client.
func (c *Client) followMigration(m *split.MigrateMsg) error {
	conn, err := net.Dial("tcp", m.Target)
	if err != nil {
		return fmt.Errorf("client: migration redial %s: %w", m.Target, err)
	}
	old := c.conn
	c.conn = conn
	c.resumeToken = m.Token
	err = c.handshake()
	c.resumeToken = 0
	if err != nil {
		c.conn = old
		_ = conn.Close()
		return fmt.Errorf("client: migration to %s: %w", m.Target, err)
	}
	_ = old.Close()
	c.migrations++
	if c.cfg.OnMigrate != nil {
		c.cfg.OnMigrate(m.Target)
	}
	return nil
}

// Migrations reports how many times this client has been moved to
// another server mid-run.
func (c *Client) Migrations() int { return c.migrations }

// MigrateNegotiated reports whether the server accepted the migration
// feature at handshake.
func (c *Client) MigrateNegotiated() bool { return c.migrateOK }

func (c *Client) expectForwardResp(iter int) (*tensor.Tensor, *split.MigrateMsg, error) {
	msg, err := split.ReadMessage(c.conn)
	if err != nil {
		return nil, nil, fmt.Errorf("client: read forward response: %w", err)
	}
	switch m := msg.(type) {
	case *split.MigrateMsg:
		if !c.migrateOK {
			return nil, nil, fmt.Errorf("client: unexpected migration redirect (feature not negotiated)")
		}
		if m.Target == "" || m.Token == 0 {
			return nil, nil, fmt.Errorf("client: malformed migration redirect (target %q)", m.Target)
		}
		return nil, m, nil
	case *split.ForwardResp:
		if m.Iter != iter || (m.Activations == nil && m.Packed == nil) {
			return nil, nil, fmt.Errorf("client: bad forward response (iter %d)", m.Iter)
		}
		xs, err := c.unpackWire(m.Activations, m.Packed)
		if err != nil {
			return nil, nil, err
		}
		return xs, nil, nil
	case *split.ErrorMsg:
		if m.Retryable {
			return nil, nil, &RetryableError{
				RetryAfter: time.Duration(m.RetryAfterMs) * time.Millisecond,
				Reason:     m.Reason,
			}
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrRemote, m.Reason)
	default:
		return nil, nil, fmt.Errorf("client: unexpected %v", msg.MsgType())
	}
}

func (c *Client) expectBackwardResp(iter int) (*tensor.Tensor, error) {
	msg, err := split.ReadMessage(c.conn)
	if err != nil {
		return nil, fmt.Errorf("client: read backward response: %w", err)
	}
	switch m := msg.(type) {
	case *split.BackwardResp:
		if m.Iter != iter || (m.Gradients == nil && m.Packed == nil) {
			return nil, fmt.Errorf("client: bad backward response (iter %d)", m.Iter)
		}
		return c.unpackWire(m.Gradients, m.Packed)
	case *split.ErrorMsg:
		if m.Retryable {
			return nil, &RetryableError{
				RetryAfter: time.Duration(m.RetryAfterMs) * time.Millisecond,
				Reason:     m.Reason,
			}
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, m.Reason)
	default:
		return nil, fmt.Errorf("client: unexpected %v", msg.MsgType())
	}
}

// SaveAdapter serializes the client-side adapter parameters (φ_i).
// The server-side adapter φ_s stays with the server, mirroring the
// deployment reality that neither party holds the full fine-tuned
// model.
func (c *Client) SaveAdapter(w io.Writer) error {
	return checkpoint.Save(w, c.params)
}

// LoadAdapter restores previously saved client-side adapter
// parameters. The client must have been built with the same model and
// adapter configuration.
func (c *Client) LoadAdapter(r io.Reader) error {
	return checkpoint.Load(r, c.params)
}

// Breakdown returns the client's accumulated comm/comp split.
func (c *Client) Breakdown() *trace.Breakdown { return &c.breakdown }

// AdapterParams exposes the client-side trainable parameters.
func (c *Client) AdapterParams() []nn.Param { return c.params }

// Close sends Bye and closes the connection.
func (c *Client) Close() error {
	_ = split.WriteMessage(c.conn, &split.Bye{})
	return c.conn.Close()
}
