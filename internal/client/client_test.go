package client_test

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/gpu"
	"menos/internal/model"
	"menos/internal/server"
	"menos/internal/share"
	"menos/internal/split"
	"menos/internal/tensor"
)

const weightSeed = 77

func startServer(t *testing.T) string {
	t.Helper()
	store, err := share.NewStore(tensor.NewRNG(weightSeed), model.OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: store, OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

func validCfg(id string) client.Config {
	return client.Config{
		ClientID:    id,
		Model:       model.OPTTiny(),
		WeightSeed:  weightSeed,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 5,
		Batch:       2,
		Seq:         8,
	}
}

func batch(n int, seed uint64) ([]int, []int) {
	r := tensor.NewRNG(seed)
	ids := make([]int, n)
	targets := make([]int, n)
	for i := range ids {
		ids[i] = r.Intn(model.OPTTiny().Vocab)
		targets[i] = r.Intn(model.OPTTiny().Vocab)
	}
	return ids, targets
}

func TestConfigValidation(t *testing.T) {
	addr := startServer(t)
	tests := []struct {
		name   string
		mutate func(*client.Config)
	}{
		{"missing id", func(c *client.Config) { c.ClientID = "" }},
		{"zero batch", func(c *client.Config) { c.Batch = 0 }},
		{"zero seq", func(c *client.Config) { c.Seq = 0 }},
		{"bad optimizer", func(c *client.Config) { c.Optimizer = "nope" }},
		{"bad adapter", func(c *client.Config) { c.Adapter = adapter.Spec{Kind: adapter.KindLoRA} }},
		{"bad model", func(c *client.Config) { c.Model.Dim = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validCfg("validate")
			tt.mutate(&cfg)
			if _, err := client.Dial(addr, cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := client.Dial("127.0.0.1:1", validCfg("x")); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestStepBatchSizeValidation(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr, validCfg("bsize"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Step([]int{1, 2}, []int{1, 2}); err == nil {
		t.Fatal("short batch accepted")
	}
	ids, _ := batch(16, 1)
	if _, err := c.Step(ids, []int{1}); err == nil {
		t.Fatal("mismatched targets accepted")
	}
	if _, err := c.Evaluate([]int{1}, []int{1}); err == nil {
		t.Fatal("short evaluate batch accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	addr := startServer(t)
	cfg := validCfg("defaults")
	cfg.Cut = 0        // -> DefaultCut
	cfg.LR = 0         // -> 1e-3
	cfg.Optimizer = "" // -> adam
	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, targets := batch(16, 2)
	if _, err := c.Step(ids, targets); err != nil {
		t.Fatal(err)
	}
}

func TestDemandsReported(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr, validCfg("demands"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fwd, bwd := c.Demands()
	if fwd <= 0 || bwd <= 0 {
		t.Fatalf("demands = %d, %d", fwd, bwd)
	}
	if bwd <= fwd {
		t.Fatalf("backward demand %d not above forward %d", bwd, fwd)
	}
}

func TestBreakdownAccumulates(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr, validCfg("breakdown"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, targets := batch(16, 3)
	for i := 0; i < 3; i++ {
		if _, err := c.Step(ids, targets); err != nil {
			t.Fatal(err)
		}
	}
	if c.Breakdown().Iterations() != 3 {
		t.Fatalf("iterations = %d", c.Breakdown().Iterations())
	}
}

// TestAdapterCheckpointResume: save the adapter mid-session, start a
// fresh client, restore, and verify the evaluation matches.
func TestAdapterCheckpointResume(t *testing.T) {
	addr := startServer(t)
	cfg := validCfg("ckpt-a")
	c1, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := batch(16, 4)
	for i := 0; i < 5; i++ {
		if _, err := c1.Step(ids, targets); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := c1.SaveAdapter(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), buf.Bytes()...)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.ClientID = "ckpt-b"
	c2, err := client.Dial(addr, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.LoadAdapter(bytes.NewReader(snapshot)); err != nil {
		t.Fatal(err)
	}
	// Restored client-side adapter: further steps work.
	if _, err := c2.Step(ids, targets); err != nil {
		t.Fatal(err)
	}

	// Wrong-shape restore rejected.
	cfg3 := cfg
	cfg3.ClientID = "ckpt-c"
	cfg3.Adapter = adapter.Spec{Kind: adapter.KindLoRA, Rank: 4, Alpha: 16,
		Targets: []adapter.Target{adapter.TargetQ, adapter.TargetV}}
	c3, err := client.Dial(addr, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := c3.LoadAdapter(bytes.NewReader(snapshot)); err == nil {
		t.Fatal("rank-4 client loaded rank-8 checkpoint")
	}
}

// TestServerErrorSurfaced: the client maps server ErrorMsg frames to
// ErrRemote.
func TestServerErrorSurfaced(t *testing.T) {
	// A fake "server" that acks the handshake then always errors.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := split.ReadMessage(conn); err != nil {
			return
		}
		_ = split.WriteMessage(conn, &split.HelloAck{OK: true})
		if _, err := split.ReadMessage(conn); err != nil {
			return
		}
		_ = split.WriteMessage(conn, &split.ErrorMsg{Reason: "injected failure"})
	}()

	c, err := client.Dial(l.Addr().String(), validCfg("remote-err"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, targets := batch(16, 5)
	_, err = c.Step(ids, targets)
	if !errors.Is(err, client.ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

// TestGarbageServerRejected: a non-protocol peer produces a clean
// error, not a hang or panic.
func TestGarbageServerRejected(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := split.ReadMessage(conn); err != nil {
			return
		}
		_, _ = conn.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
	}()
	if _, err := client.Dial(l.Addr().String(), validCfg("garbage")); err == nil {
		t.Fatal("garbage handshake accepted")
	}
}

// TestServerOOMRejection: a server with a tiny GPU budget rejects the
// client at admission with a clear reason, instead of failing later.
func TestServerOOMRejection(t *testing.T) {
	store, err := share.NewStore(tensor.NewRNG(weightSeed), model.OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	// Budget barely above the base model: reservations cannot fit.
	budget := store.BaseParamBytes() + 1<<20
	srv, err := server.New(server.Config{
		Store: store,
		GPU:   gpu.NewDevice(gpu.Spec{Name: "tiny", MemoryBytes: budget}),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	_, err = client.Dial(l.Addr().String(), validCfg("oom"))
	if !errors.Is(err, client.ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
}

// TestGenerateThroughSplit: autoregressive decoding where the body
// runs on the server — one round trip per token.
func TestGenerateThroughSplit(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr, validCfg("gen"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Generate(tensor.NewRNG(1), []int{1, 2, 3}, 5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("generated %d tokens", len(out))
	}
	for _, id := range out {
		if id < 0 || id >= model.OPTTiny().Vocab {
			t.Fatalf("token %d out of vocab", id)
		}
	}
	// Greedy decoding through the split equals greedy decoding on an
	// identical local model (the inference-time equivalence claim).
	local, err := model.New(tensor.NewRNG(weightSeed), model.OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	// Note: the client has adapters attached (fresh LoRA = identity),
	// so the local un-adapted model matches exactly.
	wantSeq, err := local.Generate(tensor.NewRNG(1), []int{1, 2, 3}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotSeq, err := c.Generate(tensor.NewRNG(1), []int{1, 2, 3}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSeq {
		if wantSeq[i] != gotSeq[i] {
			t.Fatalf("split greedy decoding diverges from local at %d: %v vs %v",
				i, gotSeq, wantSeq)
		}
	}
	// Validation.
	if _, err := c.Generate(tensor.NewRNG(1), nil, 2, 1); err == nil {
		t.Fatal("empty prompt accepted")
	}
	if _, err := c.Generate(tensor.NewRNG(1), []int{999}, 2, 1); err == nil {
		t.Fatal("out-of-vocab prompt accepted")
	}
	if _, err := c.Generate(tensor.NewRNG(1), []int{1}, 2, -1); err == nil {
		t.Fatal("negative temperature accepted")
	}
}

// TestGenerateAfterSteps: generation interleaves with training steps
// without corrupting iteration bookkeeping.
func TestGenerateAfterSteps(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr, validCfg("gen-mix"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, targets := batch(16, 8)
	if _, err := c.Step(ids, targets); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Generate(tensor.NewRNG(2), []int{1, 2}, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(ids, targets); err != nil {
		t.Fatal(err)
	}
}

// TestGradientAccumulation: micro-steps accumulate on both sides of
// the split; parameters move only on the applying step, and the result
// after accumulation matches a local model driven identically.
func TestGradientAccumulation(t *testing.T) {
	addr := startServer(t)
	cfg := validCfg("accum")
	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids1, targets1 := batch(16, 10)
	ids2, targets2 := batch(16, 11)

	// Evaluation before any apply must be unchanged by a non-applying
	// micro-step.
	before, err := c.Evaluate(ids1, targets1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MicroStep(ids1, targets1, false); err != nil {
		t.Fatal(err)
	}
	mid, err := c.Evaluate(ids1, targets1)
	if err != nil {
		t.Fatal(err)
	}
	if mid != before {
		t.Fatalf("non-applying micro-step moved parameters: %v -> %v", before, mid)
	}
	// The applying step folds both micro-batches in.
	if _, err := c.MicroStep(ids2, targets2, true); err != nil {
		t.Fatal(err)
	}
	after, err := c.Evaluate(ids1, targets1)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("applying step did not move parameters")
	}
}

// TestGenerateIncremental: KV-cached split decoding matches the
// non-cached split path token-for-token under greedy decoding, and the
// server-side KV reservation is released when the session closes.
func TestGenerateIncremental(t *testing.T) {
	store, err := share.NewStore(tensor.NewRNG(weightSeed), model.OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: store, OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	c, err := client.Dial(l.Addr().String(), validCfg("inc"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prompt := []int{1, 2, 3}
	slow, err := c.Generate(tensor.NewRNG(1), prompt, 6, 0)
	if err != nil {
		t.Fatal(err)
	}

	before := srv.Scheduler().Available()
	fast, kvBytes, err := c.GenerateIncremental(tensor.NewRNG(1), prompt, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kvBytes <= 0 {
		t.Fatal("no KV bytes reported")
	}
	// DecodeClose is processed asynchronously; wait for the reserve to
	// drain back.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Scheduler().Available() != before && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.Scheduler().Available(); got != before {
		t.Fatalf("KV reservation leaked: %d != %d", got, before)
	}
	for i := range slow {
		if slow[i] != fast[i] {
			t.Fatalf("token %d: windowed %v vs incremental %v", i, slow, fast)
		}
	}

	// Training still works after a decode session.
	ids, targets := batch(16, 12)
	if _, err := c.Step(ids, targets); err != nil {
		t.Fatal(err)
	}

	// Over-capacity sessions are rejected cleanly.
	long := make([]int, model.OPTTiny().MaxSeq+1)
	for i := range long {
		long[i] = 1
	}
	if _, _, err := c.GenerateIncremental(tensor.NewRNG(1), long, 1, 0); err == nil {
		t.Fatal("over-capacity session accepted")
	}
	// Validation.
	if _, _, err := c.GenerateIncremental(tensor.NewRNG(1), nil, 1, 0); err == nil {
		t.Fatal("empty prompt accepted")
	}
	if _, _, err := c.GenerateIncremental(tensor.NewRNG(1), []int{1}, 1, -1); err == nil {
		t.Fatal("negative temperature accepted")
	}
}
