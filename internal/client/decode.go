package client

import (
	"fmt"

	"menos/internal/split"
	"menos/internal/tensor"
)

// GenerateIncremental decodes through the split deployment with KV
// caches on both sides: the client caches its input-section blocks
// locally, and the server holds the body-side cache in a decode
// session whose memory is reserved through the Menos scheduler. One
// single-row round-trip per token, O(1) model work per side.
//
// ServerKVBytes in the result reports what the session reserved on the
// server — the inference-time memory the Menos design manages.
func (c *Client) GenerateIncremental(rng *tensor.RNG, prompt []int, maxNew int, temperature float64) (tokens []int, serverKVBytes int64, err error) {
	if len(prompt) == 0 {
		return nil, 0, fmt.Errorf("client: empty prompt")
	}
	if temperature < 0 {
		return nil, 0, fmt.Errorf("client: negative temperature %v", temperature)
	}
	for _, id := range prompt {
		if id < 0 || id >= c.cfg.Model.Vocab {
			return nil, 0, fmt.Errorf("client: prompt token %d out of vocab", id)
		}
	}
	capacity := len(prompt) + maxNew
	if capacity > c.cfg.Model.MaxSeq {
		return nil, 0, fmt.Errorf("client: %d tokens exceed MaxSeq %d", capacity, c.cfg.Model.MaxSeq)
	}

	// Open the server-side session.
	if err := split.WriteMessage(c.conn, &split.DecodeOpen{Capacity: capacity}); err != nil {
		return nil, 0, fmt.Errorf("client: decode open: %w", err)
	}
	msg, err := split.ReadMessage(c.conn)
	if err != nil {
		return nil, 0, fmt.Errorf("client: decode ack: %w", err)
	}
	ack, ok := msg.(*split.DecodeAck)
	if !ok {
		return nil, 0, fmt.Errorf("client: expected decode ack, got %v", msg.MsgType())
	}
	if !ack.OK {
		return nil, 0, fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}
	defer func() {
		if werr := split.WriteMessage(c.conn, &split.DecodeClose{}); werr != nil && err == nil {
			err = fmt.Errorf("client: decode close: %w", werr)
		}
	}()

	// Client-side caches for the input-section blocks.
	dim := c.cfg.Model.Dim
	keys := make([]*tensor.Tensor, c.cfg.Cut)
	values := make([]*tensor.Tensor, c.cfg.Cut)
	for i := range keys {
		keys[i] = tensor.New(capacity, dim)
		values[i] = tensor.New(capacity, dim)
	}

	step := func(tokenID, pos int) (*tensor.Tensor, error) {
		x, err := c.local.Embed.Forward([]int{tokenID}, nil)
		if err != nil {
			return nil, fmt.Errorf("client: decode embed: %w", err)
		}
		if c.local.Pos != nil {
			pe, err := c.local.Pos.Forward([]int{pos}, nil)
			if err != nil {
				return nil, fmt.Errorf("client: decode positions: %w", err)
			}
			if err := tensor.Add(x, x, pe); err != nil {
				return nil, fmt.Errorf("client: decode position add: %w", err)
			}
		}
		for i := 0; i < c.cfg.Cut; i++ {
			y, err := c.local.Blocks[i].DecodeStep(x, pos, keys[i], values[i])
			if err != nil {
				return nil, fmt.Errorf("client: decode block %d: %w", i, err)
			}
			x = y
		}
		// Body runs on the server.
		if err := split.WriteMessage(c.conn, &split.DecodeReq{Pos: pos, Activation: x}); err != nil {
			return nil, fmt.Errorf("client: decode send: %w", err)
		}
		resp, err := split.ReadMessage(c.conn)
		if err != nil {
			return nil, fmt.Errorf("client: decode recv: %w", err)
		}
		switch r := resp.(type) {
		case *split.DecodeResp:
			if r.Pos != pos || r.Activation == nil {
				return nil, fmt.Errorf("client: bad decode response at %d", pos)
			}
			// Output head locally.
			n, _, err := c.local.Norm.Apply(r.Activation, false)
			if err != nil {
				return nil, fmt.Errorf("client: decode norm: %w", err)
			}
			logits, err := c.local.LMHead.Forward(n, nil)
			if err != nil {
				return nil, fmt.Errorf("client: decode head: %w", err)
			}
			return logits, nil
		case *split.ErrorMsg:
			return nil, fmt.Errorf("%w: %s", ErrRemote, r.Reason)
		default:
			return nil, fmt.Errorf("client: unexpected %v", resp.MsgType())
		}
	}

	tokens = append([]int(nil), prompt...)
	var logits *tensor.Tensor
	pos := 0
	for _, id := range prompt {
		logits, err = step(id, pos)
		if err != nil {
			return nil, ack.KVBytes, err
		}
		pos++
	}
	for i := 0; i < maxNew; i++ {
		next := sampleToken(rng, logits.Row(0), temperature)
		tokens = append(tokens, next)
		if i == maxNew-1 {
			break
		}
		logits, err = step(next, pos)
		if err != nil {
			return nil, ack.KVBytes, err
		}
		pos++
	}
	return tokens, ack.KVBytes, nil
}
