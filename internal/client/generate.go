package client

import (
	"fmt"
	"math"

	"menos/internal/split"
	"menos/internal/tensor"
)

// Generate continues the prompt autoregressively *through the split
// deployment*: the input section runs locally, the body on the Menos
// server, the output head locally, one server round-trip per token.
// Temperature 0 means greedy decoding. The context window is capped at
// the session's profiled sequence length, keeping every request within
// the server's profiled memory demand.
func (c *Client) Generate(rng *tensor.RNG, prompt []int, maxNew int, temperature float64) ([]int, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("client: empty prompt")
	}
	if temperature < 0 {
		return nil, fmt.Errorf("client: negative temperature %v", temperature)
	}
	for _, id := range prompt {
		if id < 0 || id >= c.cfg.Model.Vocab {
			return nil, fmt.Errorf("client: prompt token %d out of vocab", id)
		}
	}
	seq := append([]int(nil), prompt...)
	for step := 0; step < maxNew; step++ {
		window := seq
		if len(window) > c.cfg.Seq {
			window = window[len(window)-c.cfg.Seq:]
		}
		xc, _, err := c.input.Forward(window, 1, len(window), false)
		if err != nil {
			return nil, fmt.Errorf("client: generate input: %w", err)
		}
		iter := c.iter
		c.iter++
		xs, err := c.forwardRoundTrip(&split.ForwardReq{
			Iter: iter, Batch: 1, Seq: len(window), Activations: xc,
		})
		if err != nil {
			return nil, err
		}
		logits, _, err := c.output.Forward(xs, false)
		if err != nil {
			return nil, fmt.Errorf("client: generate output: %w", err)
		}
		last := logits.Row(logits.Dim(0) - 1)
		seq = append(seq, sampleToken(rng, last, temperature))
	}
	return seq, nil
}

// sampleToken draws from softmax(logits/temperature); temperature 0 is
// argmax.
func sampleToken(rng *tensor.RNG, logits *tensor.Tensor, temperature float64) int {
	vocab := logits.Len()
	if temperature == 0 {
		best, bestV := 0, logits.At(0)
		for i := 1; i < vocab; i++ {
			if v := logits.At(i); v > bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	var sum float64
	probs := make([]float64, vocab)
	maxLogit := float64(logits.At(0))
	for i := 1; i < vocab; i++ {
		if v := float64(logits.At(i)); v > maxLogit {
			maxLogit = v
		}
	}
	for i := 0; i < vocab; i++ {
		p := math.Exp((float64(logits.At(i)) - maxLogit) / temperature)
		probs[i] = p
		sum += p
	}
	u := rng.Float64() * sum
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return vocab - 1
}
