package client_test

import (
	"bytes"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"menos/internal/client"
	"menos/internal/model"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/server"
	"menos/internal/share"
	"menos/internal/split"
	"menos/internal/tensor"
)

// startWireServer is startServer with a wire codec and a metrics
// registry, so the tests can read the server side of the transport
// counters.
func startWireServer(t *testing.T, codec quant.Codec) (string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	store, err := share.NewStore(tensor.NewRNG(weightSeed), model.OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: store, OnDemand: true, Metrics: reg, WireCodec: codec})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String(), reg
}

// runTraining runs a full OPTTiny fine-tuning loop over a fresh
// server/client pair with the given codec on both sides, returning the
// per-step losses, the final client adapter checkpoint, and both
// registries.
func runTraining(t *testing.T, serverCodec, clientCodec quant.Codec, steps int) ([]float64, []byte, *obs.Registry, *obs.Registry) {
	t.Helper()
	addr, sreg := startWireServer(t, serverCodec)
	creg := obs.NewRegistry()
	cfg := validCfg("wire-run")
	cfg.Metrics = creg
	cfg.WireCodec = clientCodec
	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The same batch every step: memorization drives the loss down, so
	// convergence (and cross-codec parity of the optimum) is testable.
	ids, targets := batch(16, 100)
	losses := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		res, err := c.Step(ids, targets)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, res.Loss)
	}
	var buf bytes.Buffer
	if err := c.SaveAdapter(&buf); err != nil {
		t.Fatal(err)
	}
	return losses, buf.Bytes(), sreg, creg
}

// TestWireCompressionNegotiation: the feature only turns on when both
// peers are configured for it, and negotiation failure means plain fp32
// frames, not an error.
func TestWireCompressionNegotiation(t *testing.T) {
	cases := []struct {
		name           string
		server, client quant.Codec
		want           bool
	}{
		{"both int8", quant.CodecInt8, quant.CodecInt8, true},
		{"mixed codecs", quant.CodecFP16, quant.CodecInt8, true},
		{"server off", quant.CodecFP32, quant.CodecInt8, false},
		{"client off", quant.CodecInt8, quant.CodecFP32, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr, _ := startWireServer(t, tc.server)
			cfg := validCfg("nego")
			cfg.WireCodec = tc.client
			c, err := client.Dial(addr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := c.CompressionNegotiated(); got != tc.want {
				t.Fatalf("negotiated = %v, want %v", got, tc.want)
			}
			// Whatever was negotiated, training works.
			ids, targets := batch(16, 42)
			if _, err := c.Step(ids, targets); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWireConvergenceParity is the acceptance gate for lossy transport:
// a full OPTTiny run converges to (near) the same final loss whether
// the activations crossed the wire in fp32, fp16 or int8 — and the
// fp32 path is bit-identical whether or not the server could have
// compressed, because an un-negotiated session never quantizes.
func TestWireConvergenceParity(t *testing.T) {
	const steps = 12
	fp32, adapter32, _, c32 := runTraining(t, quant.CodecFP32, quant.CodecFP32, steps)
	fp16, _, _, _ := runTraining(t, quant.CodecFP16, quant.CodecFP16, steps)
	int8, _, _, _ := runTraining(t, quant.CodecInt8, quant.CodecInt8, steps)

	if fp32[steps-1] >= fp32[0] {
		t.Fatalf("fp32 run did not converge: %v -> %v", fp32[0], fp32[steps-1])
	}
	if got := c32.Counter(obs.MetricWireCompressedBytes).Value(); got != 0 {
		t.Fatalf("fp32 run compressed %d bytes", got)
	}
	// fp16 keeps ~3 decimal digits of the activations; int8 is the
	// aggressive end. Both must land within tolerance of the fp32 loss.
	if d := math.Abs(fp16[steps-1] - fp32[steps-1]); d > 0.02 {
		t.Fatalf("fp16 final loss off by %v (fp32 %v, fp16 %v)", d, fp32[steps-1], fp16[steps-1])
	}
	if d := math.Abs(int8[steps-1] - fp32[steps-1]); d > 0.1 {
		t.Fatalf("int8 final loss off by %v (fp32 %v, int8 %v)", d, fp32[steps-1], int8[steps-1])
	}

	// fp32 over a compression-capable server (client declines): every
	// loss and the final adapter are bit-identical to the plain run —
	// the negotiation gate, not luck, keeps the fp32 path exact.
	declined, adapterDeclined, _, cd := runTraining(t, quant.CodecInt8, quant.CodecFP32, steps)
	for i := range fp32 {
		if fp32[i] != declined[i] {
			t.Fatalf("step %d: fp32 loss %v != declined-compression loss %v", i, fp32[i], declined[i])
		}
	}
	if !bytes.Equal(adapter32, adapterDeclined) {
		t.Fatal("fp32 adapter checkpoints differ across server codec configs")
	}
	if got := cd.Counter(obs.MetricWireCompressedBytes).Value(); got != 0 {
		t.Fatalf("declined-compression run compressed %d bytes", got)
	}
}

// TestWireByteSavings pins the acceptance criterion: int8 transport
// moves at least 60% fewer payload bytes than the fp32 equivalent, on
// both directions of the wire.
func TestWireByteSavings(t *testing.T) {
	_, _, sreg, creg := runTraining(t, quant.CodecInt8, quant.CodecInt8, 3)
	for _, side := range []struct {
		name string
		reg  *obs.Registry
	}{{"client", creg}, {"server", sreg}} {
		compressed := side.reg.Counter(obs.MetricWireCompressedBytes).Value()
		raw := side.reg.Counter(obs.MetricWireRawBytes).Value()
		if compressed == 0 || raw == 0 {
			t.Fatalf("%s: no transport bytes recorded (compressed %d, raw %d)", side.name, compressed, raw)
		}
		if float64(compressed) > 0.4*float64(raw) {
			t.Fatalf("%s: compressed %dB not <=40%% of raw %dB", side.name, compressed, raw)
		}
		if side.reg.Histogram(obs.MetricWireCodecSeconds, nil).Count() == 0 {
			t.Fatalf("%s: codec time not observed", side.name)
		}
	}
}

// TestStepPipelinedMatchesSequential: the double-buffered schedule is a
// pure latency optimization — at fp32 every per-microbatch loss and the
// final adapter state are bit-identical to the sequential MicroStep
// loop, because the server processes a connection's requests in order
// and the client only moves gradient-free work across the overlap.
func TestStepPipelinedMatchesSequential(t *testing.T) {
	const groups, micros = 3, 4
	mbs := func(group int) []client.MicroBatch {
		out := make([]client.MicroBatch, micros)
		for i := range out {
			ids, targets := batch(16, uint64(1000+group*micros+i))
			out[i] = client.MicroBatch{IDs: ids, Targets: targets}
		}
		return out
	}

	// Sequential reference.
	addrA, _ := startWireServer(t, quant.CodecFP32)
	seq, err := client.Dial(addrA, validCfg("seq"))
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	var seqLosses []float64
	seqStart := time.Now()
	for g := 0; g < groups; g++ {
		for i, mb := range mbs(g) {
			res, err := seq.MicroStep(mb.IDs, mb.Targets, i == micros-1)
			if err != nil {
				t.Fatal(err)
			}
			seqLosses = append(seqLosses, res.Loss)
		}
	}
	seqElapsed := time.Since(seqStart)
	var seqAdapter bytes.Buffer
	if err := seq.SaveAdapter(&seqAdapter); err != nil {
		t.Fatal(err)
	}

	// Pipelined run against a fresh server with identical state.
	addrB, _ := startWireServer(t, quant.CodecFP32)
	creg := obs.NewRegistry()
	cfg := validCfg("pipe")
	cfg.Metrics = creg
	pipe, err := client.Dial(addrB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	var pipeLosses []float64
	pipeStart := time.Now()
	for g := 0; g < groups; g++ {
		results, err := pipe.StepPipelined(mbs(g))
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			pipeLosses = append(pipeLosses, res.Loss)
		}
	}
	pipeElapsed := time.Since(pipeStart)
	var pipeAdapter bytes.Buffer
	if err := pipe.SaveAdapter(&pipeAdapter); err != nil {
		t.Fatal(err)
	}

	if len(seqLosses) != len(pipeLosses) {
		t.Fatalf("microbatch counts differ: %d vs %d", len(seqLosses), len(pipeLosses))
	}
	for i := range seqLosses {
		if seqLosses[i] != pipeLosses[i] {
			t.Fatalf("microbatch %d: sequential loss %v != pipelined %v", i, seqLosses[i], pipeLosses[i])
		}
	}
	if !bytes.Equal(seqAdapter.Bytes(), pipeAdapter.Bytes()) {
		t.Fatal("adapter state diverged between sequential and pipelined stepping")
	}
	if h := creg.Histogram(obs.MetricOverlapHiddenSeconds, nil); h.Count() == 0 {
		t.Fatal("pipelined run observed no hidden overlap time")
	}
	// Loopback has almost nothing to hide, so only a gross regression
	// is flagged: the pipeline must not be meaningfully slower than the
	// sequential loop (the simulator sweep asserts the real speedup).
	if pipeElapsed > 2*seqElapsed+100*time.Millisecond {
		t.Fatalf("pipelined run %v much slower than sequential %v", pipeElapsed, seqElapsed)
	}
}

// TestStepPipelinedCompressed composes the two tentpole halves: a
// pipelined int8 run trains end to end and still moves fewer bytes.
func TestStepPipelinedCompressed(t *testing.T) {
	addr, _ := startWireServer(t, quant.CodecInt8)
	creg := obs.NewRegistry()
	cfg := validCfg("pipe-int8")
	cfg.Metrics = creg
	cfg.WireCodec = quant.CodecInt8
	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.CompressionNegotiated() {
		t.Fatal("compression not negotiated")
	}
	mb := make([]client.MicroBatch, 3)
	for i := range mb {
		ids, targets := batch(16, uint64(2000+i))
		mb[i] = client.MicroBatch{IDs: ids, Targets: targets}
	}
	var first, last float64
	for g := 0; g < 6; g++ {
		results, err := c.StepPipelined(mb)
		if err != nil {
			t.Fatal(err)
		}
		// Track the same microbatch's loss across groups so the
		// comparison sees learning, not data variation.
		if g == 0 {
			first = results[0].Loss
		}
		last = results[0].Loss
	}
	if math.IsNaN(last) || last >= first {
		t.Fatalf("compressed pipelined run did not converge: %v -> %v", first, last)
	}
	compressed := creg.Counter(obs.MetricWireCompressedBytes).Value()
	raw := creg.Counter(obs.MetricWireRawBytes).Value()
	if compressed == 0 || float64(compressed) > 0.4*float64(raw) {
		t.Fatalf("pipelined compression ineffective: %dB of %dB", compressed, raw)
	}
}

// TestStepPipelinedValidation: bad microbatch geometry and empty
// pipelines fail fast without touching the wire.
func TestStepPipelinedValidation(t *testing.T) {
	addr, _ := startWireServer(t, quant.CodecFP32)
	c, err := client.Dial(addr, validCfg("pipe-bad"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.StepPipelined(nil); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if _, err := c.StepPipelined([]client.MicroBatch{{IDs: []int{1}, Targets: []int{1}}}); err == nil {
		t.Fatal("short microbatch accepted")
	}
}

// TestCompressedClientRedialsLegacyServer pins the interop contract: a
// compression-enabled client whose extended hello makes a version-1
// server hang up redials once with the offer withdrawn and completes a
// plain handshake.
func TestCompressedClientRedialsLegacyServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for dial := 0; ; dial++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Read one frame header the way a version-1 peer would: an
			// unknown version is a protocol error, hang up mid-handshake.
			header := make([]byte, 8)
			if _, err := io.ReadFull(conn, header); err != nil {
				conn.Close()
				continue
			}
			if header[2] != split.Version {
				conn.Close()
				continue
			}
			// Plain version-1 hello: drain the payload and ack with no
			// features, like a pre-extension server.
			n := int(uint32(header[4]) | uint32(header[5])<<8 | uint32(header[6])<<16 | uint32(header[7])<<24)
			if _, err := io.CopyN(io.Discard, conn, int64(n)); err != nil {
				conn.Close()
				continue
			}
			_ = split.WriteMessage(conn, &split.HelloAck{OK: true, ForwardBytes: 1, BackwardBytes: 2})
			// Keep the session open until the client hangs up.
			_, _ = split.ReadMessage(conn)
			conn.Close()
		}
	}()

	cfg := validCfg("legacy")
	cfg.WireCodec = quant.CodecInt8
	c, err := client.Dial(l.Addr().String(), cfg)
	if err != nil {
		t.Fatalf("compression-enabled client failed against legacy server: %v", err)
	}
	defer c.Close()
	if c.CompressionNegotiated() {
		t.Fatal("legacy server cannot have negotiated compression")
	}
}
