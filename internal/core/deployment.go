// Package core assembles the Menos framework's pieces — shared
// parameter store, scheduler, server, clients — into deployable units:
// the integration layer behind the public menos package and the
// command-line tools.
package core

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"menos/internal/checkpoint"
	"menos/internal/client"
	"menos/internal/gpu"
	"menos/internal/model"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/sched"
	"menos/internal/server"
	"menos/internal/share"
	"menos/internal/tensor"
)

// DeploymentConfig configures a full Menos server deployment.
type DeploymentConfig struct {
	// Model selects the hosted base model by preset name (e.g.
	// "opt-tiny") or explicit config.
	Model model.Config
	// WeightSeed is the model owner's initialization seed; clients
	// must be built with the same seed.
	WeightSeed uint64
	// GPU selects the simulated device budget (default V100).
	GPU gpu.Spec
	// SchedPolicy is the scheduling discipline (default
	// FCFS+backfill).
	SchedPolicy sched.Policy
	// PreserveMemory disables on-demand allocation (Fig. 3(b)
	// ablation); the default is the Menos policy of Fig. 3(d).
	PreserveMemory bool
	// WeightsFile optionally loads the base weights from a checkpoint
	// exported with checkpoint.SaveModelFile, overriding the
	// seed-derived initialization — how a real pre-trained model is
	// deployed.
	WeightsFile string
	// BaseQuant quantizes the shared base's transformer blocks
	// (QLoRA-style); the zero value keeps fp32. Clients keep their
	// own sections in fp32 either way.
	BaseQuant quant.Precision
	// SLO, when enabled, activates adaptive admission control on the
	// server's scheduler (docs/ADMISSION.md); the zero value keeps the
	// plain Algorithm-2 behaviour.
	SLO sched.SLO
	// Batch, when enabled, coalesces compatible LoRA iteration
	// requests into batched kernel invocations over the shared base
	// (docs/BATCHING.md). Requires on-demand serving; the zero value
	// keeps per-request execution.
	Batch sched.BatchPolicy
	// WireCodec compresses outbound activation/gradient payloads for
	// clients that negotiated FeatureActivationCompression
	// (docs/WIRE.md). The zero value (fp32) disables the feature:
	// frames stay byte-identical to a pre-compression server.
	WireCodec quant.Codec
	// Logger receives server events; nil silences them.
	Logger *log.Logger
	// Metrics, when set, instruments the server's scheduler, GPU and
	// serving loop against the registry (serve it with obs.Handler).
	Metrics *obs.Registry
	// Tracer, when set, records per-request spans (admission, grant
	// waits, compute segments) on the wall clock. Server spans carry
	// the trace IDs negotiated with tracing clients, so a client trace
	// and this server's trace merge into one timeline
	// (obs.WriteMergedChromeTrace).
	Tracer *obs.Tracer
	// Flight, when set, snapshots the recent trace window and metrics
	// to disk on shed, OOM-rejection and admission-state transitions.
	Flight *obs.FlightRecorder
	// ServerID is the server's fleet identity, echoed by /loadz.
	ServerID int
	// TenantCap bounds per-client accounting cardinality (0 =
	// obs.DefaultVecCap); tenants past it aggregate into "other".
	TenantCap int
}

// Deployment is a running Menos server bound to a listener.
type Deployment struct {
	Store  *share.Store
	Server *server.Server

	mu       sync.Mutex
	listener net.Listener
	serveErr chan error
}

// NewDeployment builds the shared store and server (the model is
// "preloaded" at this point) without binding a listener yet.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if cfg.WeightSeed == 0 {
		cfg.WeightSeed = 1
	}
	if cfg.GPU.MemoryBytes == 0 {
		cfg.GPU = gpu.V100()
	}
	m, err := model.New(tensor.NewRNG(cfg.WeightSeed), cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("core: build model: %w", err)
	}
	if cfg.WeightsFile != "" {
		if err := checkpoint.LoadModelFile(cfg.WeightsFile, m); err != nil {
			return nil, fmt.Errorf("core: load weights: %w", err)
		}
	}
	if cfg.BaseQuant != 0 {
		if _, err := quant.QuantizeBlocks(m.Blocks, cfg.BaseQuant); err != nil {
			return nil, fmt.Errorf("core: quantize base: %w", err)
		}
	}
	store, err := share.NewStoreFromModel(m)
	if err != nil {
		return nil, fmt.Errorf("core: build store: %w", err)
	}
	srv, err := server.New(server.Config{
		Store:       store,
		GPU:         gpu.NewDevice(cfg.GPU),
		SchedPolicy: cfg.SchedPolicy,
		OnDemand:    !cfg.PreserveMemory,
		SLO:         cfg.SLO,
		Batch:       cfg.Batch,
		WireCodec:   cfg.WireCodec,
		Logger:      cfg.Logger,
		Metrics:     cfg.Metrics,
		Tracer:      cfg.Tracer,
		Flight:      cfg.Flight,
		ServerID:    cfg.ServerID,
		TenantCap:   cfg.TenantCap,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build server: %w", err)
	}
	return &Deployment{Store: store, Server: srv, serveErr: make(chan error, 1)}, nil
}

// Listen binds addr ("host:port"; ":0" for ephemeral) and starts
// serving in the background. It returns the bound address.
func (d *Deployment) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("core: listen %s: %w", addr, err)
	}
	d.mu.Lock()
	d.listener = l
	d.mu.Unlock()
	go func() { d.serveErr <- d.Server.Serve(l) }()
	return l.Addr().String(), nil
}

// Wait blocks until the serve loop exits, returning its error (nil for
// a clean Close).
func (d *Deployment) Wait() error {
	err := <-d.serveErr
	if errors.Is(err, server.ErrServerClosed) {
		return nil
	}
	return err
}

// Close shuts the deployment down.
func (d *Deployment) Close() error {
	return d.Server.Close()
}

// Addr returns the bound address, or "" before Listen.
func (d *Deployment) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// DialClient connects a split fine-tuning client to this deployment.
func (d *Deployment) DialClient(cfg client.Config) (*client.Client, error) {
	addr := d.Addr()
	if addr == "" {
		return nil, errors.New("core: deployment not listening")
	}
	return client.Dial(addr, cfg)
}
