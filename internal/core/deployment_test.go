package core

import (
	"path/filepath"
	"testing"

	"menos/internal/adapter"
	"menos/internal/checkpoint"
	"menos/internal/client"
	"menos/internal/model"
	"menos/internal/quant"
	"menos/internal/tensor"
)

func TestDeploymentLifecycle(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Addr() != "" {
		t.Fatal("address before listen")
	}
	addr, err := dep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || dep.Addr() != addr {
		t.Fatalf("addr = %q / %q", addr, dep.Addr())
	}

	c, err := dep.DialClient(client.Config{
		ClientID:    "life",
		Model:       model.OPTTiny(),
		WeightSeed:  5,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 1,
		Batch:       1,
		Seq:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(2)
	ids := make([]int, 8)
	targets := make([]int, 8)
	for i := range ids {
		ids[i] = r.Intn(model.OPTTiny().Vocab)
		targets[i] = r.Intn(model.OPTTiny().Vocab)
	}
	if _, err := c.Step(ids, targets); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()

	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dep.Wait(); err != nil {
		t.Fatalf("Wait after clean close: %v", err)
	}
}

func TestDeploymentDefaults(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{Model: model.LlamaTiny()})
	if err != nil {
		t.Fatal(err)
	}
	// Default weight seed is non-zero, default GPU is a V100.
	if dep.Server.Device().Capacity() != 32<<30 {
		t.Fatalf("default GPU capacity %d", dep.Server.Device().Capacity())
	}
	if dep.Store.Config().Name != "llama-tiny" {
		t.Fatal("store config")
	}
}

func TestDeploymentInvalidModel(t *testing.T) {
	bad := model.OPTTiny()
	bad.Heads = 7 // not a divisor of dim
	if _, err := NewDeployment(DeploymentConfig{Model: bad}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestDialBeforeListen(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.DialClient(client.Config{ClientID: "x"}); err == nil {
		t.Fatal("dial before listen succeeded")
	}
}

func TestListenBadAddress(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Listen("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestQuantizedDeployment: a server hosting an int8 base still serves
// split fine-tuning clients (QLoRA-style), and learning happens.
func TestQuantizedDeployment(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{
		Model:      model.OPTTiny(),
		WeightSeed: 5,
		BaseQuant:  quant.Int8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := dep.DialClient(client.Config{
		ClientID:    "q",
		Model:       model.OPTTiny(),
		WeightSeed:  5,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 2,
		LR:          8e-3,
		Batch:       2,
		Seq:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := tensor.NewRNG(3)
	ids := make([]int, 16)
	targets := make([]int, 16)
	for i := range ids {
		ids[i] = r.Intn(model.OPTTiny().Vocab)
		targets[i] = r.Intn(model.OPTTiny().Vocab)
	}
	first, err := c.Step(ids, targets)
	if err != nil {
		t.Fatal(err)
	}
	var last client.StepResult
	for i := 0; i < 15; i++ {
		last, err = c.Step(ids, targets)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Loss >= first.Loss {
		t.Fatalf("quantized deployment did not learn: %v -> %v", first.Loss, last.Loss)
	}
}

// TestWeightsFileDeployment: the seedless distribution workflow — the
// owner exports weights, the server and a client both load the file,
// and split fine-tuning works (sections line up).
func TestWeightsFileDeployment(t *testing.T) {
	owner, err := model.New(tensor.NewRNG(777), model.OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.mcpk")
	if err := checkpoint.SaveModelFile(path, owner); err != nil {
		t.Fatal(err)
	}

	dep, err := NewDeployment(DeploymentConfig{
		Model:       model.OPTTiny(),
		WeightSeed:  1, // irrelevant: overridden by the file
		WeightsFile: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := dep.DialClient(client.Config{
		ClientID:    "w",
		Model:       model.OPTTiny(),
		WeightSeed:  2, // also irrelevant
		WeightsFile: path,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 3,
		LR:          8e-3,
		Batch:       2,
		Seq:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := tensor.NewRNG(4)
	ids := make([]int, 16)
	targets := make([]int, 16)
	for i := range ids {
		ids[i] = r.Intn(model.OPTTiny().Vocab)
		targets[i] = r.Intn(model.OPTTiny().Vocab)
	}
	first, err := c.Step(ids, targets)
	if err != nil {
		t.Fatal(err)
	}
	var last client.StepResult
	for i := 0; i < 10; i++ {
		last, err = c.Step(ids, targets)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Loss >= first.Loss {
		t.Fatalf("weights-file deployment did not learn: %v -> %v", first.Loss, last.Loss)
	}

	// A missing file fails cleanly.
	if _, err := NewDeployment(DeploymentConfig{
		Model:       model.OPTTiny(),
		WeightsFile: filepath.Join(t.TempDir(), "missing"),
	}); err == nil {
		t.Fatal("missing weights file accepted")
	}
}
