package core

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/fleet"
	"menos/internal/model"
	"menos/internal/obs"
	"menos/internal/tensor"
)

// migBatch generates the deterministic id/target stream the migration
// tests feed both the migrated and the control client.
func migBatch(r *tensor.RNG, n int) (ids, targets []int) {
	ids = make([]int, n)
	targets = make([]int, n)
	vocab := model.OPTTiny().Vocab
	for i := range ids {
		ids[i] = r.Intn(vocab)
		targets[i] = r.Intn(vocab)
	}
	return ids, targets
}

func migClientConfig(id string) client.Config {
	return client.Config{
		ClientID:    id,
		Model:       model.OPTTiny(),
		WeightSeed:  5,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 3,
		Batch:       1,
		Seq:         8,
		Migrate:     true,
	}
}

// runMigSteps drives the micro-step schedule both clients share:
// pairs of accumulate-then-apply, so a migration can land
// mid-accumulation and the snapshot must carry unapplied gradients.
// start is the absolute iteration index — the apply cadence must not
// reset when a run is driven in two segments around a migration.
func runMigSteps(t *testing.T, c *client.Client, data *tensor.RNG, start, steps int) []uint64 {
	t.Helper()
	losses := make([]uint64, 0, steps)
	for i := start; i < start+steps; i++ {
		ids, targets := migBatch(data, 8)
		res, err := c.MicroStep(ids, targets, i%2 == 1)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		losses = append(losses, math.Float64bits(res.Loss))
	}
	return losses
}

// TestLiveMigrationDeterminism is the correctness pin for the whole
// migration plane: a client moved from server A to server B mid-run
// (mid gradient accumulation, even) must produce bitwise-identical
// losses to a client that never moved, and no iteration may be lost.
func TestLiveMigrationDeterminism(t *testing.T) {
	depA, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5, ServerID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer depA.Close()
	depB, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5, ServerID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer depB.Close()
	addrA, err := depA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := depB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminA := httptest.NewServer(depA.Server.AdminHandler())
	defer adminA.Close()
	adminB := httptest.NewServer(depB.Server.AdminHandler())
	defer adminB.Close()

	var moves []string
	cfg := migClientConfig("mig")
	cfg.OnMigrate = func(target string) { moves = append(moves, target) }
	c, err := client.Dial(addrA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.MigrateNegotiated() {
		t.Fatal("migration feature not negotiated")
	}

	const pre, post = 3, 5
	data := tensor.NewRNG(11)
	losses := runMigSteps(t, c, data, 0, pre)

	// Order the migration: A snapshots at the next forward boundary
	// (we are mid-accumulation after 3 micro-steps), stages at B, and
	// redirects the client.
	order, _ := json.Marshal(fleet.MigrateOrder{
		ClientID:    "mig",
		TargetAddr:  addrB,
		TargetAdmin: adminB.URL,
		Token:       42,
	})
	resp, err := http.Post(adminA.URL+"/admin/migrate", "application/json", bytes.NewReader(order))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("migrate order: %s", resp.Status)
	}

	losses = append(losses, runMigSteps(t, c, data, pre, post)...)
	if c.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", c.Migrations())
	}
	if len(moves) != 1 || moves[0] != addrB {
		t.Fatalf("moves = %v, want [%s]", moves, addrB)
	}

	// Zero lost iterations: every micro-step was served exactly once,
	// split across the two servers.
	itersA := depA.Server.Stats().Iterations
	itersB := depB.Server.Stats().Iterations
	if itersA+itersB != pre+post {
		t.Fatalf("iterations A=%d B=%d, want total %d", itersA, itersB, pre+post)
	}
	if itersB == 0 {
		t.Fatal("no iterations served by the target server")
	}

	// Control: the same schedule against a single server, bit-compared.
	depC, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5, ServerID: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer depC.Close()
	addrC, err := depC.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := client.Dial(addrC, migClientConfig("mig"))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	want := runMigSteps(t, ctrl, tensor.NewRNG(11), 0, pre+post)
	for i := range want {
		if losses[i] != want[i] {
			t.Fatalf("loss %d diverged after migration: %x vs control %x", i, losses[i], want[i])
		}
	}
}

// TestMigrationTraceStitch pins the cross-server stitch point of trace
// federation: the source server's migrate:out span carries the trace
// ID of the iteration displaced by the migration, the destination
// replays that same iteration under the same ID, and the destination
// records a migrate:in span on the session's track — so a merged fleet
// trace shows one IterTraceID spanning both processes.
func TestMigrationTraceStitch(t *testing.T) {
	trA := obs.NewTracer(obs.NewWallClock())
	trA.SetProcess(1, "menos-server-1")
	trB := obs.NewTracer(obs.NewWallClock())
	trB.SetProcess(2, "menos-server-2")
	depA, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5, ServerID: 1, Tracer: trA})
	if err != nil {
		t.Fatal(err)
	}
	defer depA.Close()
	depB, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5, ServerID: 2, Tracer: trB})
	if err != nil {
		t.Fatal(err)
	}
	defer depB.Close()
	addrA, err := depA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := depB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	adminB := httptest.NewServer(depB.Server.AdminHandler())
	defer adminB.Close()
	adminA := httptest.NewServer(depA.Server.AdminHandler())
	defer adminA.Close()

	cfg := migClientConfig("mig")
	cfg.Tracer = obs.NewTracer(obs.NewWallClock())
	c, err := client.Dial(addrA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const pre, post = 2, 2
	data := tensor.NewRNG(11)
	runMigSteps(t, c, data, 0, pre)
	order, _ := json.Marshal(fleet.MigrateOrder{
		ClientID: "mig", TargetAddr: addrB, TargetAdmin: adminB.URL, Token: 7,
	})
	resp, err := http.Post(adminA.URL+"/admin/migrate", "application/json", bytes.NewReader(order))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	runMigSteps(t, c, data, pre, post)
	if c.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", c.Migrations())
	}

	// The displaced ForwardReq is iteration `pre` — its trace ID is the
	// stitch key.
	stitch := obs.IterTraceID("mig", pre)
	var out *obs.Span
	for _, sp := range trA.Spans() {
		if sp.Name == "migrate:out" && sp.Cat == "migrate" {
			out = &sp
			break
		}
	}
	if out == nil {
		t.Fatal("source tracer has no migrate:out span")
	}
	if out.TraceID != stitch || out.Track != "mig" {
		t.Fatalf("migrate:out span = %+v, want trace %016x on track mig", out, stitch)
	}
	haveIn, haveReplay := false, false
	for _, sp := range trB.Spans() {
		if sp.Name == "migrate:in" && sp.Track == "mig" {
			haveIn = true
		}
		if sp.Cat == "compute" && sp.TraceID == stitch {
			haveReplay = true
		}
	}
	if !haveIn {
		t.Fatal("destination tracer has no migrate:in span")
	}
	if !haveReplay {
		t.Fatalf("destination never recorded compute spans under the stitch ID %016x", stitch)
	}
}

// TestMigrationAbortKeepsServing: an order whose snapshot transfer
// fails (unreachable target admin) must not kill the session — the
// client keeps training on the source, still bit-identical to an
// undisturbed run.
func TestMigrationAbortKeepsServing(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5, ServerID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	addr, err := dep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(dep.Server.AdminHandler())
	defer admin.Close()

	c, err := client.Dial(addr, migClientConfig("mig"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := tensor.NewRNG(11)
	losses := runMigSteps(t, c, data, 0, 2)

	order, _ := json.Marshal(fleet.MigrateOrder{
		ClientID:    "mig",
		TargetAddr:  "127.0.0.1:1",
		TargetAdmin: "http://127.0.0.1:1", // nothing listens here
		Token:       7,
	})
	resp, err := http.Post(admin.URL+"/admin/migrate", "application/json", bytes.NewReader(order))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("migrate order: %s", resp.Status)
	}

	losses = append(losses, runMigSteps(t, c, data, 2, 2)...)
	if c.Migrations() != 0 {
		t.Fatalf("migrations = %d, want 0 (aborted)", c.Migrations())
	}

	depC, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5, ServerID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer depC.Close()
	addrC, err := depC.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := client.Dial(addrC, migClientConfig("mig"))
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	want := runMigSteps(t, ctrl, tensor.NewRNG(11), 0, 4)
	for i := range want {
		if losses[i] != want[i] {
			t.Fatalf("loss %d diverged after aborted migration: %x vs %x", i, losses[i], want[i])
		}
	}
}

// TestMigrationRejectsUnknownSession: ordering a migration for a
// client that is not resident is a 404, and a stale resume token is
// rejected at handshake.
func TestMigrationOrderValidation(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(dep.Server.AdminHandler())
	defer admin.Close()

	order, _ := json.Marshal(fleet.MigrateOrder{
		ClientID: "ghost", TargetAddr: "x", TargetAdmin: "http://x", Token: 1,
	})
	resp, err := http.Post(admin.URL+"/admin/migrate", "application/json", bytes.NewReader(order))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost order: %s, want 404", resp.Status)
	}

	// Missing fields are a 400.
	resp, err = http.Post(admin.URL+"/admin/migrate", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty order: %s, want 400", resp.Status)
	}
}
