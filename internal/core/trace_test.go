package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/model"
	"menos/internal/obs"
	"menos/internal/tensor"
)

// TestEndToEndTracePropagation runs a loopback deployment with tracers
// on both sides and checks the tentpole property: the server's sched
// and compute spans for iteration i carry the exact trace ID the
// client minted for its iteration-i span, and the two tracers merge
// into one Chrome trace correlated by those IDs.
func TestEndToEndTracePropagation(t *testing.T) {
	serverTr := obs.NewTracer(obs.NewWallClock())
	serverTr.SetProcess(1, "menos-server")
	dep, err := NewDeployment(DeploymentConfig{
		Model:      model.OPTTiny(),
		WeightSeed: 5,
		Tracer:     serverTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	clientTr := obs.NewTracer(obs.NewWallClock())
	clientTr.SetProcess(2, "menos-client")
	c, err := dep.DialClient(client.Config{
		ClientID:    "tracee",
		Model:       model.OPTTiny(),
		WeightSeed:  5,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 1,
		Batch:       1,
		Seq:         8,
		Tracer:      clientTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.TraceNegotiated() {
		t.Fatal("trace context not negotiated on a tracer-to-tracer connection")
	}

	r := tensor.NewRNG(2)
	ids := make([]int, 8)
	targets := make([]int, 8)
	for i := range ids {
		ids[i] = r.Intn(model.OPTTiny().Vocab)
		targets[i] = r.Intn(model.OPTTiny().Vocab)
	}
	const iters = 3
	for i := 0; i < iters; i++ {
		if _, err := c.Step(ids, targets); err != nil {
			t.Fatal(err)
		}
	}

	// Every iteration's deterministic ID must appear on the client's
	// iteration span AND on the server's sched + compute spans.
	clientIDs := map[uint64]bool{}
	for _, sp := range clientTr.Spans() {
		if sp.Cat == "iter" {
			clientIDs[sp.TraceID] = true
		}
	}
	serverSched := map[uint64]bool{}
	serverComp := map[uint64]bool{}
	for _, sp := range serverTr.Spans() {
		switch sp.Cat {
		case "sched":
			serverSched[sp.TraceID] = true
		case "compute":
			serverComp[sp.TraceID] = true
		}
	}
	for i := 0; i < iters; i++ {
		tid := obs.IterTraceID("tracee", i)
		if !clientIDs[tid] {
			t.Errorf("iter %d: client iteration span missing trace ID %016x", i, tid)
		}
		if !serverSched[tid] {
			t.Errorf("iter %d: no server sched span carries trace ID %016x", i, tid)
		}
		if !serverComp[tid] {
			t.Errorf("iter %d: no server compute span carries trace ID %016x", i, tid)
		}
	}

	// The merged Chrome trace holds both processes and correlates spans
	// from both pids under each iteration's trace ID.
	var buf bytes.Buffer
	if err := obs.WriteMergedChromeTrace(&buf, clientTr, serverTr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pidsByTID := map[string]map[int]bool{}
	procNames := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.Pid] = true
		}
		if tid, ok := ev.Args["trace_id"].(string); ok {
			if pidsByTID[tid] == nil {
				pidsByTID[tid] = map[int]bool{}
			}
			pidsByTID[tid][ev.Pid] = true
		}
	}
	if !procNames[1] || !procNames[2] {
		t.Fatalf("merged trace missing process_name metadata: %v", procNames)
	}
	for i := 0; i < iters; i++ {
		key := fmt.Sprintf("%016x", obs.IterTraceID("tracee", i))
		if pids := pidsByTID[key]; !pids[1] || !pids[2] {
			t.Errorf("iter %d: trace ID %s not present in both processes (pids %v)", i, key, pids)
		}
	}
}

// TestTraceNegotiationRequiresBothSides: a client with a tracer against
// a server without one must still work — the feature is not granted and
// the wire stays version-1 clean (TraceNegotiated is false).
func TestTraceNegotiationRequiresBothSides(t *testing.T) {
	dep, err := NewDeployment(DeploymentConfig{Model: model.OPTTiny(), WeightSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	clientTr := obs.NewTracer(obs.NewWallClock())
	c, err := dep.DialClient(client.Config{
		ClientID:    "plain",
		Model:       model.OPTTiny(),
		WeightSeed:  5,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 1,
		Batch:       1,
		Seq:         8,
		Tracer:      clientTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.TraceNegotiated() {
		t.Fatal("trace context negotiated against a tracerless server")
	}
	r := tensor.NewRNG(2)
	ids := make([]int, 8)
	targets := make([]int, 8)
	for i := range ids {
		ids[i] = r.Intn(model.OPTTiny().Vocab)
		targets[i] = r.Intn(model.OPTTiny().Vocab)
	}
	if _, err := c.Step(ids, targets); err != nil {
		t.Fatal(err)
	}
	// The client still records local iteration spans with IDs; they are
	// just never sent on the wire.
	found := false
	for _, sp := range clientTr.Spans() {
		if sp.Cat == "iter" && sp.TraceID == obs.IterTraceID("plain", 0) {
			found = true
		}
	}
	if !found {
		t.Fatal("client iteration span missing without negotiation")
	}
}
