// Package costmodel converts workload descriptions into simulated
// execution durations: forward/backward compute time from FLOP counts
// and an effective device throughput, host↔device swap time from a
// PCIe-class bandwidth, and the allocator release/re-collection
// overhead the paper measures growing with client count (Table 2).
//
// Calibration targets are the paper's own single-client measurements;
// see DESIGN.md §3 for the derivation of every constant.
package costmodel

import (
	"time"

	"menos/internal/memmodel"
	"menos/internal/model"
)

// Perf describes the effective performance of an execution platform.
type Perf struct {
	Name string
	// EffectiveFLOPS is sustained training throughput (not peak).
	EffectiveFLOPS float64
	// SwapBytesPerSecond is host↔device transfer throughput for
	// task-level swapping (vanilla baseline under memory pressure).
	SwapBytesPerSecond float64
}

// V100Perf returns the server GPU used in the paper's evaluation.
// 25 TFLOPS effective reproduces the paper's vanilla computation times
// (OPT ≈0.45 s, Llama ≈0.5 s per iteration); 1.2 GB/s swap reproduces
// the ≈40 s per-client scheduling growth of Table 3 (Llama).
func V100Perf() Perf {
	return Perf{Name: "V100", EffectiveFLOPS: 25e12, SwapBytesPerSecond: 1.2e9}
}

// ClientGPUPerf returns the client-side RTX A4500.
func ClientGPUPerf() Perf {
	return Perf{Name: "RTX A4500", EffectiveFLOPS: 18e12, SwapBytesPerSecond: 1.2e9}
}

// ClientCPUPerf returns a CPU client (Fig. 10): roughly 1 TFLOPS
// effective, which reproduces the paper's ≈0.8 s client-side penalty.
func ClientCPUPerf() Perf {
	return Perf{Name: "CPU", EffectiveFLOPS: 1e12, SwapBytesPerSecond: 8e9}
}

// SchedulerDecisionTime is the paper's measured per-decision scheduler
// cost ("less than 0.1 milliseconds").
const SchedulerDecisionTime = 50 * time.Microsecond

// OptimizerStepTime is the adapter optimizer update, negligible next to
// forward/backward.
const OptimizerStepTime = 2 * time.Millisecond

// serverFLOPsForward returns the forward FLOPs of the server's blocks
// for one iteration: 2 × parameters × tokens.
func serverFLOPsForward(w memmodel.Workload) float64 {
	params := float64(w.Model.BlockParams()) * float64(w.Model.Layers-w.Cut)
	tokens := float64(w.Batch) * float64(w.Seq)
	return 2 * params * tokens
}

// clientFLOPs returns client-side FLOPs per iteration (input blocks,
// embeddings, head; forward + backward ≈ 3× forward).
func clientFLOPs(w memmodel.Workload) float64 {
	params := float64(w.Model.BlockParams())*float64(w.Cut) +
		float64(w.Model.EmbeddingParams()) + float64(w.Model.HeadParams())
	tokens := float64(w.Batch) * float64(w.Seq)
	return 3 * 2 * params * tokens
}

// Model computes durations for a workload on a platform.
type Model struct {
	Server Perf
	// release overhead calibration (Table 2), see ReleaseOverhead.
	relIntercept time.Duration
	relSlope     time.Duration
}

// New builds a cost model for the workload on the server platform,
// selecting the paper-calibrated release-overhead constants when the
// workload matches one of the two evaluation models, and a generic
// activation-volume estimate otherwise.
func New(server Perf, w memmodel.Workload) *Model {
	m := &Model{Server: server}
	switch {
	case w.Model.Name == model.OPT1_3B().Name:
		// Table 2 fit: Menos-extra-compute = 0.12 s + 0.19 s × (N−1).
		m.relIntercept = 120 * time.Millisecond
		m.relSlope = 190 * time.Millisecond
	case w.Model.Name == model.Llama2_7B().Name:
		// Table 2 fit: 0.36 s + 0.34 s × (N−1).
		m.relIntercept = 360 * time.Millisecond
		m.relSlope = 340 * time.Millisecond
	default:
		// Generic: proportional to released activation volume.
		gib := float64(w.ActivationBytes()) / float64(1<<30)
		m.relIntercept = time.Duration(0.03 * gib * float64(time.Second))
		m.relSlope = time.Duration(0.05 * gib * float64(time.Second))
	}
	return m
}

// ForwardTime is the gradient-enabled forward pass over the server
// blocks.
func (m *Model) ForwardTime(w memmodel.Workload) time.Duration {
	return secs(serverFLOPsForward(w) / m.Server.EffectiveFLOPS)
}

// NoGradForwardTime is the Fig. 3(d) first forward: slightly cheaper
// because no activations are materialized for backward.
func (m *Model) NoGradForwardTime(w memmodel.Workload) time.Duration {
	return time.Duration(0.95 * float64(m.ForwardTime(w)))
}

// BackwardTime is the backward pass (≈2× forward FLOPs).
func (m *Model) BackwardTime(w memmodel.Workload) time.Duration {
	return 2 * m.ForwardTime(w)
}

// ReleaseOverhead is the per-iteration cost of releasing and
// re-collecting GPU memory under on-demand allocation, which the paper
// observes growing with the number of concurrent clients as the
// allocator fragments (Table 2).
func (m *Model) ReleaseOverhead(concurrentClients int) time.Duration {
	if concurrentClients < 1 {
		concurrentClients = 1
	}
	return m.relIntercept + time.Duration(concurrentClients-1)*m.relSlope
}

// batchSerialFraction is the α of the batched-kernel cost model: the
// fraction of a member's serial compute that stays serial when K
// members share one kernel invocation (per-row adapter matmuls,
// segment bookkeeping), while (1−α) amortizes across the batch (the
// frozen-base GEMMs, read once per batch instead of once per client).
// 0.3 matches the ASPEN/m-LoRA observation that multi-adapter batching
// yields ~3× per-client throughput at moderate batch sizes rather
// than the ideal K×.
const batchSerialFraction = 0.3

// BatchedTime scales one member's serial duration to the duration of a
// batched invocation carrying size members:
//
//	T(K) = T(1) · (α·K + (1−α))
//
// so T(1) = T(1) (a size-1 batch is exactly the serial path) and the
// per-client share T(K)/K approaches α·T(1) as the batch grows.
func BatchedTime(serial time.Duration, size int) time.Duration {
	if size <= 1 {
		return serial
	}
	return time.Duration(float64(serial) * (batchSerialFraction*float64(size) + (1 - batchSerialFraction)))
}

// OverlapStepTime is the steady-state iteration time of the
// double-buffered split pipeline (docs/WIRE.md): the wire+server leg
// (uploads, grant waits, server compute, downloads) of microbatch i
// runs concurrently with the client-compute leg of microbatch i±1, so
// the slower leg sets the pace and the faster one is hidden entirely —
// max(wire, client) instead of their sum on the sequential path.
func OverlapStepTime(wireLeg, clientLeg time.Duration) time.Duration {
	if wireLeg > clientLeg {
		return wireLeg
	}
	return clientLeg
}

// SwapTime is the host↔device transfer time for task-level swapping.
func (m *Model) SwapTime(bytes int64) time.Duration {
	return secs(float64(bytes) / m.Server.SwapBytesPerSecond)
}

// ClientComputeTime is the per-iteration client-side computation
// (input section forward + output section forward/backward + input
// backward) on the given client platform.
func ClientComputeTime(client Perf, w memmodel.Workload) time.Duration {
	return secs(clientFLOPs(w) / client.EffectiveFLOPS)
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
