package costmodel

import (
	"testing"
	"time"

	"menos/internal/memmodel"
)

func TestVanillaComputeTimesMatchPaper(t *testing.T) {
	// Paper Table 2, vanilla: OPT ≈0.41–0.54 s, Llama ≈0.46–0.55 s.
	tests := []struct {
		name     string
		w        memmodel.Workload
		min, max time.Duration
	}{
		{"opt", memmodel.PaperOPTWorkload(), 300 * time.Millisecond, 700 * time.Millisecond},
		{"llama", memmodel.PaperLlamaWorkload(), 350 * time.Millisecond, 800 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := New(V100Perf(), tt.w)
			total := m.ForwardTime(tt.w) + m.BackwardTime(tt.w)
			if total < tt.min || total > tt.max {
				t.Fatalf("vanilla compute = %v, want in [%v, %v]", total, tt.min, tt.max)
			}
		})
	}
}

func TestMenosComputeTimesMatchPaper(t *testing.T) {
	// Paper Table 2, Menos: OPT 0.71 s @1 → 1.68 s @6;
	// Llama 1.15 s @1 → 2.16 s @4.
	type point struct {
		clients  int
		min, max time.Duration
	}
	tests := []struct {
		name   string
		w      memmodel.Workload
		points []point
	}{
		{"opt", memmodel.PaperOPTWorkload(), []point{
			{1, 500 * time.Millisecond, 900 * time.Millisecond},
			{6, 1400 * time.Millisecond, 2000 * time.Millisecond},
		}},
		{"llama", memmodel.PaperLlamaWorkload(), []point{
			{1, 900 * time.Millisecond, 1400 * time.Millisecond},
			{4, 1800 * time.Millisecond, 2600 * time.Millisecond},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := New(V100Perf(), tt.w)
			for _, p := range tt.points {
				total := m.NoGradForwardTime(tt.w) + m.ForwardTime(tt.w) +
					m.BackwardTime(tt.w) + m.ReleaseOverhead(p.clients)
				if total < p.min || total > p.max {
					t.Fatalf("menos compute @%d clients = %v, want in [%v, %v]",
						p.clients, total, p.min, p.max)
				}
			}
		})
	}
}

func TestSwapTimeMatchesTable3(t *testing.T) {
	// Swapping one Llama replica out and in (≈2×25 GiB at 1.2 GB/s)
	// should cost ≈40 s, the per-client scheduling growth in Table 3.
	w := memmodel.PaperLlamaWorkload()
	m := New(V100Perf(), w)
	replica := w.ServerBaseBytes()
	roundTrip := m.SwapTime(replica) + m.SwapTime(replica)
	if roundTrip < 30*time.Second || roundTrip > 60*time.Second {
		t.Fatalf("llama swap round-trip = %v, want ~40 s", roundTrip)
	}
}

func TestClientComputeTimes(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	gpu := ClientComputeTime(ClientGPUPerf(), w)
	cpu := ClientComputeTime(ClientCPUPerf(), w)
	if gpu >= cpu {
		t.Fatalf("GPU client (%v) not faster than CPU client (%v)", gpu, cpu)
	}
	// Fig. 10: CPU clients add well under 2 s.
	if cpu > 2*time.Second {
		t.Fatalf("CPU client compute = %v, want < 2 s", cpu)
	}
	if cpu-gpu < 200*time.Millisecond {
		t.Fatalf("CPU penalty = %v, paper observed ≈0.8 s", cpu-gpu)
	}
}

func TestReleaseOverheadMonotone(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	m := New(V100Perf(), w)
	prev := time.Duration(-1)
	for n := 1; n <= 8; n++ {
		cur := m.ReleaseOverhead(n)
		if cur <= prev {
			t.Fatalf("release overhead not increasing at n=%d", n)
		}
		prev = cur
	}
	if m.ReleaseOverhead(0) != m.ReleaseOverhead(1) {
		t.Fatal("clients<1 not clamped")
	}
}

func TestGenericCalibrationFallback(t *testing.T) {
	// A non-paper workload gets the activation-volume estimate.
	w := memmodel.TinyLlamaWorkload(2, 8)
	m := New(V100Perf(), w)
	if m.ReleaseOverhead(1) <= 0 {
		// Tiny activations round to sub-millisecond but must be >= 0.
		if m.ReleaseOverhead(1) < 0 {
			t.Fatal("negative release overhead")
		}
	}
	if m.ForwardTime(w) <= 0 {
		t.Fatal("no forward time for tiny workload")
	}
}

func TestNoGradForwardCheaper(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	m := New(V100Perf(), w)
	if m.NoGradForwardTime(w) >= m.ForwardTime(w) {
		t.Fatal("no-grad forward not cheaper than grad forward")
	}
	if m.BackwardTime(w) != 2*m.ForwardTime(w) {
		t.Fatal("backward != 2x forward")
	}
}
