package costmodel

import (
	"testing"
	"time"

	"menos/internal/memmodel"
)

// TestBatchedTimeScaling pins the batched-kernel cost model: a size-1
// batch is exactly the serial path, the total grows sublinearly in K,
// and the per-client share shrinks monotonically — the property the
// multilora sweep's ≥2× throughput claim rests on.
func TestBatchedTimeScaling(t *testing.T) {
	serial := 450 * time.Millisecond
	if got := BatchedTime(serial, 1); got != serial {
		t.Fatalf("BatchedTime(.., 1) = %v, want %v", got, serial)
	}
	if got := BatchedTime(serial, 0); got != serial {
		t.Fatalf("BatchedTime(.., 0) = %v, want %v", got, serial)
	}
	prevShare := float64(serial)
	for k := 2; k <= 32; k *= 2 {
		total := BatchedTime(serial, k)
		if total >= time.Duration(k)*serial {
			t.Errorf("K=%d: batched %v not cheaper than %d serial runs", k, total, k)
		}
		if total <= serial {
			t.Errorf("K=%d: batched %v not dearer than one serial run", k, total)
		}
		share := float64(total) / float64(k)
		if share >= prevShare {
			t.Errorf("K=%d: per-client share %.3fms did not shrink", k, share/1e6)
		}
		prevShare = share
	}
	// At K=16 the per-client speedup must clear the sweep's 2× bar
	// with margin.
	if speedup := float64(16*serial) / float64(BatchedTime(serial, 16)); speedup < 2 {
		t.Errorf("K=16 speedup %.2f < 2", speedup)
	}
}

func TestVanillaComputeTimesMatchPaper(t *testing.T) {
	// Paper Table 2, vanilla: OPT ≈0.41–0.54 s, Llama ≈0.46–0.55 s.
	tests := []struct {
		name     string
		w        memmodel.Workload
		min, max time.Duration
	}{
		{"opt", memmodel.PaperOPTWorkload(), 300 * time.Millisecond, 700 * time.Millisecond},
		{"llama", memmodel.PaperLlamaWorkload(), 350 * time.Millisecond, 800 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := New(V100Perf(), tt.w)
			total := m.ForwardTime(tt.w) + m.BackwardTime(tt.w)
			if total < tt.min || total > tt.max {
				t.Fatalf("vanilla compute = %v, want in [%v, %v]", total, tt.min, tt.max)
			}
		})
	}
}

func TestMenosComputeTimesMatchPaper(t *testing.T) {
	// Paper Table 2, Menos: OPT 0.71 s @1 → 1.68 s @6;
	// Llama 1.15 s @1 → 2.16 s @4.
	type point struct {
		clients  int
		min, max time.Duration
	}
	tests := []struct {
		name   string
		w      memmodel.Workload
		points []point
	}{
		{"opt", memmodel.PaperOPTWorkload(), []point{
			{1, 500 * time.Millisecond, 900 * time.Millisecond},
			{6, 1400 * time.Millisecond, 2000 * time.Millisecond},
		}},
		{"llama", memmodel.PaperLlamaWorkload(), []point{
			{1, 900 * time.Millisecond, 1400 * time.Millisecond},
			{4, 1800 * time.Millisecond, 2600 * time.Millisecond},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := New(V100Perf(), tt.w)
			for _, p := range tt.points {
				total := m.NoGradForwardTime(tt.w) + m.ForwardTime(tt.w) +
					m.BackwardTime(tt.w) + m.ReleaseOverhead(p.clients)
				if total < p.min || total > p.max {
					t.Fatalf("menos compute @%d clients = %v, want in [%v, %v]",
						p.clients, total, p.min, p.max)
				}
			}
		})
	}
}

func TestSwapTimeMatchesTable3(t *testing.T) {
	// Swapping one Llama replica out and in (≈2×25 GiB at 1.2 GB/s)
	// should cost ≈40 s, the per-client scheduling growth in Table 3.
	w := memmodel.PaperLlamaWorkload()
	m := New(V100Perf(), w)
	replica := w.ServerBaseBytes()
	roundTrip := m.SwapTime(replica) + m.SwapTime(replica)
	if roundTrip < 30*time.Second || roundTrip > 60*time.Second {
		t.Fatalf("llama swap round-trip = %v, want ~40 s", roundTrip)
	}
}

func TestClientComputeTimes(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	gpu := ClientComputeTime(ClientGPUPerf(), w)
	cpu := ClientComputeTime(ClientCPUPerf(), w)
	if gpu >= cpu {
		t.Fatalf("GPU client (%v) not faster than CPU client (%v)", gpu, cpu)
	}
	// Fig. 10: CPU clients add well under 2 s.
	if cpu > 2*time.Second {
		t.Fatalf("CPU client compute = %v, want < 2 s", cpu)
	}
	if cpu-gpu < 200*time.Millisecond {
		t.Fatalf("CPU penalty = %v, paper observed ≈0.8 s", cpu-gpu)
	}
}

func TestReleaseOverheadMonotone(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	m := New(V100Perf(), w)
	prev := time.Duration(-1)
	for n := 1; n <= 8; n++ {
		cur := m.ReleaseOverhead(n)
		if cur <= prev {
			t.Fatalf("release overhead not increasing at n=%d", n)
		}
		prev = cur
	}
	if m.ReleaseOverhead(0) != m.ReleaseOverhead(1) {
		t.Fatal("clients<1 not clamped")
	}
}

func TestGenericCalibrationFallback(t *testing.T) {
	// A non-paper workload gets the activation-volume estimate.
	w := memmodel.TinyLlamaWorkload(2, 8)
	m := New(V100Perf(), w)
	if m.ReleaseOverhead(1) <= 0 {
		// Tiny activations round to sub-millisecond but must be >= 0.
		if m.ReleaseOverhead(1) < 0 {
			t.Fatal("negative release overhead")
		}
	}
	if m.ForwardTime(w) <= 0 {
		t.Fatal("no forward time for tiny workload")
	}
}

func TestNoGradForwardCheaper(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	m := New(V100Perf(), w)
	if m.NoGradForwardTime(w) >= m.ForwardTime(w) {
		t.Fatal("no-grad forward not cheaper than grad forward")
	}
	if m.BackwardTime(w) != 2*m.ForwardTime(w) {
		t.Fatal("backward != 2x forward")
	}
}
