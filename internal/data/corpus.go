// Package data provides tokenizers, corpora and batch loaders for the
// fine-tuning experiments. Two corpora stand in for the paper's
// datasets: an embedded public-domain Shakespeare excerpt (for
// tiny-shakespeare) and a deterministic synthetic encyclopedic text
// generator (for wikitext-2); see DESIGN.md for why the substitution
// preserves the convergence behaviour under study.
package data

import "strings"

// shakespeare is a small public-domain excerpt in the spirit of
// tiny-shakespeare: character-level modeling fodder.
const shakespeare = `First Citizen:
Before we proceed any further, hear me speak.

All:
Speak, speak.

First Citizen:
You are all resolved rather to die than to famish?

All:
Resolved. resolved.

First Citizen:
First, you know Caius Marcius is chief enemy to the people.

All:
We know't, we know't.

First Citizen:
Let us kill him, and we'll have corn at our own price.
Is't a verdict?

All:
No more talking on't; let it be done: away, away!

Second Citizen:
One word, good citizens.

First Citizen:
We are accounted poor citizens, the patricians good.
What authority surfeits on would relieve us: if they
would yield us but the superfluity, while it were
wholesome, we might guess they relieved us humanely;
but they think we are too dear: the leanness that
afflicts us, the object of our misery, is as an
inventory to particularise their abundance; our
sufferance is a gain to them Let us revenge this with
our pikes, ere we become rakes: for the gods know I
speak this in hunger for bread, not in thirst for revenge.

Second Citizen:
Would you proceed especially against Caius Marcius?

All:
Against him first: he's a very dog to the commonalty.

Second Citizen:
Consider you what services he has done for his country?

First Citizen:
Very well; and could be content to give him good
report fort, but that he pays himself with being proud.

Second Citizen:
Nay, but speak not maliciously.

First Citizen:
I say unto you, what he hath done famously, he did
it to that end: though soft-conscienced men can be
content to say it was for his country he did it to
please his mother and to be partly proud; which he
is, even till the altitude of his virtue.

Second Citizen:
What he cannot help in his nature, you account a
vice in him. You must in no way say he is covetous.

First Citizen:
If I must not, I need not be barren of accusations;
he hath faults, with surplus, to tire in repetition.
What shouts are these? The other side o' the city
is risen: why stay we prating here? to the Capitol!

All:
Come, come.
`

// Shakespeare returns the embedded tiny-shakespeare-style corpus.
func Shakespeare() string { return shakespeare }

// Word banks for the synthetic wikitext generator. The goal is text
// with natural-language-like statistics (Zipfian common words, topical
// nouns, punctuation structure), not meaning.
var (
	wikiSubjects = []string{
		"the river", "the province", "the composer", "the treaty",
		"the species", "the railway", "the dynasty", "the observatory",
		"the cathedral", "the expedition", "the novel", "the festival",
	}
	wikiVerbs = []string{
		"was established in", "flows through", "was described by",
		"is located near", "was named after", "remained part of",
		"was completed in", "influenced", "borders", "preceded",
	}
	wikiObjects = []string{
		"the northern region", "the early period", "the old kingdom",
		"the coastal plain", "the second empire", "the modern era",
		"the upper valley", "the southern district", "the great war",
		"the first survey",
	}
	wikiConnectives = []string{
		"however,", "in addition,", "by contrast,", "subsequently,",
		"according to records,", "during this time,",
	}
)

// wikiRNG is a minimal deterministic generator local to the package so
// corpus generation never depends on global state.
type wikiRNG struct{ state uint64 }

func (r *wikiRNG) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

func (r *wikiRNG) pick(words []string) string {
	return words[int(r.next()%uint64(len(words)))]
}

// SyntheticWikitext generates a deterministic encyclopedic-style
// corpus of roughly the requested number of sentences.
func SyntheticWikitext(seed uint64, sentences int) string {
	if seed == 0 {
		seed = 1
	}
	rng := &wikiRNG{state: seed}
	var b strings.Builder
	for i := 0; i < sentences; i++ {
		if i%5 == 0 && i > 0 {
			b.WriteString("\n")
		}
		if rng.next()%3 == 0 {
			b.WriteString(rng.pick(wikiConnectives))
			b.WriteString(" ")
		}
		b.WriteString(rng.pick(wikiSubjects))
		b.WriteString(" ")
		b.WriteString(rng.pick(wikiVerbs))
		b.WriteString(" ")
		b.WriteString(rng.pick(wikiObjects))
		b.WriteString(". ")
	}
	return b.String()
}
