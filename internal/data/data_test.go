package data

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestShakespeareCorpus(t *testing.T) {
	s := Shakespeare()
	if len(s) < 1000 {
		t.Fatalf("corpus too small: %d bytes", len(s))
	}
	if !strings.Contains(s, "Citizen") {
		t.Fatal("corpus content unexpected")
	}
}

func TestSyntheticWikitextDeterministic(t *testing.T) {
	a := SyntheticWikitext(42, 100)
	b := SyntheticWikitext(42, 100)
	if a != b {
		t.Fatal("same seed produced different corpora")
	}
	c := SyntheticWikitext(43, 100)
	if a == c {
		t.Fatal("different seeds produced identical corpora")
	}
	if !strings.Contains(a, ". ") {
		t.Fatal("no sentence structure")
	}
	if SyntheticWikitext(0, 10) == "" {
		t.Fatal("zero seed produced nothing")
	}
}

func TestCharTokenizerRoundTrip(t *testing.T) {
	corpus := Shakespeare()
	tok, err := NewCharTokenizer(corpus, 96)
	if err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() <= 0 || tok.VocabSize() > 96 {
		t.Fatalf("vocab = %d", tok.VocabSize())
	}
	sample := "Speak, speak."
	ids, err := tok.Encode(sample)
	if err != nil {
		t.Fatal(err)
	}
	back, err := tok.Decode(ids)
	if err != nil {
		t.Fatal(err)
	}
	if back != sample {
		t.Fatalf("round trip: %q -> %q", sample, back)
	}
}

func TestCharTokenizerUnknownChar(t *testing.T) {
	tok, err := NewCharTokenizer("abc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tok.Encode("abz"); !errors.Is(err, ErrVocab) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tok.Decode([]int{99}); !errors.Is(err, ErrVocab) {
		t.Fatalf("decode err = %v", err)
	}
}

func TestCharTokenizerVocabLimit(t *testing.T) {
	if _, err := NewCharTokenizer("abcdef", 3); !errors.Is(err, ErrVocab) {
		t.Fatalf("err = %v", err)
	}
}

func TestWordTokenizer(t *testing.T) {
	corpus := "the cat sat on the mat the cat"
	tok, err := NewWordTokenizer(corpus, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() != 4 {
		t.Fatalf("vocab = %d", tok.VocabSize())
	}
	ids, err := tok.Encode("the cat flew")
	if err != nil {
		t.Fatal(err)
	}
	// "flew" is unknown -> id 0.
	if ids[2] != 0 {
		t.Fatalf("unk id = %d", ids[2])
	}
	out, err := tok.Decode(ids)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<unk>") {
		t.Fatalf("decode = %q", out)
	}
	if _, err := NewWordTokenizer(corpus, 1); err == nil {
		t.Fatal("vocab of 1 accepted")
	}
}

// Property: char tokenizer round-trips any string drawn from its own
// corpus alphabet.
func TestCharTokenizerRoundTripProperty(t *testing.T) {
	corpus := "abcdefgh \n.,!"
	tok, err := NewCharTokenizer(corpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	alphabet := []rune(corpus)
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteRune(alphabet[int(p)%len(alphabet)])
		}
		s := b.String()
		ids, err := tok.Encode(s)
		if err != nil {
			return false
		}
		back, err := tok.Decode(ids)
		return err == nil && back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoaderBatchGeometry(t *testing.T) {
	tokens := make([]int, 100)
	for i := range tokens {
		tokens[i] = i
	}
	l, err := NewLoader(tokens, 3, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := l.Next()
	if len(ids) != 24 || len(targets) != 24 {
		t.Fatalf("batch sizes: %d, %d", len(ids), len(targets))
	}
	// Targets are inputs shifted by one.
	for i := 0; i < 24; i++ {
		if targets[i] != ids[i]+1 {
			t.Fatalf("target[%d] = %d, id = %d", i, targets[i], ids[i])
		}
	}
	b, s := l.Geometry()
	if b != 3 || s != 8 {
		t.Fatal("geometry")
	}
}

func TestLoaderDeterministic(t *testing.T) {
	tokens := make([]int, 50)
	for i := range tokens {
		tokens[i] = i % 7
	}
	l1, _ := NewLoader(tokens, 2, 5, 9)
	l2, _ := NewLoader(tokens, 2, 5, 9)
	a, _ := l1.Next()
	b, _ := l2.Next()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed loaders diverged")
		}
	}
}

func TestLoaderTooShort(t *testing.T) {
	if _, err := NewLoader([]int{1, 2, 3}, 1, 8, 1); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewLoader(make([]int, 100), 0, 8, 1); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestPartition(t *testing.T) {
	tokens := make([]int, 103)
	for i := range tokens {
		tokens[i] = i
	}
	shards, err := Partition(tokens, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("shards = %d", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != 103 {
		t.Fatalf("lost tokens: %d", total)
	}
	// Last shard absorbs the remainder.
	if len(shards[3]) != 28 {
		t.Fatalf("last shard = %d", len(shards[3]))
	}
	// Shards are disjoint and contiguous.
	if shards[1][0] != shards[0][len(shards[0])-1]+1 {
		t.Fatal("shards not contiguous")
	}
	if _, err := Partition(tokens, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := Partition([]int{1}, 5); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v", err)
	}
}
