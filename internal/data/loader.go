package data

import (
	"errors"
	"fmt"

	"menos/internal/tensor"
)

// ErrTooShort is returned when a token stream cannot fill one batch.
var ErrTooShort = errors.New("data: token stream too short for batch geometry")

// Loader samples next-token-prediction batches from a token stream:
// inputs are windows of the stream, targets the same windows shifted by
// one.
type Loader struct {
	tokens []int
	batch  int
	seq    int
	rng    *tensor.RNG
}

// NewLoader builds a loader over tokens. Sampling is deterministic for
// a given seed.
func NewLoader(tokens []int, batch, seq int, seed uint64) (*Loader, error) {
	if batch <= 0 || seq <= 0 {
		return nil, fmt.Errorf("data: bad geometry batch=%d seq=%d", batch, seq)
	}
	if len(tokens) < seq+2 {
		return nil, fmt.Errorf("%w: %d tokens for seq %d", ErrTooShort, len(tokens), seq)
	}
	return &Loader{
		tokens: tokens,
		batch:  batch,
		seq:    seq,
		rng:    tensor.NewRNG(seed),
	}, nil
}

// Next returns one batch: ids and next-token targets, each of length
// batch×seq, row-major by batch element.
func (l *Loader) Next() (ids, targets []int) {
	n := l.batch * l.seq
	ids = make([]int, 0, n)
	targets = make([]int, 0, n)
	maxStart := len(l.tokens) - l.seq - 1
	for b := 0; b < l.batch; b++ {
		start := l.rng.Intn(maxStart)
		ids = append(ids, l.tokens[start:start+l.seq]...)
		targets = append(targets, l.tokens[start+1:start+l.seq+1]...)
	}
	return ids, targets
}

// Geometry returns the loader's batch and sequence length.
func (l *Loader) Geometry() (batch, seq int) { return l.batch, l.seq }

// Partition splits a token stream into n contiguous shards, one per
// client, so each client fine-tunes on its own private data.
func Partition(tokens []int, n int) ([][]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("data: partition into %d shards", n)
	}
	if len(tokens) < n {
		return nil, fmt.Errorf("%w: %d tokens into %d shards", ErrTooShort, len(tokens), n)
	}
	shards := make([][]int, n)
	size := len(tokens) / n
	for i := 0; i < n; i++ {
		lo := i * size
		hi := lo + size
		if i == n-1 {
			hi = len(tokens)
		}
		shards[i] = tokens[lo:hi]
	}
	return shards, nil
}
