package data

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrVocab is returned (wrapped) when text does not fit a tokenizer's
// vocabulary.
var ErrVocab = errors.New("data: vocabulary error")

// Tokenizer converts text to token ids and back.
type Tokenizer interface {
	Encode(text string) ([]int, error)
	Decode(ids []int) (string, error)
	VocabSize() int
}

// CharTokenizer is a character-level tokenizer over a fixed alphabet
// learned from a corpus, the standard choice for tiny-shakespeare
// scale experiments.
type CharTokenizer struct {
	runes  []rune
	lookup map[rune]int
}

var _ Tokenizer = (*CharTokenizer)(nil)

// NewCharTokenizer builds the alphabet from the corpus. maxVocab
// bounds the alphabet (0 means unlimited); corpora exceeding it are
// rejected rather than silently truncated.
func NewCharTokenizer(corpus string, maxVocab int) (*CharTokenizer, error) {
	seen := make(map[rune]bool)
	for _, r := range corpus {
		seen[r] = true
	}
	if maxVocab > 0 && len(seen) > maxVocab {
		return nil, fmt.Errorf("%w: corpus has %d distinct characters, limit %d",
			ErrVocab, len(seen), maxVocab)
	}
	runes := make([]rune, 0, len(seen))
	for r := range seen {
		runes = append(runes, r)
	}
	sort.Slice(runes, func(i, j int) bool { return runes[i] < runes[j] })
	lookup := make(map[rune]int, len(runes))
	for i, r := range runes {
		lookup[r] = i
	}
	return &CharTokenizer{runes: runes, lookup: lookup}, nil
}

// VocabSize returns the alphabet size.
func (t *CharTokenizer) VocabSize() int { return len(t.runes) }

// Encode maps each character to its id.
func (t *CharTokenizer) Encode(text string) ([]int, error) {
	ids := make([]int, 0, len(text))
	for _, r := range text {
		id, ok := t.lookup[r]
		if !ok {
			return nil, fmt.Errorf("%w: character %q not in vocabulary", ErrVocab, r)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Decode maps ids back to characters.
func (t *CharTokenizer) Decode(ids []int) (string, error) {
	var b strings.Builder
	for _, id := range ids {
		if id < 0 || id >= len(t.runes) {
			return "", fmt.Errorf("%w: id %d out of range", ErrVocab, id)
		}
		b.WriteRune(t.runes[id])
	}
	return b.String(), nil
}

// WordTokenizer is a whitespace-word-level tokenizer with an <unk>
// fallback, in the spirit of wikitext preprocessing.
type WordTokenizer struct {
	words  []string
	lookup map[string]int
	unk    int
}

var _ Tokenizer = (*WordTokenizer)(nil)

// NewWordTokenizer builds a vocabulary of the maxVocab-1 most frequent
// words plus <unk>.
func NewWordTokenizer(corpus string, maxVocab int) (*WordTokenizer, error) {
	if maxVocab < 2 {
		return nil, fmt.Errorf("%w: need vocab of at least 2, got %d", ErrVocab, maxVocab)
	}
	counts := make(map[string]int)
	for _, w := range strings.Fields(corpus) {
		counts[w]++
	}
	type wc struct {
		word  string
		count int
	}
	all := make([]wc, 0, len(counts))
	for w, c := range counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].word < all[j].word
	})
	if len(all) > maxVocab-1 {
		all = all[:maxVocab-1]
	}
	t := &WordTokenizer{
		words:  []string{"<unk>"},
		lookup: make(map[string]int, len(all)+1),
	}
	t.lookup["<unk>"] = 0
	for _, e := range all {
		t.lookup[e.word] = len(t.words)
		t.words = append(t.words, e.word)
	}
	return t, nil
}

// VocabSize returns the vocabulary size including <unk>.
func (t *WordTokenizer) VocabSize() int { return len(t.words) }

// Encode maps words to ids, unknown words to <unk>.
func (t *WordTokenizer) Encode(text string) ([]int, error) {
	fields := strings.Fields(text)
	ids := make([]int, len(fields))
	for i, w := range fields {
		id, ok := t.lookup[w]
		if !ok {
			id = t.unk
		}
		ids[i] = id
	}
	return ids, nil
}

// Decode maps ids back to a space-joined string.
func (t *WordTokenizer) Decode(ids []int) (string, error) {
	words := make([]string, len(ids))
	for i, id := range ids {
		if id < 0 || id >= len(t.words) {
			return "", fmt.Errorf("%w: id %d out of range", ErrVocab, id)
		}
		words[i] = t.words[id]
	}
	return strings.Join(words, " "), nil
}
