package experiments

import (
	"fmt"

	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/sched"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// AblationMemoryPolicy sweeps the four memory policies of Fig. 3 on
// the OPT workload, reporting per-round time and scheduling time for
// each. PolicyPersistAll is capped at the client count that still fits
// (4 on one V100 for OPT).
func AblationMemoryPolicy(opts Options) (*trace.Table, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperOPTWorkload()
	// 6 clients: enough that persist-all (Fig. 3(a)) cannot reserve
	// everyone's activations simultaneously — the regime the on-demand
	// design exists for.
	const clients = 6
	t := trace.NewTable(fmt.Sprintf("Ablation: Fig. 3 memory policies (OPT-1.3B, %d clients)", clients),
		"policy", "round (s)", "sched (s)", "comp (s)")
	for _, policy := range []splitsim.MemPolicy{
		splitsim.PolicyPersistAll,
		splitsim.PolicyPreserve,
		splitsim.PolicyReleaseOnWait,
		splitsim.PolicyOnDemand,
	} {
		r, err := splitsim.Run(splitsim.Config{
			Mode:       splitsim.ModeMenos,
			Policy:     policy,
			Clients:    splitsim.HomogeneousClients(clients, w, costmodel.ClientGPUPerf()),
			Iterations: opts.Iterations,
		})
		if err != nil {
			// Policies that cannot serve this client count at all are
			// an ablation result, not a harness failure.
			t.AddRow(policy.String(), "infeasible", "-", "-")
			continue
		}
		t.AddRow(policy.String(),
			trace.Seconds(r.AvgIterationTime()),
			trace.Seconds(r.Aggregate.AvgSched()),
			trace.Seconds(r.Aggregate.AvgComp()))
	}
	return t, nil
}

// AblationSchedulerPolicy compares Algorithm 2's FCFS+backfill against
// pure FCFS and smallest-first under a memory-pressured Llama
// workload, reporting scheduling time and backfill counts.
func AblationSchedulerPolicy(opts Options) (*trace.Table, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperLlamaWorkload()
	// 8 clients: enough memory pressure that backward grants collide
	// and backfilling decisions actually differ between disciplines.
	t := trace.NewTable("Ablation: scheduler disciplines (Llama 2-7B, 8 clients)",
		"discipline", "round (s)", "sched (s)", "backfills")
	for _, policy := range []sched.Policy{
		sched.PolicyFCFSBackfill,
		sched.PolicyFCFS,
		sched.PolicySmallestFirst,
	} {
		r, err := splitsim.Run(splitsim.Config{
			Mode:       splitsim.ModeMenos,
			SchedPol:   policy,
			Clients:    splitsim.HomogeneousClients(8, w, costmodel.ClientGPUPerf()),
			Iterations: opts.Iterations,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation sched %v: %w", policy, err)
		}
		t.AddRow(policy.String(),
			trace.Seconds(r.AvgIterationTime()),
			trace.Seconds(r.Aggregate.AvgSched()),
			fmt.Sprintf("%d", r.SchedStats.Backfilled))
	}
	return t, nil
}

// AblationBaseSharing isolates §3.1's mechanism: persistent memory
// with and without base-model sharing across client counts, for both
// models.
func AblationBaseSharing() *trace.Table {
	t := trace.NewTable("Ablation: base-model sharing (persistent GiB)",
		"model", "clients", "duplicated", "shared", "saving")
	for _, m := range evalModels() {
		for _, n := range m.clientCounts {
			dup := memmodel.VanillaPersistentBytes(m.workload, n)
			shared := memmodel.MenosPersistentBytes(m.workload, n)
			t.AddRow(m.name, fmt.Sprintf("%d", n),
				trace.GiB(dup), trace.GiB(shared),
				fmt.Sprintf("%.1f%%", 100*(1-float64(shared)/float64(dup))))
		}
	}
	return t
}
