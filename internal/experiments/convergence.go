package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/data"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/server"
	"menos/internal/share"
	"menos/internal/tensor"
	"menos/internal/trace"
)

// ConvergenceResult reports a real (functional-plane) fine-tuning run:
// perplexity trajectories for every split client plus the local
// single-device baseline.
type ConvergenceResult struct {
	Fig *trace.Figure
	// Clients holds each split client's per-step perplexities.
	Clients [][]float64
	// Local holds the single-device baseline's per-step perplexities,
	// trained on client 1's data with client 1's seeds.
	Local []float64
	// ClientStepSeconds is each split client's mean wall time per
	// step; LocalStepSeconds is the baseline's. The paper's Fig. 8/9
	// show split runs "taking longer due to cross-internet
	// communication" while converging identically — this captures the
	// time axis.
	ClientStepSeconds []float64
	LocalStepSeconds  float64
}

// FinalGap returns |client-1 final ppl − local final ppl|; the paper's
// claim is that this is zero (split fine-tuning is mathematically
// identical to local fine-tuning).
func (r *ConvergenceResult) FinalGap() float64 {
	if len(r.Clients) == 0 || len(r.Local) == 0 {
		return 0
	}
	c := r.Clients[0][len(r.Clients[0])-1]
	l := r.Local[len(r.Local)-1]
	if c > l {
		return c - l
	}
	return l - c
}

// convergeConfig describes one convergence experiment.
type convergeConfig struct {
	title   string
	model   model.Config
	tokens  []int
	clients int
	batch   int
	seq     int
	lr      float64
}

// Fig8 reproduces "Convergence of OPT": several clients split
// fine-tuning the OPT-flavoured model on a wikitext-style corpus,
// against local fine-tuning. The models are tiny (CPU-trainable) but
// the training is real.
func Fig8(opts Options) (*ConvergenceResult, error) {
	opts = opts.withDefaults()
	corpus := data.SyntheticWikitext(opts.Seed, 3000)
	cfg := model.OPTTiny()
	tok, err := data.NewWordTokenizer(corpus, cfg.Vocab)
	if err != nil {
		return nil, fmt.Errorf("fig8 tokenizer: %w", err)
	}
	tokens, err := tok.Encode(corpus)
	if err != nil {
		return nil, fmt.Errorf("fig8 encode: %w", err)
	}
	return converge(convergeConfig{
		title:   "Fig. 8: convergence of OPT (perplexity vs step)",
		model:   cfg,
		tokens:  tokens,
		clients: 3,
		batch:   4,
		seq:     32,
		lr:      8e-3,
	}, opts)
}

// Fig9 reproduces "Convergence of Llama 2", using the
// tiny-shakespeare-style corpus with character-level tokens.
func Fig9(opts Options) (*ConvergenceResult, error) {
	opts = opts.withDefaults()
	cfg := model.LlamaTiny()
	tok, err := data.NewCharTokenizer(data.Shakespeare(), cfg.Vocab)
	if err != nil {
		return nil, fmt.Errorf("fig9 tokenizer: %w", err)
	}
	tokens, err := tok.Encode(data.Shakespeare())
	if err != nil {
		return nil, fmt.Errorf("fig9 encode: %w", err)
	}
	return converge(convergeConfig{
		title:   "Fig. 9: convergence of Llama 2 (perplexity vs step)",
		model:   cfg,
		tokens:  tokens,
		clients: 3,
		batch:   4,
		seq:     32,
		lr:      8e-3,
	}, opts)
}

// converge runs the experiment: a real Menos server over TCP, N
// concurrent clients on disjoint data shards, and the local baseline.
func converge(cc convergeConfig, opts Options) (*ConvergenceResult, error) {
	weightSeed := opts.Seed*7919 + 13
	adapterSeed := func(i int) uint64 { return opts.Seed*104729 + uint64(i) }
	loaderSeed := func(i int) uint64 { return opts.Seed*1299709 + uint64(i) }

	store, err := share.NewStore(tensor.NewRNG(weightSeed), cc.model)
	if err != nil {
		return nil, fmt.Errorf("converge store: %w", err)
	}
	srv, err := server.New(server.Config{Store: store, OnDemand: true})
	if err != nil {
		return nil, fmt.Errorf("converge server: %w", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("converge listen: %w", err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()

	shards, err := data.Partition(cc.tokens, cc.clients)
	if err != nil {
		return nil, fmt.Errorf("converge shards: %w", err)
	}

	clientPPL := make([][]float64, cc.clients)
	clientStepSecs := make([]float64, cc.clients)
	var wg sync.WaitGroup
	errs := make(chan error, cc.clients)
	for i := 0; i < cc.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ccfg := client.Config{
				ClientID:    fmt.Sprintf("client-%d", i+1),
				Model:       cc.model,
				WeightSeed:  weightSeed,
				Cut:         model.DefaultCut,
				Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
				AdapterSeed: adapterSeed(i),
				LR:          cc.lr,
				Batch:       cc.batch,
				Seq:         cc.seq,
			}
			c, err := client.Dial(l.Addr().String(), ccfg)
			if err != nil {
				errs <- fmt.Errorf("client %d dial: %w", i, err)
				return
			}
			defer c.Close()
			loader, err := data.NewLoader(shards[i], cc.batch, cc.seq, loaderSeed(i))
			if err != nil {
				errs <- fmt.Errorf("client %d loader: %w", i, err)
				return
			}
			ppl := make([]float64, 0, opts.Steps)
			start := time.Now()
			for step := 0; step < opts.Steps; step++ {
				ids, targets := loader.Next()
				res, err := c.Step(ids, targets)
				if err != nil {
					errs <- fmt.Errorf("client %d step %d: %w", i, step, err)
					return
				}
				ppl = append(ppl, res.Perplexity)
			}
			clientPPL[i] = ppl
			clientStepSecs[i] = time.Since(start).Seconds() / float64(opts.Steps)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	localStart := time.Now()
	local, err := localRun(cc, weightSeed, adapterSeed(0), loaderSeed(0), shards[0], opts.Steps)
	if err != nil {
		return nil, err
	}
	localStepSecs := time.Since(localStart).Seconds() / float64(opts.Steps)

	if err := store.VerifyIntegrity(); err != nil {
		return nil, fmt.Errorf("converge: shared base modified: %w", err)
	}

	fig := trace.NewFigure(cc.title, "step")
	for i, ppl := range clientPPL {
		s := fig.NewSeries(fmt.Sprintf("client-%d", i+1))
		for step, p := range ppl {
			s.Add(float64(step), p)
		}
	}
	ls := fig.NewSeries("local")
	for step, p := range local {
		ls.Add(float64(step), p)
	}
	return &ConvergenceResult{
		Fig:               fig,
		Clients:           clientPPL,
		Local:             local,
		ClientStepSeconds: clientStepSecs,
		LocalStepSeconds:  localStepSecs,
	}, nil
}

// localRun is the single-device baseline: the same model, seeds, data
// and optimizer as split client 1, fine-tuned without any server.
func localRun(cc convergeConfig, weightSeed, adapterSeed, loaderSeed uint64, shard []int, steps int) ([]float64, error) {
	m, err := model.New(tensor.NewRNG(weightSeed), cc.model)
	if err != nil {
		return nil, fmt.Errorf("local model: %w", err)
	}
	m.SetFrozenBase(true)
	spec := adapter.LoRASpec(adapter.DefaultLoRA())
	// Match the split run's adapter placement and seeding exactly:
	// client-side blocks use the salted stream, server-side blocks the
	// plain stream (see client.New and server.handshake).
	adClient, err := spec.Inject(tensor.NewRNG(adapterSeed^client.AdapterSalt), m.Blocks[:model.DefaultCut], cc.model.Dim)
	if err != nil {
		return nil, fmt.Errorf("local client adapter: %w", err)
	}
	adServer, err := spec.Inject(tensor.NewRNG(adapterSeed), m.Blocks[model.DefaultCut:], cc.model.Dim)
	if err != nil {
		return nil, fmt.Errorf("local server adapter: %w", err)
	}
	optC := nn.NewAdam(cc.lr)
	optS := nn.NewAdam(cc.lr)

	loader, err := data.NewLoader(shard, cc.batch, cc.seq, loaderSeed)
	if err != nil {
		return nil, fmt.Errorf("local loader: %w", err)
	}
	ppl := make([]float64, 0, steps)
	for step := 0; step < steps; step++ {
		ids, targets := loader.Next()
		res, err := m.LossAndGrad(ids, targets, cc.batch, cc.seq)
		if err != nil {
			return nil, fmt.Errorf("local step %d: %w", step, err)
		}
		ppl = append(ppl, nn.Perplexity(res.Loss))
		if err := optC.Step(adClient.Params()); err != nil {
			return nil, err
		}
		if err := optS.Step(adServer.Params()); err != nil {
			return nil, err
		}
		nn.ZeroGrads(adClient.Params())
		nn.ZeroGrads(adServer.Params())
	}
	return ppl, nil
}
