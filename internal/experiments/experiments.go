// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): the §2.3 measurement study, Fig. 5 memory
// scaling, Fig. 6 iteration times, Tables 1-3 time breakdowns, Fig. 7
// policy comparison, Fig. 8/9 convergence (real training), and Fig. 10
// multi-GPU scaling — plus ablations for the design choices called out
// in DESIGN.md.
package experiments

import (
	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/splitsim"
)

// Options tunes experiment sizes. Zero values select the defaults used
// for reported results; tests shrink them.
type Options struct {
	// Iterations per simulated fine-tuning run (default 12).
	Iterations int
	// Steps per real convergence run (default 60).
	Steps int
	// Seed for data sampling and weight init (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 12
	}
	if o.Steps == 0 {
		o.Steps = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// evalModel identifies the two evaluation workloads.
type evalModel struct {
	name     string
	workload memmodel.Workload
	// maxVanilla is where the paper stops the vanilla baseline
	// (Llama's vanilla runs end at 4 clients).
	clientCounts []int
}

func evalModels() []evalModel {
	return []evalModel{
		{name: "OPT-1.3B", workload: memmodel.PaperOPTWorkload(), clientCounts: []int{1, 2, 3, 4, 5, 6}},
		{name: "Llama 2-7B", workload: memmodel.PaperLlamaWorkload(), clientCounts: []int{1, 2, 3, 4}},
	}
}

// runMode executes one DES configuration.
func runMode(mode splitsim.Mode, w memmodel.Workload, clients, iterations int) (*splitsim.Result, error) {
	return splitsim.Run(splitsim.Config{
		Mode:       mode,
		Clients:    splitsim.HomogeneousClients(clients, w, costmodel.ClientGPUPerf()),
		Iterations: iterations,
	})
}
