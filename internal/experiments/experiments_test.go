package experiments

import (
	"strings"
	"testing"

	"menos/internal/splitsim"
)

func testOpts() Options { return Options{Iterations: 8, Steps: 20, Seed: 3} }

func TestMeasurementStudyTable(t *testing.T) {
	tbl := MeasurementStudy()
	out := tbl.Render()
	for _, want := range []string{"base model parameters", "intermediate results", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig5ReductionMatchesPaper(t *testing.T) {
	red := Fig5Reduction()
	if r := red["OPT-1.3B"]; r < 0.55 || r > 0.78 {
		t.Fatalf("OPT reduction %.3f, paper 0.641", r)
	}
	if r := red["Llama 2-7B"]; r < 0.65 || r > 0.82 {
		t.Fatalf("Llama reduction %.3f, paper 0.722", r)
	}
	figs := Fig5()
	if len(figs) != 2 {
		t.Fatalf("fig5 has %d figures", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Fatalf("fig5 series = %d", len(f.Series))
		}
	}
}

func TestFig6AndTables(t *testing.T) {
	s := NewSweep(testOpts())
	figs, err := Fig6(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig6 figures = %d", len(figs))
	}

	// Headline shape: vanilla Llama at 4 clients is an order of
	// magnitude slower than Menos.
	llama := evalModels()[1]
	v4, err := s.Result(splitsim.ModeVanilla, llama, 4)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := s.Result(splitsim.ModeMenos, llama, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v4.AvgIterationTime() < 5*m4.AvgIterationTime() {
		t.Fatalf("vanilla %v not >> menos %v", v4.AvgIterationTime(), m4.AvgIterationTime())
	}

	t1, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{t1.Render(), t2.Render(), t3.Render()} {
		if !strings.Contains(tbl, "N/A") {
			t.Fatalf("llama 5-6 client cells should be N/A:\n%s", tbl)
		}
		if !strings.Contains(tbl, "menos") || !strings.Contains(tbl, "vanilla") {
			t.Fatalf("missing method rows:\n%s", tbl)
		}
	}
}

func TestFig7PreservingQueues(t *testing.T) {
	figs, err := Fig7(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig7 figures = %d", len(figs))
	}
	for _, f := range figs {
		onDemand, preserve := f.Series[0], f.Series[1]
		// At the largest client count, preserving must schedule far
		// slower than on-demand.
		last := len(onDemand.Y) - 1
		if preserve.Y[last] < 2*onDemand.Y[last] {
			t.Fatalf("%s: preserve %.3f not >> on-demand %.3f",
				f.Title, preserve.Y[last], onDemand.Y[last])
		}
	}
}

func TestFig8ConvergenceOPT(t *testing.T) {
	res, err := Fig8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	assertConvergence(t, res)
}

func TestFig9ConvergenceLlama(t *testing.T) {
	res, err := Fig9(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	assertConvergence(t, res)
}

func assertConvergence(t *testing.T, res *ConvergenceResult) {
	t.Helper()
	if len(res.Clients) != 3 {
		t.Fatalf("clients = %d", len(res.Clients))
	}
	for i, ppl := range res.Clients {
		first, last := ppl[0], ppl[len(ppl)-1]
		if last >= first {
			t.Fatalf("client %d did not converge: %.2f -> %.2f", i, first, last)
		}
	}
	// The paper's claim, exact: client 1's trajectory equals the local
	// baseline's (identical computation, distributed).
	if gap := res.FinalGap(); gap > 1e-3 {
		t.Fatalf("split vs local final perplexity gap = %v", gap)
	}
	for step := range res.Local {
		diff := res.Clients[0][step] - res.Local[step]
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-3 {
			t.Fatalf("step %d: client %.6f vs local %.6f", step, res.Clients[0][step], res.Local[step])
		}
	}
}

func TestFig10MultiGPU(t *testing.T) {
	fig, err := Fig10(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	one, four := fig.Series[0], fig.Series[1]
	last := len(one.Y) - 1
	if four.Y[last] >= one.Y[last] {
		t.Fatalf("4 GPUs (%.2f s) not faster than 1 GPU (%.2f s) at 10 clients",
			four.Y[last], one.Y[last])
	}
	// 1 GPU degrades from 2 to 10 clients; 4 GPUs stay near-flat.
	if one.Y[last] <= one.Y[0] {
		t.Fatalf("1-GPU series not degrading: %.2f -> %.2f", one.Y[0], one.Y[last])
	}
	if four.Y[last] > 1.6*four.Y[0] {
		t.Fatalf("4-GPU series not flat: %.2f -> %.2f", four.Y[0], four.Y[last])
	}
}

func TestAblations(t *testing.T) {
	memTbl, err := AblationMemoryPolicy(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(memTbl.Render(), "on-demand") {
		t.Fatalf("policy table:\n%s", memTbl.Render())
	}
	schedTbl, err := AblationSchedulerPolicy(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := schedTbl.Render()
	if !strings.Contains(out, "fcfs+backfill") || !strings.Contains(out, "smallest-first") {
		t.Fatalf("sched table:\n%s", out)
	}
	shareTbl := AblationBaseSharing()
	if !strings.Contains(shareTbl.Render(), "%") {
		t.Fatalf("sharing table:\n%s", shareTbl.Render())
	}
}

func TestSweepMemoizes(t *testing.T) {
	s := NewSweep(testOpts())
	m := evalModels()[0]
	a, err := s.Result(splitsim.ModeMenos, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Result(splitsim.ModeMenos, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("sweep did not memoize")
	}
}

// TestFig3DutyCycleOrdering reproduces the Fig. 3 narrative: each
// optimization strictly reduces how long transient memory is held.
// Persist-all pins it near-permanently; on-demand touches it only
// during compute bursts.
func TestFig3DutyCycleOrdering(t *testing.T) {
	tbl, rows, err := Fig3(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Render(), "on-demand") {
		t.Fatalf("table:\n%s", tbl.Render())
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DutyCycle >= rows[i-1].DutyCycle {
			t.Fatalf("duty cycle not strictly decreasing: %v (%v) -> %v (%v)",
				rows[i-1].Policy, rows[i-1].DutyCycle, rows[i].Policy, rows[i].DutyCycle)
		}
	}
	// Persist-all holds memory almost the whole time; on-demand only
	// in short bursts ("the peak memory usage only happens in a very
	// short period").
	if rows[0].DutyCycle < 0.85 {
		t.Fatalf("persist-all duty = %v, want ~1", rows[0].DutyCycle)
	}
	if rows[3].DutyCycle > 0.35 {
		t.Fatalf("on-demand duty = %v, want small", rows[3].DutyCycle)
	}
	// All policies peak at roughly the same transient size (the
	// activation set); the win is temporal, not spatial.
	for _, r := range rows {
		if r.PeakGiB < 0.8*rows[0].PeakGiB {
			t.Fatalf("%v peak %v far below persist-all %v", r.Policy, r.PeakGiB, rows[0].PeakGiB)
		}
	}
}
