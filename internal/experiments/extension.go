package experiments

import (
	"fmt"

	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/quant"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// Extension experiments: configurations the paper argues for but does
// not evaluate. They exercise the same code paths as the main
// artifacts.

// ExtensionQuantization quantifies the paper's orthogonality claim:
// quantizing the *shared* base stacks with base-model sharing. The
// table reports persistent server memory for 4 Llama clients under
// every combination of {duplicated, shared} × {fp32, int8, int4}.
func ExtensionQuantization() *trace.Table {
	t := trace.NewTable("Extension: quantized shared base (Llama 2-7B, 4 clients, persistent GiB)",
		"precision", "vanilla (duplicated)", "menos (shared)", "combined saving")
	base := memmodel.VanillaPersistentBytes(memmodel.PaperLlamaWorkload(), 4)
	for _, prec := range []quant.Precision{0, quant.Int8, quant.Int4} {
		w := memmodel.PaperLlamaWorkload()
		w.BaseQuant = prec
		name := "fp32"
		if prec != 0 {
			name = prec.String()
		}
		vanilla := memmodel.VanillaPersistentBytes(w, 4)
		shared := memmodel.MenosPersistentBytes(w, 4)
		t.AddRow(name, trace.GiB(vanilla), trace.GiB(shared),
			fmt.Sprintf("%.1f%%", 100*(1-float64(shared)/float64(base))))
	}
	return t
}

// ExtensionMultiServer scales Menos horizontally: 12 Llama clients on
// one vs. two single-V100 servers (each with its own shared base copy
// and scheduler). The per-server client density falls, so both the
// release overhead and the backward queueing shrink.
func ExtensionMultiServer(opts Options) (*trace.Table, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperLlamaWorkload()
	t := trace.NewTable("Extension: multi-server scale-out (Llama 2-7B, 12 CPU clients)",
		"servers", "round (s)", "sched (s)", "comp (s)", "persistent (GiB)")
	for _, servers := range []int{1, 2, 3} {
		r, err := splitsim.Run(splitsim.Config{
			Mode:       splitsim.ModeMenos,
			Servers:    servers,
			Clients:    splitsim.HomogeneousClients(12, w, costmodel.ClientCPUPerf()),
			Iterations: opts.Iterations,
		})
		if err != nil {
			return nil, fmt.Errorf("multi-server extension (%d servers): %w", servers, err)
		}
		t.AddRow(fmt.Sprintf("%d", servers),
			trace.Seconds(r.AvgIterationTime()),
			trace.Seconds(r.Aggregate.AvgSched()),
			trace.Seconds(r.Aggregate.AvgComp()),
			trace.GiB(r.PersistentBytes))
	}
	return t, nil
}

// ExtensionHeterogeneousClients simulates the §3.1 heterogeneity
// story at full scale: clients with different batch sizes and cut
// depths sharing one server, which homogeneous sweeps never exercise.
func ExtensionHeterogeneousClients(opts Options) (*trace.Table, error) {
	opts = opts.withDefaults()
	base := memmodel.PaperLlamaWorkload()

	small := base
	small.Batch = 2
	deep := base
	deep.Cut = 4 // privacy-sensitive client keeps more layers local

	clients := []splitsim.ClientSpec{
		{ID: "standard", Workload: base, Platform: costmodel.ClientGPUPerf()},
		{ID: "small-batch", Workload: small, Platform: costmodel.ClientGPUPerf()},
		{ID: "deep-cut", Workload: deep, Platform: costmodel.ClientGPUPerf()},
		{ID: "cpu-client", Workload: base, Platform: costmodel.ClientCPUPerf()},
	}
	r, err := splitsim.Run(splitsim.Config{
		Mode:       splitsim.ModeMenos,
		Clients:    clients,
		Iterations: opts.Iterations,
	})
	if err != nil {
		return nil, fmt.Errorf("heterogeneous extension: %w", err)
	}
	t := trace.NewTable("Extension: heterogeneous clients (Llama 2-7B, Menos)",
		"client", "round (s)", "comm (s)", "comp (s)", "sched (s)")
	for _, c := range r.Clients {
		t.AddRow(c.ID,
			trace.Seconds(c.Breakdown.AvgTotal()),
			trace.Seconds(c.Breakdown.AvgComm()),
			trace.Seconds(c.Breakdown.AvgComp()),
			trace.Seconds(c.Breakdown.AvgSched()))
	}
	return t, nil
}
