package experiments

import (
	"strings"
	"testing"
	"time"

	"menos/internal/memmodel"
	"menos/internal/quant"
)

func TestExtensionQuantizationTable(t *testing.T) {
	tbl := ExtensionQuantization()
	out := tbl.Render()
	for _, want := range []string{"fp32", "int8", "int4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// int4 shared must beat int8 shared must beat fp32 shared.
	w := memmodel.PaperLlamaWorkload()
	w8 := w
	w8.BaseQuant = quant.Int8
	w4 := w
	w4.BaseQuant = quant.Int4
	fp32 := memmodel.MenosPersistentBytes(w, 4)
	i8 := memmodel.MenosPersistentBytes(w8, 4)
	i4 := memmodel.MenosPersistentBytes(w4, 4)
	if !(i4 < i8 && i8 < fp32) {
		t.Fatalf("quant ordering: fp32 %d, int8 %d, int4 %d", fp32, i8, i4)
	}
	// Combined saving beats either technique alone: Menos+int4 must be
	// under 10% of fp32 duplication.
	dup := memmodel.VanillaPersistentBytes(w, 4)
	if float64(i4) > 0.10*float64(dup) {
		t.Fatalf("combined saving too small: %d vs duplicated %d", i4, dup)
	}
}

func TestExtensionHeterogeneous(t *testing.T) {
	tbl, err := ExtensionHeterogeneousClients(Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, id := range []string{"standard", "small-batch", "deep-cut", "cpu-client"} {
		if !strings.Contains(out, id) {
			t.Fatalf("missing client %q:\n%s", id, out)
		}
	}
	rows := tbl.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every client's round completes in the Menos regime (well under
	// the vanilla swap times).
	for _, row := range rows {
		secs := row[1]
		d, err := time.ParseDuration(secs + "s")
		if err != nil {
			t.Fatalf("parse %q: %v", secs, err)
		}
		if d > 15*time.Second {
			t.Fatalf("client %s round = %v, out of Menos regime", row[0], d)
		}
	}
}

func TestExtensionMultiServer(t *testing.T) {
	tbl, err := ExtensionMultiServer(Options{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	parse := func(s string) float64 {
		d, err := time.ParseDuration(s + "s")
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return d.Seconds()
	}
	one, two := parse(rows[0][1]), parse(rows[1][1])
	if two >= one {
		t.Fatalf("2 servers (%v s) not faster than 1 (%v s)", two, one)
	}
}
