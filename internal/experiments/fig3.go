package experiments

import (
	"fmt"

	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// Fig3Row quantifies one memory policy's usage pattern.
type Fig3Row struct {
	Policy    splitsim.MemPolicy
	PeakGiB   float64
	AvgGiB    float64
	DutyCycle float64
}

// Fig3 reproduces the design figure "GPU memory usage patterns in
// split fine-tuning with different optimization mechanisms":
// a single Llama client runs several iterations under each of the four
// policies, and the transient-memory timeline is reduced to peak,
// time-average and duty cycle. The paper's qualitative claim — that
// Fig. 3(d) keeps memory "low for most of the iteration" with peaks
// "in a very short period" — becomes a measured duty cycle.
func Fig3(opts Options) (*trace.Table, []Fig3Row, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperLlamaWorkload()
	t := trace.NewTable("Fig. 3: transient GPU memory patterns (Llama 2-7B, 1 client)",
		"policy", "peak (GiB)", "time-avg (GiB)", "duty cycle")
	var rows []Fig3Row
	for _, policy := range []splitsim.MemPolicy{
		splitsim.PolicyPersistAll,
		splitsim.PolicyPreserve,
		splitsim.PolicyReleaseOnWait,
		splitsim.PolicyOnDemand,
	} {
		r, err := splitsim.Run(splitsim.Config{
			Mode:       splitsim.ModeMenos,
			Policy:     policy,
			Clients:    splitsim.HomogeneousClients(1, w, costmodel.ClientGPUPerf()),
			Iterations: opts.Iterations,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fig3 policy %v: %w", policy, err)
		}
		row := Fig3Row{
			Policy:    policy,
			PeakGiB:   gib(r.PeakTransientBytes()),
			AvgGiB:    gib(r.TimeAvgTransientBytes()),
			DutyCycle: r.DutyCycle(),
		}
		rows = append(rows, row)
		t.AddRow(policy.String(),
			fmt.Sprintf("%.2f", row.PeakGiB),
			fmt.Sprintf("%.2f", row.AvgGiB),
			fmt.Sprintf("%.2f", row.DutyCycle))
	}
	return t, rows, nil
}
