package experiments

import (
	"fmt"

	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// Fig5 reproduces "GPU memory consumption for persistent components"
// (base parameters, adapters, optimizer state) as the client count
// scales, for both evaluation models.
func Fig5() []*trace.Figure {
	var figs []*trace.Figure
	for _, m := range evalModels() {
		fig := trace.NewFigure(
			fmt.Sprintf("Fig. 5 (%s): persistent GPU memory (GiB) vs clients", m.name),
			"clients")
		vanilla := fig.NewSeries("vanilla")
		menos := fig.NewSeries("menos")
		for _, n := range m.clientCounts {
			vanilla.Add(float64(n), gib(memmodel.VanillaPersistentBytes(m.workload, n)))
			menos.Add(float64(n), gib(memmodel.MenosPersistentBytes(m.workload, n)))
		}
		figs = append(figs, fig)
	}
	return figs
}

// Fig5Reduction returns the headline savings at 4 clients (the paper
// reports 64.1% for OPT and 72.2% for Llama).
func Fig5Reduction() map[string]float64 {
	out := make(map[string]float64, 2)
	for _, m := range evalModels() {
		v := float64(memmodel.VanillaPersistentBytes(m.workload, 4))
		me := float64(memmodel.MenosPersistentBytes(m.workload, 4))
		out[m.name] = 1 - me/v
	}
	return out
}

// Fig6 reproduces "average time for clients to complete one round of
// fine-tuning" vs client count.
func Fig6(s *Sweep) ([]*trace.Figure, error) {
	var figs []*trace.Figure
	for _, m := range evalModels() {
		fig := trace.NewFigure(
			fmt.Sprintf("Fig. 6 (%s): per-round fine-tuning time (s) vs clients", m.name),
			"clients")
		series := map[splitsim.Mode]*trace.Series{
			splitsim.ModeVanilla: fig.NewSeries("vanilla"),
			splitsim.ModeMenos:   fig.NewSeries("menos"),
		}
		for _, mode := range []splitsim.Mode{splitsim.ModeVanilla, splitsim.ModeMenos} {
			for _, n := range m.clientCounts {
				r, err := s.Result(mode, m, n)
				if err != nil {
					return nil, err
				}
				series[mode].Add(float64(n), r.AvgIterationTime().Seconds())
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig7 reproduces "average schedule time with increasing number of
// clients": Menos' on-demand allocation against the memory-preserving
// policy (Fig. 3(b)).
func Fig7(opts Options) ([]*trace.Figure, error) {
	opts = opts.withDefaults()
	type cfg struct {
		name     string
		workload memmodel.Workload
		counts   []int
	}
	cases := []cfg{
		{"OPT-1.3B", memmodel.PaperOPTWorkload(), []int{2, 4, 8, 16}},
		{"Llama 2-7B", memmodel.PaperLlamaWorkload(), []int{2, 3, 4}},
	}
	var figs []*trace.Figure
	for _, c := range cases {
		fig := trace.NewFigure(
			fmt.Sprintf("Fig. 7 (%s): average schedule time (s) vs clients", c.name),
			"clients")
		onDemand := fig.NewSeries("on-demand (Menos)")
		preserve := fig.NewSeries("memory-preserving")
		for _, n := range c.counts {
			for _, policy := range []splitsim.MemPolicy{splitsim.PolicyOnDemand, splitsim.PolicyPreserve} {
				r, err := splitsim.Run(splitsim.Config{
					Mode:       splitsim.ModeMenos,
					Policy:     policy,
					Clients:    splitsim.HomogeneousClients(n, c.workload, costmodel.ClientGPUPerf()),
					Iterations: opts.Iterations,
				})
				if err != nil {
					return nil, fmt.Errorf("fig7 %s n=%d policy=%v: %w", c.name, n, policy, err)
				}
				sched := r.Aggregate.AvgSched().Seconds()
				if policy == splitsim.PolicyOnDemand {
					onDemand.Add(float64(n), sched)
				} else {
					preserve.Add(float64(n), sched)
				}
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig10 reproduces "fine-tuning time with multi-GPU server and scaling
// clients on CPU devices": Llama 2, clients 2..10, one vs four V100s.
func Fig10(opts Options) (*trace.Figure, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperLlamaWorkload()
	fig := trace.NewFigure("Fig. 10: fine-tuning time (s), CPU clients, multi-GPU server", "clients")
	oneGPU := fig.NewSeries("1 GPU")
	fourGPU := fig.NewSeries("4 GPUs")
	for _, n := range []int{2, 4, 6, 8, 10} {
		for _, gpus := range []int{1, 4} {
			r, err := splitsim.Run(splitsim.Config{
				Mode:       splitsim.ModeMenos,
				GPUs:       gpus,
				Clients:    splitsim.HomogeneousClients(n, w, costmodel.ClientCPUPerf()),
				Iterations: opts.Iterations,
			})
			if err != nil {
				return nil, fmt.Errorf("fig10 n=%d gpus=%d: %w", n, gpus, err)
			}
			secs := r.AvgIterationTime().Seconds()
			if gpus == 1 {
				oneGPU.Add(float64(n), secs)
			} else {
				fourGPU.Add(float64(n), secs)
			}
		}
	}
	return fig, nil
}

func gib(bytes int64) float64 { return float64(bytes) / (1 << 30) }
