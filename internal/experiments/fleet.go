package experiments

import (
	"fmt"
	"time"

	"menos/internal/costmodel"
	"menos/internal/fleet"
	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/sched"
	"menos/internal/simnet"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// Fleet-sweep tuning. The sweep runs a heterogeneous Llama roster — a
// repeating heavy/standard/light mix of cut depths, so per-client
// transient peaks differ by ~2× — on a LAN, the dense-deployment
// regime where server memory, not the link, is the bottleneck. Clients
// arrive staggered so the autoscaled cells see load build up.
const (
	// FleetStaticServers is the fixed fleet size of the static cells.
	FleetStaticServers = 3
	// FleetMaxServers caps the autoscaled cells (they start from one).
	FleetMaxServers = 6
	// fleetStagger spaces client arrivals.
	fleetStagger = 500 * time.Millisecond
)

// fleetCuts is the repeating split-point mix: cut 1 keeps almost the
// whole model server-side (the paper's configuration, heaviest
// transient peak), deeper cuts shift blocks to the client and shrink
// the server-side footprint. The heavy client leads because the
// server's base stack is sized from the first client's split.
var fleetCuts = []int{1, 8, 16}

// FleetSweep measures what telemetry-driven placement and autoscaling
// (docs/FLEET.md) buy on a multi-server fleet. For each roster size and
// placement policy it runs the same workload twice: on a static
// 3-server fleet, then autoscaled from a single server. Round-robin is
// the baseline — it interleaves blindly, and with a period-3
// heterogeneous mix on 3 servers it degenerates to stacking every
// heavy client on server 0. Least-loaded balances counts;
// memory-best-fit packs predicted peaks and is the only policy that
// keeps the heavy clients apart on purpose. The p99 grant wait and the
// shed count are read per cell from a fresh registry.
func FleetSweep(opts Options) (*trace.Table, error) {
	opts = opts.withDefaults()
	t := trace.NewTable(
		fmt.Sprintf("Fleet sweep (Llama 2-7B heavy/std/light mix, LAN, static %d servers vs autoscale 1..%d)",
			FleetStaticServers, FleetMaxServers),
		"clients", "policy", "static p99 (s)", "static sheds",
		"auto p99 (s)", "auto sheds", "auto servers", "migrations", "scale events")
	policies := []struct {
		name string
		make func() fleet.Placer
	}{
		{"round-robin", func() fleet.Placer { return fleet.NewRoundRobin() }},
		{"least-loaded", func() fleet.Placer { return fleet.NewLeastLoaded() }},
		{"memory-best-fit", func() fleet.Placer { return fleet.NewMemoryBestFit() }},
	}
	for _, clients := range []int{12, 24, 48} {
		for _, pol := range policies {
			static, err := runFleet(clients, opts.Iterations, pol.make(), nil)
			if err != nil {
				return nil, fmt.Errorf("fleet sweep (%d clients, %s, static): %w", clients, pol.name, err)
			}
			auto, err := runFleet(clients, opts.Iterations, pol.make(),
				&fleet.AutoscaleConfig{Min: 1, Max: FleetMaxServers})
			if err != nil {
				return nil, fmt.Errorf("fleet sweep (%d clients, %s, autoscaled): %w", clients, pol.name, err)
			}
			t.AddRow(fmt.Sprintf("%d", clients), pol.name,
				fmt.Sprintf("%.2f", static.p99),
				fmt.Sprintf("%d", static.result.Rejected),
				fmt.Sprintf("%.2f", auto.p99),
				fmt.Sprintf("%d", auto.result.Rejected),
				fmt.Sprintf("%d->%d (peak %d)", auto.result.Fleet.StartServers,
					auto.result.Fleet.FinalServers, auto.result.Fleet.PeakServers),
				fmt.Sprintf("%d", auto.result.Fleet.Migrations),
				fmt.Sprintf("%d", auto.result.Fleet.ScaleEvents))
		}
	}
	return t, nil
}

// fleetClients builds the heterogeneous roster: the paper's Llama
// configuration at rotating cut depths, arrivals staggered.
func fleetClients(n int) []splitsim.ClientSpec {
	specs := make([]splitsim.ClientSpec, n)
	for i := range specs {
		w := memmodel.PaperLlamaWorkload()
		w.Cut = fleetCuts[i%len(fleetCuts)]
		specs[i] = splitsim.ClientSpec{
			ID:         fmt.Sprintf("client-%d", i+1),
			Workload:   w,
			Platform:   costmodel.ClientGPUPerf(),
			StartDelay: time.Duration(i) * fleetStagger,
		}
	}
	return specs
}

// fleetRun is one cell of the sweep: the simulation result plus the
// grant-wait p99 read back from the cell's own registry.
type fleetRun struct {
	result *splitsim.Result
	p99    float64 // seconds
}

// runFleet runs one fleet cell. autoscale nil means the static
// FleetStaticServers fleet; non-nil starts from one server and lets
// the autoscaler grow it. Every cell runs under the overload sweep's
// SLO so admission pressure is both visible (sheds) and a live scaling
// signal.
func runFleet(clients, iterations int, placer fleet.Placer, autoscale *fleet.AutoscaleConfig) (fleetRun, error) {
	reg := obs.NewRegistry()
	cfg := splitsim.Config{
		Mode:       splitsim.ModeMenos,
		SLO:        sched.SLO{TargetP99: OverloadSLO, Window: OverloadWindow},
		Servers:    FleetStaticServers,
		Placer:     placer,
		Clients:    fleetClients(clients),
		Iterations: iterations,
		LinkPreset: simnet.LANPreset,
		Metrics:    reg,
	}
	if autoscale != nil {
		cfg.Servers = autoscale.Min
		if cfg.Servers <= 0 {
			cfg.Servers = 1
		}
		cfg.Autoscale = autoscale
	}
	r, err := splitsim.Run(cfg)
	if err != nil {
		return fleetRun{}, err
	}
	h := reg.Histogram(obs.MetricSchedWaitSeconds, obs.DurationBuckets())
	return fleetRun{result: r, p99: h.Quantile(0.99)}, nil
}
