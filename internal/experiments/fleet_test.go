package experiments

import (
	"strings"
	"testing"

	"menos/internal/fleet"
)

// TestFleetSweepSmoke runs the sweep at reduced iteration count and
// checks its shape: one row per roster size and policy, with both the
// static and the autoscaled columns populated.
func TestFleetSweepSmoke(t *testing.T) {
	tbl, err := FleetSweep(Options{Iterations: 2, Steps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{
		"clients", "policy", "static p99 (s)", "auto p99 (s)",
		"auto servers", "migrations", "scale events",
		"round-robin", "least-loaded", "memory-best-fit",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if rows := strings.Count(out, "\n"); rows < 9 {
		t.Fatalf("expected 9 data rows, got table:\n%s", out)
	}
}

// TestFleetSweepDeterministic is the sweep-level reproducibility
// guarantee: two full sweeps — every placement decision, scale event,
// migration, and histogram read — must render byte-identically. This
// covers the acceptance point that an autoscaled run reaches the same
// steady-state server count on every repeat.
func TestFleetSweepDeterministic(t *testing.T) {
	a, err := FleetSweep(Options{Iterations: 2, Steps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetSweep(Options{Iterations: 2, Steps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("fleet sweep not reproducible:\n--- first ---\n%s\n--- second ---\n%s", a.Render(), b.Render())
	}
}

// TestFleetBestFitBeatsRoundRobin pins the sweep's headline at one
// saturated static point: with the period-3 heavy/std/light mix on 3
// servers, round-robin stacks every heavy client on server 0 while
// memory-best-fit packs predicted peaks, so best-fit must strictly
// reduce the grant-wait p99 or the shed count at 24 clients.
func TestFleetBestFitBeatsRoundRobin(t *testing.T) {
	rr, err := runFleet(24, 6, fleet.NewRoundRobin(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := runFleet(24, 6, fleet.NewMemoryBestFit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(bf.p99 < rr.p99 || bf.result.Rejected < rr.result.Rejected) {
		t.Fatalf("memory-best-fit (p99 %.2fs, sheds %d) no better than round-robin (p99 %.2fs, sheds %d)",
			bf.p99, bf.result.Rejected, rr.p99, rr.result.Rejected)
	}
	if bf.result.Fleet.Policy != "memory-best-fit" || rr.result.Fleet.Policy != "round-robin" {
		t.Fatalf("policy names: %q vs %q", bf.result.Fleet.Policy, rr.result.Fleet.Policy)
	}
}

// TestFleetAutoscaledGrows checks the autoscaled cell actually scales:
// starting from one server under the 24-client mix, the fleet must
// grow past its starting size and migrate clients onto the new
// capacity.
func TestFleetAutoscaledGrows(t *testing.T) {
	auto, err := runFleet(24, 4, fleet.NewLeastLoaded(), &fleet.AutoscaleConfig{Min: 1, Max: FleetMaxServers})
	if err != nil {
		t.Fatal(err)
	}
	fs := auto.result.Fleet
	if fs.StartServers != 1 || fs.PeakServers <= 1 || fs.ScaleEvents == 0 {
		t.Fatalf("fleet never grew: %+v", fs)
	}
	if fs.Migrations == 0 {
		t.Fatalf("no client migrated onto the new capacity: %+v", fs)
	}
}
