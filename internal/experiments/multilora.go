package experiments

import (
	"fmt"
	"time"

	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/sched"
	"menos/internal/simnet"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// Multi-LoRA sweep tuning. The sweep serves OPT clients over a LAN so
// communication does not hide server-side effects, on a 4-GPU server so
// a full backward batch fits one grant, with a hold window wide enough
// for lockstep clients to coalesce.
const (
	// MultiLoRAHold is the formation hold; lockstep clients join well
	// inside it, so measured batches fill to the cap.
	MultiLoRAHold = 100 * time.Millisecond
	// multiLoRAGPUs sizes the server so MaxSize concurrent backward
	// demands fit a single batched grant.
	multiLoRAGPUs = 4
)

// MultiLoRABatchCaps are the batch-size axis of the sweep. Cap 1 is
// the serialized baseline: batched mode runs one kernel invocation at
// a time per server, so a size-1 policy serializes every client's
// kernels end to end and the speedup at larger caps is exactly what
// batch formation buys (docs/BATCHING.md).
var MultiLoRABatchCaps = []int{1, 2, 4, 8, 16}

// MultiLoRAClientCounts are the tenancy axis.
var MultiLoRAClientCounts = []int{4, 8, 16, 32}

// MultiLoRASweep measures the batch-size-vs-latency knee of batched
// multi-LoRA serving: for each client count it runs the same workload
// under every batch cap and reports per-client throughput plus the
// speedup over the cap-1 serialized baseline. The knee is the smallest
// cap within 10% of the row's best speedup — past it, larger batches
// buy little because the batched kernel's serial fraction
// (costmodel.BatchedTime) dominates.
func MultiLoRASweep(opts Options) (*trace.Table, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperOPTWorkload()
	cols := []string{"clients", "serial (s)"}
	for _, size := range MultiLoRABatchCaps[1:] {
		cols = append(cols, fmt.Sprintf("cap %d (x)", size))
	}
	cols = append(cols, "knee", "iter/s per client @knee")
	t := trace.NewTable(
		fmt.Sprintf("Multi-LoRA batching knee (OPT-6.7B, LAN, %d GPUs, hold %v)", multiLoRAGPUs, MultiLoRAHold),
		cols...)
	for _, clients := range MultiLoRAClientCounts {
		times := make([]time.Duration, len(MultiLoRABatchCaps))
		for i, size := range MultiLoRABatchCaps {
			r, err := runMultiLoRA(w, clients, size, opts.Iterations)
			if err != nil {
				return nil, fmt.Errorf("multilora sweep (%d clients, cap %d): %w", clients, size, err)
			}
			times[i] = r.SimulatedTime
		}
		speedups := make([]float64, len(times))
		best := 0.0
		for i, d := range times {
			speedups[i] = float64(times[0]) / float64(d)
			if speedups[i] > best {
				best = speedups[i]
			}
		}
		knee := MultiLoRABatchCaps[len(MultiLoRABatchCaps)-1]
		kneeIdx := len(times) - 1
		for i, s := range speedups {
			if s >= 0.9*best {
				knee = MultiLoRABatchCaps[i]
				kneeIdx = i
				break
			}
		}
		row := []string{fmt.Sprintf("%d", clients), trace.Seconds(times[0])}
		for _, s := range speedups[1:] {
			row = append(row, fmt.Sprintf("%.2f", s))
		}
		perClient := float64(opts.Iterations) / times[kneeIdx].Seconds()
		row = append(row, fmt.Sprintf("%d", knee), fmt.Sprintf("%.3f", perClient))
		t.AddRow(row...)
	}
	return t, nil
}

// runMultiLoRA is one cell: clients lockstep LoRA tenants under one
// batch cap on a multi-GPU server.
func runMultiLoRA(w memmodel.Workload, clients, size, iterations int) (*splitsim.Result, error) {
	return splitsim.Run(splitsim.Config{
		Mode:       splitsim.ModeMenos,
		Clients:    splitsim.HomogeneousClients(clients, w, costmodel.ClientGPUPerf()),
		Iterations: iterations,
		GPUs:       multiLoRAGPUs,
		LinkPreset: simnet.LANPreset,
		Batch:      &sched.BatchPolicy{MaxSize: size, MaxHold: MultiLoRAHold},
	})
}
