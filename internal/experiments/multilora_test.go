package experiments

import (
	"strings"
	"testing"

	"menos/internal/memmodel"
)

// TestMultiLoRAKneeAcceptance is the PR's acceptance bar at sweep
// granularity: at 16 clients, cap-16 batching delivers at least 2× the
// per-client throughput of the cap-1 serialized baseline.
func TestMultiLoRAKneeAcceptance(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	serial, err := runMultiLoRA(w, 16, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := runMultiLoRA(w, 16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(serial.SimulatedTime) / float64(batched.SimulatedTime)
	if speedup < 2 {
		t.Errorf("cap-16 speedup = %.2f×, want ≥ 2× (serial %v, batched %v)",
			speedup, serial.SimulatedTime, batched.SimulatedTime)
	}
}

// TestMultiLoRASweepRenders runs a reduced sweep end to end and checks
// the knee table carries every tenancy row.
func TestMultiLoRASweepRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	tbl, err := MultiLoRASweep(Options{Iterations: 2, Steps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"clients", "knee", "32"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
}
