package experiments

import (
	"fmt"
	"time"

	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/sched"
	"menos/internal/simnet"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// Overload-sweep tuning. The sweep runs Llama clients over a LAN link
// (comm no longer hides server queueing, so memory is the bottleneck,
// as in the paper's dense-deployment regime) with arrivals staggered
// 1s apart. Past ~8 clients one V100's schedulable memory saturates
// and the unprotected grant-wait p99 grows to several times the
// target; the controller holds it near TargetP99 by shedding.
const (
	// OverloadSLO is the grant-wait p99 target.
	OverloadSLO = 2 * time.Second
	// OverloadWindow is the sliding measurement window. Longer than the
	// default 8×target: the de-escalation dwell scales with it, which
	// keeps the controller from flapping back to Open and re-admitting
	// the backed-off clients as one herd.
	OverloadWindow = 40 * time.Second
	// overloadStagger spaces client arrivals so load builds gradually
	// instead of as one synchronized cold-start burst (which no
	// admission policy could react to — the controller needs observed
	// waits before it can act).
	overloadStagger = time.Second
)

// OverloadSweep drives the Menos scheduler past saturation and
// measures what adaptive admission control (docs/ADMISSION.md) buys:
// for each client count it runs the same workload twice — plain
// Algorithm 2, then with the SLO-governed controller — and reports the
// grant-wait p99 (virtual time, read back from the scheduler's wait
// histogram) plus the controller's activity. Without the controller
// the p99 grows with the client count; with it, shed-and-backoff holds
// the p99 of admitted requests near the target at the cost of retried
// submissions and a modestly longer run.
func OverloadSweep(opts Options) (*trace.Table, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperLlamaWorkload()
	slo := sched.SLO{TargetP99: OverloadSLO, Window: OverloadWindow}
	t := trace.NewTable(
		fmt.Sprintf("Overload sweep (Llama 2-7B, LAN, p99 SLO %v)", OverloadSLO),
		"clients", "p99 off (s)", "p99 on (s)", "sheds", "final state", "run off (s)", "run on (s)")
	for _, clients := range []int{4, 8, 12, 16} {
		off, err := runOverload(w, clients, opts.Iterations, sched.SLO{})
		if err != nil {
			return nil, fmt.Errorf("overload sweep (%d clients, no SLO): %w", clients, err)
		}
		on, err := runOverload(w, clients, opts.Iterations, slo)
		if err != nil {
			return nil, fmt.Errorf("overload sweep (%d clients, SLO): %w", clients, err)
		}
		t.AddRow(fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.2f", off.p99),
			fmt.Sprintf("%.2f", on.p99),
			fmt.Sprintf("%d", on.result.Rejected),
			on.result.Admission.State.String(),
			trace.Seconds(off.result.SimulatedTime),
			trace.Seconds(on.result.SimulatedTime))
	}
	return t, nil
}

// OverloadFlight runs one saturating SLO-governed configuration (the
// sweep's deepest cell) with a tracer and a flight recorder writing
// into dir: every shed and admission-state transition snapshots the
// recent trace window and metrics into flight.jsonl. This is the CI
// overload artifact — a post-mortem of the simulated incident that can
// be archived and inspected without rerunning anything. It returns the
// run result and the flight file's path. With captureProfiles set,
// each snapshot also writes heap and goroutine pprof profiles next to
// the JSONL — self-observability of the benchmark process itself under
// its heaviest load.
func OverloadFlight(opts Options, dir string, captureProfiles bool) (*splitsim.Result, string, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperLlamaWorkload()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(nil) // spans carry explicit virtual times
	tracer.EnableRing(obs.DefaultRingBytes)
	tracer.Instrument(reg)
	// A short rate-limit interval: the whole simulated incident plays
	// out in milliseconds of wall time, so the default 1s would keep
	// all but the first snapshot per reason.
	flight, err := obs.NewFlightRecorder(obs.FlightConfig{
		Dir:             dir,
		MinInterval:     time.Millisecond,
		CaptureProfiles: captureProfiles,
	}, reg, tracer)
	if err != nil {
		return nil, "", err
	}
	defer flight.Close()
	specs := splitsim.HomogeneousClients(16, w, costmodel.ClientGPUPerf())
	for i := range specs {
		specs[i].StartDelay = time.Duration(i) * overloadStagger
	}
	r, err := splitsim.Run(splitsim.Config{
		Mode:       splitsim.ModeMenos,
		SLO:        sched.SLO{TargetP99: OverloadSLO, Window: OverloadWindow},
		Clients:    specs,
		Iterations: opts.Iterations,
		LinkPreset: simnet.LANPreset,
		Metrics:    reg,
		Tracer:     tracer,
		Flight:     flight,
	})
	if err != nil {
		return nil, "", err
	}
	if ferr := flight.Err(); ferr != nil {
		return nil, "", fmt.Errorf("flight recorder: %w", ferr)
	}
	return r, flight.Path(), nil
}

// overloadRun is one cell of the sweep: the simulation result plus the
// grant-wait p99 read back from the virtual-clock histogram.
type overloadRun struct {
	result *splitsim.Result
	p99    float64 // seconds
}

func runOverload(w memmodel.Workload, clients, iterations int, slo sched.SLO) (overloadRun, error) {
	reg := obs.NewRegistry()
	specs := splitsim.HomogeneousClients(clients, w, costmodel.ClientGPUPerf())
	for i := range specs {
		specs[i].StartDelay = time.Duration(i) * overloadStagger
	}
	r, err := splitsim.Run(splitsim.Config{
		Mode:       splitsim.ModeMenos,
		SLO:        slo,
		Clients:    specs,
		Iterations: iterations,
		LinkPreset: simnet.LANPreset,
		Metrics:    reg,
	})
	if err != nil {
		return overloadRun{}, err
	}
	h := reg.Histogram(obs.MetricSchedWaitSeconds, obs.DurationBuckets())
	return overloadRun{result: r, p99: h.Quantile(0.99)}, nil
}
