package experiments

import (
	"strings"
	"testing"

	"menos/internal/memmodel"
	"menos/internal/sched"
)

// TestOverloadSweepSmoke runs the sweep at reduced iteration count and
// checks its shape: one row per client count, both p99 columns
// populated, and the SLO run actually reporting controller activity at
// the saturated end of the sweep.
func TestOverloadSweepSmoke(t *testing.T) {
	tbl, err := OverloadSweep(Options{Iterations: 2, Steps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"clients", "p99 off (s)", "p99 on (s)", "sheds", "final state"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing column %q in:\n%s", want, out)
		}
	}
	for _, clients := range []string{"4", "8", "12", "16"} {
		if !strings.Contains(out, "\n"+clients+" ") && !strings.Contains(out, "\n "+clients+" ") {
			t.Fatalf("missing row for %s clients in:\n%s", clients, out)
		}
	}
}

// TestRunOverloadBoundsP99 checks the controller's effect directly at
// one saturated point: with the SLO the grant-wait p99 of admitted
// requests must come in below the unprotected run's.
func TestRunOverloadBoundsP99(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	slo := sched.SLO{TargetP99: OverloadSLO, Window: OverloadWindow}
	off, err := runOverload(w, 12, 8, sched.SLO{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := runOverload(w, 12, 8, slo)
	if err != nil {
		t.Fatal(err)
	}
	if off.p99 < OverloadSLO.Seconds() {
		t.Skipf("12 clients did not saturate (off p99 %.2fs); cost model changed?", off.p99)
	}
	if on.p99 >= off.p99 {
		t.Fatalf("admission control did not help: p99 on %.2fs >= off %.2fs", on.p99, off.p99)
	}
	if on.p99 > 2*OverloadSLO.Seconds() {
		t.Fatalf("admitted p99 %.2fs not bounded near the %v SLO", on.p99, OverloadSLO)
	}
	if on.result.Rejected == 0 {
		t.Fatal("SLO run shed nothing while saturated")
	}
	if on.result.Admission.Transitions == 0 {
		t.Fatal("controller never left Open while saturated")
	}
	// Cost of protection: the run may take longer (rejected work is
	// retried), but not pathologically so.
	if lim := 2 * off.result.SimulatedTime; on.result.SimulatedTime > lim {
		t.Fatalf("SLO run took %v, more than twice the unprotected %v",
			on.result.SimulatedTime, off.result.SimulatedTime)
	}
}
