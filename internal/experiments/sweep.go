package experiments

import (
	"fmt"
	"sync"

	"menos/internal/memmodel"
	"menos/internal/splitsim"
)

// Sweep runs the Fig. 6 / Tables 1-3 configuration matrix — both
// modes, both models, every client count — exactly once and memoizes
// the results, since four artifacts read the same runs.
type Sweep struct {
	opts Options

	mu      sync.Mutex
	results map[string]*splitsim.Result
}

// NewSweep creates a lazy sweep with the given options.
func NewSweep(opts Options) *Sweep {
	return &Sweep{opts: opts.withDefaults(), results: make(map[string]*splitsim.Result)}
}

// Result returns the memoized run for (mode, model, clients), running
// it on first use. Configurations the paper marks N/A (vanilla Llama
// beyond 4 clients) return (nil, nil).
func (s *Sweep) Result(mode splitsim.Mode, m evalModel, clients int) (*splitsim.Result, error) {
	key := fmt.Sprintf("%v/%s/%d", mode, m.name, clients)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.results[key]; ok {
		return r, nil
	}
	r, err := runMode(mode, m.workload, clients, s.opts.Iterations)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: %w", key, err)
	}
	s.results[key] = r
	return r, nil
}

// eachCell iterates the full evaluation matrix, invoking fn with every
// (model, mode, client-count, result).
func (s *Sweep) eachCell(fn func(m evalModel, mode splitsim.Mode, clients int, r *splitsim.Result) error) error {
	for _, m := range evalModels() {
		for _, mode := range []splitsim.Mode{splitsim.ModeVanilla, splitsim.ModeMenos} {
			for _, n := range m.clientCounts {
				r, err := s.Result(mode, m, n)
				if err != nil {
					return err
				}
				if err := fn(m, mode, n, r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Workloads exposes the two paper workloads for callers assembling
// custom runs.
func Workloads() (opt, llama memmodel.Workload) {
	return memmodel.PaperOPTWorkload(), memmodel.PaperLlamaWorkload()
}
