package experiments

import (
	"time"

	"menos/internal/memmodel"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// MeasurementStudy reproduces §2.3's motivating measurement: the
// server-side GPU memory decomposition for split fine-tuning Llama
// 2-7B with LoRA at batch size 4 (paper: 24 GB + 246 MB + 4 GB ≈
// 28.7 GB).
func MeasurementStudy() *trace.Table {
	_, fp := memmodel.MeasurementStudy()
	t := trace.NewTable("§2.3 measurement study: Llama 2-7B + LoRA, batch 4 (server side)",
		"component", "size", "paper")
	t.AddRow("base model parameters (M)", trace.Bytes(fp.M), "24 GB")
	t.AddRow("adapter+optimizer (A+O)", trace.Bytes(fp.A+fp.O), "246 MB")
	t.AddRow("intermediate results (I)", trace.Bytes(fp.I), "4 GB")
	t.AddRow("total", trace.Bytes(fp.Total()), "28.7 GB")
	return t
}

// breakdownTable builds one of Tables 1-3 from the sweep.
func breakdownTable(s *Sweep, title string, pick func(r *splitsim.Result) time.Duration) (*trace.Table, error) {
	t := trace.NewTable(title, "model", "method", "1", "2", "3", "4", "5", "6")
	for _, m := range evalModels() {
		for _, mode := range []splitsim.Mode{splitsim.ModeVanilla, splitsim.ModeMenos} {
			row := []string{m.name, mode.String()}
			for n := 1; n <= 6; n++ {
				supported := false
				for _, c := range m.clientCounts {
					if c == n {
						supported = true
					}
				}
				if !supported {
					row = append(row, "N/A")
					continue
				}
				r, err := s.Result(mode, m, n)
				if err != nil {
					return nil, err
				}
				row = append(row, trace.Seconds(pick(r)))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Table1 reproduces "average communication time (s) per fine-tuning
// iteration".
func Table1(s *Sweep) (*trace.Table, error) {
	return breakdownTable(s, "Table 1: average communication time (s) per iteration",
		func(r *splitsim.Result) time.Duration { return r.Aggregate.AvgComm() })
}

// Table2 reproduces "average computation time (s) per fine-tuning
// iteration".
func Table2(s *Sweep) (*trace.Table, error) {
	return breakdownTable(s, "Table 2: average computation time (s) per iteration",
		func(r *splitsim.Result) time.Duration { return r.Aggregate.AvgComp() })
}

// Table3 reproduces "average schedule time (s) per fine-tuning
// iteration".
func Table3(s *Sweep) (*trace.Table, error) {
	return breakdownTable(s, "Table 3: average schedule time (s) per iteration",
		func(r *splitsim.Result) time.Duration { return r.Aggregate.AvgSched() })
}
