package experiments

import (
	"fmt"
	"time"

	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/quant"
	"menos/internal/simnet"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// Wire sweep tuning (docs/WIRE.md). The sweep walks a ladder of link
// bandwidths from the paper's WAN to a datacenter LAN and, at each
// rung, measures what compression and comm/compute overlap buy. The
// knee it exposes: on slow links communication dominates, so int8
// compression (¼ the bytes) nearly quarters the iteration time and
// overlap is capped by the still-wide wire leg; on fast links compute
// dominates, compression buys almost nothing, and overlap hides the
// wire leg entirely — the combined run approaches
// costmodel.OverlapStepTime's max(wire, client) bound from both sides.
const (
	// wireClients keeps server-side queueing mild so the link and the
	// client compute legs are what the cells measure.
	wireClients = 4
	// wireOneWay fixes the propagation latency across the ladder: only
	// bandwidth sweeps, so column-to-column movement is attributable.
	wireOneWay = 30 * time.Millisecond
)

// WireBandwidths is the link-speed axis, in bytes/second. The first
// rung is the paper's calibrated WAN; the last is the LAN preset's
// throughput.
var WireBandwidths = []float64{8 << 20, 32 << 20, 128 << 20, 1 << 30}

// WireSweep measures the compression × overlap × bandwidth surface:
// for each link speed it runs the same workload under every codec and
// scheduling corner and reports the speedup over the uncompressed
// sequential baseline, plus the virtual time overlap hid in the
// fastest corner.
func WireSweep(opts Options) (*trace.Table, error) {
	opts = opts.withDefaults()
	w := memmodel.PaperOPTWorkload()
	t := trace.NewTable(
		fmt.Sprintf("Wire transport sweep (OPT-6.7B, %d clients, %v one-way)", wireClients, wireOneWay),
		"link (MiB/s)", "plain (s)", "fp16 (x)", "int8 (x)", "overlap (x)", "int8+overlap (x)", "hidden (s)")
	for _, bw := range WireBandwidths {
		base, err := runWire(w, bw, quant.CodecFP32, false, opts.Iterations)
		if err != nil {
			return nil, fmt.Errorf("wire sweep (%.0f MiB/s, baseline): %w", bw/(1<<20), err)
		}
		speedup := func(codec quant.Codec, overlap bool) (float64, *splitsim.Result, error) {
			r, err := runWire(w, bw, codec, overlap, opts.Iterations)
			if err != nil {
				return 0, nil, fmt.Errorf("wire sweep (%.0f MiB/s, %v, overlap=%v): %w", bw/(1<<20), codec, overlap, err)
			}
			return float64(base.SimulatedTime) / float64(r.SimulatedTime), r, nil
		}
		fp16, _, err := speedup(quant.CodecFP16, false)
		if err != nil {
			return nil, err
		}
		int8, _, err := speedup(quant.CodecInt8, false)
		if err != nil {
			return nil, err
		}
		overlap, _, err := speedup(quant.CodecFP32, true)
		if err != nil {
			return nil, err
		}
		both, bothRes, err := speedup(quant.CodecInt8, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.0f", bw/(1<<20)),
			trace.Seconds(base.SimulatedTime),
			fmt.Sprintf("%.2f", fp16),
			fmt.Sprintf("%.2f", int8),
			fmt.Sprintf("%.2f", overlap),
			fmt.Sprintf("%.2f", both),
			trace.Seconds(bothRes.OverlapHidden))
	}
	return t, nil
}

// runWire is one cell: lockstep clients on a parameterized link under
// one codec/overlap corner.
func runWire(w memmodel.Workload, bw float64, codec quant.Codec, overlap bool, iterations int) (*splitsim.Result, error) {
	return splitsim.Run(splitsim.Config{
		Mode:       splitsim.ModeMenos,
		Clients:    splitsim.HomogeneousClients(wireClients, w, costmodel.ClientGPUPerf()),
		Iterations: iterations,
		LinkPreset: simnet.Preset(bw, wireOneWay),
		WireCodec:  codec,
		Overlap:    overlap,
	})
}
