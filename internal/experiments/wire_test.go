package experiments

import (
	"strings"
	"testing"

	"menos/internal/memmodel"
	"menos/internal/quant"
)

// TestWireKneeAcceptance is the PR's acceptance bar at sweep
// granularity: on the paper's WAN rung, int8 compression alone buys at
// least 2.5× (it quarters the dominant comm term), and stacking
// overlap on top is faster still.
func TestWireKneeAcceptance(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	wan := WireBandwidths[0]
	base, err := runWire(w, wan, quant.CodecFP32, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	int8, err := runWire(w, wan, quant.CodecInt8, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	both, err := runWire(w, wan, quant.CodecInt8, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base.SimulatedTime) / float64(int8.SimulatedTime)
	if speedup < 2.5 {
		t.Errorf("WAN int8 speedup = %.2f×, want ≥ 2.5× (plain %v, int8 %v)",
			speedup, base.SimulatedTime, int8.SimulatedTime)
	}
	if both.SimulatedTime >= int8.SimulatedTime {
		t.Errorf("int8+overlap (%v) not faster than int8 alone (%v)",
			both.SimulatedTime, int8.SimulatedTime)
	}
	if both.OverlapHidden == 0 {
		t.Error("combined run hid no time")
	}
}

// TestWireSweepRenders runs a reduced sweep end to end and checks the
// table carries every bandwidth rung and the speedup columns.
func TestWireSweepRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	tbl, err := WireSweep(Options{Iterations: 2, Steps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"link (MiB/s)", "int8+overlap", "hidden", "8", "1024"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
}
