package fleet

// MigrateOrder is the control plane's instruction to a server's admin
// plane (POST /admin/migrate): move ClientID's session to the target
// server. The source server executes it at the next clean iteration
// boundary — snapshot the session, stage it at TargetAdmin
// (POST /admin/prepare), then redirect the client to TargetAddr with
// Token. The order is one-shot: if the snapshot transfer or redirect
// fails the session keeps serving where it is and the controller may
// reissue.
type MigrateOrder struct {
	// ClientID names the session to move.
	ClientID string `json:"client_id"`
	// TargetAddr is the target server's split-protocol dial address,
	// handed to the client in the Migrate redirect.
	TargetAddr string `json:"target_addr"`
	// TargetAdmin is the target server's admin-plane base URL
	// (http://host:port), where the source stages the snapshot.
	TargetAdmin string `json:"target_admin"`
	// Token pairs the staged snapshot with the client's redial: the
	// source stages under it, the client presents it in
	// Hello.ResumeToken, the target matches the two.
	Token uint64 `json:"token"`
}

// SessionInfo is one row of a server's GET /admin/sessions response:
// a resident split session as the control plane sees it. The
// Controller uses Features to know whether the session can be live-
// migrated and Migrating to avoid double-ordering.
type SessionInfo struct {
	ClientID string `json:"client_id"`
	Batch    int    `json:"batch"`
	Seq      int    `json:"seq"`
	// Features is the negotiated split.Feature* bitmask.
	Features uint64 `json:"features"`
	// Migrating reports a pending, not-yet-executed migration order.
	Migrating bool `json:"migrating"`
}
