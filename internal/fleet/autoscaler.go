package fleet

import (
	"fmt"
	"time"
)

// AutoscaleConfig tunes the fleet autoscaler. The zero value of every
// field gets a sensible default from withDefaults; the zero value of
// the whole struct is a valid "scale between 1 and 4 servers" policy.
type AutoscaleConfig struct {
	// Min and Max bound the active server count (defaults 1 and
	// max(Min, 4)).
	Min int
	Max int
	// Interval is how often the autoscaler evaluates the fleet
	// (default 5s on the decision clock, virtual or wall).
	Interval time.Duration
	// UpQueueDepth scales up when the mean scheduler queue depth per
	// active server reaches this (default 2). Any server at admission
	// state Throttled or worse, or any client waiting to be placed,
	// also counts as pressure.
	UpQueueDepth float64
	// DownQueueDepth arms scale-down when the mean queue depth stays at
	// or below this (default 0.25) with every admission ladder Open.
	DownQueueDepth float64
	// Cooldown and DownDwell give the loop hysteresis: scale-ups are
	// gated only by Cooldown, the minimum time between consecutive
	// scale events (default 3×Interval); scale-downs additionally
	// require the calm signal to hold for DownDwell (default
	// 4×Interval) first, exactly the dwell-gated de-escalation style of
	// the admission ladder.
	Cooldown  time.Duration
	DownDwell time.Duration
}

// withDefaults fills unset knobs.
func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 4
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.UpQueueDepth <= 0 {
		c.UpQueueDepth = 2
	}
	if c.DownQueueDepth <= 0 {
		c.DownQueueDepth = 0.25
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * c.Interval
	}
	if c.DownDwell <= 0 {
		c.DownDwell = 4 * c.Interval
	}
	return c
}

// Validate rejects configs that resolve to nonsense.
func (c AutoscaleConfig) Validate() error {
	r := c.withDefaults()
	if c.Max > 0 && c.Min > 0 && c.Max < c.Min {
		return fmt.Errorf("fleet: autoscale max %d < min %d", c.Max, c.Min)
	}
	if c.DownQueueDepth > 0 && c.UpQueueDepth > 0 && c.DownQueueDepth >= c.UpQueueDepth {
		return fmt.Errorf("fleet: autoscale down threshold %.2f >= up threshold %.2f",
			c.DownQueueDepth, c.UpQueueDepth)
	}
	_ = r
	return nil
}

// Decision is one autoscaler verdict.
type Decision int

// Decisions.
const (
	Hold Decision = iota
	ScaleUp
	ScaleDown
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Hold:
		return "hold"
	case ScaleUp:
		return "scale-up"
	case ScaleDown:
		return "scale-down"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Autoscaler turns fleet telemetry into grow/shrink decisions. It is a
// pure state machine: Decide is fed explicit clock readings and server
// loads, holds no goroutine and reads no real time, so the same code
// is deterministic under the simulator's virtual clock. The caller
// owns the actuation (adding a server, picking a drain candidate) and
// the metrics (Manager.RecordScaleEvent).
type Autoscaler struct {
	cfg AutoscaleConfig

	haveEvent bool
	lastEvent time.Duration
	calm      bool
	calmSince time.Duration
	events    int64
}

// NewAutoscaler builds an autoscaler; cfg is normalized through
// withDefaults.
func NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	return &Autoscaler{cfg: cfg.withDefaults()}
}

// Config returns the normalized (defaults-applied) configuration.
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

// Events returns how many scale decisions (up or down) were issued.
func (a *Autoscaler) Events() int64 { return a.events }

// Decide evaluates the fleet at now. pending is the number of clients
// waiting to be placed (no server could physically admit them — the
// strongest possible grow signal); loads is the Manager's snapshot,
// draining servers included (they are ignored here).
//
// Pressure — mean queue depth at or above UpQueueDepth, any admission
// controller at Throttled or worse, or pending placements — scales up
// immediately, gated only by Cooldown and Max. Calm — mean queue depth
// at or below DownQueueDepth with every admission ladder Open and
// nothing pending — must hold for DownDwell before a cooldown-gated
// scale-down, mirroring the admission ladder's asymmetric hysteresis.
func (a *Autoscaler) Decide(now time.Duration, pending int, loads []ServerLoad) Decision {
	active := 0
	queued := 0
	worst := AdmissionOpen
	for _, l := range loads {
		if l.Draining {
			continue
		}
		active++
		queued += l.QueueDepth
		if l.Admission > worst {
			worst = l.Admission
		}
	}
	if active == 0 {
		return Hold
	}
	meanQ := float64(queued) / float64(active)

	pressured := pending > 0 || meanQ >= a.cfg.UpQueueDepth || worst >= AdmissionThrottled
	if pressured {
		a.calm = false
		if active < a.cfg.Max && a.cooldownOver(now) {
			a.record(now)
			return ScaleUp
		}
		return Hold
	}

	calm := meanQ <= a.cfg.DownQueueDepth && worst == AdmissionOpen
	if !calm || active <= a.cfg.Min {
		a.calm = false
		return Hold
	}
	if !a.calm {
		a.calm = true
		a.calmSince = now
		return Hold
	}
	if now-a.calmSince >= a.cfg.DownDwell && a.cooldownOver(now) {
		a.calm = false
		a.record(now)
		return ScaleDown
	}
	return Hold
}

// cooldownOver reports whether enough time has passed since the last
// scale event.
func (a *Autoscaler) cooldownOver(now time.Duration) bool {
	return !a.haveEvent || now-a.lastEvent >= a.cfg.Cooldown
}

// record stamps a scale event.
func (a *Autoscaler) record(now time.Duration) {
	a.haveEvent = true
	a.lastEvent = now
	a.events++
}
