package fleet

import (
	"testing"
	"time"
)

// mkLoads builds n active servers with the given per-server queue
// depth and admission state.
func mkLoads(n, queue int, adm AdmissionState) []ServerLoad {
	ls := make([]ServerLoad, n)
	for i := range ls {
		ls[i] = ServerLoad{ID: i, QueueDepth: queue, Admission: adm}
	}
	return ls
}

// TestAutoscalerHysteresis walks the state machine through a scripted
// load history on the virtual clock, mirroring the admission ladder's
// table test: immediate cooldown-gated scale-up, dwell-gated
// scale-down, and bounds at Min/Max.
func TestAutoscalerHysteresis(t *testing.T) {
	cfg := AutoscaleConfig{
		Min:      1,
		Max:      3,
		Interval: 5 * time.Second, // cooldown 15s, down-dwell 20s
	}
	steps := []struct {
		at      time.Duration
		pending int
		loads   []ServerLoad
		want    Decision
	}{
		// Quiet single server: nothing to do (already at Min).
		{at: 5 * time.Second, loads: mkLoads(1, 0, AdmissionOpen), want: Hold},
		// Queue builds: immediate scale-up.
		{at: 10 * time.Second, loads: mkLoads(1, 4, AdmissionOpen), want: ScaleUp},
		// Still pressured, but inside the 15s cooldown.
		{at: 15 * time.Second, loads: mkLoads(2, 4, AdmissionOpen), want: Hold},
		{at: 20 * time.Second, loads: mkLoads(2, 4, AdmissionOpen), want: Hold},
		// Cooldown over, pressure persists: second scale-up.
		{at: 25 * time.Second, loads: mkLoads(2, 4, AdmissionOpen), want: ScaleUp},
		// At Max: pressure can no longer grow the fleet.
		{at: 45 * time.Second, loads: mkLoads(3, 4, AdmissionOpen), want: Hold},
		// Admission pressure alone (queues empty) still counts, but the
		// fleet is at Max.
		{at: 50 * time.Second, loads: mkLoads(3, 0, AdmissionThrottled), want: Hold},
		// Calm begins: the dwell clock starts, no decision yet.
		{at: 55 * time.Second, loads: mkLoads(3, 0, AdmissionOpen), want: Hold},
		{at: 60 * time.Second, loads: mkLoads(3, 0, AdmissionOpen), want: Hold},
		{at: 70 * time.Second, loads: mkLoads(3, 0, AdmissionOpen), want: Hold},
		// 20s of calm (since 55s) and cooldown long over: scale down.
		{at: 75 * time.Second, loads: mkLoads(3, 0, AdmissionOpen), want: ScaleDown},
		// Fresh dwell required before the next shrink.
		{at: 80 * time.Second, loads: mkLoads(2, 0, AdmissionOpen), want: Hold},
		// A pressure blip resets the calm streak...
		{at: 85 * time.Second, loads: mkLoads(2, 4, AdmissionOpen), want: Hold}, // cooldown blocks the up
		{at: 90 * time.Second, loads: mkLoads(2, 0, AdmissionOpen), want: Hold},
		{at: 105 * time.Second, loads: mkLoads(2, 0, AdmissionOpen), want: Hold},
		// ...so the shrink lands a full dwell after the blip cleared.
		{at: 110 * time.Second, loads: mkLoads(2, 0, AdmissionOpen), want: ScaleDown},
		// At Min: calm can no longer shrink the fleet.
		{at: 140 * time.Second, loads: mkLoads(1, 0, AdmissionOpen), want: Hold},
	}
	a := NewAutoscaler(cfg)
	for i, s := range steps {
		if got := a.Decide(s.at, s.pending, s.loads); got != s.want {
			t.Fatalf("step %d (t=%v): Decide = %v, want %v", i, s.at, got, s.want)
		}
	}
	if a.Events() != 4 {
		t.Errorf("Events = %d, want 4", a.Events())
	}
}

func TestAutoscalerPendingPlacementsForceGrowth(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 1, Max: 2, Interval: time.Second})
	if got := a.Decide(time.Second, 3, mkLoads(1, 0, AdmissionOpen)); got != ScaleUp {
		t.Fatalf("pending placements: Decide = %v, want ScaleUp", got)
	}
}

func TestAutoscalerIgnoresDrainingServers(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 1, Max: 3, Interval: time.Second})
	loads := mkLoads(2, 0, AdmissionOpen)
	loads[1].QueueDepth = 100
	loads[1].Draining = true
	// The only pressure is on a draining server; it must not count.
	if got := a.Decide(time.Second, 0, loads); got != Hold {
		t.Fatalf("Decide = %v, want Hold (draining server's queue ignored)", got)
	}
}

func TestAutoscalerConfigValidate(t *testing.T) {
	if err := (AutoscaleConfig{}).Validate(); err != nil {
		t.Errorf("zero config: %v", err)
	}
	if err := (AutoscaleConfig{Min: 4, Max: 2}).Validate(); err == nil {
		t.Error("max < min: want error")
	}
	if err := (AutoscaleConfig{UpQueueDepth: 1, DownQueueDepth: 2}).Validate(); err == nil {
		t.Error("down >= up: want error")
	}
	cfg := AutoscaleConfig{}.withDefaults()
	if cfg.Min != 1 || cfg.Max != 4 || cfg.Interval != 5*time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
}
