// Controller is the polling control plane behind menos-fleetd: it
// scrapes N real servers' /healthz and /loadz endpoints into the same
// ServerLoad rows a Placer consumes, hands arriving clients a server
// (redirect placement), and drives live migrations through the
// servers' admin plane. It is the wall-clock counterpart of Manager:
// where Manager owns authoritative bookkeeping inside one process,
// the Controller treats the servers themselves as the source of truth
// and rebuilds its world every PollOnce.
//
// Like the rest of the package, the Controller has no goroutines and
// no time source: PollOnce and RebalanceOnce are explicit ticks the
// daemon (or a test) calls, so the decision sequence is replayable.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"menos/internal/obs"
	"menos/internal/split"
	"menos/internal/tsdb"
)

// Endpoint names one server the Controller manages.
type Endpoint struct {
	// ID is the fleet identity the server was started with
	// (-server-id); /healthz must echo it back.
	ID int `json:"id"`
	// Addr is the split-protocol address clients dial.
	Addr string `json:"addr"`
	// MetricsURL is the base URL serving /healthz and /loadz.
	MetricsURL string `json:"metrics_url"`
	// AdminURL is the base URL serving /admin/*.
	AdminURL string `json:"admin_url"`
}

// ControllerConfig configures a Controller.
type ControllerConfig struct {
	Endpoints []Endpoint
	// Placer decides placements and rebalance targets; nil means
	// DefaultPolicy().
	Placer Placer
	// HTTP is the polling client; nil means a 5-second timeout.
	HTTP *http.Client
	// Metrics receives the menos_fleetd_* families (nil-safe).
	Metrics *obs.Registry
	// TokenSeed randomizes resume tokens so a restarted fleetd does
	// not mint tokens colliding with snapshots staged by its previous
	// life. Zero means 1.
	TokenSeed uint64
	// MaxMovesPerTick caps the migration orders one RebalanceOnce call
	// may issue. Zero means DefaultMaxMovesPerTick.
	MaxMovesPerTick int
	// Store, when set, turns every PollOnce into a federation tick:
	// the Controller scrapes each healthy endpoint's /metrics.json and
	// appends the flattened samples (plus synthetic menos_fleetd_up /
	// menos_fleetd_identity_mismatch series) into the store, labeled by
	// server — closing the Probe contract's documented gap. The alert
	// engine and /queryz read from here.
	Store *tsdb.Store
	// Clock stamps scraped samples and down-time accounting. Nil means
	// wall clock; tests inject a virtual clock for determinism.
	Clock obs.Clock
	// FederateTraces additionally pages each healthy endpoint's
	// /trace?since=<cursor> every poll and re-records the spans into a
	// per-server mirror tracer, so WriteMergedTrace can render one
	// fleet-wide Chrome trace with migrated clients' iteration spans
	// stitched across processes by trace ID.
	FederateTraces bool
	// TraceBudgetBytes bounds each per-server mirror ring (<= 0 means
	// DefaultTraceBudgetBytes).
	TraceBudgetBytes int64
	// Logf receives orchestration logs (nil discards).
	Logf func(format string, args ...any)
}

// DefaultTraceBudgetBytes bounds one server's trace mirror when the
// config does not (4 MiB — half a server's own default ring, times N
// servers fleetd-side).
const DefaultTraceBudgetBytes = 4 << 20

// endpointState is the Controller's last observation of one server.
type endpointState struct {
	ep           Endpoint
	polled       bool
	healthy      bool
	lastErr      string
	reportedID   int
	reportedAddr string
	atSeconds    float64
	load         ServerLoad
	clients      []obs.ClientUsage
	draining     bool

	// Down-time accounting (federation clock): the instant of the last
	// successful poll, so /fleetz can report how long a DOWN server has
	// been unreachable.
	lastOK time.Duration
	haveOK bool

	// Trace federation: the resume cursor into the server's span ring
	// and the fleetd-side mirror its spans are re-recorded into.
	traceCursor uint64
	mirror      *obs.Tracer
}

// DefaultMaxMovesPerTick bounds RebalanceOnce when the config does not:
// enough to drain a small server in one tick without stampeding the
// fleet before the next poll confirms the moves landed.
const DefaultMaxMovesPerTick = 4

// Controller polls a fixed set of server endpoints and makes
// placement and migration decisions over what it saw.
type Controller struct {
	placer      Placer
	http        *http.Client
	logf        func(string, ...any)
	maxMoves    int
	store       *tsdb.Store
	clock       obs.Clock
	fedTraces   bool
	traceBudget int64

	mu        sync.Mutex
	eps       map[int]*endpointState
	order     []int
	nextToken uint64

	mPolls       *obs.Counter
	mPollErrors  *obs.Counter
	mHealthy     *obs.Gauge
	mPlacements  *obs.Counter
	mMigrations  *obs.Counter
	mMigFailures *obs.Counter
	mIdentity    *obs.Counter

	// Federation self-observability (nil-safe when unregistered).
	mScrapes      *obs.Counter
	mScrapeErrors *obs.Counter
	mFedSpans     *obs.Counter
	gSeries       *obs.Gauge
	mSamples      *obs.Counter
	mDropped      *obs.Counter
	prevSamples   int64
	prevDropped   int64
}

// NewController builds a Controller. Endpoint IDs must be unique.
func NewController(cfg ControllerConfig) (*Controller, error) {
	c := &Controller{
		placer:      cfg.Placer,
		http:        cfg.HTTP,
		logf:        cfg.Logf,
		maxMoves:    cfg.MaxMovesPerTick,
		store:       cfg.Store,
		clock:       cfg.Clock,
		fedTraces:   cfg.FederateTraces,
		traceBudget: cfg.TraceBudgetBytes,
		eps:         make(map[int]*endpointState, len(cfg.Endpoints)),
		nextToken:   cfg.TokenSeed,
	}
	if c.maxMoves <= 0 {
		c.maxMoves = DefaultMaxMovesPerTick
	}
	if c.clock == nil {
		c.clock = obs.NewWallClock()
	}
	if c.traceBudget <= 0 {
		c.traceBudget = DefaultTraceBudgetBytes
	}
	if c.placer == nil {
		c.placer = DefaultPolicy()
	}
	if c.http == nil {
		c.http = &http.Client{Timeout: 5 * time.Second}
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if c.nextToken == 0 {
		c.nextToken = 1
	}
	for _, ep := range cfg.Endpoints {
		if _, dup := c.eps[ep.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate endpoint ID %d", ep.ID)
		}
		c.eps[ep.ID] = &endpointState{ep: ep}
		c.order = append(c.order, ep.ID)
	}
	sort.Ints(c.order)
	if reg := cfg.Metrics; reg != nil {
		c.mPolls = reg.Counter(obs.MetricFleetdPolls, "server endpoint polls")
		c.mPollErrors = reg.Counter(obs.MetricFleetdPollErrors, "failed endpoint polls")
		c.mHealthy = reg.Gauge(obs.MetricFleetdServersHealthy, "endpoints whose last poll succeeded with matching identity")
		c.mPlacements = reg.Counter(obs.MetricFleetdPlacements, "redirect placements handed to arriving clients")
		c.mMigrations = reg.Counter(obs.MetricFleetdMigrations, "live migrations ordered successfully")
		c.mMigFailures = reg.Counter(obs.MetricFleetdMigrationFailures, "migration orders the source server rejected")
		c.mIdentity = reg.Counter(obs.MetricFleetdIdentityMismatch, "polls answered by a server other than the configured identity")
		if c.store != nil {
			c.mScrapes = reg.Counter(obs.MetricFleetdScrapes, "successful /metrics.json scrapes")
			c.mScrapeErrors = reg.Counter(obs.MetricFleetdScrapeErrors, "failed /metrics.json or /trace scrapes of otherwise-healthy servers")
			c.gSeries = reg.Gauge(obs.MetricFleetdTSDBSeries, "live series in the federated time-series store")
			c.mSamples = reg.Counter(obs.MetricFleetdTSDBSamples, "samples appended to the federated time-series store")
			c.mDropped = reg.Counter(obs.MetricFleetdTSDBDroppedSeries, "series creations dropped at the store's cardinality cap")
		}
		if c.fedTraces {
			c.mFedSpans = reg.Counter(obs.MetricFleetdTraceSpansFederated, "spans pulled from server /trace pages into the fleet mirror")
		}
	}
	return c, nil
}

// healthzDoc is the subset of the /healthz body the Controller reads.
type healthzDoc struct {
	Status   string `json:"status"`
	ServerID *int   `json:"server_id"`
	Addr     string `json:"addr"`
}

// PollOnce scrapes every endpoint's /healthz and /loadz, in ID order.
// A server is healthy when both answer and /healthz echoes the
// configured identity; anything else marks it unhealthy until the
// next poll (placements and migrations skip unhealthy servers). It
// returns the number of healthy endpoints.
func (c *Controller) PollOnce() int {
	healthy := 0
	for _, id := range c.order {
		c.mu.Lock()
		st := c.eps[id]
		ep := st.ep
		c.mu.Unlock()

		ok, errStr, h, snap := c.pollEndpoint(ep)
		c.mPolls.Inc()
		if !ok {
			c.mPollErrors.Inc()
		}
		now := c.clock.Now()

		c.mu.Lock()
		st.polled = true
		st.healthy = ok
		st.lastErr = errStr
		if h != nil {
			if h.ServerID != nil {
				st.reportedID = *h.ServerID
			}
			st.reportedAddr = h.Addr
		}
		if snap != nil {
			st.atSeconds = snap.AtSeconds
			st.load = snap.Server
			st.load.ID = ep.ID
			st.load.Draining = st.draining
			st.clients = snap.Clients
		}
		if ok {
			healthy++
			st.lastOK = now
			st.haveOK = true
		}
		c.mu.Unlock()
		if !ok {
			c.logf("poll server %d (%s): %s", ep.ID, ep.MetricsURL, errStr)
		}
		// Federation: synthetic liveness series every tick, a full
		// /metrics.json scrape and a /trace page for healthy servers.
		mismatch := h != nil && h.Status == "ok" && (h.ServerID == nil || *h.ServerID != ep.ID)
		if c.store != nil {
			c.ingestPoll(ep, ok, mismatch, now)
		}
		if ok && c.fedTraces {
			c.scrapeTrace(st, ep)
		}
	}
	c.mHealthy.Set(int64(healthy))
	if c.store != nil {
		n, samples, dropped := c.store.Stats()
		c.gSeries.Set(int64(n)) // nil-safe
		c.mSamples.Add(samples - c.prevSamples)
		c.mDropped.Add(dropped - c.prevDropped)
		c.prevSamples, c.prevDropped = samples, dropped
	}
	return healthy
}

// pollEndpoint fetches one server's health and load documents.
func (c *Controller) pollEndpoint(ep Endpoint) (ok bool, errStr string, h *healthzDoc, snap *LoadSnapshot) {
	h = &healthzDoc{}
	if err := c.getJSON(ep.MetricsURL+"/healthz", h); err != nil {
		return false, "healthz: " + err.Error(), nil, nil
	}
	if h.Status != "ok" {
		return false, "healthz status " + h.Status, h, nil
	}
	if h.ServerID == nil || *h.ServerID != ep.ID {
		got := "absent"
		if h.ServerID != nil {
			got = fmt.Sprint(*h.ServerID)
		}
		c.mIdentity.Inc()
		return false, fmt.Sprintf("identity mismatch: configured server %d, endpoint reports %s", ep.ID, got), h, nil
	}
	snap = &LoadSnapshot{}
	if err := c.getJSON(ep.MetricsURL+"/loadz", snap); err != nil {
		return false, "loadz: " + err.Error(), h, nil
	}
	return true, "", h, snap
}

func (c *Controller) getJSON(url string, into any) error {
	resp, err := c.http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(into)
}

// Loads returns the last-polled ServerLoad rows of healthy endpoints,
// in ID order — the candidate set for placement.
func (c *Controller) Loads() []ServerLoad {
	c.mu.Lock()
	defer c.mu.Unlock()
	loads := make([]ServerLoad, 0, len(c.order))
	for _, id := range c.order {
		if st := c.eps[id]; st.healthy {
			loads = append(loads, st.load)
		}
	}
	return loads
}

// Endpoint returns the configured endpoint for server id.
func (c *Controller) Endpoint(id int) (Endpoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.eps[id]
	if !ok {
		return Endpoint{}, false
	}
	return st.ep, true
}

// PlaceClient picks a healthy server for an arriving client and
// returns its endpoint — the address the client should dial. The
// decision is advisory (the Controller keeps no assignment table);
// the chosen server's own /loadz reflects the placement once the
// client connects, closing the loop at the next poll.
func (c *Controller) PlaceClient(ci ClientInfo) (Endpoint, error) {
	id, err := c.placer.Place(ci, c.Loads())
	if err != nil {
		return Endpoint{}, err
	}
	ep, ok := c.Endpoint(id)
	if !ok {
		return Endpoint{}, fmt.Errorf("fleet: placer %s chose unknown server %d", c.placer.Name(), id)
	}
	c.mPlacements.Inc()
	c.logf("placed client %q on server %d (%s)", ci.ID, id, ep.Addr)
	return ep, nil
}

// Drain marks an endpoint as draining: it stops being a placement
// candidate and RebalanceOnce evacuates its clients. Drain is fleetd
// intent, not server state — the server keeps serving until its
// clients have been migrated away.
func (c *Controller) Drain(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.eps[id]
	if !ok {
		return fmt.Errorf("fleet: drain: unknown server %d", id)
	}
	st.draining = true
	st.load.Draining = true
	return nil
}

// MigrateClient orders the live migration of clientID from server src
// to server dst: it mints a resume token and POSTs a MigrateOrder to
// src's admin plane. The servers execute the actual transfer at the
// client's next iteration boundary.
func (c *Controller) MigrateClient(clientID string, src, dst int) error {
	c.mu.Lock()
	srcSt, okSrc := c.eps[src]
	dstSt, okDst := c.eps[dst]
	token := c.nextToken
	c.nextToken++
	c.mu.Unlock()
	if !okSrc || !okDst {
		return fmt.Errorf("fleet: migrate %q: unknown server pair %d -> %d", clientID, src, dst)
	}
	ord, err := json.Marshal(MigrateOrder{
		ClientID:    clientID,
		TargetAddr:  dstSt.ep.Addr,
		TargetAdmin: dstSt.ep.AdminURL,
		Token:       token,
	})
	if err != nil {
		return err
	}
	resp, err := c.http.Post(strings.TrimRight(srcSt.ep.AdminURL, "/")+"/admin/migrate",
		"application/json", bytes.NewReader(ord))
	if err != nil {
		c.mMigFailures.Inc()
		return fmt.Errorf("fleet: migrate %q: %w", clientID, err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		c.mMigFailures.Inc()
		return fmt.Errorf("fleet: migrate %q: server %d said %s: %s",
			clientID, src, resp.Status, strings.TrimSpace(string(body)))
	}
	c.mMigrations.Inc()
	c.logf("ordered migration of %q: server %d -> %d (token %d)", clientID, src, dst, token)
	return nil
}

// RebalanceOnce makes up to MaxMovesPerTick migration decisions over
// the last poll. Each decision evacuates a client from a draining
// server, or moves one client from the most to the least crowded
// server when the move is a strict improvement (the target must end up
// with fewer clients than the source has now, which damps
// oscillation). Between decisions the controller updates its own
// pending counts — the orders it just issued have not landed in any
// /loadz yet — and re-evaluates, so one tick can drain a whole server
// without flooding a single target. Only clients that negotiated the
// migration feature are candidates. It returns the number of orders
// issued; on error, the orders issued before the failure stand.
func (c *Controller) RebalanceOnce() (int, error) {
	// Local working copy of the healthy fleet: client counts here
	// include the moves ordered this tick, which no poll has seen yet.
	type node struct {
		id       int
		clients  int
		draining bool
	}
	c.mu.Lock()
	nodes := make([]*node, 0, len(c.order))
	for _, id := range c.order {
		st := c.eps[id]
		if !st.healthy {
			continue
		}
		nodes = append(nodes, &node{id: id, clients: st.load.Clients, draining: st.draining})
	}
	c.mu.Unlock()

	moves := 0
	// exhausted marks sources whose session list held no further
	// migratable client this tick; sessions and ordered keep one fetch
	// per source honest across multiple moves.
	exhausted := make(map[int]bool)
	sessCache := make(map[int][]SessionInfo)
	ordered := make(map[string]bool)
	for moves < c.maxMoves {
		var src, dst *node
		for _, n := range nodes {
			if n.draining {
				if n.clients > 0 && !exhausted[n.id] && src == nil {
					src = n
				}
				continue
			}
			if n.clients > 0 && !exhausted[n.id] &&
				(src == nil || (!src.draining && n.clients > src.clients)) {
				src = n
			}
			if dst == nil || n.clients < dst.clients {
				dst = n
			}
		}
		if src == nil || dst == nil || src.id == dst.id {
			break
		}
		if !src.draining && dst.clients+1 >= src.clients {
			break
		}

		sessions, ok := sessCache[src.id]
		if !ok {
			ep, _ := c.Endpoint(src.id)
			if err := c.getJSON(strings.TrimRight(ep.AdminURL, "/")+"/admin/sessions", &sessions); err != nil {
				return moves, fmt.Errorf("fleet: rebalance: sessions of server %d: %w", src.id, err)
			}
			// Lowest client ID first — deterministic given the same
			// polled state.
			sort.Slice(sessions, func(i, j int) bool { return sessions[i].ClientID < sessions[j].ClientID })
			sessCache[src.id] = sessions
		}
		pick := ""
		for _, s := range sessions {
			if s.Migrating || ordered[s.ClientID] || s.Features&split.FeatureMigration == 0 {
				continue
			}
			pick = s.ClientID
			break
		}
		if pick == "" {
			exhausted[src.id] = true
			continue
		}
		if err := c.MigrateClient(pick, src.id, dst.id); err != nil {
			return moves, err
		}
		ordered[pick] = true
		src.clients--
		dst.clients++
		moves++
	}
	return moves, nil
}

// FleetServer is one server's row in a FleetSnapshot.
type FleetServer struct {
	Endpoint     Endpoint `json:"endpoint"`
	Polled       bool     `json:"polled"`
	Healthy      bool     `json:"healthy"`
	Error        string   `json:"error,omitempty"`
	ReportedID   int      `json:"reported_id"`
	ReportedAddr string   `json:"reported_addr,omitempty"`
	Draining     bool     `json:"draining,omitempty"`
	AtSeconds    float64  `json:"at_seconds"`
	// DownForSeconds is how long an unhealthy server has failed its
	// polls, measured from its last successful one (0 while healthy, or
	// when it has never answered since fleetd started).
	DownForSeconds float64           `json:"down_for_seconds,omitempty"`
	Load           ServerLoad        `json:"load"`
	Clients        []obs.ClientUsage `json:"clients,omitempty"`
}

// FleetSnapshot is the document menos-fleetd serves at /fleetz: the
// whole fleet as the controller last saw it. menos-top -fleetd renders
// it; the JSON tags are its wire schema.
type FleetSnapshot struct {
	Policy  string        `json:"policy"`
	Servers []FleetServer `json:"servers"`
}

// Snapshot assembles the /fleetz document.
func (c *Controller) Snapshot() FleetSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := FleetSnapshot{Policy: c.placer.Name()}
	if p, ok := c.placer.(*PolicyPlacer); ok {
		snap.Policy = p.Describe()
	}
	now := c.clock.Now()
	for _, id := range c.order {
		st := c.eps[id]
		row := FleetServer{
			Endpoint:     st.ep,
			Polled:       st.polled,
			Healthy:      st.healthy,
			Error:        st.lastErr,
			ReportedID:   st.reportedID,
			ReportedAddr: st.reportedAddr,
			Draining:     st.draining,
			AtSeconds:    st.atSeconds,
			Load:         st.load,
			Clients:      st.clients,
		}
		if st.polled && !st.healthy && st.haveOK {
			row.DownForSeconds = (now - st.lastOK).Seconds()
		}
		snap.Servers = append(snap.Servers, row)
	}
	return snap
}
