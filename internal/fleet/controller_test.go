package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"menos/internal/obs"
	"menos/internal/split"
)

// fakeServer impersonates one menos-server's metrics and admin planes
// for controller tests.
type fakeServer struct {
	mu       sync.Mutex
	id       int
	addr     string
	load     ServerLoad
	sessions []SessionInfo
	orders   []MigrateOrder
	healthy  bool

	metrics *httptest.Server
	admin   *httptest.Server
}

func newFakeServer(t *testing.T, id int, clients int) *fakeServer {
	t.Helper()
	f := &fakeServer{
		id: id, addr: "127.0.0.1:0", healthy: true,
		load: ServerLoad{ID: id, Clients: clients, CapacityBytes: 32 * gib},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if !f.healthy {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		id := f.id
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "server_id": &id, "addr": f.addr,
		})
	})
	mux.HandleFunc("/loadz", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		_ = json.NewEncoder(w).Encode(LoadSnapshot{AtSeconds: 1, Server: f.load})
	})
	f.metrics = httptest.NewServer(mux)
	t.Cleanup(f.metrics.Close)

	amux := http.NewServeMux()
	amux.HandleFunc("GET /admin/sessions", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		_ = json.NewEncoder(w).Encode(f.sessions)
	})
	amux.HandleFunc("POST /admin/migrate", func(w http.ResponseWriter, req *http.Request) {
		var ord MigrateOrder
		if err := json.NewDecoder(req.Body).Decode(&ord); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.orders = append(f.orders, ord)
		f.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	})
	f.admin = httptest.NewServer(amux)
	t.Cleanup(f.admin.Close)
	return f
}

func (f *fakeServer) endpoint() Endpoint {
	return Endpoint{ID: f.id, Addr: f.addr, MetricsURL: f.metrics.URL, AdminURL: f.admin.URL}
}

func newTestController(t *testing.T, reg *obs.Registry, fakes ...*fakeServer) *Controller {
	t.Helper()
	eps := make([]Endpoint, len(fakes))
	for i, f := range fakes {
		eps[i] = f.endpoint()
	}
	c, err := NewController(ControllerConfig{Endpoints: eps, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestControllerPollAndPlace(t *testing.T) {
	a := newFakeServer(t, 1, 3)
	b := newFakeServer(t, 2, 0)
	reg := obs.NewRegistry()
	c := newTestController(t, reg, a, b)

	if n := c.PollOnce(); n != 2 {
		t.Fatalf("healthy = %d, want 2", n)
	}
	loads := c.Loads()
	if len(loads) != 2 || loads[0].ID != 1 || loads[1].ID != 2 {
		t.Fatalf("loads = %+v", loads)
	}
	ep, err := c.PlaceClient(ClientInfo{ID: "c", TransientPeakBytes: gib})
	if err != nil {
		t.Fatal(err)
	}
	if ep.ID != 2 {
		t.Fatalf("placed on %d, want emptier server 2", ep.ID)
	}
}

func TestControllerUnhealthyExcluded(t *testing.T) {
	a := newFakeServer(t, 1, 0)
	b := newFakeServer(t, 2, 0)
	b.mu.Lock()
	b.healthy = false
	b.mu.Unlock()
	c := newTestController(t, obs.NewRegistry(), a, b)
	if n := c.PollOnce(); n != 1 {
		t.Fatalf("healthy = %d, want 1", n)
	}
	ep, err := c.PlaceClient(ClientInfo{ID: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if ep.ID != 1 {
		t.Fatalf("placed on %d, want the only healthy server 1", ep.ID)
	}
	snap := c.Snapshot()
	if snap.Servers[1].Healthy || snap.Servers[1].Error == "" {
		t.Fatalf("snapshot row for down server: %+v", snap.Servers[1])
	}
}

func TestControllerIdentityMismatch(t *testing.T) {
	a := newFakeServer(t, 1, 0)
	// The endpoint claims ID 9 but the process answers as 1 — e.g. a
	// port remap now pointing at a different server.
	ep := a.endpoint()
	ep.ID = 9
	reg := obs.NewRegistry()
	c, err := NewController(ControllerConfig{Endpoints: []Endpoint{ep}, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.PollOnce(); n != 0 {
		t.Fatalf("healthy = %d, want 0 on identity mismatch", n)
	}
	snap := c.Snapshot()
	if !strings.Contains(snap.Servers[0].Error, "identity mismatch") {
		t.Fatalf("error = %q, want identity mismatch", snap.Servers[0].Error)
	}
	if snap.Servers[0].ReportedID != 1 {
		t.Fatalf("reported ID = %d, want 1", snap.Servers[0].ReportedID)
	}
	if got := counterValue(t, reg, obs.MetricFleetdIdentityMismatch); got != 1 {
		t.Fatalf("identity mismatch counter = %d, want 1", got)
	}
}

func TestControllerRebalanceEvacuatesDraining(t *testing.T) {
	a := newFakeServer(t, 1, 2)
	a.sessions = []SessionInfo{
		{ClientID: "zeta", Features: split.FeatureMigration},
		{ClientID: "alpha", Features: split.FeatureMigration},
	}
	b := newFakeServer(t, 2, 2)
	reg := obs.NewRegistry()
	c := newTestController(t, reg, a, b)
	c.PollOnce()

	// Balanced fleet: no move.
	if moved, err := c.RebalanceOnce(); err != nil || moved != 0 {
		t.Fatalf("balanced fleet moved=%d err=%v, want no-op", moved, err)
	}

	if err := c.Drain(1); err != nil {
		t.Fatal(err)
	}
	moved, err := c.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	// One tick evacuates the whole draining server: both sessions move.
	if moved != 2 {
		t.Fatalf("moved = %d, want both sessions off the draining server", moved)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.orders) != 2 {
		t.Fatalf("orders = %+v, want exactly two", a.orders)
	}
	if a.orders[0].ClientID != "alpha" || a.orders[1].ClientID != "zeta" {
		t.Fatalf("orders = %+v, want lowest client ID alpha first then zeta", a.orders)
	}
	for _, ord := range a.orders {
		if ord.TargetAddr != b.addr || ord.TargetAdmin != b.admin.URL || ord.Token == 0 {
			t.Fatalf("order = %+v, want target server 2 with a nonzero token", ord)
		}
	}
	if a.orders[0].Token == a.orders[1].Token {
		t.Fatalf("orders share token %d, want distinct resume tokens", a.orders[0].Token)
	}
	if got := counterValue(t, reg, obs.MetricFleetdMigrations); got != 2 {
		t.Fatalf("migrations counter = %d, want 2", got)
	}
}

// TestControllerRebalanceTwoMovesOneTick drains a server holding two
// migratable sessions with two idle targets available: one
// RebalanceOnce tick must order both moves, and the controller's
// pending-count bookkeeping must spread them across both targets
// rather than stacking the second move onto the first target.
func TestControllerRebalanceTwoMovesOneTick(t *testing.T) {
	a := newFakeServer(t, 1, 2)
	a.sessions = []SessionInfo{
		{ClientID: "c1", Features: split.FeatureMigration},
		{ClientID: "c2", Features: split.FeatureMigration},
	}
	b := newFakeServer(t, 2, 0)
	d := newFakeServer(t, 3, 0)
	reg := obs.NewRegistry()
	c := newTestController(t, reg, a, b, d)
	c.PollOnce()
	if err := c.Drain(1); err != nil {
		t.Fatal(err)
	}
	moved, err := c.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("moved = %d, want 2 in a single tick", moved)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.orders) != 2 {
		t.Fatalf("orders = %+v, want exactly two", a.orders)
	}
	if a.orders[0].ClientID != "c1" || a.orders[1].ClientID != "c2" {
		t.Fatalf("orders = %+v, want c1 then c2 in client-ID order", a.orders)
	}
	if a.orders[0].TargetAddr != b.addr {
		t.Fatalf("first order targets %q, want emptiest (lowest-ID) server 2", a.orders[0].TargetAddr)
	}
	if a.orders[1].TargetAddr != d.addr {
		t.Fatalf("second order targets %q, want server 3 after server 2's pending move", a.orders[1].TargetAddr)
	}
	if got := counterValue(t, reg, obs.MetricFleetdMigrations); got != 2 {
		t.Fatalf("migrations counter = %d, want 2", got)
	}
}

func TestControllerRebalanceSkipsNonMigratable(t *testing.T) {
	a := newFakeServer(t, 1, 1)
	a.sessions = []SessionInfo{{ClientID: "legacy"}} // no FeatureMigration
	b := newFakeServer(t, 2, 0)
	c := newTestController(t, obs.NewRegistry(), a, b)
	c.PollOnce()
	if err := c.Drain(1); err != nil {
		t.Fatal(err)
	}
	moved, err := c.RebalanceOnce()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatal("a session without the migration feature must not be ordered to move")
	}
}

func TestControllerRebalanceStrictImprovement(t *testing.T) {
	a := newFakeServer(t, 1, 2)
	a.sessions = []SessionInfo{{ClientID: "a1", Features: split.FeatureMigration}}
	b := newFakeServer(t, 2, 1)
	c := newTestController(t, obs.NewRegistry(), a, b)
	c.PollOnce()
	// 2 vs 1: moving makes it 1 vs 2 — no improvement, no move.
	if moved, err := c.RebalanceOnce(); err != nil || moved != 0 {
		t.Fatalf("moved=%d err=%v, want no-op on a non-improving move", moved, err)
	}
}

func TestControllerDuplicateEndpointRejected(t *testing.T) {
	_, err := NewController(ControllerConfig{Endpoints: []Endpoint{{ID: 1}, {ID: 1}}})
	if err == nil {
		t.Fatal("duplicate endpoint IDs must be rejected")
	}
}

// counterValue reads a counter back out of the registry's JSON dump.
func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.Counters[name]
}
