// Package fleet is the control plane for multi-server Menos: it
// decides which server a split fine-tuning client lives on (placement)
// and how many servers exist at all (autoscaling), driven by the same
// telemetry the servers already publish — scheduler queue depth,
// admission state and GPU used/capacity gauges (docs/FLEET.md).
//
// The package is deliberately free of time sources and goroutines: a
// Placer is a pure decision function over observed ServerLoads, the
// Autoscaler is a pure state machine fed explicit clock readings, and
// the Manager's bookkeeping iterates servers in sorted-ID order. The
// same code therefore runs under the deterministic discrete-event
// simulator (internal/splitsim) and a wall-clock deployment, and two
// identical simulated runs make bit-identical fleet decisions.
package fleet

import (
	"errors"
	"fmt"
)

// ErrNoServers is returned by a Placer asked to place onto an empty
// (or fully draining) fleet.
var ErrNoServers = errors.New("fleet: no servers available for placement")

// ClientInfo is what the control plane knows about a client before
// placing it: identity, the base model it needs resident, and the
// memory-model prediction of its footprint (internal/memmodel §3.3
// profiling — persistent adapter/optimizer state plus the largest
// transient forward/backward peak).
type ClientInfo struct {
	ID        string
	BaseModel string
	// PersistentBytes is held for the whole session (adapter, gradient
	// and optimizer state plus the serving-process context).
	PersistentBytes int64
	// TransientPeakBytes is the largest single grant the client will
	// request (normally the re-forward+backward peak).
	TransientPeakBytes int64
}

// demandBytes is the footprint a placement must account for.
func (c ClientInfo) demandBytes() int64 {
	return c.PersistentBytes + c.TransientPeakBytes
}

// Signals is one live telemetry probe of a server: the gauges the
// placement policies react to, read at decision time.
type Signals struct {
	// QueueDepth is the scheduler's menos_sched_queue_depth gauge.
	QueueDepth int
	// UsedBytes is the device-set menos_gpu_used_bytes gauge.
	UsedBytes int64
	// Admission is the server's admission-ladder position.
	Admission AdmissionState
}

// AdmissionState mirrors sched.AdmissionState ordering (0 open,
// 1 throttled, 2 shedding) without importing the scheduler package, so
// fleet stays a leaf the scheduler could itself depend on later.
type AdmissionState int

// Admission states, ordered by pressure (kept numerically identical to
// internal/sched's ladder).
const (
	AdmissionOpen AdmissionState = iota
	AdmissionThrottled
	AdmissionShedding
)

// Probe reads a server's live Signals. In the simulator it closes over
// the simulated scheduler and device set; in a real deployment it
// would scrape the server's /metrics.json.
type Probe func() Signals

// ServerLoad is one server's state as seen by a placement decision:
// live signals plus the Manager's own bookkeeping (resident clients,
// committed transient demand, resident models, drain flag).
// The JSON tags define the wire schema of the /loadz endpoint
// (LoadSnapshot); changing them is a breaking change for menos-top and
// any polling controller.
type ServerLoad struct {
	ID int `json:"id"`
	// Clients is the number of resident clients (persistent state on
	// this server).
	Clients int `json:"clients"`
	// QueueDepth, UsedBytes and Admission are the live Signals.
	QueueDepth int            `json:"queue_depth"`
	UsedBytes  int64          `json:"used_bytes"`
	Admission  AdmissionState `json:"admission"`
	// CommittedBytes sums the predicted transient peaks of the resident
	// clients — demand that is not visible in UsedBytes between grants
	// but will contend for the scheduler's budget.
	CommittedBytes int64 `json:"committed_bytes"`
	// CapacityBytes is the server's total GPU memory.
	CapacityBytes int64 `json:"capacity_bytes"`
	// Models lists the base models resident on the server.
	Models []string `json:"models"`
	// Draining marks a server being scaled down: it accepts no new
	// placements and its clients migrate away.
	Draining bool `json:"draining,omitempty"`
}

// HasModel reports whether the server already hosts base model name.
func (l ServerLoad) HasModel(name string) bool {
	for _, m := range l.Models {
		if m == name {
			return true
		}
	}
	return false
}

// FreeBytes is the headroom a MemoryBestFit placement packs against:
// capacity minus what is allocated minus what resident clients are
// predicted to demand transiently. It can go negative once the fleet
// is overcommitted (clients then queue on the scheduler).
func (l ServerLoad) FreeBytes() int64 {
	return l.CapacityBytes - l.UsedBytes - l.CommittedBytes
}

// Placer chooses a server for a client. Implementations must be
// deterministic: same inputs (including internal cursor state), same
// answer. Place returns the chosen ServerLoad.ID.
type Placer interface {
	Name() string
	Place(c ClientInfo, servers []ServerLoad) (int, error)
}

// RoundRobin cycles through servers in the order given, ignoring all
// telemetry. With a static fleet listed in ID order it reproduces the
// historical i mod N assignment bit-exactly, which is why it is the
// default: enabling the fleet layer with RoundRobin changes nothing.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a RoundRobin placer with its cursor at the
// first server.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Placer.
func (r *RoundRobin) Name() string { return "round-robin" }

// Place implements Placer.
func (r *RoundRobin) Place(_ ClientInfo, servers []ServerLoad) (int, error) {
	if len(servers) == 0 {
		return 0, ErrNoServers
	}
	id := servers[r.next%len(servers)].ID
	r.next++
	return id, nil
}

// LeastLoaded picks the server with the fewest waiting-plus-resident
// clients (menos_sched_queue_depth plus the active-client count),
// breaking ties toward the lowest server ID. It balances headcount but
// is blind to memory, so heterogeneous footprints can still pile onto
// one scheduler.
type LeastLoaded struct{}

// NewLeastLoaded returns the load-based placer.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Placer.
func (l *LeastLoaded) Name() string { return "least-loaded" }

// Place implements Placer.
func (l *LeastLoaded) Place(_ ClientInfo, servers []ServerLoad) (int, error) {
	best := -1
	bestLoad := 0
	for _, s := range servers {
		load := s.QueueDepth + s.Clients
		if best < 0 || load < bestLoad || (load == bestLoad && s.ID < best) {
			best = s.ID
			bestLoad = load
		}
	}
	if best < 0 {
		return 0, ErrNoServers
	}
	return best, nil
}

// MemoryBestFit packs the client's predicted footprint (persistent +
// transient peak) against each server's free memory — capacity minus
// menos_gpu_used_bytes minus already-committed transient demand. Among
// servers where the client fits it prefers those that already host the
// client's base model (sharing-aware residency: co-placed clients
// share one base copy), then the tightest remaining fit, then the
// lowest ID. When no server fits, it falls back to the most headroom,
// overcommitting the scheduler rather than refusing (requests then
// queue, which is the scheduler's job to absorb).
type MemoryBestFit struct{}

// NewMemoryBestFit returns the memory-packing placer.
func NewMemoryBestFit() *MemoryBestFit { return &MemoryBestFit{} }

// Name implements Placer.
func (m *MemoryBestFit) Name() string { return "memory-best-fit" }

// Place implements Placer.
func (m *MemoryBestFit) Place(c ClientInfo, servers []ServerLoad) (int, error) {
	if len(servers) == 0 {
		return 0, ErrNoServers
	}
	need := c.demandBytes()
	best := -1
	bestShared := false
	var bestLeft int64
	for _, s := range servers {
		left := s.FreeBytes() - need
		if left < 0 {
			continue
		}
		shared := c.BaseModel != "" && s.HasModel(c.BaseModel)
		switch {
		case best < 0,
			shared && !bestShared,
			shared == bestShared && left < bestLeft,
			shared == bestShared && left == bestLeft && s.ID < best:
			best = s.ID
			bestShared = shared
			bestLeft = left
		}
	}
	if best >= 0 {
		return best, nil
	}
	// Nothing fits: overcommit the server with the most headroom (the
	// least-bad choice, and the one that equalizes committed demand).
	var bestFree int64
	for _, s := range servers {
		if free := s.FreeBytes(); best < 0 || free > bestFree || (free == bestFree && s.ID < best) {
			best = s.ID
			bestFree = free
		}
	}
	return best, nil
}

// PlacerByName builds a fresh placer from its Name() string — the
// inverse used by CLI flags and experiment tables.
func PlacerByName(name string) (Placer, error) {
	switch name {
	case "round-robin":
		return NewRoundRobin(), nil
	case "least-loaded":
		return NewLeastLoaded(), nil
	case "memory-best-fit":
		return NewMemoryBestFit(), nil
	case "policy":
		return DefaultPolicy(), nil
	default:
		return nil, fmt.Errorf("fleet: unknown placer %q", name)
	}
}
