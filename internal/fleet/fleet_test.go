package fleet

import (
	"errors"
	"testing"
)

const gib = int64(1) << 30

// loads builds a fleet of n empty 32-GiB servers hosting model "m".
func loads(n int) []ServerLoad {
	ls := make([]ServerLoad, n)
	for i := range ls {
		ls[i] = ServerLoad{ID: i, CapacityBytes: 32 * gib, Models: []string{"m"}}
	}
	return ls
}

func TestRoundRobinMatchesModulo(t *testing.T) {
	rr := NewRoundRobin()
	ls := loads(3)
	for i := 0; i < 12; i++ {
		id, err := rr.Place(ClientInfo{ID: "c"}, ls)
		if err != nil {
			t.Fatal(err)
		}
		if id != i%3 {
			t.Fatalf("placement %d: got server %d, want %d", i, id, i%3)
		}
	}
}

func TestPlacersRejectEmptyFleet(t *testing.T) {
	for _, p := range []Placer{NewRoundRobin(), NewLeastLoaded(), NewMemoryBestFit()} {
		if _, err := p.Place(ClientInfo{ID: "c"}, nil); !errors.Is(err, ErrNoServers) {
			t.Errorf("%s: want ErrNoServers, got %v", p.Name(), err)
		}
	}
}

func TestLeastLoadedPicksLightestServer(t *testing.T) {
	ls := loads(3)
	ls[0].QueueDepth = 4
	ls[1].Clients = 1
	ls[2].QueueDepth = 1
	ls[2].Clients = 1
	id, err := NewLeastLoaded().Place(ClientInfo{ID: "c"}, ls)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("got server %d, want 1 (lightest queue+clients)", id)
	}
}

func TestLeastLoadedTieBreaksLowID(t *testing.T) {
	id, err := NewLeastLoaded().Place(ClientInfo{ID: "c"}, loads(3))
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("got server %d, want 0 on ties", id)
	}
}

func TestMemoryBestFitPicksTightestFeasible(t *testing.T) {
	ls := loads(3)
	ls[0].UsedBytes = 31 * gib // 1 GiB free: infeasible for a 2 GiB client
	ls[1].UsedBytes = 29 * gib // 3 GiB free: tightest feasible
	ls[2].UsedBytes = 20 * gib // 12 GiB free
	c := ClientInfo{ID: "c", PersistentBytes: gib / 2, TransientPeakBytes: gib + gib/2}
	id, err := NewMemoryBestFit().Place(c, ls)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("got server %d, want 1 (tightest fit)", id)
	}
}

func TestMemoryBestFitCountsCommittedDemand(t *testing.T) {
	ls := loads(2)
	// Server 0 looks empty on the device gauge but has 10 GiB of
	// committed transient demand; server 1 is genuinely free.
	ls[0].CommittedBytes = 31 * gib
	c := ClientInfo{ID: "c", TransientPeakBytes: 4 * gib}
	id, err := NewMemoryBestFit().Place(c, ls)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("got server %d, want 1 (server 0 is committed full)", id)
	}
}

func TestMemoryBestFitPrefersSharedBaseModel(t *testing.T) {
	ls := loads(2)
	ls[0].Models = []string{"other"}
	ls[0].UsedBytes = 10 * gib // tighter fit, but wrong base model
	c := ClientInfo{ID: "c", BaseModel: "m", TransientPeakBytes: 2 * gib}
	id, err := NewMemoryBestFit().Place(c, ls)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("got server %d, want 1 (hosts the client's base model)", id)
	}
}

func TestMemoryBestFitFallsBackToMostHeadroom(t *testing.T) {
	ls := loads(2)
	ls[0].UsedBytes = 32 * gib
	ls[1].UsedBytes = 30 * gib
	// 40 GiB can never fit; the placer must still answer (overcommit),
	// choosing the server with the most headroom.
	c := ClientInfo{ID: "c", TransientPeakBytes: 40 * gib}
	id, err := NewMemoryBestFit().Place(c, ls)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("got server %d, want 1 (most headroom)", id)
	}
}

func TestPlacerByName(t *testing.T) {
	for _, name := range []string{"round-robin", "least-loaded", "memory-best-fit"} {
		p, err := PlacerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("PlacerByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PlacerByName("nope"); err == nil {
		t.Error("unknown placer name: want error")
	}
}
