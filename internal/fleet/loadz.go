package fleet

import "menos/internal/obs"

// LoadSnapshot is the wire document a server publishes at GET /loadz:
// exactly the ServerLoad shape a Placer consumes — so a future
// menos-fleetd can poll N servers and feed the rows straight into
// Manager/Placer decisions without translation — plus the per-client
// accounting ledger behind it. The simulator hand-assembles ServerLoad
// from its bookkeeping; the real serving plane serializes this struct.
type LoadSnapshot struct {
	// AtSeconds is the server's telemetry-clock reading when the
	// snapshot was taken (seconds since process start).
	AtSeconds float64 `json:"at_seconds"`
	// Server is the placement-relevant load surface.
	Server ServerLoad `json:"server"`
	// Clients is the per-tenant ledger: one row per resident (or
	// recently active) client, sorted by ID.
	Clients []obs.ClientUsage `json:"clients"`
}
