// The /loadz wire-schema tests live in an external test package so
// they can stand up a real server (internal/server imports fleet; the
// reverse import would cycle).
package fleet_test

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/fleet"
	"menos/internal/model"
	"menos/internal/obs"
	"menos/internal/server"
	"menos/internal/share"
	"menos/internal/tensor"
)

// TestLoadSnapshotRoundTrip pins the /loadz JSON schema: a fully
// populated document survives encode/decode unchanged, and the field
// names the fleet layer promises (ServerLoad's tags) appear on the
// wire.
func TestLoadSnapshotRoundTrip(t *testing.T) {
	want := fleet.LoadSnapshot{
		AtSeconds: 12.5,
		Server: fleet.ServerLoad{
			ID:             3,
			Clients:        2,
			QueueDepth:     4,
			UsedBytes:      5 << 30,
			Admission:      fleet.AdmissionThrottled,
			CommittedBytes: 1 << 30,
			CapacityBytes:  32 << 30,
			Models:         []string{"opt-6.7b"},
			Draining:       true,
		},
		Clients: []obs.ClientUsage{{
			ID:                    "tenant-a",
			ComputeSeconds:        1.5,
			GrantWaitSeconds:      0.25,
			PersistentByteSeconds: 1e9,
			TransientByteSeconds:  2e8,
			PersistentBytes:       128 << 20,
			TransientBytes:        64 << 20,
			WireTxBytes:           1000,
			WireRxBytes:           2000,
			Iterations:            8,
			Sheds:                 1,
			Retries:               2,
		}},
	}
	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got fleet.LoadSnapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the document:\n got %+v\nwant %+v", got, want)
	}
	// Spot-check the stable wire names a polling controller greps for.
	for _, key := range []string{`"at_seconds"`, `"queue_depth"`, `"capacity_bytes"`,
		`"committed_bytes"`, `"compute_seconds"`, `"grant_wait_seconds"`, `"iterations"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("wire document missing %s: %s", key, b)
		}
	}
}

// TestLoadzEndToEnd decodes a live server's /loadz — served by the
// metrics mux via obs.WithLoadz — into the fleet types: the full loop a
// menos-fleetd or menos-top would run.
func TestLoadzEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := share.NewStore(tensor.NewRNG(1234), model.OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: store, OnDemand: true, Metrics: reg, ServerID: 42})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	mux := obs.Handler(reg, nil, obs.WithLoadz(func() any { return srv.LoadSnapshot() }))
	web := httptest.NewServer(mux)
	defer web.Close()

	ccfg := client.Config{
		ClientID:    "probe-client",
		Model:       model.OPTTiny(),
		WeightSeed:  1234,
		Cut:         1,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 99,
		LR:          5e-3,
		Batch:       2,
		Seq:         6,
	}
	c, err := client.Dial(l.Addr().String(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := tensor.NewRNG(7)
	n := ccfg.Batch * ccfg.Seq
	ids := make([]int, n)
	targets := make([]int, n)
	for i := range ids {
		ids[i] = rng.Intn(ccfg.Model.Vocab)
		targets[i] = rng.Intn(ccfg.Model.Vocab)
	}
	if _, err := c.Step(ids, targets); err != nil {
		t.Fatal(err)
	}

	resp, err := web.Client().Get(web.URL + "/loadz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /loadz: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var snap fleet.LoadSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /loadz: %v", err)
	}
	if snap.Server.ID != 42 {
		t.Errorf("server id = %d, want 42", snap.Server.ID)
	}
	if snap.Server.Clients != 1 {
		t.Errorf("clients = %d, want 1 (session still open)", snap.Server.Clients)
	}
	if snap.Server.CommittedBytes <= 0 {
		t.Errorf("committed bytes = %d, want > 0 with a resident client", snap.Server.CommittedBytes)
	}
	if snap.Server.CapacityBytes <= 0 || snap.Server.UsedBytes <= 0 {
		t.Errorf("capacity/used missing: %+v", snap.Server)
	}
	if !snap.Server.HasModel(model.OPTTiny().Name) {
		t.Errorf("models = %v, want %q resident", snap.Server.Models, model.OPTTiny().Name)
	}
	found := false
	for _, u := range snap.Clients {
		if u.ID == "probe-client" {
			found = true
			if u.Iterations != 1 {
				t.Errorf("iterations = %d, want 1", u.Iterations)
			}
			if u.WireRxBytes == 0 || u.WireTxBytes == 0 {
				t.Errorf("wire bytes not accounted: %+v", u)
			}
			if u.PersistentBytes <= 0 {
				t.Errorf("persistent holding = %d, want > 0 while session is open", u.PersistentBytes)
			}
		}
	}
	if !found {
		t.Fatalf("no ledger row for probe-client in %+v", snap.Clients)
	}

	// The placement machinery consumes the decoded row directly.
	placer := fleet.NewMemoryBestFit()
	id, err := placer.Place(fleet.ClientInfo{ID: "next", BaseModel: model.OPTTiny().Name},
		[]fleet.ServerLoad{snap.Server})
	if err != nil || id != 42 {
		t.Errorf("placing onto decoded load: id=%d err=%v", id, err)
	}
}
