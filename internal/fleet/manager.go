package fleet

import (
	"fmt"
	"sort"
	"sync"

	"menos/internal/obs"
)

// Manager is the fleet's bookkeeping plane: which servers exist, which
// clients live where, and how much transient demand each server has
// committed. It delegates the actual choice to a Placer and publishes
// the menos_fleet_* metrics. All iteration is in sorted server-ID
// order, so decisions are deterministic regardless of map layout.
type Manager struct {
	mu     sync.Mutex
	placer Placer

	servers map[int]*serverEntry
	order   []int          // sorted server IDs
	assign  map[string]int // client ID -> server ID

	placements  int64
	migrations  int64
	scaleEvents int64

	// Telemetry handles (nil-safe; wired by Instrument).
	mPlacements  *obs.Counter
	mMigrations  *obs.Counter
	mServers     *obs.Gauge
	mScaleEvents *obs.Counter
	mImbalance   *obs.Gauge
}

// serverEntry is the Manager's record of one server.
type serverEntry struct {
	id        int
	capacity  int64
	models    []string
	probe     Probe
	clients   map[string]int64 // client ID -> committed transient bytes
	committed int64            // sum of clients' transient peaks
	draining  bool
}

// NewManager builds a Manager around placer (nil means RoundRobin, the
// bit-identical-to-history default).
func NewManager(placer Placer) *Manager {
	if placer == nil {
		placer = NewRoundRobin()
	}
	return &Manager{
		placer:  placer,
		servers: make(map[int]*serverEntry),
		assign:  make(map[string]int),
	}
}

// Placer returns the policy in use.
func (m *Manager) Placer() Placer { return m.placer }

// Instrument wires the menos_fleet_* metrics into reg (nil-safe). Call
// during setup, before decisions are made.
func (m *Manager) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mPlacements = reg.Counter(obs.MetricFleetPlacements, "client placements decided")
	m.mMigrations = reg.Counter(obs.MetricFleetMigrations, "clients migrated between servers")
	m.mServers = reg.Gauge(obs.MetricFleetServers, "active (non-draining) servers")
	m.mScaleEvents = reg.Counter(obs.MetricFleetScaleEvents, "autoscaler scale-up/down events")
	m.mImbalance = reg.Gauge(obs.MetricFleetImbalance, "max/mean resident clients per active server, thousandths")
	m.publishLocked()
}

// AddServer registers a server. Probe may be nil (signals read as
// zero), which only makes sense for tests.
func (m *Manager) AddServer(id int, capacity int64, models []string, probe Probe) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.servers[id]; ok {
		return fmt.Errorf("fleet: server %d already registered", id)
	}
	m.servers[id] = &serverEntry{
		id:       id,
		capacity: capacity,
		models:   append([]string(nil), models...),
		probe:    probe,
		clients:  make(map[string]int64),
	}
	m.order = append(m.order, id)
	sort.Ints(m.order)
	m.publishLocked()
	return nil
}

// Drain marks a server as scaling down: it stops receiving placements
// and Rebalance moves its clients away. The last active server cannot
// be drained.
func (m *Manager) Drain(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.servers[id]
	if !ok {
		return fmt.Errorf("fleet: drain: unknown server %d", id)
	}
	if e.draining {
		return nil
	}
	if m.activeLocked() <= 1 {
		return fmt.Errorf("fleet: cannot drain the last active server %d", id)
	}
	e.draining = true
	m.publishLocked()
	return nil
}

// Remove deregisters a drained, empty server. It is an error to remove
// a server that still hosts clients.
func (m *Manager) Remove(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.servers[id]
	if !ok {
		return fmt.Errorf("fleet: remove: unknown server %d", id)
	}
	if len(e.clients) > 0 {
		return fmt.Errorf("fleet: remove: server %d still hosts %d clients", id, len(e.clients))
	}
	delete(m.servers, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.publishLocked()
	return nil
}

// Place decides a server for client c, records the assignment, and
// returns the server ID. Draining servers are never candidates.
func (m *Manager) Place(c ClientInfo) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.assign[c.ID]; ok {
		return 0, fmt.Errorf("fleet: client %q already placed", c.ID)
	}
	id, err := m.placer.Place(c, m.loadsLocked(false))
	if err != nil {
		return 0, err
	}
	e, ok := m.servers[id]
	if !ok {
		return 0, fmt.Errorf("fleet: placer %s chose unknown server %d", m.placer.Name(), id)
	}
	m.attachLocked(e, c)
	m.placements++
	m.mPlacements.Inc()
	m.publishLocked()
	return id, nil
}

// Unplace reverts a placement whose physical admission failed (the
// chosen server could not actually hold the client), so the caller can
// retry after the fleet changes.
func (m *Manager) Unplace(clientID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.detachLocked(clientID)
	m.publishLocked()
}

// Depart removes a finished client's assignment (its persistent state
// left the server).
func (m *Manager) Depart(clientID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.detachLocked(clientID)
	m.publishLocked()
}

// Rebalance re-places an already-resident client. A move happens only
// when the client's server is draining (forced evacuation) or when the
// placer's choice is strictly better — the target must end up with
// fewer clients than the source has now, which damps oscillation. fit,
// when non-nil, lets the caller veto targets that cannot physically
// admit the client right now. Rebalance returns the target server and
// whether a migration happened; the caller performs the actual state
// transfer.
func (m *Manager) Rebalance(c ClientInfo, fit func(serverID int) bool) (int, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.assign[c.ID]
	if !ok {
		return 0, false, fmt.Errorf("fleet: rebalance: client %q not placed", c.ID)
	}
	src := m.servers[cur]
	id, err := m.placer.Place(c, m.loadsLocked(false))
	if err != nil || id == cur {
		return cur, false, nil
	}
	dst, ok := m.servers[id]
	if !ok {
		return cur, false, nil
	}
	if !src.draining && len(dst.clients)+1 >= len(src.clients) {
		return cur, false, nil
	}
	if fit != nil && !fit(id) {
		return cur, false, nil
	}
	m.detachLocked(c.ID)
	m.attachLocked(dst, c)
	m.migrations++
	m.mMigrations.Inc()
	m.publishLocked()
	return id, true, nil
}

// DrainCandidate picks the server an autoscaler should drain next: the
// active server with the fewest resident clients, ties to the lowest
// ID. ok is false when no server may be drained (only one active).
func (m *Manager) DrainCandidate() (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.activeLocked() <= 1 {
		return 0, false
	}
	best := -1
	bestClients := 0
	for _, id := range m.order {
		e := m.servers[id]
		if e.draining {
			continue
		}
		if best < 0 || len(e.clients) < bestClients {
			best = id
			bestClients = len(e.clients)
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Loads snapshots every non-removed server's ServerLoad (including
// draining ones, flagged), probing live signals, in ID order.
func (m *Manager) Loads() []ServerLoad {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.loadsLocked(true)
}

// ServerOf returns the server currently hosting clientID.
func (m *Manager) ServerOf(clientID string) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.assign[clientID]
	return id, ok
}

// ClientCount returns the number of clients resident on server id
// (zero for unknown servers).
func (m *Manager) ClientCount(id int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.servers[id]; ok {
		return len(e.clients)
	}
	return 0
}

// ActiveServers counts non-draining servers.
func (m *Manager) ActiveServers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.activeLocked()
}

// RecordScaleEvent counts one autoscaler action (the Manager owns the
// fleet metrics; the Autoscaler is a pure state machine).
func (m *Manager) RecordScaleEvent() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.scaleEvents++
	m.mScaleEvents.Inc()
}

// Imbalance returns max/mean resident clients across active servers
// (1.0 is perfectly balanced; 0 when the fleet is empty or unused).
func (m *Manager) Imbalance() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.imbalanceLocked()
}

// Stats is a snapshot of the Manager's counters.
type Stats struct {
	Placements  int64
	Migrations  int64
	ScaleEvents int64
	Servers     int // active (non-draining)
	Draining    int
}

// Stats snapshots the fleet counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Placements:  m.placements,
		Migrations:  m.migrations,
		ScaleEvents: m.scaleEvents,
	}
	for _, e := range m.servers {
		if e.draining {
			st.Draining++
		} else {
			st.Servers++
		}
	}
	return st
}

// attachLocked records client c on server e. Caller holds m.mu.
func (m *Manager) attachLocked(e *serverEntry, c ClientInfo) {
	e.clients[c.ID] = c.TransientPeakBytes
	e.committed += c.TransientPeakBytes
	m.assign[c.ID] = e.id
}

// detachLocked removes clientID from its server. Caller holds m.mu.
func (m *Manager) detachLocked(clientID string) {
	id, ok := m.assign[clientID]
	if !ok {
		return
	}
	if e, ok := m.servers[id]; ok {
		e.committed -= e.clients[clientID]
		delete(e.clients, clientID)
	}
	delete(m.assign, clientID)
}

// loadsLocked snapshots ServerLoads in ID order. Caller holds m.mu.
func (m *Manager) loadsLocked(includeDraining bool) []ServerLoad {
	loads := make([]ServerLoad, 0, len(m.order))
	for _, id := range m.order {
		e := m.servers[id]
		if e.draining && !includeDraining {
			continue
		}
		var sig Signals
		if e.probe != nil {
			sig = e.probe()
		}
		loads = append(loads, ServerLoad{
			ID:             id,
			Clients:        len(e.clients),
			QueueDepth:     sig.QueueDepth,
			UsedBytes:      sig.UsedBytes,
			Admission:      sig.Admission,
			CommittedBytes: e.committed,
			CapacityBytes:  e.capacity,
			Models:         e.models,
			Draining:       e.draining,
		})
	}
	return loads
}

// activeLocked counts non-draining servers. Caller holds m.mu.
func (m *Manager) activeLocked() int {
	n := 0
	for _, e := range m.servers {
		if !e.draining {
			n++
		}
	}
	return n
}

// imbalanceLocked computes max/mean resident clients over active
// servers. Caller holds m.mu.
func (m *Manager) imbalanceLocked() float64 {
	active, total, maxC := 0, 0, 0
	for _, e := range m.servers {
		if e.draining {
			continue
		}
		active++
		total += len(e.clients)
		if len(e.clients) > maxC {
			maxC = len(e.clients)
		}
	}
	if active == 0 || total == 0 {
		return 0
	}
	mean := float64(total) / float64(active)
	return float64(maxC) / mean
}

// publishLocked refreshes the fleet gauges. Caller holds m.mu.
func (m *Manager) publishLocked() {
	m.mServers.Set(int64(m.activeLocked()))
	m.mImbalance.Set(int64(m.imbalanceLocked() * 1000))
}
