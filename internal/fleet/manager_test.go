package fleet

import (
	"strings"
	"testing"

	"menos/internal/obs"
)

func newTestManager(t *testing.T, placer Placer, servers int) *Manager {
	t.Helper()
	m := NewManager(placer)
	for i := 0; i < servers; i++ {
		if err := m.AddServer(i, 32*gib, []string{"m"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestManagerPlaceTracksAssignment(t *testing.T) {
	m := newTestManager(t, NewRoundRobin(), 2)
	ids := []string{"a", "b", "c"}
	for i, id := range ids {
		srv, err := m.Place(ClientInfo{ID: id, TransientPeakBytes: gib})
		if err != nil {
			t.Fatal(err)
		}
		if srv != i%2 {
			t.Fatalf("client %q on server %d, want %d", id, srv, i%2)
		}
		if got, ok := m.ServerOf(id); !ok || got != srv {
			t.Fatalf("ServerOf(%q) = %d,%v", id, got, ok)
		}
	}
	if n := m.ClientCount(0); n != 2 {
		t.Fatalf("server 0 hosts %d clients, want 2", n)
	}
	if _, err := m.Place(ClientInfo{ID: "a"}); err == nil {
		t.Fatal("double placement of one client must error")
	}
}

func TestManagerDrainExcludesFromPlacement(t *testing.T) {
	m := newTestManager(t, NewRoundRobin(), 2)
	if err := m.Drain(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		srv, err := m.Place(ClientInfo{ID: strings.Repeat("x", i+1)})
		if err != nil {
			t.Fatal(err)
		}
		if srv != 1 {
			t.Fatalf("placement landed on draining server %d", srv)
		}
	}
	if err := m.Drain(1); err == nil {
		t.Fatal("draining the last active server must error")
	}
}

func TestManagerRebalanceEvacuatesDrainingServer(t *testing.T) {
	m := newTestManager(t, NewLeastLoaded(), 2)
	c := ClientInfo{ID: "a", TransientPeakBytes: gib}
	if _, err := m.Place(c); err != nil {
		t.Fatal(err)
	}
	// Balanced fleet: no move.
	if _, moved, err := m.Rebalance(c, nil); err != nil || moved {
		t.Fatalf("unforced rebalance moved=%v err=%v, want no move", moved, err)
	}
	if err := m.Drain(0); err != nil {
		t.Fatal(err)
	}
	target, moved, err := m.Rebalance(c, nil)
	if err != nil || !moved || target != 1 {
		t.Fatalf("drain evacuation: target=%d moved=%v err=%v, want 1,true,nil", target, moved, err)
	}
	if n := m.ClientCount(0); n != 0 {
		t.Fatalf("drained server still hosts %d clients", n)
	}
	if err := m.Remove(0); err != nil {
		t.Fatal(err)
	}
	if m.ActiveServers() != 1 {
		t.Fatalf("ActiveServers = %d, want 1", m.ActiveServers())
	}
}

func TestManagerRebalanceRequiresStrictImprovement(t *testing.T) {
	m := newTestManager(t, NewLeastLoaded(), 2)
	a := ClientInfo{ID: "a"}
	b := ClientInfo{ID: "b"}
	if _, err := m.Place(a); err != nil { // server 0
		t.Fatal(err)
	}
	if _, err := m.Place(b); err != nil { // server 1
		t.Fatal(err)
	}
	// 1 vs 1: moving would just swap the imbalance; must hold.
	if _, moved, _ := m.Rebalance(a, nil); moved {
		t.Fatal("rebalance oscillated on a balanced fleet")
	}
}

func TestManagerRemoveRefusesOccupiedServer(t *testing.T) {
	m := newTestManager(t, NewRoundRobin(), 2)
	if _, err := m.Place(ClientInfo{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(0); err == nil {
		t.Fatal("removing an occupied server must error")
	}
}

func TestManagerMetricsAndImbalance(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewManager(NewRoundRobin())
	m.Instrument(reg)
	for i := 0; i < 2; i++ {
		if err := m.AddServer(i, 32*gib, []string{"m"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "b", "c"} {
		if _, err := m.Place(ClientInfo{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	m.RecordScaleEvent()
	if v := reg.Counter(obs.MetricFleetPlacements).Value(); v != 3 {
		t.Errorf("%s = %d, want 3", obs.MetricFleetPlacements, v)
	}
	if v := reg.Counter(obs.MetricFleetScaleEvents).Value(); v != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricFleetScaleEvents, v)
	}
	if v := reg.Gauge(obs.MetricFleetServers).Value(); v != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricFleetServers, v)
	}
	// 2 and 1 clients: max/mean = 2/1.5 = 1.333… → 1333 thousandths.
	if v := reg.Gauge(obs.MetricFleetImbalance).Value(); v != 1333 {
		t.Errorf("%s = %d, want 1333", obs.MetricFleetImbalance, v)
	}
	st := m.Stats()
	if st.Placements != 3 || st.ScaleEvents != 1 || st.Servers != 2 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestManagerDrainCandidatePicksEmptiest(t *testing.T) {
	m := newTestManager(t, NewRoundRobin(), 3)
	for _, id := range []string{"a", "b", "c", "d"} { // 2,1,1 via round-robin
		if _, err := m.Place(ClientInfo{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	id, ok := m.DrainCandidate()
	if !ok || id != 1 {
		t.Fatalf("DrainCandidate = %d,%v, want 1,true (fewest clients, lowest ID)", id, ok)
	}
	m.Depart("a")
	m.Depart("d")
	id, ok = m.DrainCandidate()
	if !ok || id != 0 {
		t.Fatalf("DrainCandidate after departures = %d,%v, want 0,true", id, ok)
	}
}
