// Pluggable placement policy: the predicate/priority split used by
// cluster schedulers (filter the infeasible, score the feasible,
// highest weighted total wins), specialized to Menos' load surface.
// Hard constraints — memory fit, admission state — are Predicates;
// soft preferences — balance, model residency — are weighted
// Priorities; an Extender lets logic outside this process (a policy
// sidecar, an experiment harness) veto and re-score candidates
// without recompiling the fleet.
package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// MaxPriorityScore is the top of a Priority's score range. Scores are
// normalized into [0, MaxPriorityScore] so weights — not score
// magnitudes — decide how priorities trade off against each other.
const MaxPriorityScore = 10

// Predicate is a hard placement constraint: a server that fails it is
// not a candidate, regardless of score.
type Predicate struct {
	Name string
	// Fits reports whether server s can host client c at all.
	Fits func(c ClientInfo, s ServerLoad) bool
}

// Priority is a soft preference: Score rates one feasible server in
// [0, MaxPriorityScore] (higher is better). all is the full feasible
// set, for normalization. Weight scales the score into the total.
type Priority struct {
	Name   string
	Weight int
	Score  func(c ClientInfo, s ServerLoad, all []ServerLoad) int64
}

// Extender participates in placement from outside the policy's
// compiled-in rules: Filter may remove candidates, Prioritize adds
// weighted score (by server ID). Either may be a no-op. An error
// fails the placement — an extender is a hard dependency once
// configured, because silently ignoring it would admit placements
// the operator's policy forbids.
type Extender interface {
	Name() string
	Filter(c ClientInfo, feasible []ServerLoad) ([]ServerLoad, error)
	Prioritize(c ClientInfo, feasible []ServerLoad) (map[int]int64, error)
}

// PolicyPlacer is a Placer assembled from predicates, priorities and
// extenders. Placement is two-phase: filter all non-draining servers
// through every predicate and extender filter, then score the
// survivors with every priority and extender prioritizer; the highest
// weighted total wins, ties to the lowest server ID. When the filter
// phase removes every server, the policy relaxes: it scores the full
// candidate set instead of failing, mirroring MemoryBestFit's
// overcommit fallback (clients then queue on the scheduler, which is
// the scheduler's job to absorb). Extender errors are never relaxed.
type PolicyPlacer struct {
	name       string
	predicates []Predicate
	priorities []Priority
	extenders  []Extender
}

// NewPolicyPlacer builds a PolicyPlacer. name is what Name() reports
// (and what PlacerByName would need to reconstruct it, so custom
// policies should pick something not already registered).
func NewPolicyPlacer(name string, preds []Predicate, prios []Priority, exts ...Extender) *PolicyPlacer {
	return &PolicyPlacer{name: name, predicates: preds, priorities: prios, extenders: exts}
}

// DefaultPolicy is the policy PlacerByName("policy") returns: fit and
// admission predicates, balance-weighted priorities with model
// residency as a strong preference.
func DefaultPolicy() *PolicyPlacer {
	return NewPolicyPlacer("policy",
		[]Predicate{PredicateFitsMemory(), PredicateNotShedding()},
		[]Priority{
			{Name: "balanced-headcount", Weight: 2, Score: ScoreBalancedHeadcount},
			{Name: "memory-headroom", Weight: 1, Score: ScoreMemoryHeadroom},
			{Name: "model-affinity", Weight: 3, Score: ScoreModelAffinity},
		},
	)
}

// Name implements Placer.
func (p *PolicyPlacer) Name() string { return p.name }

// Describe renders the policy's shape for logs and /fleetz.
func (p *PolicyPlacer) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: predicates[", p.name)
	for i, pr := range p.predicates {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(pr.Name)
	}
	b.WriteString("] priorities[")
	for i, pr := range p.priorities {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s*%d", pr.Name, pr.Weight)
	}
	b.WriteString("]")
	for _, e := range p.extenders {
		fmt.Fprintf(&b, " extender[%s]", e.Name())
	}
	return b.String()
}

// Place implements Placer.
func (p *PolicyPlacer) Place(c ClientInfo, servers []ServerLoad) (int, error) {
	candidates := make([]ServerLoad, 0, len(servers))
	for _, s := range servers {
		if !s.Draining {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return 0, ErrNoServers
	}

	feasible := candidates
	for _, pred := range p.predicates {
		kept := feasible[:0:0]
		for _, s := range feasible {
			if pred.Fits(c, s) {
				kept = append(kept, s)
			}
		}
		feasible = kept
	}
	for _, ext := range p.extenders {
		var err error
		feasible, err = ext.Filter(c, feasible)
		if err != nil {
			return 0, fmt.Errorf("fleet: extender %s filter: %w", ext.Name(), err)
		}
	}
	if len(feasible) == 0 {
		// Relaxation pass: nothing satisfies the hard constraints, so
		// overcommit the least-bad server rather than refuse. Extender
		// filters are re-consulted — their vetoes stay hard.
		feasible = candidates
		for _, ext := range p.extenders {
			var err error
			feasible, err = ext.Filter(c, feasible)
			if err != nil {
				return 0, fmt.Errorf("fleet: extender %s filter: %w", ext.Name(), err)
			}
		}
		if len(feasible) == 0 {
			return 0, ErrNoServers
		}
	}

	totals := make(map[int]int64, len(feasible))
	for _, s := range feasible {
		totals[s.ID] = 0
	}
	for _, prio := range p.priorities {
		for _, s := range feasible {
			totals[s.ID] += int64(prio.Weight) * prio.Score(c, s, feasible)
		}
	}
	for _, ext := range p.extenders {
		scores, err := ext.Prioritize(c, feasible)
		if err != nil {
			return 0, fmt.Errorf("fleet: extender %s prioritize: %w", ext.Name(), err)
		}
		for id, sc := range scores {
			if _, ok := totals[id]; ok {
				totals[id] += sc
			}
		}
	}

	sort.Slice(feasible, func(i, j int) bool { return feasible[i].ID < feasible[j].ID })
	best, bestScore := -1, int64(0)
	for _, s := range feasible {
		if sc := totals[s.ID]; best < 0 || sc > bestScore {
			best, bestScore = s.ID, sc
		}
	}
	return best, nil
}

// PredicateFitsMemory requires the client's predicted footprint
// (persistent + transient peak) to fit the server's free memory.
func PredicateFitsMemory() Predicate {
	return Predicate{
		Name: "fits-memory",
		Fits: func(c ClientInfo, s ServerLoad) bool {
			return s.FreeBytes() >= c.demandBytes()
		},
	}
}

// PredicateNotShedding excludes servers whose admission ladder has
// reached shedding — they are rejecting work; placing onto them only
// manufactures retries.
func PredicateNotShedding() Predicate {
	return Predicate{
		Name: "not-shedding",
		Fits: func(_ ClientInfo, s ServerLoad) bool {
			return s.Admission < AdmissionShedding
		},
	}
}

// ScoreBalancedHeadcount favors servers with fewer waiting-plus-
// resident clients, normalized against the busiest candidate (the
// emptiest scores MaxPriorityScore, the busiest 0).
func ScoreBalancedHeadcount(_ ClientInfo, s ServerLoad, all []ServerLoad) int64 {
	maxLoad := 0
	for _, o := range all {
		if l := o.QueueDepth + o.Clients; l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad == 0 {
		return MaxPriorityScore
	}
	load := s.QueueDepth + s.Clients
	return int64(MaxPriorityScore * (maxLoad - load) / maxLoad)
}

// ScoreMemoryHeadroom favors servers with more free memory, as a
// fraction of capacity (spreading, the least-requested heuristic).
// Overcommitted servers score 0.
func ScoreMemoryHeadroom(_ ClientInfo, s ServerLoad, _ []ServerLoad) int64 {
	if s.CapacityBytes <= 0 {
		return 0
	}
	free := s.FreeBytes()
	if free < 0 {
		return 0
	}
	return MaxPriorityScore * free / s.CapacityBytes
}

// ScoreModelAffinity scores MaxPriorityScore when the server already
// hosts the client's base model (co-placed clients share one resident
// copy — the paper's memory-sharing win), 0 otherwise.
func ScoreModelAffinity(c ClientInfo, s ServerLoad, _ []ServerLoad) int64 {
	if c.BaseModel != "" && s.HasModel(c.BaseModel) {
		return MaxPriorityScore
	}
	return 0
}
