package fleet

import (
	"errors"
	"strings"
	"testing"
)

// load builds a ServerLoad row for policy tests.
func load(id int, clients int, used, capacity int64, models ...string) ServerLoad {
	return ServerLoad{
		ID: id, Clients: clients, UsedBytes: used,
		CapacityBytes: capacity, Models: models,
	}
}

func TestPolicyPredicateFiltersInfeasible(t *testing.T) {
	p := DefaultPolicy()
	servers := []ServerLoad{
		load(0, 0, 31*gib, 32*gib, "m"), // 1 GiB free: too tight
		load(1, 3, 8*gib, 32*gib, "m"),  // busier but fits
	}
	id, err := p.Place(ClientInfo{ID: "c", BaseModel: "m", TransientPeakBytes: 2 * gib}, servers)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("placed on %d, want 1 (server 0 cannot fit the demand)", id)
	}
}

func TestPolicyPrefersModelResidency(t *testing.T) {
	p := DefaultPolicy()
	servers := []ServerLoad{
		load(0, 1, 8*gib, 32*gib, "other"),
		load(1, 1, 8*gib, 32*gib, "m"),
	}
	id, err := p.Place(ClientInfo{ID: "c", BaseModel: "m", TransientPeakBytes: gib}, servers)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("placed on %d, want 1 (base model already resident)", id)
	}
}

func TestPolicyTieBreaksLowestID(t *testing.T) {
	p := DefaultPolicy()
	servers := []ServerLoad{
		load(2, 1, 8*gib, 32*gib, "m"),
		load(7, 1, 8*gib, 32*gib, "m"),
	}
	id, err := p.Place(ClientInfo{ID: "c", BaseModel: "m", TransientPeakBytes: gib}, servers)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("placed on %d, want lowest ID 2 on a tie", id)
	}
}

func TestPolicyRelaxesWhenNothingFits(t *testing.T) {
	p := DefaultPolicy()
	// Both servers are full; the policy must overcommit, not refuse.
	servers := []ServerLoad{
		load(0, 4, 32*gib, 32*gib, "m"),
		load(1, 1, 32*gib, 32*gib, "m"),
	}
	id, err := p.Place(ClientInfo{ID: "c", BaseModel: "m", TransientPeakBytes: gib}, servers)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("relaxed placement on %d, want the less crowded 1", id)
	}
}

func TestPolicySkipsDrainingAndShedding(t *testing.T) {
	p := DefaultPolicy()
	servers := []ServerLoad{
		{ID: 0, CapacityBytes: 32 * gib, Draining: true},
		{ID: 1, CapacityBytes: 32 * gib, Admission: AdmissionShedding},
		{ID: 2, CapacityBytes: 32 * gib, Clients: 5},
	}
	id, err := p.Place(ClientInfo{ID: "c", TransientPeakBytes: gib}, servers)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("placed on %d, want 2 (0 draining, 1 shedding)", id)
	}
}

func TestPolicyAllDrainingErrors(t *testing.T) {
	p := DefaultPolicy()
	servers := []ServerLoad{{ID: 0, Draining: true}}
	if _, err := p.Place(ClientInfo{ID: "c"}, servers); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v, want ErrNoServers", err)
	}
}

// testExtender vetoes a server ID and boosts another.
type testExtender struct {
	veto    int
	boost   int
	failing bool
}

func (e *testExtender) Name() string { return "test" }

func (e *testExtender) Filter(_ ClientInfo, feasible []ServerLoad) ([]ServerLoad, error) {
	if e.failing {
		return nil, errors.New("extender down")
	}
	kept := feasible[:0:0]
	for _, s := range feasible {
		if s.ID != e.veto {
			kept = append(kept, s)
		}
	}
	return kept, nil
}

func (e *testExtender) Prioritize(_ ClientInfo, feasible []ServerLoad) (map[int]int64, error) {
	return map[int]int64{e.boost: 1000}, nil
}

func TestPolicyExtenderVetoAndBoost(t *testing.T) {
	servers := []ServerLoad{
		load(0, 0, 0, 32*gib, "m"),
		load(1, 2, 8*gib, 32*gib, "m"),
		load(2, 2, 8*gib, 32*gib, "m"),
	}
	// Without the extender, 0 (empty) wins. The extender vetoes 0 and
	// boosts 2 past 1.
	p := NewPolicyPlacer("ext", []Predicate{PredicateFitsMemory()},
		[]Priority{{Name: "balance", Weight: 1, Score: ScoreBalancedHeadcount}},
		&testExtender{veto: 0, boost: 2})
	id, err := p.Place(ClientInfo{ID: "c", TransientPeakBytes: gib}, servers)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("placed on %d, want extender-boosted 2", id)
	}
}

func TestPolicyExtenderErrorIsHard(t *testing.T) {
	p := NewPolicyPlacer("ext", nil, nil, &testExtender{failing: true})
	_, err := p.Place(ClientInfo{ID: "c"}, []ServerLoad{load(0, 0, 0, gib)})
	if err == nil || !strings.Contains(err.Error(), "extender") {
		t.Fatalf("err = %v, want extender failure", err)
	}
}

func TestPolicyByName(t *testing.T) {
	p, err := PlacerByName("policy")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "policy" {
		t.Fatalf("name = %q", p.Name())
	}
	if !strings.Contains(p.(*PolicyPlacer).Describe(), "fits-memory") {
		t.Fatalf("describe = %q, want predicate list", p.(*PolicyPlacer).Describe())
	}
}

func TestPolicyWorksUnderManager(t *testing.T) {
	m := newTestManager(t, DefaultPolicy(), 3)
	seen := map[int]int{}
	for _, id := range []string{"a", "b", "c"} {
		srv, err := m.Place(ClientInfo{ID: id, BaseModel: "m", TransientPeakBytes: gib})
		if err != nil {
			t.Fatal(err)
		}
		seen[srv]++
	}
	if len(seen) != 3 {
		t.Fatalf("placements %v, want one client per server", seen)
	}
}
