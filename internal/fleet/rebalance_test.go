package fleet

import (
	"fmt"
	"sync"
	"testing"
)

// TestManagerRebalanceFitVeto: the placer wants to move the client,
// but the fit callback (physical admission at the target) says no —
// the assignment must not change and nothing may leak in the
// committed-bytes ledger.
func TestManagerRebalanceFitVeto(t *testing.T) {
	m := newTestManager(t, NewLeastLoaded(), 1)
	// Crowd server 0 before server 1 exists, so moving one client is a
	// strict improvement the placer will propose.
	for i := 0; i < 3; i++ {
		if _, err := m.Place(ClientInfo{ID: fmt.Sprintf("c%d", i), TransientPeakBytes: gib}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddServer(1, 32*gib, []string{"m"}, nil); err != nil {
		t.Fatal(err)
	}
	victim := ClientInfo{ID: "c0", TransientPeakBytes: gib}
	before0, before1 := m.ClientCount(0), m.ClientCount(1)

	vetoed := 0
	target, moved, err := m.Rebalance(victim, func(serverID int) bool {
		vetoed++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if moved {
		t.Fatalf("moved to %d despite fit veto", target)
	}
	if target != 0 {
		t.Fatalf("vetoed rebalance reported target %d, want current server 0", target)
	}
	if vetoed == 0 {
		t.Fatal("fit callback was never consulted")
	}
	if got, _ := m.ServerOf(victim.ID); got != 0 {
		t.Fatalf("client moved to %d after veto", got)
	}
	if m.ClientCount(0) != before0 || m.ClientCount(1) != before1 {
		t.Fatalf("counts changed under a vetoed move: %d/%d -> %d/%d",
			before0, before1, m.ClientCount(0), m.ClientCount(1))
	}
	if st := m.Stats(); st.Migrations != 0 {
		t.Fatalf("migrations = %d after veto, want 0", st.Migrations)
	}
}

// TestManagerRebalanceTieIsNotImprovement: a move that would leave
// the target with as many clients as the source has now (a tie, or a
// pure swap) must be refused — this is the oscillation damper.
func TestManagerRebalanceTieIsNotImprovement(t *testing.T) {
	m := newTestManager(t, NewLeastLoaded(), 1)
	// 2 vs 1: moving a client from 0 would produce 1 vs 2 — no better.
	for i := 0; i < 2; i++ {
		if _, err := m.Place(ClientInfo{ID: fmt.Sprintf("c%d", i), TransientPeakBytes: gib}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddServer(1, 32*gib, []string{"m"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Place(ClientInfo{ID: "c2", TransientPeakBytes: gib}); err != nil {
		t.Fatal(err)
	}
	fitCalled := false
	_, moved, err := m.Rebalance(ClientInfo{ID: "c0", TransientPeakBytes: gib},
		func(int) bool { fitCalled = true; return true })
	if err != nil {
		t.Fatal(err)
	}
	if moved {
		t.Fatal("2-vs-1 fleet rebalanced: tie move must be refused")
	}
	if fitCalled {
		t.Fatal("fit callback consulted for a move already refused by the improvement rule")
	}
}

// TestManagerRebalanceUnknownClient: rebalancing a client that was
// never placed is an error, not a silent placement.
func TestManagerRebalanceUnknownClient(t *testing.T) {
	m := newTestManager(t, NewLeastLoaded(), 2)
	if _, _, err := m.Rebalance(ClientInfo{ID: "ghost"}, nil); err == nil {
		t.Fatal("rebalance of an unplaced client must error")
	}
}

// TestManagerDrainRacesPlace: Drain concurrent with a stream of Place
// and Rebalance calls must stay internally consistent (run under
// -race): every placement lands somewhere, no client is lost, and
// once Drain returns, later placements avoid the drained server.
func TestManagerDrainRacesPlace(t *testing.T) {
	m := newTestManager(t, NewLeastLoaded(), 3)
	const clients = 60
	var wg sync.WaitGroup
	drained := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Drain(0); err != nil {
			t.Errorf("drain: %v", err)
		}
		close(drained)
	}()
	placed := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := ClientInfo{ID: fmt.Sprintf("c%d", i), TransientPeakBytes: gib}
			srv, err := m.Place(c)
			if err != nil {
				t.Errorf("place %d: %v", i, err)
				return
			}
			placed[i] = srv
			// Churn the other paths the drain races against.
			if i%3 == 0 {
				_, _, _ = m.Rebalance(c, func(int) bool { return true })
			}
			if i%7 == 0 {
				_ = m.Loads()
			}
		}(i)
	}
	wg.Wait()

	total := 0
	for id := 0; id < 3; id++ {
		total += m.ClientCount(id)
	}
	if total != clients {
		t.Fatalf("resident clients = %d, want %d (placements lost in the race)", total, clients)
	}
	for i := 0; i < clients; i++ {
		if _, ok := m.ServerOf(fmt.Sprintf("c%d", i)); !ok {
			t.Fatalf("client c%d has no assignment", i)
		}
	}

	// After the drain settled, new placements must avoid server 0.
	<-drained
	for i := 0; i < 6; i++ {
		srv, err := m.Place(ClientInfo{ID: fmt.Sprintf("late%d", i), TransientPeakBytes: gib})
		if err != nil {
			t.Fatal(err)
		}
		if srv == 0 {
			t.Fatal("placement landed on the drained server")
		}
	}
}
