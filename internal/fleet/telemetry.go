package fleet

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"menos/internal/obs"
	"menos/internal/tsdb"
)

// Series-name suffixes the scrape flattens histogram families under:
// one store series per quantile plus the count and sum, so rules like
// the SLO burn rate read "menos_server_sched_wait_seconds_p99" without
// bucket math at evaluation time.
const (
	suffixP50   = "_p50"
	suffixP90   = "_p90"
	suffixP99   = "_p99"
	suffixCount = "_count"
	suffixSum   = "_sum"
)

// scrapedMetrics mirrors the obs.Registry WriteJSON shape — the
// /metrics.json document this controller's scrape decodes. Histogram
// vec families are deliberately NOT ingested: per-client quantile
// series would multiply store cardinality per tenant per server, and
// no built-in rule reads them (the per-client counters from
// counter_vecs/gauge_vecs cover tenant attribution).
type scrapedMetrics struct {
	Counters   map[string]int64 `json:"counters"`
	Gauges     map[string]int64 `json:"gauges"`
	Histograms map[string]struct {
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
		P50   float64 `json:"p50"`
		P90   float64 `json:"p90"`
		P99   float64 `json:"p99"`
	} `json:"histograms"`
	CounterVecs map[string]scrapedVec `json:"counter_vecs"`
	GaugeVecs   map[string]scrapedVec `json:"gauge_vecs"`
}

type scrapedVec struct {
	Series map[string]int64 `json:"series"`
}

// ingestPoll appends one poll tick's samples for one endpoint into the
// store: the synthetic liveness pair for every endpoint, plus the full
// flattened /metrics.json for healthy ones. Runs without c.mu (all
// store methods are internally locked).
func (c *Controller) ingestPoll(ep Endpoint, ok, mismatch bool, now time.Duration) {
	up := 0.0
	if ok {
		up = 1
	}
	mm := 0.0
	if mismatch {
		mm = 1
	}
	c.store.Append(tsdb.SeriesID{Name: obs.MetricFleetdUp, Server: ep.ID}, now, up)
	c.store.Append(tsdb.SeriesID{Name: obs.MetricFleetdIdentityGauge, Server: ep.ID}, now, mm)
	if !ok {
		return
	}
	var doc scrapedMetrics
	if err := c.getJSON(ep.MetricsURL+"/metrics.json", &doc); err != nil {
		c.mScrapeErrors.Inc() // nil-safe
		c.logf("scrape server %d metrics: %v", ep.ID, err)
		return
	}
	c.mScrapes.Inc()
	app := func(name string, v float64) {
		c.store.Append(tsdb.SeriesID{Name: name, Server: ep.ID}, now, v)
	}
	for name, v := range doc.Counters {
		app(name, float64(v))
	}
	for name, v := range doc.Gauges {
		app(name, float64(v))
	}
	for name, h := range doc.Histograms {
		app(name+suffixCount, float64(h.Count))
		app(name+suffixSum, h.Sum)
		app(name+suffixP50, h.P50)
		app(name+suffixP90, h.P90)
		app(name+suffixP99, h.P99)
	}
	for name, vec := range doc.CounterVecs {
		for label, v := range vec.Series {
			c.store.Append(tsdb.SeriesID{Name: name, Server: ep.ID, Client: label}, now, float64(v))
		}
	}
	for name, vec := range doc.GaugeVecs {
		for label, v := range vec.Series {
			c.store.Append(tsdb.SeriesID{Name: name, Server: ep.ID, Client: label}, now, float64(v))
		}
	}
}

// scrapeTrace pages one healthy endpoint's span ring from the resume
// cursor and re-records the new spans into the server's fleetd-side
// mirror tracer. RecordT assigns mirror-local sequence numbers but
// keeps the original start/duration/trace ID, so spans from different
// servers still correlate by IterTraceID in the merged trace.
//
// Timestamps stay in each server's own clock epoch (process start);
// the merged trace is for following one trace ID across processes, not
// for cross-server wall-clock alignment.
func (c *Controller) scrapeTrace(st *endpointState, ep Endpoint) {
	c.mu.Lock()
	cursor := st.traceCursor
	c.mu.Unlock()

	url := fmt.Sprintf("%s/trace?since=%d", ep.MetricsURL, cursor)
	resp, err := c.http.Get(url)
	if err != nil {
		c.mScrapeErrors.Inc()
		c.logf("scrape server %d trace: %v", ep.ID, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.mScrapeErrors.Inc()
		c.logf("scrape server %d trace: %s", ep.ID, resp.Status)
		return
	}
	parsed, err := obs.ParseChromeTrace(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		c.mScrapeErrors.Inc()
		c.logf("scrape server %d trace: %v", ep.ID, err)
		return
	}

	c.mu.Lock()
	if st.mirror == nil {
		st.mirror = obs.NewTracer(c.clock)
		st.mirror.EnableRing(c.traceBudget)
		name := parsed.ProcessName
		if name == "" {
			name = "server-" + strconv.Itoa(ep.ID)
		}
		st.mirror.SetProcess(ep.ID, name)
	}
	mirror := st.mirror
	// Never regress the cursor: an empty page still reports the ring's
	// LastSeq, and a server restart (seq reset) re-registers below it —
	// the identity check marks that server unhealthy first.
	if parsed.LastSeq > st.traceCursor {
		st.traceCursor = parsed.LastSeq
	}
	c.mu.Unlock()

	for _, s := range parsed.Spans {
		mirror.RecordT(s.Track, s.Name, s.Cat, s.TraceID, s.Start, s.Dur)
	}
	c.mFedSpans.Add(int64(len(parsed.Spans))) // nil-safe
}

// WriteMergedTrace renders the federated fleet trace: every server's
// mirror as one process in a single Chrome trace document, stitched by
// trace ID. Servers whose traces have not been scraped yet (or with
// federation off) are simply absent.
func (c *Controller) WriteMergedTrace(w io.Writer) error {
	c.mu.Lock()
	tracers := make([]*obs.Tracer, 0, len(c.order))
	for _, id := range c.order {
		if m := c.eps[id].mirror; m != nil {
			tracers = append(tracers, m)
		}
	}
	c.mu.Unlock()
	return obs.WriteMergedChromeTrace(w, tracers...)
}

// FederatedSpans reports how many spans each server's mirror currently
// holds, keyed by server ID — a test and debugging hook.
func (c *Controller) FederatedSpans() map[int]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int)
	for id, st := range c.eps {
		if st.mirror != nil {
			out[id] = st.mirror.Len()
		}
	}
	return out
}
