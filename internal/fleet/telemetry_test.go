package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"menos/internal/obs"
	"menos/internal/tsdb"
)

// telemetryServer is a fake menos-server built from the real obs
// stack, so the controller scrapes the exact /metrics.json and /trace
// documents a live server emits.
type telemetryServer struct {
	id     int
	reg    *obs.Registry
	tracer *obs.Tracer
	srv    *httptest.Server
}

func newTelemetryServer(t *testing.T, id int, clock obs.Clock) *telemetryServer {
	t.Helper()
	ts := &telemetryServer{id: id, reg: obs.NewRegistry()}
	ts.tracer = obs.NewTracer(clock)
	ts.tracer.EnableRing(0)
	ts.tracer.SetProcess(id, "menos-server-"+string(rune('0'+id)))
	ts.srv = httptest.NewServer(obs.Handler(ts.reg, ts.tracer,
		obs.WithIdentity(func() (int, string) { return ts.id, "127.0.0.1:0" }),
		obs.WithLoadz(func() any { return LoadSnapshot{AtSeconds: 1, Server: ServerLoad{ID: ts.id}} }),
	))
	t.Cleanup(ts.srv.Close)
	return ts
}

func (ts *telemetryServer) endpoint() Endpoint {
	return Endpoint{ID: ts.id, Addr: "127.0.0.1:0", MetricsURL: ts.srv.URL, AdminURL: ts.srv.URL}
}

// TestControllerFederatesMetrics pins the scrape→store pipeline:
// counters, gauges, histogram quantiles and per-client vec series all
// land labeled by server, plus the synthetic up series.
func TestControllerFederatesMetrics(t *testing.T) {
	var now time.Duration
	clock := obs.ClockFunc(func() time.Duration { return now })
	ts := newTelemetryServer(t, 1, clock)
	ts.reg.Counter(obs.MetricGPUOOM).Add(3)
	ts.reg.Gauge(obs.MetricServerActiveClients).Set(2)
	h := ts.reg.Histogram(obs.MetricServerWaitSeconds, obs.DurationBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(0.01)
	}
	ts.reg.CounterVec(obs.MetricServerShedsTotal, "client").With("c1").Add(5)

	store := tsdb.New(tsdb.Config{})
	reg := obs.NewRegistry()
	c, err := NewController(ControllerConfig{
		Endpoints: []Endpoint{ts.endpoint()},
		Metrics:   reg,
		Store:     store,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	now = 10 * time.Second
	if n := c.PollOnce(); n != 1 {
		t.Fatalf("healthy = %d", n)
	}

	wantLast := func(id tsdb.SeriesID, want float64) {
		t.Helper()
		p, ok := store.Last(id)
		if !ok || p.Value != want {
			t.Fatalf("%s last = %+v (ok=%v), want %g", id, p, ok, want)
		}
		if p.At != 10*time.Second {
			t.Fatalf("%s stamped %v, want 10s", id, p.At)
		}
	}
	wantLast(tsdb.SeriesID{Name: obs.MetricFleetdUp, Server: 1}, 1)
	wantLast(tsdb.SeriesID{Name: obs.MetricFleetdIdentityGauge, Server: 1}, 0)
	wantLast(tsdb.SeriesID{Name: obs.MetricGPUOOM, Server: 1}, 3)
	wantLast(tsdb.SeriesID{Name: obs.MetricServerActiveClients, Server: 1}, 2)
	wantLast(tsdb.SeriesID{Name: obs.MetricServerWaitSeconds + "_count", Server: 1}, 100)
	wantLast(tsdb.SeriesID{Name: obs.MetricServerShedsTotal, Server: 1, Client: "c1"}, 5)
	if p, ok := store.Last(tsdb.SeriesID{Name: obs.MetricServerWaitSeconds + "_p99", Server: 1}); !ok || p.Value <= 0 {
		t.Fatalf("p99 series = %+v (ok=%v), want > 0", p, ok)
	}
	if got := reg.Counter(obs.MetricFleetdScrapes).Value(); got != 1 {
		t.Fatalf("scrapes counter = %d, want 1", got)
	}
	if got := reg.Gauge(obs.MetricFleetdTSDBSeries).Value(); got <= 0 {
		t.Fatalf("tsdb series gauge = %d, want > 0", got)
	}
}

// TestControllerDownServerTelemetry pins the synthetic up=0 series and
// the /fleetz DownForSeconds accounting for an unreachable server.
func TestControllerDownServerTelemetry(t *testing.T) {
	var now time.Duration
	clock := obs.ClockFunc(func() time.Duration { return now })
	ts := newTelemetryServer(t, 1, clock)
	store := tsdb.New(tsdb.Config{})
	c, err := NewController(ControllerConfig{
		Endpoints: []Endpoint{ts.endpoint()},
		Metrics:   obs.NewRegistry(),
		Store:     store,
		Clock:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	now = time.Second
	if n := c.PollOnce(); n != 1 {
		t.Fatalf("healthy = %d", n)
	}
	ts.srv.Close() // server dies
	now = 11 * time.Second
	if n := c.PollOnce(); n != 0 {
		t.Fatalf("healthy after close = %d", n)
	}
	if p, ok := store.Last(tsdb.SeriesID{Name: obs.MetricFleetdUp, Server: 1}); !ok || p.Value != 0 {
		t.Fatalf("up series = %+v, want 0", p)
	}
	now = 21 * time.Second
	snap := c.Snapshot()
	row := snap.Servers[0]
	if row.Healthy || row.Error == "" {
		t.Fatalf("row = %+v, want unhealthy with error", row)
	}
	// Last OK poll at t=1s, snapshot at t=21s.
	if row.DownForSeconds != 20 {
		t.Fatalf("DownForSeconds = %v, want 20", row.DownForSeconds)
	}
}

// TestControllerTraceFederation pins the /trace?since= cursor loop and
// the merged fleet trace: two servers recording spans under one
// IterTraceID yield a single Chrome trace with both pids carrying that
// trace ID, and re-polling never duplicates spans.
func TestControllerTraceFederation(t *testing.T) {
	var now time.Duration
	clock := obs.ClockFunc(func() time.Duration { return now })
	src := newTelemetryServer(t, 1, clock)
	dst := newTelemetryServer(t, 2, clock)
	iterID := obs.IterTraceID("mig-client", 7)
	src.tracer.RecordT("mig-client", "forward", "compute", iterID, 0, time.Millisecond)
	src.tracer.RecordT("mig-client", "migrate:out", "migrate", iterID, time.Millisecond, time.Millisecond)

	store := tsdb.New(tsdb.Config{})
	reg := obs.NewRegistry()
	c, err := NewController(ControllerConfig{
		Endpoints:      []Endpoint{src.endpoint(), dst.endpoint()},
		Metrics:        reg,
		Store:          store,
		Clock:          clock,
		FederateTraces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.PollOnce()
	// The migrated client's iteration replays on the destination under
	// the SAME trace ID; only these new spans should federate next.
	dst.tracer.RecordT("mig-client", "forward", "compute", iterID, 5*time.Millisecond, time.Millisecond)
	c.PollOnce()
	c.PollOnce() // idempotent: cursor prevents re-ingesting anything

	fed := c.FederatedSpans()
	if fed[1] != 2 || fed[2] != 1 {
		t.Fatalf("federated spans = %v, want map[1:2 2:1]", fed)
	}
	if got := reg.Counter(obs.MetricFleetdTraceSpansFederated).Value(); got != 3 {
		t.Fatalf("federated counter = %d, want 3", got)
	}

	var buf bytes.Buffer
	if err := c.WriteMergedTrace(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Spans) != 3 {
		t.Fatalf("merged trace has %d spans, want 3", len(parsed.Spans))
	}
	// Both processes appear, stitched by the iteration trace ID: decode
	// the raw document to check per-pid attribution.
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if id, _ := ev.Args["trace_id"].(string); id != "" {
			pids[ev.PID] = true
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("trace_id-bearing pids = %v, want both 1 and 2", pids)
	}
}

// TestControllerScrapeErrorDoesNotUnhealth pins that a failing
// /metrics.json scrape (here: a server whose handler serves health and
// loadz but 404s metrics.json) leaves health intact and counts a
// scrape error.
func TestControllerScrapeErrorDoesNotUnhealth(t *testing.T) {
	id := 1
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "server_id": &id, "addr": "x"})
	})
	mux.HandleFunc("/loadz", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(LoadSnapshot{Server: ServerLoad{ID: 1}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	reg := obs.NewRegistry()
	c, err := NewController(ControllerConfig{
		Endpoints: []Endpoint{{ID: 1, Addr: "x", MetricsURL: srv.URL, AdminURL: srv.URL}},
		Metrics:   reg,
		Store:     tsdb.New(tsdb.Config{}),
		Clock:     obs.ClockFunc(func() time.Duration { return 0 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.PollOnce(); n != 1 {
		t.Fatalf("healthy = %d, want 1 despite scrape failure", n)
	}
	if got := reg.Counter(obs.MetricFleetdScrapeErrors).Value(); got != 1 {
		t.Fatalf("scrape errors = %d, want 1", got)
	}
}
