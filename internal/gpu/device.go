// Package gpu simulates GPU device memory for the performance plane:
// capacity-checked allocation, per-owner accounting, peak tracking, and
// multi-GPU device sets. It deliberately models only what Menos'
// scheduler observes and reacts to — bytes, owners, OOM — not kernels.
package gpu

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"menos/internal/obs"
)

// ErrOOM is returned when an allocation does not fit.
var ErrOOM = errors.New("gpu: out of memory")

// ErrBadFree is returned when freeing an unknown allocation.
var ErrBadFree = errors.New("gpu: unknown allocation")

// Spec describes a GPU model.
type Spec struct {
	Name        string
	MemoryBytes int64
}

// Hardware presets used in the paper's evaluation.
func V100() Spec     { return Spec{Name: "V100", MemoryBytes: 32 << 30} }
func A100() Spec     { return Spec{Name: "A100", MemoryBytes: 40 << 30} }
func RTXA4500() Spec { return Spec{Name: "RTX A4500", MemoryBytes: 20 << 30} }

// AllocID identifies one live allocation.
type AllocID uint64

type allocation struct {
	owner string
	bytes int64
}

// devMetrics are a device's telemetry handles. The zero value (all
// nil) is valid and free: obs handles are nil-receiver safe. Devices
// instrumented against the same registry share handles, so a
// DeviceSet's members aggregate naturally.
type devMetrics struct {
	allocBytes *obs.Counter
	freeBytes  *obs.Counter
	allocOps   *obs.Counter
	freeOps    *obs.Counter
	oom        *obs.Counter
	used       *obs.Gauge
	peak       *obs.Gauge
	// ownerBytes attributes residency per allocation owner tag
	// ("persist:<client>", "base-model", ...), the device-plane half of
	// the per-tenant accounting story.
	ownerBytes *obs.GaugeVec
}

// Device is one simulated GPU.
type Device struct {
	spec Spec

	mu     sync.Mutex
	used   int64
	peak   int64
	next   AllocID
	allocs map[AllocID]allocation

	allocOps int64
	freeOps  int64

	m devMetrics
}

// NewDevice creates a device with the given spec.
func NewDevice(spec Spec) *Device {
	return &Device{
		spec:   spec,
		allocs: make(map[AllocID]allocation),
	}
}

// Instrument wires the device's counters and watermarks to a
// telemetry registry. Call it before the device is shared between
// goroutines. Devices instrumented with the same registry share the
// metric handles, so used/peak gauges report the aggregate across all
// of them (the paper's "GPU memory is an abstraction of all available
// GPUs").
func (d *Device) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.m = devMetrics{
		allocBytes: reg.Counter(obs.MetricGPUAllocBytes, "bytes allocated on the device plane"),
		freeBytes:  reg.Counter(obs.MetricGPUFreeBytes, "bytes released on the device plane"),
		allocOps:   reg.Counter(obs.MetricGPUAllocOps, "allocation operations"),
		freeOps:    reg.Counter(obs.MetricGPUFreeOps, "free operations"),
		oom:        reg.Counter(obs.MetricGPUOOM, "allocations refused for lack of memory"),
		used:       reg.Gauge(obs.MetricGPUUsedBytes, "bytes currently allocated"),
		peak:       reg.Gauge(obs.MetricGPUPeakBytes, "high-water mark of allocated bytes"),
		ownerBytes: reg.GaugeVec(obs.MetricGPUOwnerBytes, "owner", "bytes currently allocated per owner tag"),
	}
	d.mu.Lock()
	d.m.used.Add(d.used)
	d.m.peak.SetMax(d.m.used.Value())
	for _, a := range d.allocs {
		d.m.ownerBytes.With(a.owner).Add(a.bytes)
	}
	d.mu.Unlock()
}

// Spec returns the device description.
func (d *Device) Spec() Spec { return d.spec }

// Capacity returns total device memory.
func (d *Device) Capacity() int64 { return d.spec.MemoryBytes }

// Used returns currently allocated bytes.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Available returns free bytes.
func (d *Device) Available() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spec.MemoryBytes - d.used
}

// Peak returns the high-water mark of Used.
func (d *Device) Peak() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// Stats reports cumulative operation counts.
type Stats struct {
	AllocOps int64
	FreeOps  int64
}

// Stats returns cumulative counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{AllocOps: d.allocOps, FreeOps: d.freeOps}
}

// Alloc reserves bytes for owner, failing with ErrOOM when the device
// cannot fit the request.
func (d *Device) Alloc(owner string, bytes int64) (AllocID, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("gpu: negative allocation %d", bytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+bytes > d.spec.MemoryBytes {
		d.m.oom.Inc()
		return 0, fmt.Errorf("%w: %s has %d free, need %d (owner %q)",
			ErrOOM, d.spec.Name, d.spec.MemoryBytes-d.used, bytes, owner)
	}
	d.next++
	id := d.next
	d.allocs[id] = allocation{owner: owner, bytes: bytes}
	d.used += bytes
	d.allocOps++
	if d.used > d.peak {
		d.peak = d.used
	}
	d.m.allocOps.Inc()
	d.m.allocBytes.Add(bytes)
	d.m.used.Add(bytes)
	d.m.peak.SetMax(d.m.used.Value())
	d.m.ownerBytes.With(owner).Add(bytes)
	return id, nil
}

// Free releases one allocation.
func (d *Device) Free(id AllocID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.allocs[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrBadFree, id)
	}
	delete(d.allocs, id)
	d.used -= a.bytes
	d.freeOps++
	d.m.freeOps.Inc()
	d.m.freeBytes.Add(a.bytes)
	d.m.used.Add(-a.bytes)
	d.m.ownerBytes.With(a.owner).Add(-a.bytes)
	return nil
}

// FreeOwner releases every allocation held by owner and returns the
// number of bytes reclaimed.
func (d *Device) FreeOwner(owner string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var reclaimed int64
	for id, a := range d.allocs {
		if a.owner == owner {
			delete(d.allocs, id)
			d.used -= a.bytes
			d.freeOps++
			d.m.freeOps.Inc()
			reclaimed += a.bytes
		}
	}
	d.m.freeBytes.Add(reclaimed)
	d.m.used.Add(-reclaimed)
	if reclaimed > 0 {
		d.m.ownerBytes.With(owner).Add(-reclaimed)
	}
	return reclaimed
}

// OwnerUsage returns bytes currently held by owner.
func (d *Device) OwnerUsage(owner string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, a := range d.allocs {
		if a.owner == owner {
			total += a.bytes
		}
	}
	return total
}

// Owners returns the owners with live allocations, sorted.
func (d *Device) Owners() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := make(map[string]bool)
	for _, a := range d.allocs {
		seen[a.owner] = true
	}
	owners := make([]string, 0, len(seen))
	for o := range seen {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	return owners
}
