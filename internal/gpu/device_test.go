package gpu

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestSpecPresets(t *testing.T) {
	if V100().MemoryBytes != 32<<30 || A100().MemoryBytes != 40<<30 || RTXA4500().MemoryBytes != 20<<30 {
		t.Fatal("preset capacities wrong")
	}
}

func TestAllocFree(t *testing.T) {
	d := NewDevice(Spec{Name: "t", MemoryBytes: 100})
	id, err := d.Alloc("a", 60)
	if err != nil {
		t.Fatal(err)
	}
	if d.Used() != 60 || d.Available() != 40 {
		t.Fatalf("used %d available %d", d.Used(), d.Available())
	}
	if _, err := d.Alloc("b", 50); !errors.Is(err, ErrOOM) {
		t.Fatalf("overcommit err = %v", err)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 0 {
		t.Fatal("free did not reclaim")
	}
	if err := d.Free(id); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free err = %v", err)
	}
	if d.Peak() != 60 {
		t.Fatalf("peak %d, want 60", d.Peak())
	}
}

func TestNegativeAllocRejected(t *testing.T) {
	d := NewDevice(Spec{Name: "t", MemoryBytes: 100})
	if _, err := d.Alloc("a", -1); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestZeroByteAllocAllowed(t *testing.T) {
	d := NewDevice(Spec{Name: "t", MemoryBytes: 10})
	id, err := d.Alloc("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
}

func TestFreeOwner(t *testing.T) {
	d := NewDevice(Spec{Name: "t", MemoryBytes: 100})
	mustAlloc(t, d, "a", 10)
	mustAlloc(t, d, "a", 20)
	mustAlloc(t, d, "b", 30)
	if got := d.OwnerUsage("a"); got != 30 {
		t.Fatalf("owner a usage %d", got)
	}
	if reclaimed := d.FreeOwner("a"); reclaimed != 30 {
		t.Fatalf("reclaimed %d", reclaimed)
	}
	if d.Used() != 30 || d.OwnerUsage("a") != 0 {
		t.Fatal("owner frees incomplete")
	}
	if owners := d.Owners(); len(owners) != 1 || owners[0] != "b" {
		t.Fatalf("owners = %v", owners)
	}
	if reclaimed := d.FreeOwner("missing"); reclaimed != 0 {
		t.Fatal("freeing unknown owner reclaimed bytes")
	}
}

func TestStatsCount(t *testing.T) {
	d := NewDevice(Spec{Name: "t", MemoryBytes: 100})
	id := mustAlloc(t, d, "a", 10)
	mustAlloc(t, d, "a", 10)
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.AllocOps != 2 || st.FreeOps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func mustAlloc(t *testing.T, d *Device, owner string, bytes int64) AllocID {
	t.Helper()
	id, err := d.Alloc(owner, bytes)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// Property: used always equals the sum of live allocations and never
// exceeds capacity, under arbitrary interleavings of alloc and free.
func TestAllocatorInvariantProperty(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		capacity := int64(capSeed)*10 + 50
		d := NewDevice(Spec{Name: "p", MemoryBytes: capacity})
		type live struct {
			id    AllocID
			bytes int64
		}
		var lives []live
		var wantUsed int64
		for _, op := range ops {
			if op%3 == 0 && len(lives) > 0 {
				// Free a pseudo-random live allocation.
				i := int(op/3) % len(lives)
				if err := d.Free(lives[i].id); err != nil {
					return false
				}
				wantUsed -= lives[i].bytes
				lives = append(lives[:i], lives[i+1:]...)
			} else {
				bytes := int64(op % 40)
				id, err := d.Alloc("p", bytes)
				if err != nil {
					if !errors.Is(err, ErrOOM) {
						return false
					}
					if wantUsed+bytes <= capacity {
						return false // spurious OOM
					}
					continue
				}
				wantUsed += bytes
				lives = append(lives, live{id: id, bytes: bytes})
			}
			if d.Used() != wantUsed || d.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	d := NewDevice(Spec{Name: "t", MemoryBytes: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(owner byte) {
			defer wg.Done()
			name := string(owner)
			for i := 0; i < 200; i++ {
				id, err := d.Alloc(name, 64)
				if err != nil {
					continue
				}
				if err := d.Free(id); err != nil {
					t.Error(err)
					return
				}
			}
		}('a' + byte(g))
	}
	wg.Wait()
	if d.Used() != 0 {
		t.Fatalf("leaked %d bytes", d.Used())
	}
}

func TestDeviceSetBalancing(t *testing.T) {
	s, err := NewDeviceSet(Spec{Name: "t", MemoryBytes: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 200 {
		t.Fatalf("capacity %d", s.Capacity())
	}
	// Worst-fit: allocations alternate between devices.
	if _, err := s.Alloc("a", 40); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("a", 40); err != nil {
		t.Fatal(err)
	}
	d0, d1 := s.Devices()[0].Used(), s.Devices()[1].Used()
	if d0 != 40 || d1 != 40 {
		t.Fatalf("unbalanced: %d, %d", d0, d1)
	}
	// A request larger than any single device's free space fails even
	// though aggregate space exists.
	if _, err := s.Alloc("a", 90); !errors.Is(err, ErrOOM) {
		t.Fatalf("oversized single-device alloc err = %v", err)
	}
}

func TestDeviceSetSharded(t *testing.T) {
	s, err := NewDeviceSet(Spec{Name: "t", MemoryBytes: 100}, 4)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.AllocSharded("model", 301)
	if err != nil {
		t.Fatal(err)
	}
	if s.Used() != 301 {
		t.Fatalf("used %d", s.Used())
	}
	// Shards are spread: every device holds something.
	for i, d := range s.Devices() {
		if d.Used() == 0 {
			t.Fatalf("device %d holds nothing", i)
		}
	}
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 0 {
		t.Fatal("sharded free incomplete")
	}
}

func TestDeviceSetShardedAtomicFailure(t *testing.T) {
	s, err := NewDeviceSet(Spec{Name: "t", MemoryBytes: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fill one device so the even split cannot fit.
	if _, err := s.Devices()[0].Alloc("x", 90); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocSharded("model", 180); !errors.Is(err, ErrOOM) {
		t.Fatalf("sharded overcommit err = %v", err)
	}
	// Failure must not leak partial shards.
	if s.Devices()[1].Used() != 0 {
		t.Fatalf("partial shard leaked: %d", s.Devices()[1].Used())
	}
}

func TestDeviceSetFreeOwner(t *testing.T) {
	s, err := NewDeviceSet(Spec{Name: "t", MemoryBytes: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocSharded("m", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("m", 30); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeOwner("m"); got != 130 {
		t.Fatalf("reclaimed %d", got)
	}
	if s.Used() != 0 {
		t.Fatal("free owner incomplete")
	}
}

func TestDeviceSetValidation(t *testing.T) {
	if _, err := NewDeviceSet(V100(), 0); err == nil {
		t.Fatal("empty device set accepted")
	}
	s, err := NewDeviceSet(V100(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(AllocID(99)); !errors.Is(err, ErrBadFree) {
		t.Fatalf("bad set free err = %v", err)
	}
}
