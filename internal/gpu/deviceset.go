package gpu

import (
	"fmt"
	"sync"

	"menos/internal/obs"
)

// DeviceSet aggregates multiple GPUs on one server. It mirrors the
// paper's multi-GPU abstraction (§3.1): "the GPU memory illustrated in
// Fig. 2 is an abstraction of all available GPUs" — a large base model
// is sharded across devices at load time, and runtime allocations land
// on whichever device has room.
type DeviceSet struct {
	mu      sync.Mutex
	devices []*Device
	// placements maps a set-level allocation to its per-device parts.
	placements map[AllocID][]placement
	next       AllocID
}

type placement struct {
	device *Device
	id     AllocID
}

// NewDeviceSet builds a set of n identical devices.
func NewDeviceSet(spec Spec, n int) (*DeviceSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: device set needs at least one device, got %d", n)
	}
	s := &DeviceSet{placements: make(map[AllocID][]placement)}
	for i := 0; i < n; i++ {
		s.devices = append(s.devices, NewDevice(spec))
	}
	return s, nil
}

// Devices returns the member devices.
func (s *DeviceSet) Devices() []*Device { return s.devices }

// Instrument wires every member device to the registry. Because
// devices instrumented against one registry share metric handles, the
// exported used/peak gauges and alloc/free counters report the
// set-wide aggregate.
func (s *DeviceSet) Instrument(reg *obs.Registry) {
	for _, d := range s.devices {
		d.Instrument(reg)
	}
}

// Capacity returns aggregate memory.
func (s *DeviceSet) Capacity() int64 {
	var total int64
	for _, d := range s.devices {
		total += d.Capacity()
	}
	return total
}

// Used returns aggregate allocated bytes.
func (s *DeviceSet) Used() int64 {
	var total int64
	for _, d := range s.devices {
		total += d.Used()
	}
	return total
}

// Available returns aggregate free bytes.
func (s *DeviceSet) Available() int64 { return s.Capacity() - s.Used() }

// Peak returns the aggregate high-water mark (sum of per-device peaks,
// an upper bound on the true simultaneous peak).
func (s *DeviceSet) Peak() int64 {
	var total int64
	for _, d := range s.devices {
		total += d.Peak()
	}
	return total
}

// Alloc places bytes on the single device with the most free memory
// (worst-fit, to balance load). It fails with ErrOOM when no single
// device can hold the request; use AllocSharded for spreadable data.
func (s *DeviceSet) Alloc(owner string, bytes int64) (AllocID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Device
	var bestFree int64 = -1
	for _, d := range s.devices {
		if free := d.Available(); free >= bytes && free > bestFree {
			best, bestFree = d, free
		}
	}
	if best == nil {
		return 0, fmt.Errorf("%w: no device with %d free bytes (owner %q)", ErrOOM, bytes, owner)
	}
	id, err := best.Alloc(owner, bytes)
	if err != nil {
		return 0, err
	}
	s.next++
	setID := s.next
	s.placements[setID] = []placement{{device: best, id: id}}
	return setID, nil
}

// AllocSharded spreads bytes evenly across all devices — how a model
// too large for one GPU is loaded ("manually assign different layers
// across multiple GPUs", §3.1). It fails atomically with ErrOOM if any
// shard does not fit.
func (s *DeviceSet) AllocSharded(owner string, bytes int64) (AllocID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(len(s.devices))
	share := bytes / n
	rem := bytes - share*n
	var placed []placement
	for i, d := range s.devices {
		want := share
		if int64(i) < rem {
			want++
		}
		id, err := d.Alloc(owner, want)
		if err != nil {
			for _, p := range placed {
				_ = p.device.Free(p.id)
			}
			return 0, fmt.Errorf("shard %d/%d: %w", i+1, n, err)
		}
		placed = append(placed, placement{device: d, id: id})
	}
	s.next++
	setID := s.next
	s.placements[setID] = placed
	return setID, nil
}

// Free releases a set-level allocation (all shards).
func (s *DeviceSet) Free(id AllocID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	placed, ok := s.placements[id]
	if !ok {
		return fmt.Errorf("%w: set id %d", ErrBadFree, id)
	}
	delete(s.placements, id)
	for _, p := range placed {
		if err := p.device.Free(p.id); err != nil {
			return err
		}
	}
	return nil
}

// FreeOwner releases all allocations held by owner across all devices.
// Ownership is recorded at the device level; set-level entries whose
// shards are all gone are pruned afterwards.
func (s *DeviceSet) FreeOwner(owner string) int64 {
	var reclaimed int64
	for _, d := range s.devices {
		reclaimed += d.FreeOwner(owner)
	}
	s.pruneDead()
	return reclaimed
}

// pruneDead drops set-level entries whose device allocations were
// freed out-of-band (e.g. by FreeOwner).
func (s *DeviceSet) pruneDead() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, placed := range s.placements {
		live := false
		for _, p := range placed {
			if p.device.OwnerUsageByID(p.id) {
				live = true
				break
			}
		}
		if !live {
			delete(s.placements, id)
		}
	}
}

// OwnerUsageByID reports whether allocation id is still live on the
// device.
func (d *Device) OwnerUsageByID(id AllocID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.allocs[id]
	return ok
}
