package memmodel

// Calibration constants. Each substitutes a property of the paper's
// testbed that cannot be observed in this environment; values are
// chosen so the analytic model reproduces the paper's own §2.3
// measurement study (see DESIGN.md §3).
const (
	// bytesPerParam is fp32 parameter storage; the paper fine-tunes in
	// full precision (quantization is cited as orthogonal).
	bytesPerParam = 4

	// bytesPerFloat is fp32 activation storage.
	bytesPerFloat = 4

	// ContextOverheadBytes models the per-serving-process CUDA context.
	// It explains the paper's observation that single-client Menos
	// uses slightly more memory than vanilla: Menos runs one serving
	// process per client plus a manager. 128 MB keeps the paper's own
	// Fig. 10 configuration (10 Llama clients on one V100) feasible,
	// as it must be since the paper ran it.
	ContextOverheadBytes = 128 << 20

	// ManagerOverheadBytes is the shared-parameter manager process's
	// own context ("an extra process to manage the shared base
	// parameters").
	ManagerOverheadBytes = 300 << 20

	// frameOverheadBytes is the protocol framing added to each
	// activation/gradient transfer (header, shape, request ids).
	frameOverheadBytes = 512
)

// MeasurementStudy reproduces the §2.3 measurement: split fine-tuning
// Llama 2-7B with LoRA at batch size 4, reporting the M / A+O / I
// decomposition the paper measured as ≈24 GB / 246 MB / 4 GB.
func MeasurementStudy() (Workload, Footprint) {
	w := PaperLlamaWorkload()
	return w, w.ClientFootprint()
}

// paperSeqLen is the effective tokens-per-sample implied by the
// paper's reported transfer sizes (13.1 MB at batch 16 × dim 2048 for
// OPT; 6.4 MB at batch 4 × dim 4096 for Llama — both ≈100 tokens).
const paperSeqLen = 100

// PaperOPTWorkload returns the paper's OPT-1.3B evaluation
// configuration: LoRA r=8 α=16 on q/v, cut after the first block,
// batch 16.
func PaperOPTWorkload() Workload {
	return Workload{
		Model:     model1OPT(),
		Cut:       1,
		Adapter:   paperLoRASpec(),
		Optimizer: OptAdam,
		Batch:     16,
		Seq:       paperSeqLen,
	}
}

// PaperLlamaWorkload returns the paper's Llama 2-7B evaluation
// configuration: LoRA r=8 α=16 on q/v, cut after the first block,
// batch 4.
func PaperLlamaWorkload() Workload {
	return Workload{
		Model:     model1Llama(),
		Cut:       1,
		Adapter:   paperLoRASpec(),
		Optimizer: OptAdam,
		Batch:     4,
		Seq:       paperSeqLen,
	}
}
