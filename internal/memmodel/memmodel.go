// Package memmodel implements the analytic GPU-memory accounting of
// §2.3: the 𝕄 (base model), 𝔸 (adapter), 𝕆 (optimizer state) and 𝕀
// (intermediate results) terms, for full-size model shapes that cannot
// be instantiated on a CPU.
//
// The 𝕀 formulas are derived from — and tested bit-exactly against —
// the activation caches of the real implementation in internal/model:
// the analytic model and the runnable model agree by construction, so
// the full-size projections are the tiny models' measured behaviour
// scaled up.
package memmodel

import (
	"errors"
	"fmt"

	"menos/internal/adapter"
	"menos/internal/model"
	"menos/internal/quant"
)

// ErrWorkload is returned (wrapped) for invalid workload descriptions.
var ErrWorkload = errors.New("memmodel: invalid workload")

// OptimizerKind selects the optimizer-state multiplier.
type OptimizerKind int

// Optimizer kinds.
const (
	OptAdam        OptimizerKind = iota + 1 // two moment buffers per parameter
	OptSGDMomentum                          // one velocity buffer
	OptSGD                                  // stateless
)

// statesPerParam returns the number of persistent state scalars the
// optimizer keeps per trainable parameter.
func (k OptimizerKind) statesPerParam() int64 {
	switch k {
	case OptAdam:
		return 2
	case OptSGDMomentum:
		return 1
	default:
		return 0
	}
}

// Workload describes one client's fine-tuning configuration — exactly
// the information the client reports to the server for profiling
// (§3.3).
type Workload struct {
	Model     model.Config
	Cut       int // client keeps blocks [0, Cut)
	Adapter   adapter.Spec
	Optimizer OptimizerKind
	Batch     int
	Seq       int
	// BaseQuant optionally quantizes the shared base parameters
	// (QLoRA-style); the zero value keeps fp32. Quantization is
	// orthogonal to Menos and stacks with base-model sharing, as the
	// paper argues.
	BaseQuant quant.Precision
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if err := w.Model.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrWorkload, err)
	}
	if w.Cut < 1 || w.Cut >= w.Model.Layers {
		return fmt.Errorf("%w: cut %d for %d layers", ErrWorkload, w.Cut, w.Model.Layers)
	}
	if err := w.Adapter.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrWorkload, err)
	}
	if w.Batch <= 0 || w.Seq <= 0 {
		return fmt.Errorf("%w: batch %d seq %d", ErrWorkload, w.Batch, w.Seq)
	}
	if w.Optimizer < OptAdam || w.Optimizer > OptSGD {
		return fmt.Errorf("%w: optimizer %d", ErrWorkload, int(w.Optimizer))
	}
	return nil
}

// serverBlocks returns the number of transformer blocks the server
// hosts.
func (w Workload) serverBlocks() int64 {
	return int64(w.Model.Layers - w.Cut)
}

// rows returns the token count per iteration (batch × seq).
func (w Workload) rows() int64 { return int64(w.Batch) * int64(w.Seq) }

// ServerBaseBytes returns 𝕄: the shared base parameters hosted by the
// server — fp32 by default, or quantized storage (values plus
// per-output-channel scales) when BaseQuant is set.
func (w Workload) ServerBaseBytes() int64 {
	params := w.serverBlocks() * w.Model.BlockParams()
	if w.BaseQuant == 0 {
		return params * bytesPerParam
	}
	values := int64(float64(params) * w.BaseQuant.BytesPerParam())
	// One fp32 scale per output column: columns ≈ params / dim.
	scales := params / int64(w.Model.Dim) * 4
	return values + scales
}

// AdapterBytes returns 𝔸: the client's server-side adapter parameters.
func (w Workload) AdapterBytes() int64 {
	return w.Adapter.ParamsPerBlock(w.Model.Dim) * w.serverBlocks() * bytesPerParam
}

// GradBytes returns the adapter gradient accumulator footprint (same
// shape as 𝔸).
func (w Workload) GradBytes() int64 { return w.AdapterBytes() }

// OptimizerBytes returns 𝕆: persistent optimizer state for the
// adapter parameters.
func (w Workload) OptimizerBytes() int64 {
	return w.Adapter.ParamsPerBlock(w.Model.Dim) * w.serverBlocks() *
		w.Optimizer.statesPerParam() * bytesPerParam
}

// PersistentClientBytes returns the per-client state that must stay
// resident between iterations under Menos: adapter parameters,
// gradients, optimizer state, and the client process's GPU context.
func (w Workload) PersistentClientBytes() int64 {
	return w.AdapterBytes() + w.GradBytes() + w.OptimizerBytes() + ContextOverheadBytes
}

// activationFloatsPerRowPerBlock returns the retained activation
// scalars per token per transformer block during a gradient-enabled
// forward pass. The formula is derived term-by-term from the cache
// structs of internal/model and internal/adapter; the memmodel tests
// assert exact agreement with the instantiated tiny models.
func (w Workload) activationFloatsPerRowPerBlock() int64 {
	d := int64(w.Model.Dim)
	f := int64(w.Model.FFN)
	h := int64(w.Model.Heads)
	ext := int64(w.Seq) // attention context length (prefix extends it)
	if w.Adapter.Kind == adapter.KindPrefix {
		ext += int64(w.Adapter.PrefixLen)
	}

	var base int64
	switch w.Model.Family {
	case model.FamilyOPT:
		// norm1 (d+1) + attn (7d + h·ext) + norm2 (d+1) + ffn (d + 2f)
		base = 10*d + 2*f + h*ext + 2
	case model.FamilyLlama:
		// norm1 (d+1) + attn (7d + h·ext) + norm2 (d+1) + swiglu (2d + 4f)
		base = 11*d + 4*f + h*ext + 2
	}

	switch w.Adapter.Kind {
	case adapter.KindLoRA:
		// Each wrapped projection retains x (d) and x·A (rank).
		base += int64(len(w.Adapter.Targets)) * (d + int64(w.Adapter.Rank))
	case adapter.KindBottleneck:
		// The bottleneck wrapper retains y (d), the GELU input (hidden)
		// and the up-projection input (hidden).
		base += d + 2*int64(w.Adapter.Hidden)
	}
	return base
}

// ActivationBytes returns 𝕀: the intermediate results retained across
// the server's blocks for one gradient-enabled forward pass. This is
// what a memory-preserving policy keeps resident while waiting for the
// client's gradients, and what Menos releases and recomputes.
func (w Workload) ActivationBytes() int64 {
	return w.activationFloatsPerRowPerBlock() * w.rows() * w.serverBlocks() * bytesPerFloat
}

// NoGradForwardBytes returns the transient working memory of the
// non-gradient forward pass of Fig. 3(d): a few live activation
// tensors, independent of depth.
func (w Workload) NoGradForwardBytes() int64 {
	d := int64(w.Model.Dim)
	f := int64(w.Model.FFN)
	// Live set: current hidden, residual, widest FFN temporary, plus
	// attention workspace.
	perRow := 2*d + 2*f + int64(w.Model.Heads)*int64(w.Seq)
	return perRow * w.rows() * bytesPerFloat
}

// BackwardPeakBytes returns the peak memory of the re-forward plus
// backward of Fig. 3(d): the full activation set plus a gradient
// working set.
func (w Workload) BackwardPeakBytes() int64 {
	d := int64(w.Model.Dim)
	grad := 3 * d * w.rows() * bytesPerFloat // dy/dx ping-pong + head temporaries
	return w.ActivationBytes() + grad
}

// TransferBytes returns the per-direction payload of one activation or
// gradient exchange at the cut: batch × seq × dim fp32 values plus
// framing.
func (w Workload) TransferBytes() int64 {
	return w.rows()*int64(w.Model.Dim)*bytesPerFloat + frameOverheadBytes
}

// Footprint is the §2.3 decomposition for one client.
type Footprint struct {
	M, A, O, I int64
}

// Total returns M+A+O+I.
func (f Footprint) Total() int64 { return f.M + f.A + f.O + f.I }

// ClientFootprint returns the full decomposition for one client's
// workload.
func (w Workload) ClientFootprint() Footprint {
	return Footprint{
		M: w.ServerBaseBytes(),
		A: w.AdapterBytes() + w.GradBytes(),
		O: w.OptimizerBytes(),
		I: w.ActivationBytes(),
	}
}

// VanillaPersistentBytes returns the persistent server footprint for n
// identical clients under vanilla split learning (Eq. 2's persistent
// part): the base model and per-client states are all duplicated.
func VanillaPersistentBytes(w Workload, n int) int64 {
	per := w.ServerBaseBytes() + w.AdapterBytes() + w.GradBytes() + w.OptimizerBytes()
	return per * int64(n)
}

// MenosPersistentBytes returns the persistent server footprint for n
// identical clients under Menos (Eq. 3's persistent part): one shared
// base copy plus per-client adapter state and process contexts, plus
// the shared-store manager process.
func MenosPersistentBytes(w Workload, n int) int64 {
	return w.ServerBaseBytes() + ManagerOverheadBytes +
		int64(n)*w.PersistentClientBytes()
}

// VanillaPeakBytes returns the peak footprint for n concurrent vanilla
// clients, each preserving its activations throughout (Eq. 2).
func VanillaPeakBytes(w Workload, n int) int64 {
	per := w.ServerBaseBytes() + w.AdapterBytes() + w.GradBytes() +
		w.OptimizerBytes() + w.ActivationBytes()
	return per * int64(n)
}

// MenosPeakBytes returns the peak footprint under Menos' on-demand
// policy with a single in-flight backward (Eq. 3): shared base,
// per-client persistent state, and one transient activation set.
func MenosPeakBytes(w Workload, n int) int64 {
	return MenosPersistentBytes(w, n) + w.BackwardPeakBytes()
}
