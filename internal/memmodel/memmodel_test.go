package memmodel

import (
	"testing"

	"menos/internal/adapter"
	"menos/internal/model"
	"menos/internal/tensor"
)

const gib = 1 << 30

func TestWorkloadValidate(t *testing.T) {
	valid := PaperLlamaWorkload()
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Workload)
	}{
		{"bad cut low", func(w *Workload) { w.Cut = 0 }},
		{"bad cut high", func(w *Workload) { w.Cut = w.Model.Layers }},
		{"bad adapter", func(w *Workload) { w.Adapter.Rank = 0 }},
		{"bad batch", func(w *Workload) { w.Batch = 0 }},
		{"bad seq", func(w *Workload) { w.Seq = 0 }},
		{"bad optimizer", func(w *Workload) { w.Optimizer = 0 }},
		{"bad model", func(w *Workload) { w.Model.Dim = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := PaperLlamaWorkload()
			tt.mutate(&w)
			if err := w.Validate(); err == nil {
				t.Fatal("invalid workload accepted")
			}
		})
	}
}

// TestMeasurementStudy reproduces §2.3: Llama 2-7B, LoRA, batch 4 —
// the paper measures ≈24 GB base, 246 MB adapter+optimizer, 4 GB
// intermediates, ≈28.7 GB total.
func TestMeasurementStudy(t *testing.T) {
	_, fp := MeasurementStudy()
	if fp.M < 22*gib || fp.M > 27*gib {
		t.Fatalf("M = %.1f GiB, want ~24 GB", float64(fp.M)/gib)
	}
	ao := fp.A + fp.O
	if ao < 30<<20 || ao > 400<<20 {
		t.Fatalf("A+O = %.0f MiB, want same order as 246 MB", float64(ao)/(1<<20))
	}
	if fp.I < 2*gib || fp.I > 6*gib {
		t.Fatalf("I = %.1f GiB, want ~4 GB", float64(fp.I)/gib)
	}
	if fp.Total() < 25*gib || fp.Total() > 33*gib {
		t.Fatalf("total = %.1f GiB, want ~28.7 GB", float64(fp.Total())/gib)
	}
	// The structural claim: M dominates, A+O is negligible.
	if ao*20 > fp.M {
		t.Fatalf("A+O (%d) not << M (%d)", ao, fp.M)
	}
}

// TestOPTBaseMatchesPaper checks the OPT-1.3B server slice against the
// paper's Fig. 5(a) single-client persistent footprint of ~4.7 GB.
func TestOPTBaseMatchesPaper(t *testing.T) {
	w := PaperOPTWorkload()
	m := w.ServerBaseBytes()
	if m < 4*gib || m > 5*gib {
		t.Fatalf("OPT server base = %.2f GiB, want ~4.6 GB", float64(m)/gib)
	}
}

// TestVanillaSupportsExactlyThreeOPTClients reproduces the paper's
// observation that a 32 GB V100 fits 3 (not 4) vanilla OPT clients.
func TestVanillaSupportsExactlyThreeOPTClients(t *testing.T) {
	w := PaperOPTWorkload()
	const v100 = 32 * int64(gib)
	if got := VanillaPeakBytes(w, 3); got > v100 {
		t.Fatalf("3 vanilla OPT clients need %.1f GiB > 32", float64(got)/gib)
	}
	if got := VanillaPeakBytes(w, 4); got <= v100 {
		t.Fatalf("4 vanilla OPT clients fit in 32 GiB (%.1f), paper says they don't", float64(got)/gib)
	}
}

// TestVanillaLlamaCannotFitTwo reproduces: one V100 cannot hold two
// full Llama 2-7B copies.
func TestVanillaLlamaCannotFitTwo(t *testing.T) {
	w := PaperLlamaWorkload()
	const v100 = 32 * int64(gib)
	if got := VanillaPeakBytes(w, 1); got > v100 {
		t.Fatalf("1 vanilla Llama client needs %.1f GiB > 32", float64(got)/gib)
	}
	if got := VanillaPersistentBytes(w, 2); got <= v100 {
		t.Fatalf("2 vanilla Llama clients fit persistently (%.1f GiB), paper says they can't",
			float64(got)/gib)
	}
}

// TestMenosFitsFourLlamaClients reproduces Fig. 5(b): Menos serves 4
// Llama clients in ~26.4 GB, a ~72% reduction vs duplication.
func TestMenosFitsFourLlamaClients(t *testing.T) {
	w := PaperLlamaWorkload()
	menos := MenosPersistentBytes(w, 4)
	vanilla := VanillaPersistentBytes(w, 4)
	if menos > 29*gib {
		t.Fatalf("Menos 4 Llama clients = %.1f GiB, want ~26.4 GB", float64(menos)/gib)
	}
	saving := 1 - float64(menos)/float64(vanilla)
	if saving < 0.65 || saving > 0.80 {
		t.Fatalf("saving = %.1f%%, paper reports 72.2%%", saving*100)
	}
}

// TestMenosOPTSaving reproduces Fig. 5(a): ~64% reduction at 4 clients.
func TestMenosOPTSaving(t *testing.T) {
	w := PaperOPTWorkload()
	menos := MenosPersistentBytes(w, 4)
	vanilla := VanillaPersistentBytes(w, 4)
	saving := 1 - float64(menos)/float64(vanilla)
	if saving < 0.55 || saving > 0.75 {
		t.Fatalf("saving = %.1f%%, paper reports 64.1%%", saving*100)
	}
}

// TestSingleClientMenosCostsMore reproduces the paper's note that with
// one client Menos uses slightly more memory than vanilla (extra
// manager process).
func TestSingleClientMenosCostsMore(t *testing.T) {
	for _, w := range []Workload{PaperOPTWorkload(), PaperLlamaWorkload()} {
		menos := MenosPersistentBytes(w, 1)
		vanilla := VanillaPersistentBytes(w, 1)
		if menos <= vanilla {
			t.Fatalf("%s: Menos single-client %.2f GiB not above vanilla %.2f GiB",
				w.Model.Name, float64(menos)/gib, float64(vanilla)/gib)
		}
		// But not by much: under 1.5 GB of process overhead.
		if menos-vanilla > 2*gib {
			t.Fatalf("%s: single-client overhead too large: %.2f GiB",
				w.Model.Name, float64(menos-vanilla)/gib)
		}
	}
}

// TestCrossoverScaling: Menos grows slowly in N, vanilla linearly; the
// ratio should improve monotonically with N.
func TestCrossoverScaling(t *testing.T) {
	w := PaperLlamaWorkload()
	prev := 0.0
	for n := 2; n <= 8; n++ {
		saving := 1 - float64(MenosPersistentBytes(w, n))/float64(VanillaPersistentBytes(w, n))
		if saving <= prev {
			t.Fatalf("saving not monotone at n=%d: %.3f <= %.3f", n, saving, prev)
		}
		prev = saving
	}
}

// TestTransferBytesMatchPaper checks the activation payload sizes the
// paper reports: 13.1 MB (OPT, batch 16) and 6.4 MB (Llama, batch 4).
func TestTransferBytesMatchPaper(t *testing.T) {
	opt := PaperOPTWorkload().TransferBytes()
	if opt < 12<<20 || opt > 14<<20 {
		t.Fatalf("OPT transfer = %.1f MiB, paper says 13.1 MB", float64(opt)/(1<<20))
	}
	llama := PaperLlamaWorkload().TransferBytes()
	if llama < 5<<20 || llama > 8<<20 {
		t.Fatalf("Llama transfer = %.1f MiB, paper says 6.4 MB", float64(llama)/(1<<20))
	}
}

// TestActivationBytesMatchesMeasuredCaches is the cross-validation at
// the heart of the reproduction strategy: the analytic 𝕀 formula must
// agree *exactly* with the bytes retained by the real implementation's
// caches, for both families and all three adapter kinds.
func TestActivationBytesMatchesMeasuredCaches(t *testing.T) {
	type tc struct {
		name string
		cfg  model.Config
		spec adapter.Spec
	}
	cases := []tc{
		{"opt+lora", model.OPTTiny(), adapter.LoRASpec(adapter.DefaultLoRA())},
		{"llama+lora", model.LlamaTiny(), adapter.LoRASpec(adapter.DefaultLoRA())},
		{"opt+prefix", model.OPTTiny(), adapter.PrefixSpec(adapter.PrefixConfig{PrefixLen: 4})},
		{"llama+prefix", model.LlamaTiny(), adapter.PrefixSpec(adapter.PrefixConfig{PrefixLen: 4})},
		{"opt+bottleneck", model.OPTTiny(), adapter.BottleneckSpec(adapter.BottleneckConfig{Hidden: 12})},
		{"llama+bottleneck", model.LlamaTiny(), adapter.BottleneckSpec(adapter.BottleneckConfig{Hidden: 12})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			batch, seq := 2, 7
			w := Workload{
				Model: c.cfg, Cut: 1, Adapter: c.spec,
				Optimizer: OptAdam, Batch: batch, Seq: seq,
			}
			if err := w.Validate(); err != nil {
				t.Fatal(err)
			}

			m, err := model.New(tensor.NewRNG(1), c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.SetFrozenBase(true)
			_, body, _, err := m.Split(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.spec.Inject(tensor.NewRNG(2), body.Blocks(), c.cfg.Dim); err != nil {
				t.Fatal(err)
			}
			x := tensor.NewNormal(tensor.NewRNG(3), 0.5, batch*seq, c.cfg.Dim)
			_, cache, err := body.Forward(x, batch, seq, true)
			if err != nil {
				t.Fatal(err)
			}
			measured := cache.Bytes()
			analytic := w.ActivationBytes()
			if measured != analytic {
				t.Fatalf("measured cache %d != analytic %d (delta %d)",
					measured, analytic, measured-analytic)
			}
		})
	}
}

// TestAdapterBytesMatchesInstantiated cross-validates 𝔸 against real
// injected adapters.
func TestAdapterBytesMatchesInstantiated(t *testing.T) {
	cfg := model.LlamaTiny()
	w := TinyLlamaWorkload(2, 8)
	m, err := model.New(tensor.NewRNG(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, body, _, err := m.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := w.Adapter.Inject(tensor.NewRNG(5), body.Blocks(), cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ad.ParamBytes(), w.AdapterBytes(); got != want {
		t.Fatalf("instantiated adapter bytes %d != analytic %d", got, want)
	}
}

// TestOptimizerStateMultipliers checks the 𝕆 term per optimizer kind.
func TestOptimizerStateMultipliers(t *testing.T) {
	w := TinyOPTWorkload(1, 4)
	adam := w.OptimizerBytes()
	w.Optimizer = OptSGDMomentum
	mom := w.OptimizerBytes()
	w.Optimizer = OptSGD
	plain := w.OptimizerBytes()
	if adam != 2*mom || plain != 0 {
		t.Fatalf("optimizer bytes: adam %d, momentum %d, sgd %d", adam, mom, plain)
	}
}

// TestDeeperCutShrinksServerFootprint: privacy-motivated deeper cuts
// (§3.1) shift memory from server to client.
func TestDeeperCutShrinksServerFootprint(t *testing.T) {
	w := PaperLlamaWorkload()
	shallow := w
	shallow.Cut = 1
	deep := w
	deep.Cut = 8
	if deep.ServerBaseBytes() >= shallow.ServerBaseBytes() {
		t.Fatal("deeper cut did not shrink server base")
	}
	if deep.ActivationBytes() >= shallow.ActivationBytes() {
		t.Fatal("deeper cut did not shrink server activations")
	}
}

// TestNoGradForwardIsSmall: the Fig. 3(d) no-grad forward must be far
// below the full activation set — that is the whole point.
func TestNoGradForwardIsSmall(t *testing.T) {
	for _, w := range []Workload{PaperOPTWorkload(), PaperLlamaWorkload()} {
		nograd := w.NoGradForwardBytes()
		full := w.ActivationBytes()
		if nograd*5 > full {
			t.Fatalf("%s: no-grad forward %.2f GiB not << activations %.2f GiB",
				w.Model.Name, float64(nograd)/gib, float64(full)/gib)
		}
	}
}

// TestEq3BeatsEq2: the paper's headline inequality — Menos peak (Eq. 3)
// grows much slower than vanilla peak (Eq. 2).
func TestEq3BeatsEq2(t *testing.T) {
	w := PaperLlamaWorkload()
	for n := 2; n <= 6; n++ {
		if MenosPeakBytes(w, n) >= VanillaPeakBytes(w, n) {
			t.Fatalf("Menos peak >= vanilla peak at n=%d", n)
		}
	}
	// Marginal client cost: Menos adds only (A+O+ctx), vanilla adds a
	// whole model replica.
	menosMargin := MenosPeakBytes(w, 5) - MenosPeakBytes(w, 4)
	vanillaMargin := VanillaPeakBytes(w, 5) - VanillaPeakBytes(w, 4)
	if menosMargin*10 > vanillaMargin {
		t.Fatalf("Menos marginal cost %.2f GiB not << vanilla marginal %.2f GiB",
			float64(menosMargin)/gib, float64(vanillaMargin)/gib)
	}
}
