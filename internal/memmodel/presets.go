package memmodel

import (
	"menos/internal/adapter"
	"menos/internal/model"
)

// Thin wrappers so calibration.go reads declaratively.

func model1OPT() model.Config   { return model.OPT1_3B() }
func model1Llama() model.Config { return model.Llama2_7B() }

// paperLoRASpec is the PEFT-default LoRA configuration the paper uses:
// r=8, α=16, on the query and value projections.
func paperLoRASpec() adapter.Spec {
	return adapter.LoRASpec(adapter.DefaultLoRA())
}

// TinyOPTWorkload returns a runnable workload over the tiny OPT model,
// used to cross-validate the analytic model against measured caches.
func TinyOPTWorkload(batch, seq int) Workload {
	return Workload{
		Model:     model.OPTTiny(),
		Cut:       1,
		Adapter:   paperLoRASpec(),
		Optimizer: OptAdam,
		Batch:     batch,
		Seq:       seq,
	}
}

// TinyLlamaWorkload returns a runnable workload over the tiny Llama
// model.
func TinyLlamaWorkload(batch, seq int) Workload {
	return Workload{
		Model:     model.LlamaTiny(),
		Cut:       1,
		Adapter:   paperLoRASpec(),
		Optimizer: OptAdam,
		Batch:     batch,
		Seq:       seq,
	}
}
