package memmodel

import (
	"testing"
	"testing/quick"

	"menos/internal/quant"
)

// Property: every memory term is positive and monotone in batch size,
// sequence length, and server depth.
func TestMemoryMonotonicityProperty(t *testing.T) {
	f := func(batchRaw, seqRaw, cutRaw uint8) bool {
		w := PaperLlamaWorkload()
		w.Batch = 1 + int(batchRaw%8)
		w.Seq = 16 + int(seqRaw)
		w.Cut = 1 + int(cutRaw%(uint8(w.Model.Layers)-1))
		if err := w.Validate(); err != nil {
			return false
		}
		if w.ActivationBytes() <= 0 || w.ServerBaseBytes() <= 0 ||
			w.AdapterBytes() <= 0 || w.NoGradForwardBytes() <= 0 {
			return false
		}
		// Monotone in batch.
		bigger := w
		bigger.Batch++
		if bigger.ActivationBytes() <= w.ActivationBytes() {
			return false
		}
		// Monotone in seq.
		longer := w
		longer.Seq++
		if longer.ActivationBytes() <= w.ActivationBytes() {
			return false
		}
		// Deeper cut means fewer server blocks: base and activations
		// shrink.
		if w.Cut+1 < w.Model.Layers {
			deeper := w
			deeper.Cut++
			if deeper.ServerBaseBytes() >= w.ServerBaseBytes() {
				return false
			}
			if deeper.ActivationBytes() >= w.ActivationBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Menos persistent memory is monotone in client count and
// always below vanilla for n ≥ 2; savings increase with n.
func TestSharingAlwaysWinsProperty(t *testing.T) {
	f := func(nRaw uint8, llama bool) bool {
		n := 2 + int(nRaw%15)
		w := PaperOPTWorkload()
		if llama {
			w = PaperLlamaWorkload()
		}
		menos := MenosPersistentBytes(w, n)
		vanilla := VanillaPersistentBytes(w, n)
		if menos >= vanilla {
			return false
		}
		if MenosPersistentBytes(w, n+1) <= menos {
			return false
		}
		savingN := 1 - float64(menos)/float64(vanilla)
		savingNext := 1 - float64(MenosPersistentBytes(w, n+1))/float64(VanillaPersistentBytes(w, n+1))
		return savingNext > savingN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization strictly orders base bytes fp32 > int8 > int4
// for any valid workload, and never touches adapter/optimizer terms.
func TestQuantOrderingProperty(t *testing.T) {
	f := func(cutRaw uint8, llama bool) bool {
		w := PaperOPTWorkload()
		if llama {
			w = PaperLlamaWorkload()
		}
		w.Cut = 1 + int(cutRaw%(uint8(w.Model.Layers)-1))
		w8 := w
		w8.BaseQuant = quant.Int8
		w4 := w
		w4.BaseQuant = quant.Int4
		if !(w4.ServerBaseBytes() < w8.ServerBaseBytes() &&
			w8.ServerBaseBytes() < w.ServerBaseBytes()) {
			return false
		}
		return w8.AdapterBytes() == w.AdapterBytes() &&
			w4.OptimizerBytes() == w.OptimizerBytes() &&
			w8.ActivationBytes() == w.ActivationBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the backward peak always dominates both the plain
// activation set and the no-grad forward footprint.
func TestBackwardPeakDominatesProperty(t *testing.T) {
	f := func(batchRaw, seqRaw uint8) bool {
		w := PaperLlamaWorkload()
		w.Batch = 1 + int(batchRaw%8)
		w.Seq = 16 + int(seqRaw%200)
		return w.BackwardPeakBytes() > w.ActivationBytes() &&
			w.BackwardPeakBytes() > w.NoGradForwardBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
