package model

import (
	"fmt"
	"math"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// causalMask is the additive logit penalty for future positions.
const causalMask = -1e9

// PrefixKV holds trainable per-block prefix key/value states
// (prefix-tuning, Li & Liang 2021). Every query position may attend to
// all prefix slots in addition to its causal past. Prefix states are
// adapter parameters: always trainable, never part of the base model.
type PrefixKV struct {
	K   nn.Param // (P, dim)
	V   nn.Param // (P, dim)
	Len int
}

// NewPrefixKV creates a prefix of p slots for hidden size dim.
func NewPrefixKV(rng *tensor.RNG, p, dim int) *PrefixKV {
	return &PrefixKV{
		K:   nn.NewParam("prefix_k", tensor.NewNormal(rng, 0.02, p, dim)),
		V:   nn.NewParam("prefix_v", tensor.NewNormal(rng, 0.02, p, dim)),
		Len: p,
	}
}

// Params returns the prefix parameters.
func (p *PrefixKV) Params() []nn.Param {
	return []nn.Param{p.K, p.V}
}

// Attention is causal multi-head self-attention. Its four projections
// are nn.Op values so adapters (LoRA) can wrap any of them without the
// attention code knowing, and an optional PrefixKV implements
// prefix-tuning.
type Attention struct {
	Q, K, V, O nn.Op
	Prefix     *PrefixKV // nil unless prefix-tuning is attached

	heads   int
	headDim int
	rope    *ropeTable // nil for OPT-style learned positions
}

// AttnCache retains everything the attention backward pass needs.
type AttnCache struct {
	B, T int
	P    int // prefix length at forward time

	QC, KC, VC, OC any // projection caches

	// Post-RoPE projections, each (B*T, dim).
	QT, KT, VT *tensor.Tensor
	// Softmax probabilities, (B*heads*T, P+T).
	Probs *tensor.Tensor
}

// Bytes reports retained activation size.
func (c *AttnCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	b := nn.CacheBytes(c.QC) + nn.CacheBytes(c.KC) + nn.CacheBytes(c.VC) + nn.CacheBytes(c.OC)
	for _, t := range []*tensor.Tensor{c.QT, c.KT, c.VT, c.Probs} {
		if t != nil {
			b += t.Bytes()
		}
	}
	return b
}

// newAttention builds the attention module for cfg with plain Linear
// projections.
func newAttention(rng *tensor.RNG, cfg Config) *Attention {
	a := &Attention{
		Q:       nn.NewLinear(rng.Split(), cfg.Dim, cfg.Dim, cfg.HasBias()),
		K:       nn.NewLinear(rng.Split(), cfg.Dim, cfg.Dim, cfg.HasBias()),
		V:       nn.NewLinear(rng.Split(), cfg.Dim, cfg.Dim, cfg.HasBias()),
		O:       nn.NewLinear(rng.Split(), cfg.Dim, cfg.Dim, cfg.HasBias()),
		heads:   cfg.Heads,
		headDim: cfg.HeadDim(),
	}
	if cfg.Family == FamilyLlama {
		a.rope = newRopeTable(cfg.MaxSeq, cfg.HeadDim())
	}
	return a
}

func (a *Attention) prefixLen() int {
	if a.Prefix == nil {
		return 0
	}
	return a.Prefix.Len
}

// Forward computes attention over x of shape (B*T, dim). When withGrad
// is false no cache is produced (no-grad forward).
func (a *Attention) Forward(x *tensor.Tensor, batch, seq int, withGrad bool) (*tensor.Tensor, *AttnCache, error) {
	dim := a.heads * a.headDim
	if x.Rank() != 2 || x.Dim(0) != batch*seq || x.Dim(1) != dim {
		return nil, nil, fmt.Errorf("attention: input %v for batch %d seq %d dim %d: %w",
			x.Shape(), batch, seq, dim, tensor.ErrShape)
	}
	q, qc, err := a.Q.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("attention q: %w", err)
	}
	k, kc, err := a.K.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("attention k: %w", err)
	}
	v, vc, err := a.V.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("attention v: %w", err)
	}
	if a.rope != nil {
		a.applyRope(q, batch, seq, false)
		a.applyRope(k, batch, seq, false)
	}

	pLen := a.prefixLen()
	ext := pLen + seq
	ctx := tensor.New(batch*seq, dim)
	var probs *tensor.Tensor
	if withGrad {
		probs = tensor.New(batch*a.heads*seq, ext)
	}
	scale := float32(1.0 / math.Sqrt(float64(a.headDim)))

	qh := tensor.New(seq, a.headDim)
	khExt := tensor.New(ext, a.headDim)
	vhExt := tensor.New(ext, a.headDim)
	scores := tensor.New(seq, ext)
	outh := tensor.New(seq, a.headDim)
	for b := 0; b < batch; b++ {
		for h := 0; h < a.heads; h++ {
			a.gatherHead(q, b*seq, h, seq, qh.Data())
			if pLen > 0 {
				a.gatherHead(a.Prefix.K.Value, 0, h, pLen, khExt.Data()[:pLen*a.headDim])
				a.gatherHead(a.Prefix.V.Value, 0, h, pLen, vhExt.Data()[:pLen*a.headDim])
			}
			a.gatherHead(k, b*seq, h, seq, khExt.Data()[pLen*a.headDim:])
			a.gatherHead(v, b*seq, h, seq, vhExt.Data()[pLen*a.headDim:])
			if err := tensor.MatMulT(scores, qh, khExt); err != nil {
				return nil, nil, fmt.Errorf("attention scores: %w", err)
			}
			scores.Scale(scale)
			maskCausal(scores, pLen)
			if err := tensor.SoftmaxRows(scores, scores); err != nil {
				return nil, nil, fmt.Errorf("attention softmax: %w", err)
			}
			if probs != nil {
				off := (b*a.heads + h) * seq * ext
				copy(probs.Data()[off:off+seq*ext], scores.Data())
			}
			if err := tensor.MatMul(outh, scores, vhExt); err != nil {
				return nil, nil, fmt.Errorf("attention context: %w", err)
			}
			a.scatterHeadCopy(ctx, b*seq, h, seq, outh.Data())
		}
	}

	y, oc, err := a.O.Apply(ctx, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("attention o: %w", err)
	}
	if !withGrad {
		return y, nil, nil
	}
	return y, &AttnCache{
		B: batch, T: seq, P: pLen,
		QC: qc, KC: kc, VC: vc, OC: oc,
		QT: q, KT: k, VT: v, Probs: probs,
	}, nil
}

// Backward propagates dy of shape (B*T, dim) through the attention.
func (a *Attention) Backward(cache *AttnCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.Probs == nil {
		return nil, fmt.Errorf("attention backward: no cached activations")
	}
	if cache.P != a.prefixLen() {
		return nil, fmt.Errorf("attention backward: prefix length changed since forward (%d -> %d)",
			cache.P, a.prefixLen())
	}
	batch, seq, pLen := cache.B, cache.T, cache.P
	ext := pLen + seq
	dim := a.heads * a.headDim

	dctx, err := a.O.Grad(cache.OC, dy)
	if err != nil {
		return nil, fmt.Errorf("attention o backward: %w", err)
	}

	dq := tensor.New(batch*seq, dim)
	dk := tensor.New(batch*seq, dim)
	dv := tensor.New(batch*seq, dim)
	scale := float32(1.0 / math.Sqrt(float64(a.headDim)))

	qh := tensor.New(seq, a.headDim)
	khExt := tensor.New(ext, a.headDim)
	vhExt := tensor.New(ext, a.headDim)
	douth := tensor.New(seq, a.headDim)
	dqh := tensor.New(seq, a.headDim)
	dkhExt := tensor.New(ext, a.headDim)
	dvhExt := tensor.New(ext, a.headDim)
	dp := tensor.New(seq, ext)
	p := tensor.New(seq, ext)
	for b := 0; b < batch; b++ {
		for h := 0; h < a.heads; h++ {
			a.gatherHead(cache.QT, b*seq, h, seq, qh.Data())
			if pLen > 0 {
				a.gatherHead(a.Prefix.K.Value, 0, h, pLen, khExt.Data()[:pLen*a.headDim])
				a.gatherHead(a.Prefix.V.Value, 0, h, pLen, vhExt.Data()[:pLen*a.headDim])
			}
			a.gatherHead(cache.KT, b*seq, h, seq, khExt.Data()[pLen*a.headDim:])
			a.gatherHead(cache.VT, b*seq, h, seq, vhExt.Data()[pLen*a.headDim:])
			a.gatherHead(dctx, b*seq, h, seq, douth.Data())
			off := (b*a.heads + h) * seq * ext
			copy(p.Data(), cache.Probs.Data()[off:off+seq*ext])

			// dP = dOut @ Vᵀ ; dV = Pᵀ @ dOut
			if err := tensor.MatMulT(dp, douth, vhExt); err != nil {
				return nil, fmt.Errorf("attention dP: %w", err)
			}
			dvhExt.Zero()
			if err := tensor.MatMulTAccum(dvhExt, p, douth); err != nil {
				return nil, fmt.Errorf("attention dV: %w", err)
			}
			// dS = P ∘ (dP - rowsum(dP∘P)); scale by 1/√hd.
			softmaxBackwardInPlace(dp, p)
			dp.Scale(scale)
			// dQ = dS @ K ; dK = dSᵀ @ Q
			if err := tensor.MatMul(dqh, dp, khExt); err != nil {
				return nil, fmt.Errorf("attention dQ: %w", err)
			}
			dkhExt.Zero()
			if err := tensor.MatMulTAccum(dkhExt, dp, qh); err != nil {
				return nil, fmt.Errorf("attention dK: %w", err)
			}
			if pLen > 0 {
				a.scatterHeadAdd(a.Prefix.K.Grad, 0, h, pLen, dkhExt.Data()[:pLen*a.headDim])
				a.scatterHeadAdd(a.Prefix.V.Grad, 0, h, pLen, dvhExt.Data()[:pLen*a.headDim])
			}
			a.scatterHeadCopy(dq, b*seq, h, seq, dqh.Data())
			a.scatterHeadCopy(dk, b*seq, h, seq, dkhExt.Data()[pLen*a.headDim:])
			a.scatterHeadCopy(dv, b*seq, h, seq, dvhExt.Data()[pLen*a.headDim:])
		}
	}

	if a.rope != nil {
		a.applyRope(dq, batch, seq, true)
		a.applyRope(dk, batch, seq, true)
	}

	dxq, err := a.Q.Grad(cache.QC, dq)
	if err != nil {
		return nil, fmt.Errorf("attention q backward: %w", err)
	}
	dxk, err := a.K.Grad(cache.KC, dk)
	if err != nil {
		return nil, fmt.Errorf("attention k backward: %w", err)
	}
	dxv, err := a.V.Grad(cache.VC, dv)
	if err != nil {
		return nil, fmt.Errorf("attention v backward: %w", err)
	}
	if err := tensor.Add(dxq, dxq, dxk); err != nil {
		return nil, fmt.Errorf("attention dx sum: %w", err)
	}
	if err := tensor.Add(dxq, dxq, dxv); err != nil {
		return nil, fmt.Errorf("attention dx sum: %w", err)
	}
	return dxq, nil
}

// Params returns trainable parameters across the four projections and
// the prefix (when attached).
func (a *Attention) Params() []nn.Param {
	var ps []nn.Param
	ps = append(ps, nn.Prefixed("q", a.Q.Params())...)
	ps = append(ps, nn.Prefixed("k", a.K.Params())...)
	ps = append(ps, nn.Prefixed("v", a.V.Params())...)
	ps = append(ps, nn.Prefixed("o", a.O.Params())...)
	if a.Prefix != nil {
		ps = append(ps, nn.Prefixed("prefix", a.Prefix.Params())...)
	}
	return ps
}

// SetFrozen freezes or unfreezes the base projections. Prefix
// parameters are adapter parameters and remain trainable.
func (a *Attention) SetFrozen(frozen bool) {
	a.Q.SetFrozen(frozen)
	a.K.SetFrozen(frozen)
	a.V.SetFrozen(frozen)
	a.O.SetFrozen(frozen)
}

// gatherHead copies rows [rowOff, rowOff+rows) of head h from a
// (*, dim) tensor into dst (rows*headDim floats).
func (a *Attention) gatherHead(src *tensor.Tensor, rowOff, h, rows int, dst []float32) {
	dim := a.heads * a.headDim
	for t := 0; t < rows; t++ {
		row := src.Data()[(rowOff+t)*dim+h*a.headDim:]
		copy(dst[t*a.headDim:(t+1)*a.headDim], row[:a.headDim])
	}
}

// scatterHeadCopy writes src (rows*headDim floats) into head h at rows
// [rowOff, rowOff+rows) of dst.
func (a *Attention) scatterHeadCopy(dst *tensor.Tensor, rowOff, h, rows int, src []float32) {
	dim := a.heads * a.headDim
	for t := 0; t < rows; t++ {
		out := dst.Data()[(rowOff+t)*dim+h*a.headDim:][:a.headDim]
		copy(out, src[t*a.headDim:(t+1)*a.headDim])
	}
}

// scatterHeadAdd accumulates src into head h at rows [rowOff,
// rowOff+rows) of dst.
func (a *Attention) scatterHeadAdd(dst *tensor.Tensor, rowOff, h, rows int, src []float32) {
	dim := a.heads * a.headDim
	for t := 0; t < rows; t++ {
		out := dst.Data()[(rowOff+t)*dim+h*a.headDim:][:a.headDim]
		in := src[t*a.headDim : (t+1)*a.headDim]
		for i, v := range in {
			out[i] += v
		}
	}
}

// applyRope rotates q/k rows in place; inverse applies the backward
// rotation.
func (a *Attention) applyRope(t *tensor.Tensor, batch, seq int, inverse bool) {
	dim := a.heads * a.headDim
	for b := 0; b < batch; b++ {
		for pos := 0; pos < seq; pos++ {
			row := t.Data()[(b*seq+pos)*dim : (b*seq+pos+1)*dim]
			for h := 0; h < a.heads; h++ {
				a.rope.apply(row[h*a.headDim:(h+1)*a.headDim], pos, inverse)
			}
		}
	}
}

// maskCausal adds a large negative value to entries of a (T, P+T) score
// matrix where query position i would attend to a real key position
// j > i. Prefix columns [0, P) are always visible.
func maskCausal(scores *tensor.Tensor, pLen int) {
	seq := scores.Dim(0)
	ext := scores.Dim(1)
	for i := 0; i < seq; i++ {
		row := scores.Data()[i*ext : (i+1)*ext]
		for j := pLen + i + 1; j < ext; j++ {
			row[j] += causalMask
		}
	}
}

// softmaxBackwardInPlace converts dp (gradient w.r.t. probabilities)
// into the gradient w.r.t. logits, given probabilities p:
// ds = p ∘ (dp - Σ_j dp_j p_j) rowwise.
func softmaxBackwardInPlace(dp, p *tensor.Tensor) {
	rows, cols := p.Dim(0), p.Dim(1)
	for r := 0; r < rows; r++ {
		pr := p.Data()[r*cols : (r+1)*cols]
		dpr := dp.Data()[r*cols : (r+1)*cols]
		var dot float64
		for c := 0; c < cols; c++ {
			dot += float64(dpr[c]) * float64(pr[c])
		}
		for c := 0; c < cols; c++ {
			dpr[c] = pr[c] * (dpr[c] - float32(dot))
		}
	}
}
