package model

import (
	"fmt"
	"math"
	"sync"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// causalMask is the additive logit penalty for future positions.
const causalMask = -1e9

// PrefixKV holds trainable per-block prefix key/value states
// (prefix-tuning, Li & Liang 2021). Every query position may attend to
// all prefix slots in addition to its causal past. Prefix states are
// adapter parameters: always trainable, never part of the base model.
type PrefixKV struct {
	K   nn.Param // (P, dim)
	V   nn.Param // (P, dim)
	Len int
}

// NewPrefixKV creates a prefix of p slots for hidden size dim.
func NewPrefixKV(rng *tensor.RNG, p, dim int) *PrefixKV {
	return &PrefixKV{
		K:   nn.NewParam("prefix_k", tensor.NewNormal(rng, 0.02, p, dim)),
		V:   nn.NewParam("prefix_v", tensor.NewNormal(rng, 0.02, p, dim)),
		Len: p,
	}
}

// Params returns the prefix parameters.
func (p *PrefixKV) Params() []nn.Param {
	return []nn.Param{p.K, p.V}
}

// Attention is causal multi-head self-attention. Its four projections
// are nn.Op values so adapters (LoRA) can wrap any of them without the
// attention code knowing, and an optional PrefixKV implements
// prefix-tuning.
type Attention struct {
	Q, K, V, O nn.Op
	Prefix     *PrefixKV // nil unless prefix-tuning is attached

	heads   int
	headDim int
	rope    *ropeTable // nil for OPT-style learned positions

	// scratch is the step-scoped buffer arena shared by the whole
	// model (and its shallow clones). nil degrades to allocation.
	scratch *tensor.Scratch
}

// AttnCache retains everything the attention backward pass needs.
type AttnCache struct {
	B, T int
	P    int // prefix length at forward time

	QC, KC, VC, OC any // projection caches

	// Post-RoPE projections, each (B*T, dim).
	QT, KT, VT *tensor.Tensor
	// Softmax probabilities, (B*heads*T, P+T).
	Probs *tensor.Tensor
	// Pre-projection context (B*T, dim), the O projection's input.
	// Retained so Backward can return it to the scratch arena; it
	// aliases the X held by OC, so Bytes does not count it twice.
	Ctx *tensor.Tensor
}

// Bytes reports retained activation size.
func (c *AttnCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	b := nn.CacheBytes(c.QC) + nn.CacheBytes(c.KC) + nn.CacheBytes(c.VC) + nn.CacheBytes(c.OC)
	for _, t := range []*tensor.Tensor{c.QT, c.KT, c.VT, c.Probs} {
		if t != nil {
			b += t.Bytes()
		}
	}
	return b
}

// newAttention builds the attention module for cfg with plain Linear
// projections.
func newAttention(rng *tensor.RNG, cfg Config) *Attention {
	a := &Attention{
		Q:       nn.NewLinear(rng.Split(), cfg.Dim, cfg.Dim, cfg.HasBias()),
		K:       nn.NewLinear(rng.Split(), cfg.Dim, cfg.Dim, cfg.HasBias()),
		V:       nn.NewLinear(rng.Split(), cfg.Dim, cfg.Dim, cfg.HasBias()),
		O:       nn.NewLinear(rng.Split(), cfg.Dim, cfg.Dim, cfg.HasBias()),
		heads:   cfg.Heads,
		headDim: cfg.HeadDim(),
	}
	if cfg.Family == FamilyLlama {
		a.rope = newRopeTable(cfg.MaxSeq, cfg.HeadDim())
	}
	return a
}

func (a *Attention) prefixLen() int {
	if a.Prefix == nil {
		return 0
	}
	return a.Prefix.Len
}

// errCollector records the first error raised by any worker of a
// parallel region.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (e *errCollector) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

// Forward computes attention over x of shape (B*T, dim). When withGrad
// is false no cache is produced (no-grad forward).
//
// The per-(batch, head) bodies are independent — each one reads shared
// projections and writes a disjoint slice of ctx/probs — so they fan
// out over the tensor worker pool. Every float is still produced by
// exactly the same instruction sequence as the serial loop, so results
// are bit-identical at any parallelism.
func (a *Attention) Forward(x *tensor.Tensor, batch, seq int, withGrad bool) (*tensor.Tensor, *AttnCache, error) {
	dim := a.heads * a.headDim
	if x.Rank() != 2 || x.Dim(0) != batch*seq || x.Dim(1) != dim {
		return nil, nil, fmt.Errorf("attention: input %v for batch %d seq %d dim %d: %w",
			x.Shape(), batch, seq, dim, tensor.ErrShape)
	}
	q, qc, err := a.Q.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("attention q: %w", err)
	}
	k, kc, err := a.K.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("attention k: %w", err)
	}
	v, vc, err := a.V.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("attention v: %w", err)
	}
	if a.rope != nil {
		a.applyRope(q, batch, seq, false)
		a.applyRope(k, batch, seq, false)
	}

	pLen := a.prefixLen()
	ext := pLen + seq
	sc := a.scratch
	ctx := sc.Get(batch*seq, dim)
	var probs *tensor.Tensor
	if withGrad {
		probs = sc.Get(batch*a.heads*seq, ext)
	}
	scale := float32(1.0 / math.Sqrt(float64(a.headDim)))

	var ec errCollector
	tensor.ParallelFor(batch*a.heads, 1, func(lo, hi int) {
		qh := sc.Get(seq, a.headDim)
		khExt := sc.Get(ext, a.headDim)
		vhExt := sc.Get(ext, a.headDim)
		scores := sc.Get(seq, ext)
		outh := sc.Get(seq, a.headDim)
		defer sc.Put(qh, khExt, vhExt, scores, outh)
		for u := lo; u < hi; u++ {
			b, h := u/a.heads, u%a.heads
			a.gatherHead(q, b*seq, h, seq, qh.Data())
			if pLen > 0 {
				a.gatherHead(a.Prefix.K.Value, 0, h, pLen, khExt.Data()[:pLen*a.headDim])
				a.gatherHead(a.Prefix.V.Value, 0, h, pLen, vhExt.Data()[:pLen*a.headDim])
			}
			a.gatherHead(k, b*seq, h, seq, khExt.Data()[pLen*a.headDim:])
			a.gatherHead(v, b*seq, h, seq, vhExt.Data()[pLen*a.headDim:])
			if err := tensor.MatMulT(scores, qh, khExt); err != nil {
				ec.set(fmt.Errorf("attention scores: %w", err))
				return
			}
			scores.Scale(scale)
			maskCausal(scores, pLen)
			if err := tensor.SoftmaxRows(scores, scores); err != nil {
				ec.set(fmt.Errorf("attention softmax: %w", err))
				return
			}
			if probs != nil {
				off := (b*a.heads + h) * seq * ext
				copy(probs.Data()[off:off+seq*ext], scores.Data())
			}
			if err := tensor.MatMul(outh, scores, vhExt); err != nil {
				ec.set(fmt.Errorf("attention context: %w", err))
				return
			}
			a.scatterHeadCopy(ctx, b*seq, h, seq, outh.Data())
		}
	})
	if ec.err != nil {
		sc.Put(ctx, probs)
		return nil, nil, ec.err
	}

	y, oc, err := a.O.Apply(ctx, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("attention o: %w", err)
	}
	if !withGrad {
		// Without a cache the projections die with the head loop.
		sc.Put(ctx, q, k, v)
		return y, nil, nil
	}
	return y, &AttnCache{
		B: batch, T: seq, P: pLen,
		QC: qc, KC: kc, VC: vc, OC: oc,
		QT: q, KT: k, VT: v, Probs: probs, Ctx: ctx,
	}, nil
}

// attnBwdBufs is the per-worker buffer set of the backward head loop.
type attnBwdBufs struct {
	qh, khExt, vhExt   *tensor.Tensor
	douth, dqh, dkhExt *tensor.Tensor
	dvhExt, dp, p      *tensor.Tensor
}

// Backward propagates dy of shape (B*T, dim) through the attention.
// The cache is consumed: its retained activations are returned to the
// scratch arena, so Backward can only run once per Forward.
func (a *Attention) Backward(cache *AttnCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.Probs == nil {
		return nil, fmt.Errorf("attention backward: no cached activations")
	}
	if cache.P != a.prefixLen() {
		return nil, fmt.Errorf("attention backward: prefix length changed since forward (%d -> %d)",
			cache.P, a.prefixLen())
	}
	batch, seq, pLen := cache.B, cache.T, cache.P
	ext := pLen + seq
	dim := a.heads * a.headDim
	sc := a.scratch

	dctx, err := a.O.Grad(cache.OC, dy)
	if err != nil {
		return nil, fmt.Errorf("attention o backward: %w", err)
	}
	sc.Put(cache.Ctx)
	cache.Ctx = nil

	dq := sc.Get(batch*seq, dim)
	dk := sc.Get(batch*seq, dim)
	dv := sc.Get(batch*seq, dim)
	scale := float32(1.0 / math.Sqrt(float64(a.headDim)))

	headBackward := func(b, h int, bufs *attnBwdBufs) error {
		a.gatherHead(cache.QT, b*seq, h, seq, bufs.qh.Data())
		if pLen > 0 {
			a.gatherHead(a.Prefix.K.Value, 0, h, pLen, bufs.khExt.Data()[:pLen*a.headDim])
			a.gatherHead(a.Prefix.V.Value, 0, h, pLen, bufs.vhExt.Data()[:pLen*a.headDim])
		}
		a.gatherHead(cache.KT, b*seq, h, seq, bufs.khExt.Data()[pLen*a.headDim:])
		a.gatherHead(cache.VT, b*seq, h, seq, bufs.vhExt.Data()[pLen*a.headDim:])
		a.gatherHead(dctx, b*seq, h, seq, bufs.douth.Data())
		off := (b*a.heads + h) * seq * ext
		copy(bufs.p.Data(), cache.Probs.Data()[off:off+seq*ext])

		// dP = dOut @ Vᵀ ; dV = Pᵀ @ dOut
		if err := tensor.MatMulT(bufs.dp, bufs.douth, bufs.vhExt); err != nil {
			return fmt.Errorf("attention dP: %w", err)
		}
		bufs.dvhExt.Zero()
		if err := tensor.MatMulTAccum(bufs.dvhExt, bufs.p, bufs.douth); err != nil {
			return fmt.Errorf("attention dV: %w", err)
		}
		// dS = P ∘ (dP - rowsum(dP∘P)); scale by 1/√hd.
		softmaxBackwardInPlace(bufs.dp, bufs.p)
		bufs.dp.Scale(scale)
		// dQ = dS @ K ; dK = dSᵀ @ Q
		if err := tensor.MatMul(bufs.dqh, bufs.dp, bufs.khExt); err != nil {
			return fmt.Errorf("attention dQ: %w", err)
		}
		bufs.dkhExt.Zero()
		if err := tensor.MatMulTAccum(bufs.dkhExt, bufs.dp, bufs.qh); err != nil {
			return fmt.Errorf("attention dK: %w", err)
		}
		if pLen > 0 {
			a.scatterHeadAdd(a.Prefix.K.Grad, 0, h, pLen, bufs.dkhExt.Data()[:pLen*a.headDim])
			a.scatterHeadAdd(a.Prefix.V.Grad, 0, h, pLen, bufs.dvhExt.Data()[:pLen*a.headDim])
		}
		a.scatterHeadCopy(dq, b*seq, h, seq, bufs.dqh.Data())
		a.scatterHeadCopy(dk, b*seq, h, seq, bufs.dkhExt.Data()[pLen*a.headDim:])
		a.scatterHeadCopy(dv, b*seq, h, seq, bufs.dvhExt.Data()[pLen*a.headDim:])
		return nil
	}

	// Without a prefix every (batch, head) body is independent and the
	// fan-out is flat. With a prefix, all batches of one head
	// accumulate into the same prefix-gradient columns, so the unit of
	// parallelism becomes the head and batches run in ascending order
	// inside it — the exact accumulation order of the serial loop.
	units := batch * a.heads
	perHead := pLen > 0
	if perHead {
		units = a.heads
	}
	var ec errCollector
	tensor.ParallelFor(units, 1, func(lo, hi int) {
		bufs := &attnBwdBufs{
			qh:     sc.Get(seq, a.headDim),
			khExt:  sc.Get(ext, a.headDim),
			vhExt:  sc.Get(ext, a.headDim),
			douth:  sc.Get(seq, a.headDim),
			dqh:    sc.Get(seq, a.headDim),
			dkhExt: sc.Get(ext, a.headDim),
			dvhExt: sc.Get(ext, a.headDim),
			dp:     sc.Get(seq, ext),
			p:      sc.Get(seq, ext),
		}
		defer sc.Put(bufs.qh, bufs.khExt, bufs.vhExt, bufs.douth,
			bufs.dqh, bufs.dkhExt, bufs.dvhExt, bufs.dp, bufs.p)
		for u := lo; u < hi; u++ {
			if perHead {
				for b := 0; b < batch; b++ {
					if err := headBackward(b, u, bufs); err != nil {
						ec.set(err)
						return
					}
				}
			} else if err := headBackward(u/a.heads, u%a.heads, bufs); err != nil {
				ec.set(err)
				return
			}
		}
	})
	sc.Put(dctx, cache.Probs, cache.QT, cache.KT, cache.VT)
	cache.Probs, cache.QT, cache.KT, cache.VT = nil, nil, nil, nil
	if ec.err != nil {
		sc.Put(dq, dk, dv)
		return nil, ec.err
	}

	if a.rope != nil {
		a.applyRope(dq, batch, seq, true)
		a.applyRope(dk, batch, seq, true)
	}

	dxq, err := a.Q.Grad(cache.QC, dq)
	if err != nil {
		return nil, fmt.Errorf("attention q backward: %w", err)
	}
	dxk, err := a.K.Grad(cache.KC, dk)
	if err != nil {
		return nil, fmt.Errorf("attention k backward: %w", err)
	}
	dxv, err := a.V.Grad(cache.VC, dv)
	if err != nil {
		return nil, fmt.Errorf("attention v backward: %w", err)
	}
	sc.Put(dq, dk, dv)
	if err := tensor.Add(dxq, dxq, dxk); err != nil {
		return nil, fmt.Errorf("attention dx sum: %w", err)
	}
	if err := tensor.Add(dxq, dxq, dxv); err != nil {
		return nil, fmt.Errorf("attention dx sum: %w", err)
	}
	sc.Put(dxk, dxv)
	return dxq, nil
}

// Params returns trainable parameters across the four projections and
// the prefix (when attached).
func (a *Attention) Params() []nn.Param {
	var ps []nn.Param
	ps = append(ps, nn.Prefixed("q", a.Q.Params())...)
	ps = append(ps, nn.Prefixed("k", a.K.Params())...)
	ps = append(ps, nn.Prefixed("v", a.V.Params())...)
	ps = append(ps, nn.Prefixed("o", a.O.Params())...)
	if a.Prefix != nil {
		ps = append(ps, nn.Prefixed("prefix", a.Prefix.Params())...)
	}
	return ps
}

// SetFrozen freezes or unfreezes the base projections. Prefix
// parameters are adapter parameters and remain trainable.
func (a *Attention) SetFrozen(frozen bool) {
	a.Q.SetFrozen(frozen)
	a.K.SetFrozen(frozen)
	a.V.SetFrozen(frozen)
	a.O.SetFrozen(frozen)
}

// gatherHead copies rows [rowOff, rowOff+rows) of head h from a
// (*, dim) tensor into dst (rows*headDim floats).
func (a *Attention) gatherHead(src *tensor.Tensor, rowOff, h, rows int, dst []float32) {
	dim := a.heads * a.headDim
	for t := 0; t < rows; t++ {
		row := src.Data()[(rowOff+t)*dim+h*a.headDim:]
		copy(dst[t*a.headDim:(t+1)*a.headDim], row[:a.headDim])
	}
}

// scatterHeadCopy writes src (rows*headDim floats) into head h at rows
// [rowOff, rowOff+rows) of dst.
func (a *Attention) scatterHeadCopy(dst *tensor.Tensor, rowOff, h, rows int, src []float32) {
	dim := a.heads * a.headDim
	for t := 0; t < rows; t++ {
		out := dst.Data()[(rowOff+t)*dim+h*a.headDim:][:a.headDim]
		copy(out, src[t*a.headDim:(t+1)*a.headDim])
	}
}

// scatterHeadAdd accumulates src into head h at rows [rowOff,
// rowOff+rows) of dst.
func (a *Attention) scatterHeadAdd(dst *tensor.Tensor, rowOff, h, rows int, src []float32) {
	dim := a.heads * a.headDim
	for t := 0; t < rows; t++ {
		out := dst.Data()[(rowOff+t)*dim+h*a.headDim:][:a.headDim]
		in := src[t*a.headDim : (t+1)*a.headDim]
		for i, v := range in {
			out[i] += v
		}
	}
}

// applyRope rotates q/k rows in place; inverse applies the backward
// rotation. Rows are independent, so they fan out over the pool.
func (a *Attention) applyRope(t *tensor.Tensor, batch, seq int, inverse bool) {
	dim := a.heads * a.headDim
	grain := 1
	if dim > 0 {
		if grain = (1 << 14) / dim; grain < 1 {
			grain = 1
		}
	}
	tensor.ParallelFor(batch*seq, grain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			pos := r % seq
			row := t.Data()[r*dim : (r+1)*dim]
			for h := 0; h < a.heads; h++ {
				a.rope.apply(row[h*a.headDim:(h+1)*a.headDim], pos, inverse)
			}
		}
	})
}

// maskCausal adds a large negative value to entries of a (T, P+T) score
// matrix where query position i would attend to a real key position
// j > i. Prefix columns [0, P) are always visible.
func maskCausal(scores *tensor.Tensor, pLen int) {
	seq := scores.Dim(0)
	ext := scores.Dim(1)
	for i := 0; i < seq; i++ {
		row := scores.Data()[i*ext : (i+1)*ext]
		for j := pLen + i + 1; j < ext; j++ {
			row[j] += causalMask
		}
	}
}

// softmaxBackwardInPlace converts dp (gradient w.r.t. probabilities)
// into the gradient w.r.t. logits, given probabilities p:
// ds = p ∘ (dp - Σ_j dp_j p_j) rowwise.
func softmaxBackwardInPlace(dp, p *tensor.Tensor) {
	rows, cols := p.Dim(0), p.Dim(1)
	for r := 0; r < rows; r++ {
		pr := p.Data()[r*cols : (r+1)*cols]
		dpr := dp.Data()[r*cols : (r+1)*cols]
		var dot float64
		for c := 0; c < cols; c++ {
			dot += float64(dpr[c]) * float64(pr[c])
		}
		for c := 0; c < cols; c++ {
			dpr[c] = pr[c] * (dpr[c] - float32(dot))
		}
	}
}
