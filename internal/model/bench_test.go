package model

import (
	"testing"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// BenchmarkAttention measures one multi-head attention forward+backward
// at a shape big enough to exercise the per-(batch,head) fan-out.
func BenchmarkAttention(b *testing.B) {
	cfg := Config{
		Name: "bench", Family: FamilyOPT,
		Vocab: 96, Dim: 256, Layers: 2, Heads: 8, FFN: 512, MaxSeq: 128,
	}
	rng := tensor.NewRNG(1)
	attn := newAttention(rng, cfg)
	// Wire up the arena exactly as a block inside a model would, and
	// release the outputs the way Block.Forward/Backward do, so the
	// bench measures the steady-state reuse path.
	sc := tensor.NewScratch()
	attn.scratch = sc
	setOpScratch(sc, attn.Q, attn.K, attn.V, attn.O)
	batch, seq := 4, 64
	x := tensor.NewNormal(tensor.NewRNG(2), 0.5, batch*seq, cfg.Dim)
	dy := tensor.NewNormal(tensor.NewRNG(3), 0.1, batch*seq, cfg.Dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, cache, err := attn.Forward(x, batch, seq, true)
		if err != nil {
			b.Fatal(err)
		}
		dx, err := attn.Backward(cache, dy)
		if err != nil {
			b.Fatal(err)
		}
		sc.Put(y, dx)
	}
}

// BenchmarkTrainStep measures one full local fine-tuning step of
// OPTTiny (forward, backward, Adam update, grad zeroing). Its B/op is
// the steady-state allocation figure quoted in docs/PERFORMANCE.md.
func BenchmarkTrainStep(b *testing.B) {
	m, err := New(tensor.NewRNG(7), OPTTiny())
	if err != nil {
		b.Fatal(err)
	}
	opt := nn.NewAdam(1e-3)
	params := m.Params()
	batch, seq := 4, 32
	rng := tensor.NewRNG(9)
	ids := make([]int, batch*seq)
	targets := make([]int, batch*seq)
	for i := range ids {
		ids[i] = rng.Intn(OPTTiny().Vocab)
		targets[i] = rng.Intn(OPTTiny().Vocab)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.LossAndGrad(ids, targets, batch, seq); err != nil {
			b.Fatal(err)
		}
		if err := opt.Step(params); err != nil {
			b.Fatal(err)
		}
		nn.ZeroGrads(params)
	}
}
