package model

import (
	"fmt"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// Block is one pre-norm transformer block:
//
//	x = x + Attn(Norm1(x))
//	x = x + FFN(Norm2(x))
type Block struct {
	Norm1 nn.Op
	Attn  *Attention
	Norm2 nn.Op
	FFN   *FFN

	scratch *tensor.Scratch // step-scoped buffer arena; nil degrades to allocation
}

// BlockCache retains one block's intermediate results. Its Bytes()
// value is the block's contribution to the 𝕀 term.
type BlockCache struct {
	Norm1C any
	AttnC  *AttnCache
	Norm2C any
	FFNC   *FFNCache

	// H is the first residual sum (the Norm2 input). It aliases the X
	// held by Norm2C — retained separately so Backward can return it
	// to the scratch arena; Bytes does not count it twice.
	H *tensor.Tensor

	// N1 and N2 are the norm outputs (the attention and FFN inputs).
	// They alias the X fields of the projection caches inside AttnC and
	// FFNC — retained separately so Backward can return them to the
	// scratch arena once those sub-backwards have consumed them; Bytes
	// does not count them again.
	N1, N2 *tensor.Tensor
}

// Bytes reports retained activation size.
func (c *BlockCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return nn.CacheBytes(c.Norm1C) + c.AttnC.Bytes() + nn.CacheBytes(c.Norm2C) + c.FFNC.Bytes()
}

// NewBlock constructs a block for cfg with freshly initialized weights.
func NewBlock(rng *tensor.RNG, cfg Config) *Block {
	b := &Block{
		Attn: newAttention(rng, cfg),
		FFN:  newFFN(rng, cfg),
	}
	if cfg.Family == FamilyOPT {
		b.Norm1 = nn.NewLayerNorm(cfg.Dim)
		b.Norm2 = nn.NewLayerNorm(cfg.Dim)
	} else {
		b.Norm1 = nn.NewRMSNorm(cfg.Dim)
		b.Norm2 = nn.NewRMSNorm(cfg.Dim)
	}
	return b
}

// Forward runs the block over x (B*T, dim).
func (b *Block) Forward(x *tensor.Tensor, batch, seq int, withGrad bool) (*tensor.Tensor, *BlockCache, error) {
	var cache *BlockCache
	if withGrad {
		cache = &BlockCache{}
	}

	sc := b.scratch
	n1, n1c, err := b.Norm1.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("block norm1: %w", err)
	}
	attnOut, attnC, err := b.Attn.Forward(n1, batch, seq, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("block attn: %w", err)
	}
	if !withGrad {
		sc.Put(n1)
	}
	h := sc.Get(x.Shape()...)
	if err := tensor.Add(h, x, attnOut); err != nil {
		return nil, nil, fmt.Errorf("block residual 1: %w", err)
	}
	sc.Put(attnOut)

	n2, n2c, err := b.Norm2.Apply(h, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("block norm2: %w", err)
	}
	ffnOut, ffnC, err := b.FFN.Forward(n2, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("block ffn: %w", err)
	}
	if !withGrad {
		sc.Put(n2)
	}
	y := sc.Get(h.Shape()...)
	if err := tensor.Add(y, h, ffnOut); err != nil {
		return nil, nil, fmt.Errorf("block residual 2: %w", err)
	}
	sc.Put(ffnOut)

	if cache != nil {
		cache.Norm1C, cache.AttnC, cache.Norm2C, cache.FFNC = n1c, attnC, n2c, ffnC
		cache.H = h
		cache.N1, cache.N2 = n1, n2
	} else {
		sc.Put(h)
	}
	return y, cache, nil
}

// Backward propagates dy through the block.
func (b *Block) Backward(cache *BlockCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil {
		return nil, fmt.Errorf("block backward: no cached activations")
	}
	sc := b.scratch
	// y = h + FFN(Norm2(h)): dh = dy + Norm2ᵀ(FFNᵀ(dy))
	dffn, err := b.FFN.Backward(cache.FFNC, dy)
	if err != nil {
		return nil, fmt.Errorf("block ffn backward: %w", err)
	}
	dn2, err := b.Norm2.Grad(cache.Norm2C, dffn)
	if err != nil {
		return nil, fmt.Errorf("block norm2 backward: %w", err)
	}
	// N2 (the FFN input) was last read by the FFN's projection
	// backwards; H (the Norm2 input) by Norm2.Grad just above.
	sc.Put(dffn, cache.H, cache.N2)
	cache.H, cache.N2 = nil, nil
	dh := sc.Get(dy.Shape()...)
	if err := tensor.Add(dh, dy, dn2); err != nil {
		return nil, fmt.Errorf("block residual 2 backward: %w", err)
	}
	sc.Put(dn2)

	// h = x + Attn(Norm1(x)): dx = dh + Norm1ᵀ(Attnᵀ(dh))
	dattn, err := b.Attn.Backward(cache.AttnC, dh)
	if err != nil {
		return nil, fmt.Errorf("block attn backward: %w", err)
	}
	dn1, err := b.Norm1.Grad(cache.Norm1C, dattn)
	if err != nil {
		return nil, fmt.Errorf("block norm1 backward: %w", err)
	}
	// N1 (the attention input) was last read by the Q/K/V projection
	// backwards inside Attn.Backward.
	sc.Put(dattn, cache.N1)
	cache.N1 = nil
	dx := sc.Get(dy.Shape()...)
	if err := tensor.Add(dx, dh, dn1); err != nil {
		return nil, fmt.Errorf("block residual 1 backward: %w", err)
	}
	sc.Put(dh, dn1)
	return dx, nil
}

// Params returns the block's trainable parameters.
func (b *Block) Params() []nn.Param {
	var ps []nn.Param
	ps = append(ps, nn.Prefixed("norm1", b.Norm1.Params())...)
	ps = append(ps, nn.Prefixed("attn", b.Attn.Params())...)
	ps = append(ps, nn.Prefixed("norm2", b.Norm2.Params())...)
	ps = append(ps, nn.Prefixed("ffn", b.FFN.Params())...)
	return ps
}

// SetFrozen freezes or unfreezes the block's base parameters. Adapter
// parameters wrapped around projections are unaffected (adapters manage
// their own trainability).
func (b *Block) SetFrozen(frozen bool) {
	b.Norm1.SetFrozen(frozen)
	b.Attn.SetFrozen(frozen)
	b.Norm2.SetFrozen(frozen)
	b.FFN.SetFrozen(frozen)
}
