package model

// Structural cloning for base-model sharing (§3.1, Fig. 2).
//
// A shallow clone creates new structure objects (Block, Attention, FFN)
// whose operator fields reference the *same* parameter-bearing layers
// as the original. Parameters therefore exist once in memory, while
// each clone's structure can be independently modified — adapters
// wrap a clone's projection slots without affecting the original or
// any sibling clone. This is exactly the paper's "separate the model
// parameters from the model structure".

// ShallowClone returns a structurally independent copy of the block
// that shares every parameter-bearing operator with b. Any attached
// prefix adapter is not carried over: clones start pristine.
func (b *Block) ShallowClone() *Block {
	return &Block{
		Norm1:   b.Norm1,
		Attn:    b.Attn.ShallowClone(),
		Norm2:   b.Norm2,
		FFN:     b.FFN.ShallowClone(),
		scratch: b.scratch, // arena is mutex-guarded, safe to share
	}
}

// ShallowClone returns a new Attention sharing the projection operators
// but owning its own (initially empty) prefix slot.
func (a *Attention) ShallowClone() *Attention {
	return &Attention{
		Q:       a.Q,
		K:       a.K,
		V:       a.V,
		O:       a.O,
		heads:   a.heads,
		headDim: a.headDim,
		rope:    a.rope,    // read-only table, safe to share
		scratch: a.scratch, // arena is mutex-guarded, safe to share
	}
}

// ShallowClone returns a new FFN sharing the projection operators.
func (f *FFN) ShallowClone() *FFN {
	return &FFN{
		family:  f.family,
		Up:      f.Up,
		Down:    f.Down,
		Gate:    f.Gate,
		scratch: f.scratch, // arena is mutex-guarded, safe to share
	}
}

// ShallowCloneBlocks clones a slice of blocks.
func ShallowCloneBlocks(blocks []*Block) []*Block {
	out := make([]*Block, len(blocks))
	for i, b := range blocks {
		out[i] = b.ShallowClone()
	}
	return out
}
