// Package model implements decoder-only transformer language models in
// two flavours — OPT-style (LayerNorm, learned positions, GELU FFN,
// biased projections) and Llama-style (RMSNorm, rotary positions,
// SwiGLU FFN, bias-free) — together with the topological three-way
// split of §2.2: an input section and output section that live on the
// client, and the body of transformer blocks that lives on the server.
//
// Full-size configurations (OPT-1.3B, Llama 2-7B) exist as shape
// specifications for the analytic memory model; tiny configurations are
// actually instantiated and trained.
package model

import (
	"errors"
	"fmt"
)

// Family selects the architectural flavour of a transformer.
type Family int

// Transformer families.
const (
	FamilyOPT   Family = iota + 1 // LayerNorm, learned positions, GELU, biases
	FamilyLlama                   // RMSNorm, RoPE, SwiGLU, no biases
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilyOPT:
		return "opt"
	case FamilyLlama:
		return "llama"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// ErrConfig is returned (wrapped) for invalid model configurations.
var ErrConfig = errors.New("model: invalid config")

// Config describes a decoder-only transformer.
type Config struct {
	Name   string
	Family Family

	Vocab  int // vocabulary size
	Dim    int // hidden size
	Layers int // number of transformer blocks
	Heads  int // attention heads; Dim must be divisible by Heads
	FFN    int // feed-forward inner dimension
	MaxSeq int // maximum sequence length (position table size for OPT)
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	switch {
	case c.Family != FamilyOPT && c.Family != FamilyLlama:
		return fmt.Errorf("%w: unknown family %d", ErrConfig, int(c.Family))
	case c.Vocab <= 0:
		return fmt.Errorf("%w: vocab %d", ErrConfig, c.Vocab)
	case c.Dim <= 0:
		return fmt.Errorf("%w: dim %d", ErrConfig, c.Dim)
	case c.Layers <= 1:
		return fmt.Errorf("%w: need at least 2 layers to split, got %d", ErrConfig, c.Layers)
	case c.Heads <= 0 || c.Dim%c.Heads != 0:
		return fmt.Errorf("%w: dim %d not divisible by heads %d", ErrConfig, c.Dim, c.Heads)
	case c.FFN <= 0:
		return fmt.Errorf("%w: ffn %d", ErrConfig, c.FFN)
	case c.MaxSeq <= 0:
		return fmt.Errorf("%w: maxseq %d", ErrConfig, c.MaxSeq)
	}
	if c.Family == FamilyLlama && c.Dim/c.Heads%2 != 0 {
		return fmt.Errorf("%w: head dim %d must be even for RoPE", ErrConfig, c.Dim/c.Heads)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.Dim / c.Heads }

// HasBias reports whether linear layers carry biases (OPT-style).
func (c Config) HasBias() bool { return c.Family == FamilyOPT }

// BlockParams returns the parameter count of one transformer block.
func (c Config) BlockParams() int64 {
	d, f := int64(c.Dim), int64(c.FFN)
	var p int64
	// Attention: 4 projections d×d.
	p += 4 * d * d
	if c.Family == FamilyOPT {
		// Biases on the 4 projections + 2 FFN linears, 2 LayerNorms
		// (gamma+beta), FFN: up d×f + down f×d.
		p += 4 * d
		p += d*f + f + f*d + d
		p += 2 * 2 * d
	} else {
		// SwiGLU: gate d×f, up d×f, down f×d; 2 RMSNorms (gamma).
		p += 3 * d * f
		p += 2 * d
	}
	return p
}

// EmbeddingParams returns the parameter count of the token (and, for
// OPT, position) embeddings.
func (c Config) EmbeddingParams() int64 {
	p := int64(c.Vocab) * int64(c.Dim)
	if c.Family == FamilyOPT {
		p += int64(c.MaxSeq) * int64(c.Dim)
	}
	return p
}

// HeadParams returns the parameter count of the output head (final norm
// + LM projection).
func (c Config) HeadParams() int64 {
	p := int64(c.Vocab) * int64(c.Dim) // LM head
	if c.Family == FamilyOPT {
		p += 2 * int64(c.Dim) // final LayerNorm
	} else {
		p += int64(c.Dim) // final RMSNorm
	}
	return p
}

// TotalParams returns the full model parameter count.
func (c Config) TotalParams() int64 {
	return c.EmbeddingParams() + int64(c.Layers)*c.BlockParams() + c.HeadParams()
}

// OPT1_3B returns the shape of OPT with 1.3 billion parameters, one of
// the paper's two evaluation models. Do not instantiate; use with the
// analytic memory model.
func OPT1_3B() Config {
	return Config{
		Name:   "opt-1.3b",
		Family: FamilyOPT,
		Vocab:  50272,
		Dim:    2048,
		Layers: 24,
		Heads:  32,
		FFN:    8192,
		MaxSeq: 2048,
	}
}

// Llama2_7B returns the shape of Llama 2 with 7 billion parameters, the
// paper's large evaluation model. Do not instantiate; use with the
// analytic memory model.
func Llama2_7B() Config {
	return Config{
		Name:   "llama2-7b",
		Family: FamilyLlama,
		Vocab:  32000,
		Dim:    4096,
		Layers: 32,
		Heads:  32,
		FFN:    11008,
		MaxSeq: 4096,
	}
}

// OPTTiny returns a runnable OPT-flavoured model small enough to
// fine-tune on a CPU within a test.
func OPTTiny() Config {
	return Config{
		Name:   "opt-tiny",
		Family: FamilyOPT,
		Vocab:  96,
		Dim:    64,
		Layers: 4,
		Heads:  4,
		FFN:    256,
		MaxSeq: 128,
	}
}

// LlamaTiny returns a runnable Llama-flavoured model small enough to
// fine-tune on a CPU within a test.
func LlamaTiny() Config {
	return Config{
		Name:   "llama-tiny",
		Family: FamilyLlama,
		Vocab:  96,
		Dim:    64,
		Layers: 4,
		Heads:  4,
		FFN:    172,
		MaxSeq: 128,
	}
}

// Presets lists the named configurations recognized by ConfigByName.
func Presets() []Config {
	return []Config{OPT1_3B(), Llama2_7B(), OPTTiny(), LlamaTiny()}
}

// ConfigByName looks up a preset by its Name field.
func ConfigByName(name string) (Config, error) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("%w: unknown model %q", ErrConfig, name)
}
