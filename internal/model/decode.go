package model

import (
	"fmt"
	"math"

	"menos/internal/tensor"
)

// Incremental decoding with per-block KV caches: one forward pass per
// new token instead of re-running the whole window. The decode state
// is per-session inference memory — the inference-time analogue of the
// 𝕀 term Menos manages during training.

// DecodeState holds the KV caches of one autoregressive decoding
// session.
type DecodeState struct {
	model    *Transformer
	capacity int
	length   int
	// Per block: cached post-RoPE keys and values, each (capacity, dim)
	// with the first `length` rows valid.
	keys   []*tensor.Tensor
	values []*tensor.Tensor
}

// NewDecodeState allocates caches for up to capacity positions
// (capped at the model's MaxSeq).
func (t *Transformer) NewDecodeState(capacity int) (*DecodeState, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: decode capacity %d", ErrConfig, capacity)
	}
	if capacity > t.Cfg.MaxSeq {
		capacity = t.Cfg.MaxSeq
	}
	s := &DecodeState{
		model:    t,
		capacity: capacity,
		keys:     make([]*tensor.Tensor, len(t.Blocks)),
		values:   make([]*tensor.Tensor, len(t.Blocks)),
	}
	for i := range t.Blocks {
		s.keys[i] = tensor.New(capacity, t.Cfg.Dim)
		s.values[i] = tensor.New(capacity, t.Cfg.Dim)
	}
	return s, nil
}

// Len returns the number of cached positions.
func (s *DecodeState) Len() int { return s.length }

// Bytes returns the KV-cache footprint.
func (s *DecodeState) Bytes() int64 {
	var b int64
	for i := range s.keys {
		b += s.keys[i].Bytes() + s.values[i].Bytes()
	}
	return b
}

// Reset clears the cached context without reallocating.
func (s *DecodeState) Reset() { s.length = 0 }

// DecodeStep feeds one token through the model using the cached
// context and returns the next-token logits (a (1, vocab) tensor).
// The state must have free capacity.
func (t *Transformer) DecodeStep(s *DecodeState, tokenID int) (*tensor.Tensor, error) {
	if s == nil || s.model != t {
		return nil, fmt.Errorf("%w: decode state belongs to a different model", ErrConfig)
	}
	if s.length >= s.capacity {
		return nil, fmt.Errorf("%w: decode state full (%d positions)", ErrConfig, s.capacity)
	}
	if tokenID < 0 || tokenID >= t.Cfg.Vocab {
		return nil, fmt.Errorf("%w: token %d out of vocab", ErrConfig, tokenID)
	}
	pos := s.length

	x, err := t.Embed.Forward([]int{tokenID}, nil)
	if err != nil {
		return nil, fmt.Errorf("decode embed: %w", err)
	}
	if t.Pos != nil {
		pe, err := t.Pos.Forward([]int{pos}, nil)
		if err != nil {
			return nil, fmt.Errorf("decode positions: %w", err)
		}
		if err := tensor.Add(x, x, pe); err != nil {
			return nil, fmt.Errorf("decode position add: %w", err)
		}
	}

	for i, b := range t.Blocks {
		y, err := b.DecodeStep(x, pos, s.keys[i], s.values[i])
		if err != nil {
			return nil, fmt.Errorf("decode block %d: %w", i, err)
		}
		x = y
	}
	s.length++

	n, _, err := t.Norm.Apply(x, false)
	if err != nil {
		return nil, fmt.Errorf("decode norm: %w", err)
	}
	logits, err := t.LMHead.Forward(n, nil)
	if err != nil {
		return nil, fmt.Errorf("decode head: %w", err)
	}
	return logits, nil
}

// DecodeStep runs one block over a single-row x at position pos,
// appending this position's K/V to the caches. Exported so split
// runtimes can decode through arbitrary block slices.
func (b *Block) DecodeStep(x *tensor.Tensor, pos int, kCache, vCache *tensor.Tensor) (*tensor.Tensor, error) {
	n1, _, err := b.Norm1.Apply(x, false)
	if err != nil {
		return nil, fmt.Errorf("norm1: %w", err)
	}
	attnOut, err := b.Attn.decodeStep(n1, pos, kCache, vCache)
	if err != nil {
		return nil, fmt.Errorf("attn: %w", err)
	}
	h := tensor.New(x.Shape()...)
	if err := tensor.Add(h, x, attnOut); err != nil {
		return nil, fmt.Errorf("residual 1: %w", err)
	}
	n2, _, err := b.Norm2.Apply(h, false)
	if err != nil {
		return nil, fmt.Errorf("norm2: %w", err)
	}
	ffnOut, _, err := b.FFN.Forward(n2, false)
	if err != nil {
		return nil, fmt.Errorf("ffn: %w", err)
	}
	y := tensor.New(h.Shape()...)
	if err := tensor.Add(y, h, ffnOut); err != nil {
		return nil, fmt.Errorf("residual 2: %w", err)
	}
	return y, nil
}

// decodeStep computes attention for a single query row at position
// pos over the cached keys/values (plus any prefix adapter slots).
func (a *Attention) decodeStep(x *tensor.Tensor, pos int, kCache, vCache *tensor.Tensor) (*tensor.Tensor, error) {
	dim := a.heads * a.headDim
	q, _, err := a.Q.Apply(x, false)
	if err != nil {
		return nil, fmt.Errorf("q: %w", err)
	}
	k, _, err := a.K.Apply(x, false)
	if err != nil {
		return nil, fmt.Errorf("k: %w", err)
	}
	v, _, err := a.V.Apply(x, false)
	if err != nil {
		return nil, fmt.Errorf("v: %w", err)
	}
	if a.rope != nil {
		for h := 0; h < a.heads; h++ {
			a.rope.apply(q.Data()[h*a.headDim:(h+1)*a.headDim], pos, false)
			a.rope.apply(k.Data()[h*a.headDim:(h+1)*a.headDim], pos, false)
		}
	}
	copy(kCache.Data()[pos*dim:(pos+1)*dim], k.Data())
	copy(vCache.Data()[pos*dim:(pos+1)*dim], v.Data())

	pLen := a.prefixLen()
	ctxLen := pos + 1
	ext := pLen + ctxLen
	scale := 1.0 / math.Sqrt(float64(a.headDim))

	ctx := tensor.New(1, dim)
	scores := make([]float64, ext)
	for h := 0; h < a.heads; h++ {
		qh := q.Data()[h*a.headDim : (h+1)*a.headDim]
		// Scores over prefix slots then cached positions.
		for j := 0; j < ext; j++ {
			var keyRow []float32
			if j < pLen {
				keyRow = a.Prefix.K.Value.Data()[j*dim+h*a.headDim:][:a.headDim]
			} else {
				p := j - pLen
				keyRow = kCache.Data()[p*dim+h*a.headDim:][:a.headDim]
			}
			var dot float64
			for c := 0; c < a.headDim; c++ {
				dot += float64(qh[c]) * float64(keyRow[c])
			}
			scores[j] = dot * scale
		}
		softmaxInPlace(scores)
		out := ctx.Data()[h*a.headDim : (h+1)*a.headDim]
		for j := 0; j < ext; j++ {
			var valRow []float32
			if j < pLen {
				valRow = a.Prefix.V.Value.Data()[j*dim+h*a.headDim:][:a.headDim]
			} else {
				p := j - pLen
				valRow = vCache.Data()[p*dim+h*a.headDim:][:a.headDim]
			}
			w := float32(scores[j])
			for c := 0; c < a.headDim; c++ {
				out[c] += w * valRow[c]
			}
		}
	}
	y, _, err := a.O.Apply(ctx, false)
	if err != nil {
		return nil, fmt.Errorf("o: %w", err)
	}
	return y, nil
}

func softmaxInPlace(v []float64) {
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - maxV)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// GenerateFast is Generate using a KV cache: O(1) model work per token
// instead of re-running the full window. Output is identical to
// Generate for prompts within the state capacity.
func (t *Transformer) GenerateFast(rng *tensor.RNG, prompt []int, maxNew int, temperature float64) ([]int, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("%w: empty prompt", ErrConfig)
	}
	if temperature < 0 {
		return nil, fmt.Errorf("%w: negative temperature %v", ErrConfig, temperature)
	}
	need := len(prompt) + maxNew
	if need > t.Cfg.MaxSeq {
		return nil, fmt.Errorf("%w: %d tokens exceed MaxSeq %d (use Generate for windowed decoding)",
			ErrConfig, need, t.Cfg.MaxSeq)
	}
	state, err := t.NewDecodeState(need)
	if err != nil {
		return nil, err
	}
	seq := append([]int(nil), prompt...)
	var logits *tensor.Tensor
	for _, id := range prompt {
		logits, err = t.DecodeStep(state, id)
		if err != nil {
			return nil, err
		}
	}
	for step := 0; step < maxNew; step++ {
		next := sampleToken(rng, logits.Row(0), temperature)
		seq = append(seq, next)
		if step == maxNew-1 {
			break
		}
		logits, err = t.DecodeStep(state, next)
		if err != nil {
			return nil, err
		}
	}
	return seq, nil
}

// BodyDecodeState holds the KV caches for incremental decoding through
// a BodySection: the server-side inference state of a split decoding
// session. Its Bytes() footprint is what a Menos server reserves from
// the scheduler for the session's lifetime.
type BodyDecodeState struct {
	capacity int
	length   int
	keys     []*tensor.Tensor
	values   []*tensor.Tensor
}

// NewDecodeState allocates per-block caches for up to capacity
// positions of hidden size dim.
func (s *BodySection) NewDecodeState(capacity, dim int) (*BodyDecodeState, error) {
	if capacity <= 0 || dim <= 0 {
		return nil, fmt.Errorf("%w: decode capacity %d dim %d", ErrConfig, capacity, dim)
	}
	st := &BodyDecodeState{
		capacity: capacity,
		keys:     make([]*tensor.Tensor, len(s.blocks)),
		values:   make([]*tensor.Tensor, len(s.blocks)),
	}
	for i := range s.blocks {
		st.keys[i] = tensor.New(capacity, dim)
		st.values[i] = tensor.New(capacity, dim)
	}
	return st, nil
}

// Len returns the number of cached positions.
func (s *BodyDecodeState) Len() int { return s.length }

// Capacity returns the maximum cached positions.
func (s *BodyDecodeState) Capacity() int { return s.capacity }

// Bytes returns the KV-cache footprint.
func (s *BodyDecodeState) Bytes() int64 {
	var b int64
	for i := range s.keys {
		b += s.keys[i].Bytes() + s.values[i].Bytes()
	}
	return b
}

// DecodeStep advances the body by one position: x is the (1, dim)
// activation arriving from the client's input section at the next
// position; the return value is the (1, dim) activation for the
// client's output section.
func (s *BodySection) DecodeStep(x *tensor.Tensor, st *BodyDecodeState) (*tensor.Tensor, error) {
	if st == nil || len(st.keys) != len(s.blocks) {
		return nil, fmt.Errorf("%w: decode state does not match body", ErrConfig)
	}
	if st.length >= st.capacity {
		return nil, fmt.Errorf("%w: decode state full (%d positions)", ErrConfig, st.capacity)
	}
	if x.Rank() != 2 || x.Dim(0) != 1 {
		return nil, fmt.Errorf("%w: decode input %v, want (1, dim)", ErrConfig, x.Shape())
	}
	pos := st.length
	for i, b := range s.blocks {
		y, err := b.DecodeStep(x, pos, st.keys[i], st.values[i])
		if err != nil {
			return nil, fmt.Errorf("decode body block %d: %w", i, err)
		}
		x = y
	}
	st.length++
	return x, nil
}
