package model

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// trainSteps runs n Adam steps over fixed data and returns the loss of
// every step.
func trainSteps(t *testing.T, m *Transformer, n int) []float64 {
	t.Helper()
	opt := nn.NewAdam(1e-3)
	params := m.Params()
	batch, seq := 2, 16
	rng := tensor.NewRNG(11)
	ids := make([]int, batch*seq)
	targets := make([]int, batch*seq)
	for i := range ids {
		ids[i] = rng.Intn(m.Cfg.Vocab)
		targets[i] = rng.Intn(m.Cfg.Vocab)
	}
	losses := make([]float64, 0, n)
	for step := 0; step < n; step++ {
		res, err := m.LossAndGrad(ids, targets, batch, seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(params); err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(params)
		losses = append(losses, res.Loss)
	}
	return losses
}

// TestTrainingBitIdenticalAcrossParallelism is the determinism pin for
// the compute-plane overhaul: training the same model on the same data
// must produce byte-identical losses and weights whether the kernels
// run on one worker or eight. Partitioning work by output row is what
// makes this hold; any kernel change that reorders a reduction breaks
// this test.
func TestTrainingBitIdenticalAcrossParallelism(t *testing.T) {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)

	const steps = 3
	run := func(par int) (*Transformer, []float64) {
		tensor.SetParallelism(par)
		m, err := New(tensor.NewRNG(42), OPTTiny())
		if err != nil {
			t.Fatal(err)
		}
		return m, trainSteps(t, m, steps)
	}

	m1, loss1 := run(1)
	m8, loss8 := run(8)

	for i := range loss1 {
		if math.Float64bits(loss1[i]) != math.Float64bits(loss8[i]) {
			t.Fatalf("step %d loss differs: %v (serial) vs %v (parallel)", i, loss1[i], loss8[i])
		}
	}
	p1, p8 := m1.Params(), m8.Params()
	if len(p1) != len(p8) {
		t.Fatalf("param count differs: %d vs %d", len(p1), len(p8))
	}
	for i := range p1 {
		d1, d8 := p1[i].Value.Data(), p8[i].Value.Data()
		for j := range d1 {
			if math.Float32bits(d1[j]) != math.Float32bits(d8[j]) {
				t.Fatalf("param %q element %d differs after %d steps: %g vs %g",
					p1[i].Name, j, steps, d1[j], d8[j])
			}
		}
	}
}

// TestConcurrentTrainingStepsShareThePool hammers the shared worker
// pool from several goroutines, each training its own model. Run under
// -race (make test-race) this is the concurrency pin for the pool and
// the per-model scratch arenas.
func TestConcurrentTrainingStepsShareThePool(t *testing.T) {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)
	tensor.SetParallelism(4)

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			m, err := New(tensor.NewRNG(seed), OPTTiny())
			if err != nil {
				errs <- err
				return
			}
			opt := nn.NewAdam(1e-3)
			params := m.Params()
			batch, seq := 2, 8
			rng := tensor.NewRNG(seed + 100)
			ids := make([]int, batch*seq)
			targets := make([]int, batch*seq)
			for i := range ids {
				ids[i] = rng.Intn(m.Cfg.Vocab)
				targets[i] = rng.Intn(m.Cfg.Vocab)
			}
			for step := 0; step < 2; step++ {
				if _, err := m.LossAndGrad(ids, targets, batch, seq); err != nil {
					errs <- err
					return
				}
				if err := opt.Step(params); err != nil {
					errs <- err
					return
				}
				nn.ZeroGrads(params)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentNoGradForwardSharesArena drives concurrent no-grad
// evaluations through one shared model — the server's base-sharing
// pattern, where shallow clones share both parameters and the scratch
// arena. Under -race this pins the arena's internal synchronization
// and the get/put ownership discipline of the no-grad path.
func TestConcurrentNoGradForwardSharesArena(t *testing.T) {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)
	tensor.SetParallelism(4)

	m, err := New(tensor.NewRNG(5), OPTTiny())
	if err != nil {
		t.Fatal(err)
	}
	batch, seq := 2, 8
	rng := tensor.NewRNG(6)
	ids := make([]int, batch*seq)
	targets := make([]int, batch*seq)
	for i := range ids {
		ids[i] = rng.Intn(m.Cfg.Vocab)
		targets[i] = rng.Intn(m.Cfg.Vocab)
	}
	want, err := m.Loss(ids, targets, batch, seq)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got, err := m.Loss(ids, targets, batch, seq)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					errs <- fmt.Errorf("concurrent no-grad loss %v differs from serial %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
