package model

import (
	"fmt"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// FFN is the position-wise feed-forward network of a transformer
// block: GELU MLP for OPT, SwiGLU for Llama.
type FFN struct {
	family Family

	// OPT: Up -> GELU -> Down. Llama: (SiLU(Gate) ∘ Up) -> Down.
	Up   nn.Op
	Down nn.Op
	Gate nn.Op // Llama only

	scratch *tensor.Scratch // step-scoped buffer arena; nil degrades to allocation
}

// FFNCache retains FFN intermediates for the backward pass.
type FFNCache struct {
	UpC, DownC, GateC any
	Act               *nn.ActCache   // GELU input (OPT) or SiLU input (Llama)
	UpOut             *tensor.Tensor // Llama: up-projection output (for the gating product)
	SiluOut           *tensor.Tensor // Llama: SiLU(gate) output

	// Hidden is the Down projection's input (the GELU output for OPT,
	// the gating product for Llama). It aliases the X held by DownC —
	// retained separately so Backward can return it to the scratch
	// arena; Bytes does not count it twice.
	Hidden *tensor.Tensor
}

// Bytes reports retained activation size.
func (c *FFNCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	b := nn.CacheBytes(c.UpC) + nn.CacheBytes(c.DownC) + nn.CacheBytes(c.GateC) + c.Act.Bytes()
	if c.UpOut != nil {
		b += c.UpOut.Bytes()
	}
	if c.SiluOut != nil {
		b += c.SiluOut.Bytes()
	}
	return b
}

func newFFN(rng *tensor.RNG, cfg Config) *FFN {
	f := &FFN{
		family: cfg.Family,
		Up:     nn.NewLinear(rng.Split(), cfg.Dim, cfg.FFN, cfg.HasBias()),
		Down:   nn.NewLinear(rng.Split(), cfg.FFN, cfg.Dim, cfg.HasBias()),
	}
	if cfg.Family == FamilyLlama {
		f.Gate = nn.NewLinear(rng.Split(), cfg.Dim, cfg.FFN, false)
	}
	return f
}

// Forward applies the feed-forward network to x (rows, dim).
func (f *FFN) Forward(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, *FFNCache, error) {
	var cache *FFNCache
	if withGrad {
		cache = &FFNCache{}
	}
	sc := f.scratch
	switch f.family {
	case FamilyOPT:
		h, upc, err := f.Up.Apply(x, withGrad)
		if err != nil {
			return nil, nil, fmt.Errorf("ffn up: %w", err)
		}
		var act *nn.ActCache
		if withGrad {
			act = &nn.ActCache{}
		}
		g := nn.GELUScratch(sc, h, act)
		if !withGrad {
			sc.Put(h)
		}
		y, downc, err := f.Down.Apply(g, withGrad)
		if err != nil {
			return nil, nil, fmt.Errorf("ffn down: %w", err)
		}
		if cache != nil {
			cache.UpC, cache.DownC, cache.Act = upc, downc, act
			cache.Hidden = g
		} else {
			sc.Put(g)
		}
		return y, cache, nil

	case FamilyLlama:
		g, gatec, err := f.Gate.Apply(x, withGrad)
		if err != nil {
			return nil, nil, fmt.Errorf("ffn gate: %w", err)
		}
		u, upc, err := f.Up.Apply(x, withGrad)
		if err != nil {
			return nil, nil, fmt.Errorf("ffn up: %w", err)
		}
		var act *nn.ActCache
		if withGrad {
			act = &nn.ActCache{}
		}
		s := nn.SiLUScratch(sc, g, act)
		if !withGrad {
			sc.Put(g)
		}
		h := sc.Get(s.Shape()...)
		if err := tensor.Mul(h, s, u); err != nil {
			return nil, nil, fmt.Errorf("ffn gating: %w", err)
		}
		y, downc, err := f.Down.Apply(h, withGrad)
		if err != nil {
			return nil, nil, fmt.Errorf("ffn down: %w", err)
		}
		if cache != nil {
			cache.GateC, cache.UpC, cache.DownC = gatec, upc, downc
			cache.Act = act
			cache.UpOut = u
			cache.SiluOut = s
			cache.Hidden = h
		} else {
			sc.Put(u, s, h)
		}
		return y, cache, nil

	default:
		return nil, nil, fmt.Errorf("%w: ffn family %v", ErrConfig, f.family)
	}
}

// Backward propagates dy through the feed-forward network.
func (f *FFN) Backward(cache *FFNCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil {
		return nil, fmt.Errorf("ffn backward: no cached activations")
	}
	sc := f.scratch
	switch f.family {
	case FamilyOPT:
		dg, err := f.Down.Grad(cache.DownC, dy)
		if err != nil {
			return nil, fmt.Errorf("ffn down backward: %w", err)
		}
		sc.Put(cache.Hidden)
		cache.Hidden = nil
		dh, err := nn.GELUBackwardScratch(sc, cache.Act, dg)
		if err != nil {
			return nil, fmt.Errorf("ffn gelu backward: %w", err)
		}
		sc.Put(dg, cache.Act.X)
		cache.Act = nil
		dx, err := f.Up.Grad(cache.UpC, dh)
		if err != nil {
			return nil, fmt.Errorf("ffn up backward: %w", err)
		}
		sc.Put(dh)
		return dx, nil

	case FamilyLlama:
		dh, err := f.Down.Grad(cache.DownC, dy)
		if err != nil {
			return nil, fmt.Errorf("ffn down backward: %w", err)
		}
		sc.Put(cache.Hidden)
		cache.Hidden = nil
		// h = s ∘ u  →  ds = dh ∘ u ; du = dh ∘ s
		ds := sc.Get(dh.Shape()...)
		if err := tensor.Mul(ds, dh, cache.UpOut); err != nil {
			return nil, fmt.Errorf("ffn ds: %w", err)
		}
		du := sc.Get(dh.Shape()...)
		if err := tensor.Mul(du, dh, cache.SiluOut); err != nil {
			return nil, fmt.Errorf("ffn du: %w", err)
		}
		sc.Put(dh, cache.UpOut, cache.SiluOut)
		cache.UpOut, cache.SiluOut = nil, nil
		dg, err := nn.SiLUBackwardScratch(sc, cache.Act, ds)
		if err != nil {
			return nil, fmt.Errorf("ffn silu backward: %w", err)
		}
		sc.Put(ds, cache.Act.X)
		cache.Act = nil
		dxGate, err := f.Gate.Grad(cache.GateC, dg)
		if err != nil {
			return nil, fmt.Errorf("ffn gate backward: %w", err)
		}
		sc.Put(dg)
		dxUp, err := f.Up.Grad(cache.UpC, du)
		if err != nil {
			return nil, fmt.Errorf("ffn up backward: %w", err)
		}
		sc.Put(du)
		if err := tensor.Add(dxGate, dxGate, dxUp); err != nil {
			return nil, fmt.Errorf("ffn dx sum: %w", err)
		}
		sc.Put(dxUp)
		return dxGate, nil

	default:
		return nil, fmt.Errorf("%w: ffn family %v", ErrConfig, f.family)
	}
}

// Params returns trainable parameters.
func (f *FFN) Params() []nn.Param {
	var ps []nn.Param
	ps = append(ps, nn.Prefixed("up", f.Up.Params())...)
	ps = append(ps, nn.Prefixed("down", f.Down.Params())...)
	if f.Gate != nil {
		ps = append(ps, nn.Prefixed("gate", f.Gate.Params())...)
	}
	return ps
}

// SetFrozen freezes or unfreezes the FFN projections.
func (f *FFN) SetFrozen(frozen bool) {
	f.Up.SetFrozen(frozen)
	f.Down.SetFrozen(frozen)
	if f.Gate != nil {
		f.Gate.SetFrozen(frozen)
	}
}
