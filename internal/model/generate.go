package model

import (
	"fmt"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// Generate continues the prompt autoregressively for up to maxNew
// tokens using temperature sampling (temperature 0 means greedy
// argmax). Generation re-runs the full forward each step — no KV cache
// — which is fine at the tiny-model scale this repository trains.
func (t *Transformer) Generate(rng *tensor.RNG, prompt []int, maxNew int, temperature float64) ([]int, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("%w: empty prompt", ErrConfig)
	}
	if temperature < 0 {
		return nil, fmt.Errorf("%w: negative temperature %v", ErrConfig, temperature)
	}
	for _, id := range prompt {
		if id < 0 || id >= t.Cfg.Vocab {
			return nil, fmt.Errorf("%w: prompt token %d out of vocab", ErrConfig, id)
		}
	}
	input, body, output, err := t.Split(DefaultCut)
	if err != nil {
		return nil, err
	}

	seq := append([]int(nil), prompt...)
	for step := 0; step < maxNew; step++ {
		window := seq
		if len(window) > t.Cfg.MaxSeq {
			window = window[len(window)-t.Cfg.MaxSeq:]
		}
		xc, _, err := input.Forward(window, 1, len(window), false)
		if err != nil {
			return nil, fmt.Errorf("generate input: %w", err)
		}
		xs, _, err := body.Forward(xc, 1, len(window), false)
		if err != nil {
			return nil, fmt.Errorf("generate body: %w", err)
		}
		logits, _, err := output.Forward(xs, false)
		if err != nil {
			return nil, fmt.Errorf("generate output: %w", err)
		}
		last := logits.Row(logits.Dim(0) - 1)
		next := sampleToken(rng, last, temperature)
		seq = append(seq, next)
	}
	return seq, nil
}

// sampleToken draws from softmax(logits/temperature); temperature 0 is
// argmax.
func sampleToken(rng *tensor.RNG, logits *tensor.Tensor, temperature float64) int {
	vocab := logits.Len()
	if temperature == 0 {
		best, bestV := 0, logits.At(0)
		for i := 1; i < vocab; i++ {
			if v := logits.At(i); v > bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	scaled := logits.Clone()
	scaled.Scale(float32(1 / temperature))
	probs := scaled.MustReshape(1, vocab)
	// SoftmaxRows cannot fail on a well-shaped tensor; reuse in place.
	if err := tensor.SoftmaxRows(probs, probs); err != nil {
		return 0
	}
	u := rng.Float64()
	var cum float64
	for i := 0; i < vocab; i++ {
		cum += float64(probs.At(0, i))
		if u < cum {
			return i
		}
	}
	return vocab - 1
}

// Perplexity evaluates exp(mean cross-entropy) of the model on a token
// stream, using non-overlapping windows of the given length.
func (t *Transformer) Perplexity(tokens []int, window int) (float64, error) {
	if window <= 1 || len(tokens) < window+1 {
		return 0, fmt.Errorf("%w: %d tokens for window %d", ErrConfig, len(tokens), window)
	}
	var total float64
	var count int
	for lo := 0; lo+window+1 <= len(tokens); lo += window {
		ids := tokens[lo : lo+window]
		targets := tokens[lo+1 : lo+window+1]
		loss, err := t.Loss(ids, targets, 1, window)
		if err != nil {
			return 0, err
		}
		total += loss
		count++
	}
	return nn.Perplexity(total / float64(count)), nil
}
