package model

import (
	"testing"

	"menos/internal/tensor"
)

func generateModel(t *testing.T) *Transformer {
	t.Helper()
	m, err := New(tensor.NewRNG(21), tinyCfg(FamilyLlama))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateBasics(t *testing.T) {
	m := generateModel(t)
	out, err := m.Generate(tensor.NewRNG(1), []int{1, 2, 3}, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("generated %d tokens, want 8", len(out))
	}
	// Prompt preserved.
	for i, want := range []int{1, 2, 3} {
		if out[i] != want {
			t.Fatalf("prompt token %d changed", i)
		}
	}
	// All tokens in vocab.
	for _, id := range out {
		if id < 0 || id >= m.Cfg.Vocab {
			t.Fatalf("token %d out of vocab", id)
		}
	}
}

func TestGenerateGreedyDeterministic(t *testing.T) {
	m := generateModel(t)
	a, err := m.Generate(tensor.NewRNG(1), []int{4, 5}, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(tensor.NewRNG(999), []int{4, 5}, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy ignores the RNG entirely.
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy generation not deterministic")
		}
	}
}

func TestGenerateSamplingSeeded(t *testing.T) {
	m := generateModel(t)
	a, err := m.Generate(tensor.NewRNG(7), []int{4, 5}, 8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(tensor.NewRNG(7), []int{4, 5}, 8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed sampling diverged")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	m := generateModel(t)
	if _, err := m.Generate(tensor.NewRNG(1), nil, 3, 1); err == nil {
		t.Fatal("empty prompt accepted")
	}
	if _, err := m.Generate(tensor.NewRNG(1), []int{99}, 3, 1); err == nil {
		t.Fatal("out-of-vocab prompt accepted")
	}
	if _, err := m.Generate(tensor.NewRNG(1), []int{1}, 3, -1); err == nil {
		t.Fatal("negative temperature accepted")
	}
}

func TestGenerateWindowsLongPrompts(t *testing.T) {
	m := generateModel(t)
	// Prompt longer than MaxSeq must still work via windowing.
	prompt := make([]int, m.Cfg.MaxSeq+10)
	for i := range prompt {
		prompt[i] = i % m.Cfg.Vocab
	}
	out, err := m.Generate(tensor.NewRNG(2), prompt, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(prompt)+3 {
		t.Fatalf("generated %d tokens", len(out))
	}
}

func TestPerplexityEvaluation(t *testing.T) {
	m := generateModel(t)
	tokens := make([]int, 100)
	r := tensor.NewRNG(3)
	for i := range tokens {
		tokens[i] = r.Intn(m.Cfg.Vocab)
	}
	ppl, err := m.Perplexity(tokens, 10)
	if err != nil {
		t.Fatal(err)
	}
	// An untrained model on random tokens should be near uniform:
	// perplexity ~ vocab size.
	if ppl < 2 || ppl > float64(m.Cfg.Vocab)*4 {
		t.Fatalf("perplexity %v implausible for vocab %d", ppl, m.Cfg.Vocab)
	}
	if _, err := m.Perplexity(tokens[:5], 10); err == nil {
		t.Fatal("short stream accepted")
	}
	if _, err := m.Perplexity(tokens, 1); err == nil {
		t.Fatal("window 1 accepted")
	}
}

// TestDecodeMatchesFullForward is the KV-cache correctness proof: the
// logits from incremental decoding must match a full forward pass at
// every position, for both families and with adapters attached.
func TestDecodeMatchesFullForward(t *testing.T) {
	for _, family := range []Family{FamilyOPT, FamilyLlama} {
		t.Run(family.String(), func(t *testing.T) {
			m, err := New(tensor.NewRNG(31), tinyCfg(family))
			if err != nil {
				t.Fatal(err)
			}
			tokens := []int{3, 1, 4, 1, 5, 9, 2, 6}
			seqLen := len(tokens)

			// Full forward logits for the whole sequence.
			input, body, output, err := m.Split(DefaultCut)
			if err != nil {
				t.Fatal(err)
			}
			xc, _, err := input.Forward(tokens, 1, seqLen, false)
			if err != nil {
				t.Fatal(err)
			}
			xs, _, err := body.Forward(xc, 1, seqLen, false)
			if err != nil {
				t.Fatal(err)
			}
			fullLogits, _, err := output.Forward(xs, false)
			if err != nil {
				t.Fatal(err)
			}

			// Incremental decode, comparing logits position by position.
			state, err := m.NewDecodeState(seqLen)
			if err != nil {
				t.Fatal(err)
			}
			for p, id := range tokens {
				step, err := m.DecodeStep(state, id)
				if err != nil {
					t.Fatal(err)
				}
				for c := 0; c < m.Cfg.Vocab; c++ {
					diff := float64(step.At(0, c) - fullLogits.At(p, c))
					if diff < 0 {
						diff = -diff
					}
					if diff > 2e-4 {
						t.Fatalf("position %d vocab %d: decode %v vs full %v",
							p, c, step.At(0, c), fullLogits.At(p, c))
					}
				}
			}
			if state.Len() != seqLen {
				t.Fatalf("state length %d", state.Len())
			}
			if state.Bytes() <= 0 {
				t.Fatal("no cache bytes accounted")
			}
		})
	}
}

// TestGenerateFastMatchesGenerate: greedy decoding with and without
// the KV cache must produce identical tokens.
func TestGenerateFastMatchesGenerate(t *testing.T) {
	m := generateModel(t)
	prompt := []int{4, 7, 1}
	slow, err := m.Generate(tensor.NewRNG(1), prompt, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.GenerateFast(tensor.NewRNG(1), prompt, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) != len(fast) {
		t.Fatalf("lengths differ: %d vs %d", len(slow), len(fast))
	}
	for i := range slow {
		if slow[i] != fast[i] {
			t.Fatalf("token %d: slow %d vs fast %d (%v vs %v)", i, slow[i], fast[i], slow, fast)
		}
	}
}

// TestDecodeWithPrefixAdapter: prefix slots participate in incremental
// attention exactly as in the batch path.
func TestDecodeWithPrefixAdapter(t *testing.T) {
	m, err := New(tensor.NewRNG(33), tinyCfg(FamilyLlama))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range m.Blocks {
		b.Attn.Prefix = NewPrefixKV(tensor.NewRNG(34), 3, m.Cfg.Dim)
	}
	tokens := []int{2, 5, 8, 1}
	input, body, output, err := m.Split(DefaultCut)
	if err != nil {
		t.Fatal(err)
	}
	xc, _, err := input.Forward(tokens, 1, len(tokens), false)
	if err != nil {
		t.Fatal(err)
	}
	xs, _, err := body.Forward(xc, 1, len(tokens), false)
	if err != nil {
		t.Fatal(err)
	}
	fullLogits, _, err := output.Forward(xs, false)
	if err != nil {
		t.Fatal(err)
	}
	state, err := m.NewDecodeState(len(tokens))
	if err != nil {
		t.Fatal(err)
	}
	for p, id := range tokens {
		step, err := m.DecodeStep(state, id)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < m.Cfg.Vocab; c += 3 {
			diff := float64(step.At(0, c) - fullLogits.At(p, c))
			if diff < 0 {
				diff = -diff
			}
			if diff > 2e-4 {
				t.Fatalf("prefix decode mismatch at pos %d vocab %d", p, c)
			}
		}
	}
}

func TestDecodeStateValidation(t *testing.T) {
	m := generateModel(t)
	if _, err := m.NewDecodeState(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	state, err := m.NewDecodeState(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeStep(state, 999); err == nil {
		t.Fatal("out-of-vocab token accepted")
	}
	if _, err := m.DecodeStep(state, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeStep(state, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeStep(state, 1); err == nil {
		t.Fatal("overfull state accepted")
	}
	state.Reset()
	if state.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	if _, err := m.DecodeStep(state, 1); err != nil {
		t.Fatalf("state unusable after reset: %v", err)
	}
	// Wrong model.
	other := generateModel(t)
	otherState, err := other.NewDecodeState(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeStep(otherState, 1); err == nil {
		t.Fatal("foreign state accepted")
	}
	// Capacity beyond MaxSeq rejected at GenerateFast.
	long := make([]int, m.Cfg.MaxSeq)
	for i := range long {
		long[i] = 1
	}
	if _, err := m.GenerateFast(tensor.NewRNG(1), long, 10, 0); err == nil {
		t.Fatal("over-capacity GenerateFast accepted")
	}
}
