package model

import (
	"errors"
	"math"
	"testing"

	"menos/internal/nn"
	"menos/internal/tensor"
)

func tinyCfg(f Family) Config {
	c := Config{
		Name:   "test",
		Family: f,
		Vocab:  17,
		Dim:    8,
		Layers: 3,
		Heads:  2,
		FFN:    16,
		MaxSeq: 16,
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid opt", func(c *Config) {}, true},
		{"bad family", func(c *Config) { c.Family = 0 }, false},
		{"zero vocab", func(c *Config) { c.Vocab = 0 }, false},
		{"zero dim", func(c *Config) { c.Dim = 0 }, false},
		{"one layer", func(c *Config) { c.Layers = 1 }, false},
		{"indivisible heads", func(c *Config) { c.Heads = 3 }, false},
		{"zero ffn", func(c *Config) { c.FFN = 0 }, false},
		{"zero maxseq", func(c *Config) { c.MaxSeq = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := tinyCfg(FamilyOPT)
			tt.mutate(&c)
			err := c.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
			if err != nil && !errors.Is(err, ErrConfig) {
				t.Fatalf("error %v is not ErrConfig", err)
			}
		})
	}
}

func TestRopeRequiresEvenHeadDim(t *testing.T) {
	c := tinyCfg(FamilyLlama)
	c.Dim = 6
	c.Heads = 2 // head dim 3: odd
	if err := c.Validate(); err == nil {
		t.Fatal("odd head dim accepted for llama")
	}
}

func TestParamCountFormulas(t *testing.T) {
	// Llama 2-7B is known to have ~6.74B parameters.
	p := Llama2_7B().TotalParams()
	if p < 6_600_000_000 || p > 6_900_000_000 {
		t.Fatalf("llama2-7b params = %d, want ~6.74B", p)
	}
	// OPT-1.3B has ~1.3B parameters.
	p = OPT1_3B().TotalParams()
	if p < 1_200_000_000 || p > 1_450_000_000 {
		t.Fatalf("opt-1.3b params = %d, want ~1.3B", p)
	}
}

func TestTinyParamCountMatchesInstance(t *testing.T) {
	// The analytic formula must agree with the actually instantiated
	// model, for both families.
	for _, cfg := range []Config{tinyCfg(FamilyOPT), tinyCfg(FamilyLlama)} {
		t.Run(cfg.Family.String(), func(t *testing.T) {
			rng := tensor.NewRNG(1)
			m, err := New(rng, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.SetFrozenBase(false)
			var got int64
			for _, p := range m.Params() {
				got += int64(p.Value.Len())
			}
			if want := cfg.TotalParams(); got != want {
				t.Fatalf("instantiated params = %d, analytic = %d", got, want)
			}
		})
	}
}

func TestConfigByName(t *testing.T) {
	c, err := ConfigByName("llama2-7b")
	if err != nil || c.Family != FamilyLlama {
		t.Fatalf("ConfigByName: %v, %v", c, err)
	}
	if _, err := ConfigByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyOPT.String() != "opt" || FamilyLlama.String() != "llama" {
		t.Fatal("family strings")
	}
	if Family(99).String() == "" {
		t.Fatal("unknown family string empty")
	}
}

func forwardLoss(t *testing.T, m *Transformer, ids, targets []int, batch, seq int) float64 {
	t.Helper()
	loss, err := m.Loss(ids, targets, batch, seq)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

// TestEndToEndGradCheck verifies the full-model backward pass (both
// families) against numerical gradients on a selection of parameters.
func TestEndToEndGradCheck(t *testing.T) {
	for _, family := range []Family{FamilyOPT, FamilyLlama} {
		t.Run(family.String(), func(t *testing.T) {
			cfg := tinyCfg(family)
			rng := tensor.NewRNG(42)
			m, err := New(rng, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, seq := 2, 5
			ids := make([]int, batch*seq)
			targets := make([]int, batch*seq)
			r := tensor.NewRNG(7)
			for i := range ids {
				ids[i] = r.Intn(cfg.Vocab)
				targets[i] = r.Intn(cfg.Vocab)
			}

			if _, err := m.LossAndGrad(ids, targets, batch, seq); err != nil {
				t.Fatal(err)
			}

			// Check gradients on a few representative parameters:
			// a middle block's attention q weight, an FFN weight, a norm
			// gain, and the embedding.
			check := func(name string, p nn.Param, samples int) {
				t.Helper()
				const h = 1e-2
				data := p.Value.Data()
				stride := len(data) / samples
				if stride == 0 {
					stride = 1
				}
				for i := 0; i < len(data); i += stride {
					orig := data[i]
					data[i] = orig + h
					up := forwardLoss(t, m, ids, targets, batch, seq)
					data[i] = orig - h
					down := forwardLoss(t, m, ids, targets, batch, seq)
					data[i] = orig
					numeric := (up - down) / (2 * h)
					analytic := float64(p.Grad.Data()[i])
					diff := math.Abs(numeric - analytic)
					scale := math.Max(1e-2, math.Max(math.Abs(numeric), math.Abs(analytic)))
					if diff/scale > 0.15 {
						t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, analytic, numeric)
					}
				}
			}

			for _, p := range m.Params() {
				switch p.Name {
				case "block1.attn.q.w", "block1.ffn.up.w", "block2.norm1.gamma", "lmhead.w":
					check(p.Name, p, 6)
				}
			}
		})
	}
}

// TestSplitMatchesFullForward verifies that running the three sections
// (input -> body -> output) produces identical results to any other
// composition — i.e. splitting is purely topological.
func TestSplitMatchesFullForward(t *testing.T) {
	for _, family := range []Family{FamilyOPT, FamilyLlama} {
		t.Run(family.String(), func(t *testing.T) {
			cfg := tinyCfg(family)
			rng := tensor.NewRNG(3)
			m, err := New(rng, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, seq := 2, 4
			ids := make([]int, batch*seq)
			for i := range ids {
				ids[i] = i % cfg.Vocab
			}
			targets := make([]int, batch*seq)
			for i := range targets {
				targets[i] = (i + 1) % cfg.Vocab
			}

			lossRef, err := m.Loss(ids, targets, batch, seq)
			if err != nil {
				t.Fatal(err)
			}

			// Same computation via an explicit deeper cut.
			input, body, output, err := m.Split(2)
			if err != nil {
				t.Fatal(err)
			}
			xc, _, err := input.Forward(ids, batch, seq, false)
			if err != nil {
				t.Fatal(err)
			}
			xs, _, err := body.Forward(xc, batch, seq, false)
			if err != nil {
				t.Fatal(err)
			}
			logits, _, err := output.Forward(xs, false)
			if err != nil {
				t.Fatal(err)
			}
			loss2, _, err := nn.CrossEntropy(logits, targets)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(lossRef-loss2) > 1e-5 {
				t.Fatalf("cut=1 loss %v != cut=2 loss %v", lossRef, loss2)
			}
		})
	}
}

func TestSplitCutValidation(t *testing.T) {
	rng := tensor.NewRNG(4)
	m, err := New(rng, tinyCfg(FamilyOPT))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Split(0); err == nil {
		t.Fatal("cut 0 accepted")
	}
	if _, _, _, err := m.Split(3); err == nil {
		t.Fatal("cut == layers accepted")
	}
	if _, _, _, err := m.Split(2); err != nil {
		t.Fatalf("valid cut rejected: %v", err)
	}
}

// TestNoGradForwardMatchesGradForward verifies the no-grad forward pass
// (Menos' first forward) computes the same activations as the caching
// forward.
func TestNoGradForwardMatchesGradForward(t *testing.T) {
	cfg := tinyCfg(FamilyLlama)
	rng := tensor.NewRNG(5)
	m, err := New(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, body, _, err := m.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	batch, seq := 1, 6
	x := tensor.NewNormal(tensor.NewRNG(6), 0.5, batch*seq, cfg.Dim)

	y1, c1, err := body.Forward(x, batch, seq, false)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != nil {
		t.Fatal("no-grad forward produced a cache")
	}
	y2, c2, err := body.Forward(x, batch, seq, true)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == nil || c2.Bytes() == 0 {
		t.Fatal("grad forward produced no cache")
	}
	for i := range y1.Data() {
		if math.Abs(float64(y1.Data()[i]-y2.Data()[i])) > 1e-6 {
			t.Fatalf("no-grad and grad forwards differ at %d", i)
		}
	}
}

// TestReforwardDeterminism verifies the re-forward of Fig. 3(d): running
// the forward twice from the same x_c yields identical activations and
// hence identical gradients.
func TestReforwardDeterminism(t *testing.T) {
	cfg := tinyCfg(FamilyOPT)
	rng := tensor.NewRNG(8)
	m, err := New(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, body, _, err := m.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	batch, seq := 2, 3
	x := tensor.NewNormal(tensor.NewRNG(9), 0.5, batch*seq, cfg.Dim)
	dy := tensor.NewNormal(tensor.NewRNG(10), 0.5, batch*seq, cfg.Dim)

	_, cacheA, err := body.Forward(x, batch, seq, true)
	if err != nil {
		t.Fatal(err)
	}
	gsA, err := body.Backward(cacheA, dy.Clone())
	if err != nil {
		t.Fatal(err)
	}

	// Re-forward from the same x (cache released in between).
	_, cacheB, err := body.Forward(x, batch, seq, true)
	if err != nil {
		t.Fatal(err)
	}
	gsB, err := body.Backward(cacheB, dy.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range gsA.Data() {
		if gsA.Data()[i] != gsB.Data()[i] {
			t.Fatalf("re-forward produced different gradient at %d", i)
		}
	}
}

func TestFrozenModelHasNoParams(t *testing.T) {
	rng := tensor.NewRNG(11)
	m, err := New(rng, tinyCfg(FamilyLlama))
	if err != nil {
		t.Fatal(err)
	}
	m.SetFrozenBase(true)
	if n := len(m.Params()); n != 0 {
		t.Fatalf("frozen model exposes %d params", n)
	}
	m.SetFrozenBase(false)
	if n := len(m.Params()); n == 0 {
		t.Fatal("unfrozen model exposes no params")
	}
}

// TestTrainingReducesLoss fine-tunes the full tiny model for a few
// steps and checks the loss goes down — the most basic sanity check
// that forward+backward+optimizer interact correctly.
func TestTrainingReducesLoss(t *testing.T) {
	for _, family := range []Family{FamilyOPT, FamilyLlama} {
		t.Run(family.String(), func(t *testing.T) {
			cfg := tinyCfg(family)
			rng := tensor.NewRNG(12)
			m, err := New(rng, cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, seq := 2, 6
			r := tensor.NewRNG(13)
			ids := make([]int, batch*seq)
			targets := make([]int, batch*seq)
			for i := range ids {
				ids[i] = r.Intn(cfg.Vocab)
				targets[i] = r.Intn(cfg.Vocab)
			}
			params := m.Params()
			opt := nn.NewAdam(3e-3)
			first, err := m.LossAndGrad(ids, targets, batch, seq)
			if err != nil {
				t.Fatal(err)
			}
			if err := opt.Step(params); err != nil {
				t.Fatal(err)
			}
			nn.ZeroGrads(params)
			var last StepResult
			for i := 0; i < 30; i++ {
				last, err = m.LossAndGrad(ids, targets, batch, seq)
				if err != nil {
					t.Fatal(err)
				}
				if err := opt.Step(params); err != nil {
					t.Fatal(err)
				}
				nn.ZeroGrads(params)
			}
			if last.Loss >= first.Loss {
				t.Fatalf("loss did not decrease: %v -> %v", first.Loss, last.Loss)
			}
			if last.ActivationByte <= 0 {
				t.Fatal("activation bytes not accounted")
			}
		})
	}
}

func TestRopeOrthogonality(t *testing.T) {
	rt := newRopeTable(10, 8)
	rng := tensor.NewRNG(14)
	v := make([]float32, 8)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	orig := append([]float32(nil), v...)
	// Rotation preserves norm.
	var normBefore float64
	for _, x := range v {
		normBefore += float64(x) * float64(x)
	}
	rt.apply(v, 7, false)
	var normAfter float64
	for _, x := range v {
		normAfter += float64(x) * float64(x)
	}
	if math.Abs(normBefore-normAfter) > 1e-4 {
		t.Fatalf("rope changed norm: %v -> %v", normBefore, normAfter)
	}
	// Inverse undoes it.
	rt.apply(v, 7, true)
	for i := range v {
		if math.Abs(float64(v[i]-orig[i])) > 1e-5 {
			t.Fatalf("rope inverse mismatch at %d", i)
		}
	}
	// Position 0 is the identity.
	rt.apply(v, 0, false)
	for i := range v {
		if math.Abs(float64(v[i]-orig[i])) > 1e-5 {
			t.Fatalf("rope at position 0 not identity at %d", i)
		}
	}
}

// TestCausality verifies that a future token cannot influence an
// earlier position's body output.
func TestCausality(t *testing.T) {
	cfg := tinyCfg(FamilyLlama)
	rng := tensor.NewRNG(15)
	m, err := New(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	input, body, _, err := m.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	seq := 6
	ids := []int{1, 2, 3, 4, 5, 6}
	x1, _, err := input.Forward(ids, 1, seq, false)
	if err != nil {
		t.Fatal(err)
	}
	y1, _, err := body.Forward(x1, 1, seq, false)
	if err != nil {
		t.Fatal(err)
	}
	// Change the last token; earlier outputs must not move.
	ids2 := []int{1, 2, 3, 4, 5, 16}
	x2, _, err := input.Forward(ids2, 1, seq, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, _, err := body.Forward(x2, 1, seq, false)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < seq-1; t2++ {
		for c := 0; c < cfg.Dim; c++ {
			if y1.At(t2, c) != y2.At(t2, c) {
				t.Fatalf("position %d changed when future token changed", t2)
			}
		}
	}
}

func TestBodyBackwardCacheMismatch(t *testing.T) {
	cfg := tinyCfg(FamilyOPT)
	m, err := New(tensor.NewRNG(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, body, _, err := m.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := body.Backward(nil, tensor.New(1, cfg.Dim)); err == nil {
		t.Fatal("nil cache accepted")
	}
	if _, err := body.Backward(&BodyCache{}, tensor.New(1, cfg.Dim)); err == nil {
		t.Fatal("empty cache accepted")
	}
}
