package model

import (
	"fmt"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// StepResult reports one optimization step's diagnostics.
type StepResult struct {
	Loss           float64
	ActivationByte int64 // total retained intermediate results (𝕀)
}

// LossAndGrad runs a full local forward and backward pass over the
// whole model: the single-device fine-tuning baseline the paper's
// convergence figures (Fig. 8, Fig. 9) compare against. Gradients are
// accumulated into whatever parameters are trainable (for adapter-based
// fine-tuning, the adapters).
func (t *Transformer) LossAndGrad(ids, targets []int, batch, seq int) (StepResult, error) {
	if len(ids) != batch*seq || len(targets) != batch*seq {
		return StepResult{}, fmt.Errorf("loss: %d ids, %d targets for batch %d x seq %d: %w",
			len(ids), len(targets), batch, seq, tensor.ErrShape)
	}
	input, body, output, err := t.Split(DefaultCut)
	if err != nil {
		return StepResult{}, err
	}
	xc, inCache, err := input.Forward(ids, batch, seq, true)
	if err != nil {
		return StepResult{}, err
	}
	xs, bodyCache, err := body.Forward(xc, batch, seq, true)
	if err != nil {
		return StepResult{}, err
	}
	logits, outCache, err := output.Forward(xs, true)
	if err != nil {
		return StepResult{}, err
	}
	loss, dlogits, err := nn.CrossEntropyScratch(t.scratch, logits, targets)
	if err != nil {
		return StepResult{}, err
	}
	t.scratch.Put(logits)
	actBytes := inCache.Bytes() + bodyCache.Bytes() + outCache.Bytes()

	gc, err := output.Backward(outCache, dlogits)
	if err != nil {
		return StepResult{}, err
	}
	t.scratch.Put(dlogits)
	gs, err := body.Backward(bodyCache, gc)
	if err != nil {
		return StepResult{}, err
	}
	t.scratch.Put(gc)
	if err := input.Backward(inCache, gs); err != nil {
		return StepResult{}, err
	}
	t.scratch.Put(gs)
	return StepResult{Loss: loss, ActivationByte: actBytes}, nil
}

// Loss runs a no-grad forward pass and returns the mean cross-entropy,
// used for evaluation.
func (t *Transformer) Loss(ids, targets []int, batch, seq int) (float64, error) {
	input, body, output, err := t.Split(DefaultCut)
	if err != nil {
		return 0, err
	}
	xc, _, err := input.Forward(ids, batch, seq, false)
	if err != nil {
		return 0, err
	}
	xs, _, err := body.Forward(xc, batch, seq, false)
	if err != nil {
		return 0, err
	}
	t.scratch.Put(xc)
	logits, _, err := output.Forward(xs, false)
	if err != nil {
		return 0, err
	}
	t.scratch.Put(xs)
	loss, dlogits, err := nn.CrossEntropyScratch(t.scratch, logits, targets)
	t.scratch.Put(logits, dlogits)
	return loss, err
}
