package model

import "math"

// ropeBase is the frequency base of rotary position embeddings, the
// value used by Llama.
const ropeBase = 10000.0

// ropeTable caches sin/cos values for positions [0, maxT) and a given
// head dimension.
type ropeTable struct {
	headDim int
	cos     [][]float32 // [pos][headDim/2]
	sin     [][]float32
}

func newRopeTable(maxT, headDim int) *ropeTable {
	half := headDim / 2
	rt := &ropeTable{
		headDim: headDim,
		cos:     make([][]float32, maxT),
		sin:     make([][]float32, maxT),
	}
	for p := 0; p < maxT; p++ {
		rt.cos[p] = make([]float32, half)
		rt.sin[p] = make([]float32, half)
		for i := 0; i < half; i++ {
			theta := float64(p) / math.Pow(ropeBase, float64(2*i)/float64(headDim))
			rt.cos[p][i] = float32(math.Cos(theta))
			rt.sin[p][i] = float32(math.Sin(theta))
		}
	}
	return rt
}

// apply rotates row vector v (length headDim) in place for position
// pos. When inverse is true it applies the transpose rotation, which is
// the backward pass (rotations are orthogonal).
func (rt *ropeTable) apply(v []float32, pos int, inverse bool) {
	half := rt.headDim / 2
	cosP, sinP := rt.cos[pos], rt.sin[pos]
	for i := 0; i < half; i++ {
		c, s := cosP[i], sinP[i]
		if inverse {
			s = -s
		}
		x0, x1 := v[2*i], v[2*i+1]
		v[2*i] = x0*c - x1*s
		v[2*i+1] = x0*s + x1*c
	}
}
