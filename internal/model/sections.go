package model

import (
	"fmt"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// The three-way topological split of §2.2 / Fig. 1:
//
//	InputSection  (client): embeddings + blocks [0, cut)
//	BodySection   (server): blocks [cut, Layers)
//	OutputSection (client): final norm + LM head (+ loss)
//
// The default cut of 1 matches the paper's evaluation setup, where the
// embedding layer, output layer and the first transformer block run on
// the client.

// DefaultCut is the paper's evaluation cut point.
const DefaultCut = 1

// InputSection is the client-side front of the model.
type InputSection struct {
	model *Transformer
	cut   int
}

// InputCache retains the input section's activations.
type InputCache struct {
	Batch, Seq int
	EmbC       *nn.EmbeddingCache
	PosC       *nn.EmbeddingCache
	BlockCs    []*BlockCache
}

// Bytes reports retained activation size.
func (c *InputCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	b := c.EmbC.Bytes() + c.PosC.Bytes()
	for _, bc := range c.BlockCs {
		b += bc.Bytes()
	}
	return b
}

// BodySection is the server-side middle of the model.
type BodySection struct {
	blocks []*Block
}

// BodyCache retains the body's activations; this is the dominant 𝕀
// term the Menos server releases and recomputes.
type BodyCache struct {
	Batch, Seq int
	BlockCs    []*BlockCache
}

// Bytes reports retained activation size.
func (c *BodyCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var b int64
	for _, bc := range c.BlockCs {
		b += bc.Bytes()
	}
	return b
}

// OutputSection is the client-side tail of the model.
type OutputSection struct {
	model *Transformer
}

// OutputCache retains the output section's activations.
type OutputCache struct {
	NormC any
	HeadC *nn.LinearCache
}

// Bytes reports retained activation size.
func (c *OutputCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return nn.CacheBytes(c.NormC) + c.HeadC.Bytes()
}

// Split partitions the model at the given cut layer. The client keeps
// blocks [0, cut); the server receives blocks [cut, Layers). A cut of
// DefaultCut (1) reproduces the paper's setup. cut must satisfy
// 1 <= cut < Layers so both sides hold at least one block.
func (t *Transformer) Split(cut int) (*InputSection, *BodySection, *OutputSection, error) {
	if cut < 1 || cut >= len(t.Blocks) {
		return nil, nil, nil, fmt.Errorf("%w: cut %d for %d layers", ErrConfig, cut, len(t.Blocks))
	}
	return &InputSection{model: t, cut: cut},
		&BodySection{blocks: t.Blocks[cut:]},
		&OutputSection{model: t},
		nil
}

// Body returns a BodySection over an explicit block slice; used by the
// server when assembling a per-client instance from shared parameters.
func Body(blocks []*Block) *BodySection {
	return &BodySection{blocks: blocks}
}

// scratch returns the buffer arena the section's blocks share (nil
// when the blocks were built without one).
func (s *BodySection) scratch() *tensor.Scratch {
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[0].scratch
}

// Forward embeds ids (length batch*seq, row-major by batch) and runs
// the client-side blocks, producing the intermediate activations x_c
// that are sent to the server.
func (s *InputSection) Forward(ids []int, batch, seq int, withGrad bool) (*tensor.Tensor, *InputCache, error) {
	if len(ids) != batch*seq {
		return nil, nil, fmt.Errorf("input section: %d ids for batch %d x seq %d: %w",
			len(ids), batch, seq, tensor.ErrShape)
	}
	var cache *InputCache
	if withGrad {
		cache = &InputCache{Batch: batch, Seq: seq}
	}
	var embC *nn.EmbeddingCache
	if withGrad {
		embC = &nn.EmbeddingCache{}
	}
	x, err := s.model.Embed.Forward(ids, embC)
	if err != nil {
		return nil, nil, fmt.Errorf("input embedding: %w", err)
	}
	if s.model.Pos != nil {
		var posC *nn.EmbeddingCache
		if withGrad {
			posC = &nn.EmbeddingCache{}
		}
		pos, err := s.model.Pos.Forward(positions(batch, seq), posC)
		if err != nil {
			return nil, nil, fmt.Errorf("input positions: %w", err)
		}
		if err := tensor.Add(x, x, pos); err != nil {
			return nil, nil, fmt.Errorf("input position add: %w", err)
		}
		s.model.scratch.Put(pos)
		if cache != nil {
			cache.PosC = posC
		}
	}
	if cache != nil {
		cache.EmbC = embC
	}
	for i := 0; i < s.cut; i++ {
		y, bc, err := s.model.Blocks[i].Forward(x, batch, seq, withGrad)
		if err != nil {
			return nil, nil, fmt.Errorf("input block %d: %w", i, err)
		}
		if cache == nil {
			// No-grad pass: x (the embedding sum or a previous block's
			// output, both owned here) is dead once the block consumed it.
			s.model.scratch.Put(x)
		}
		x = y
		if cache != nil {
			cache.BlockCs = append(cache.BlockCs, bc)
		}
	}
	return x, cache, nil
}

// Backward propagates the gradient g_s (received from the server) back
// through the client-side blocks and into the embeddings.
func (s *InputSection) Backward(cache *InputCache, dy *tensor.Tensor) error {
	if cache == nil {
		return fmt.Errorf("input section backward: no cached activations")
	}
	orig := dy
	for i := len(cache.BlockCs) - 1; i >= 0; i-- {
		dx, err := s.model.Blocks[i].Backward(cache.BlockCs[i], dy)
		if err != nil {
			return fmt.Errorf("input block %d backward: %w", i, err)
		}
		if dy != orig {
			s.model.scratch.Put(dy)
		}
		dy = dx
	}
	if s.model.Pos != nil && cache.PosC != nil {
		if err := s.model.Pos.Backward(cache.PosC, dy); err != nil {
			return fmt.Errorf("input positions backward: %w", err)
		}
	}
	if err := s.model.Embed.Backward(cache.EmbC, dy); err != nil {
		return fmt.Errorf("input embedding backward: %w", err)
	}
	if dy != orig {
		s.model.scratch.Put(dy)
	}
	return nil
}

// Params returns the input section's trainable parameters.
func (s *InputSection) Params() []nn.Param {
	var ps []nn.Param
	ps = append(ps, nn.Prefixed("embed", s.model.Embed.Params())...)
	if s.model.Pos != nil {
		ps = append(ps, nn.Prefixed("pos", s.model.Pos.Params())...)
	}
	for i := 0; i < s.cut; i++ {
		ps = append(ps, nn.Prefixed(fmt.Sprintf("block%d", i), s.model.Blocks[i].Params())...)
	}
	return ps
}

// Forward runs the server-side blocks over x_c, producing x_s. With
// withGrad=false this is the paper's non-gradient first forward pass.
func (s *BodySection) Forward(x *tensor.Tensor, batch, seq int, withGrad bool) (*tensor.Tensor, *BodyCache, error) {
	var cache *BodyCache
	if withGrad {
		cache = &BodyCache{Batch: batch, Seq: seq, BlockCs: make([]*BlockCache, 0, len(s.blocks))}
	}
	for i, b := range s.blocks {
		y, bc, err := b.Forward(x, batch, seq, withGrad)
		if err != nil {
			return nil, nil, fmt.Errorf("body block %d: %w", i, err)
		}
		if cache == nil && i > 0 {
			// No-grad pass: x is a previous block's output (owned here,
			// never the caller's input) and dead once consumed.
			s.scratch().Put(x)
		}
		x = y
		if cache != nil {
			cache.BlockCs = append(cache.BlockCs, bc)
		}
	}
	return x, cache, nil
}

// Backward propagates the gradient g_c (received from the client)
// through the server-side blocks, producing g_s for the client.
func (s *BodySection) Backward(cache *BodyCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || len(cache.BlockCs) != len(s.blocks) {
		return nil, fmt.Errorf("body backward: missing or mismatched cache")
	}
	orig := dy
	for i := len(s.blocks) - 1; i >= 0; i-- {
		dx, err := s.blocks[i].Backward(cache.BlockCs[i], dy)
		if err != nil {
			return nil, fmt.Errorf("body block %d backward: %w", i, err)
		}
		if dy != orig {
			s.scratch().Put(dy)
		}
		dy = dx
	}
	return dy, nil
}

// Params returns the body's trainable parameters (the server-side
// adapter parameters φ_s when the base is frozen).
func (s *BodySection) Params() []nn.Param {
	var ps []nn.Param
	for i, b := range s.blocks {
		ps = append(ps, nn.Prefixed(fmt.Sprintf("block%d", i), b.Params())...)
	}
	return ps
}

// Blocks exposes the underlying block slice (read-only use).
func (s *BodySection) Blocks() []*Block { return s.blocks }

// Forward computes logits from the server activations x_s.
func (s *OutputSection) Forward(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, *OutputCache, error) {
	n, normC, err := s.model.Norm.Apply(x, withGrad)
	if err != nil {
		return nil, nil, fmt.Errorf("output norm: %w", err)
	}
	var headC *nn.LinearCache
	if withGrad {
		headC = &nn.LinearCache{}
	}
	logits, err := s.model.LMHead.Forward(n, headC)
	if err != nil {
		return nil, nil, fmt.Errorf("output head: %w", err)
	}
	if !withGrad {
		s.model.scratch.Put(n)
		return logits, nil, nil
	}
	return logits, &OutputCache{NormC: normC, HeadC: headC}, nil
}

// Backward propagates dlogits back to the cut point, producing the
// gradient g_c that the client sends to the server.
func (s *OutputSection) Backward(cache *OutputCache, dlogits *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil {
		return nil, fmt.Errorf("output section backward: no cached activations")
	}
	dn, err := s.model.LMHead.Backward(cache.HeadC, dlogits)
	if err != nil {
		return nil, fmt.Errorf("output head backward: %w", err)
	}
	dx, err := s.model.Norm.Grad(cache.NormC, dn)
	if err != nil {
		return nil, fmt.Errorf("output norm backward: %w", err)
	}
	s.model.scratch.Put(dn)
	return dx, nil
}

// Params returns the output section's trainable parameters.
func (s *OutputSection) Params() []nn.Param {
	var ps []nn.Param
	ps = append(ps, nn.Prefixed("norm", s.model.Norm.Params())...)
	ps = append(ps, nn.Prefixed("lmhead", s.model.LMHead.Params())...)
	return ps
}
