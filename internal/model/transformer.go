package model

import (
	"fmt"

	"menos/internal/nn"
	"menos/internal/tensor"
)

// Transformer is a full decoder-only language model.
type Transformer struct {
	Cfg    Config
	Embed  *nn.Embedding
	Pos    *nn.Embedding // learned positions; nil for Llama (RoPE)
	Blocks []*Block
	Norm   nn.Op // final norm before the LM head
	LMHead *nn.Linear

	// scratch is the step-scoped buffer arena shared by every block
	// (and every shallow clone of them), so steady-state training
	// steps reuse activations and gradients instead of allocating.
	scratch *tensor.Scratch
}

// New constructs a transformer with freshly initialized weights drawn
// from rng.
func New(rng *tensor.RNG, cfg Config) (*Transformer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Transformer{
		Cfg:    cfg,
		Embed:  nn.NewEmbedding(rng.Split(), cfg.Vocab, cfg.Dim),
		LMHead: nn.NewLinear(rng.Split(), cfg.Dim, cfg.Vocab, false),
	}
	if cfg.Family == FamilyOPT {
		t.Pos = nn.NewEmbedding(rng.Split(), cfg.MaxSeq, cfg.Dim)
		t.Norm = nn.NewLayerNorm(cfg.Dim)
	} else {
		t.Norm = nn.NewRMSNorm(cfg.Dim)
	}
	t.scratch = tensor.NewScratch()
	t.Blocks = make([]*Block, cfg.Layers)
	for i := range t.Blocks {
		t.Blocks[i] = NewBlock(rng, cfg)
		t.Blocks[i].setScratch(t.scratch)
	}
	setOpScratch(t.scratch, t.Norm, t.LMHead)
	return t, nil
}

// Scratch exposes the model's buffer arena (nil for a zero-value
// Transformer, which degrades to plain allocation everywhere).
func (t *Transformer) Scratch() *tensor.Scratch { return t.scratch }

// setScratch attaches the arena to the block and its submodules,
// including every parameter layer that can draw outputs from it.
func (b *Block) setScratch(sc *tensor.Scratch) {
	b.scratch = sc
	b.Attn.scratch = sc
	b.FFN.scratch = sc
	setOpScratch(sc, b.Norm1, b.Norm2,
		b.Attn.Q, b.Attn.K, b.Attn.V, b.Attn.O,
		b.FFN.Up, b.FFN.Down, b.FFN.Gate)
}

// setOpScratch attaches the arena to every op that supports one; nil
// ops (e.g. the absent Gate of an OPT FFN) are skipped.
func setOpScratch(sc *tensor.Scratch, ops ...nn.Op) {
	for _, op := range ops {
		if op == nil {
			continue
		}
		if u, ok := op.(nn.ScratchUser); ok {
			u.SetScratch(sc)
		}
	}
}

// SetFrozenBase freezes (or unfreezes) every base parameter: embedding,
// positions, all blocks, final norm and LM head. Adapter parameters are
// managed separately by the adapter package.
func (t *Transformer) SetFrozenBase(frozen bool) {
	t.Embed.Frozen = frozen
	if t.Pos != nil {
		t.Pos.Frozen = frozen
	}
	for _, b := range t.Blocks {
		b.SetFrozen(frozen)
	}
	t.Norm.SetFrozen(frozen)
	t.LMHead.Frozen = frozen
}

// Params returns all trainable parameters.
func (t *Transformer) Params() []nn.Param {
	var ps []nn.Param
	ps = append(ps, nn.Prefixed("embed", t.Embed.Params())...)
	if t.Pos != nil {
		ps = append(ps, nn.Prefixed("pos", t.Pos.Params())...)
	}
	for i, b := range t.Blocks {
		ps = append(ps, nn.Prefixed(fmt.Sprintf("block%d", i), b.Params())...)
	}
	ps = append(ps, nn.Prefixed("norm", t.Norm.Params())...)
	ps = append(ps, nn.Prefixed("lmhead", t.LMHead.Params())...)
	return ps
}

// BaseParamCount returns the number of scalar parameters in the model,
// independent of frozen state.
func (t *Transformer) BaseParamCount() int64 {
	return t.Cfg.TotalParams()
}

// positions returns [0..seq) repeated for each batch element, the index
// input to the learned position embedding.
func positions(batch, seq int) []int {
	ids := make([]int, batch*seq)
	for b := 0; b < batch; b++ {
		for p := 0; p < seq; p++ {
			ids[b*seq+p] = p
		}
	}
	return ids
}
