package model

import (
	"fmt"

	"menos/internal/nn"
)

// BaseParams enumerates every base parameter of a pristine model
// (embeddings, blocks, final norm, head) regardless of frozen state,
// with stable names. This is the unit the model owner distributes:
// weights export/import for loading a pre-trained model instead of
// deriving it from a seed.
//
// The model must be pristine — no adapters attached — because an
// adapter-wrapped projection no longer exposes its base parameters
// under the original names; BaseParams rejects wrapped models.
func (t *Transformer) BaseParams() ([]nn.Param, error) {
	var ps []nn.Param
	add := func(prefix string, params []nn.Param) {
		ps = append(ps, nn.Prefixed(prefix, params)...)
	}
	add("embed", []nn.Param{t.Embed.Table})
	if t.Pos != nil {
		add("pos", []nn.Param{t.Pos.Table})
	}
	for i, b := range t.Blocks {
		prefix := fmt.Sprintf("block%d", i)
		ops := []struct {
			name string
			op   nn.Op
		}{
			{"norm1", b.Norm1}, {"attn.q", b.Attn.Q}, {"attn.k", b.Attn.K},
			{"attn.v", b.Attn.V}, {"attn.o", b.Attn.O}, {"norm2", b.Norm2},
			{"ffn.up", b.FFN.Up}, {"ffn.down", b.FFN.Down},
		}
		if b.FFN.Gate != nil {
			ops = append(ops, struct {
				name string
				op   nn.Op
			}{"ffn.gate", b.FFN.Gate})
		}
		for _, o := range ops {
			params, err := baseOpParams(o.op)
			if err != nil {
				return nil, fmt.Errorf("%s.%s: %w", prefix, o.name, err)
			}
			add(prefix+"."+o.name, params)
		}
		if b.Attn.Prefix != nil {
			return nil, fmt.Errorf("%w: block %d has a prefix adapter attached", ErrConfig, i)
		}
	}
	normParams, err := baseOpParams(t.Norm)
	if err != nil {
		return nil, fmt.Errorf("final norm: %w", err)
	}
	add("norm", normParams)
	add("lmhead", []nn.Param{t.LMHead.W})
	return ps, nil
}

// baseOpParams extracts the parameters of a plain (unwrapped) layer.
func baseOpParams(op nn.Op) ([]nn.Param, error) {
	switch l := op.(type) {
	case *nn.Linear:
		ps := []nn.Param{l.W}
		if l.B.Value != nil {
			ps = append(ps, l.B)
		}
		return ps, nil
	case *nn.LayerNorm:
		return []nn.Param{l.Gamma, l.Beta}, nil
	case *nn.RMSNorm:
		return []nn.Param{l.Gamma}, nil
	default:
		return nil, fmt.Errorf("%w: projection wrapped or quantized (%T); export weights before modifying the model",
			ErrConfig, op)
	}
}
