package model

import (
	"math"
	"testing"

	"menos/internal/nn"

	"menos/internal/tensor"
)

func TestBaseParamsCoverEverything(t *testing.T) {
	for _, family := range []Family{FamilyOPT, FamilyLlama} {
		t.Run(family.String(), func(t *testing.T) {
			cfg := tinyCfg(family)
			m, err := New(tensor.NewRNG(1), cfg)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := m.BaseParams()
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			names := make(map[string]bool, len(ps))
			for _, p := range ps {
				total += int64(p.Value.Len())
				if names[p.Name] {
					t.Fatalf("duplicate parameter name %q", p.Name)
				}
				names[p.Name] = true
			}
			if want := cfg.TotalParams(); total != want {
				t.Fatalf("BaseParams covers %d scalars, model has %d", total, want)
			}
		})
	}
}

func TestBaseParamsIndependentOfFrozenState(t *testing.T) {
	cfg := tinyCfg(FamilyOPT)
	m, err := New(tensor.NewRNG(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFrozenBase(true)
	ps, err := m.BaseParams()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatal("frozen model exported no base params")
	}
}

// TestWeightDistribution is the model-owner workflow: export the base
// weights, build a structurally identical model from a different seed,
// import, and verify the models compute identically — seedless model
// distribution.
func TestWeightDistribution(t *testing.T) {
	cfg := tinyCfg(FamilyLlama)
	owner, err := New(tensor.NewRNG(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ownerParams, err := owner.BaseParams()
	if err != nil {
		t.Fatal(err)
	}

	// The "downloaded" model starts from unrelated random weights.
	replica, err := New(tensor.NewRNG(999), cfg)
	if err != nil {
		t.Fatal(err)
	}
	replicaParams, err := replica.BaseParams()
	if err != nil {
		t.Fatal(err)
	}
	if len(ownerParams) != len(replicaParams) {
		t.Fatalf("param counts differ: %d vs %d", len(ownerParams), len(replicaParams))
	}
	// Transfer by name (what checkpoint.Load does; done inline here to
	// keep the test self-contained in this package).
	byName := make(map[string]*tensor.Tensor, len(replicaParams))
	for _, p := range replicaParams {
		byName[p.Name] = p.Value
	}
	for _, p := range ownerParams {
		dst, ok := byName[p.Name]
		if !ok {
			t.Fatalf("replica missing %q", p.Name)
		}
		if err := dst.CopyFrom(p.Value); err != nil {
			t.Fatalf("%q: %v", p.Name, err)
		}
	}

	ids := []int{1, 2, 3, 4, 5, 6}
	targets := []int{2, 3, 4, 5, 6, 7}
	lossOwner, err := owner.Loss(ids, targets, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	lossReplica, err := replica.Loss(ids, targets, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lossOwner-lossReplica) > 1e-7 {
		t.Fatalf("replica loss %v != owner loss %v", lossReplica, lossOwner)
	}
}

func TestBaseParamsRejectsWrappedModel(t *testing.T) {
	cfg := tinyCfg(FamilyOPT)
	m, err := New(tensor.NewRNG(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a wrapped projection with an anonymous Op.
	m.Blocks[0].Attn.Q = wrapperOp{m.Blocks[0].Attn.Q}
	if _, err := m.BaseParams(); err == nil {
		t.Fatal("wrapped model exported")
	}
}

// wrapperOp is a minimal Op decorator for the rejection test.
type wrapperOp struct{ inner nn.Op }

func (w wrapperOp) Apply(x *tensor.Tensor, g bool) (*tensor.Tensor, any, error) { return x, nil, nil }
func (w wrapperOp) Grad(c any, dy *tensor.Tensor) (*tensor.Tensor, error)       { return dy, nil }
func (w wrapperOp) Params() []nn.Param                                          { return nil }
func (w wrapperOp) SetFrozen(bool)                                              {}
