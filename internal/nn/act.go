package nn

import (
	"fmt"
	"math"

	"menos/internal/tensor"
)

// ActCache retains the input of an elementwise activation.
type ActCache struct {
	X *tensor.Tensor
}

// Bytes reports retained activation size.
func (c *ActCache) Bytes() int64 {
	if c == nil || c.X == nil {
		return 0
	}
	return c.X.Bytes()
}

// GELU applies the Gaussian Error Linear Unit (tanh approximation, as
// used by OPT/GPT-style models).
func GELU(x *tensor.Tensor, cache *ActCache) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = geluScalar(v)
	}
	if cache != nil {
		cache.X = x
	}
	return out
}

// GELUBackward computes dx = dy * gelu'(x).
func GELUBackward(cache *ActCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.X == nil {
		return nil, fmt.Errorf("gelu backward: no cached activations")
	}
	if cache.X.Len() != dy.Len() {
		return nil, fmt.Errorf("gelu backward: dy %v for x %v: %w",
			dy.Shape(), cache.X.Shape(), tensor.ErrShape)
	}
	dx := tensor.New(cache.X.Shape()...)
	xd, dyd, dxd := cache.X.Data(), dy.Data(), dx.Data()
	for i, v := range xd {
		dxd[i] = dyd[i] * geluGradScalar(v)
	}
	return dx, nil
}

const (
	geluC0 = 0.7978845608028654 // sqrt(2/pi)
	geluC1 = 0.044715
)

func geluScalar(v float32) float32 {
	x := float64(v)
	return float32(0.5 * x * (1 + math.Tanh(geluC0*(x+geluC1*x*x*x))))
}

func geluGradScalar(v float32) float32 {
	x := float64(v)
	inner := geluC0 * (x + geluC1*x*x*x)
	t := math.Tanh(inner)
	dInner := geluC0 * (1 + 3*geluC1*x*x)
	return float32(0.5*(1+t) + 0.5*x*(1-t*t)*dInner)
}

// SiLU applies x * sigmoid(x), the activation used by Llama's SwiGLU
// feed-forward network.
func SiLU(x *tensor.Tensor, cache *ActCache) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		od[i] = siluScalar(v)
	}
	if cache != nil {
		cache.X = x
	}
	return out
}

// SiLUBackward computes dx = dy * silu'(x).
func SiLUBackward(cache *ActCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.X == nil {
		return nil, fmt.Errorf("silu backward: no cached activations")
	}
	if cache.X.Len() != dy.Len() {
		return nil, fmt.Errorf("silu backward: dy %v for x %v: %w",
			dy.Shape(), cache.X.Shape(), tensor.ErrShape)
	}
	dx := tensor.New(cache.X.Shape()...)
	xd, dyd, dxd := cache.X.Data(), dy.Data(), dx.Data()
	for i, v := range xd {
		dxd[i] = dyd[i] * siluGradScalar(v)
	}
	return dx, nil
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

func siluScalar(v float32) float32 {
	x := float64(v)
	return float32(x * sigmoid(x))
}

func siluGradScalar(v float32) float32 {
	x := float64(v)
	s := sigmoid(x)
	return float32(s * (1 + x*(1-s)))
}
