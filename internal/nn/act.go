package nn

import (
	"fmt"
	"math"

	"menos/internal/tensor"
)

// actGrain is the ParallelFor grain for activation kernels: tanh/exp
// make them compute-bound, so they fan out earlier than memory-bound
// elementwise ops.
const actGrain = 1 << 13

// ActCache retains the input of an elementwise activation.
type ActCache struct {
	X *tensor.Tensor
}

// Bytes reports retained activation size.
func (c *ActCache) Bytes() int64 {
	if c == nil || c.X == nil {
		return 0
	}
	return c.X.Bytes()
}

// GELU applies the Gaussian Error Linear Unit (tanh approximation, as
// used by OPT/GPT-style models).
func GELU(x *tensor.Tensor, cache *ActCache) *tensor.Tensor {
	return GELUScratch(nil, x, cache)
}

// GELUScratch is GELU drawing its output from the given buffer arena
// (nil degrades to allocation).
func GELUScratch(sc *tensor.Scratch, x *tensor.Tensor, cache *ActCache) *tensor.Tensor {
	out := sc.Get(x.Shape()...)
	xd, od := x.Data(), out.Data()
	if tensor.Parallelism() <= 1 || len(xd) <= actGrain {
		for i, v := range xd {
			od[i] = geluScalar(v)
		}
	} else {
		tensor.ParallelFor(len(xd), actGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = geluScalar(xd[i])
			}
		})
	}
	if cache != nil {
		cache.X = x
	}
	return out
}

// GELUBackward computes dx = dy * gelu'(x).
func GELUBackward(cache *ActCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	return GELUBackwardScratch(nil, cache, dy)
}

// GELUBackwardScratch is GELUBackward drawing dx from the given buffer
// arena (nil degrades to allocation).
func GELUBackwardScratch(sc *tensor.Scratch, cache *ActCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.X == nil {
		return nil, fmt.Errorf("gelu backward: no cached activations")
	}
	if cache.X.Len() != dy.Len() {
		return nil, fmt.Errorf("gelu backward: dy %v for x %v: %w",
			dy.Shape(), cache.X.Shape(), tensor.ErrShape)
	}
	dx := sc.Get(cache.X.Shape()...)
	xd, dyd, dxd := cache.X.Data(), dy.Data(), dx.Data()
	if tensor.Parallelism() <= 1 || len(xd) <= actGrain {
		for i, v := range xd {
			dxd[i] = dyd[i] * geluGradScalar(v)
		}
	} else {
		tensor.ParallelFor(len(xd), actGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dxd[i] = dyd[i] * geluGradScalar(xd[i])
			}
		})
	}
	return dx, nil
}

const (
	geluC0 = 0.7978845608028654 // sqrt(2/pi)
	geluC1 = 0.044715
)

func geluScalar(v float32) float32 {
	x := float64(v)
	return float32(0.5 * x * (1 + math.Tanh(geluC0*(x+geluC1*x*x*x))))
}

func geluGradScalar(v float32) float32 {
	x := float64(v)
	inner := geluC0 * (x + geluC1*x*x*x)
	t := math.Tanh(inner)
	dInner := geluC0 * (1 + 3*geluC1*x*x)
	return float32(0.5*(1+t) + 0.5*x*(1-t*t)*dInner)
}

// SiLU applies x * sigmoid(x), the activation used by Llama's SwiGLU
// feed-forward network.
func SiLU(x *tensor.Tensor, cache *ActCache) *tensor.Tensor {
	return SiLUScratch(nil, x, cache)
}

// SiLUScratch is SiLU drawing its output from the given buffer arena
// (nil degrades to allocation).
func SiLUScratch(sc *tensor.Scratch, x *tensor.Tensor, cache *ActCache) *tensor.Tensor {
	out := sc.Get(x.Shape()...)
	xd, od := x.Data(), out.Data()
	if tensor.Parallelism() <= 1 || len(xd) <= actGrain {
		for i, v := range xd {
			od[i] = siluScalar(v)
		}
	} else {
		tensor.ParallelFor(len(xd), actGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = siluScalar(xd[i])
			}
		})
	}
	if cache != nil {
		cache.X = x
	}
	return out
}

// SiLUBackward computes dx = dy * silu'(x).
func SiLUBackward(cache *ActCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	return SiLUBackwardScratch(nil, cache, dy)
}

// SiLUBackwardScratch is SiLUBackward drawing dx from the given buffer
// arena (nil degrades to allocation).
func SiLUBackwardScratch(sc *tensor.Scratch, cache *ActCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.X == nil {
		return nil, fmt.Errorf("silu backward: no cached activations")
	}
	if cache.X.Len() != dy.Len() {
		return nil, fmt.Errorf("silu backward: dy %v for x %v: %w",
			dy.Shape(), cache.X.Shape(), tensor.ErrShape)
	}
	dx := sc.Get(cache.X.Shape()...)
	xd, dyd, dxd := cache.X.Data(), dy.Data(), dx.Data()
	if tensor.Parallelism() <= 1 || len(xd) <= actGrain {
		for i, v := range xd {
			dxd[i] = dyd[i] * siluGradScalar(v)
		}
	} else {
		tensor.ParallelFor(len(xd), actGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dxd[i] = dyd[i] * siluGradScalar(xd[i])
			}
		})
	}
	return dx, nil
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

func siluScalar(v float32) float32 {
	x := float64(v)
	return float32(x * sigmoid(x))
}

func siluGradScalar(v float32) float32 {
	x := float64(v)
	s := sigmoid(x)
	return float32(s * (1 + x*(1-s)))
}
