package nn

import (
	"fmt"

	"menos/internal/tensor"
)

// Embedding maps token ids to dense vectors via a lookup table of
// shape (vocab, dim).
type Embedding struct {
	Table  Param
	Frozen bool
}

// EmbeddingCache retains the looked-up ids for the backward pass.
type EmbeddingCache struct {
	IDs []int
}

// Bytes reports retained activation size (ids stored as int64-ish cost;
// negligible but accounted for completeness).
func (c *EmbeddingCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return int64(len(c.IDs)) * 8
}

// NewEmbedding creates an embedding table with N(0, 0.02²) entries, the
// conventional transformer initialization.
func NewEmbedding(rng *tensor.RNG, vocab, dim int) *Embedding {
	return &Embedding{Table: NewParam("table", tensor.NewNormal(rng, 0.02, vocab, dim))}
}

// Vocab returns the vocabulary size.
func (e *Embedding) Vocab() int { return e.Table.Value.Dim(0) }

// Dim returns the embedding dimension.
func (e *Embedding) Dim() int { return e.Table.Value.Dim(1) }

// Forward gathers rows of the table for each id, producing a
// (len(ids), dim) tensor.
func (e *Embedding) Forward(ids []int, cache *EmbeddingCache) (*tensor.Tensor, error) {
	dim := e.Dim()
	out := tensor.New(len(ids), dim)
	table := e.Table.Value.Data()
	for i, id := range ids {
		if id < 0 || id >= e.Vocab() {
			return nil, fmt.Errorf("embedding: id %d out of range [0,%d)", id, e.Vocab())
		}
		copy(out.Data()[i*dim:(i+1)*dim], table[id*dim:(id+1)*dim])
	}
	if cache != nil {
		cache.IDs = ids
	}
	return out, nil
}

// Backward scatter-adds dy rows into the table gradient. There is no dx
// for an embedding (inputs are discrete).
func (e *Embedding) Backward(cache *EmbeddingCache, dy *tensor.Tensor) error {
	if cache == nil {
		return fmt.Errorf("embedding backward: no cached ids")
	}
	if e.Frozen {
		return nil
	}
	dim := e.Dim()
	if dy.Rank() != 2 || dy.Dim(0) != len(cache.IDs) || dy.Dim(1) != dim {
		return fmt.Errorf("embedding backward: dy %v for %d ids, dim %d: %w",
			dy.Shape(), len(cache.IDs), dim, tensor.ErrShape)
	}
	grad := e.Table.Grad.Data()
	for i, id := range cache.IDs {
		row := dy.Data()[i*dim : (i+1)*dim]
		g := grad[id*dim : (id+1)*dim]
		for j, v := range row {
			g[j] += v
		}
	}
	return nil
}

// Params returns the table parameter unless frozen.
func (e *Embedding) Params() []Param {
	if e.Frozen {
		return nil
	}
	return []Param{e.Table}
}
