package nn

import (
	"math"
	"testing"

	"menos/internal/tensor"
)

// numericGrad computes the central-difference gradient of loss() with
// respect to every element of x.
func numericGrad(t *testing.T, x *tensor.Tensor, loss func() float64) *tensor.Tensor {
	t.Helper()
	const h = 1e-3
	g := tensor.New(x.Shape()...)
	data := x.Data()
	for i := range data {
		orig := data[i]
		data[i] = orig + h
		up := loss()
		data[i] = orig - h
		down := loss()
		data[i] = orig
		g.Data()[i] = float32((up - down) / (2 * h))
	}
	return g
}

func assertGradClose(t *testing.T, name string, analytic, numeric *tensor.Tensor, tol float64) {
	t.Helper()
	if analytic.Len() != numeric.Len() {
		t.Fatalf("%s: grad length %d != %d", name, analytic.Len(), numeric.Len())
	}
	for i := range analytic.Data() {
		a, n := float64(analytic.Data()[i]), float64(numeric.Data()[i])
		diff := math.Abs(a - n)
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(n)))
		if diff/scale > tol {
			t.Fatalf("%s: grad[%d] analytic %v vs numeric %v (rel %v)", name, i, a, n, diff/scale)
		}
	}
}

// sumLoss is a simple differentiable scalar readout: sum of elements.
// Its gradient with respect to the tensor is all-ones, so backward
// passes can be invoked with a ones tensor as dy.
func sumLoss(tn *tensor.Tensor) float64 {
	return tn.Sum()
}

func ones(shape ...int) *tensor.Tensor {
	o := tensor.New(shape...)
	o.Fill(1)
	return o
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(11)
	l := NewLinear(rng, 4, 3, true)
	x := tensor.NewNormal(rng, 1, 5, 4)

	forward := func() float64 {
		y, err := l.Forward(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sumLoss(y)
	}

	cache := &LinearCache{}
	y, err := l.Forward(x, cache)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := l.Backward(cache, ones(y.Shape()...))
	if err != nil {
		t.Fatal(err)
	}

	assertGradClose(t, "dW", l.W.Grad, numericGrad(t, l.W.Value, forward), 2e-2)
	assertGradClose(t, "dB", l.B.Grad, numericGrad(t, l.B.Value, forward), 2e-2)
	assertGradClose(t, "dx", dx, numericGrad(t, x, forward), 2e-2)
}

// directionalGradCheck compares the analytic gradient projected onto a
// random direction against a central-difference estimate of the loss
// along that direction. One direction instead of one probe per element
// keeps the check affordable at the tile-boundary shapes below, where
// full numericGrad would need tens of thousands of forward passes.
func directionalGradCheck(t *testing.T, name string, rng *tensor.RNG, x, analytic *tensor.Tensor, loss func() float64, tol float64) {
	t.Helper()
	const h = 1e-3
	d := tensor.NewNormal(rng, 1, x.Shape()...)
	xd, dd := x.Data(), d.Data()
	orig := make([]float32, len(xd))
	copy(orig, xd)

	for i := range xd {
		xd[i] = orig[i] + h*dd[i]
	}
	up := loss()
	for i := range xd {
		xd[i] = orig[i] - h*dd[i]
	}
	down := loss()
	copy(xd, orig)

	numeric := (up - down) / (2 * h)
	var dot float64
	for i, g := range analytic.Data() {
		dot += float64(g) * float64(dd[i])
	}
	diff := math.Abs(dot - numeric)
	scale := math.Max(1, math.Max(math.Abs(dot), math.Abs(numeric)))
	if diff/scale > tol {
		t.Fatalf("%s: directional derivative analytic %v vs numeric %v (rel %v)", name, dot, numeric, diff/scale)
	}
}

// TestLinearGradCheckTileBoundaries pushes the gradient check through
// shapes that straddle the 4-row register tile of the matmul kernels
// (63/64/65 rows) with odd in/out widths, at parallelism > 1, so a
// tiling or partitioning bug in any of the four matmul variants used by
// Linear's forward/backward shows up as a wrong gradient.
func TestLinearGradCheckTileBoundaries(t *testing.T) {
	prevPar := tensor.Parallelism()
	defer tensor.SetParallelism(prevPar)
	tensor.SetParallelism(4)

	const in, out = 33, 19 // odd k and n straddle the column tiles
	for _, rows := range []int{63, 64, 65} {
		rng := tensor.NewRNG(uint64(23 + rows))
		l := NewLinear(rng, in, out, true)
		x := tensor.NewNormal(rng, 1, rows, in)

		forward := func() float64 {
			y, err := l.Forward(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			return sumLoss(y)
		}

		cache := &LinearCache{}
		y, err := l.Forward(x, cache)
		if err != nil {
			t.Fatal(err)
		}
		dx, err := l.Backward(cache, ones(y.Shape()...))
		if err != nil {
			t.Fatal(err)
		}

		directionalGradCheck(t, "dx", rng, x, dx, forward, 2e-2)
		directionalGradCheck(t, "dW", rng, l.W.Value, l.W.Grad, forward, 2e-2)
		directionalGradCheck(t, "dB", rng, l.B.Value, l.B.Grad, forward, 2e-2)
	}
}

func TestLinearFrozenSkipsWeightGrads(t *testing.T) {
	rng := tensor.NewRNG(12)
	l := NewLinear(rng, 3, 3, true)
	l.Frozen = true
	x := tensor.NewNormal(rng, 1, 2, 3)
	cache := &LinearCache{}
	y, err := l.Forward(x, cache)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := l.Backward(cache, ones(y.Shape()...))
	if err != nil {
		t.Fatal(err)
	}
	if l.W.Grad.MaxAbs() != 0 || l.B.Grad.MaxAbs() != 0 {
		t.Fatal("frozen layer accumulated weight gradients")
	}
	if dx.MaxAbs() == 0 {
		t.Fatal("frozen layer should still propagate dx")
	}
	if len(l.Params()) != 0 {
		t.Fatal("frozen layer exposes trainable params")
	}
}

func TestLinearBackwardWithoutCache(t *testing.T) {
	rng := tensor.NewRNG(13)
	l := NewLinear(rng, 2, 2, false)
	if _, err := l.Backward(nil, ones(1, 2)); err == nil {
		t.Fatal("Backward with nil cache succeeded")
	}
	if _, err := l.Backward(&LinearCache{}, ones(1, 2)); err == nil {
		t.Fatal("Backward with empty cache succeeded")
	}
}

func TestLinearNoBias(t *testing.T) {
	rng := tensor.NewRNG(14)
	l := NewLinear(rng, 2, 3, false)
	if l.B.Value != nil {
		t.Fatal("no-bias layer has bias")
	}
	if got := len(l.Params()); got != 1 {
		t.Fatalf("Params() len = %d, want 1", got)
	}
	x := tensor.NewNormal(rng, 1, 1, 2)
	if _, err := l.Forward(x, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(15)
	e := NewEmbedding(rng, 10, 4)
	ids := []int{3, 7, 3}
	cache := &EmbeddingCache{}
	out, err := e.Forward(ids, cache)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 3 || out.Dim(1) != 4 {
		t.Fatalf("embedding out shape %v", out.Shape())
	}
	// Row 0 and row 2 look up the same id.
	for c := 0; c < 4; c++ {
		if out.At(0, c) != out.At(2, c) {
			t.Fatal("same id produced different embeddings")
		}
	}
	dy := ones(3, 4)
	if err := e.Backward(cache, dy); err != nil {
		t.Fatal(err)
	}
	// id 3 appears twice -> its grad row should be 2.
	if e.Table.Grad.At(3, 0) != 2 || e.Table.Grad.At(7, 0) != 1 {
		t.Fatalf("scatter-add grads: %v, %v", e.Table.Grad.At(3, 0), e.Table.Grad.At(7, 0))
	}
	if e.Table.Grad.At(0, 0) != 0 {
		t.Fatal("untouched id has gradient")
	}
}

func TestEmbeddingOutOfRange(t *testing.T) {
	rng := tensor.NewRNG(16)
	e := NewEmbedding(rng, 4, 2)
	if _, err := e.Forward([]int{4}, nil); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := e.Forward([]int{-1}, nil); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestLayerNormGradCheck(t *testing.T) {
	rng := tensor.NewRNG(17)
	l := NewLayerNorm(5)
	l.Gamma.Value.FillUniform(rng, 0.5, 1.5)
	l.Beta.Value.FillUniform(rng, -0.5, 0.5)
	x := tensor.NewNormal(rng, 1, 3, 5)

	forward := func() float64 {
		y, err := l.Forward(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Weighted sum keeps the loss sensitive to normalization.
		var s float64
		for i, v := range y.Data() {
			s += float64(v) * float64(i%3+1)
		}
		return s
	}
	dy := tensor.New(3, 5)
	for i := range dy.Data() {
		dy.Data()[i] = float32(i%3 + 1)
	}

	cache := &LayerNormCache{}
	if _, err := l.Forward(x, cache); err != nil {
		t.Fatal(err)
	}
	dx, err := l.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	assertGradClose(t, "dx", dx, numericGrad(t, x, forward), 2e-2)
	assertGradClose(t, "dgamma", l.Gamma.Grad, numericGrad(t, l.Gamma.Value, forward), 2e-2)
	assertGradClose(t, "dbeta", l.Beta.Grad, numericGrad(t, l.Beta.Value, forward), 2e-2)
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := tensor.NewRNG(18)
	l := NewLayerNorm(64)
	x := tensor.NewNormal(rng, 5, 4, 64)
	y, err := l.Forward(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		var mean, ms float64
		for c := 0; c < 64; c++ {
			v := float64(y.At(r, c))
			mean += v
			ms += v * v
		}
		mean /= 64
		variance := ms/64 - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean %v", r, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("row %d variance %v", r, variance)
		}
	}
}

func TestRMSNormGradCheck(t *testing.T) {
	rng := tensor.NewRNG(19)
	l := NewRMSNorm(4)
	l.Gamma.Value.FillUniform(rng, 0.5, 1.5)
	x := tensor.NewNormal(rng, 1, 3, 4)

	forward := func() float64 {
		y, err := l.Forward(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for i, v := range y.Data() {
			s += float64(v) * float64(i%2+1)
		}
		return s
	}
	dy := tensor.New(3, 4)
	for i := range dy.Data() {
		dy.Data()[i] = float32(i%2 + 1)
	}

	cache := &RMSNormCache{}
	if _, err := l.Forward(x, cache); err != nil {
		t.Fatal(err)
	}
	dx, err := l.Backward(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	assertGradClose(t, "dx", dx, numericGrad(t, x, forward), 2e-2)
	assertGradClose(t, "dgamma", l.Gamma.Grad, numericGrad(t, l.Gamma.Value, forward), 2e-2)
}

func TestGELUGradCheck(t *testing.T) {
	rng := tensor.NewRNG(20)
	x := tensor.NewNormal(rng, 1.5, 2, 6)
	forward := func() float64 {
		return sumLoss(GELU(x, nil))
	}
	cache := &ActCache{}
	y := GELU(x, cache)
	dx, err := GELUBackward(cache, ones(y.Shape()...))
	if err != nil {
		t.Fatal(err)
	}
	assertGradClose(t, "gelu dx", dx, numericGrad(t, x, forward), 2e-2)
}

func TestSiLUGradCheck(t *testing.T) {
	rng := tensor.NewRNG(21)
	x := tensor.NewNormal(rng, 1.5, 2, 6)
	forward := func() float64 {
		return sumLoss(SiLU(x, nil))
	}
	cache := &ActCache{}
	y := SiLU(x, cache)
	dx, err := SiLUBackward(cache, ones(y.Shape()...))
	if err != nil {
		t.Fatal(err)
	}
	assertGradClose(t, "silu dx", dx, numericGrad(t, x, forward), 2e-2)
}

func TestActivationShapes(t *testing.T) {
	x := ones(2, 3)
	if y := GELU(x, nil); !y.SameShape(x) {
		t.Fatal("GELU changed shape")
	}
	if y := SiLU(x, nil); !y.SameShape(x) {
		t.Fatal("SiLU changed shape")
	}
	// GELU(0)=0, SiLU(0)=0.
	z := tensor.New(1, 1)
	if GELU(z, nil).At(0, 0) != 0 || SiLU(z, nil).At(0, 0) != 0 {
		t.Fatal("activation at 0 is not 0")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(2, 4)
	loss, dlogits, err := CrossEntropy(logits, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform CE loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient rows sum to zero.
	for r := 0; r < 2; r++ {
		var s float64
		for c := 0; c < 4; c++ {
			s += float64(dlogits.At(r, c))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("dlogits row %d sums to %v", r, s)
		}
	}
	// Target entry has negative gradient.
	if dlogits.At(0, 1) >= 0 {
		t.Fatal("target gradient not negative")
	}
}

func TestCrossEntropyGradCheck(t *testing.T) {
	rng := tensor.NewRNG(22)
	logits := tensor.NewNormal(rng, 1, 3, 5)
	targets := []int{0, 4, 2}
	forward := func() float64 {
		loss, _, err := CrossEntropy(logits, targets)
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	_, dlogits, err := CrossEntropy(logits, targets)
	if err != nil {
		t.Fatal(err)
	}
	assertGradClose(t, "dlogits", dlogits, numericGrad(t, logits, forward), 2e-2)
}

func TestCrossEntropyIgnoreIndex(t *testing.T) {
	logits := tensor.New(3, 4)
	logits.Set(10, 0, 2) // confident correct prediction at row 0
	loss, dlogits, err := CrossEntropy(logits, []int{2, IgnoreIndex, IgnoreIndex})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("confident prediction loss = %v", loss)
	}
	// Ignored rows have zero grad.
	for c := 0; c < 4; c++ {
		if dlogits.At(1, c) != 0 || dlogits.At(2, c) != 0 {
			t.Fatal("ignored row has gradient")
		}
	}
}

func TestCrossEntropyAllIgnored(t *testing.T) {
	logits := tensor.New(2, 3)
	loss, dlogits, err := CrossEntropy(logits, []int{IgnoreIndex, IgnoreIndex})
	if err != nil {
		t.Fatal(err)
	}
	if loss != 0 || dlogits.MaxAbs() != 0 {
		t.Fatal("all-ignored batch produced loss or grads")
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	logits := tensor.New(2, 3)
	if _, _, err := CrossEntropy(logits, []int{0}); err == nil {
		t.Fatal("row/target mismatch accepted")
	}
	if _, _, err := CrossEntropy(logits, []int{0, 5}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestPerplexity(t *testing.T) {
	if p := Perplexity(0); p != 1 {
		t.Fatalf("Perplexity(0) = %v", p)
	}
	if p := Perplexity(math.Log(40)); math.Abs(p-40) > 1e-9 {
		t.Fatalf("Perplexity(ln40) = %v", p)
	}
}
