package nn

import (
	"fmt"

	"menos/internal/tensor"
)

// Linear is a fully connected layer computing y = x @ W (+ b).
// W has shape (in, out); x is (rows, in); y is (rows, out).
type Linear struct {
	W Param
	B Param // B.Value == nil when the layer has no bias

	// Frozen marks the layer's parameters as base-model weights: the
	// backward pass still propagates dx through them but never
	// accumulates weight gradients. This is the mechanical core of
	// adapter-based fine-tuning (§2.1).
	Frozen bool

	// scratch, when set, supplies the output tensors of Forward and
	// Backward from a shared buffer arena instead of the allocator.
	// Ownership of those outputs rests with the caller, exactly as for
	// freshly allocated ones.
	scratch *tensor.Scratch
}

// SetScratch attaches a buffer arena to the layer.
func (l *Linear) SetScratch(sc *tensor.Scratch) { l.scratch = sc }

// LinearCache retains the forward input needed by the backward pass.
type LinearCache struct {
	X *tensor.Tensor
}

// Bytes reports the retained activation size.
func (c *LinearCache) Bytes() int64 {
	if c == nil || c.X == nil {
		return 0
	}
	return c.X.Bytes()
}

// NewLinear creates a Linear layer with Xavier-initialized weights and,
// if bias is true, a zero bias.
func NewLinear(rng *tensor.RNG, in, out int, bias bool) *Linear {
	l := &Linear{W: NewParam("w", tensor.NewXavier(rng, in, out))}
	if bias {
		l.B = NewParam("b", tensor.New(out))
	}
	return l
}

// In returns the input feature dimension.
func (l *Linear) In() int { return l.W.Value.Dim(0) }

// Out returns the output feature dimension.
func (l *Linear) Out() int { return l.W.Value.Dim(1) }

// Forward computes y = x @ W (+ b). When cache is non-nil, the input is
// retained for Backward; when nil, this is a no-grad forward.
func (l *Linear) Forward(x *tensor.Tensor, cache *LinearCache) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != l.In() {
		return nil, fmt.Errorf("linear: input %v incompatible with weight %v: %w",
			x.Shape(), l.W.Value.Shape(), tensor.ErrShape)
	}
	y := l.scratch.Get(x.Dim(0), l.Out())
	if err := tensor.MatMul(y, x, l.W.Value); err != nil {
		return nil, fmt.Errorf("linear forward: %w", err)
	}
	if l.B.Value != nil {
		if err := tensor.AddRowBroadcast(y, y, l.B.Value); err != nil {
			return nil, fmt.Errorf("linear bias: %w", err)
		}
	}
	if cache != nil {
		cache.X = x
	}
	return y, nil
}

// Backward propagates dy to dx and, unless the layer is frozen,
// accumulates weight and bias gradients.
func (l *Linear) Backward(cache *LinearCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.X == nil {
		return nil, fmt.Errorf("linear backward: no cached activations (was Forward called with a cache?)")
	}
	x := cache.X
	if dy.Rank() != 2 || dy.Dim(0) != x.Dim(0) || dy.Dim(1) != l.Out() {
		return nil, fmt.Errorf("linear backward: dy %v for x %v, out %d: %w",
			dy.Shape(), x.Shape(), l.Out(), tensor.ErrShape)
	}
	if !l.Frozen {
		// dW += xᵀ @ dy
		if err := tensor.MatMulTAccum(l.W.Grad, x, dy); err != nil {
			return nil, fmt.Errorf("linear dW: %w", err)
		}
		if l.B.Value != nil {
			if err := tensor.SumRows(l.B.Grad, dy); err != nil {
				return nil, fmt.Errorf("linear dB: %w", err)
			}
		}
	}
	// dx = dy @ Wᵀ
	dx := l.scratch.Get(x.Dim(0), l.In())
	if err := tensor.MatMulT(dx, dy, l.W.Value); err != nil {
		return nil, fmt.Errorf("linear dx: %w", err)
	}
	return dx, nil
}

// Params returns the layer's trainable parameters; empty when frozen.
func (l *Linear) Params() []Param {
	if l.Frozen {
		return nil
	}
	ps := []Param{l.W}
	if l.B.Value != nil {
		ps = append(ps, l.B)
	}
	return ps
}

// BaseParamBytes returns the byte size of the layer's weights
// regardless of frozen state, used by the memory model.
func (l *Linear) BaseParamBytes() int64 {
	b := l.W.Value.Bytes()
	if l.B.Value != nil {
		b += l.B.Value.Bytes()
	}
	return b
}
