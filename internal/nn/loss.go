package nn

import (
	"fmt"
	"math"

	"menos/internal/tensor"
)

// IgnoreIndex marks target positions that contribute no loss (padding).
const IgnoreIndex = -1

// CrossEntropy computes the mean token-level cross-entropy between
// logits (rows, vocab) and integer targets, and the gradient of that
// loss with respect to the logits.
//
// Targets equal to IgnoreIndex are skipped. The returned loss is
// averaged over non-ignored positions, matching the convention of
// causal-LM training so exp(loss) is perplexity.
func CrossEntropy(logits *tensor.Tensor, targets []int) (loss float64, dlogits *tensor.Tensor, err error) {
	return CrossEntropyScratch(nil, logits, targets)
}

// CrossEntropyScratch is CrossEntropy drawing its temporaries and the
// returned dlogits from the given buffer arena (nil degrades to
// allocation). Ownership of dlogits passes to the caller.
func CrossEntropyScratch(sc *tensor.Scratch, logits *tensor.Tensor, targets []int) (loss float64, dlogits *tensor.Tensor, err error) {
	if logits.Rank() != 2 || logits.Dim(0) != len(targets) {
		return 0, nil, fmt.Errorf("cross entropy: logits %v for %d targets: %w",
			logits.Shape(), len(targets), tensor.ErrShape)
	}
	rows, vocab := logits.Dim(0), logits.Dim(1)
	probs := sc.Get(rows, vocab)
	defer sc.Put(probs)
	if err := tensor.SoftmaxRows(probs, logits); err != nil {
		return 0, nil, fmt.Errorf("cross entropy softmax: %w", err)
	}
	dlogits = sc.Get(rows, vocab)
	var total float64
	count := 0
	for r := 0; r < rows; r++ {
		t := targets[r]
		if t == IgnoreIndex {
			continue
		}
		if t < 0 || t >= vocab {
			sc.Put(dlogits)
			return 0, nil, fmt.Errorf("cross entropy: target %d out of range [0,%d)", t, vocab)
		}
		count++
		p := probs.At(r, t)
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(float64(p))
	}
	if count == 0 {
		return 0, dlogits, nil
	}
	inv := float32(1.0 / float64(count))
	for r := 0; r < rows; r++ {
		t := targets[r]
		if t == IgnoreIndex {
			continue
		}
		pr := probs.Data()[r*vocab : (r+1)*vocab]
		dr := dlogits.Data()[r*vocab : (r+1)*vocab]
		for c := 0; c < vocab; c++ {
			dr[c] = pr[c] * inv
		}
		dr[t] -= inv
	}
	return total / float64(count), dlogits, nil
}

// Perplexity converts a mean cross-entropy loss to perplexity.
func Perplexity(loss float64) float64 {
	return math.Exp(loss)
}
