package nn

import (
	"fmt"
	"math"

	"menos/internal/tensor"
)

// normEps stabilizes the variance denominator.
const normEps = 1e-5

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies a learned affine transform (gamma, beta). OPT-style blocks
// use LayerNorm.
type LayerNorm struct {
	Gamma  Param
	Beta   Param
	Frozen bool

	// scratch, when set, supplies output and cache tensors from a
	// shared buffer arena; Backward returns the retained xhat to it.
	scratch *tensor.Scratch
}

// SetScratch attaches a buffer arena to the layer.
func (l *LayerNorm) SetScratch(sc *tensor.Scratch) { l.scratch = sc }

// LayerNormCache retains the normalized input and per-row statistics.
type LayerNormCache struct {
	XHat   *tensor.Tensor // normalized input, same shape as x
	InvStd []float32      // 1/sqrt(var+eps) per row
}

// Bytes reports retained activation size.
func (c *LayerNormCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var b int64
	if c.XHat != nil {
		b += c.XHat.Bytes()
	}
	b += int64(len(c.InvStd)) * 4
	return b
}

// NewLayerNorm creates a LayerNorm over dim features with gamma=1,
// beta=0.
func NewLayerNorm(dim int) *LayerNorm {
	gamma := tensor.New(dim)
	gamma.Fill(1)
	return &LayerNorm{
		Gamma: NewParam("gamma", gamma),
		Beta:  NewParam("beta", tensor.New(dim)),
	}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(x *tensor.Tensor, cache *LayerNormCache) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != l.Gamma.Value.Dim(0) {
		return nil, fmt.Errorf("layernorm: input %v for dim %d: %w",
			x.Shape(), l.Gamma.Value.Dim(0), tensor.ErrShape)
	}
	rows, cols := x.Dim(0), x.Dim(1)
	out := l.scratch.Get(rows, cols)
	var xhat *tensor.Tensor
	var invStd []float32
	if cache != nil {
		// xhat is only needed by the backward pass; a no-grad forward
		// skips it entirely.
		xhat = l.scratch.Get(rows, cols)
		invStd = make([]float32, rows)
	}
	gamma, beta := l.Gamma.Value.Data(), l.Beta.Value.Data()
	for r := 0; r < rows; r++ {
		xr := x.Data()[r*cols : (r+1)*cols]
		var mean float64
		for _, v := range xr {
			mean += float64(v)
		}
		mean /= float64(cols)
		var variance float64
		for _, v := range xr {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(cols)
		inv := float32(1.0 / math.Sqrt(variance+normEps))
		or := out.Data()[r*cols : (r+1)*cols]
		if xhat != nil {
			invStd[r] = inv
			xh := xhat.Data()[r*cols : (r+1)*cols]
			for c := 0; c < cols; c++ {
				h := (xr[c] - float32(mean)) * inv
				xh[c] = h
				or[c] = h*gamma[c] + beta[c]
			}
		} else {
			for c := 0; c < cols; c++ {
				or[c] = (xr[c]-float32(mean))*inv*gamma[c] + beta[c]
			}
		}
	}
	if cache != nil {
		cache.XHat = xhat
		cache.InvStd = invStd
	}
	return out, nil
}

// Backward computes dx and accumulates dgamma/dbeta unless frozen.
func (l *LayerNorm) Backward(cache *LayerNormCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.XHat == nil {
		return nil, fmt.Errorf("layernorm backward: no cached activations")
	}
	rows, cols := cache.XHat.Dim(0), cache.XHat.Dim(1)
	if dy.Rank() != 2 || dy.Dim(0) != rows || dy.Dim(1) != cols {
		return nil, fmt.Errorf("layernorm backward: dy %v for cached %v: %w",
			dy.Shape(), cache.XHat.Shape(), tensor.ErrShape)
	}
	gamma := l.Gamma.Value.Data()
	dx := l.scratch.Get(rows, cols)
	for r := 0; r < rows; r++ {
		dyr := dy.Data()[r*cols : (r+1)*cols]
		xh := cache.XHat.Data()[r*cols : (r+1)*cols]
		inv := cache.InvStd[r]
		// dxhat = dy * gamma
		// dx = inv/cols * (cols*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
		var sumDxh, sumDxhXh float64
		for c := 0; c < cols; c++ {
			dxh := float64(dyr[c]) * float64(gamma[c])
			sumDxh += dxh
			sumDxhXh += dxh * float64(xh[c])
		}
		dxr := dx.Data()[r*cols : (r+1)*cols]
		n := float64(cols)
		for c := 0; c < cols; c++ {
			dxh := float64(dyr[c]) * float64(gamma[c])
			dxr[c] = float32(float64(inv) / n * (n*dxh - sumDxh - float64(xh[c])*sumDxhXh))
		}
	}
	if !l.Frozen {
		dg, db := l.Gamma.Grad.Data(), l.Beta.Grad.Data()
		for r := 0; r < rows; r++ {
			dyr := dy.Data()[r*cols : (r+1)*cols]
			xh := cache.XHat.Data()[r*cols : (r+1)*cols]
			for c := 0; c < cols; c++ {
				dg[c] += dyr[c] * xh[c]
				db[c] += dyr[c]
			}
		}
	}
	if l.scratch != nil {
		// The layer owns xhat; with the backward pass done it is dead.
		// Without an arena the cache keeps its seed semantics (a second
		// Backward over the same cache still works).
		l.scratch.Put(cache.XHat)
		cache.XHat = nil
	}
	return dx, nil
}

// Params returns gamma and beta unless frozen.
func (l *LayerNorm) Params() []Param {
	if l.Frozen {
		return nil
	}
	return []Param{l.Gamma, l.Beta}
}

// RMSNorm normalizes each row by its root-mean-square and applies a
// learned gain. Llama-style blocks use RMSNorm.
type RMSNorm struct {
	Gamma  Param
	Frozen bool

	// scratch, when set, supplies output tensors from a shared buffer
	// arena. The cache retains only the caller's input, so unlike
	// LayerNorm there is nothing for Backward to return.
	scratch *tensor.Scratch
}

// SetScratch attaches a buffer arena to the layer.
func (l *RMSNorm) SetScratch(sc *tensor.Scratch) { l.scratch = sc }

// RMSNormCache retains the input and per-row inverse RMS.
type RMSNormCache struct {
	X      *tensor.Tensor
	InvRMS []float32
}

// Bytes reports retained activation size.
func (c *RMSNormCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var b int64
	if c.X != nil {
		b += c.X.Bytes()
	}
	b += int64(len(c.InvRMS)) * 4
	return b
}

// NewRMSNorm creates an RMSNorm over dim features with gamma=1.
func NewRMSNorm(dim int) *RMSNorm {
	gamma := tensor.New(dim)
	gamma.Fill(1)
	return &RMSNorm{Gamma: NewParam("gamma", gamma)}
}

// Forward normalizes each row of x by its RMS.
func (l *RMSNorm) Forward(x *tensor.Tensor, cache *RMSNormCache) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != l.Gamma.Value.Dim(0) {
		return nil, fmt.Errorf("rmsnorm: input %v for dim %d: %w",
			x.Shape(), l.Gamma.Value.Dim(0), tensor.ErrShape)
	}
	rows, cols := x.Dim(0), x.Dim(1)
	out := l.scratch.Get(rows, cols)
	invRMS := make([]float32, rows)
	gamma := l.Gamma.Value.Data()
	for r := 0; r < rows; r++ {
		xr := x.Data()[r*cols : (r+1)*cols]
		var ms float64
		for _, v := range xr {
			ms += float64(v) * float64(v)
		}
		ms /= float64(cols)
		inv := float32(1.0 / math.Sqrt(ms+normEps))
		invRMS[r] = inv
		or := out.Data()[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			or[c] = xr[c] * inv * gamma[c]
		}
	}
	if cache != nil {
		cache.X = x
		cache.InvRMS = invRMS
	}
	return out, nil
}

// Backward computes dx and accumulates dgamma unless frozen.
func (l *RMSNorm) Backward(cache *RMSNormCache, dy *tensor.Tensor) (*tensor.Tensor, error) {
	if cache == nil || cache.X == nil {
		return nil, fmt.Errorf("rmsnorm backward: no cached activations")
	}
	rows, cols := cache.X.Dim(0), cache.X.Dim(1)
	if dy.Rank() != 2 || dy.Dim(0) != rows || dy.Dim(1) != cols {
		return nil, fmt.Errorf("rmsnorm backward: dy %v for cached %v: %w",
			dy.Shape(), cache.X.Shape(), tensor.ErrShape)
	}
	gamma := l.Gamma.Value.Data()
	dx := l.scratch.Get(rows, cols)
	for r := 0; r < rows; r++ {
		xr := cache.X.Data()[r*cols : (r+1)*cols]
		dyr := dy.Data()[r*cols : (r+1)*cols]
		inv := float64(cache.InvRMS[r])
		// y_c = x_c * inv * g_c with inv = (mean(x²)+eps)^-1/2
		// dx_c = inv * g_c * dy_c - x_c * inv³/n * Σ_j dy_j g_j x_j
		var dot float64
		for c := 0; c < cols; c++ {
			dot += float64(dyr[c]) * float64(gamma[c]) * float64(xr[c])
		}
		coef := inv * inv * inv / float64(cols) * dot
		dxr := dx.Data()[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			dxr[c] = float32(inv*float64(gamma[c])*float64(dyr[c]) - float64(xr[c])*coef)
		}
	}
	if !l.Frozen {
		dg := l.Gamma.Grad.Data()
		for r := 0; r < rows; r++ {
			xr := cache.X.Data()[r*cols : (r+1)*cols]
			dyr := dy.Data()[r*cols : (r+1)*cols]
			inv := cache.InvRMS[r]
			for c := 0; c < cols; c++ {
				dg[c] += dyr[c] * xr[c] * inv
			}
		}
	}
	return dx, nil
}

// Params returns gamma unless frozen.
func (l *RMSNorm) Params() []Param {
	if l.Frozen {
		return nil
	}
	return []Param{l.Gamma}
}
