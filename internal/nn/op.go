package nn

import (
	"fmt"

	"menos/internal/tensor"
)

// Op is a differentiable tensor operator with an opaque activation
// cache. It exists so higher layers (transformer blocks) can treat a
// plain Linear and an adapter-wrapped Linear (e.g. LoRA) uniformly:
// the adapter packages wrap an Op without the block knowing.
//
// Apply with withGrad=false is a no-grad forward: it returns a nil
// cache and retains nothing, which is how Menos performs the first
// forward pass of Fig. 3(d).
type Op interface {
	// Apply runs the forward computation. When withGrad is true the
	// returned cache holds the activations Grad needs.
	Apply(x *tensor.Tensor, withGrad bool) (y *tensor.Tensor, cache any, err error)
	// Grad back-propagates dy using a cache produced by Apply.
	Grad(cache any, dy *tensor.Tensor) (dx *tensor.Tensor, err error)
	// Params returns the operator's trainable parameters.
	Params() []Param
	// SetFrozen toggles base-parameter training.
	SetFrozen(frozen bool)
}

// SizedCache is implemented by all activation caches so callers can
// account for intermediate-result memory (the 𝕀 term of §2.3).
type SizedCache interface {
	Bytes() int64
}

// CacheBytes returns the size of an opaque cache, or 0 when the cache
// is nil or unsized.
func CacheBytes(cache any) int64 {
	if cache == nil {
		return 0
	}
	if s, ok := cache.(SizedCache); ok {
		return s.Bytes()
	}
	return 0
}

// ScratchUser is implemented by layers that can draw their output
// tensors from a shared buffer arena instead of the allocator. Model
// code attaches its step-scoped arena to every layer that supports it;
// layers without an arena keep allocating, so the interface is purely
// an optimization hook.
type ScratchUser interface {
	SetScratch(sc *tensor.Scratch)
}

// Op conformance for the basic layers.
var (
	_ Op = (*Linear)(nil)
	_ Op = (*LayerNorm)(nil)
	_ Op = (*RMSNorm)(nil)

	_ ScratchUser = (*Linear)(nil)
	_ ScratchUser = (*LayerNorm)(nil)
	_ ScratchUser = (*RMSNorm)(nil)
)

// Apply implements Op for Linear.
func (l *Linear) Apply(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, any, error) {
	if !withGrad {
		y, err := l.Forward(x, nil)
		return y, nil, err
	}
	cache := &LinearCache{}
	y, err := l.Forward(x, cache)
	if err != nil {
		return nil, nil, err
	}
	return y, cache, nil
}

// Grad implements Op for Linear.
func (l *Linear) Grad(cache any, dy *tensor.Tensor) (*tensor.Tensor, error) {
	c, ok := cache.(*LinearCache)
	if !ok {
		return nil, fmt.Errorf("linear: unexpected cache type %T", cache)
	}
	return l.Backward(c, dy)
}

// SetFrozen implements Op for Linear.
func (l *Linear) SetFrozen(frozen bool) { l.Frozen = frozen }

// Apply implements Op for LayerNorm.
func (l *LayerNorm) Apply(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, any, error) {
	if !withGrad {
		y, err := l.Forward(x, nil)
		return y, nil, err
	}
	cache := &LayerNormCache{}
	y, err := l.Forward(x, cache)
	if err != nil {
		return nil, nil, err
	}
	return y, cache, nil
}

// Grad implements Op for LayerNorm.
func (l *LayerNorm) Grad(cache any, dy *tensor.Tensor) (*tensor.Tensor, error) {
	c, ok := cache.(*LayerNormCache)
	if !ok {
		return nil, fmt.Errorf("layernorm: unexpected cache type %T", cache)
	}
	return l.Backward(c, dy)
}

// SetFrozen implements Op for LayerNorm.
func (l *LayerNorm) SetFrozen(frozen bool) { l.Frozen = frozen }

// Apply implements Op for RMSNorm.
func (l *RMSNorm) Apply(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, any, error) {
	if !withGrad {
		y, err := l.Forward(x, nil)
		return y, nil, err
	}
	cache := &RMSNormCache{}
	y, err := l.Forward(x, cache)
	if err != nil {
		return nil, nil, err
	}
	return y, cache, nil
}

// Grad implements Op for RMSNorm.
func (l *RMSNorm) Grad(cache any, dy *tensor.Tensor) (*tensor.Tensor, error) {
	c, ok := cache.(*RMSNormCache)
	if !ok {
		return nil, fmt.Errorf("rmsnorm: unexpected cache type %T", cache)
	}
	return l.Backward(c, dy)
}

// SetFrozen implements Op for RMSNorm.
func (l *RMSNorm) SetFrozen(frozen bool) { l.Frozen = frozen }
