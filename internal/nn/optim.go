package nn

import (
	"fmt"
	"math"

	"menos/internal/tensor"
)

// Optimizer updates trainable parameters from their accumulated
// gradients. Implementations hold per-parameter state internally, keyed
// by parameter identity, matching the paper's optimizer-state term 𝕆.
type Optimizer interface {
	// Step applies one update using the current gradients, then the
	// caller typically zeroes gradients for the next accumulation.
	Step(params []Param) error
	// StateBytes reports the optimizer-state footprint (𝕆 in §2.3).
	StateBytes() int64
}

// SnapshottableOptimizer exposes the per-parameter state an optimizer
// keeps between steps, so a checkpoint (or a live migration) can carry
// the full training state: a restored session must resume bit-exactly,
// which for Adam means both moment buffers and the bias-correction
// step count travel with the adapter weights.
type SnapshottableOptimizer interface {
	Optimizer
	// StateSlots returns the optimizer's state tensors for p in a fixed
	// order (Adam: first and second moments; SGD: velocity when
	// momentum is enabled). Absent slots are created zeroed — identical
	// to the lazy initialization Step performs — so a restore can write
	// into them before the first step.
	StateSlots(p Param) []*tensor.Tensor
	// StepCount is the number of Step calls applied so far (Adam bias
	// correction depends on it; SGD reports it for symmetry).
	StepCount() int64
	// SetStepCount overwrites the step counter during a restore.
	SetStepCount(n int64)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	step     int64
	velocity map[*tensor.Tensor]*tensor.Tensor
}

var (
	_ Optimizer              = (*SGD)(nil)
	_ SnapshottableOptimizer = (*SGD)(nil)
)

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{
		LR:       lr,
		Momentum: momentum,
		velocity: make(map[*tensor.Tensor]*tensor.Tensor),
	}
}

// Step applies v = mu*v + g; p -= lr*v (or p -= lr*g without momentum).
func (o *SGD) Step(params []Param) error {
	o.step++
	for _, p := range params {
		if p.Value == nil || p.Grad == nil {
			return fmt.Errorf("sgd: parameter %q has nil value or grad", p.Name)
		}
		if o.Momentum == 0 {
			if err := tensor.AXPY(float32(-o.LR), p.Grad, p.Value); err != nil {
				return fmt.Errorf("sgd step %q: %w", p.Name, err)
			}
			continue
		}
		v, ok := o.velocity[p.Value]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			o.velocity[p.Value] = v
		}
		vd, gd, pd := v.Data(), p.Grad.Data(), p.Value.Data()
		mu, lr := float32(o.Momentum), float32(o.LR)
		for i := range vd {
			vd[i] = mu*vd[i] + gd[i]
			pd[i] -= lr * vd[i]
		}
	}
	return nil
}

// StateBytes reports momentum-buffer bytes.
func (o *SGD) StateBytes() int64 {
	var b int64
	for _, v := range o.velocity {
		b += v.Bytes()
	}
	return b
}

// StateSlots implements SnapshottableOptimizer: the velocity buffer
// when momentum is enabled, nothing otherwise.
func (o *SGD) StateSlots(p Param) []*tensor.Tensor {
	if o.Momentum == 0 || p.Value == nil {
		return nil
	}
	v, ok := o.velocity[p.Value]
	if !ok {
		v = tensor.New(p.Value.Shape()...)
		o.velocity[p.Value] = v
	}
	return []*tensor.Tensor{v}
}

// StepCount implements SnapshottableOptimizer.
func (o *SGD) StepCount() int64 { return o.step }

// SetStepCount implements SnapshottableOptimizer.
func (o *SGD) SetStepCount(n int64) { o.step = n }

// Adam implements the Adam optimizer with bias correction; the default
// hyperparameters match PyTorch's.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64 // decoupled (AdamW-style) when non-zero

	step int64
	m    map[*tensor.Tensor]*tensor.Tensor
	v    map[*tensor.Tensor]*tensor.Tensor
}

var (
	_ Optimizer              = (*Adam)(nil)
	_ SnapshottableOptimizer = (*Adam)(nil)
)

// NewAdam creates an Adam optimizer with standard betas (0.9, 0.999).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*tensor.Tensor]*tensor.Tensor),
		v:     make(map[*tensor.Tensor]*tensor.Tensor),
	}
}

// Step applies one Adam update.
func (o *Adam) Step(params []Param) error {
	o.step++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for _, p := range params {
		if p.Value == nil || p.Grad == nil {
			return fmt.Errorf("adam: parameter %q has nil value or grad", p.Name)
		}
		m, ok := o.m[p.Value]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			o.m[p.Value] = m
			o.v[p.Value] = tensor.New(p.Value.Shape()...)
		}
		v := o.v[p.Value]
		md, vd, gd, pd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		b1, b2 := float32(o.Beta1), float32(o.Beta2)
		for i := range md {
			g := gd[i]
			md[i] = b1*md[i] + (1-b1)*g
			vd[i] = b2*vd[i] + (1-b2)*g*g
			mHat := float64(md[i]) / bc1
			vHat := float64(vd[i]) / bc2
			upd := o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
			if o.WeightDecay != 0 {
				upd += o.LR * o.WeightDecay * float64(pd[i])
			}
			pd[i] -= float32(upd)
		}
	}
	return nil
}

// StateSlots implements SnapshottableOptimizer: the first and second
// moment buffers, in that order.
func (o *Adam) StateSlots(p Param) []*tensor.Tensor {
	if p.Value == nil {
		return nil
	}
	m, ok := o.m[p.Value]
	if !ok {
		m = tensor.New(p.Value.Shape()...)
		o.m[p.Value] = m
		o.v[p.Value] = tensor.New(p.Value.Shape()...)
	}
	return []*tensor.Tensor{m, o.v[p.Value]}
}

// StepCount implements SnapshottableOptimizer.
func (o *Adam) StepCount() int64 { return o.step }

// SetStepCount implements SnapshottableOptimizer.
func (o *Adam) SetStepCount(n int64) { o.step = n }

// StateBytes reports first+second moment buffer bytes (the 𝕆 term).
func (o *Adam) StateBytes() int64 {
	var b int64
	for _, m := range o.m {
		b += m.Bytes()
	}
	for _, v := range o.v {
		b += v.Bytes()
	}
	return b
}
