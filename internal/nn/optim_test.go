package nn

import (
	"math"
	"testing"
	"testing/quick"

	"menos/internal/tensor"
)

// quadratic sets grad = 2*(value - target), the gradient of
// ||value - target||².
func quadraticGrad(p Param, target float32) {
	for i, v := range p.Value.Data() {
		p.Grad.Data()[i] = 2 * (v - target)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := NewParam("p", tensor.MustFromSlice([]float32{5, -3, 10}, 3))
	opt := NewSGD(0.1, 0)
	for i := 0; i < 200; i++ {
		quadraticGrad(p, 1)
		if err := opt.Step([]Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range p.Value.Data() {
		if math.Abs(float64(v)-1) > 1e-3 {
			t.Fatalf("param[%d] = %v, want 1", i, v)
		}
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := NewParam("p", tensor.MustFromSlice([]float32{4}, 1))
	opt := NewSGD(0.05, 0.9)
	for i := 0; i < 300; i++ {
		quadraticGrad(p, -2)
		if err := opt.Step([]Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(float64(p.Value.At(0))+2) > 1e-2 {
		t.Fatalf("param = %v, want -2", p.Value.At(0))
	}
	if opt.StateBytes() != 4 {
		t.Fatalf("StateBytes = %d, want 4", opt.StateBytes())
	}
}

func TestSGDWithoutMomentumHasNoState(t *testing.T) {
	p := NewParam("p", tensor.New(10))
	opt := NewSGD(0.1, 0)
	quadraticGrad(p, 0)
	if err := opt.Step([]Param{p}); err != nil {
		t.Fatal(err)
	}
	if opt.StateBytes() != 0 {
		t.Fatalf("momentum-free SGD holds state: %d bytes", opt.StateBytes())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := NewParam("p", tensor.MustFromSlice([]float32{5, -3, 10, 0.5}, 4))
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		quadraticGrad(p, 2)
		if err := opt.Step([]Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range p.Value.Data() {
		if math.Abs(float64(v)-2) > 1e-2 {
			t.Fatalf("param[%d] = %v, want 2", i, v)
		}
	}
}

func TestAdamStateBytes(t *testing.T) {
	p := NewParam("p", tensor.New(100))
	opt := NewAdam(0.01)
	quadraticGrad(p, 0)
	if err := opt.Step([]Param{p}); err != nil {
		t.Fatal(err)
	}
	// m and v buffers: 2 * 100 floats * 4 bytes.
	if got := opt.StateBytes(); got != 800 {
		t.Fatalf("StateBytes = %d, want 800", got)
	}
}

func TestAdamWeightDecayPullsTowardZero(t *testing.T) {
	p := NewParam("p", tensor.MustFromSlice([]float32{1}, 1))
	opt := NewAdam(0.01)
	opt.WeightDecay = 0.5
	// Zero gradient: only decay acts.
	for i := 0; i < 100; i++ {
		if err := opt.Step([]Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	if v := p.Value.At(0); v >= 1 || v < 0 {
		t.Fatalf("weight decay did not shrink parameter: %v", v)
	}
}

func TestOptimizerNilParamErrors(t *testing.T) {
	bad := Param{Name: "bad"}
	if err := NewSGD(0.1, 0).Step([]Param{bad}); err == nil {
		t.Fatal("SGD accepted nil-value param")
	}
	if err := NewAdam(0.1).Step([]Param{bad}); err == nil {
		t.Fatal("Adam accepted nil-value param")
	}
}

func TestZeroGrads(t *testing.T) {
	p := NewParam("p", tensor.New(3))
	p.Grad.Fill(5)
	ZeroGrads([]Param{p})
	if p.Grad.MaxAbs() != 0 {
		t.Fatal("ZeroGrads left gradients")
	}
}

func TestParamBytes(t *testing.T) {
	ps := []Param{
		NewParam("a", tensor.New(10)),
		NewParam("b", tensor.New(2, 5)),
	}
	if got := ParamBytes(ps); got != 80 {
		t.Fatalf("ParamBytes = %d, want 80", got)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", tensor.New(2))
	p.Grad.Data()[0] = 3
	p.Grad.Data()[1] = 4
	pre := ClipGradNorm([]Param{p}, 1)
	if math.Abs(pre-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	if post := GradL2Norm([]Param{p}); math.Abs(post-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 1", post)
	}
}

// Property: clipping never increases the gradient norm, and a norm
// already below the bound is untouched.
func TestClipGradNormProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		p := NewParam("p", tensor.New(1+rng.Intn(16)))
		p.Grad.FillUniform(rng, -10, 10)
		before := p.Grad.Clone()
		maxNorm := 0.1 + rng.Float64()*20
		pre := ClipGradNorm([]Param{p}, maxNorm)
		post := GradL2Norm([]Param{p})
		if post > maxNorm*1.0001 {
			return false
		}
		if pre <= maxNorm {
			// Should be unchanged.
			for i := range before.Data() {
				if before.Data()[i] != p.Grad.Data()[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixed(t *testing.T) {
	ps := Prefixed("block0", []Param{NewParam("w", tensor.New(1))})
	if ps[0].Name != "block0.w" {
		t.Fatalf("Prefixed name = %q", ps[0].Name)
	}
}

func TestCacheBytes(t *testing.T) {
	var (
		lc  *LinearCache
		ec  *EmbeddingCache
		lnc *LayerNormCache
		rc  *RMSNormCache
		ac  *ActCache
	)
	// Nil caches report zero.
	if lc.Bytes()+ec.Bytes()+lnc.Bytes()+rc.Bytes()+ac.Bytes() != 0 {
		t.Fatal("nil caches report non-zero bytes")
	}
	full := &LinearCache{X: tensor.New(4, 4)}
	if full.Bytes() != 64 {
		t.Fatalf("LinearCache bytes = %d, want 64", full.Bytes())
	}
}
