// Package nn implements neural-network layers with explicit, manually
// derived backward passes and explicit activation caches.
//
// The cache design mirrors the memory behaviour Menos exploits:
//
//   - Forward(x) with a nil cache is the paper's "non-gradient
//     environment" forward — no intermediate results are retained.
//   - Forward(x) with a cache retains exactly the activations the
//     backward pass needs; Cache.Bytes() is the 𝕀 term of §2.3.
//   - Dropping the cache is the "release GPU memory" step of Fig. 3.
//
// Every layer distinguishes frozen (base-model) parameters, which never
// accumulate gradients, from trainable (adapter) parameters.
package nn

import (
	"fmt"
	"math"

	"menos/internal/tensor"
)

// Param is a named trainable parameter together with its gradient
// accumulator. Grad always has the same shape as Value.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and a zeroed gradient of the same
// shape.
func NewParam(name string, value *tensor.Tensor) Param {
	return Param{
		Name:  name,
		Value: value,
		Grad:  tensor.New(value.Shape()...),
	}
}

// ZeroGrads zeroes the gradients of all params.
func ZeroGrads(params []Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// ParamBytes returns the total byte size of parameter values (not
// gradients).
func ParamBytes(params []Param) int64 {
	var b int64
	for _, p := range params {
		b += p.Value.Bytes()
	}
	return b
}

// GradL2Norm returns the Euclidean norm over all gradients, used for
// gradient clipping and convergence diagnostics.
func GradL2Norm(params []Param) float64 {
	var s float64
	for _, p := range params {
		n := p.Grad.L2Norm()
		s += n * n
	}
	return math.Sqrt(s)
}

// ClipGradNorm scales all gradients so their global L2 norm does not
// exceed maxNorm. Returns the pre-clip norm.
func ClipGradNorm(params []Param, maxNorm float64) float64 {
	norm := GradL2Norm(params)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}

// Prefixed returns params with name prefixed by "prefix.", used when a
// module aggregates sub-module parameters.
func Prefixed(prefix string, params []Param) []Param {
	out := make([]Param, len(params))
	for i, p := range params {
		out[i] = Param{
			Name:  fmt.Sprintf("%s.%s", prefix, p.Name),
			Value: p.Value,
			Grad:  p.Grad,
		}
	}
	return out
}
