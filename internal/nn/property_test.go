package nn

import (
	"math"
	"testing"
	"testing/quick"

	"menos/internal/tensor"
)

// Property: a bias-free Linear is a linear map: f(x+y) == f(x) + f(y)
// and f(αx) == αf(x).
func TestLinearIsLinearProperty(t *testing.T) {
	f := func(seed uint64, alphaRaw int8) bool {
		rng := tensor.NewRNG(seed)
		in, out := 1+rng.Intn(6), 1+rng.Intn(6)
		l := NewLinear(rng, in, out, false)
		alpha := float32(alphaRaw) / 16

		x := tensor.NewNormal(rng, 1, 2, in)
		y := tensor.NewNormal(rng, 1, 2, in)

		sum := tensor.New(2, in)
		if err := tensor.Add(sum, x, y); err != nil {
			return false
		}
		fSum, err := l.Forward(sum, nil)
		if err != nil {
			return false
		}
		fx, err := l.Forward(x, nil)
		if err != nil {
			return false
		}
		fy, err := l.Forward(y, nil)
		if err != nil {
			return false
		}
		want := tensor.New(2, out)
		if err := tensor.Add(want, fx, fy); err != nil {
			return false
		}
		for i := range want.Data() {
			if math.Abs(float64(fSum.Data()[i]-want.Data()[i])) > 1e-3 {
				return false
			}
		}

		scaled := x.Clone()
		scaled.Scale(alpha)
		fScaled, err := l.Forward(scaled, nil)
		if err != nil {
			return false
		}
		fxScaled := fx.Clone()
		fxScaled.Scale(alpha)
		for i := range fScaled.Data() {
			if math.Abs(float64(fScaled.Data()[i]-fxScaled.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: cross-entropy gradient rows sum to zero (softmax gradient
// identity) and the loss is non-negative, for any logits and targets.
func TestCrossEntropyGradientIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		rows, vocab := 1+rng.Intn(5), 2+rng.Intn(10)
		logits := tensor.New(rows, vocab)
		logits.FillUniform(rng, -10, 10)
		targets := make([]int, rows)
		for i := range targets {
			targets[i] = rng.Intn(vocab)
		}
		loss, dlogits, err := CrossEntropy(logits, targets)
		if err != nil {
			return false
		}
		if loss < 0 || math.IsNaN(loss) {
			return false
		}
		for r := 0; r < rows; r++ {
			var sum float64
			for c := 0; c < vocab; c++ {
				sum += float64(dlogits.At(r, c))
			}
			if math.Abs(sum) > 1e-5 {
				return false
			}
			// Target entry has the only possible negative gradient.
			if dlogits.At(r, targets[r]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: optimizers are deterministic — two identically seeded
// parameter sets driven by identical gradients stay identical.
func TestOptimizerDeterminismProperty(t *testing.T) {
	f := func(seed uint64, adam bool) bool {
		build := func() (Param, Optimizer) {
			rng := tensor.NewRNG(seed)
			p := NewParam("p", tensor.NewNormal(rng, 1, 8))
			var opt Optimizer
			if adam {
				opt = NewAdam(0.01)
			} else {
				opt = NewSGD(0.01, 0.9)
			}
			return p, opt
		}
		p1, o1 := build()
		p2, o2 := build()
		gradRNG := tensor.NewRNG(seed ^ 0xabc)
		for step := 0; step < 5; step++ {
			g := tensor.NewNormal(gradRNG, 1, 8)
			if err := p1.Grad.CopyFrom(g); err != nil {
				return false
			}
			if err := p2.Grad.CopyFrom(g); err != nil {
				return false
			}
			if o1.Step([]Param{p1}) != nil || o2.Step([]Param{p2}) != nil {
				return false
			}
		}
		for i := range p1.Value.Data() {
			if p1.Value.Data()[i] != p2.Value.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LayerNorm's output is invariant to input shift and scale
// (for positive scales), the defining normalization property.
func TestLayerNormInvarianceProperty(t *testing.T) {
	f := func(seed uint64, shiftRaw int8, scaleRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		dim := 4 + rng.Intn(12)
		l := NewLayerNorm(dim)
		x := tensor.NewNormal(rng, 1, 2, dim)
		shift := float32(shiftRaw) / 4
		scale := 0.5 + float32(scaleRaw)/64

		y1, err := l.Forward(x, nil)
		if err != nil {
			return false
		}
		moved := x.Clone()
		for i := range moved.Data() {
			moved.Data()[i] = moved.Data()[i]*scale + shift
		}
		y2, err := l.Forward(moved, nil)
		if err != nil {
			return false
		}
		for i := range y1.Data() {
			if math.Abs(float64(y1.Data()[i]-y2.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
