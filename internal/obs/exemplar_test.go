package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestExemplarTracksExtreme: the exemplar follows the highest bucket
// seen, replacing it only with observations at least as extreme, so it
// always points at a trace of the histogram's tail.
func TestExemplarTracksExtreme(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_seconds", []float64{0.1, 1, 10})

	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("exemplar before any traced observation")
	}
	h.Observe(50) // untraced: counted, but no exemplar
	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("untraced observation set an exemplar")
	}

	h.ObserveExemplar(0.5, 0x111) // bucket le=1
	id, v, ok := h.Exemplar()
	if !ok || id != 0x111 || v != 0.5 {
		t.Fatalf("exemplar = %x/%v/%v", id, v, ok)
	}
	h.ObserveExemplar(0.05, 0x222) // lower bucket: not an upgrade
	if id, _, _ := h.Exemplar(); id != 0x111 {
		t.Fatalf("lower-bucket observation replaced exemplar: %x", id)
	}
	h.ObserveExemplar(5, 0x333) // higher bucket wins
	if id, v, _ := h.Exemplar(); id != 0x333 || v != 5 {
		t.Fatalf("exemplar = %x/%v, want 333/5", id, v)
	}
	h.ObserveExemplar(7, 0x444) // same bucket: most recent wins
	if id, _, _ := h.Exemplar(); id != 0x444 {
		t.Fatalf("same-bucket recency: %x", id)
	}
}

// TestExemplarInJSON: /metrics.json carries the exemplar with the same
// zero-padded hex trace ID format as /trace span args.
func TestExemplarInJSON(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("w_seconds", []float64{1})
	h.ObserveExemplar(3, 0xbeef)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]struct {
			Exemplar *struct {
				TraceID string  `json:"trace_id"`
				Value   float64 `json:"value"`
			} `json:"exemplar"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	ex := doc.Histograms["w_seconds"].Exemplar
	if ex == nil || ex.TraceID != "000000000000beef" || ex.Value != 3 {
		t.Fatalf("exemplar JSON = %+v", ex)
	}
}

// TestHelpEscaping: newlines and backslashes in help strings must not
// break the one-line HELP format.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "first line\nsecond \\ line").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP c_total first line\nsecond \\ line`
	if !strings.Contains(buf.String(), want+"\n") {
		t.Fatalf("HELP not escaped:\n%s", buf.String())
	}
}

// TestHealthzJSON: /healthz reports uptime, build info and the wired
// admission state as JSON.
func TestHealthzJSON(t *testing.T) {
	h := Handler(NewRegistry(), nil, WithAdmission(func() string { return "throttled" }))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("status %d type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var doc struct {
		Status         string  `json:"status"`
		UptimeSeconds  float64 `json:"uptime_seconds"`
		GoVersion      string  `json:"go_version"`
		AdmissionState string  `json:"admission_state"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.UptimeSeconds < 0 || doc.GoVersion == "" {
		t.Fatalf("healthz = %+v", doc)
	}
	if doc.AdmissionState != "throttled" {
		t.Fatalf("admission_state %q", doc.AdmissionState)
	}
}

// TestTraceEndpointPaging: /trace supports ?since= (seq cursor) and
// ?window= (trailing duration), rejects malformed values, and reports
// lastSeq for the next cursor.
func TestTraceEndpointPaging(t *testing.T) {
	clk := &manualClock{}
	tr := NewTracer(clk)
	for i := 0; i < 4; i++ {
		tr.Record("c", "s", "x", time.Duration(i)*time.Second, time.Second)
	}
	clk.t = 4 * time.Second
	h := Handler(nil, tr)

	count := func(path string) (n int, lastSeq uint64) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		var doc struct {
			TraceEvents []struct {
				Ph string `json:"ph"`
			} `json:"traceEvents"`
			LastSeq uint64 `json:"lastSeq"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, e := range doc.TraceEvents {
			if e.Ph == "X" {
				n++
			}
		}
		return n, doc.LastSeq
	}
	if n, last := count("/trace"); n != 4 || last != 4 {
		t.Fatalf("full dump: %d events, lastSeq %d", n, last)
	}
	if n, _ := count("/trace?since=2"); n != 2 {
		t.Fatalf("since=2: %d events, want 2", n)
	}
	if n, _ := count("/trace?window=1500ms"); n != 2 {
		t.Fatalf("window=1500ms: %d events, want 2 (ends at 3s and 4s)", n)
	}
	for _, bad := range []string{"/trace?since=nope", "/trace?window=nope"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 400 {
			t.Fatalf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}
