package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by metric name so the
// output is deterministic. A labeled family sharing its name with an
// unlabeled metric is merged under one TYPE header: the unlabeled
// sample first, then the labeled series in label order — which is what
// makes Σ series{client=*} comparable to the aggregate on a single
// scrape. Histogram exemplars are appended to their bucket line in the
// OpenMetrics style (`# {trace_id="..."} <value>`). Safe on a nil
// registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder

	for _, name := range unionKeys(r.counters, r.counterVecs) {
		writeHeader(&b, name, "counter", r.help[name])
		if c, ok := r.counters[name]; ok {
			fmt.Fprintf(&b, "%s %d\n", name, c.Value())
		}
		if cv, ok := r.counterVecs[name]; ok {
			for _, lv := range cv.Labels() {
				c, _ := cv.Get(lv)
				fmt.Fprintf(&b, "%s{%s=\"%s\"} %d\n", name, cv.Label(), escapeLabel(lv), c.Value())
			}
		}
	}
	for _, name := range unionKeys(r.gauges, r.gaugeVecs) {
		writeHeader(&b, name, "gauge", r.help[name])
		if g, ok := r.gauges[name]; ok {
			fmt.Fprintf(&b, "%s %d\n", name, g.Value())
		}
		if gv, ok := r.gaugeVecs[name]; ok {
			for _, lv := range gv.Labels() {
				g, _ := gv.Get(lv)
				fmt.Fprintf(&b, "%s{%s=\"%s\"} %d\n", name, gv.Label(), escapeLabel(lv), g.Value())
			}
		}
	}
	for _, name := range unionKeys(r.hists, r.histVecs) {
		writeHeader(&b, name, "histogram", r.help[name])
		if h, ok := r.hists[name]; ok {
			writeHistText(&b, name, "", "", h)
		}
		if hv, ok := r.histVecs[name]; ok {
			for _, lv := range hv.Labels() {
				h, _ := hv.Get(lv)
				writeHistText(&b, name, hv.Label(), lv, h)
			}
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistText emits one histogram series — cumulative buckets, sum,
// count — optionally carrying a label pair. The bucket the exemplar
// landed in (if any) gets the OpenMetrics exemplar suffix.
func writeHistText(b *strings.Builder, name, label, value string, h *Histogram) {
	s := h.Snapshot()
	exIdx, exID, exVal, exOK := h.exemplarInfo()
	var lp, ls string // prefix inside bucket braces; label set for sum/count
	if label != "" {
		lp = label + `="` + escapeLabel(value) + `",`
		ls = "{" + label + `="` + escapeLabel(value) + `"}`
	}
	bucket := func(i int, le string, cum int64) {
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d", name, lp, le, cum)
		if exOK && i == exIdx {
			fmt.Fprintf(b, " # {trace_id=\"%016x\"} %s", exID, formatFloat(exVal))
		}
		b.WriteByte('\n')
	}
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		bucket(i, formatFloat(bound), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	bucket(len(s.Bounds), "+Inf", cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, ls, formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, ls, s.Count)
}

func writeHeader(b *strings.Builder, name, typ, help string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// escapeHelp escapes backslashes and newlines per the Prometheus text
// exposition format, so a multi-line help string cannot terminate the
// HELP line early and corrupt the scrape.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text exposition format:
// backslash, double quote, and newline. A client ID containing any of
// these cannot break out of the label set.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// histJSON is the JSON projection of one histogram, with ready-made
// quantile estimates so a curl of /metrics.json answers "what is the
// p99 queue wait" without client-side math.
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
	// Exemplar links the histogram's tail to a concrete trace: the
	// most recent observation in the highest bucket seen.
	Exemplar *exemplarJSON `json:"exemplar,omitempty"`
}

// exemplarJSON is the trace pointer behind a histogram's extreme
// observation; trace_id matches the span args in /trace output.
type exemplarJSON struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// vecJSON is the JSON projection of one labeled counter or gauge
// family: the label key plus the per-value series.
type vecJSON struct {
	Label  string           `json:"label"`
	Series map[string]int64 `json:"series"`
}

// histVecJSON is the JSON projection of one labeled histogram family.
type histVecJSON struct {
	Label  string              `json:"label"`
	Series map[string]histJSON `json:"series"`
}

// histToJSON projects one histogram into its JSON form.
func histToJSON(h *Histogram) histJSON {
	s := h.Snapshot()
	hj := histJSON{
		Count:   s.Count,
		Sum:     s.Sum,
		Buckets: make(map[string]int64, len(s.Counts)),
		P50:     s.Quantile(0.50),
		P90:     s.Quantile(0.90),
		P99:     s.Quantile(0.99),
	}
	if id, v, ok := h.Exemplar(); ok {
		hj.Exemplar = &exemplarJSON{TraceID: fmt.Sprintf("%016x", id), Value: v}
	}
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		hj.Buckets[formatFloat(bound)] = cum
	}
	hj.Buckets["+Inf"] = cum + s.Counts[len(s.Bounds)]
	return hj
}

// WriteJSON renders the registry as a single expvar-style JSON object:
// {"counters": {...}, "gauges": {...}, "histograms": {...}}, plus —
// when labeled families are registered — "counter_vecs", "gauge_vecs"
// and "histogram_vecs" sections keyed by family name. Keys are emitted
// in sorted order (encoding/json sorts map keys). Safe on nil.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := struct {
		Counters      map[string]int64       `json:"counters"`
		Gauges        map[string]int64       `json:"gauges"`
		Histograms    map[string]histJSON    `json:"histograms"`
		CounterVecs   map[string]vecJSON     `json:"counter_vecs,omitempty"`
		GaugeVecs     map[string]vecJSON     `json:"gauge_vecs,omitempty"`
		HistogramVecs map[string]histVecJSON `json:"histogram_vecs,omitempty"`
	}{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]histJSON),
	}
	if r != nil {
		r.mu.RLock()
		for name, c := range r.counters {
			out.Counters[name] = c.Value()
		}
		for name, g := range r.gauges {
			out.Gauges[name] = g.Value()
		}
		for name, h := range r.hists {
			out.Histograms[name] = histToJSON(h)
		}
		for name, cv := range r.counterVecs {
			vj := vecJSON{Label: cv.Label(), Series: make(map[string]int64)}
			for _, lv := range cv.Labels() {
				c, _ := cv.Get(lv)
				vj.Series[lv] = c.Value()
			}
			if out.CounterVecs == nil {
				out.CounterVecs = make(map[string]vecJSON)
			}
			out.CounterVecs[name] = vj
		}
		for name, gv := range r.gaugeVecs {
			vj := vecJSON{Label: gv.Label(), Series: make(map[string]int64)}
			for _, lv := range gv.Labels() {
				g, _ := gv.Get(lv)
				vj.Series[lv] = g.Value()
			}
			if out.GaugeVecs == nil {
				out.GaugeVecs = make(map[string]vecJSON)
			}
			out.GaugeVecs[name] = vj
		}
		for name, hv := range r.histVecs {
			vj := histVecJSON{Label: hv.Label(), Series: make(map[string]histJSON)}
			for _, lv := range hv.Labels() {
				h, _ := hv.Get(lv)
				vj.Series[lv] = histToJSON(h)
			}
			if out.HistogramVecs == nil {
				out.HistogramVecs = make(map[string]histVecJSON)
			}
			out.HistogramVecs[name] = vj
		}
		r.mu.RUnlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// HandlerOption customizes Handler's endpoints.
type HandlerOption func(*handlerOpts)

type handlerOpts struct {
	admission func() string
	loadz     func() any
	identity  func() (id int, addr string)
	pprof     bool
}

// WithAdmission wires the /healthz endpoint to a live admission-state
// reader (e.g. the scheduler's AdmissionState().String()).
func WithAdmission(f func() string) HandlerOption {
	return func(o *handlerOpts) { o.admission = f }
}

// WithLoadz serves a structured load snapshot at /loadz: f is called
// per request and its result marshalled as indented JSON. The serving
// plane passes a closure returning fleet.LoadSnapshot — the polling
// surface for placement controllers and menos-top.
func WithLoadz(f func() any) HandlerOption {
	return func(o *handlerOpts) { o.loadz = f }
}

// WithIdentity stamps /healthz with the process's fleet identity —
// its ServerID and listen address. A control plane polling health
// through a fixed port uses these to detect that a *different* server
// now answers there (a restart lost all sessions; a port remap points
// at another instance entirely) instead of trusting "status: ok" from
// a stranger. f is called per request: the listen address is only
// known after the listener binds.
func WithIdentity(f func() (id int, addr string)) HandlerOption {
	return func(o *handlerOpts) { o.identity = f }
}

// WithPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// the metrics mux. Off by default (the daemons gate it behind -pprof):
// profiles expose stack and heap contents, which is more than a
// metrics scrape should reveal unasked.
func WithPprof() HandlerOption {
	return func(o *handlerOpts) { o.pprof = true }
}

// healthJSON is the /healthz response body.
type healthJSON struct {
	Status         string  `json:"status"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	GoVersion      string  `json:"go_version,omitempty"`
	Module         string  `json:"module,omitempty"`
	VCSRevision    string  `json:"vcs_revision,omitempty"`
	VCSTime        string  `json:"vcs_time,omitempty"`
	AdmissionState string  `json:"admission_state,omitempty"`
	ServerID       *int    `json:"server_id,omitempty"`
	Addr           string  `json:"addr,omitempty"`
}

// buildDetails reads the binary's build metadata once at handler
// construction (it cannot change at runtime).
func buildDetails() (goVersion, module, rev, vcsTime string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return runtime.Version(), "", "", ""
	}
	goVersion, module = bi.GoVersion, bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			vcsTime = s.Value
		}
	}
	return goVersion, module, rev, vcsTime
}

// Handler serves the live introspection endpoints:
//
//	/metrics       Prometheus text exposition (scrape target)
//	/metrics.json  expvar-style JSON with quantile estimates and exemplars
//	/trace         Chrome trace-event JSON of the span buffer; bounded
//	               sampling via ?window=30s (trailing window) or
//	               ?since=<seq> (spans after a sequence number — feed
//	               back the dump's top-level lastSeq to page without
//	               duplicates)
//	/healthz       liveness as JSON: status, uptime, build info, and —
//	               when wired via WithAdmission — admission state
//	/loadz         structured load snapshot (only with WithLoadz): the
//	               fleet.ServerLoad shape plus the per-client ledger
//	/debug/pprof/  net/http/pprof (only with WithPprof)
//
// Registry or tracer may be nil; the corresponding endpoints serve
// empty documents.
func Handler(reg *Registry, tracer *Tracer, opts ...HandlerOption) http.Handler {
	var ho handlerOpts
	for _, o := range opts {
		o(&ho)
	}
	start := time.Now()
	goVersion, module, rev, vcsTime := buildDetails()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var spans []Span
		switch {
		// q.Has, not q.Get != "": an empty ?since= or ?window= is a
		// malformed request and must 400, not silently dump everything.
		case q.Has("since"):
			seq, err := strconv.ParseUint(q.Get("since"), 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			spans = tracer.SpansSince(seq)
		case q.Has("window"):
			d, err := time.ParseDuration(q.Get("window"))
			if err != nil {
				http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
			if d <= 0 {
				http.Error(w, "bad window: must be positive", http.StatusBadRequest)
				return
			}
			spans = tracer.SpansWindow(d)
		default:
			spans = tracer.Spans()
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="menos-trace.json"`)
		if err := tracer.writeChromeSpans(w, spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if ho.loadz != nil {
		mux.HandleFunc("/loadz", func(w http.ResponseWriter, req *http.Request) {
			data, err := json.MarshalIndent(ho.loadz(), "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(append(data, '\n'))
		})
	}
	if ho.pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		h := healthJSON{
			Status:        "ok",
			UptimeSeconds: time.Since(start).Seconds(),
			GoVersion:     goVersion,
			Module:        module,
			VCSRevision:   rev,
			VCSTime:       vcsTime,
		}
		if ho.admission != nil {
			h.AdmissionState = ho.admission()
		}
		if ho.identity != nil {
			id, addr := ho.identity()
			h.ServerID = &id
			h.Addr = addr
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}
