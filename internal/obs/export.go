package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by metric name so the
// output is deterministic. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder

	for _, name := range sortedKeys(r.counters) {
		writeHeader(&b, name, "counter", r.help[name])
		fmt.Fprintf(&b, "%s %d\n", name, r.counters[name].Value())
	}
	for _, name := range sortedKeys(r.gauges) {
		writeHeader(&b, name, "gauge", r.help[name])
		fmt.Fprintf(&b, "%s %d\n", name, r.gauges[name].Value())
	}
	for _, name := range sortedKeys(r.hists) {
		writeHeader(&b, name, "histogram", r.help[name])
		s := r.hists[name].Snapshot()
		var cum int64
		for i, bound := range s.Bounds {
			cum += s.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
		}
		cum += s.Counts[len(s.Bounds)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(s.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, s.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, typ, help string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// escapeHelp escapes backslashes and newlines per the Prometheus text
// exposition format, so a multi-line help string cannot terminate the
// HELP line early and corrupt the scrape.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// histJSON is the JSON projection of one histogram, with ready-made
// quantile estimates so a curl of /metrics.json answers "what is the
// p99 queue wait" without client-side math.
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
	// Exemplar links the histogram's tail to a concrete trace: the
	// most recent observation in the highest bucket seen.
	Exemplar *exemplarJSON `json:"exemplar,omitempty"`
}

// exemplarJSON is the trace pointer behind a histogram's extreme
// observation; trace_id matches the span args in /trace output.
type exemplarJSON struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// WriteJSON renders the registry as a single expvar-style JSON object:
// {"counters": {...}, "gauges": {...}, "histograms": {...}}. Keys are
// emitted in sorted order (encoding/json sorts map keys). Safe on nil.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]int64    `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]histJSON),
	}
	if r != nil {
		r.mu.RLock()
		for name, c := range r.counters {
			out.Counters[name] = c.Value()
		}
		for name, g := range r.gauges {
			out.Gauges[name] = g.Value()
		}
		for name, h := range r.hists {
			s := h.Snapshot()
			hj := histJSON{
				Count:   s.Count,
				Sum:     s.Sum,
				Buckets: make(map[string]int64, len(s.Counts)),
				P50:     s.Quantile(0.50),
				P90:     s.Quantile(0.90),
				P99:     s.Quantile(0.99),
			}
			if id, v, ok := h.Exemplar(); ok {
				hj.Exemplar = &exemplarJSON{TraceID: fmt.Sprintf("%016x", id), Value: v}
			}
			var cum int64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				hj.Buckets[formatFloat(bound)] = cum
			}
			hj.Buckets["+Inf"] = cum + s.Counts[len(s.Bounds)]
			out.Histograms[name] = hj
		}
		r.mu.RUnlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// HandlerOption customizes Handler's endpoints.
type HandlerOption func(*handlerOpts)

type handlerOpts struct {
	admission func() string
}

// WithAdmission wires the /healthz endpoint to a live admission-state
// reader (e.g. the scheduler's AdmissionState().String()).
func WithAdmission(f func() string) HandlerOption {
	return func(o *handlerOpts) { o.admission = f }
}

// healthJSON is the /healthz response body.
type healthJSON struct {
	Status         string  `json:"status"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	GoVersion      string  `json:"go_version,omitempty"`
	Module         string  `json:"module,omitempty"`
	VCSRevision    string  `json:"vcs_revision,omitempty"`
	VCSTime        string  `json:"vcs_time,omitempty"`
	AdmissionState string  `json:"admission_state,omitempty"`
}

// buildDetails reads the binary's build metadata once at handler
// construction (it cannot change at runtime).
func buildDetails() (goVersion, module, rev, vcsTime string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return runtime.Version(), "", "", ""
	}
	goVersion, module = bi.GoVersion, bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			vcsTime = s.Value
		}
	}
	return goVersion, module, rev, vcsTime
}

// Handler serves the live introspection endpoints:
//
//	/metrics       Prometheus text exposition (scrape target)
//	/metrics.json  expvar-style JSON with quantile estimates and exemplars
//	/trace         Chrome trace-event JSON of the span buffer; bounded
//	               sampling via ?window=30s (trailing window) or
//	               ?since=<seq> (spans after a sequence number — feed
//	               back the dump's top-level lastSeq to page without
//	               duplicates)
//	/healthz       liveness as JSON: status, uptime, build info, and —
//	               when wired via WithAdmission — admission state
//
// Registry or tracer may be nil; the corresponding endpoints serve
// empty documents.
func Handler(reg *Registry, tracer *Tracer, opts ...HandlerOption) http.Handler {
	var ho handlerOpts
	for _, o := range opts {
		o(&ho)
	}
	start := time.Now()
	goVersion, module, rev, vcsTime := buildDetails()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var spans []Span
		switch {
		case q.Get("since") != "":
			seq, err := strconv.ParseUint(q.Get("since"), 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			spans = tracer.SpansSince(seq)
		case q.Get("window") != "":
			d, err := time.ParseDuration(q.Get("window"))
			if err != nil {
				http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
			spans = tracer.SpansWindow(d)
		default:
			spans = tracer.Spans()
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="menos-trace.json"`)
		if err := tracer.writeChromeSpans(w, spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		h := healthJSON{
			Status:        "ok",
			UptimeSeconds: time.Since(start).Seconds(),
			GoVersion:     goVersion,
			Module:        module,
			VCSRevision:   rev,
			VCSTime:       vcsTime,
		}
		if ho.admission != nil {
			h.AdmissionState = ho.admission()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}
