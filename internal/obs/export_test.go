package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exact exposition output for a small
// registry, protecting scrape compatibility.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("menos_demo_total", "demo counter").Add(3)
	r.Gauge("menos_demo_depth").Set(2)
	h := r.Histogram("menos_demo_seconds", []float64{0.1, 1}, "demo histogram")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP menos_demo_total demo counter",
		"# TYPE menos_demo_total counter",
		"menos_demo_total 3",
		"# TYPE menos_demo_depth gauge",
		"menos_demo_depth 2",
		"# HELP menos_demo_seconds demo histogram",
		"# TYPE menos_demo_seconds histogram",
		`menos_demo_seconds_bucket{le="0.1"} 1`,
		`menos_demo_seconds_bucket{le="1"} 2`,
		`menos_demo_seconds_bucket{le="+Inf"} 3`,
		"menos_demo_seconds_sum 30.55",
		"menos_demo_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(7)
	h := r.Histogram("h_seconds", []float64{1, 10})
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Sum     float64          `json:"sum"`
			Buckets map[string]int64 `json:"buckets"`
			P50     float64          `json:"p50"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc.Counters["c_total"] != 7 {
		t.Fatalf("counter = %d, want 7", doc.Counters["c_total"])
	}
	hj := doc.Histograms["h_seconds"]
	if hj.Count != 10 || hj.Sum != 5 {
		t.Fatalf("histogram count=%d sum=%g, want 10/5", hj.Count, hj.Sum)
	}
	if hj.Buckets["+Inf"] != 10 {
		t.Fatalf("+Inf bucket = %d, want 10", hj.Buckets["+Inf"])
	}
	if hj.P50 <= 0 || hj.P50 > 1 {
		t.Fatalf("p50 = %g, want within first bucket", hj.P50)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("menos_x_total").Inc()
	tr := NewTracer(NewWallClock())
	tr.Record("c", "s", "compute", 0, time.Millisecond)
	h := Handler(r, tr)

	cases := []struct {
		path        string
		wantType    string
		wantContain string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8", "menos_x_total 1"},
		{"/metrics.json", "application/json", `"menos_x_total": 1`},
		{"/trace", "application/json", `"traceEvents"`},
		{"/healthz", "", "ok"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", c.path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", c.path, rec.Code)
		}
		if c.wantType != "" && rec.Header().Get("Content-Type") != c.wantType {
			t.Fatalf("%s: content-type %q", c.path, rec.Header().Get("Content-Type"))
		}
		if !strings.Contains(rec.Body.String(), c.wantContain) {
			t.Fatalf("%s: body %q does not contain %q", c.path, rec.Body.String(), c.wantContain)
		}
	}

	// Nil registry and tracer must still serve valid documents.
	nilH := Handler(nil, nil)
	rec := httptest.NewRecorder()
	nilH.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "traceEvents") {
		t.Fatalf("nil tracer /trace: %d %q", rec.Code, rec.Body.String())
	}
}
