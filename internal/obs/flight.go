package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// Flight-recorder reasons used by the serving plane.
const (
	FlightReasonShed      = "shed"      // admission control shed a submission
	FlightReasonOOM       = "oom"       // a request could never fit / was refused for memory
	FlightReasonAdmission = "admission" // admission state transition
	FlightReasonAlert     = "alert"     // a fleet alert rule began firing (menos-fleetd)
)

// FlightConfig configures a FlightRecorder.
type FlightConfig struct {
	// Dir is the directory holding the recorder's JSONL output
	// (created if missing). Required.
	Dir string
	// MaxBytes bounds the active file; on overflow it rotates to
	// flight.jsonl.1 (replacing any previous rotation), so total disk
	// use stays under ~2x MaxBytes. <= 0 means 8 MiB.
	MaxBytes int64
	// MinInterval rate-limits snapshots per reason (a shedding storm
	// triggers once per interval, not per request). <= 0 means 1s.
	MinInterval time.Duration
	// Window is the trailing trace window each snapshot captures.
	// <= 0 means 30s.
	Window time.Duration
	// Clock supplies timestamps and the rate-limit timebase; the
	// simulator passes its virtual clock so snapshots are
	// deterministic. Nil means wall clock.
	Clock Clock
	// CaptureProfiles additionally writes a heap and a goroutine
	// profile (pprof proto, go-tool-pprof readable) next to the JSONL
	// on every snapshot, one file per profile kind and reason
	// (overwritten in place, so disk use stays bounded). Off by
	// default: profile bytes are inherently nondeterministic, so the
	// simulator never enables this — the daemons gate it behind -pprof.
	CaptureProfiles bool
}

// flightRecord is one JSONL line: why the snapshot fired, when, the
// trace window, and the full metrics state at that instant.
type flightRecord struct {
	AtSeconds float64         `json:"at_seconds"`
	Reason    string          `json:"reason"`
	Spans     []flightSpan    `json:"spans"`
	Metrics   json.RawMessage `json:"metrics,omitempty"`
	// Profiles lists the heap/goroutine profile files (relative to the
	// flight dir) captured alongside this record, when
	// FlightConfig.CaptureProfiles is on.
	Profiles []string `json:"profiles,omitempty"`
}

type flightSpan struct {
	Track   string  `json:"track"`
	Name    string  `json:"name"`
	Cat     string  `json:"cat"`
	TraceID string  `json:"trace_id,omitempty"`
	Seq     uint64  `json:"seq"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// FlightRecorder snapshots the recent trace window plus a metrics dump
// to a size-bounded on-disk JSONL whenever the serving plane hits an
// anomaly (shed, OOM, admission transition) — a postmortem of the
// moments leading up to an overload event, without tracing everything
// to disk all the time.
type FlightRecorder struct {
	cfg    FlightConfig
	reg    *Registry
	tracer *Tracer

	mu      sync.Mutex
	f       *os.File
	size    int64
	last    map[string]time.Duration
	lastErr error
	closed  bool

	// ch is never closed (TriggerAsync may race with Close); quit stops
	// the drain goroutine instead.
	ch   chan string
	quit chan struct{}
	done chan struct{}
}

// NewFlightRecorder opens (or creates) cfg.Dir/flight.jsonl and
// returns a recorder snapshotting reg and tracer. Either may be nil
// (the corresponding section is omitted from records).
func NewFlightRecorder(cfg FlightConfig, reg *Registry, tracer *Tracer) (*FlightRecorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: flight recorder needs a directory")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 8 << 20
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = NewWallClock()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(cfg.Dir, "flight.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: flight file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: flight file: %w", err)
	}
	r := &FlightRecorder{
		cfg:    cfg,
		reg:    reg,
		tracer: tracer,
		f:      f,
		size:   st.Size(),
		last:   make(map[string]time.Duration),
		ch:     make(chan string, 16),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.drain()
	return r, nil
}

// Path returns the active JSONL file. Safe on nil.
func (r *FlightRecorder) Path() string {
	if r == nil {
		return ""
	}
	return filepath.Join(r.cfg.Dir, "flight.jsonl")
}

// Err returns the most recent write error (async triggers cannot
// return one). Safe on nil.
func (r *FlightRecorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Trigger snapshots synchronously. The simulator uses this so records
// land deterministically in virtual-time order. Rate-limited per
// reason; a skipped (rate-limited) trigger returns nil. Safe on nil.
func (r *FlightRecorder) Trigger(reason string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(reason)
}

// TriggerAsync queues a snapshot without blocking the caller — the
// serving hot path's entry point. Drops the trigger if the queue is
// full (the rate limiter would have coalesced it anyway). Safe on nil.
func (r *FlightRecorder) TriggerAsync(reason string) {
	if r == nil {
		return
	}
	select {
	case r.ch <- reason:
	default:
	}
}

// Close drains pending async triggers and closes the file. Further
// Trigger calls error and TriggerAsync calls are ignored; Close is
// idempotent. Safe on nil.
func (r *FlightRecorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.quit)
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.f.Close()
	r.f = nil
	return err
}

func (r *FlightRecorder) drain() {
	defer close(r.done)
	snap := func(reason string) {
		r.mu.Lock()
		if err := r.snapshotLocked(reason); err != nil {
			r.lastErr = err
		}
		r.mu.Unlock()
	}
	for {
		select {
		case reason := <-r.ch:
			snap(reason)
		case <-r.quit:
			// Flush whatever was queued before the shutdown signal.
			for {
				select {
				case reason := <-r.ch:
					snap(reason)
				default:
					return
				}
			}
		}
	}
}

// snapshotLocked writes one record, rotating first if the active file
// is over budget. Caller holds r.mu.
func (r *FlightRecorder) snapshotLocked(reason string) error {
	if r.f == nil {
		return fmt.Errorf("obs: flight recorder closed")
	}
	now := r.cfg.Clock.Now()
	if last, ok := r.last[reason]; ok && now-last < r.cfg.MinInterval {
		return nil
	}
	r.last[reason] = now

	rec := flightRecord{
		AtSeconds: now.Seconds(),
		Reason:    reason,
		Spans:     []flightSpan{},
	}
	for _, s := range r.tracer.SpansWindow(r.cfg.Window) {
		fs := flightSpan{
			Track:   s.Track,
			Name:    s.Name,
			Cat:     s.Cat,
			Seq:     s.Seq,
			StartUS: float64(s.Start) / float64(time.Microsecond),
			DurUS:   float64(s.Dur) / float64(time.Microsecond),
		}
		if s.TraceID != 0 {
			fs.TraceID = fmt.Sprintf("%016x", s.TraceID)
		}
		rec.Spans = append(rec.Spans, fs)
	}
	if r.reg != nil {
		var mb bytes.Buffer
		if err := r.reg.WriteJSON(&mb); err == nil {
			rec.Metrics = json.RawMessage(bytes.TrimSpace(mb.Bytes()))
		}
	}
	if r.cfg.CaptureProfiles {
		rec.Profiles = r.captureProfilesLocked(reason)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: flight record: %w", err)
	}
	line = append(line, '\n')

	if r.size+int64(len(line)) > r.cfg.MaxBytes && r.size > 0 {
		if err := r.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := r.f.Write(line)
	r.size += int64(n)
	if err != nil {
		return fmt.Errorf("obs: flight write: %w", err)
	}
	return nil
}

// captureProfilesLocked writes the current heap and goroutine profiles
// into the flight dir, named per profile kind and trigger reason so a
// repeat trigger overwrites its predecessor rather than accumulating.
// Returns the file names written (relative to the dir). Errors are
// recorded in lastErr but do not fail the snapshot — the JSONL record
// is the primary artifact. Caller holds r.mu.
func (r *FlightRecorder) captureProfilesLocked(reason string) []string {
	var out []string
	for _, kind := range []string{"heap", "goroutine"} {
		prof := pprof.Lookup(kind)
		if prof == nil {
			continue
		}
		name := kind + "-" + sanitizeReason(reason) + ".pb.gz"
		f, err := os.Create(filepath.Join(r.cfg.Dir, name))
		if err != nil {
			r.lastErr = fmt.Errorf("obs: flight profile: %w", err)
			continue
		}
		err = prof.WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			r.lastErr = fmt.Errorf("obs: flight profile: %w", err)
			continue
		}
		out = append(out, name)
	}
	return out
}

// sanitizeReason keeps profile file names flat even if a caller passes
// a reason containing path separators.
func sanitizeReason(reason string) string {
	return strings.Map(func(c rune) rune {
		switch c {
		case '/', '\\', ':', ' ':
			return '-'
		}
		return c
	}, reason)
}

// rotateLocked moves the active file to flight.jsonl.1 (replacing any
// previous rotation) and starts a fresh one, bounding total disk use
// at ~2x MaxBytes. Caller holds r.mu.
func (r *FlightRecorder) rotateLocked() error {
	active := filepath.Join(r.cfg.Dir, "flight.jsonl")
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("obs: flight rotate: %w", err)
	}
	if err := os.Rename(active, active+".1"); err != nil {
		return fmt.Errorf("obs: flight rotate: %w", err)
	}
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: flight rotate: %w", err)
	}
	r.f = f
	r.size = 0
	return nil
}
