package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func readFlightRecords(t *testing.T, path string) []map[string]any {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFlightRecorderSnapshot: a trigger writes one JSONL record holding
// the trace window (with trace IDs) and the metrics state.
func TestFlightRecorderSnapshot(t *testing.T) {
	clk := &manualClock{}
	reg := NewRegistry()
	reg.Counter("menos_rejected_total", "sheds").Add(3)
	tr := NewTracer(clk)
	tr.RecordT("client-1", "wait:forward", "sched", 0xabc, 0, time.Second)

	fr, err := NewFlightRecorder(FlightConfig{Dir: t.TempDir(), Clock: clk}, reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if err := fr.Trigger(FlightReasonShed); err != nil {
		t.Fatal(err)
	}
	recs := readFlightRecords(t, fr.Path())
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec["reason"] != FlightReasonShed {
		t.Fatalf("reason %v", rec["reason"])
	}
	spans, ok := rec["spans"].([]any)
	if !ok || len(spans) != 1 {
		t.Fatalf("spans %v", rec["spans"])
	}
	sp := spans[0].(map[string]any)
	if sp["trace_id"] != "0000000000000abc" {
		t.Fatalf("trace_id %v", sp["trace_id"])
	}
	metrics, ok := rec["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("metrics %v", rec["metrics"])
	}
	counters := metrics["counters"].(map[string]any)
	if counters["menos_rejected_total"] != float64(3) {
		t.Fatalf("metrics counters %v", counters)
	}
}

// TestFlightRateLimit: repeated triggers for one reason within
// MinInterval coalesce; a different reason records immediately.
func TestFlightRateLimit(t *testing.T) {
	clk := &manualClock{}
	fr, err := NewFlightRecorder(FlightConfig{
		Dir:         t.TempDir(),
		Clock:       clk,
		MinInterval: time.Second,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	for i := 0; i < 5; i++ {
		if err := fr.Trigger(FlightReasonShed); err != nil {
			t.Fatal(err)
		}
	}
	if err := fr.Trigger(FlightReasonOOM); err != nil {
		t.Fatal(err)
	}
	if got := len(readFlightRecords(t, fr.Path())); got != 2 {
		t.Fatalf("%d records, want 2 (one per reason)", got)
	}
	clk.t = 2 * time.Second
	if err := fr.Trigger(FlightReasonShed); err != nil {
		t.Fatal(err)
	}
	if got := len(readFlightRecords(t, fr.Path())); got != 3 {
		t.Fatalf("%d records after interval, want 3", got)
	}
}

// TestFlightRotationBound: the active file rotates to .1 on overflow
// and total disk use stays bounded by ~2x MaxBytes.
func TestFlightRotationBound(t *testing.T) {
	clk := &manualClock{}
	dir := t.TempDir()
	const maxBytes = 2048
	fr, err := NewFlightRecorder(FlightConfig{
		Dir:         dir,
		Clock:       clk,
		MaxBytes:    maxBytes,
		MinInterval: time.Nanosecond,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	for i := 0; i < 200; i++ {
		clk.t += time.Microsecond
		if err := fr.Trigger(FlightReasonAdmission); err != nil {
			t.Fatal(err)
		}
	}
	active, err := os.Stat(fr.Path())
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := os.Stat(fr.Path() + ".1")
	if err != nil {
		t.Fatal("no rotation happened:", err)
	}
	if active.Size() > maxBytes {
		t.Fatalf("active file %d bytes over budget %d", active.Size(), maxBytes)
	}
	if total := active.Size() + rotated.Size(); total > 2*maxBytes {
		t.Fatalf("total %d bytes over 2x budget %d", total, 2*maxBytes)
	}
	// Rotated content is still valid JSONL.
	if recs := readFlightRecords(t, fr.Path()+".1"); len(recs) == 0 {
		t.Fatal("rotated file empty")
	}
}

// TestFlightAsyncAndClose: async triggers land before Close returns,
// and the recorder is safe to use (no panic, clean errors) afterwards.
func TestFlightAsyncAndClose(t *testing.T) {
	clk := &manualClock{}
	dir := t.TempDir()
	fr, err := NewFlightRecorder(FlightConfig{Dir: dir, Clock: clk}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fr.TriggerAsync(FlightReasonShed)
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(readFlightRecords(t, filepath.Join(dir, "flight.jsonl"))); got != 1 {
		t.Fatalf("%d records after close, want 1", got)
	}
	fr.TriggerAsync(FlightReasonShed) // must not panic
	if err := fr.Trigger(FlightReasonShed); err == nil {
		t.Fatal("sync trigger after close succeeded")
	}
	if err := fr.Close(); err != nil {
		t.Fatal("second close:", err)
	}

	// Nil recorder: every method is a no-op.
	var nilFR *FlightRecorder
	nilFR.TriggerAsync("x")
	if err := nilFR.Trigger("x"); err != nil {
		t.Fatal(err)
	}
	if err := nilFR.Close(); err != nil {
		t.Fatal(err)
	}
}
