package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// ClientUsage is one client's cumulative resource account: the answer
// to "which client is spending what" on a shared server. Byte-seconds
// are the integral of bytes-held over time, split by lifetime class —
// persistent (adapter state pinned across iterations) versus transient
// (per-iteration activation/gradient grants) — which is the
// cost-attribution split the paper's sharing argument rests on.
type ClientUsage struct {
	ID                    string  `json:"id"`
	ComputeSeconds        float64 `json:"compute_seconds"`
	GrantWaitSeconds      float64 `json:"grant_wait_seconds"`
	PersistentByteSeconds float64 `json:"persistent_byte_seconds"`
	TransientByteSeconds  float64 `json:"transient_byte_seconds"`
	PersistentBytes       int64   `json:"persistent_bytes"`
	TransientBytes        int64   `json:"transient_bytes"`
	WireTxBytes           int64   `json:"wire_tx_bytes"`
	WireRxBytes           int64   `json:"wire_rx_bytes"`
	Iterations            int64   `json:"iterations"`
	BatchRows             int64   `json:"batch_rows,omitempty"`
	Sheds                 int64   `json:"sheds"`
	Retries               int64   `json:"retries"`
}

// LedgerConfig configures a Ledger.
type LedgerConfig struct {
	// Clock supplies the timebase for byte-second accrual. The
	// simulator passes its virtual clock so accounts are deterministic;
	// nil means wall clock.
	Clock Clock
	// MaxClients caps the number of distinct accounts; past it, new
	// clients accrue into a shared VecOverflowLabel account (totals
	// stay exact, attribution degrades). <= 0 means DefaultVecCap.
	MaxClients int
}

// account is one client's mutable ledger state.
type account struct {
	u           ClientUsage
	lastAccrual time.Duration
	// Byte-seconds already pushed into the integer counters, so the
	// exported counters stay monotonic while the float accrual runs.
	pushedPersist int64
	pushedTrans   int64
}

// ledgerMetrics are the labeled families the ledger publishes into a
// Registry. Families that share a name with an unlabeled aggregate
// (compute, wait, iterations) are observed with the exact values the
// aggregate sees, so Σ over {client=*} reproduces it.
type ledgerMetrics struct {
	compute   *HistogramVec
	wait      *HistogramVec
	iters     *CounterVec
	persistBS *CounterVec
	transBS   *CounterVec
	persistB  *GaugeVec
	transB    *GaugeVec
	wireTx    *CounterVec
	wireRx    *CounterVec
	sheds     *CounterVec
	retries   *CounterVec
	batchRows *CounterVec
}

// Ledger is the per-tenant accounting plane: every grant, reservation,
// compute slice, wire transfer and shed is attributed to a client ID
// and accrued into that client's ClientUsage. It is purely
// bookkeeping — it never advances its clock, spawns goroutines, or
// feeds back into scheduling — so enabling it cannot perturb a
// deterministic simulation. All methods are safe on a nil ledger.
type Ledger struct {
	clock Clock
	max   int

	mu       sync.Mutex
	accounts map[string]*account
	m        *ledgerMetrics
}

// NewLedger creates an empty ledger.
func NewLedger(cfg LedgerConfig) *Ledger {
	if cfg.Clock == nil {
		cfg.Clock = NewWallClock()
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = DefaultVecCap
	}
	return &Ledger{
		clock:    cfg.Clock,
		max:      cfg.MaxClients,
		accounts: make(map[string]*account),
	}
}

// Instrument publishes the ledger's accounts as labeled families in
// reg, mirroring every subsequent accrual. Call once, before traffic.
// Safe on nil.
func (l *Ledger) Instrument(reg *Registry) {
	if l == nil || reg == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = &ledgerMetrics{
		compute: reg.HistogramVec(MetricServerComputeSeconds, "client", DurationBuckets(),
			"Per-iteration server compute time (forward+backward), seconds."),
		wait: reg.HistogramVec(MetricSchedWaitSeconds, "client", DurationBuckets(),
			"Queue wait from submission to memory grant, seconds."),
		iters: reg.CounterVec(MetricServerIterations, "client",
			"Completed fine-tuning iterations."),
		persistBS: reg.CounterVec(MetricGPUPersistentByteSeconds, "client",
			"Accrued persistent GPU residency, byte-seconds (integer-truncated)."),
		transBS: reg.CounterVec(MetricGPUTransientByteSeconds, "client",
			"Accrued transient GPU residency, byte-seconds (integer-truncated)."),
		persistB: reg.GaugeVec(MetricGPUClientPersistentBytes, "client",
			"Persistent GPU bytes currently held (adapter state, KV reservations)."),
		transB: reg.GaugeVec(MetricGPUClientTransientBytes, "client",
			"Transient GPU bytes currently granted (activations, gradients)."),
		wireTx: reg.CounterVec(MetricServerWireTxBytes, "client",
			"Bytes sent to the client over the split-protocol connection."),
		wireRx: reg.CounterVec(MetricServerWireRxBytes, "client",
			"Bytes received from the client over the split-protocol connection."),
		sheds: reg.CounterVec(MetricServerShedsTotal, "client",
			"Submissions shed by admission control."),
		retries: reg.CounterVec(MetricServerRetriesTotal, "client",
			"Resubmissions after a shed."),
		batchRows: reg.CounterVec(MetricBatchRows, "client",
			"Microbatch rows this client contributed to batched kernel invocations."),
	}
	// Families share the ledger's account cap so per-metric overflow
	// kicks in at the same cardinality as the accounts themselves.
	l.m.compute.SetCap(l.max)
	l.m.wait.SetCap(l.max)
	l.m.iters.SetCap(l.max)
	l.m.persistBS.SetCap(l.max)
	l.m.transBS.SetCap(l.max)
	l.m.persistB.SetCap(l.max)
	l.m.transB.SetCap(l.max)
	l.m.wireTx.SetCap(l.max)
	l.m.wireRx.SetCap(l.max)
	l.m.sheds.SetCap(l.max)
	l.m.retries.SetCap(l.max)
	l.m.batchRows.SetCap(l.max)
}

// SplitOwner maps a memory-owner tag to the client it bills to and the
// lifetime class of the bytes. The scheduler and device planes tag
// persistent state with the "persist:" (adapter weights, optimizer
// state) and "decode:" (KV reservations) prefixes; everything else is
// a transient per-iteration grant billed to the owner verbatim.
func SplitOwner(owner string) (client string, persistent bool) {
	if c, ok := strings.CutPrefix(owner, "persist:"); ok {
		return c, true
	}
	if c, ok := strings.CutPrefix(owner, "decode:"); ok {
		return c, true
	}
	return owner, false
}

// accountFor returns the account billed for client, creating it on
// first use and overflowing into the shared account past the cap.
// Caller holds l.mu.
func (l *Ledger) accountFor(client string) *account {
	a, ok := l.accounts[client]
	if ok {
		return a
	}
	if client != VecOverflowLabel && len(l.accounts) >= l.max {
		return l.accountFor(VecOverflowLabel)
	}
	a = &account{u: ClientUsage{ID: client}, lastAccrual: l.clock.Now()}
	l.accounts[client] = a
	return a
}

// accrueLocked integrates held bytes over the time since the account's
// last accrual and pushes the integer deltas into the exported
// counters. Caller holds l.mu.
func (l *Ledger) accrueLocked(a *account, now time.Duration) {
	dt := (now - a.lastAccrual).Seconds()
	a.lastAccrual = now
	if dt <= 0 {
		return
	}
	a.u.PersistentByteSeconds += float64(a.u.PersistentBytes) * dt
	a.u.TransientByteSeconds += float64(a.u.TransientBytes) * dt
	if l.m != nil {
		if d := int64(a.u.PersistentByteSeconds) - a.pushedPersist; d > 0 {
			l.m.persistBS.With(a.u.ID).Add(d)
			a.pushedPersist += d
		}
		if d := int64(a.u.TransientByteSeconds) - a.pushedTrans; d > 0 {
			l.m.transBS.With(a.u.ID).Add(d)
			a.pushedTrans += d
		}
	}
}

// Acquire records that owner now holds bytes more GPU memory. Safe on
// nil.
func (l *Ledger) Acquire(owner string, bytes int64) {
	if l == nil || bytes <= 0 {
		return
	}
	client, persistent := SplitOwner(owner)
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accountFor(client)
	l.accrueLocked(a, l.clock.Now())
	if persistent {
		a.u.PersistentBytes += bytes
		if l.m != nil {
			l.m.persistB.With(a.u.ID).Set(a.u.PersistentBytes)
		}
	} else {
		a.u.TransientBytes += bytes
		if l.m != nil {
			l.m.transB.With(a.u.ID).Set(a.u.TransientBytes)
		}
	}
}

// Release records that owner gave back bytes of GPU memory, accruing
// the byte-seconds held up to now. Safe on nil.
func (l *Ledger) Release(owner string, bytes int64) {
	if l == nil || bytes <= 0 {
		return
	}
	client, persistent := SplitOwner(owner)
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accountFor(client)
	l.accrueLocked(a, l.clock.Now())
	if persistent {
		a.u.PersistentBytes -= bytes
		if a.u.PersistentBytes < 0 {
			a.u.PersistentBytes = 0
		}
		if l.m != nil {
			l.m.persistB.With(a.u.ID).Set(a.u.PersistentBytes)
		}
	} else {
		a.u.TransientBytes -= bytes
		if a.u.TransientBytes < 0 {
			a.u.TransientBytes = 0
		}
		if l.m != nil {
			l.m.transB.With(a.u.ID).Set(a.u.TransientBytes)
		}
	}
}

// AddCompute bills seconds of server compute to client, observing the
// labeled compute histogram with the same value the unlabeled
// aggregate sees. Safe on nil.
func (l *Ledger) AddCompute(client string, seconds float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	a := l.accountFor(client)
	a.u.ComputeSeconds += seconds
	m := l.m
	id := a.u.ID
	l.mu.Unlock()
	if m != nil {
		m.compute.With(id).Observe(seconds)
	}
}

// AddGrantWait bills seconds of queue wait (submission → grant) to
// client. Safe on nil.
func (l *Ledger) AddGrantWait(client string, seconds float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	a := l.accountFor(client)
	a.u.GrantWaitSeconds += seconds
	m := l.m
	id := a.u.ID
	l.mu.Unlock()
	if m != nil {
		m.wait.With(id).Observe(seconds)
	}
}

// AddIteration counts one completed iteration for client. Safe on nil.
func (l *Ledger) AddIteration(client string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	a := l.accountFor(client)
	a.u.Iterations++
	m := l.m
	id := a.u.ID
	l.mu.Unlock()
	if m != nil {
		m.iters.With(id).Inc()
	}
}

// AddBatchRows bills rows microbatch rows that client contributed to a
// batched kernel invocation. The labeled family shares its name with
// the batch plane's unlabeled menos_batch_rows_total counter and is
// fed the same per-member values, so Σ over {client=*} reproduces the
// aggregate. Safe on nil.
func (l *Ledger) AddBatchRows(client string, rows int64) {
	if l == nil || rows <= 0 {
		return
	}
	l.mu.Lock()
	a := l.accountFor(client)
	a.u.BatchRows += rows
	m := l.m
	id := a.u.ID
	l.mu.Unlock()
	if m != nil {
		m.batchRows.With(id).Add(rows)
	}
}

// AddWire bills tx/rx wire bytes (server perspective) to client. Safe
// on nil.
func (l *Ledger) AddWire(client string, tx, rx int64) {
	if l == nil || (tx <= 0 && rx <= 0) {
		return
	}
	l.mu.Lock()
	a := l.accountFor(client)
	if tx > 0 {
		a.u.WireTxBytes += tx
	}
	if rx > 0 {
		a.u.WireRxBytes += rx
	}
	m := l.m
	id := a.u.ID
	l.mu.Unlock()
	if m != nil {
		if tx > 0 {
			m.wireTx.With(id).Add(tx)
		}
		if rx > 0 {
			m.wireRx.With(id).Add(rx)
		}
	}
}

// Shed counts one admission-control shed against client. Safe on nil.
func (l *Ledger) Shed(client string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	a := l.accountFor(client)
	a.u.Sheds++
	m := l.m
	id := a.u.ID
	l.mu.Unlock()
	if m != nil {
		m.sheds.With(id).Inc()
	}
}

// Retry counts one post-shed resubmission by client. Safe on nil.
func (l *Ledger) Retry(client string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	a := l.accountFor(client)
	a.u.Retries++
	m := l.m
	id := a.u.ID
	l.mu.Unlock()
	if m != nil {
		m.retries.With(id).Inc()
	}
}

// Snapshot accrues every account up to now and returns the usage rows
// sorted by client ID — the per-client section of /loadz. Safe on nil
// (returns an empty, non-nil slice so the JSON field is [] not null).
func (l *Ledger) Snapshot() []ClientUsage {
	out := []ClientUsage{}
	if l == nil {
		return out
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock.Now()
	ids := make([]string, 0, len(l.accounts))
	for id := range l.accounts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a := l.accounts[id]
		l.accrueLocked(a, now)
		out = append(out, a.u)
	}
	return out
}

// Usage returns one client's current account (accrued to now) and
// whether it exists. Safe on nil.
func (l *Ledger) Usage(client string) (ClientUsage, bool) {
	if l == nil {
		return ClientUsage{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.accounts[client]
	if !ok {
		return ClientUsage{}, false
	}
	l.accrueLocked(a, l.clock.Now())
	return a.u, true
}
