package obs

import (
	"reflect"
	"testing"
	"time"
)

// fakeTime is a manually-advanced Clock for ledger accrual tests.
type fakeTime struct{ now time.Duration }

func (f *fakeTime) Now() time.Duration { return f.now }

func TestLedgerByteSecondsAccrual(t *testing.T) {
	clk := &fakeTime{}
	l := NewLedger(LedgerConfig{Clock: clk})
	reg := NewRegistry()
	l.Instrument(reg)

	// client-1 pins 100 bytes of persistent state at t=0 ...
	l.Acquire("persist:client-1", 100)
	// ... and holds a 50-byte transient grant from t=2s to t=5s.
	clk.now = 2 * time.Second
	l.Acquire("client-1", 50)
	clk.now = 5 * time.Second
	l.Release("client-1", 50)
	clk.now = 10 * time.Second
	l.Release("persist:client-1", 100)

	u, ok := l.Usage("client-1")
	if !ok {
		t.Fatal("client-1 account missing")
	}
	if u.PersistentByteSeconds != 1000 { // 100 B × 10 s
		t.Fatalf("persistent byte-seconds = %v, want 1000", u.PersistentByteSeconds)
	}
	if u.TransientByteSeconds != 150 { // 50 B × 3 s
		t.Fatalf("transient byte-seconds = %v, want 150", u.TransientByteSeconds)
	}
	if u.PersistentBytes != 0 || u.TransientBytes != 0 {
		t.Fatalf("held bytes after release = %d/%d, want 0/0", u.PersistentBytes, u.TransientBytes)
	}

	// The exported counters carry the integer-truncated accruals.
	pc, _ := reg.CounterVec(MetricGPUPersistentByteSeconds, "client").Get("client-1")
	tc, _ := reg.CounterVec(MetricGPUTransientByteSeconds, "client").Get("client-1")
	if pc.Value() != 1000 || tc.Value() != 150 {
		t.Fatalf("exported byte-seconds = %d/%d, want 1000/150", pc.Value(), tc.Value())
	}
	pg, _ := reg.GaugeVec(MetricGPUClientPersistentBytes, "client").Get("client-1")
	if pg.Value() != 0 {
		t.Fatalf("persistent bytes gauge = %d, want 0", pg.Value())
	}
}

func TestLedgerEventCountsAndVecs(t *testing.T) {
	clk := &fakeTime{}
	l := NewLedger(LedgerConfig{Clock: clk})
	reg := NewRegistry()
	l.Instrument(reg)

	l.AddCompute("a", 1.5)
	l.AddCompute("a", 0.5)
	l.AddGrantWait("a", 0.25)
	l.AddIteration("a")
	l.AddWire("a", 100, 200)
	l.Shed("a")
	l.Retry("a")

	u, _ := l.Usage("a")
	want := ClientUsage{
		ID: "a", ComputeSeconds: 2, GrantWaitSeconds: 0.25,
		WireTxBytes: 100, WireRxBytes: 200,
		Iterations: 1, Sheds: 1, Retries: 1,
	}
	if !reflect.DeepEqual(u, want) {
		t.Fatalf("usage = %+v, want %+v", u, want)
	}

	// Labeled families mirror the account exactly.
	ch, _ := reg.HistogramVec(MetricServerComputeSeconds, "client", nil).Get("a")
	if ch.Count() != 2 || ch.Sum() != 2 {
		t.Fatalf("compute vec = %d/%v, want 2/2", ch.Count(), ch.Sum())
	}
	ic, _ := reg.CounterVec(MetricServerIterations, "client").Get("a")
	sc, _ := reg.CounterVec(MetricServerShedsTotal, "client").Get("a")
	if ic.Value() != 1 || sc.Value() != 1 {
		t.Fatalf("iteration/shed vecs = %d/%d, want 1/1", ic.Value(), sc.Value())
	}
}

func TestLedgerOverflowAccount(t *testing.T) {
	clk := &fakeTime{}
	l := NewLedger(LedgerConfig{Clock: clk, MaxClients: 2})
	l.AddIteration("a")
	l.AddIteration("b")
	l.AddIteration("c")
	l.AddIteration("d")
	if _, ok := l.Usage("c"); ok {
		t.Fatal("client past cap must not get its own account")
	}
	other, ok := l.Usage(VecOverflowLabel)
	if !ok || other.Iterations != 2 {
		t.Fatalf("overflow account = %v %+v, want 2 iterations", ok, other)
	}
	snap := l.Snapshot()
	if len(snap) != 3 { // a, b, other
		t.Fatalf("snapshot rows = %d, want 3", len(snap))
	}
}

func TestLedgerSnapshotSortedAndAccrued(t *testing.T) {
	clk := &fakeTime{}
	l := NewLedger(LedgerConfig{Clock: clk})
	l.Acquire("persist:b", 10)
	l.Acquire("persist:a", 10)
	clk.now = 4 * time.Second
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[1].ID != "b" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	// Snapshot accrues held bytes up to now even without a release.
	if snap[0].PersistentByteSeconds != 40 {
		t.Fatalf("accrued-to-now byte-seconds = %v, want 40", snap[0].PersistentByteSeconds)
	}
	if got := l.Snapshot(); !reflect.DeepEqual(got, snap) {
		t.Fatalf("snapshot not stable at fixed clock: %+v vs %+v", got, snap)
	}
}

func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	l.Instrument(NewRegistry())
	l.Acquire("persist:a", 1)
	l.Release("a", 1)
	l.AddCompute("a", 1)
	l.AddGrantWait("a", 1)
	l.AddIteration("a")
	l.AddWire("a", 1, 1)
	l.Shed("a")
	l.Retry("a")
	if got := l.Snapshot(); got == nil || len(got) != 0 {
		t.Fatalf("nil ledger snapshot = %v, want empty non-nil", got)
	}
	if _, ok := l.Usage("a"); ok {
		t.Fatal("nil ledger must report no usage")
	}
}

func TestSplitOwner(t *testing.T) {
	cases := []struct {
		owner      string
		client     string
		persistent bool
	}{
		{"persist:client-1", "client-1", true},
		{"decode:client-2", "client-2", true},
		{"client-3", "client-3", false},
		{"base-model", "base-model", false},
	}
	for _, c := range cases {
		client, persistent := SplitOwner(c.owner)
		if client != c.client || persistent != c.persistent {
			t.Fatalf("SplitOwner(%q) = %q/%v, want %q/%v",
				c.owner, client, persistent, c.client, c.persistent)
		}
	}
}
