package obs

// Canonical metric names. Every instrumented plane registers its
// metrics under these constants so the catalog in
// docs/OBSERVABILITY.md is enforced by the compiler rather than by
// convention.
const (
	// Scheduler plane (internal/sched).
	MetricSchedSubmitted         = "menos_sched_submitted_total"
	MetricSchedGranted           = "menos_sched_granted_total"
	MetricSchedBackfilled        = "menos_sched_backfilled_total"
	MetricSchedCompleted         = "menos_sched_completed_total"
	MetricSchedRejected          = "menos_sched_rejected_total"
	MetricSchedQueueDepth        = "menos_sched_queue_depth"
	MetricSchedQueueDepthMax     = "menos_sched_queue_depth_max"
	MetricSchedWaitSeconds       = "menos_sched_wait_seconds"
	MetricSchedHOLBlockedSeconds = "menos_sched_hol_blocked_seconds"

	// Admission control (internal/sched, docs/ADMISSION.md).
	MetricSchedAdmissionState       = "menos_sched_admission_state"
	MetricSchedAdmissionP99Micros   = "menos_sched_admission_p99_wait_micros"
	MetricSchedAdmissionTransitions = "menos_sched_admission_transitions_total"
	MetricSchedAdmissionShed        = "menos_sched_admission_shed_total"
	MetricSchedAdmissionDeferred    = "menos_sched_admission_deferred_total"

	// GPU memory plane (internal/gpu).
	MetricGPUAllocBytes = "menos_gpu_alloc_bytes_total"
	MetricGPUFreeBytes  = "menos_gpu_free_bytes_total"
	MetricGPUAllocOps   = "menos_gpu_alloc_ops_total"
	MetricGPUFreeOps    = "menos_gpu_free_ops_total"
	MetricGPUOOM        = "menos_gpu_oom_total"
	MetricGPUUsedBytes  = "menos_gpu_used_bytes"
	MetricGPUPeakBytes  = "menos_gpu_peak_bytes"
	// Per-owner residency: a GaugeVec labeled {owner=...} where owner
	// is the allocation tag ("persist:<client>", "base-model", ...).
	MetricGPUOwnerBytes = "menos_gpu_owner_bytes"

	// Per-tenant accounting ledger (obs.Ledger), labeled {client=...}.
	// Byte-second counters are integer-truncated accruals of
	// bytes-held × seconds-held; persistent is adapter state pinned by
	// Reserve, transient is per-iteration grant traffic.
	MetricGPUPersistentByteSeconds = "menos_gpu_persistent_byte_seconds_total"
	MetricGPUTransientByteSeconds  = "menos_gpu_transient_byte_seconds_total"
	MetricGPUClientPersistentBytes = "menos_gpu_persistent_bytes"
	MetricGPUClientTransientBytes  = "menos_gpu_transient_bytes"
	MetricServerWireTxBytes        = "menos_server_wire_tx_bytes_total"
	MetricServerWireRxBytes        = "menos_server_wire_rx_bytes_total"
	MetricServerShedsTotal         = "menos_server_sheds_total"
	MetricServerRetriesTotal       = "menos_server_retries_total"

	// Batch formation (internal/batch, docs/BATCHING.md). One "batch"
	// is a single kernel invocation over the shared frozen base that
	// carries several clients' microbatches stacked row-wise. The
	// occupancy gauge is integer thousandths of the configured max
	// batch size (1000 = every slot filled); rows_total also exists as
	// a {client=...} family billed through the ledger.
	MetricBatchFormed    = "menos_batch_formed_total"
	MetricBatchSize      = "menos_batch_size"
	MetricBatchOccupancy = "menos_batch_occupancy_ratio"
	MetricBatchHold      = "menos_batch_hold_seconds"
	MetricBatchRows      = "menos_batch_rows_total"

	// Serving plane (internal/server).
	MetricServerAdmitted       = "menos_server_clients_admitted_total"
	MetricServerRejected       = "menos_server_clients_rejected_total"
	MetricServerIterations     = "menos_server_iterations_total"
	MetricServerComputeSeconds = "menos_server_compute_seconds"
	MetricServerWaitSeconds    = "menos_server_sched_wait_seconds"
	MetricServerActiveClients  = "menos_server_active_clients"

	// Live migration (internal/server admin plane, docs/FLEET.md).
	// "Out" counts sessions this server snapshotted and redirected
	// away; "in" counts sessions resumed here from a staged snapshot;
	// "aborted" counts orders that failed mid-flight (the session keeps
	// serving where it is).
	MetricServerMigrationsOut     = "menos_server_migrations_out_total"
	MetricServerMigrationsIn      = "menos_server_migrations_in_total"
	MetricServerMigrationsAborted = "menos_server_migrations_aborted_total"

	// Client plane (internal/client).
	MetricClientIterations  = "menos_client_iterations_total"
	MetricClientCommSeconds = "menos_client_comm_seconds"
	MetricClientCompSeconds = "menos_client_comp_seconds"

	// Wire transport (internal/client + internal/server, docs/WIRE.md).
	// Both peers register the same families: compressed counts the
	// on-wire bytes of quantized activation/gradient payloads this
	// process sent, raw counts the fp32 bytes those payloads replaced
	// (so savings = 1 - compressed/raw), codec_seconds times Pack and
	// Unpack calls, and overlap_hidden_seconds is the portion of each
	// pipelined round trip that ran concurrently with local compute
	// (zero by construction on the sequential path).
	MetricWireCompressedBytes  = "menos_wire_compressed_bytes_total"
	MetricWireRawBytes         = "menos_wire_raw_bytes_total"
	MetricWireCodecSeconds     = "menos_wire_codec_seconds"
	MetricOverlapHiddenSeconds = "menos_overlap_hidden_seconds"

	// Compute plane (internal/tensor). The worker-pool size is fixed
	// per process, so the gauge is set once at server construction.
	MetricTensorPoolWorkers = "menos_tensor_pool_workers"

	// Swap path (vanilla baseline, internal/splitsim).
	MetricSwapOps   = "menos_swap_ops_total"
	MetricSwapBytes = "menos_swap_bytes_total"

	// Telemetry self-observation (internal/obs).
	MetricObsSpansDropped = "menos_obs_spans_dropped_total"

	// Go runtime self-observability (obs.StartRuntimeSampler), sampled
	// from runtime/metrics on a background ticker.
	MetricGoHeapBytes     = "menos_go_heap_bytes"
	MetricGoGoroutines    = "menos_go_goroutines"
	MetricGoGCCycles      = "menos_go_gc_cycles_total"
	MetricGoGCPauseMicros = "menos_go_gc_pause_micros_total"

	// Fleet control plane (internal/fleet, docs/FLEET.md). Gauges are
	// integers, so the imbalance ratio is published in thousandths
	// (1000 = perfectly balanced).
	MetricFleetPlacements  = "menos_fleet_placements_total"
	MetricFleetMigrations  = "menos_fleet_migrations_total"
	MetricFleetServers     = "menos_fleet_servers"
	MetricFleetScaleEvents = "menos_fleet_scale_events_total"
	MetricFleetImbalance   = "menos_fleet_imbalance_ratio"

	// Control-plane daemon (cmd/menos-fleetd, docs/FLEET.md). The
	// daemon re-exports its embedded fleet.Manager's menos_fleet_*
	// families and adds its own orchestration counters: poll outcomes,
	// redirect placements handed to arriving clients, and live
	// migrations it drove to completion (or lost).
	MetricFleetdPolls             = "menos_fleetd_polls_total"
	MetricFleetdPollErrors        = "menos_fleetd_poll_errors_total"
	MetricFleetdServersHealthy    = "menos_fleetd_servers_healthy"
	MetricFleetdPlacements        = "menos_fleetd_placements_total"
	MetricFleetdMigrations        = "menos_fleetd_migrations_total"
	MetricFleetdMigrationFailures = "menos_fleetd_migration_failures_total"
	MetricFleetdIdentityMismatch  = "menos_fleetd_identity_mismatches_total"

	// Fleet telemetry plane (internal/tsdb + internal/alert, served by
	// menos-fleetd /queryz and /alertz — docs/OBSERVABILITY.md).
	// menos_fleetd_up / _identity_mismatch are synthetic per-server
	// series the controller appends into the time-series store on every
	// poll tick (1/0), the raw material for the dead-server and
	// identity-mismatch alert rules. The alerts gauge counts instances
	// currently Firing; transitions counts every state change
	// (Inactive→Pending, Pending→Firing, Firing→Pending, ...).
	MetricFleetdUp                  = "menos_fleetd_up"
	MetricFleetdIdentityGauge       = "menos_fleetd_identity_mismatch"
	MetricFleetdAlertsFiring        = "menos_fleetd_alerts_firing"
	MetricFleetdAlertsTransitions   = "menos_fleetd_alerts_transitions_total"
	MetricFleetdTSDBSeries          = "menos_fleetd_tsdb_series"
	MetricFleetdTSDBSamples         = "menos_fleetd_tsdb_samples_total"
	MetricFleetdTSDBDroppedSeries   = "menos_fleetd_tsdb_dropped_series_total"
	MetricFleetdScrapes             = "menos_fleetd_scrapes_total"
	MetricFleetdScrapeErrors        = "menos_fleetd_scrape_errors_total"
	MetricFleetdTraceSpansFederated = "menos_fleetd_trace_spans_federated_total"

	// Admission SLO advertisement (internal/sched): the configured
	// grant-wait p99 target in integer microseconds, published so the
	// fleet telemetry plane can compute burn rates against each
	// server's own target instead of a fleetd-side guess.
	MetricSchedAdmissionSLOTarget = "menos_sched_admission_slo_target_micros"
)
