// Package obs is the unified telemetry layer of the reproduction: a
// stdlib-only registry of counters, gauges and histograms, lightweight
// span tracing, and exporters (Prometheus text exposition, expvar-style
// JSON, Chrome trace-event JSON).
//
// The package exists because the paper's whole evaluation is a story
// about where time and memory go — queue wait vs. compute vs.
// communication, peak vs. shared GPU memory — and those questions must
// be answerable on a *live* run, not only from post-hoc experiment
// tables.
//
// Two properties shape the design:
//
//   - Hot-path cheapness. Counters and gauges are single atomic
//     operations; histograms are one binary search plus two atomics.
//     Every metric and tracer method is nil-receiver safe, so
//     instrumented code calls them unconditionally and an un-wired
//     component pays only a predictable nil check.
//
//   - Time-source agnosticism. All timestamps flow through the Clock
//     interface, so the discrete-event simulator records *virtual*
//     time through exactly the same API the TCP runtime uses for wall
//     time. No instrumented package may call time.Now directly on the
//     simulation plane.
package obs

import "time"

// Clock is the telemetry time source: a monotonic duration since an
// arbitrary epoch. The real runtime uses WallClock; the simulator
// plugs its kernel's virtual Now in via ClockFunc.
type Clock interface {
	Now() time.Duration
}

// ClockFunc adapts a plain function to a Clock (e.g.
// obs.ClockFunc(kernel.Now) for the discrete-event simulator).
type ClockFunc func() time.Duration

// Now implements Clock.
func (f ClockFunc) Now() time.Duration { return f() }

// wallClock measures wall time since its creation epoch.
type wallClock struct {
	epoch time.Time
}

// NewWallClock returns a Clock anchored at the current wall time.
func NewWallClock() Clock { return wallClock{epoch: time.Now()} }

func (c wallClock) Now() time.Duration { return time.Since(c.epoch) }
