package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Lookup (get-or-create) takes the
// registry lock; the returned handles are lock-free afterwards, so
// instrumented code resolves its metrics once and updates them on the
// hot path with single atomic operations.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string

	// Labeled families (vec.go). A family may share a name with an
	// unlabeled metric of the same kind; the exporters merge them.
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
	vecCap      int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		help:        make(map[string]string),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
		vecCap:      DefaultVecCap,
	}
}

// Counter returns the counter registered under name, creating it on
// first use. An optional help string documents the metric in the
// Prometheus exposition. Safe on a nil registry (returns nil, and all
// Counter methods are nil-safe).
func (r *Registry) Counter(name string, help ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Safe on a nil registry.
func (r *Registry) Gauge(name string, help ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use. Later calls return
// the existing histogram regardless of the bounds argument. Safe on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []float64, help ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
		r.setHelp(name, help)
	}
	return h
}

// setHelp records a metric's help text. Caller holds r.mu.
func (r *Registry) setHelp(name string, help []string) {
	if len(help) > 0 && help[0] != "" {
		r.help[name] = help[0]
	}
}

// names returns the sorted metric names of one kind. Caller holds a
// read lock.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unionKeys returns the sorted union of two maps' keys, for exporters
// merging an unlabeled metric with a same-named labeled family.
func unionKeys[A, B any](m1 map[string]A, m2 map[string]B) []string {
	keys := make([]string, 0, len(m1)+len(m2))
	for k := range m1 {
		keys = append(keys, k)
	}
	for k := range m2 {
		if _, dup := m1[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Safe on nil (returns 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer metric (queue depth, bytes in
// use). It supports both absolute sets and deltas, plus a monotonic
// watermark update for peak tracking.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add applies a delta. Safe on nil.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// SetMax raises the gauge to v if v is larger (high-water mark). Safe
// on nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value. Safe on nil (returns 0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with a float sum, in the
// Prometheus cumulative-bucket style. Bounds are upper bounds in
// ascending order; one implicit +Inf bucket catches the overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64

	// Exemplar: the trace ID behind the most recent extreme
	// observation (highest bucket seen so far), so "what iteration is
	// my p99?" is answerable from /metrics.json alone. exBucket stores
	// bucket index + 1 (0 = no exemplar yet).
	exBucket atomic.Int64
	exTrace  atomic.Uint64
	exVal    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, 0) }

// ObserveExemplar records one sample and, when traceID is nonzero,
// offers it as the histogram's exemplar: the exemplar tracks the most
// recent observation landing in the highest bucket seen so far, i.e.
// the trace behind the current tail. Races between concurrent extreme
// observations resolve last-writer-wins, which is fine for a debugging
// pointer. Safe on nil.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	if traceID != 0 && int64(i+1) >= h.exBucket.Load() {
		h.exBucket.Store(int64(i + 1))
		h.exTrace.Store(traceID)
		h.exVal.Store(math.Float64bits(v))
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Exemplar returns the trace ID and value of the current exemplar, or
// ok=false if no traced observation has been recorded. Safe on nil.
func (h *Histogram) Exemplar() (traceID uint64, v float64, ok bool) {
	if h == nil || h.exBucket.Load() == 0 {
		return 0, 0, false
	}
	return h.exTrace.Load(), math.Float64frombits(h.exVal.Load()), true
}

// exemplarInfo returns the exemplar plus the index of the bucket it
// landed in (len(bounds) = the +Inf bucket), for the text exposition's
// per-bucket exemplar suffix. Safe on nil.
func (h *Histogram) exemplarInfo() (bucket int, traceID uint64, v float64, ok bool) {
	if h == nil {
		return 0, 0, 0, false
	}
	b := h.exBucket.Load()
	if b == 0 {
		return 0, 0, 0, false
	}
	return int(b - 1), h.exTrace.Load(), math.Float64frombits(h.exVal.Load()), true
}

// ObserveDuration records a duration in seconds. Safe on nil.
func (h *Histogram) ObserveDuration(d float64) { h.Observe(d) }

// Count returns the number of observations. Safe on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations. Safe on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot returns a consistent-enough copy for export and quantile
// estimation. (Bucket counts are read individually; under concurrent
// writes the snapshot may be off by in-flight observations, which is
// the standard scrape semantics.)
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the owning bucket. Safe on nil (returns 0).
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistSnapshot is a point-in-time histogram copy.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1; last is +Inf
	Sum    float64
	Count  int64
}

// Quantile estimates the q-quantile by linear interpolation within the
// bucket containing the target rank. Samples in the +Inf bucket clamp
// to the largest finite bound (the estimate cannot exceed it).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(s.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// DurationBuckets are histogram bounds in seconds spanning 10µs to
// ~17min, suitable for both microsecond-scale scheduler decisions and
// the paper's 100-second iteration times.
func DurationBuckets() []float64 {
	return []float64{
		10e-6, 100e-6, 1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3,
		1, 2, 5, 10, 30, 60, 120, 300, 600, 1000,
	}
}

// ByteBuckets are histogram bounds in bytes from 4KiB to 64GiB.
func ByteBuckets() []float64 {
	var b []float64
	for v := int64(4 << 10); v <= 64<<30; v <<= 2 {
		b = append(b, float64(v))
	}
	return b
}

// formatFloat renders a float the way the Prometheus text format
// expects (no exponent for typical values, %g otherwise).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
