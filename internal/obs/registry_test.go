package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("SetMax = %d, want 11", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// All of these must be no-ops, not panics.
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", DurationBuckets()).Observe(1)
	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.SetMax(5)
	var h *Histogram
	h.Observe(1)
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has a quantile")
	}
	var tr *Tracer
	tr.Begin("a", "b", "c").End()
	tr.Record("a", "b", "c", 0, 0)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded spans")
	}
}

// TestHistogramQuantile checks the interpolated estimates against a
// reference sort: every estimate must land within one bucket width of
// the exact empirical quantile.
func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}
	h := newHistogram(bounds)
	rng := rand.New(rand.NewSource(42))
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over (1e-4, 10): exercises every bucket.
		vals[i] = math.Pow(10, -4+5*rng.Float64())
		h.Observe(vals[i])
	}
	sort.Float64s(vals)

	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(n-1))]
		est := h.Quantile(q)
		// The estimate must be inside the bucket containing the exact
		// value (linear interpolation cannot do better than that).
		i := sort.SearchFloat64s(bounds, exact)
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[len(bounds)-1]
		if i < len(bounds) {
			hi = bounds[i]
		}
		if est < lo || est > hi {
			t.Errorf("q=%.2f: estimate %g outside bucket [%g, %g] of exact %g", q, est, lo, hi, exact)
		}
	}

	if got := h.Count(); got != int64(n) {
		t.Fatalf("count = %d, want %d", got, n)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if diff := math.Abs(h.Sum() - sum); diff > 1e-6*sum {
		t.Fatalf("sum = %g, want %g", h.Sum(), sum)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(100) // lands in +Inf bucket
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %g, want clamp to 2", got)
	}
}

// TestConcurrentStress hammers one counter, gauge and histogram from
// many goroutines; totals must be exact. Run under -race this also
// proves the registry is data-race free.
func TestConcurrentStress(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			// Resolve handles inside the goroutine: get-or-create must
			// be safe concurrently too.
			c := r.Counter("stress_total")
			g := r.Gauge("stress_gauge")
			h := r.Histogram("stress_seconds", DurationBuckets())
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(int64(i))
				h.Observe(rng.Float64())
			}
		}(int64(w))
	}
	wg.Wait()

	if got := r.Counter("stress_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("stress_seconds", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	s := r.Histogram("stress_seconds", nil).Snapshot()
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}
