package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRingEviction: ring mode keeps the newest spans, never exceeds the
// byte budget, and counts every eviction.
func TestRingEviction(t *testing.T) {
	tr := NewTracer(&manualClock{})
	budget := int64(300) // ~4 spans of cost 64+3
	tr.EnableRing(budget)
	const n = 100
	for i := 0; i < n; i++ {
		tr.Record("c", "s", "x", time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	if got := tr.RingBytes(); got > budget {
		t.Fatalf("ring bytes %d over budget %d", got, budget)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("ring evicted everything")
	}
	if int64(tr.Dropped()) != int64(n-len(spans)) {
		t.Fatalf("dropped %d, want %d", tr.Dropped(), n-len(spans))
	}
	// Newest span always survives, and seqs stay contiguous newest-last.
	if last := spans[len(spans)-1].Seq; last != n {
		t.Fatalf("newest seq %d, want %d", last, n)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatalf("seq gap in live buffer: %d -> %d", spans[i-1].Seq, spans[i].Seq)
		}
	}
}

// TestRingKeepsNewest: a budget smaller than one span still retains the
// most recent span, so /trace is never empty on a live server.
func TestRingKeepsNewest(t *testing.T) {
	tr := NewTracer(&manualClock{})
	tr.EnableRing(1)
	tr.Record("client-1", "forward", "compute", 0, time.Second)
	tr.Record("client-1", "backward", "compute", time.Second, time.Second)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "backward" {
		t.Fatalf("spans = %+v, want just the newest", spans)
	}
}

// TestSpansSincePaging: feeding back the largest seen Seq yields each
// span exactly once.
func TestSpansSincePaging(t *testing.T) {
	tr := NewTracer(&manualClock{})
	for i := 0; i < 10; i++ {
		tr.Record("c", "s", "x", 0, time.Millisecond)
	}
	page1 := tr.SpansSince(0)
	if len(page1) != 10 {
		t.Fatalf("since 0: %d spans, want 10", len(page1))
	}
	if got := tr.SpansSince(5); len(got) != 5 || got[0].Seq != 6 {
		t.Fatalf("since 5: %d spans starting at %d", len(got), got[0].Seq)
	}
	if got := tr.SpansSince(tr.LastSeq()); len(got) != 0 {
		t.Fatalf("since last: %d spans, want 0", len(got))
	}
}

// TestSpansWindow: the trailing window filters by span end time, on the
// tracer clock when present and the latest span end otherwise.
func TestSpansWindow(t *testing.T) {
	clk := &manualClock{}
	tr := NewTracer(clk)
	tr.Record("c", "old", "x", 0, time.Second)
	tr.Record("c", "new", "x", 9*time.Second, time.Second)
	clk.t = 10 * time.Second
	got := tr.SpansWindow(5 * time.Second)
	if len(got) != 1 || got[0].Name != "new" {
		t.Fatalf("window spans = %+v", got)
	}
	if all := tr.SpansWindow(0); len(all) != 2 {
		t.Fatalf("window<=0 returned %d spans, want all", len(all))
	}

	// Nil clock (offline/simulator dumps): anchored at max span end.
	off := NewTracer(nil)
	off.Record("c", "old", "x", 0, time.Second)
	off.Record("c", "new", "x", 99*time.Second, time.Second)
	if got := off.SpansWindow(5 * time.Second); len(got) != 1 || got[0].Name != "new" {
		t.Fatalf("nil-clock window spans = %+v", got)
	}
}

// TestRingSeqSurvivesReset: sequence numbers keep counting across Reset
// so a poller's ?since= cursor stays valid.
func TestRingSeqSurvivesReset(t *testing.T) {
	tr := NewTracer(&manualClock{})
	tr.Record("c", "s", "x", 0, time.Millisecond)
	seq := tr.LastSeq()
	tr.Reset()
	tr.Record("c", "s", "x", 0, time.Millisecond)
	if tr.LastSeq() != seq+1 {
		t.Fatalf("seq after reset = %d, want %d", tr.LastSeq(), seq+1)
	}
}

// TestRingHammer races writers against a ?since= pager and asserts the
// two load-bearing invariants under contention: the byte budget is
// never exceeded, and the pager sees every seq at most once, in order.
// Run with -race (make test-race).
func TestRingHammer(t *testing.T) {
	tr := NewTracer(NewWallClock())
	reg := NewRegistry()
	tr.Instrument(reg)
	const budget = 16 << 10
	tr.EnableRing(budget)

	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Pager: polls SpansSince like a /trace?since= client.
	pagerDone := make(chan error, 1)
	go func() {
		var cursor uint64
		for {
			select {
			case <-stop:
				pagerDone <- nil
				return
			default:
			}
			if b := tr.RingBytes(); b > budget {
				pagerDone <- errInvariant("ring bytes over budget")
				return
			}
			page := tr.SpansSince(cursor)
			for _, s := range page {
				if s.Seq <= cursor {
					pagerDone <- errInvariant("duplicate or out-of-order seq")
					return
				}
				cursor = s.Seq
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.RecordT("client", "span", "compute", uint64(w*perWriter+i+1),
					time.Duration(i)*time.Microsecond, time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-pagerDone; err != nil {
		t.Fatal(err)
	}

	if b := tr.RingBytes(); b > budget {
		t.Fatalf("final ring bytes %d over budget %d", b, budget)
	}
	total := int64(writers * perWriter)
	if got := int64(tr.Len()) + tr.Dropped(); got != total {
		t.Fatalf("live %d + dropped %d != recorded %d", tr.Len(), tr.Dropped(), total)
	}
	if c := reg.Counter(MetricObsSpansDropped); c.Value() != tr.Dropped() {
		t.Fatalf("drop counter %d != Dropped %d", c.Value(), tr.Dropped())
	}
}

type errInvariant string

func (e errInvariant) Error() string { return string(e) }
