package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSamplerConfig configures StartRuntimeSampler.
type RuntimeSamplerConfig struct {
	// Interval between samples. <= 0 means 10s.
	Interval time.Duration
	// Extra, when set, runs after each sample with the registry — the
	// hook daemons use to publish process-level gauges the obs package
	// cannot reach itself (e.g. the tensor worker-pool depth) on the
	// same cadence.
	Extra func(*Registry)
}

// StartRuntimeSampler publishes the menos_go_* self-observability
// gauges — live heap bytes, goroutine count, GC cycles and cumulative
// GC pause — from runtime/metrics on a background ticker, so a scrape
// of /metrics answers "is the server itself healthy" alongside the
// workload metrics. One synchronous sample runs before returning
// (gauges are live from the first scrape). The returned stop function
// halts the sampler and is idempotent. Safe on a nil registry
// (returns a no-op stop).
func StartRuntimeSampler(reg *Registry, cfg RuntimeSamplerConfig) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	heap := reg.Gauge(MetricGoHeapBytes, "Live heap objects, bytes (runtime/metrics).")
	goroutines := reg.Gauge(MetricGoGoroutines, "Current goroutine count.")
	cycles := reg.Gauge(MetricGoGCCycles, "Completed GC cycles since process start.")
	pause := reg.Gauge(MetricGoGCPauseMicros, "Cumulative GC stop-the-world pause, microseconds.")
	samples := []metrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/gc/cycles/total:gc-cycles"},
	}
	u64 := func(s metrics.Sample) int64 {
		if s.Value.Kind() == metrics.KindUint64 {
			return int64(s.Value.Uint64())
		}
		return 0
	}
	sample := func() {
		metrics.Read(samples)
		heap.Set(u64(samples[0]))
		goroutines.Set(u64(samples[1]))
		cycles.Set(u64(samples[2]))
		// runtime/metrics exposes pauses only as a distribution;
		// MemStats carries the exact cumulative total.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		pause.Set(int64(ms.PauseTotalNs / 1000))
		if cfg.Extra != nil {
			cfg.Extra(reg)
		}
	}
	sample()
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}
