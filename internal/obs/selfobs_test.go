package obs

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, RuntimeSamplerConfig{
		Interval: time.Hour, // only the synchronous first sample matters here
		Extra: func(r *Registry) {
			r.Gauge("menos_test_extra").Set(42)
		},
	})
	if reg.Gauge(MetricGoHeapBytes).Value() <= 0 {
		t.Fatal("heap gauge not sampled")
	}
	if reg.Gauge(MetricGoGoroutines).Value() <= 0 {
		t.Fatal("goroutine gauge not sampled")
	}
	if reg.Gauge("menos_test_extra").Value() != 42 {
		t.Fatal("Extra hook did not run")
	}
	stop()
	stop() // idempotent

	// Nil registry: no goroutine, no panic.
	StartRuntimeSampler(nil, RuntimeSamplerConfig{})()
}

// TestFlightAsyncBurstRotation hammers the recorder from concurrent
// TriggerAsync callers (the shape of a real shedding storm) and then
// drives rotation to completion, asserting the size bound and the
// single-.1 rotation scheme hold. Run under -race this also proves the
// trigger path is data-race free.
func TestFlightAsyncBurstRotation(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(FlightConfig{
		Dir:         dir,
		MaxBytes:    4096,
		MinInterval: time.Nanosecond,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct reasons per goroutine defeat the per-reason rate
			// limiter, maximizing concurrent write pressure.
			reason := fmt.Sprintf("burst-%d", g)
			for i := 0; i < 200; i++ {
				fr.TriggerAsync(reason)
			}
		}(g)
	}
	wg.Wait()

	// Force rotation deterministically: synchronous triggers until the
	// rotated file appears.
	rotated := filepath.Join(dir, "flight.jsonl.1")
	for i := 0; i < 2000; i++ {
		if err := fr.Trigger(fmt.Sprintf("force-%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(rotated); err == nil {
			break
		}
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fr.Err(); err != nil {
		t.Fatal(err)
	}

	st1, err := os.Stat(rotated)
	if err != nil {
		t.Fatalf("rotation never happened: %v", err)
	}
	st0, err := os.Stat(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if st0.Size() > 4096 || st1.Size() > 4096 {
		t.Fatalf("size bound violated: active=%d rotated=%d, max 4096", st0.Size(), st1.Size())
	}
	// Exactly one rotation generation exists.
	if _, err := os.Stat(rotated + ".1"); err == nil {
		t.Fatal("unexpected second rotation generation")
	}
}

func TestFlightCaptureProfiles(t *testing.T) {
	dir := t.TempDir()
	fr, err := NewFlightRecorder(FlightConfig{
		Dir:             dir,
		CaptureProfiles: true,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Trigger(FlightReasonShed); err != nil {
		t.Fatal(err)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"heap-shed.pb.gz", "goroutine-shed.pb.gz"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", name)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"profiles":["heap-shed.pb.gz","goroutine-shed.pb.gz"]`) {
		t.Fatalf("record does not reference profiles: %s", data)
	}
}

func TestTraceEndpointRejectsMalformedParams(t *testing.T) {
	clk := &manualClock{}
	tr := NewTracer(clk)
	tr.RecordT("t", "n", "c", 0, 0, time.Millisecond)
	h := Handler(nil, tr)

	bad := []string{
		"/trace?since=",     // empty value is malformed, not "no filter"
		"/trace?since=abc",  // not a number
		"/trace?since=-1",   // ParseUint rejects the sign
		"/trace?window=",    // empty value
		"/trace?window=abc", // not a duration
		"/trace?window=-5s", // non-positive window
		"/trace?window=0s",  // non-positive window
	}
	for _, url := range bad {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 400 {
			t.Fatalf("GET %s = %d, want 400", url, rec.Code)
		}
	}
	good := []string{"/trace", "/trace?since=0", "/trace?window=5s"}
	for _, url := range good {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d, want 200", url, rec.Code)
		}
	}
}

func TestHandlerLoadzAndPprof(t *testing.T) {
	h := Handler(nil, nil,
		WithLoadz(func() any { return map[string]int{"queue_depth": 3} }),
		WithPprof())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/loadz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"queue_depth": 3`) {
		t.Fatalf("/loadz = %d %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/loadz content-type = %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", rec.Code)
	}

	// Without the options, neither endpoint exists.
	bare := Handler(nil, nil)
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/loadz", nil))
	if rec.Code != 404 {
		t.Fatalf("/loadz without WithLoadz = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/pprof/ without WithPprof = %d, want 404", rec.Code)
	}
}
