package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one completed timed interval on a named track (a client, a
// scheduler, a device). Categories group spans for analysis: the
// serving path uses "admission", "sched", "compute", "comm" and
// "release", matching the breakdown of the paper's Tables 1-3.
type Span struct {
	Track string        // rendering track: client ID or component name
	Name  string        // e.g. "forward", "wait:backward"
	Cat   string        // e.g. "compute", "sched", "comm"
	Start time.Duration // clock time at span begin
	Dur   time.Duration
}

// Tracer collects spans through a Clock, so the same call sites record
// wall time on the TCP runtime and virtual time in the simulator. The
// buffer is bounded: once cap is reached new spans are dropped and
// counted, never blocking the hot path.
type Tracer struct {
	clock Clock

	mu      sync.Mutex
	spans   []Span
	limit   int
	dropped int64
}

// DefaultSpanLimit bounds a tracer's buffer unless SetLimit overrides
// it: enough for ~100k spans (a few thousand iterations across tens of
// clients) at ~64 bytes each.
const DefaultSpanLimit = 1 << 17

// NewTracer creates a tracer reading timestamps from clock (required).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock, limit: DefaultSpanLimit}
}

// SetLimit caps the span buffer (n <= 0 means DefaultSpanLimit). Safe
// on nil.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultSpanLimit
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Now returns the tracer's clock reading. Safe on nil (returns 0).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock.Now()
}

// Begin opens a span at the current clock time. End completes and
// records it. Safe on a nil tracer (returns a nil handle whose End is
// a no-op).
func (t *Tracer) Begin(track, name, cat string) *SpanHandle {
	if t == nil {
		return nil
	}
	return &SpanHandle{t: t, span: Span{Track: track, Name: name, Cat: cat, Start: t.clock.Now()}}
}

// Record appends a completed span with explicit times — the
// simulator's path, where durations are known without sampling the
// clock twice. Safe on nil.
func (t *Tracer) Record(track, name, cat string, start, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Track: track, Name: name, Cat: cat, Start: start, Dur: dur})
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans. Safe on nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of buffered spans. Safe on nil.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans the buffer limit discarded. Safe on
// nil.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the buffer and drop counter. Safe on nil.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// CatTotals sums span durations by category — the span-side view of
// trace.Breakdown, used to cross-check that a dumped trace reconstructs
// the same decomposition the experiment tables report. Safe on nil.
func (t *Tracer) CatTotals() map[string]time.Duration {
	totals := make(map[string]time.Duration)
	for _, s := range t.Spans() {
		totals[s.Cat] += s.Dur
	}
	return totals
}

// SpanHandle is an open span returned by Begin.
type SpanHandle struct {
	t    *Tracer
	span Span
}

// End completes the span at the current clock time and records it.
// Safe on a nil handle.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	h.span.Dur = h.t.clock.Now() - h.span.Start
	h.t.Record(h.span.Track, h.span.Name, h.span.Cat, h.span.Start, h.span.Dur)
}

// chromeEvent is one Chrome trace-event ("X" complete events plus "M"
// thread-name metadata), loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the span buffer as Chrome trace-event JSON.
// Each distinct track becomes one numbered thread with a thread_name
// metadata record, so chrome://tracing renders one row per client or
// component. Safe on nil (writes an empty trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()

	// Stable track numbering: sorted track names.
	trackSet := make(map[string]bool)
	for _, s := range spans {
		trackSet[s.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for name := range trackSet {
		tracks = append(tracks, name)
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	for i, name := range tracks {
		tid[name] = i + 1
	}

	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)+len(tracks)), DisplayTimeUnit: "ms"}
	for _, name := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid[name],
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  tid[s.Track],
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}
