package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one completed timed interval on a named track (a client, a
// scheduler, a device). Categories group spans for analysis: the
// serving path uses "admission", "sched", "compute", "comm" and
// "release", matching the breakdown of the paper's Tables 1-3.
//
// TraceID groups the spans of one logical operation across tracks —
// and, carried over the split-protocol wire, across processes: a
// client iteration and the server-side sched/compute/release work it
// caused share one ID. Zero means "not part of a trace". Seq is a
// per-tracer monotonic sequence number assigned at record time, so
// pollers can page through a ring buffer without duplicates.
type Span struct {
	Track   string        // rendering track: client ID or component name
	Name    string        // e.g. "forward", "wait:backward"
	Cat     string        // e.g. "compute", "sched", "comm"
	TraceID uint64        // 0 = untraced; otherwise links spans across tracks/processes
	Seq     uint64        // monotonic per tracer, assigned at record time
	Start   time.Duration // clock time at span begin
	Dur     time.Duration
}

// End returns the clock time at which the span completed.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// spanFixedCost approximates the in-memory overhead of one Span beyond
// its string payloads (struct fields plus slice bookkeeping).
const spanFixedCost = 64

// cost is the byte accounting used by the ring budget.
func (s Span) cost() int64 {
	return spanFixedCost + int64(len(s.Track)+len(s.Name)+len(s.Cat))
}

// Tracer collects spans through a Clock, so the same call sites record
// wall time on the TCP runtime and virtual time in the simulator.
//
// Two overflow policies:
//
//   - default (bounded buffer): once the span limit is reached new
//     spans are dropped and counted — cheap, deterministic, right for
//     one-shot runs that dump the whole trace at the end;
//   - ring (EnableRing): the OLDEST spans are evicted to keep the
//     buffer under a byte budget, so a long-running server always
//     holds the most recent window and /trace?window= stays bounded.
//
// Neither policy ever blocks the hot path.
type Tracer struct {
	clock Clock

	mu       sync.Mutex
	spans    []Span
	head     int // index of the oldest live span in spans
	limit    int
	ring     bool
	maxBytes int64
	curBytes int64
	dropped  int64
	nextSeq  uint64
	dropCtr  *Counter

	pid   int
	pname string
}

// DefaultSpanLimit bounds a tracer's buffer unless SetLimit overrides
// it: enough for ~100k spans (a few thousand iterations across tens of
// clients) at ~64 bytes each.
const DefaultSpanLimit = 1 << 17

// DefaultRingBytes is the ring-mode byte budget when EnableRing is
// called with a non-positive value (~8 MiB, roughly 100k spans).
const DefaultRingBytes = 8 << 20

// NewTracer creates a tracer reading timestamps from clock (required).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock, limit: DefaultSpanLimit, pid: 1}
}

// SetLimit caps the span buffer in drop-newest mode (n <= 0 means
// DefaultSpanLimit). Safe on nil.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultSpanLimit
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// EnableRing switches the tracer to ring mode: instead of dropping the
// newest spans at capacity, it evicts the oldest to keep the buffer's
// byte accounting at or below maxBytes (<= 0 means DefaultRingBytes).
// Evictions count toward Dropped, so truncation is never silent. Safe
// on nil.
func (t *Tracer) EnableRing(maxBytes int64) {
	if t == nil {
		return
	}
	if maxBytes <= 0 {
		maxBytes = DefaultRingBytes
	}
	t.mu.Lock()
	t.ring = true
	t.maxBytes = maxBytes
	t.curBytes = 0
	for i := t.head; i < len(t.spans); i++ {
		t.curBytes += t.spans[i].cost()
	}
	t.evictLocked()
	t.mu.Unlock()
}

// SetProcess names this tracer's process in Chrome trace output. Each
// process in a merged trace (WriteMergedChromeTrace) needs a distinct
// pid; single-tracer dumps default to pid 1. Safe on nil.
func (t *Tracer) SetProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pid = pid
	t.pname = name
	t.mu.Unlock()
}

// Instrument publishes the tracer's drop counter as
// MetricObsSpansDropped in reg, seeding it with drops recorded so far.
// Safe on nil tracer or registry.
func (t *Tracer) Instrument(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	c := reg.Counter(MetricObsSpansDropped,
		"spans discarded by the tracer (buffer-full drops and ring evictions)")
	t.mu.Lock()
	t.dropCtr = c
	c.Add(t.dropped - c.Value())
	t.mu.Unlock()
}

// Now returns the tracer's clock reading. Safe on nil (returns 0).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock.Now()
}

// Begin opens an untraced span at the current clock time. End
// completes and records it. Safe on a nil tracer (returns a nil handle
// whose End is a no-op).
func (t *Tracer) Begin(track, name, cat string) *SpanHandle {
	return t.BeginT(track, name, cat, 0)
}

// BeginT opens a span carrying a trace ID. Safe on nil.
func (t *Tracer) BeginT(track, name, cat string, traceID uint64) *SpanHandle {
	if t == nil {
		return nil
	}
	return &SpanHandle{t: t, span: Span{Track: track, Name: name, Cat: cat, TraceID: traceID, Start: t.clock.Now()}}
}

// Record appends a completed untraced span with explicit times — the
// simulator's path, where durations are known without sampling the
// clock twice. Safe on nil.
func (t *Tracer) Record(track, name, cat string, start, dur time.Duration) {
	t.RecordT(track, name, cat, 0, start, dur)
}

// RecordT appends a completed span carrying a trace ID. Safe on nil.
func (t *Tracer) RecordT(track, name, cat string, traceID uint64, start, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.nextSeq++
	s := Span{Track: track, Name: name, Cat: cat, TraceID: traceID, Seq: t.nextSeq, Start: start, Dur: dur}
	if t.ring {
		t.spans = append(t.spans, s)
		t.curBytes += s.cost()
		t.evictLocked()
		t.compactLocked()
	} else if len(t.spans)-t.head >= t.limit {
		t.dropLocked(1)
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// evictLocked discards oldest spans until the ring is within budget,
// always retaining the newest span. Caller holds t.mu.
func (t *Tracer) evictLocked() {
	for t.curBytes > t.maxBytes && len(t.spans)-t.head > 1 {
		t.curBytes -= t.spans[t.head].cost()
		t.spans[t.head] = Span{}
		t.head++
		t.dropLocked(1)
	}
}

// compactLocked slides live spans to the front once the dead prefix
// dominates, so the backing array does not grow without bound. Caller
// holds t.mu.
func (t *Tracer) compactLocked() {
	if t.head < 32 || t.head <= len(t.spans)/2 {
		return
	}
	n := copy(t.spans, t.spans[t.head:])
	t.spans = t.spans[:n]
	t.head = 0
}

// dropLocked records n discarded spans. Caller holds t.mu.
func (t *Tracer) dropLocked(n int64) {
	t.dropped += n
	t.dropCtr.Add(n) // nil-safe
}

// Spans returns a copy of the live spans, oldest first. Safe on nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans)-t.head)
	copy(out, t.spans[t.head:])
	return out
}

// SpansSince returns the live spans with Seq > seq, oldest first —
// the paging primitive behind /trace?since=. A poller that feeds back
// the largest Seq it has seen never receives a span twice. Safe on
// nil.
func (t *Tracer) SpansSince(seq uint64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.spans[t.head:]
	// Seqs are assigned in record order, so the live buffer is sorted.
	i := sort.Search(len(live), func(i int) bool { return live[i].Seq > seq })
	out := make([]Span, len(live)-i)
	copy(out, live[i:])
	return out
}

// SpansWindow returns the live spans whose end time falls within the
// trailing window d — /trace?window=. The window is anchored at the
// tracer's clock; with a nil clock (offline dumps) it is anchored at
// the latest span end in the buffer. d <= 0 returns everything. Safe
// on nil.
func (t *Tracer) SpansWindow(d time.Duration) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.spans[t.head:]
	if d <= 0 {
		out := make([]Span, len(live))
		copy(out, live)
		return out
	}
	var now time.Duration
	if t.clock != nil {
		now = t.clock.Now()
	} else {
		for _, s := range live {
			if s.End() > now {
				now = s.End()
			}
		}
	}
	cutoff := now - d
	out := make([]Span, 0, len(live))
	for _, s := range live {
		if s.End() >= cutoff {
			out = append(out, s)
		}
	}
	return out
}

// LastSeq returns the sequence number of the most recently recorded
// span (0 before any span). Safe on nil.
func (t *Tracer) LastSeq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextSeq
}

// RingBytes returns the ring's current byte accounting (0 unless
// EnableRing). Safe on nil.
func (t *Tracer) RingBytes() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.curBytes
}

// Len returns the number of buffered spans. Safe on nil.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans) - t.head
}

// Dropped returns how many spans were discarded (buffer-full drops
// plus ring evictions). Safe on nil.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset clears the buffer and drop counter. Sequence numbers keep
// counting up so pagers spanning a Reset stay duplicate-free. Safe on
// nil.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.head = 0
	t.curBytes = 0
	t.dropped = 0
	t.mu.Unlock()
}

// CatTotals sums span durations by category — the span-side view of
// trace.Breakdown, used to cross-check that a dumped trace reconstructs
// the same decomposition the experiment tables report. Safe on nil.
func (t *Tracer) CatTotals() map[string]time.Duration {
	totals := make(map[string]time.Duration)
	for _, s := range t.Spans() {
		totals[s.Cat] += s.Dur
	}
	return totals
}

// SpanHandle is an open span returned by Begin/BeginT.
type SpanHandle struct {
	t    *Tracer
	span Span
}

// TraceID returns the trace ID the span was opened with. Safe on nil.
func (h *SpanHandle) TraceID() uint64 {
	if h == nil {
		return 0
	}
	return h.span.TraceID
}

// End completes the span at the current clock time and records it.
// Safe on a nil handle.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	h.span.Dur = h.t.clock.Now() - h.span.Start
	h.t.RecordT(h.span.Track, h.span.Name, h.span.Cat, h.span.TraceID, h.span.Start, h.span.Dur)
}

// IterTraceID derives the deterministic trace ID of one client
// iteration (FNV-1a over the client ID and iteration number, never
// zero). Both planes — the client that initiates the iteration and the
// server that receives its requests — can compute it independently,
// and the simulator's virtual-clock traces get the same IDs on every
// run.
func IterTraceID(clientID string, iter int) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, clientID)
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(iter) >> (56 - 8*i))
	}
	_, _ = h.Write(b[:])
	id := h.Sum64()
	if id == 0 {
		id = 1
	}
	return id
}

// chromeEvent is one Chrome trace-event ("X" complete events plus "M"
// thread-name metadata), loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// LastSeq lets a /trace?since= poller resume from this dump's end.
	LastSeq uint64 `json:"lastSeq"`
}

// traceProc is one process's contribution to a Chrome trace.
type traceProc struct {
	pid   int
	pname string
	spans []Span
}

// process returns the tracer's identity and a copy of its live spans.
func (t *Tracer) process() traceProc {
	if t == nil {
		return traceProc{pid: 1}
	}
	spans := t.Spans()
	t.mu.Lock()
	defer t.mu.Unlock()
	return traceProc{pid: t.pid, pname: t.pname, spans: spans}
}

// buildChromeTrace lays out one or more processes' spans: every
// process gets a process_name metadata record (when named), every
// distinct track within it one numbered thread.
func buildChromeTrace(procs ...traceProc) chromeTrace {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	for _, p := range procs {
		trackSet := make(map[string]bool)
		for _, s := range p.spans {
			trackSet[s.Track] = true
		}
		tracks := make([]string, 0, len(trackSet))
		for name := range trackSet {
			tracks = append(tracks, name)
		}
		sort.Strings(tracks)
		tid := make(map[string]int, len(tracks))
		for i, name := range tracks {
			tid[name] = i + 1
		}
		if p.pname != "" {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: p.pid, TID: 0,
				Args: map[string]any{"name": p.pname},
			})
		}
		for _, name := range tracks {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: p.pid, TID: tid[name],
				Args: map[string]any{"name": name},
			})
		}
		for _, s := range p.spans {
			ev := chromeEvent{
				Name: s.Name,
				Cat:  s.Cat,
				Ph:   "X",
				TS:   float64(s.Start) / float64(time.Microsecond),
				Dur:  float64(s.Dur) / float64(time.Microsecond),
				PID:  p.pid,
				TID:  tid[s.Track],
			}
			if s.TraceID != 0 || s.Seq != 0 {
				ev.Args = map[string]any{"seq": s.Seq}
				if s.TraceID != 0 {
					ev.Args["trace_id"] = fmt.Sprintf("%016x", s.TraceID)
				}
			}
			out.TraceEvents = append(out.TraceEvents, ev)
			if s.Seq > out.LastSeq {
				out.LastSeq = s.Seq
			}
		}
	}
	return out
}

func encodeChromeTrace(w io.Writer, ct chromeTrace) error {
	if err := json.NewEncoder(w).Encode(ct); err != nil {
		return fmt.Errorf("obs: write chrome trace: %w", err)
	}
	return nil
}

// WriteChromeTrace emits the span buffer as Chrome trace-event JSON.
// Each distinct track becomes one numbered thread with a thread_name
// metadata record, so chrome://tracing renders one row per client or
// component. Traced spans carry their trace_id (hex) and seq in args.
// Safe on nil (writes an empty trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return encodeChromeTrace(w, buildChromeTrace(t.process()))
}

// writeChromeSpans emits an explicit span subset (a since/window page)
// under the tracer's process identity.
func (t *Tracer) writeChromeSpans(w io.Writer, spans []Span) error {
	p := t.process()
	p.spans = spans
	return encodeChromeTrace(w, buildChromeTrace(p))
}

// WriteMergedChromeTrace emits the union of several tracers — e.g. a
// client's and a server's — as one Chrome trace, one process per
// tracer. Give each tracer a distinct SetProcess pid/name first;
// iteration spans recorded on both sides then line up by trace_id.
func WriteMergedChromeTrace(w io.Writer, tracers ...*Tracer) error {
	procs := make([]traceProc, 0, len(tracers))
	for _, t := range tracers {
		procs = append(procs, t.process())
	}
	return encodeChromeTrace(w, buildChromeTrace(procs...))
}
