package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// manualClock is a hand-advanced Clock for deterministic span tests —
// the same role the sim kernel's virtual clock plays in production.
type manualClock struct{ t time.Duration }

func (c *manualClock) Now() time.Duration { return c.t }

func TestTracerBeginEnd(t *testing.T) {
	clk := &manualClock{}
	tr := NewTracer(clk)

	h := tr.Begin("client-1", "forward", "compute")
	clk.t = 30 * time.Millisecond
	h.End()

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Track != "client-1" || s.Name != "forward" || s.Cat != "compute" {
		t.Fatalf("bad span identity: %+v", s)
	}
	if s.Start != 0 || s.Dur != 30*time.Millisecond {
		t.Fatalf("bad span times: start=%v dur=%v", s.Start, s.Dur)
	}
}

func TestTracerRecordAndTotals(t *testing.T) {
	tr := NewTracer(ClockFunc(func() time.Duration { return 0 }))
	tr.Record("c1", "wait", "sched", 0, 10*time.Second)
	tr.Record("c1", "fwd", "compute", 10*time.Second, 5*time.Second)
	tr.Record("c2", "wait", "sched", 0, 2*time.Second)

	totals := tr.CatTotals()
	if totals["sched"] != 12*time.Second {
		t.Fatalf("sched total = %v, want 12s", totals["sched"])
	}
	if totals["compute"] != 5*time.Second {
		t.Fatalf("compute total = %v, want 5s", totals["compute"])
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer(&manualClock{})
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Record("c", "s", "x", 0, time.Second)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the buffer")
	}
}

// TestChromeTraceSchema validates the dumped JSON against the Chrome
// trace-event schema: a traceEvents array whose "X" events carry
// name/cat/ts/dur/pid/tid and whose threads are named via "M" records.
func TestChromeTraceSchema(t *testing.T) {
	clk := &manualClock{}
	tr := NewTracer(clk)
	tr.Record("client-2", "wait:backward", "sched", 5*time.Millisecond, 20*time.Millisecond)
	tr.Record("client-1", "forward", "compute", 0, 5*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	// 2 metadata events (one per track) + 2 complete events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	names := make(map[int]string)
	var complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				t.Fatalf("metadata event %q, want thread_name", e.Name)
			}
			name, ok := e.Args["name"].(string)
			if !ok {
				t.Fatalf("thread_name without args.name: %+v", e)
			}
			names[e.TID] = name
		case "X":
			complete++
			if e.Name == "" || e.Cat == "" || e.PID == 0 || e.TID == 0 {
				t.Fatalf("incomplete X event: %+v", e)
			}
			if e.Dur <= 0 {
				t.Fatalf("X event without duration: %+v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if complete != 2 {
		t.Fatalf("got %d complete events, want 2", complete)
	}
	// Track naming is sorted and stable: client-1 -> tid 1.
	if names[1] != "client-1" || names[2] != "client-2" {
		t.Fatalf("bad track naming: %v", names)
	}

	// Timestamps are microseconds.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "forward" && e.Dur != 5000 {
			t.Fatalf("forward dur = %v µs, want 5000", e.Dur)
		}
	}
}
