package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ParsedTrace is a Chrome trace dump decoded back into spans — the
// inverse of WriteChromeTrace, up to the information the format keeps
// (track names survive via thread_name metadata; trace IDs and
// sequence numbers via the span args written by buildChromeTrace).
type ParsedTrace struct {
	// Spans holds every complete ("X") event, in dump order.
	Spans []Span
	// ProcessName is the first process_name metadata record (the
	// tracer's SetProcess name), "" when the dump carries none.
	ProcessName string
	// LastSeq is the dump's resume cursor: the top-level lastSeq field
	// when present, else the maximum span seq. A /trace?since= poller
	// feeds it back to page without duplicates.
	LastSeq uint64
}

// ParseChromeTrace decodes a Chrome trace-event dump produced by
// WriteChromeTrace (or a /trace page) back into spans. This is the
// scrape side of cross-server trace federation: menos-fleetd pulls
// each server's /trace?since= pages, parses them here, and re-records
// the spans into per-server mirror tracers for one merged fleet trace.
//
// Events from all pids in the dump are returned; fleetd's per-server
// pages carry exactly one.
func ParseChromeTrace(r io.Reader) (ParsedTrace, error) {
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			PID  int             `json:"pid"`
			TID  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		LastSeq uint64 `json:"lastSeq"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return ParsedTrace{}, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	out := ParsedTrace{LastSeq: doc.LastSeq}
	type thread struct{ pid, tid int }
	tracks := make(map[thread]string)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			var meta struct {
				Name string `json:"name"`
			}
			if len(ev.Args) > 0 {
				_ = json.Unmarshal(ev.Args, &meta)
			}
			switch ev.Name {
			case "process_name":
				if out.ProcessName == "" {
					out.ProcessName = meta.Name
				}
			case "thread_name":
				tracks[thread{ev.PID, ev.TID}] = meta.Name
			}
		case "X":
			s := Span{
				Track: tracks[thread{ev.PID, ev.TID}],
				Name:  ev.Name,
				Cat:   ev.Cat,
				Start: time.Duration(ev.TS * float64(time.Microsecond)),
				Dur:   time.Duration(ev.Dur * float64(time.Microsecond)),
			}
			if len(ev.Args) > 0 {
				var args struct {
					Seq     uint64 `json:"seq"`
					TraceID string `json:"trace_id"`
				}
				if json.Unmarshal(ev.Args, &args) == nil {
					s.Seq = args.Seq
					if args.TraceID != "" {
						if id, err := strconv.ParseUint(args.TraceID, 16, 64); err == nil {
							s.TraceID = id
						}
					}
				}
			}
			if s.Track == "" {
				// thread_name metadata may follow its spans in foreign
				// dumps; fall back to a stable synthetic track.
				s.Track = "tid-" + strconv.Itoa(ev.TID)
			}
			out.Spans = append(out.Spans, s)
			if s.Seq > out.LastSeq {
				out.LastSeq = s.Seq
			}
		}
	}
	return out, nil
}
