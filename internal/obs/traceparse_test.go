package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestParseChromeTraceRoundTrip pins that a WriteChromeTrace dump
// decodes back into the same spans — the contract trace federation
// rests on.
func TestParseChromeTraceRoundTrip(t *testing.T) {
	var now time.Duration
	tr := NewTracer(ClockFunc(func() time.Duration { return now }))
	tr.SetProcess(3, "menos-server-3")
	id := IterTraceID("c1", 7)
	tr.RecordT("c1", "forward", "compute", id, 10*time.Millisecond, 5*time.Millisecond)
	tr.RecordT("sched", "grant", "sched", 0, 12*time.Millisecond, time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProcessName != "menos-server-3" {
		t.Fatalf("ProcessName = %q", got.ProcessName)
	}
	if got.LastSeq != tr.LastSeq() {
		t.Fatalf("LastSeq = %d, want %d", got.LastSeq, tr.LastSeq())
	}
	want := tr.Spans()
	if len(got.Spans) != len(want) {
		t.Fatalf("parsed %d spans, want %d", len(got.Spans), len(want))
	}
	for i, s := range got.Spans {
		if s != want[i] {
			t.Fatalf("span %d = %+v, want %+v", i, s, want[i])
		}
	}
}

// TestParseChromeTraceSincePage pins that a /trace?since= page parses
// with the correct resume cursor even when the page is empty.
func TestParseChromeTraceSincePage(t *testing.T) {
	var now time.Duration
	tr := NewTracer(ClockFunc(func() time.Duration { return now }))
	for i := 0; i < 4; i++ {
		tr.Record("t", "s", "c", time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	var buf bytes.Buffer
	if err := tr.writeChromeSpans(&buf, tr.SpansSince(2)); err != nil {
		t.Fatal(err)
	}
	got, err := ParseChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 2 || got.Spans[0].Seq != 3 {
		t.Fatalf("page = %+v, want seqs 3,4", got.Spans)
	}
	if got.LastSeq != 4 {
		t.Fatalf("LastSeq = %d, want 4", got.LastSeq)
	}
}

func TestParseChromeTraceMalformed(t *testing.T) {
	if _, err := ParseChromeTrace(strings.NewReader("{nope")); err == nil {
		t.Fatal("want error on malformed JSON")
	}
}
