package obs

import "sync"

// VecOverflowLabel is the series that absorbs observations once a
// labeled family exceeds its cardinality cap. Aggregates stay exact —
// the sum over all series (including "other") always equals the
// unlabeled counterpart — only per-client attribution degrades.
const VecOverflowLabel = "other"

// DefaultVecCap bounds the number of distinct label values a family
// tracks before routing new values to the overflow series. Client IDs
// are the only label in use, and the paper's scale is tens of clients
// per server, so the default leaves ample headroom.
const DefaultVecCap = 64

// vec is the shared label-value → series map behind the three labeled
// family kinds. Lookup takes a read lock; creation takes the write
// lock once per label value. Callers on hot paths resolve the series
// handle once (per session / per client) and update it lock-free, the
// same contract as the unlabeled Registry handles.
type vec[M any] struct {
	label string
	cap   int
	mk    func() M

	mu     sync.RWMutex
	series map[string]M
}

func newVec[M any](label string, cap int, mk func() M) *vec[M] {
	if cap <= 0 {
		cap = DefaultVecCap
	}
	return &vec[M]{label: label, cap: cap, mk: mk, series: make(map[string]M)}
}

func (v *vec[M]) with(value string) M {
	v.mu.RLock()
	m, ok := v.series[value]
	v.mu.RUnlock()
	if ok {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.withLocked(value)
}

func (v *vec[M]) withLocked(value string) M {
	if m, ok := v.series[value]; ok {
		return m
	}
	if value != VecOverflowLabel && len(v.series) >= v.cap {
		return v.withLocked(VecOverflowLabel)
	}
	m := v.mk()
	v.series[value] = m
	return m
}

// labels returns the registered label values in sorted order.
func (v *vec[M]) labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return sortedKeys(v.series)
}

func (v *vec[M]) get(value string) (M, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.series[value]
	return m, ok
}

func (v *vec[M]) setCap(n int) {
	if n <= 0 {
		return
	}
	v.mu.Lock()
	v.cap = n
	v.mu.Unlock()
}

// CounterVec is a family of counters keyed by one label (the client
// ID). With resolves a series handle; past the cardinality cap, new
// label values share the VecOverflowLabel series.
type CounterVec struct {
	v *vec[*Counter]
}

// With returns the counter for the given label value, creating it on
// first use. Safe on nil (returns a nil, no-op Counter).
func (cv *CounterVec) With(value string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.with(value)
}

// Get returns the series for value without creating it. Safe on nil.
func (cv *CounterVec) Get(value string) (*Counter, bool) {
	if cv == nil {
		return nil, false
	}
	return cv.v.get(value)
}

// Labels returns the registered label values, sorted. Safe on nil.
func (cv *CounterVec) Labels() []string {
	if cv == nil {
		return nil
	}
	return cv.v.labels()
}

// Label returns the family's label key. Safe on nil.
func (cv *CounterVec) Label() string {
	if cv == nil {
		return ""
	}
	return cv.v.label
}

// SetCap adjusts the cardinality cap (setup-time knob; existing series
// are kept even if over the new cap). Safe on nil.
func (cv *CounterVec) SetCap(n int) {
	if cv != nil {
		cv.v.setCap(n)
	}
}

// GaugeVec is a family of gauges keyed by one label.
type GaugeVec struct {
	v *vec[*Gauge]
}

// With returns the gauge for the given label value, creating it on
// first use. Safe on nil.
func (gv *GaugeVec) With(value string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.with(value)
}

// Get returns the series for value without creating it. Safe on nil.
func (gv *GaugeVec) Get(value string) (*Gauge, bool) {
	if gv == nil {
		return nil, false
	}
	return gv.v.get(value)
}

// Labels returns the registered label values, sorted. Safe on nil.
func (gv *GaugeVec) Labels() []string {
	if gv == nil {
		return nil
	}
	return gv.v.labels()
}

// Label returns the family's label key. Safe on nil.
func (gv *GaugeVec) Label() string {
	if gv == nil {
		return ""
	}
	return gv.v.label
}

// SetCap adjusts the cardinality cap. Safe on nil.
func (gv *GaugeVec) SetCap(n int) {
	if gv != nil {
		gv.v.setCap(n)
	}
}

// HistogramVec is a family of histograms keyed by one label. All
// series share the bucket bounds given at registration.
type HistogramVec struct {
	v *vec[*Histogram]
}

// With returns the histogram for the given label value, creating it on
// first use. Safe on nil.
func (hv *HistogramVec) With(value string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.with(value)
}

// Get returns the series for value without creating it. Safe on nil.
func (hv *HistogramVec) Get(value string) (*Histogram, bool) {
	if hv == nil {
		return nil, false
	}
	return hv.v.get(value)
}

// Labels returns the registered label values, sorted. Safe on nil.
func (hv *HistogramVec) Labels() []string {
	if hv == nil {
		return nil
	}
	return hv.v.labels()
}

// Label returns the family's label key. Safe on nil.
func (hv *HistogramVec) Label() string {
	if hv == nil {
		return ""
	}
	return hv.v.label
}

// SetCap adjusts the cardinality cap. Safe on nil.
func (hv *HistogramVec) SetCap(n int) {
	if hv != nil {
		hv.v.setCap(n)
	}
}

// CounterVec returns the labeled counter family registered under name,
// creating it on first use with the given label key. A family may
// share its name with an unlabeled metric of the same kind: the text
// exposition then emits the unlabeled sample and the labeled series
// under one TYPE header, which is how per-client series sum up to the
// pre-existing aggregate. Safe on a nil registry.
func (r *Registry) CounterVec(name, label string, help ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cv, ok := r.counterVecs[name]
	if !ok {
		cv = &CounterVec{v: newVec(label, r.vecCap, func() *Counter { return &Counter{} })}
		r.counterVecs[name] = cv
		r.setHelp(name, help)
	}
	return cv
}

// GaugeVec returns the labeled gauge family registered under name,
// creating it on first use. Safe on a nil registry.
func (r *Registry) GaugeVec(name, label string, help ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	gv, ok := r.gaugeVecs[name]
	if !ok {
		gv = &GaugeVec{v: newVec(label, r.vecCap, func() *Gauge { return &Gauge{} })}
		r.gaugeVecs[name] = gv
		r.setHelp(name, help)
	}
	return gv
}

// HistogramVec returns the labeled histogram family registered under
// name, creating it on first use with the given bucket bounds. Later
// calls return the existing family regardless of the bounds argument.
// Safe on a nil registry.
func (r *Registry) HistogramVec(name, label string, bounds []float64, help ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	hv, ok := r.histVecs[name]
	if !ok {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		hv = &HistogramVec{v: newVec(label, r.vecCap, func() *Histogram { return newHistogram(bs) })}
		r.histVecs[name] = hv
		r.setHelp(name, help)
	}
	return hv
}

// SetVecCap sets the default cardinality cap applied to labeled
// families created after this call (existing families keep theirs —
// adjust those with SetCap). Safe on a nil registry.
func (r *Registry) SetVecCap(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.vecCap = n
	r.mu.Unlock()
}
