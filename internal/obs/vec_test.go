package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestVecBasics(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("menos_test_total", "client")
	cv.With("a").Add(3)
	cv.With("b").Inc()
	cv.With("a").Inc()
	if got := cv.With("a").Value(); got != 4 {
		t.Fatalf("a = %d, want 4", got)
	}
	if got := cv.Labels(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("labels = %v", got)
	}
	if cv.Label() != "client" {
		t.Fatalf("label key = %q", cv.Label())
	}
	// Same name returns the same family.
	if reg.CounterVec("menos_test_total", "client") != cv {
		t.Fatal("second registration returned a different family")
	}

	gv := reg.GaugeVec("menos_test_bytes", "client")
	gv.With("a").Set(7)
	gv.With("a").Add(-2)
	if got := gv.With("a").Value(); got != 5 {
		t.Fatalf("gauge a = %d, want 5", got)
	}

	hv := reg.HistogramVec("menos_test_seconds", "client", []float64{1, 10})
	hv.With("a").Observe(0.5)
	hv.With("a").Observe(5)
	if got := hv.With("a").Count(); got != 2 {
		t.Fatalf("hist count = %d, want 2", got)
	}
}

func TestVecOverflow(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("menos_test_total", "client")
	cv.SetCap(2)
	cv.With("a").Inc()
	cv.With("b").Inc()
	// Past the cap every new label lands on the shared overflow series.
	cv.With("c").Inc()
	cv.With("d").Add(2)
	other, ok := cv.Get(VecOverflowLabel)
	if !ok || other.Value() != 3 {
		t.Fatalf("overflow series = %v %d, want 3", ok, other.Value())
	}
	if _, ok := cv.Get("c"); ok {
		t.Fatal("label past cap must not get its own series")
	}
	// Existing labels keep resolving to their own series.
	cv.With("a").Inc()
	if got := cv.With("a").Value(); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
	// Totals stay exact across the overflow boundary.
	var sum int64
	for _, lv := range cv.Labels() {
		c, _ := cv.Get(lv)
		sum += c.Value()
	}
	if sum != 6 {
		t.Fatalf("sum over series = %d, want 6", sum)
	}
}

func TestVecNilSafety(t *testing.T) {
	var reg *Registry
	cv := reg.CounterVec("x", "client")
	gv := reg.GaugeVec("x", "client")
	hv := reg.HistogramVec("x", "client", nil)
	if cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry must return nil families")
	}
	// All methods are no-ops on nil.
	cv.With("a").Inc()
	cv.SetCap(1)
	gv.With("a").Set(1)
	hv.With("a").Observe(1)
	if cv.Labels() != nil || gv.Labels() != nil || hv.Labels() != nil {
		t.Fatal("nil family Labels must be nil")
	}
	if _, ok := cv.Get("a"); ok {
		t.Fatal("nil family Get must miss")
	}
}

// TestPrometheusVecMerge pins the merged exposition: an unlabeled
// metric and a same-named labeled family share one TYPE header, with
// the unlabeled sample first — the layout the conservation tests
// scrape.
func TestPrometheusVecMerge(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("menos_iters_total", "iterations").Add(5)
	cv := reg.CounterVec("menos_iters_total", "client")
	cv.With("b").Add(3)
	cv.With("a").Add(2)

	reg.Histogram("menos_wait_seconds", []float64{1, 10}).Observe(0.5)
	hv := reg.HistogramVec("menos_wait_seconds", "client", []float64{1, 10})
	hv.With("a").Observe(0.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP menos_iters_total iterations
# TYPE menos_iters_total counter
menos_iters_total 5
menos_iters_total{client="a"} 2
menos_iters_total{client="b"} 3
# TYPE menos_wait_seconds histogram
menos_wait_seconds_bucket{le="1"} 1
menos_wait_seconds_bucket{le="10"} 1
menos_wait_seconds_bucket{le="+Inf"} 1
menos_wait_seconds_sum 0.5
menos_wait_seconds_count 1
menos_wait_seconds_bucket{client="a",le="1"} 1
menos_wait_seconds_bucket{client="a",le="10"} 1
menos_wait_seconds_bucket{client="a",le="+Inf"} 1
menos_wait_seconds_sum{client="a"} 0.5
menos_wait_seconds_count{client="a"} 1
`
	if b.String() != want {
		t.Fatalf("merged exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestPrometheusLabelEscaping covers label values containing the three
// characters the text format escapes, plus the exemplar suffix on the
// bucket line the exemplar landed in.
func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("menos_esc_total", "client")
	cv.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	wantLine := `menos_esc_total{client="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), wantLine+"\n") {
		t.Fatalf("escaped label line missing:\n%s\nwant %s", b.String(), wantLine)
	}
}

func TestPrometheusExemplarSuffix(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("menos_ex_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.ObserveExemplar(5, 0xdeadbeef)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The exemplar observation (5) landed in the le="10" bucket; only
	// that bucket line carries the OpenMetrics suffix.
	want := `menos_ex_seconds_bucket{le="10"} 2 # {trace_id="00000000deadbeef"} 5`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("exemplar suffix missing:\n%s\nwant %s", out, want)
	}
	if strings.Count(out, "# {") != 1 {
		t.Fatalf("exemplar suffix must appear exactly once:\n%s", out)
	}

	// Labeled series carry their own exemplars too.
	hv := reg.HistogramVec("menos_exv_seconds", "client", []float64{1, 10})
	hv.With("a").ObserveExemplar(0.5, 0xbeef)
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	wantV := `menos_exv_seconds_bucket{client="a",le="1"} 1 # {trace_id="000000000000beef"} 0.5`
	if !strings.Contains(b.String(), wantV+"\n") {
		t.Fatalf("labeled exemplar suffix missing:\n%s\nwant %s", b.String(), wantV)
	}
}

func TestJSONVecSections(t *testing.T) {
	reg := NewRegistry()
	// No vecs: the sections are omitted entirely (old consumers see an
	// unchanged document shape).
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "counter_vecs") {
		t.Fatalf("empty registry must omit vec sections:\n%s", b.String())
	}

	reg.CounterVec("menos_iters_total", "client").With("a").Add(2)
	reg.GaugeVec("menos_bytes", "client").With("a").Set(9)
	reg.HistogramVec("menos_lat_seconds", "client", []float64{1}).With("a").Observe(0.5)
	b.Reset()
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		CounterVecs map[string]struct {
			Label  string           `json:"label"`
			Series map[string]int64 `json:"series"`
		} `json:"counter_vecs"`
		GaugeVecs map[string]struct {
			Label  string           `json:"label"`
			Series map[string]int64 `json:"series"`
		} `json:"gauge_vecs"`
		HistogramVecs map[string]struct {
			Label  string `json:"label"`
			Series map[string]struct {
				Count int64   `json:"count"`
				Sum   float64 `json:"sum"`
			} `json:"series"`
		} `json:"histogram_vecs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.CounterVecs["menos_iters_total"].Series["a"] != 2 {
		t.Fatalf("counter vec JSON = %+v", doc.CounterVecs)
	}
	if doc.GaugeVecs["menos_bytes"].Label != "client" || doc.GaugeVecs["menos_bytes"].Series["a"] != 9 {
		t.Fatalf("gauge vec JSON = %+v", doc.GaugeVecs)
	}
	hs := doc.HistogramVecs["menos_lat_seconds"].Series["a"]
	if hs.Count != 1 || hs.Sum != 0.5 {
		t.Fatalf("hist vec JSON = %+v", doc.HistogramVecs)
	}
}
