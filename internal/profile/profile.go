// Package profile implements the server-side profiling phase of §3.3:
// before serving a client, the server pushes random input sequences of
// the client's reported geometry through the client's model instance
// and measures the GPU memory its forward and backward computations
// demand. Profiling needs no knowledge of the client's data — only the
// configuration — making it generic over models and adapters.
package profile

import (
	"fmt"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// Result reports the measured per-operation memory demands (the M_f
// and M_b of Algorithm 2).
type Result struct {
	ForwardBytes  int64
	BackwardBytes int64
}

// MeasureBody profiles one client's body section with random
// activations of the reported (batch, seq) geometry. It runs a full
// gradient-enabled forward and backward — verifying the instance and
// adapter actually work — then zeroes any gradients it produced, so
// profiling leaves the instance exactly as it found it.
func MeasureBody(body *model.BodySection, params []nn.Param, batch, seq, dim int, seed uint64) (Result, error) {
	if batch <= 0 || seq <= 0 {
		return Result{}, fmt.Errorf("profile: invalid geometry batch=%d seq=%d", batch, seq)
	}
	rng := tensor.NewRNG(seed | 1)
	x := tensor.NewNormal(rng, 0.5, batch*seq, dim)

	y, cache, err := body.Forward(x, batch, seq, true)
	if err != nil {
		return Result{}, fmt.Errorf("profile forward: %w", err)
	}
	// Backward demand: retained activations plus the gradient working
	// set (dy/dx ping-pong buffers at the section boundary).
	backward := cache.Bytes() + 3*y.Bytes()

	dy := tensor.NewNormal(rng, 0.01, y.Dim(0), y.Dim(1))
	if _, err := body.Backward(cache, dy); err != nil {
		return Result{}, fmt.Errorf("profile backward: %w", err)
	}
	nn.ZeroGrads(params)

	// No-grad forward demand: a few live hidden tensors, not the full
	// cache. Measured as the boundary tensors plus double-buffering.
	forward := 4 * x.Bytes()

	return Result{ForwardBytes: forward, BackwardBytes: backward}, nil
}
