package profile

import (
	"testing"

	"menos/internal/adapter"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

func profiledBody(t *testing.T) (*model.BodySection, []nn.Param, model.Config) {
	t.Helper()
	cfg := model.OPTTiny()
	m, err := model.New(tensor.NewRNG(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFrozenBase(true)
	_, body, _, err := m.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := adapter.InjectLoRA(tensor.NewRNG(2), body.Blocks(), adapter.DefaultLoRA())
	if err != nil {
		t.Fatal(err)
	}
	return body, ad.Params(), cfg
}

func TestMeasureBodyReportsDemands(t *testing.T) {
	body, params, cfg := profiledBody(t)
	res, err := MeasureBody(body, params, 2, 8, cfg.Dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardBytes <= 0 || res.BackwardBytes <= 0 {
		t.Fatalf("demands = %+v", res)
	}
	if res.BackwardBytes <= res.ForwardBytes {
		t.Fatal("backward demand not above forward")
	}
}

func TestMeasureBodyLeavesGradsClean(t *testing.T) {
	body, params, cfg := profiledBody(t)
	if _, err := MeasureBody(body, params, 2, 8, cfg.Dim, 3); err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		if p.Grad.MaxAbs() != 0 {
			t.Fatalf("profiling left gradient on %q", p.Name)
		}
	}
}

func TestMeasureBodyDeterministic(t *testing.T) {
	body, params, cfg := profiledBody(t)
	a, err := MeasureBody(body, params, 2, 8, cfg.Dim, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureBody(body, params, 2, 8, cfg.Dim, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("profiling not deterministic: %+v vs %+v", a, b)
	}
}

func TestMeasureBodyScalesWithGeometry(t *testing.T) {
	body, params, cfg := profiledBody(t)
	small, err := MeasureBody(body, params, 1, 4, cfg.Dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MeasureBody(body, params, 4, 16, cfg.Dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.BackwardBytes <= small.BackwardBytes {
		t.Fatal("bigger batch did not increase backward demand")
	}
	if big.ForwardBytes <= small.ForwardBytes {
		t.Fatal("bigger batch did not increase forward demand")
	}
}

func TestMeasureBodyInvalidGeometry(t *testing.T) {
	body, params, cfg := profiledBody(t)
	if _, err := MeasureBody(body, params, 0, 8, cfg.Dim, 1); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := MeasureBody(body, params, 2, 0, cfg.Dim, 1); err == nil {
		t.Fatal("zero seq accepted")
	}
}

// TestMeasureMatchesAnalyticOrder: the profiled backward demand is the
// measured cache bytes plus workspace; it must land within 2x of the
// analytic memmodel prediction for the same workload (exactness is
// asserted in memmodel's own tests; here we guard the profiler's
// workspace terms from drifting).
func TestMeasureMatchesAnalyticOrder(t *testing.T) {
	body, params, cfg := profiledBody(t)
	res, err := MeasureBody(body, params, 2, 7, cfg.Dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-measure the raw cache for comparison.
	x := tensor.NewNormal(tensor.NewRNG(4), 0.5, 14, cfg.Dim)
	_, cache, err := body.Forward(x, 2, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	raw := cache.Bytes()
	if res.BackwardBytes < raw || res.BackwardBytes > 2*raw {
		t.Fatalf("profiled backward %d vs raw cache %d", res.BackwardBytes, raw)
	}
}
