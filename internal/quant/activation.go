package quant

import (
	"fmt"
	"math"

	"menos/internal/tensor"
)

// This file implements the activation wire codec: lossy fp16/int8
// packing for the per-iteration activation and gradient tensors that
// cross the split boundary (docs/WIRE.md). Unlike the weight
// quantizer above — per-output-column scales, computed once at load —
// the activation codec runs on the hot path every iteration, so it is
// per-row (rows are contiguous in memory), allocation-lean, and
// parallelized over the tensor worker pool.
//
// The codec is symmetric and zero-point free, matching the weight
// path: int8 stores round(v/scale) with one fp32 scale per row
// (scale = maxAbs/127), fp16 stores IEEE 754 binary16 with
// round-to-nearest-even. Non-finite inputs are rejected with
// NonFiniteError rather than encoded: an Inf/NaN activation is a
// training bug upstream, and silently squashing it into a saturated
// int8 would hide the blast site.

// Codec identifies an activation wire encoding. The zero value means
// "uncompressed fp32" — tensors ride the base frame payload exactly as
// they did before compression existed.
type Codec uint8

// Supported activation codecs. Wire values: the codec byte rides the
// frame extension tail, so these constants are protocol surface and
// must never be renumbered.
const (
	CodecFP32 Codec = 0 // uncompressed; nothing extra on the wire
	CodecFP16 Codec = 1 // IEEE 754 binary16, 2 bytes/value
	CodecInt8 Codec = 2 // symmetric int8, 1 byte/value + fp32 scale/row
)

// ParseCodec maps the -wire-compress flag spelling to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "off", "fp32", "none":
		return CodecFP32, nil
	case "fp16":
		return CodecFP16, nil
	case "int8":
		return CodecInt8, nil
	default:
		return 0, fmt.Errorf("%w: unknown codec %q (want off, fp16 or int8)", ErrQuant, s)
	}
}

// String returns the flag spelling.
func (c Codec) String() string {
	switch c {
	case CodecFP32:
		return "off"
	case CodecFP16:
		return "fp16"
	case CodecInt8:
		return "int8"
	default:
		return fmt.Sprintf("codec(%d)", int(c))
	}
}

// BytesPerValue returns the payload bytes per scalar, excluding
// per-row scales.
func (c Codec) BytesPerValue() int {
	switch c {
	case CodecFP16:
		return 2
	case CodecInt8:
		return 1
	default:
		return 4
	}
}

// WireRatio estimates on-wire payload bytes as a fraction of the fp32
// payload, ignoring the per-row scale overhead (4 bytes per row
// against lastDim*4 payload bytes — under 1% for any real hidden
// size). The simulator uses it to model compressed transfers.
func (c Codec) WireRatio() float64 {
	return float64(c.BytesPerValue()) / 4
}

// Packed is a codec-compressed tensor ready for the wire. Rows are
// the product of all leading dims; the last dim is the row width, so
// a (batch, seq, hidden) activation packs as batch*seq rows of hidden
// values — one scale per token position, which tracks the magnitude
// spread across a sequence far better than one scale per tensor.
type Packed struct {
	Codec  Codec
	Shape  []int
	Scales []float32 // per row; int8 only, nil for fp16
	Data   []byte
}

// NonFiniteError reports an Inf or NaN encountered while quantizing.
// It unwraps to ErrQuant.
type NonFiniteError struct {
	Index int     // flat element index in the source tensor
	Value float64 // the offending value
}

// Error implements error.
func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("quant: non-finite value %v at element %d", e.Value, e.Index)
}

// Unwrap ties the typed error into the package sentinel so callers can
// match either errors.Is(err, ErrQuant) or errors.As for the detail.
func (e *NonFiniteError) Unwrap() error { return ErrQuant }

// packGrain sizes ParallelFor chunks so each covers roughly 16 KiB of
// source data — small enough to balance, large enough to amortize.
func packGrain(cols int) int {
	g := (16 << 10) / (4 * max(cols, 1))
	return max(g, 1)
}

// Pack compresses t with the given codec. CodecFP32 returns nil — the
// caller should send the tensor uncompressed. The returned Packed
// aliases nothing in t.
func Pack(t *tensor.Tensor, c Codec) (*Packed, error) {
	if c == CodecFP32 {
		return nil, nil
	}
	if t == nil {
		return nil, fmt.Errorf("%w: nil tensor", ErrQuant)
	}
	if c != CodecFP16 && c != CodecInt8 {
		return nil, fmt.Errorf("%w: codec %d", ErrQuant, int(c))
	}
	src := t.Data()
	// Reject Inf/NaN up front, before any worker touches the data:
	// quantizing garbage would propagate silently (int8 saturates,
	// fp16 rounds NaN payloads) and surface iterations later as a
	// mysteriously diverged loss.
	for i, v := range src {
		if f := float64(v); math.IsInf(f, 0) || math.IsNaN(f) {
			return nil, &NonFiniteError{Index: i, Value: f}
		}
	}
	shape := t.Shape()
	cols := 1
	if len(shape) > 0 {
		cols = shape[len(shape)-1]
	}
	if cols <= 0 {
		return nil, fmt.Errorf("%w: last dim %d", ErrQuant, cols)
	}
	rows := len(src) / cols
	p := &Packed{Codec: c, Shape: append([]int(nil), shape...)}
	switch c {
	case CodecFP16:
		p.Data = make([]byte, 2*len(src))
		tensor.ParallelFor(rows, packGrain(cols), func(lo, hi int) {
			for i := lo * cols; i < hi*cols; i++ {
				h := Float16FromFloat32(src[i])
				p.Data[2*i] = byte(h)
				p.Data[2*i+1] = byte(h >> 8)
			}
		})
	case CodecInt8:
		p.Data = make([]byte, len(src))
		p.Scales = make([]float32, rows)
		tensor.ParallelFor(rows, packGrain(cols), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				row := src[r*cols : (r+1)*cols]
				var maxAbs float64
				for _, v := range row {
					if a := math.Abs(float64(v)); a > maxAbs {
						maxAbs = a
					}
				}
				if maxAbs == 0 {
					maxAbs = 1e-8
				}
				scale := float32(maxAbs / 127)
				p.Scales[r] = scale
				for j, v := range row {
					q := math.Round(float64(v) / float64(scale))
					if q > 127 {
						q = 127
					}
					if q < -127 {
						q = -127
					}
					p.Data[r*cols+j] = byte(int8(q))
				}
			}
		})
	}
	return p, nil
}

// Unpack decompresses a Packed back to fp32, validating every length
// against the declared shape — Packed structs arrive off the wire, so
// nothing about them is trusted.
func (p *Packed) Unpack() (*tensor.Tensor, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil packed tensor", ErrQuant)
	}
	numel := 1
	cols := 1
	for i, d := range p.Shape {
		if d <= 0 || numel > MaxPackedElems/d {
			return nil, fmt.Errorf("%w: packed shape %v", ErrQuant, p.Shape)
		}
		numel *= d
		if i == len(p.Shape)-1 {
			cols = d
		}
	}
	rows := numel / cols
	switch p.Codec {
	case CodecFP16:
		if len(p.Data) != 2*numel || len(p.Scales) != 0 {
			return nil, fmt.Errorf("%w: fp16 payload %dB/%d scales for %v", ErrQuant, len(p.Data), len(p.Scales), p.Shape)
		}
	case CodecInt8:
		if len(p.Data) != numel || len(p.Scales) != rows {
			return nil, fmt.Errorf("%w: int8 payload %dB/%d scales for %v", ErrQuant, len(p.Data), len(p.Scales), p.Shape)
		}
	default:
		return nil, fmt.Errorf("%w: codec %d", ErrQuant, int(p.Codec))
	}
	out := make([]float32, numel)
	switch p.Codec {
	case CodecFP16:
		tensor.ParallelFor(rows, packGrain(cols), func(lo, hi int) {
			for i := lo * cols; i < hi*cols; i++ {
				h := uint16(p.Data[2*i]) | uint16(p.Data[2*i+1])<<8
				out[i] = Float16ToFloat32(h)
			}
		})
	case CodecInt8:
		tensor.ParallelFor(rows, packGrain(cols), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				scale := p.Scales[r]
				for j := 0; j < cols; j++ {
					out[r*cols+j] = float32(int8(p.Data[r*cols+j])) * scale
				}
			}
		})
	}
	return tensor.FromSlice(out, p.Shape...)
}

// MaxPackedElems bounds a packed tensor's element count; anything
// larger than the frame limit allows is hostile input.
const MaxPackedElems = 512 << 20

// WireBytes returns the on-wire payload cost: packed data plus
// per-row scales (shape ints and the codec byte are noise).
func (p *Packed) WireBytes() int64 {
	if p == nil {
		return 0
	}
	return int64(len(p.Data)) + 4*int64(len(p.Scales))
}

// Float16FromFloat32 converts to IEEE 754 binary16 with
// round-to-nearest-even, clamping overflow to ±MaxFloat16 rather than
// producing Inf — a saturated activation degrades gracefully, an Inf
// poisons every downstream accumulation.
func Float16FromFloat32(f float32) uint16 {
	const maxFinite = 65504
	if f > maxFinite {
		f = maxFinite
	}
	if f < -maxFinite {
		f = -maxFinite
	}
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff
	switch {
	case exp >= 0x1f:
		// Unreachable after the clamp for finite inputs; Pack rejects
		// non-finite values before conversion.
		return sign | 0x7bff
	case exp <= 0:
		// Subnormal or underflow-to-zero: shift the mantissa (with its
		// implicit leading 1) into place and round to nearest even.
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		v := mant >> shift
		if rem := mant & (1<<shift - 1); rem > half || (rem == half && v&1 == 1) {
			v++
		}
		return sign | uint16(v)
	default:
		v := uint16(exp)<<10 | uint16(mant>>13)
		if rem := mant & 0x1fff; rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
			v++ // carries into the exponent correctly by construction
		}
		return sign | v
	}
}

// Float16ToFloat32 converts an IEEE 754 binary16 back to float32
// (exact — every half value is representable).
func Float16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize by shifting the mantissa up.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (mant&0x3ff)<<13)
	case exp == 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}
