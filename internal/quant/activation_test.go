package quant

import (
	"errors"
	"math"
	"testing"

	"menos/internal/tensor"
)

func TestParseCodec(t *testing.T) {
	cases := map[string]Codec{
		"off": CodecFP32, "": CodecFP32, "none": CodecFP32, "fp32": CodecFP32,
		"fp16": CodecFP16, "int8": CodecInt8,
	}
	for s, want := range cases {
		got, err := ParseCodec(s)
		if err != nil || got != want {
			t.Fatalf("ParseCodec(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCodec("gzip"); !errors.Is(err, ErrQuant) {
		t.Fatalf("unknown codec error = %v", err)
	}
	if CodecFP16.String() != "fp16" || CodecInt8.String() != "int8" || CodecFP32.String() != "off" {
		t.Fatal("codec strings")
	}
	if CodecFP32.BytesPerValue() != 4 || CodecFP16.BytesPerValue() != 2 || CodecInt8.BytesPerValue() != 1 {
		t.Fatal("bytes per value")
	}
	if CodecInt8.WireRatio() != 0.25 || CodecFP16.WireRatio() != 0.5 {
		t.Fatal("wire ratios")
	}
}

// Every finite binary16 value survives the f16 -> f32 -> f16 round
// trip bit-exactly. (Infinities and NaNs are excluded: Pack rejects
// non-finite inputs before conversion, and the encoder clamps rather
// than emits them.)
func TestFloat16RoundTripExhaustive(t *testing.T) {
	for h := 0; h <= 0xFFFF; h++ {
		if h>>10&0x1f == 0x1f {
			continue // Inf/NaN encodings
		}
		f := Float16ToFloat32(uint16(h))
		back := Float16FromFloat32(f)
		if back != uint16(h) {
			t.Fatalf("half %#04x -> %v -> %#04x", h, f, back)
		}
	}
}

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000}, {1, 0x3C00}, {-2, 0xC000}, {0.5, 0x3800},
		{65504, 0x7BFF}, {-65504, 0xFBFF},
		{5.9604645e-8, 0x0001}, // smallest positive subnormal
	}
	for _, c := range cases {
		if got := Float16FromFloat32(c.f); got != c.h {
			t.Fatalf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := Float16ToFloat32(c.h); got != c.f {
			t.Fatalf("ToFloat32(%#04x) = %v, want %v", c.h, got, c.f)
		}
	}
	// Overflow clamps to the max finite half instead of Inf.
	if got := Float16FromFloat32(1e30); got != 0x7BFF {
		t.Fatalf("overflow = %#04x, want 0x7BFF", got)
	}
	if got := Float16FromFloat32(-1e30); got != 0xFBFF {
		t.Fatalf("negative overflow = %#04x, want 0xFBFF", got)
	}
}

func TestPackFP32IsNoCodec(t *testing.T) {
	p, err := Pack(tensor.New(2, 2), CodecFP32)
	if err != nil || p != nil {
		t.Fatalf("fp32 pack = %v, %v; want nil, nil", p, err)
	}
}

func TestPackUnpackFP16(t *testing.T) {
	rng := tensor.NewRNG(11)
	x := tensor.NewNormal(rng, 2.0, 3, 5, 16)
	p, err := Pack(x, CodecFP16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Codec != CodecFP16 || len(p.Scales) != 0 || len(p.Data) != 2*x.Len() {
		t.Fatalf("packed meta: codec=%v scales=%d data=%d", p.Codec, len(p.Scales), len(p.Data))
	}
	y, err := p.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	if !y.SameShape(x) {
		t.Fatalf("shape %v != %v", y.Shape(), x.Shape())
	}
	for i, v := range x.Data() {
		got := y.Data()[i]
		// fp16 has 11 significand bits: relative error <= 2^-11.
		if math.Abs(float64(got-v)) > math.Abs(float64(v))/2048+1e-7 {
			t.Fatalf("fp16 round-trip at %d: %v -> %v", i, v, got)
		}
	}
}

func TestPackUnpackInt8PerRowBound(t *testing.T) {
	rng := tensor.NewRNG(12)
	x := tensor.NewNormal(rng, 1.0, 7, 33)
	// Make the row magnitudes wildly different so a per-tensor scale
	// would fail this bound; per-row scales must track each row.
	for r := 0; r < 7; r++ {
		for c := 0; c < 33; c++ {
			x.Set(x.At(r, c)*float32(math.Pow(10, float64(r-3))), r, c)
		}
	}
	p, err := Pack(x, CodecInt8)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scales) != 7 || len(p.Data) != x.Len() {
		t.Fatalf("packed meta: scales=%d data=%d", len(p.Scales), len(p.Data))
	}
	y, err := p.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 7; r++ {
		step := float64(p.Scales[r])
		for c := 0; c < 33; c++ {
			if diff := math.Abs(float64(y.At(r, c) - x.At(r, c))); diff > step*0.5001+1e-12 {
				t.Fatalf("row %d col %d: err %v > step/2 %v", r, c, diff, step/2)
			}
		}
	}
}

// Adversarial shapes from the issue: all-zero rows must round-trip to
// exact zeros (no 0/0 NaN), and single-element rows must survive.
func TestPackAdversarialShapes(t *testing.T) {
	for _, codec := range []Codec{CodecFP16, CodecInt8} {
		zero := tensor.New(4, 8) // all zero
		p, err := Pack(zero, codec)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		y, err := p.Unpack()
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		for i, v := range y.Data() {
			if v != 0 || math.IsNaN(float64(v)) {
				t.Fatalf("%v: zero row element %d became %v", codec, i, v)
			}
		}

		single := tensor.New(5, 1) // one element per row
		single.Set(3.25, 2, 0)
		single.Set(-0.125, 4, 0)
		p, err = Pack(single, codec)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		y, err = p.Unpack()
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		for r := 0; r < 5; r++ {
			want := float64(single.At(r, 0))
			got := float64(y.At(r, 0))
			if math.Abs(got-want) > math.Abs(want)/127+1e-9 {
				t.Fatalf("%v: single-element row %d: %v -> %v", codec, r, want, got)
			}
		}
	}
}

func TestPackRejectsNonFinite(t *testing.T) {
	for _, bad := range []float32{float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN())} {
		x := tensor.New(2, 3)
		x.Set(bad, 1, 2)
		for _, codec := range []Codec{CodecFP16, CodecInt8} {
			_, err := Pack(x, codec)
			var nfe *NonFiniteError
			if !errors.As(err, &nfe) {
				t.Fatalf("%v/%v: error %v is not NonFiniteError", codec, bad, err)
			}
			if !errors.Is(err, ErrQuant) {
				t.Fatalf("%v: does not unwrap to ErrQuant", codec)
			}
			if nfe.Index != 5 {
				t.Fatalf("index %d, want 5", nfe.Index)
			}
		}
	}
	if _, err := Pack(nil, CodecInt8); !errors.Is(err, ErrQuant) {
		t.Fatalf("nil tensor: %v", err)
	}
	if _, err := Pack(tensor.New(2, 2), Codec(9)); !errors.Is(err, ErrQuant) {
		t.Fatal("unknown codec accepted")
	}
}

// QuantizeMatrix inherits the same non-finite rejection (the issue's
// fix): an Inf or NaN weight must fail typed, not skew a column scale.
func TestQuantizeMatrixRejectsNonFinite(t *testing.T) {
	for _, bad := range []float32{float32(math.Inf(1)), float32(math.NaN())} {
		w := tensor.New(3, 3)
		w.Set(bad, 1, 1)
		_, err := QuantizeMatrix(w, Int8)
		var nfe *NonFiniteError
		if !errors.As(err, &nfe) {
			t.Fatalf("error %v is not NonFiniteError", err)
		}
		if !errors.Is(err, ErrQuant) {
			t.Fatal("does not unwrap to ErrQuant")
		}
		if nfe.Index != 4 {
			t.Fatalf("index %d, want 4", nfe.Index)
		}
	}
}

// Unpack validates hostile metadata: wire-decoded Packed structs are
// untrusted input.
func TestUnpackRejectsCorruptMetadata(t *testing.T) {
	cases := []*Packed{
		nil,
		{Codec: CodecInt8, Shape: []int{2, 2}, Data: make([]byte, 3), Scales: make([]float32, 2)}, // short data
		{Codec: CodecInt8, Shape: []int{2, 2}, Data: make([]byte, 4), Scales: make([]float32, 1)}, // wrong scale count
		{Codec: CodecFP16, Shape: []int{2, 2}, Data: make([]byte, 7)},                             // short fp16 data
		{Codec: CodecFP16, Shape: []int{2, 2}, Data: make([]byte, 8), Scales: make([]float32, 2)}, // scales on fp16
		{Codec: CodecFP32, Shape: []int{2, 2}, Data: make([]byte, 16)},                            // fp32 never packs
		{Codec: CodecInt8, Shape: []int{-1, 4}, Data: make([]byte, 4)},                            // negative dim
		{Codec: CodecInt8, Shape: []int{0}, Data: nil},                                            // zero dim
		{Codec: CodecInt8, Shape: []int{1 << 20, 1 << 20, 1 << 20}, Data: make([]byte, 4)},        // numel overflow
		{Codec: Codec(7), Shape: []int{2, 2}, Data: make([]byte, 4), Scales: make([]float32, 2)},  // unknown codec
	}
	for i, p := range cases {
		if _, err := p.Unpack(); !errors.Is(err, ErrQuant) {
			t.Fatalf("case %d: error %v does not wrap ErrQuant", i, err)
		}
	}
}

func TestPackedWireBytes(t *testing.T) {
	x := tensor.New(8, 64)
	x.Fill(1)
	raw := int64(x.Len()) * 4
	p8, err := Pack(x, CodecInt8)
	if err != nil {
		t.Fatal(err)
	}
	if got := p8.WireBytes(); got != 8*64+8*4 {
		t.Fatalf("int8 wire bytes %d", got)
	}
	// The acceptance criterion: int8 payloads are >= 60% smaller than
	// fp32 at any realistic activation shape.
	if float64(p8.WireBytes()) > 0.4*float64(raw) {
		t.Fatalf("int8 %dB not <=40%% of fp32 %dB", p8.WireBytes(), raw)
	}
	p16, err := Pack(x, CodecFP16)
	if err != nil {
		t.Fatal(err)
	}
	if got := p16.WireBytes(); got != raw/2 {
		t.Fatalf("fp16 wire bytes %d, want %d", got, raw/2)
	}
	if (*Packed)(nil).WireBytes() != 0 {
		t.Fatal("nil wire bytes")
	}
}
