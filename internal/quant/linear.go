package quant

import (
	"fmt"
	"math"

	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// Linear is a frozen linear layer whose weights live in quantized
// storage. Forward and input-gradient passes dequantize on the fly;
// there are never weight gradients (a quantized base is frozen by
// construction — the QLoRA setting).
type Linear struct {
	w    *Matrix
	bias *tensor.Tensor // fp32, may be nil
}

var _ nn.Op = (*Linear)(nil)

// QuantizeLinear converts a plain nn.Linear into quantized storage.
func QuantizeLinear(l *nn.Linear, prec Precision) (*Linear, error) {
	w, err := QuantizeMatrix(l.W.Value, prec)
	if err != nil {
		return nil, fmt.Errorf("quantize linear: %w", err)
	}
	ql := &Linear{w: w}
	if l.B.Value != nil {
		ql.bias = l.B.Value.Clone()
	}
	return ql, nil
}

// In returns the input feature dimension.
func (l *Linear) In() int { return l.w.Rows() }

// Out returns the output feature dimension.
func (l *Linear) Out() int { return l.w.Cols() }

// StorageBytes returns the quantized weight footprint plus bias.
func (l *Linear) StorageBytes() int64 {
	b := l.w.StorageBytes()
	if l.bias != nil {
		b += l.bias.Bytes()
	}
	return b
}

// Apply implements nn.Op: y = x @ deq(W) (+ b).
func (l *Linear) Apply(x *tensor.Tensor, withGrad bool) (*tensor.Tensor, any, error) {
	if x.Rank() != 2 || x.Dim(1) != l.In() {
		return nil, nil, fmt.Errorf("quant linear: input %v for (%d,%d): %w",
			x.Shape(), l.In(), l.Out(), tensor.ErrShape)
	}
	w := l.w.Dequantize() // transient: released when this call returns
	y := tensor.New(x.Dim(0), l.Out())
	if err := tensor.MatMul(y, x, w); err != nil {
		return nil, nil, fmt.Errorf("quant linear forward: %w", err)
	}
	if l.bias != nil {
		if err := tensor.AddRowBroadcast(y, y, l.bias); err != nil {
			return nil, nil, fmt.Errorf("quant linear bias: %w", err)
		}
	}
	if !withGrad {
		return y, nil, nil
	}
	return y, &nn.LinearCache{X: x}, nil
}

// Grad implements nn.Op: dx = dy @ deq(W)ᵀ; no weight gradients.
func (l *Linear) Grad(cache any, dy *tensor.Tensor) (*tensor.Tensor, error) {
	c, ok := cache.(*nn.LinearCache)
	if !ok || c.X == nil {
		return nil, fmt.Errorf("quant linear: missing cache (%T)", cache)
	}
	w := l.w.Dequantize()
	dx := tensor.New(c.X.Dim(0), l.In())
	if err := tensor.MatMulT(dx, dy, w); err != nil {
		return nil, fmt.Errorf("quant linear backward: %w", err)
	}
	return dx, nil
}

// HashInto feeds the quantized storage (values and scales) to the
// write callback; the share.Store integrity checksum uses it so a
// quantized base is covered bit-for-bit like an fp32 one.
func (l *Linear) HashInto(write func([]byte)) {
	write(l.w.data)
	buf := make([]byte, 4)
	for _, s := range l.w.scales {
		bits := math.Float32bits(s)
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		buf[2] = byte(bits >> 16)
		buf[3] = byte(bits >> 24)
		write(buf)
	}
}

// Params implements nn.Op: a quantized layer is never trainable.
func (l *Linear) Params() []nn.Param { return nil }

// SetFrozen implements nn.Op: quantized layers are always frozen.
func (l *Linear) SetFrozen(bool) {}

// QuantizeBlocks replaces every plain nn.Linear projection in the
// given blocks with quantized storage. Blocks must be pristine (no
// adapters attached yet); quantize first, then inject adapters. It
// returns the total quantized storage bytes.
func QuantizeBlocks(blocks []*model.Block, prec Precision) (int64, error) {
	var total int64
	quantizeSlot := func(slot *nn.Op) error {
		lin, ok := (*slot).(*nn.Linear)
		if !ok {
			if *slot == nil {
				return nil // OPT models have no gate projection
			}
			return fmt.Errorf("%w: projection already wrapped (%T)", ErrQuant, *slot)
		}
		ql, err := QuantizeLinear(lin, prec)
		if err != nil {
			return err
		}
		*slot = ql
		total += ql.StorageBytes()
		return nil
	}
	for i, b := range blocks {
		slots := []*nn.Op{&b.Attn.Q, &b.Attn.K, &b.Attn.V, &b.Attn.O, &b.FFN.Up, &b.FFN.Down}
		if b.FFN.Gate != nil {
			slots = append(slots, &b.FFN.Gate)
		}
		for _, slot := range slots {
			if err := quantizeSlot(slot); err != nil {
				return 0, fmt.Errorf("block %d: %w", i, err)
			}
		}
	}
	return total, nil
}
