// Package quant implements weight quantization for the shared base
// model: symmetric per-output-channel int8 and packed int4 storage
// with on-the-fly dequantization.
//
// The paper names quantization (QLoRA, GPTQ) as orthogonal to Menos —
// "these methods could also be applied to the shared model parameters"
// — and this package makes the combination concrete: a quantized
// frozen base shrinks the 𝕄 term by ~4×/8× while adapters stay fp32,
// exactly the QLoRA recipe, stacked on top of base-model sharing.
package quant

import (
	"errors"
	"fmt"
	"math"

	"menos/internal/tensor"
)

// ErrQuant is returned (wrapped) for invalid quantization inputs.
var ErrQuant = errors.New("quant: invalid input")

// Precision selects the stored bit width.
type Precision int

// Supported precisions.
const (
	Int8 Precision = iota + 1
	Int4
)

// String returns the precision name.
func (p Precision) String() string {
	switch p {
	case Int8:
		return "int8"
	case Int4:
		return "int4"
	default:
		return fmt.Sprintf("precision(%d)", int(p))
	}
}

// BytesPerParam returns the storage cost per scalar (excluding
// scales).
func (p Precision) BytesPerParam() float64 {
	switch p {
	case Int8:
		return 1
	case Int4:
		return 0.5
	default:
		return 4
	}
}

// Matrix is a quantized (rows, cols) weight matrix with one fp32 scale
// per output column (symmetric quantization; zero-point free).
type Matrix struct {
	rows, cols int
	prec       Precision
	data       []byte    // int8: one byte per value; int4: two values per byte
	scales     []float32 // per column
}

// QuantizeMatrix quantizes a rank-2 tensor.
func QuantizeMatrix(t *tensor.Tensor, prec Precision) (*Matrix, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("%w: rank-%d tensor", ErrQuant, t.Rank())
	}
	if prec != Int8 && prec != Int4 {
		return nil, fmt.Errorf("%w: precision %d", ErrQuant, int(prec))
	}
	rows, cols := t.Dim(0), t.Dim(1)
	m := &Matrix{rows: rows, cols: cols, prec: prec, scales: make([]float32, cols)}

	maxLevel := float64(127)
	if prec == Int4 {
		maxLevel = 7
	}
	// Per-column scales. An Inf or NaN weight is rejected with a typed
	// error rather than quantized: Inf would blow the column scale up
	// so every other weight rounds to zero, and NaN scales poison the
	// whole column — both silently, iterations away from the cause.
	for c := 0; c < cols; c++ {
		var maxAbs float64
		for r := 0; r < rows; r++ {
			f := float64(t.At(r, c))
			if math.IsInf(f, 0) || math.IsNaN(f) {
				return nil, &NonFiniteError{Index: r*cols + c, Value: f}
			}
			v := math.Abs(f)
			if v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			maxAbs = 1e-8
		}
		m.scales[c] = float32(maxAbs / maxLevel)
	}

	quantize := func(r, c int) int8 {
		q := math.Round(float64(t.At(r, c)) / float64(m.scales[c]))
		if q > maxLevel {
			q = maxLevel
		}
		if q < -maxLevel {
			q = -maxLevel
		}
		return int8(q)
	}

	switch prec {
	case Int8:
		m.data = make([]byte, rows*cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				m.data[r*cols+c] = byte(quantize(r, c))
			}
		}
	case Int4:
		m.data = make([]byte, (rows*cols+1)/2)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				idx := r*cols + c
				nibble := byte(quantize(r, c)+8) & 0x0F // bias to [0,15]
				if idx%2 == 0 {
					m.data[idx/2] |= nibble
				} else {
					m.data[idx/2] |= nibble << 4
				}
			}
		}
	}
	return m, nil
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Precision returns the stored bit width.
func (m *Matrix) Precision() Precision { return m.prec }

// StorageBytes returns the quantized footprint including scales.
func (m *Matrix) StorageBytes() int64 {
	return int64(len(m.data)) + int64(len(m.scales))*4
}

// at returns the dequantized value at (r, c).
func (m *Matrix) at(r, c int) float32 {
	idx := r*m.cols + c
	var q int8
	switch m.prec {
	case Int8:
		q = int8(m.data[idx])
	case Int4:
		nibble := m.data[idx/2]
		if idx%2 == 1 {
			nibble >>= 4
		}
		q = int8(nibble&0x0F) - 8
	}
	return float32(q) * m.scales[c]
}

// Dequantize materializes the matrix as fp32.
func (m *Matrix) Dequantize() *tensor.Tensor {
	out := tensor.New(m.rows, m.cols)
	d := out.Data()
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			d[r*m.cols+c] = m.at(r, c)
		}
	}
	return out
}

// MaxAbsError returns the largest absolute dequantization error
// against the reference tensor, used to validate quantization quality.
func (m *Matrix) MaxAbsError(ref *tensor.Tensor) (float64, error) {
	if ref.Rank() != 2 || ref.Dim(0) != m.rows || ref.Dim(1) != m.cols {
		return 0, fmt.Errorf("%w: reference shape %v", ErrQuant, ref.Shape())
	}
	var maxErr float64
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			e := math.Abs(float64(m.at(r, c) - ref.At(r, c)))
			if e > maxErr {
				maxErr = e
			}
		}
	}
	return maxErr, nil
}
