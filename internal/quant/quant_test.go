package quant

import (
	"math"
	"testing"
	"testing/quick"

	"menos/internal/adapter"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

func TestPrecisionProperties(t *testing.T) {
	if Int8.BytesPerParam() != 1 || Int4.BytesPerParam() != 0.5 {
		t.Fatal("bytes per param")
	}
	if Int8.String() != "int8" || Int4.String() != "int4" {
		t.Fatal("strings")
	}
	if Precision(0).String() == "" || Precision(0).BytesPerParam() != 4 {
		t.Fatal("unknown precision")
	}
}

func TestQuantizeRoundTripError(t *testing.T) {
	rng := tensor.NewRNG(1)
	w := tensor.NewNormal(rng, 0.1, 32, 16)
	for _, prec := range []Precision{Int8, Int4} {
		m, err := QuantizeMatrix(w, prec)
		if err != nil {
			t.Fatal(err)
		}
		maxErr, err := m.MaxAbsError(w)
		if err != nil {
			t.Fatal(err)
		}
		// Error bounded by half a quantization step per column:
		// step = maxAbs/level, so relative error <= 1/(2*level).
		level := 127.0
		if prec == Int4 {
			level = 7
		}
		bound := float64(w.MaxAbs()) / level // loose global bound
		if maxErr > bound {
			t.Fatalf("%v: max error %v > bound %v", prec, maxErr, bound)
		}
		// Shape and storage accounting.
		if m.Rows() != 32 || m.Cols() != 16 || m.Precision() != prec {
			t.Fatal("shape metadata")
		}
		wantData := int64(32 * 16)
		if prec == Int4 {
			wantData = 32 * 16 / 2
		}
		if got := m.StorageBytes(); got != wantData+16*4 {
			t.Fatalf("%v: storage %d, want %d", prec, got, wantData+16*4)
		}
	}
}

func TestQuantizeRejectsBadInput(t *testing.T) {
	if _, err := QuantizeMatrix(tensor.New(4), Int8); err == nil {
		t.Fatal("rank-1 accepted")
	}
	if _, err := QuantizeMatrix(tensor.New(2, 2), Precision(9)); err == nil {
		t.Fatal("bad precision accepted")
	}
}

func TestZeroColumnDoesNotDivideByZero(t *testing.T) {
	w := tensor.New(4, 2)
	w.Set(1.5, 0, 0) // column 1 stays all-zero
	m, err := QuantizeMatrix(w, Int8)
	if err != nil {
		t.Fatal(err)
	}
	deq := m.Dequantize()
	for r := 0; r < 4; r++ {
		if v := deq.At(r, 1); v != 0 || math.IsNaN(float64(v)) {
			t.Fatalf("zero column dequantized to %v", v)
		}
	}
}

// Property: dequantize(quantize(x)) stays within one quantization step
// of x for every element, any shape, both precisions.
func TestQuantizeErrorBoundProperty(t *testing.T) {
	f := func(seed uint64, precPick bool) bool {
		rng := tensor.NewRNG(seed)
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		w := tensor.New(rows, cols)
		w.FillUniform(rng, -3, 3)
		prec := Int8
		level := 127.0
		if precPick {
			prec = Int4
			level = 7
		}
		m, err := QuantizeMatrix(w, prec)
		if err != nil {
			return false
		}
		for c := 0; c < cols; c++ {
			var maxAbs float64
			for r := 0; r < rows; r++ {
				if v := math.Abs(float64(w.At(r, c))); v > maxAbs {
					maxAbs = v
				}
			}
			step := maxAbs / level
			for r := 0; r < rows; r++ {
				if math.Abs(float64(m.at(r, c)-w.At(r, c))) > step*0.5001+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizedLinearMatchesFP32(t *testing.T) {
	rng := tensor.NewRNG(2)
	lin := nn.NewLinear(rng, 8, 6, true)
	ql, err := QuantizeLinear(lin, Int8)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewNormal(rng, 0.5, 4, 8)
	yFP, _, err := lin.Apply(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yQ, _, err := ql.Apply(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range yFP.Data() {
		diff := math.Abs(float64(yFP.Data()[i] - yQ.Data()[i]))
		if diff > 0.05 {
			t.Fatalf("int8 forward deviates at %d: %v vs %v", i, yFP.Data()[i], yQ.Data()[i])
		}
	}
	if ql.In() != 8 || ql.Out() != 6 {
		t.Fatal("dims")
	}
	// 4x smaller than fp32 weights (plus scales and bias).
	if ql.StorageBytes() >= lin.BaseParamBytes() {
		t.Fatalf("quantized %d not smaller than fp32 %d", ql.StorageBytes(), lin.BaseParamBytes())
	}
}

func TestQuantizedLinearBackward(t *testing.T) {
	rng := tensor.NewRNG(3)
	lin := nn.NewLinear(rng, 5, 5, false)
	ql, err := QuantizeLinear(lin, Int8)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewNormal(rng, 0.5, 3, 5)
	y, cache, err := ql.Apply(x, true)
	if err != nil {
		t.Fatal(err)
	}
	dy := tensor.New(y.Dim(0), y.Dim(1))
	dy.Fill(1)
	dx, err := ql.Grad(cache, dy)
	if err != nil {
		t.Fatal(err)
	}
	if dx.MaxAbs() == 0 {
		t.Fatal("no gradient propagated")
	}
	if len(ql.Params()) != 0 {
		t.Fatal("quantized layer has trainable params")
	}
	if _, err := ql.Grad(nil, dy); err == nil {
		t.Fatal("nil cache accepted")
	}
}

// TestQLoRAStyleFineTuning is the paper's orthogonality claim end to
// end: quantize the shared base to int8, inject fp32 LoRA adapters,
// fine-tune — loss must still fall, and only adapters may move.
func TestQLoRAStyleFineTuning(t *testing.T) {
	cfg := model.Config{
		Name: "test", Family: model.FamilyLlama,
		Vocab: 13, Dim: 8, Layers: 3, Heads: 2, FFN: 16, MaxSeq: 16,
	}
	m, err := model.New(tensor.NewRNG(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFrozenBase(true)
	if _, err := QuantizeBlocks(m.Blocks, Int8); err != nil {
		t.Fatal(err)
	}
	ad, err := adapter.InjectLoRA(tensor.NewRNG(5), m.Blocks, adapter.DefaultLoRA())
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(6)
	ids := make([]int, 12)
	targets := make([]int, 12)
	for i := range ids {
		ids[i] = r.Intn(cfg.Vocab)
		targets[i] = r.Intn(cfg.Vocab)
	}
	opt := nn.NewAdam(5e-3)
	first, err := m.LossAndGrad(ids, targets, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 40; i++ {
		res, err := m.LossAndGrad(ids, targets, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		last = res.Loss
		if err := opt.Step(ad.Params()); err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(ad.Params())
	}
	if last >= first.Loss {
		t.Fatalf("QLoRA-style fine-tuning did not reduce loss: %v -> %v", first.Loss, last)
	}
}

func TestQuantizeBlocksAccounting(t *testing.T) {
	cfg := model.Config{
		Name: "test", Family: model.FamilyOPT,
		Vocab: 13, Dim: 8, Layers: 2, Heads: 2, FFN: 16, MaxSeq: 16,
	}
	m, err := model.New(tensor.NewRNG(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bytes, err := QuantizeBlocks(m.Blocks, Int4)
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 {
		t.Fatal("no storage accounted")
	}
	// fp32 projection storage for comparison: quantized must be far
	// smaller (int4 ≈ 1/8 + scales + fp32 biases).
	fp32 := cfg.BlockParams() * int64(cfg.Layers) * 4
	if bytes*3 > fp32 {
		t.Fatalf("int4 storage %d not << fp32 %d", bytes, fp32)
	}
	// Double quantization rejected.
	if _, err := QuantizeBlocks(m.Blocks, Int4); err == nil {
		t.Fatal("double quantization accepted")
	}
}

func TestQuantizedModelStillCausal(t *testing.T) {
	cfg := model.Config{
		Name: "test", Family: model.FamilyLlama,
		Vocab: 13, Dim: 8, Layers: 2, Heads: 2, FFN: 16, MaxSeq: 16,
	}
	m, err := model.New(tensor.NewRNG(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QuantizeBlocks(m.Blocks, Int8); err != nil {
		t.Fatal(err)
	}
	input, body, _, err := m.Split(1)
	if err != nil {
		t.Fatal(err)
	}
	ids1 := []int{1, 2, 3, 4}
	ids2 := []int{1, 2, 3, 9}
	x1, _, err := input.Forward(ids1, 1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	y1, _, err := body.Forward(x1, 1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := input.Forward(ids2, 1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, _, err := body.Forward(x2, 1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		for c := 0; c < cfg.Dim; c++ {
			if y1.At(p, c) != y2.At(p, c) {
				t.Fatalf("future token leaked into position %d", p)
			}
		}
	}
}
